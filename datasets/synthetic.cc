// Copyright 2026 The SPLASH Reproduction Authors.

#include "datasets/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/rng.h"

namespace splash {

namespace {

// Anomalous states are assigned per (node, time-window) so an anomalous
// node emits several cross-community edges in a row — detectable behavior,
// not label noise.
constexpr size_t kAnomalyWindows = 24;

}  // namespace

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  Dataset ds;
  ds.name = config.name;
  ds.task = config.task;
  ds.num_classes = config.task == TaskType::kAnomalyDetection
                       ? 2
                       : std::max<size_t>(2, config.num_communities);

  const size_t n = std::max<size_t>(config.num_nodes, 16);
  const size_t e = std::max<size_t>(config.num_edges, 64);
  const size_t c = std::max<size_t>(config.num_communities, 2);
  Rng rng(config.seed);

  // Arrival position (fraction of the stream) per node. Early nodes are
  // spread over the pre-`late_arrival_start` prefix so the stream has
  // arrivals throughout; late nodes land in the tail and are unseen during
  // training when late_arrival_start >= the train boundary.
  std::vector<double> arrival(n);
  const size_t num_late =
      static_cast<size_t>(config.late_arrival_frac * static_cast<double>(n));
  for (size_t v = 0; v < n; ++v) {
    if (v < n - num_late) {
      // Front-load early arrivals: most mass near 0 so the stream warms up.
      arrival[v] = config.late_arrival_start * rng.Uniform() * rng.Uniform();
    } else {
      arrival[v] = config.late_arrival_start +
                   (1.0 - config.late_arrival_start) * rng.Uniform();
    }
  }

  // Community assignment, with optional migration at the boundary.
  std::vector<uint16_t> community(n), community_late(n);
  std::vector<uint8_t> migrates(n, 0);
  for (size_t v = 0; v < n; ++v) {
    community[v] = static_cast<uint16_t>(rng.UniformInt(c));
    community_late[v] = community[v];
    if (rng.Uniform() < config.migration_frac) {
      migrates[v] = 1;
      community_late[v] = static_cast<uint16_t>(rng.UniformInt(c));
    }
  }

  // Activation order: nodes sorted by arrival, activated as time passes.
  std::vector<NodeId> by_arrival(n);
  for (size_t v = 0; v < n; ++v) by_arrival[v] = static_cast<NodeId>(v);
  std::sort(by_arrival.begin(), by_arrival.end(),
            [&](NodeId a, NodeId b) { return arrival[a] < arrival[b]; });

  std::vector<std::vector<NodeId>> active_by_comm(c);
  std::vector<NodeId> active;            // all activated nodes
  std::vector<NodeId> endpoint_history;  // for preferential attachment
  endpoint_history.reserve(2 * e);
  size_t next_arrival = 0;
  NodeId burst_src = kInvalidNode;

  auto comm_at = [&](NodeId v, double pos) -> uint16_t {
    return migrates[v] && pos >= config.migration_time_frac
               ? community_late[v]
               : community[v];
  };
  auto anomalous_at = [&](NodeId v, double pos) -> bool {
    if (config.task != TaskType::kAnomalyDetection) return false;
    const size_t window = static_cast<size_t>(pos * kAnomalyWindows);
    const double rate =
        config.anomaly_base_rate * (1.0 + config.anomaly_growth * pos);
    const uint64_t h = SplitMix64(config.seed ^ (uint64_t{v} * kAnomalyWindows +
                                                 window + 0x5eedULL));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
  };

  ds.stream.Reserve(e);
  ds.stream.EnsureNodeCapacity(n);
  for (size_t i = 0; i < e; ++i) {
    const double pos = static_cast<double>(i) / static_cast<double>(e);
    const double t =
        static_cast<double>(e) * std::pow(pos, config.time_warp);
    while (next_arrival < n && arrival[by_arrival[next_arrival]] <= pos) {
      const NodeId v = by_arrival[next_arrival++];
      active.push_back(v);
      active_by_comm[comm_at(v, pos)].push_back(v);
    }
    if (active.size() < 2) {
      // Bootstrap: activate the two earliest nodes.
      while (active.size() < 2 && next_arrival < n) {
        const NodeId v = by_arrival[next_arrival++];
        active.push_back(v);
        active_by_comm[comm_at(v, pos)].push_back(v);
      }
    }

    // Source: an anomalous node keeps bursting (its observable signature:
    // rapid-fire edges with scattered targets); otherwise preferential
    // attachment over past endpoints, else uniform.
    NodeId src;
    if (burst_src != kInvalidNode && rng.Uniform() < 0.6) {
      src = burst_src;
    } else if (!endpoint_history.empty() &&
               rng.Uniform() < config.pref_attach) {
      src = endpoint_history[rng.UniformInt(endpoint_history.size())];
    } else {
      src = active[rng.UniformInt(active.size())];
    }

    // Destination: anomalous sources spray across communities; normal ones
    // stay intra-community with probability intra_prob.
    NodeId dst;
    const bool src_anomalous = anomalous_at(src, pos);
    burst_src = src_anomalous ? src : kInvalidNode;
    if (src_anomalous || rng.Uniform() >= config.intra_prob) {
      dst = active[rng.UniformInt(active.size())];
    } else {
      const auto& pool = active_by_comm[comm_at(src, pos)];
      dst = pool.empty() ? active[rng.UniformInt(active.size())]
                         : pool[rng.UniformInt(pool.size())];
    }
    if (dst == src) dst = active[rng.UniformInt(active.size())];

    ds.stream.Append(TemporalEdge(src, dst, t)).ok();
    endpoint_history.push_back(src);
    endpoint_history.push_back(dst);

    if (rng.Uniform() < config.query_rate) {
      PropertyQuery q;
      q.node = src;
      q.time = t;
      switch (config.task) {
        case TaskType::kAnomalyDetection:
          q.class_label = src_anomalous ? 1 : 0;
          break;
        case TaskType::kNodeClassification:
        case TaskType::kNodeAffinity:
          q.class_label = comm_at(src, pos);
          break;
      }
      ds.queries.push_back(q);
    }
  }
  return ds;
}

}  // namespace splash
