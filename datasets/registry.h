// Copyright 2026 The SPLASH Reproduction Authors.
//
// Named dataset stand-ins mirroring the paper's seven benchmark streams
// (Table II): Wikipedia / Reddit / MOOC (anomaly detection), Email-EU /
// GDELT (node classification), tgbn-trade / tgbn-genre (node affinity).
// Each is a seeded synthetic stream whose drift character follows the real
// dataset's (see DESIGN.md §3); `scale` multiplies node and edge counts.

#ifndef SPLASH_DATASETS_REGISTRY_H_
#define SPLASH_DATASETS_REGISTRY_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "datasets/dataset.h"

namespace splash {

/// The seven standard stand-ins, in Table III column order.
std::vector<std::string> StandardDatasetNames();

/// Builds a registered dataset at the given scale (1.0 = base size).
/// Returns an error for unknown names.
StatusOr<Dataset> MakeDataset(const std::string& name, double scale);

}  // namespace splash

#endif  // SPLASH_DATASETS_REGISTRY_H_
