// Copyright 2026 The SPLASH Reproduction Authors.
//
// Synthetic-50/70/90 streams for Fig. 12: classification streams whose
// test period contains `intensity`% late-arriving (unseen) query nodes and
// proportional community migration at the train/test boundary.

#ifndef SPLASH_DATASETS_SHIFT_INTENSITY_H_
#define SPLASH_DATASETS_SHIFT_INTENSITY_H_

#include "datasets/dataset.h"

namespace splash {

/// `intensity` is the paper's 50 / 70 / 90 knob (any value in [0, 100]
/// works); `num_edges` sets the stream length.
Dataset GenerateShiftIntensity(int intensity, size_t num_edges);

}  // namespace splash

#endif  // SPLASH_DATASETS_SHIFT_INTENSITY_H_
