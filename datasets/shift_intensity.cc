// Copyright 2026 The SPLASH Reproduction Authors.

#include "datasets/shift_intensity.h"

#include <algorithm>

#include "datasets/synthetic.h"

namespace splash {

Dataset GenerateShiftIntensity(int intensity, size_t num_edges) {
  const double f = std::clamp(intensity, 0, 100) / 100.0;
  SyntheticConfig cfg;
  cfg.name = "synth-" + std::to_string(intensity);
  cfg.task = TaskType::kNodeClassification;
  cfg.num_edges = num_edges;
  cfg.num_nodes = std::max<size_t>(200, num_edges / 16);
  cfg.num_communities = 5;
  cfg.intra_prob = 0.85;
  // The standard 80/10/10 chrono split puts the train boundary at the 0.8
  // quantile; arrivals from just before it on are unseen during training.
  cfg.late_arrival_start = 0.78;
  cfg.late_arrival_frac = 0.95 * f;
  cfg.migration_time_frac = 0.8;
  cfg.migration_frac = 0.5 * f;
  cfg.query_rate = 0.25;
  // Mostly-uniform source picks: preferential attachment would keep
  // querying old hubs and dilute the unseen-node share the intensity knob
  // is supposed to control.
  cfg.pref_attach = 0.2;
  cfg.seed = 500 + static_cast<uint64_t>(intensity);
  return GenerateSynthetic(cfg);
}

}  // namespace splash
