// Copyright 2026 The SPLASH Reproduction Authors.

#include "datasets/scalability.h"

#include "datasets/synthetic.h"

namespace splash {

Dataset GenerateScalabilityStream(const ScalabilityOptions& opts) {
  SyntheticConfig cfg;
  cfg.name = "scalability";
  cfg.task = TaskType::kAnomalyDetection;
  cfg.num_nodes = opts.num_nodes;
  cfg.num_edges = opts.num_edges;
  cfg.num_communities = 8;
  // Low query rate: Fig. 11 measures stream-processing cost, so edges must
  // dominate queries.
  cfg.query_rate = 0.05;
  cfg.late_arrival_frac = 0.25;
  cfg.seed = opts.seed;
  return GenerateSynthetic(cfg);
}

}  // namespace splash
