// Copyright 2026 The SPLASH Reproduction Authors.

#include "datasets/registry.h"

#include <algorithm>

#include "datasets/synthetic.h"

namespace splash {

namespace {

/// Base configuration per stand-in. Sizes are kept small enough that the
/// full table benches run in minutes at SPLASH_BENCH_SCALE=0.5.
SyntheticConfig BaseConfig(const std::string& name) {
  SyntheticConfig cfg;
  cfg.name = name;
  if (name == "wikipedia-s") {
    cfg.task = TaskType::kAnomalyDetection;
    cfg.num_nodes = 2400;
    cfg.num_edges = 24000;
    cfg.num_communities = 6;
    cfg.anomaly_base_rate = 0.05;
    cfg.anomaly_growth = 1.5;
    cfg.late_arrival_frac = 0.25;
    cfg.seed = 101;
  } else if (name == "reddit-s") {
    cfg.task = TaskType::kAnomalyDetection;
    cfg.num_nodes = 3000;
    cfg.num_edges = 32000;
    cfg.num_communities = 8;
    cfg.anomaly_base_rate = 0.04;
    cfg.anomaly_growth = 2.5;  // strong property drift (paper Fig. 3c)
    cfg.late_arrival_frac = 0.3;
    cfg.pref_attach = 0.7;  // heavy-tailed degrees
    cfg.seed = 102;
  } else if (name == "mooc-s") {
    cfg.task = TaskType::kAnomalyDetection;
    cfg.num_nodes = 1400;
    cfg.num_edges = 20000;
    cfg.num_communities = 4;
    cfg.anomaly_base_rate = 0.08;  // bursty dropout-like anomalies
    cfg.anomaly_growth = 1.0;
    cfg.late_arrival_frac = 0.2;
    cfg.seed = 103;
  } else if (name == "email-eu-s") {
    cfg.task = TaskType::kNodeClassification;
    cfg.num_nodes = 900;
    cfg.num_edges = 18000;
    cfg.num_communities = 8;  // departments
    cfg.intra_prob = 0.85;
    cfg.late_arrival_frac = 0.35;
    cfg.migration_frac = 0.1;
    cfg.query_rate = 0.2;
    cfg.seed = 104;
  } else if (name == "gdelt-s") {
    cfg.task = TaskType::kNodeClassification;
    cfg.num_nodes = 1400;
    cfg.num_edges = 22000;
    cfg.num_communities = 12;
    cfg.intra_prob = 0.75;
    cfg.late_arrival_frac = 0.3;
    cfg.migration_frac = 0.15;
    cfg.query_rate = 0.2;
    cfg.seed = 105;
  } else if (name == "tgbn-trade-s") {
    cfg.task = TaskType::kNodeAffinity;
    cfg.num_nodes = 700;
    cfg.num_edges = 16000;
    cfg.num_communities = 10;
    cfg.intra_prob = 0.8;
    cfg.late_arrival_frac = 0.15;
    cfg.migration_frac = 0.2;  // preferences drift
    cfg.query_rate = 0.2;
    cfg.seed = 106;
  } else if (name == "tgbn-genre-s") {
    cfg.task = TaskType::kNodeAffinity;
    cfg.num_nodes = 1000;
    cfg.num_edges = 18000;
    cfg.num_communities = 8;
    cfg.intra_prob = 0.8;
    cfg.late_arrival_frac = 0.25;
    cfg.migration_frac = 0.1;
    cfg.query_rate = 0.2;
    cfg.seed = 107;
  } else {
    cfg.num_nodes = 0;  // sentinel: unknown
  }
  return cfg;
}

}  // namespace

std::vector<std::string> StandardDatasetNames() {
  return {"wikipedia-s", "reddit-s",      "mooc-s",      "email-eu-s",
          "gdelt-s",     "tgbn-trade-s",  "tgbn-genre-s"};
}

StatusOr<Dataset> MakeDataset(const std::string& name, double scale) {
  SyntheticConfig cfg = BaseConfig(name);
  if (cfg.num_nodes == 0) {
    return Status::Error("MakeDataset: unknown dataset '" + name + "'");
  }
  if (scale <= 0.0) {
    return Status::Error("MakeDataset: scale must be positive");
  }
  cfg.num_nodes = std::max<size_t>(
      200, static_cast<size_t>(static_cast<double>(cfg.num_nodes) * scale));
  cfg.num_edges = std::max<size_t>(
      2000, static_cast<size_t>(static_cast<double>(cfg.num_edges) * scale));
  return GenerateSynthetic(cfg);
}

}  // namespace splash
