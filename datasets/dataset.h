// Copyright 2026 The SPLASH Reproduction Authors.
//
// A dataset is an edge stream plus time-interleaved labeled property
// queries. Queries are sorted by time; replaying the stream and answering
// queries as their times pass is the evaluation protocol (paper Sec. V-A).

#ifndef SPLASH_DATASETS_DATASET_H_
#define SPLASH_DATASETS_DATASET_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "graph/edge_stream.h"

namespace splash {

struct Dataset {
  std::string name;
  TaskType task = TaskType::kAnomalyDetection;
  EdgeStream stream;
  std::vector<PropertyQuery> queries;  // sorted by time
  size_t num_classes = 2;
};

}  // namespace splash

#endif  // SPLASH_DATASETS_DATASET_H_
