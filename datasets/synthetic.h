// Copyright 2026 The SPLASH Reproduction Authors.
//
// Seeded synthetic edge-stream generator behind every dataset stand-in.
// It produces the three distribution shifts the paper studies (Fig. 3):
//   positional — nodes arrive throughout the stream (late arrivals are
//                unseen at training time) and can migrate communities;
//   structural — preferential attachment makes temporal degree grow;
//   property   — the anomaly rate / class labels change over time.

#ifndef SPLASH_DATASETS_SYNTHETIC_H_
#define SPLASH_DATASETS_SYNTHETIC_H_

#include <string>

#include "datasets/dataset.h"

namespace splash {

struct SyntheticConfig {
  std::string name = "synthetic";
  TaskType task = TaskType::kAnomalyDetection;
  size_t num_nodes = 1000;
  size_t num_edges = 20000;
  size_t num_communities = 4;

  /// Probability that a normal node's edge stays inside its community.
  double intra_prob = 0.8;

  /// Anomaly-state rate early in the stream, and its multiplicative growth
  /// toward the end (property drift). Anomalous nodes emit cross-community
  /// edges while the state lasts.
  double anomaly_base_rate = 0.04;
  double anomaly_growth = 2.0;

  /// Fraction of nodes that first appear after `late_arrival_start`
  /// (fraction of the stream) — the unseen-node knob.
  double late_arrival_frac = 0.3;
  double late_arrival_start = 0.75;

  /// Fraction of nodes that switch community at `migration_time_frac`
  /// (label/property drift for classification tasks).
  double migration_frac = 0.0;
  double migration_time_frac = 0.8;

  /// Expected labeled queries per edge.
  double query_rate = 0.15;

  /// Probability of picking the source by degree (preferential attachment)
  /// rather than uniformly among active nodes.
  double pref_attach = 0.6;

  /// Timestamp concavity: t(i) = span * (i/E)^time_warp. Values < 1 make
  /// the stream accelerate (more events per unit time later), which is what
  /// real temporal networks do and what drives the paper's Fig. 3b
  /// growing-degree panel. 1.0 = uniform spacing.
  double time_warp = 0.5;

  uint64_t seed = 42;
};

Dataset GenerateSynthetic(const SyntheticConfig& config);

}  // namespace splash

#endif  // SPLASH_DATASETS_SYNTHETIC_H_
