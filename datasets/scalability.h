// Copyright 2026 The SPLASH Reproduction Authors.
//
// Parameterized stream generator for the Fig. 11 scalability sweep: fixed
// per-edge character, scalable node/edge counts.

#ifndef SPLASH_DATASETS_SCALABILITY_H_
#define SPLASH_DATASETS_SCALABILITY_H_

#include "datasets/dataset.h"

namespace splash {

struct ScalabilityOptions {
  size_t num_edges = 100000;
  size_t num_nodes = 2000;
  uint64_t seed = 11;
};

Dataset GenerateScalabilityStream(const ScalabilityOptions& opts);

}  // namespace splash

#endif  // SPLASH_DATASETS_SCALABILITY_H_
