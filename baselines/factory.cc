// Copyright 2026 The SPLASH Reproduction Authors.

#include "baselines/factory.h"

#include "baselines/standins.h"

namespace splash {

StatusOr<std::unique_ptr<TemporalPredictor>> MakeBaseline(
    const std::string& name, bool random_features,
    const BaselineOptions& opts) {
  if (name == "slade") {
    SladeStandinOptions sopts;
    sopts.k_recent = opts.k_recent;
    sopts.seed = opts.seed;
    return std::unique_ptr<TemporalPredictor>(
        std::make_unique<SladeStandin>(sopts));
  }

  TgnnStandinOptions topts;
  if (name == "jodie") {
    topts.family = TgnnFamily::kJodie;
  } else if (name == "dysat") {
    topts.family = TgnnFamily::kDySat;
  } else if (name == "tgat") {
    topts.family = TgnnFamily::kTgat;
  } else if (name == "tgn") {
    topts.family = TgnnFamily::kTgn;
  } else if (name == "graphmixer") {
    topts.family = TgnnFamily::kGraphMixer;
  } else if (name == "dygformer") {
    topts.family = TgnnFamily::kDyGFormer;
  } else {
    return Status::Error("MakeBaseline: unknown baseline '" + name + "'");
  }
  topts.random_features = random_features;
  topts.feature_dim = opts.node_feature_dim;
  topts.hidden_dim = opts.hidden_dim;
  topts.time_dim = opts.time_dim;
  topts.k_recent = opts.k_recent;
  topts.seed = opts.seed;
  return std::unique_ptr<TemporalPredictor>(
      std::make_unique<TgnnStandin>(topts));
}

}  // namespace splash
