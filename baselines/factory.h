// Copyright 2026 The SPLASH Reproduction Authors.
//
// Name-based construction of the baseline model zoo.

#ifndef SPLASH_BASELINES_FACTORY_H_
#define SPLASH_BASELINES_FACTORY_H_

#include <memory>
#include <string>

#include "core/predictor.h"
#include "core/status.h"

namespace splash {

struct BaselineOptions {
  size_t node_feature_dim = 32;
  size_t hidden_dim = 64;
  size_t time_dim = 16;
  size_t k_recent = 10;
  uint64_t seed = 4242;
};

/// Builds a baseline by lowercase name: "jodie", "dysat", "tgat", "tgn",
/// "graphmixer", "dygformer", or "slade". `random_features` selects the
/// "+RF" variant (ignored by slade). Unknown names yield an error status.
StatusOr<std::unique_ptr<TemporalPredictor>> MakeBaseline(
    const std::string& name, bool random_features,
    const BaselineOptions& opts);

}  // namespace splash

#endif  // SPLASH_BASELINES_FACTORY_H_
