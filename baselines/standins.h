// Copyright 2026 The SPLASH Reproduction Authors.
//
// Baseline stand-ins for the comparison tables. These are NOT faithful
// reimplementations of JODIE/TGAT/TGN/...; they are deliberately small
// models that reproduce each family's *failure mode under distribution
// shift* that the paper leans on (see DESIGN.md §3):
//
//   - memory families (JODIE, TGN): a per-node recurrent EMA embedding.
//     Unseen nodes start from nothing, so without input features the model
//     collapses on shifted test periods.
//   - attention families (TGAT, DySAT, DyGFormer): recency-weighted
//     neighbor aggregation with a larger backbone (more parameters, slower
//     — the Fig. 10 trade-off axis).
//   - mixer family (GraphMixer): uniform aggregation, mid-sized backbone.
//
// The "+RF" variants feed per-node random features (the paper's strongest
// simple fix); plain variants feed zeros / memory only.
//
// SladeStandin mirrors SLADE's training-free anomaly scoring: neighbor-set
// novelty plus inter-event time surprise.

#ifndef SPLASH_BASELINES_STANDINS_H_
#define SPLASH_BASELINES_STANDINS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "core/slim.h"
#include "graph/neighbor_memory.h"
#include "tensor/rng.h"

namespace splash {

enum class TgnnFamily { kJodie, kDySat, kTgat, kTgn, kGraphMixer, kDyGFormer };

struct TgnnStandinOptions {
  TgnnFamily family = TgnnFamily::kTgat;
  bool random_features = false;
  size_t feature_dim = 32;
  size_t hidden_dim = 64;
  size_t time_dim = 16;
  size_t k_recent = 10;
  uint64_t seed = 4242;
};

class TgnnStandin : public TemporalPredictor {
 public:
  explicit TgnnStandin(const TgnnStandinOptions& opts);

  std::string name() const override { return name_; }
  Status Prepare(const Dataset& ds, const ChronoSplit& split) override;
  void ResetState() override;
  void ObserveEdge(const TemporalEdge& e, size_t edge_index) override;
  Matrix PredictBatch(const std::vector<PropertyQuery>& queries) override;
  double TrainBatch(const std::vector<PropertyQuery>& queries) override;
  /// Staged batches (core/predictor.h): StageBatch reads the neighbor
  /// rings / node memory once; TrainStaged / PredictStaged touch only the
  /// staged tensors and the backbone weights, so the pipelined executor
  /// can overlap them with ObserveBulk of later edges instead of falling
  /// back to the serial path.
  bool SupportsStagedBatches() const override { return true; }
  void StageBatch(const std::vector<PropertyQuery>& queries) override;
  double TrainStaged() override;
  Matrix PredictStaged() override;
  void SetTraining(bool training) override;
  size_t ParamCount() const override;

 private:
  bool IsMemoryFamily() const {
    return opts_.family == TgnnFamily::kJodie ||
           opts_.family == TgnnFamily::kTgn;
  }
  bool IsAttentionFamily() const {
    return opts_.family == TgnnFamily::kTgat ||
           opts_.family == TgnnFamily::kDySat ||
           opts_.family == TgnnFamily::kDyGFormer;
  }
  /// Current input embedding of `node` (feature_dim floats).
  void WriteInput(NodeId node, float* out) const;
  void AssembleBatch(const std::vector<PropertyQuery>& queries);

  TgnnStandinOptions opts_;
  std::string name_;
  Rng rng_;
  NeighborMemory memory_;
  std::unique_ptr<SlimModel> backbone_;

  // Memory-family state: per-node EMA embedding + seen flags.
  Matrix node_memory_;
  std::vector<uint8_t> initialized_;

  SlimBatchInput batch_;
  std::vector<int> labels_;
  size_t staged_rows_ = 0;  // rows of the staged batch (0 = none staged)
  // Per-worker gather scratch: batches are assembled in parallel on the
  // runtime/ ThreadPool (reads only; disjoint output rows per chunk).
  std::vector<std::vector<NodeId>> worker_nbr_ids_;
  std::vector<std::vector<double>> worker_nbr_times_;
  std::vector<float> mix_scratch_;
};

struct SladeStandinOptions {
  size_t k_recent = 10;
  uint64_t seed = 4242;
};

class SladeStandin : public TemporalPredictor {
 public:
  explicit SladeStandin(const SladeStandinOptions& opts);

  std::string name() const override { return "SLADE"; }
  Status Prepare(const Dataset& ds, const ChronoSplit& split) override;
  void ResetState() override;
  void ObserveEdge(const TemporalEdge& e, size_t edge_index) override;
  Matrix PredictBatch(const std::vector<PropertyQuery>& queries) override;
  /// Training-free staging: StageBatch materializes the scores from
  /// current novelty/surprise state; PredictStaged returns the frozen
  /// matrix, reading no streaming state afterward.
  bool SupportsStagedBatches() const override { return true; }
  void StageBatch(const std::vector<PropertyQuery>& queries) override;
  double TrainStaged() override { return 0.0; }
  Matrix PredictStaged() override { return staged_scores_; }
  void SetTraining(bool) override {}
  size_t ParamCount() const override { return 0; }

 private:
  void EnsureNodeCapacity(size_t n);

  SladeStandinOptions opts_;
  // Per-node streaming statistics. The bloom fingerprint approximates the
  // long-term neighbor set in 64 bits; novelty = new bits on insert.
  std::vector<uint64_t> neighbor_bloom_;
  std::vector<float> novelty_ema_;
  std::vector<double> last_time_;
  std::vector<float> gap_ema_;
  std::vector<float> surprise_ema_;
  std::vector<uint8_t> active_;
  Matrix staged_scores_;  // grow-only staging buffer (B x 2)
};

}  // namespace splash

#endif  // SPLASH_BASELINES_STANDINS_H_
