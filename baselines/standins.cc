// Copyright 2026 The SPLASH Reproduction Authors.

#include "baselines/standins.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "runtime/thread_pool.h"

namespace splash {

namespace {

const char* FamilyName(TgnnFamily f) {
  switch (f) {
    case TgnnFamily::kJodie: return "JODIE";
    case TgnnFamily::kDySat: return "DySAT";
    case TgnnFamily::kTgat: return "TGAT";
    case TgnnFamily::kTgn: return "TGN";
    case TgnnFamily::kGraphMixer: return "GraphMixer";
    case TgnnFamily::kDyGFormer: return "DyGFormer";
  }
  return "?";
}

/// Backbone width multiplier: the heavier the original architecture, the
/// larger the stand-in (drives the Fig. 10 parameter/latency axes).
size_t HiddenMultiplier(TgnnFamily f) {
  switch (f) {
    case TgnnFamily::kJodie: return 1;
    case TgnnFamily::kDySat: return 2;
    case TgnnFamily::kTgat: return 2;
    case TgnnFamily::kTgn: return 2;
    case TgnnFamily::kGraphMixer: return 3;
    case TgnnFamily::kDyGFormer: return 4;
  }
  return 1;
}

// Memory EMA rate: how fast a node's embedding tracks its latest partner.
constexpr float kMemoryRate = 0.2f;

}  // namespace

TgnnStandin::TgnnStandin(const TgnnStandinOptions& opts)
    : opts_(opts),
      name_(std::string(FamilyName(opts.family)) +
            (opts.random_features ? "+RF" : "")),
      rng_(opts.seed),
      memory_(opts.k_recent == 0 ? 1 : opts.k_recent) {
  mix_scratch_.resize(opts_.feature_dim);
}

Status TgnnStandin::Prepare(const Dataset& ds, const ChronoSplit& split) {
  (void)split;
  if (ds.stream.empty()) {
    return Status::Error("TgnnStandin::Prepare: empty stream");
  }
  SlimOptions backbone;
  backbone.feature_dim = opts_.feature_dim;
  backbone.time_dim = opts_.time_dim;
  backbone.hidden_dim = opts_.hidden_dim * HiddenMultiplier(opts_.family);
  backbone.out_dim = std::max<size_t>(2, ds.num_classes);
  backbone.k_recent = memory_.k();  // same clamp as the ring buffer
  backbone_ = std::make_unique<SlimModel>(backbone, &rng_);

  memory_.EnsureNodeCapacity(ds.stream.num_nodes());
  if (IsMemoryFamily()) {
    node_memory_ = Matrix(ds.stream.num_nodes(), opts_.feature_dim);
    initialized_.assign(ds.stream.num_nodes(), 0);
  }
  ResetState();
  return Status::Ok();
}

void TgnnStandin::ResetState() {
  memory_.Clear();
  if (IsMemoryFamily()) {
    node_memory_.SetZero();
    std::fill(initialized_.begin(), initialized_.end(), uint8_t{0});
  }
}

void TgnnStandin::WriteInput(NodeId node, float* out) const {
  const size_t dv = opts_.feature_dim;
  if (IsMemoryFamily()) {
    if (node < node_memory_.rows()) {
      std::memcpy(out, node_memory_.Row(node), dv * sizeof(float));
    } else {
      std::memset(out, 0, dv * sizeof(float));
    }
    return;
  }
  if (opts_.random_features) {
    const uint64_t key = opts_.seed * 0x9e3779b97f4a7c15ULL + node;
    for (size_t j = 0; j < dv; ++j) {
      out[j] = HashGaussian((key << 8) ^ (0x8a5eULL + j));
    }
    return;
  }
  std::memset(out, 0, dv * sizeof(float));
}

void TgnnStandin::ObserveEdge(const TemporalEdge& e, size_t edge_index) {
  memory_.Observe(e, edge_index);
  if (!IsMemoryFamily()) return;

  const size_t hi = static_cast<size_t>(std::max(e.src, e.dst)) + 1;
  if (hi > node_memory_.rows()) {
    const size_t target = GrowCapacity(node_memory_.rows(), hi);
    Matrix next(target, opts_.feature_dim);
    std::memcpy(next.data(), node_memory_.data(),
                node_memory_.size() * sizeof(float));
    node_memory_ = std::move(next);
    initialized_.resize(target, 0);
  }
  const size_t dv = opts_.feature_dim;
  auto init_node = [&](NodeId v) {
    if (initialized_[v]) return;
    initialized_[v] = 1;
    if (opts_.random_features) {
      // Memory starts from the node's random feature.
      float* row = node_memory_.Row(v);
      const uint64_t key = opts_.seed * 0x9e3779b97f4a7c15ULL + v;
      for (size_t j = 0; j < dv; ++j) {
        row[j] = HashGaussian((key << 8) ^ (0x8a5eULL + j));
      }
    }
  };
  init_node(e.src);
  init_node(e.dst);
  // Mutual EMA update: each endpoint's embedding drifts toward its
  // partner's — a parameter-free message-passing memory.
  float* ms = node_memory_.Row(e.src);
  float* md = node_memory_.Row(e.dst);
  for (size_t j = 0; j < dv; ++j) {
    const float s = ms[j], d = md[j];
    ms[j] = (1.0f - kMemoryRate) * s + kMemoryRate * d;
    md[j] = (1.0f - kMemoryRate) * d + kMemoryRate * s;
  }
}

void TgnnStandin::AssembleBatch(const std::vector<PropertyQuery>& queries) {
  const size_t b = queries.size();
  const size_t k = memory_.k();
  const size_t dv = opts_.feature_dim;
  batch_.node_feats.Resize(b, dv);
  batch_.neighbor_feats.Resize(b * k, dv);
  batch_.time_deltas.resize(b * k);
  batch_.mask.Resize(b, k);
  batch_.edge_weights.resize(b * k);

  ThreadPool* pool = ThreadPool::Global();
  const size_t num_workers = pool->num_threads();
  if (worker_nbr_ids_.size() < num_workers) {
    worker_nbr_ids_.resize(num_workers);
    worker_nbr_times_.resize(num_workers);
  }
  for (size_t w = 0; w < num_workers; ++w) {
    if (worker_nbr_ids_[w].size() < k) {
      worker_nbr_ids_[w].resize(k);
      worker_nbr_times_[w].resize(k);
    }
  }

  const bool attention = IsAttentionFamily();
  pool->ParallelFor(0, b, kBatchAssembleGrain, [&](size_t r0, size_t r1,
                                                   size_t worker) {
    NodeId* nbr_ids = worker_nbr_ids_[worker].data();
    double* nbr_times = worker_nbr_times_[worker].data();
    for (size_t bi = r0; bi < r1; ++bi) {
      const PropertyQuery& q = queries[bi];
      WriteInput(q.node, batch_.node_feats.Row(bi));
      const size_t count = memory_.GatherRecent(q.node, nbr_ids, nbr_times);
      float* mask_row = batch_.mask.Row(bi);
      for (size_t j = 0; j < k; ++j) {
        const size_t idx = bi * k + j;
        if (j < count) {
          WriteInput(nbr_ids[j], batch_.neighbor_feats.Row(idx));
          const double dt = q.time - nbr_times[j];
          batch_.time_deltas[idx] = dt;
          // Attention families favor recent partners; others average evenly.
          batch_.edge_weights[idx] =
              attention ? 1.0f / (1.0f + static_cast<float>(std::log1p(
                                             dt < 0.0 ? 0.0 : dt)))
                        : 1.0f;
          mask_row[j] = 1.0f;
        } else {
          std::memset(batch_.neighbor_feats.Row(idx), 0, dv * sizeof(float));
          batch_.time_deltas[idx] = 0.0;
          batch_.edge_weights[idx] = 0.0f;
          mask_row[j] = 0.0f;
        }
      }
    }
  });
}

void TgnnStandin::StageBatch(const std::vector<PropertyQuery>& queries) {
  staged_rows_ = queries.size();
  if (!backbone_ || queries.empty()) return;
  AssembleBatch(queries);
  // Labels are staged unconditionally (a B-int clamp, noise next to the
  // feature gathers) so TrainStaged is valid after ANY StageBatch — a
  // mode-gated skip would leave stale labels for callers that train
  // without the trainer's SetTraining dance.
  const int max_label = static_cast<int>(backbone_->options().out_dim) - 1;
  labels_.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    labels_[i] = std::clamp(queries[i].class_label, 0, max_label);
  }
}

double TgnnStandin::TrainStaged() {
  if (!backbone_ || staged_rows_ == 0) return 0.0;
  return backbone_->TrainStep(batch_, labels_);
}

Matrix TgnnStandin::PredictStaged() {
  if (!backbone_ || staged_rows_ == 0) {
    return Matrix(staged_rows_, backbone_ ? backbone_->options().out_dim : 2);
  }
  return backbone_->Forward(batch_);
}

Matrix TgnnStandin::PredictBatch(const std::vector<PropertyQuery>& queries) {
  StageBatch(queries);
  return PredictStaged();
}

double TgnnStandin::TrainBatch(const std::vector<PropertyQuery>& queries) {
  StageBatch(queries);
  return TrainStaged();
}

void TgnnStandin::SetTraining(bool training) {
  if (backbone_) backbone_->SetTraining(training);
}

size_t TgnnStandin::ParamCount() const {
  return backbone_ ? backbone_->ParamCount() : 0;
}

// ---------------------------------------------------------------------------
// SLADE stand-in
// ---------------------------------------------------------------------------

SladeStandin::SladeStandin(const SladeStandinOptions& opts) : opts_(opts) {}

Status SladeStandin::Prepare(const Dataset& ds, const ChronoSplit& split) {
  (void)split;
  EnsureNodeCapacity(ds.stream.num_nodes());
  ResetState();
  return Status::Ok();
}

void SladeStandin::EnsureNodeCapacity(size_t n) {
  if (n <= neighbor_bloom_.size()) return;
  const size_t target = GrowCapacity(neighbor_bloom_.size(), n);
  neighbor_bloom_.resize(target, 0);
  novelty_ema_.resize(target, 0.0f);
  last_time_.resize(target, 0.0);
  gap_ema_.resize(target, 0.0f);
  surprise_ema_.resize(target, 0.0f);
  active_.resize(target, 0);
}

void SladeStandin::ResetState() {
  std::fill(neighbor_bloom_.begin(), neighbor_bloom_.end(), uint64_t{0});
  std::fill(novelty_ema_.begin(), novelty_ema_.end(), 0.0f);
  std::fill(last_time_.begin(), last_time_.end(), 0.0);
  std::fill(gap_ema_.begin(), gap_ema_.end(), 0.0f);
  std::fill(surprise_ema_.begin(), surprise_ema_.end(), 0.0f);
  std::fill(active_.begin(), active_.end(), uint8_t{0});
}

void SladeStandin::ObserveEdge(const TemporalEdge& e, size_t edge_index) {
  (void)edge_index;
  const size_t hi = static_cast<size_t>(std::max(e.src, e.dst)) + 1;
  EnsureNodeCapacity(hi);
  auto update = [&](NodeId v, NodeId partner) {
    // Neighbor-set novelty via a 2-bit bloom probe.
    const uint64_t h = SplitMix64(uint64_t{partner} + 0x51adeULL);
    const uint64_t bits =
        (uint64_t{1} << (h & 63)) | (uint64_t{1} << ((h >> 6) & 63));
    const bool novel = (neighbor_bloom_[v] & bits) != bits;
    neighbor_bloom_[v] |= bits;
    novelty_ema_[v] = 0.85f * novelty_ema_[v] + 0.15f * (novel ? 1.0f : 0.0f);

    // Inter-event time surprise.
    if (active_[v]) {
      const float gap = static_cast<float>(e.time - last_time_[v]);
      const float expected = gap_ema_[v];
      const float surprise =
          std::fabs(gap - expected) / (expected + 1.0f);
      surprise_ema_[v] =
          0.85f * surprise_ema_[v] + 0.15f * std::min(surprise, 4.0f);
      gap_ema_[v] = 0.8f * gap_ema_[v] + 0.2f * gap;
    } else {
      active_[v] = 1;
    }
    last_time_[v] = e.time;
  };
  update(e.src, e.dst);
  update(e.dst, e.src);
}

void SladeStandin::StageBatch(const std::vector<PropertyQuery>& queries) {
  staged_scores_.Resize(queries.size(), 2);
  for (size_t i = 0; i < queries.size(); ++i) {
    const NodeId v = queries[i].node;
    float score = 0.0f;
    if (v < active_.size() && active_[v]) {
      score = novelty_ema_[v] + 0.3f * surprise_ema_[v];
    }
    staged_scores_(i, 0) = 0.0f;
    staged_scores_(i, 1) = score;  // col 1 - col 0 is the anomaly score
  }
}

Matrix SladeStandin::PredictBatch(const std::vector<PropertyQuery>& queries) {
  StageBatch(queries);
  return PredictStaged();
}

}  // namespace splash
