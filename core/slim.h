// Copyright 2026 The SPLASH Reproduction Authors.
//
// SLIM (paper Sec. IV-A): the deliberately small temporal model SPLASH
// pairs with feature augmentation. Per query node it combines
//   - the node's own augmented feature,
//   - its k most recent neighbors' features, each tagged with a fixed
//     sinusoidal encoding of the time delta,
// through a two-branch MLP:
//
//   m_j  = relu([x_j || phi(dt_j)] W1 + b1)        per neighbor message
//   agg  = masked weighted mean_j m_j              neighbor branch
//   self = relu(x W2 + b2)                         self branch
//   h    = relu([agg || self] W3 + b3)
//   out  = h W4 + b4                               class scores
//
// Forward() assembles everything in preallocated scratch matrices (they
// grow once to the largest batch and then stop allocating; activations use
// the padded 64B-aligned layout) and runs on the runtime-dispatched
// kernels from tensor/matrix.h — each bias+ReLU rides its GEMM's tile
// store as a fused epilogue, and the time encoding runs on the dispatched
// sincos kernel. TrainStep() backpropagates by hand and applies the fused
// Adam kernel — no autograd, no graph, no allocation after warm-up.
//
// Both are batch-parallel on the runtime/ ThreadPool: the batch is cut
// into fixed-size row chunks (boundaries depend on the batch size only,
// never the thread count) and every activation row is owned by exactly
// one chunk, so forward chunks write disjoint rows of the shared scratch.
// In TrainStep each worker backpropagates its chunks into a private
// grow-only gradient scratch; the partials are then reduced into the Adam
// accumulators in fixed worker order, so training is deterministic for a
// given thread count. Dropout draws come from per-chunk Rng streams seeded
// by (dropout_seed, step, chunk) — identical at any thread count > 1.
// With one thread the pre-refactor serial path runs bit-for-bit (dropout
// from the model Rng, full-range kernels).

#ifndef SPLASH_CORE_SLIM_H_
#define SPLASH_CORE_SLIM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/serialize.h"
#include "tensor/matrix.h"
#include "tensor/packed.h"
#include "tensor/rng.h"

namespace splash {

struct SlimOptions {
  size_t feature_dim = 32;  // Dv: augmented node feature width
  size_t time_dim = 16;     // Dt: time-delta encoding width
  size_t hidden_dim = 64;   // H
  size_t out_dim = 2;       // classes
  size_t k_recent = 10;     // K: neighbors per query
  float dropout = 0.1f;     // on h during training
  float lr = 5e-3f;         // Adam step size
  /// Seed of the per-chunk dropout streams used by the batch-parallel
  /// train path (threads > 1). The serial path draws from the model Rng
  /// instead, preserving the pre-parallel bit-exact behavior.
  uint64_t dropout_seed = 0xd50bd50bULL;
};

/// One batch of assembled inputs. Row b of node_feats is the query node;
/// rows [b*K, (b+1)*K) of neighbor_feats are its gathered neighbors
/// (newest first), with time_deltas / edge_weights parallel to them and
/// mask(b, j) = 1 iff neighbor slot j is valid.
struct SlimBatchInput {
  Matrix node_feats;                // B x Dv
  Matrix neighbor_feats;            // B*K x Dv
  std::vector<double> time_deltas;  // B*K
  Matrix mask;                      // B x K
  std::vector<float> edge_weights;  // B*K
};

/// Forward-pass activations (grow-only). The model owns one for its fused
/// Forward/TrainStep paths; snapshot readers (serve/) pass their own to the
/// const PredictConst path so concurrent inference never touches model
/// state — that is the const-correctness contract the serving layer's
/// lock-free reads rely on.
struct SlimForwardScratch {
  Matrix cat1;      // B*K x (Dv + Dt): [neighbor feat || time enc]
  Matrix msg_pre;   // B*K x H (pre-ReLU, reused as post-ReLU in place)
  Matrix agg;       // B x H
  Matrix self_pre;  // B x H
  Matrix cat2;      // B x 2H
  Matrix h_pre;     // B x H
  Matrix out;       // B x O
  std::vector<float> inv_weight;   // B: 1 / sum of valid edge weights
  std::vector<uint8_t> drop_mask;  // B*H during training

  /// Grows every matrix for a B-row batch of `opts`-shaped inputs.
  void Resize(size_t b, size_t k_recent, size_t feature_dim, size_t time_dim,
              size_t hidden_dim, size_t out_dim, bool dropout);
};

class SlimModel {
 public:
  SlimModel(const SlimOptions& opts, Rng* rng);

  void SetTraining(bool training) { training_ = training; }

  /// Batched forward pass; returns a B x out_dim score matrix.
  Matrix Forward(const SlimBatchInput& input);

  /// Inference against frozen weights using caller-owned scratch: serial,
  /// dropout-free, and const — safe to call from many reader threads at
  /// once (each with its own scratch) while no writer mutates the model.
  /// Bit-identical to Forward() in eval mode. Returns a reference into
  /// `scratch` (valid until its next use) so steady-state queries stay
  /// allocation-free — the serving read path's contract.
  const Matrix& PredictConst(const SlimBatchInput& input,
                             SlimForwardScratch* scratch) const;

  /// Forward + cross-entropy backward + Adam update. labels[b] in
  /// [0, out_dim). Returns the mean batch loss.
  double TrainStep(const SlimBatchInput& input,
                   const std::vector<int>& labels);

  size_t ParamCount() const;
  const SlimOptions& options() const { return opts_; }

  /// Switches the const read path (PredictConst) between fp32 packed
  /// weights (default, the determinism reference: bit-identical to the
  /// unpacked kernels per backend) and the bf16 packed replica
  /// (half the weight-streaming bytes, fp32 accumulation,
  /// tolerance-equivalent). Enabling packs the bf16 operands immediately;
  /// training and Forward() always run fp32 either way.
  void SetReplicaPrecisionBf16(bool bf16);
  bool replica_precision_bf16() const { return bf16_replica_; }

  /// Re-packs the read-path GEMM operands from the current weights
  /// (pack-once / reuse-many). Runs automatically after construction,
  /// every TrainStep, and a successful Deserialize; the serve layer also
  /// calls it at snapshot publish so a replica's first read never packs.
  void PackWeights();

  /// Resident bytes of the packed weight operands the const read path
  /// streams: the bf16 packs when the replica is bf16 (exactly half the
  /// fp32 figure — same geometry, half the element width), else fp32.
  size_t PackedWeightBytes() const;

  /// Checkpoint hooks: the learned state — every parameter matrix plus its
  /// Adam moments, the Adam step counter, and the train-call counter that
  /// tags the per-chunk dropout streams. Gradient matrices and activation
  /// scratch are per-step transients and are not serialized. Deserialize
  /// verifies each matrix against the architecture-derived shape, so a
  /// stream from a differently-sized model is rejected, never reshaped.
  void Serialize(ByteWriter* w) const;
  bool Deserialize(ByteReader* r);

 private:
  // Parameter order for gradient scratch/reduction: w1 b1 w2 b2 w3 b3 w4 b4.
  static constexpr size_t kNumParams = 8;

  struct Param {
    Matrix w, grad, m, v;  // value, gradient, Adam moments
  };

  /// The gradient destinations of one backward pass: either the Params'
  /// own grad matrices (serial) or one worker's private scratch (parallel).
  struct GradRefs {
    Matrix* g[kNumParams];
  };

  /// One worker's private gradient accumulators (grow-only).
  struct GradScratch {
    Matrix g[kNumParams];
  };

  /// Grows every forward/backward scratch matrix for a B-row batch. Must
  /// run before chunks are dispatched: Resize may reallocate.
  void ResizeScratch(size_t b, bool for_training);
  /// Forward for batch rows [r0, r1) into `s` (disjoint rows per chunk).
  /// `drop_rng` non-null applies training dropout. Const: every mutated
  /// activation lives in the scratch, so readers with private scratch can
  /// run this concurrently against frozen weights. `const_read` marks the
  /// PredictConst path — the only one eligible for the bf16 replica.
  void ForwardRange(const SlimBatchInput& input, size_t r0, size_t r1,
                    Rng* drop_rng, SlimForwardScratch* s,
                    bool const_read = false) const;
  /// One fused dense layer (GEMM + bias + optional ReLU): the packed
  /// kernels when the pack tier is on (bf16 operand iff const_read and the
  /// replica is bf16), the unpacked fused kernel otherwise. `pi` indexes
  /// the pack slot of `w` (w1..w4 -> 0..3).
  void DenseLayer(const Matrix& in, const Matrix& w, const float* bias,
                  size_t pi, Matrix* out, size_t r0, size_t r1, bool relu,
                  bool const_read) const;
  /// Runs ResizeScratch + ForwardRange serial or chunk-parallel.
  void ForwardAll(const SlimBatchInput& input, bool for_training);
  /// Softmax/CE + backprop for batch rows [r0, r1): gradient contributions
  /// of those rows go to `grads` (added when accumulate); the rows' summed
  /// loss is added to *loss_out.
  void BackwardRange(const SlimBatchInput& input,
                     const std::vector<int>& labels, size_t r0, size_t r1,
                     const GradRefs& grads, bool accumulate,
                     double* loss_out);
  void EncodeTime(const std::vector<double>& deltas, size_t i0, size_t i1,
                  SlimForwardScratch* s) const;
  void EnsureWorkerScratch(size_t num_workers);
  GradRefs MainGradRefs();
  void AdamStep(Param* p);

  SlimOptions opts_;
  Rng* rng_;
  bool training_ = false;
  size_t adam_t_ = 0;
  uint64_t train_calls_ = 0;  // tags the per-chunk dropout streams

  Param w1_, b1_, w2_, b2_, w3_, b3_, w4_, b4_;

  // Read-path GEMM operands (tensor/packed.h), repacked by PackWeights on
  // every weight mutation so the const read path never packs. The bf16
  // packs are maintained only while bf16_replica_ is set.
  PackedMatrix pw_[4];
  PackedMatrix16 pw16_[4];
  bool bf16_replica_ = false;

  // Forward scratch for the fused (non-const) paths, kept across calls
  // (grow-only). The const PredictConst path uses caller scratch instead.
  SlimForwardScratch fwd_;

  // Backward scratch.
  Matrix d_out_, d_h_, d_cat2_, d_msg_, d_self_;

  // Batch-parallel scratch (grow-only): per-worker gradient partials and
  // per-chunk loss partials, reduced in fixed order.
  std::vector<GradScratch> worker_grads_;
  std::vector<double> chunk_loss_;
};

}  // namespace splash

#endif  // SPLASH_CORE_SLIM_H_
