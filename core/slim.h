// Copyright 2026 The SPLASH Reproduction Authors.
//
// SLIM (paper Sec. IV-A): the deliberately small temporal model SPLASH
// pairs with feature augmentation. Per query node it combines
//   - the node's own augmented feature,
//   - its k most recent neighbors' features, each tagged with a fixed
//     sinusoidal encoding of the time delta,
// through a two-branch MLP:
//
//   m_j  = relu([x_j || phi(dt_j)] W1 + b1)        per neighbor message
//   agg  = masked weighted mean_j m_j              neighbor branch
//   self = relu(x W2 + b2)                         self branch
//   h    = relu([agg || self] W3 + b3)
//   out  = h W4 + b4                               class scores
//
// Forward() assembles everything in preallocated scratch matrices (they
// grow once to the largest batch and then stop allocating) and runs on the
// blocked kernels from tensor/matrix.h. TrainStep() backpropagates by hand
// and applies Adam — no autograd, no graph, no allocation after warm-up.

#ifndef SPLASH_CORE_SLIM_H_
#define SPLASH_CORE_SLIM_H_

#include <cstddef>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace splash {

struct SlimOptions {
  size_t feature_dim = 32;  // Dv: augmented node feature width
  size_t time_dim = 16;     // Dt: time-delta encoding width
  size_t hidden_dim = 64;   // H
  size_t out_dim = 2;       // classes
  size_t k_recent = 10;     // K: neighbors per query
  float dropout = 0.1f;     // on h during training
  float lr = 5e-3f;         // Adam step size
};

/// One batch of assembled inputs. Row b of node_feats is the query node;
/// rows [b*K, (b+1)*K) of neighbor_feats are its gathered neighbors
/// (newest first), with time_deltas / edge_weights parallel to them and
/// mask(b, j) = 1 iff neighbor slot j is valid.
struct SlimBatchInput {
  Matrix node_feats;                // B x Dv
  Matrix neighbor_feats;            // B*K x Dv
  std::vector<double> time_deltas;  // B*K
  Matrix mask;                      // B x K
  std::vector<float> edge_weights;  // B*K
};

class SlimModel {
 public:
  SlimModel(const SlimOptions& opts, Rng* rng);

  void SetTraining(bool training) { training_ = training; }

  /// Batched forward pass; returns a B x out_dim score matrix.
  Matrix Forward(const SlimBatchInput& input);

  /// Forward + cross-entropy backward + Adam update. labels[b] in
  /// [0, out_dim). Returns the mean batch loss.
  double TrainStep(const SlimBatchInput& input,
                   const std::vector<int>& labels);

  size_t ParamCount() const;
  const SlimOptions& options() const { return opts_; }

 private:
  struct Param {
    Matrix w, grad, m, v;  // value, gradient, Adam moments
  };

  void ForwardInternal(const SlimBatchInput& input);
  void EncodeTime(const std::vector<double>& deltas);
  void AdamStep(Param* p);

  SlimOptions opts_;
  Rng* rng_;
  bool training_ = false;
  size_t adam_t_ = 0;

  Param w1_, b1_, w2_, b2_, w3_, b3_, w4_, b4_;

  // Forward scratch, kept across calls (grow-only).
  Matrix cat1_;      // B*K x (Dv + Dt): [neighbor feat || time enc]
  Matrix msg_pre_;   // B*K x H (pre-ReLU, reused as post-ReLU in place)
  Matrix agg_;       // B x H
  Matrix self_pre_;  // B x H
  Matrix cat2_;      // B x 2H
  Matrix h_pre_;     // B x H
  Matrix out_;       // B x O
  std::vector<float> inv_weight_;   // B: 1 / sum of valid edge weights
  std::vector<uint8_t> drop_mask_;  // B*H during training

  // Backward scratch.
  Matrix d_out_, d_h_, d_cat2_, d_msg_, d_self_;
};

}  // namespace splash

#endif  // SPLASH_CORE_SLIM_H_
