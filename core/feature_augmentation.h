// Copyright 2026 The SPLASH Reproduction Authors.
//
// SPLASH feature augmentation (paper Sec. IV-B): three processes that give
// every node — including nodes unseen during training — an informative
// feature vector at O(feature_dim) per edge:
//
//   R (random):     reproducible per-node Gaussian features. Seen nodes use
//                   a stateless hash; unseen nodes receive the running mean
//                   of their observed neighbors' features (Eq. (4)-(5)).
//   P (positional): a community-revealing embedding fit on train edges by
//                   Laplacian smoothing (a cheap node2vec stand-in), with
//                   the same Eq. (4)-(5) propagation to unseen nodes.
//   S (structural): sinusoidal encoding of the node's log temporal degree,
//                   computable for any node at any time from DegreeTracker.
//
// Split of responsibilities:
//   FitSeen(stream, t)  — one-time static fit on edges with time <= t
//                         (seen set, positional embedding), then Reset().
//   Reset()             — clears *dynamic* state (degrees, propagated rows)
//                         so a replay can start from the beginning.
//   ObserveEdge(e)      — per-edge dynamic update: degree counts + Eq.
//                         (4)-(5) propagation. Touches only the two
//                         incident rows; O(feature_dim), allocation-free.

#ifndef SPLASH_CORE_FEATURE_AUGMENTATION_H_
#define SPLASH_CORE_FEATURE_AUGMENTATION_H_

#include <cstddef>
#include <vector>

#include "core/serialize.h"
#include "core/types.h"
#include "graph/degree_tracker.h"
#include "graph/edge_stream.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace splash {

struct FeatureAugmenterOptions {
  size_t feature_dim = 32;
  /// Disable to skip the positional fit (it is the only superlinear part of
  /// FitSeen); WriteFeature(kPositional) then yields zeros for all nodes.
  bool enable_positional = true;
  /// Laplacian smoothing passes for the positional fit.
  size_t positional_rounds = 3;
  float positional_step = 0.35f;
  uint64_t seed = 1234;
};

class FeatureAugmenter {
 public:
  explicit FeatureAugmenter(const FeatureAugmenterOptions& opts);

  /// Fits static state on the train period (time <= fit_time) and resets
  /// dynamic state. Nodes touched by a train-period edge form the "seen"
  /// set; everything else is unseen and relies on propagation / structural
  /// encoding at replay time.
  void FitSeen(const EdgeStream& stream, double fit_time);

  /// Clears dynamic state (degree counts, propagated unseen-node rows) while
  /// keeping the fitted seen set and positional embedding.
  void Reset();

  /// Per-edge dynamic update; see file header. Call once per edge of a
  /// replay, in stream order, including train-period edges.
  void ObserveEdge(const TemporalEdge& e);

  /// Bulk replay of edges [begin, end): the parallel form of calling
  /// ObserveEdge on each edge in order. Work is partitioned by destination
  /// shard — node v's degree counter and propagated rows are written only
  /// by the worker owning shard `v & (kReplayShards - 1)` (the
  /// NeighborMemory scheme) — so the per-node update sequence stays in
  /// stream order at any thread count. Folds whose *source* is also unseen
  /// (both endpoints unseen) are deferred to a fixed-order serial
  /// reduction, keyed by (edge index, endpoint), because the source row is
  /// concurrently owned by another shard; their contributions land with
  /// batch-end source values, which is the one (thread-count-invariant)
  /// deviation from serial replay. With one thread, a small range, or one
  /// shard group this falls back to the serial loop — bit-identical to
  /// per-edge ObserveEdge.
  void ObserveBulk(const EdgeStream& stream, size_t begin, size_t end);

  /// Writes the current `process` feature of `node` into out[0..dim).
  void WriteFeature(AugmentationProcess process, NodeId node,
                    float* out) const;

  /// Plain (non-propagated) random feature: every node, seen or not, gets
  /// its hash Gaussian. This is the "+RF" baseline input, not a SPLASH
  /// process.
  void WritePlainRandom(NodeId node, float* out) const;

  /// Sinusoidal encoding of a degree value into out[0..dim). Exposed for
  /// benchmarking and tests; WriteFeature(kStructural) composes this with
  /// the live degree counter.
  void EncodeDegree(size_t degree, float* out) const;

  size_t feature_dim() const { return opts_.feature_dim; }
  bool seen(NodeId node) const {
    return node < seen_.size() && seen_[node] != 0;
  }
  const DegreeTracker& degrees() const { return degrees_; }

  /// Checkpoint hooks: BOTH the fitted state (seen set, positional
  /// embedding, cached random rows) and the dynamic state (degree counts,
  /// propagated rows, Eq. (5) denominators) — restore needs no FitSeen and
  /// no replay. Deserialize validates the options fingerprint (dim / seed /
  /// positional flag) so a checkpoint can never be applied to a
  /// differently-configured augmenter.
  void Serialize(ByteWriter* w) const;
  bool Deserialize(ByteReader* r);

 private:
  void EnsureNodeCapacity(size_t n);
  /// Writes the *current* propagated feature of `node` for matrix `m`
  /// (random or positional) into out.
  void WriteCurrent(const Matrix& m, uint64_t salt, NodeId node,
                    float* out) const;
  /// Eq. (4)-(5): fold `src_feat` into unseen `node`'s running-mean row of
  /// matrix `m`.
  void PropagateInto(Matrix* m, NodeId node, const float* src_feat);
  /// Folds `source`'s current random (and positional) feature into unseen
  /// `node` via PropagateInto; `sa` / `sb` are feature_dim scratch rows.
  /// Does NOT bump prop_count_ — callers pair it with the increment.
  void FoldInto(NodeId node, NodeId source, float* sa, float* sb);

  FeatureAugmenterOptions opts_;
  DegreeTracker degrees_;

  std::vector<uint8_t> seen_;       // fitted: 1 if node has a train edge
  Matrix positional_;               // fitted rows for seen nodes
  Matrix random_seen_;              // fitted: cached hash rows, seen nodes
  Matrix random_prop_;              // dynamic: propagated rows, unseen nodes
  Matrix positional_prop_;          // dynamic: propagated rows, unseen nodes
  std::vector<uint32_t> prop_count_;  // dynamic: Eq. (5) denominators

  // Preallocated per-edge scratch (feature_dim each); ObserveEdge must not
  // allocate.
  std::vector<float> scratch_a_;
  std::vector<float> scratch_b_;

  // Bulk-replay scratch (grow-only; ObserveBulk is allocation-free at
  // steady state). Shard count for the `v & (S-1)` partition; 16 keeps the
  // fan-out useful up to 16 workers while the per-worker range scan stays
  // one pass.
  static constexpr size_t kReplayShards = 16;
  static constexpr size_t kBulkReplayMinEdges = 512;
  std::vector<std::vector<float>> chunk_scratch_;   // 2 * feature_dim each
  std::vector<std::vector<uint64_t>> chunk_deferred_;  // per-chunk fold keys
  std::vector<uint64_t> merged_deferred_;
};

}  // namespace splash

#endif  // SPLASH_CORE_FEATURE_AUGMENTATION_H_
