// Copyright 2026 The SPLASH Reproduction Authors.

#include "core/splash.h"

#include <algorithm>
#include <cstring>

#include "runtime/thread_pool.h"

namespace splash {

std::string SplashModeName(SplashMode mode) {
  switch (mode) {
    case SplashMode::kAuto: return "SPLASH";
    case SplashMode::kZeroFeatures: return "SLIM+ZF";
    case SplashMode::kPlainRandom: return "SLIM+RF";
    case SplashMode::kForceRandom: return "SPLASH-R";
    case SplashMode::kForcePositional: return "SPLASH-P";
    case SplashMode::kForceStructural: return "SPLASH-S";
    case SplashMode::kJoint: return "SPLASH-RPS";
  }
  return "?";
}

SplashPredictor::SplashPredictor(const SplashOptions& opts)
    : opts_(opts),
      rng_(opts.seed),
      augmenter_([&] {
        FeatureAugmenterOptions a = opts.augment;
        a.seed = opts.seed;
        // Skip the positional fit when no mode can ever read it.
        if (opts.mode == SplashMode::kZeroFeatures ||
            opts.mode == SplashMode::kPlainRandom ||
            opts.mode == SplashMode::kForceRandom ||
            opts.mode == SplashMode::kForceStructural) {
          a.enable_positional = false;
        }
        return a;
      }()),
      memory_(opts.slim.k_recent == 0 ? 1 : opts.slim.k_recent) {}

Status SplashPredictor::Prepare(const Dataset& ds, const ChronoSplit& split) {
  if (ds.stream.empty()) {
    return Status::Error("SplashPredictor::Prepare: empty stream");
  }
  augmenter_.FitSeen(ds.stream, split.train_end_time);

  switch (opts_.mode) {
    case SplashMode::kAuto: {
      FeatureSelectionOptions sel = opts_.select;
      sel.k_recent = opts_.slim.k_recent;
      selected_ = SelectFeatureProcess(ds, split, &augmenter_, sel).selected;
      augmenter_.Reset();
      break;
    }
    case SplashMode::kForceRandom:
      selected_ = AugmentationProcess::kRandom;
      break;
    case SplashMode::kForcePositional:
      selected_ = AugmentationProcess::kPositional;
      break;
    case SplashMode::kForceStructural:
    case SplashMode::kZeroFeatures:
    case SplashMode::kPlainRandom:
    case SplashMode::kJoint:
      selected_ = AugmentationProcess::kStructural;
      break;
  }

  const size_t dv = augmenter_.feature_dim();
  input_dim_ = opts_.mode == SplashMode::kJoint ? 3 * dv : dv;

  SlimOptions slim_opts = opts_.slim;
  slim_opts.feature_dim = input_dim_;
  slim_opts.k_recent = memory_.k();  // same clamp as the ring buffer
  slim_opts.out_dim = std::max<size_t>(2, ds.num_classes);
  // Per-chunk dropout streams of the batch-parallel train path follow the
  // predictor seed so identically-seeded runs stay reproducible.
  slim_opts.dropout_seed = SplitMix64(opts_.seed ^ 0xd50bd50bULL);
  slim_ = std::make_unique<SlimModel>(slim_opts, &rng_);
  slim_->SetReplicaPrecisionBf16(bf16_replica_);

  memory_.EnsureNodeCapacity(ds.stream.num_nodes());
  ResetState();
  return Status::Ok();
}

void SplashPredictor::ResetState() {
  augmenter_.Reset();
  memory_.Clear();
}

void SplashPredictor::ObserveEdge(const TemporalEdge& e, size_t edge_index) {
  augmenter_.ObserveEdge(e);
  memory_.Observe(e, edge_index);
}

void SplashPredictor::ObserveBulk(const EdgeStream& stream, size_t begin,
                                  size_t end) {
  augmenter_.ObserveBulk(stream, begin, end);
  memory_.ObserveBulk(stream, begin, end);
}

void SplashPredictor::SetTraining(bool training) {
  if (slim_) slim_->SetTraining(training);
}

void SplashPredictor::SetReplicaPrecisionBf16(bool bf16) {
  bf16_replica_ = bf16;
  if (slim_) slim_->SetReplicaPrecisionBf16(bf16);
}

void SplashPredictor::PrepareForPublish() {
  if (slim_) slim_->PackWeights();
}

size_t SplashPredictor::PackedWeightBytes() const {
  return slim_ ? slim_->PackedWeightBytes() : 0;
}

size_t SplashPredictor::ParamCount() const {
  return slim_ ? slim_->ParamCount() : 0;
}

void SplashPredictor::WriteNodeFeature(NodeId node, float* out) const {
  const size_t dv = augmenter_.feature_dim();
  switch (opts_.mode) {
    case SplashMode::kZeroFeatures:
      std::memset(out, 0, dv * sizeof(float));
      return;
    case SplashMode::kPlainRandom:
      augmenter_.WritePlainRandom(node, out);
      return;
    case SplashMode::kJoint:
      augmenter_.WriteFeature(AugmentationProcess::kRandom, node, out);
      augmenter_.WriteFeature(AugmentationProcess::kPositional, node,
                              out + dv);
      augmenter_.WriteFeature(AugmentationProcess::kStructural, node,
                              out + 2 * dv);
      return;
    default:
      augmenter_.WriteFeature(selected_, node, out);
      return;
  }
}

void SplashPredictor::AssembleBatch(
    const std::vector<PropertyQuery>& queries) {
  const size_t b = queries.size();
  const size_t k = memory_.k();
  batch_.node_feats.Resize(b, input_dim_);
  batch_.neighbor_feats.Resize(b * k, input_dim_);
  batch_.time_deltas.resize(b * k);
  batch_.mask.Resize(b, k);
  batch_.edge_weights.resize(b * k);

  ThreadPool* pool = ThreadPool::Global();
  const size_t num_workers = pool->num_threads();
  if (worker_nbr_ids_.size() < num_workers) {
    worker_nbr_ids_.resize(num_workers);
    worker_nbr_times_.resize(num_workers);
  }
  for (size_t w = 0; w < num_workers; ++w) {
    if (worker_nbr_ids_[w].size() < k) {
      worker_nbr_ids_[w].resize(k);
      worker_nbr_times_[w].resize(k);
    }
  }

  pool->ParallelFor(0, b, kBatchAssembleGrain,
                    [&](size_t r0, size_t r1, size_t worker) {
                      AssembleRows(queries, r0, r1, &batch_,
                                   worker_nbr_ids_[worker].data(),
                                   worker_nbr_times_[worker].data());
                    });
}

void SplashPredictor::AssembleRows(const std::vector<PropertyQuery>& queries,
                                   size_t r0, size_t r1, SlimBatchInput* out,
                                   NodeId* nbr_ids,
                                   double* nbr_times) const {
  const size_t k = memory_.k();
  for (size_t bi = r0; bi < r1; ++bi) {
    const PropertyQuery& q = queries[bi];
    WriteNodeFeature(q.node, out->node_feats.Row(bi));
    const size_t count = memory_.GatherRecent(q.node, nbr_ids, nbr_times);
    float* mask_row = out->mask.Row(bi);
    for (size_t j = 0; j < k; ++j) {
      const size_t idx = bi * k + j;
      if (j < count) {
        WriteNodeFeature(nbr_ids[j], out->neighbor_feats.Row(idx));
        out->time_deltas[idx] = q.time - nbr_times[j];
        out->edge_weights[idx] = 1.0f;
        mask_row[j] = 1.0f;
      } else {
        std::memset(out->neighbor_feats.Row(idx), 0,
                    input_dim_ * sizeof(float));
        out->time_deltas[idx] = 0.0;
        out->edge_weights[idx] = 0.0f;
        mask_row[j] = 0.0f;
      }
    }
  }
}

const Matrix& SplashPredictor::PredictBatchConst(
    const std::vector<PropertyQuery>& queries,
    SplashQueryScratch* scratch) const {
  const size_t b = queries.size();
  if (!slim_ || b == 0) {
    scratch->fwd.out.Resize(b, slim_ ? slim_->options().out_dim : 2);
    scratch->fwd.out.SetZero();
    return scratch->fwd.out;
  }
  const size_t k = memory_.k();
  SlimBatchInput* batch = &scratch->batch;
  batch->node_feats.Resize(b, input_dim_);
  batch->neighbor_feats.Resize(b * k, input_dim_);
  batch->time_deltas.resize(b * k);
  batch->mask.Resize(b, k);
  batch->edge_weights.resize(b * k);
  if (scratch->nbr_ids.size() < k) {
    scratch->nbr_ids.resize(k);
    scratch->nbr_times.resize(k);
  }
  AssembleRows(queries, 0, b, batch, scratch->nbr_ids.data(),
               scratch->nbr_times.data());
  return slim_->PredictConst(*batch, &scratch->fwd);
}

void SplashPredictor::WarmQueryScratch(size_t max_batch,
                                       SplashQueryScratch* scratch) const {
  if (max_batch == 0) return;
  std::vector<PropertyQuery> dummy(max_batch, PropertyQuery{0, 0.0, 0});
  (void)PredictBatchConst(dummy, scratch);
}

void SplashPredictor::StageBatch(const std::vector<PropertyQuery>& queries) {
  staged_rows_ = queries.size();
  if (!slim_ || queries.empty()) return;
  AssembleBatch(queries);
  const int max_label = static_cast<int>(slim_->options().out_dim) - 1;
  labels_.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    labels_[i] = std::clamp(queries[i].class_label, 0, max_label);
  }
}

double SplashPredictor::TrainStaged() {
  if (!slim_ || staged_rows_ == 0) return 0.0;
  return slim_->TrainStep(batch_, labels_);
}

Matrix SplashPredictor::PredictStaged() {
  if (!slim_ || staged_rows_ == 0) {
    return Matrix(staged_rows_, slim_ ? slim_->options().out_dim : 2);
  }
  return slim_->Forward(batch_);
}

Matrix SplashPredictor::PredictBatch(
    const std::vector<PropertyQuery>& queries) {
  StageBatch(queries);
  return PredictStaged();
}

double SplashPredictor::TrainBatch(
    const std::vector<PropertyQuery>& queries) {
  StageBatch(queries);
  return TrainStaged();
}

namespace {
constexpr uint32_t kSplashStateMagic = 0x53504c53u;  // "SPLS"
constexpr uint32_t kSplashStateVersion = 1;
}  // namespace

void SplashPredictor::SerializeState(ByteWriter* w) const {
  w->U32(kSplashStateMagic);
  w->U32(kSplashStateVersion);
  // Config fingerprint: a checkpoint only ever restores into a predictor
  // constructed with the same identity-defining options.
  w->U64(opts_.seed);
  w->U32(static_cast<uint32_t>(opts_.mode));
  w->U64(opts_.augment.feature_dim);
  w->U32(static_cast<uint32_t>(selected_));
  w->U64(input_dim_);
  // SLIM architecture before RNG state: DeserializeState must reconstruct
  // the model (whose init consumes RNG draws) BEFORE restoring the stream.
  w->U8(slim_ ? 1 : 0);
  if (slim_) {
    const SlimOptions& so = slim_->options();
    w->U64(so.feature_dim);
    w->U64(so.time_dim);
    w->U64(so.hidden_dim);
    w->U64(so.out_dim);
    w->U64(so.k_recent);
    w->F32(so.dropout);
    w->F32(so.lr);
    w->U64(so.dropout_seed);
  }
  const Rng::State rs = rng_.SaveState();
  for (int i = 0; i < 4; ++i) w->U64(rs.s[i]);
  w->F32(rs.cached);
  w->U8(rs.has_cached ? 1 : 0);
  augmenter_.Serialize(w);
  memory_.Serialize(w);
  if (slim_) slim_->Serialize(w);
}

Status SplashPredictor::DeserializeState(ByteReader* r) {
  if (r->U32() != kSplashStateMagic || r->U32() != kSplashStateVersion) {
    return Status::Error("SplashPredictor: bad state magic/version");
  }
  if (r->U64() != opts_.seed ||
      r->U32() != static_cast<uint32_t>(opts_.mode) ||
      r->U64() != opts_.augment.feature_dim) {
    return Status::Error(
        "SplashPredictor: checkpoint config fingerprint mismatch");
  }
  selected_ = static_cast<AugmentationProcess>(r->U32());
  input_dim_ = static_cast<size_t>(r->U64());
  const bool has_slim = r->U8() != 0;
  if (has_slim) {
    SlimOptions so;
    so.feature_dim = static_cast<size_t>(r->U64());
    so.time_dim = static_cast<size_t>(r->U64());
    so.hidden_dim = static_cast<size_t>(r->U64());
    so.out_dim = static_cast<size_t>(r->U64());
    so.k_recent = static_cast<size_t>(r->U64());
    so.dropout = r->F32();
    so.lr = r->F32();
    so.dropout_seed = r->U64();
    if (!r->ok() || so.feature_dim != input_dim_ ||
        so.k_recent != memory_.k()) {
      return Status::Error("SplashPredictor: inconsistent SLIM architecture");
    }
    // Construction He-initializes from rng_ (consuming draws); the stream
    // position and every parameter are overwritten below.
    slim_ = std::make_unique<SlimModel>(so, &rng_);
  } else {
    slim_.reset();
  }
  Rng::State rs;
  for (int i = 0; i < 4; ++i) rs.s[i] = r->U64();
  rs.cached = r->F32();
  rs.has_cached = r->U8() != 0;
  rng_.LoadState(rs);
  if (!augmenter_.Deserialize(r)) {
    return Status::Error("SplashPredictor: augmenter state mismatch");
  }
  if (!memory_.Deserialize(r)) {
    return Status::Error("SplashPredictor: neighbor memory state mismatch");
  }
  if (has_slim && !slim_->Deserialize(r)) {
    return Status::Error("SplashPredictor: SLIM state mismatch");
  }
  if (!r->ok()) {
    return Status::Error("SplashPredictor: truncated state stream");
  }
  if (slim_) {
    slim_->SetTraining(false);
    // Deserialize repacked fp32; re-apply the sticky precision choice so a
    // restored bf16 replica also has its bf16 packs before first read.
    slim_->SetReplicaPrecisionBf16(bf16_replica_);
  }
  return Status::Ok();
}

}  // namespace splash
