// Copyright 2026 The SPLASH Reproduction Authors.
//
// SPLASH's automatic feature-process selection (paper Sec. IV-C, App. I):
// instead of training a full SLIM model per candidate process, fit a
// closed-form ridge/linear probe on cheap per-query summaries ([node
// feature || mean of k-recent neighbor features]) for each process, score
// each probe on the validation period, and keep the winner. One stream
// replay covers all three processes.

#ifndef SPLASH_CORE_FEATURE_SELECTION_H_
#define SPLASH_CORE_FEATURE_SELECTION_H_

#include <cstddef>

#include "core/feature_augmentation.h"
#include "core/types.h"
#include "datasets/dataset.h"

namespace splash {

struct FeatureSelectionOptions {
  size_t k_recent = 10;
  float ridge_lambda = 0.1f;
  /// Probe rows are subsampled to at most this many per split so selection
  /// cost stays bounded on large streams.
  size_t max_rows_per_split = 4000;
};

struct FeatureSelectionResult {
  AugmentationProcess selected = AugmentationProcess::kStructural;
  double seconds = 0.0;
  /// Validation score per process, indexed by AugmentationProcess value.
  double val_score[3] = {0.0, 0.0, 0.0};
};

/// Replays the stream through `augmenter` (dynamic state is Reset() first
/// and left at the validation boundary afterwards) and returns the probe
/// winner. Falls back to kStructural when there is nothing to validate on.
FeatureSelectionResult SelectFeatureProcess(
    const Dataset& ds, const ChronoSplit& split, FeatureAugmenter* augmenter,
    const FeatureSelectionOptions& opts);

}  // namespace splash

#endif  // SPLASH_CORE_FEATURE_SELECTION_H_
