// Copyright 2026 The SPLASH Reproduction Authors.
//
// SPLASH's automatic feature-process selection (paper Sec. IV-C, App. I):
// instead of training a full SLIM model per candidate process, fit a
// closed-form ridge/linear probe on cheap per-query summaries ([node
// feature || mean of k-recent neighbor features]) for each process, score
// each probe on the validation period, and keep the winner. One stream
// replay covers all three processes.

#ifndef SPLASH_CORE_FEATURE_SELECTION_H_
#define SPLASH_CORE_FEATURE_SELECTION_H_

#include <cstddef>

#include "core/feature_augmentation.h"
#include "core/types.h"
#include "datasets/dataset.h"

namespace splash {

struct FeatureSelectionOptions {
  size_t k_recent = 10;
  float ridge_lambda = 0.1f;
  /// Probe rows are subsampled to at most this many per split so selection
  /// cost stays bounded on large streams.
  size_t max_rows_per_split = 4000;
  /// Fraction of the validation period (latest-first) the probes are
  /// scored on. Shift grows with time, so scoring the late-val window
  /// punishes processes whose features go stale (the P-over-R mispick).
  double late_val_frac = 0.5;
  /// Extra weight on val queries whose node has no train-period edge:
  /// unseen nodes are where the augmentation processes actually differ
  /// under shift (paper Fig. 9). 0 scores all rows equally.
  double unseen_weight = 0.0;
  /// Penalty per unit of train->late-val feature drift subtracted from a
  /// probe's metric. A process whose features are already moving away
  /// from their train distribution during val will have moved further by
  /// test time; its val metric overstates its test metric.
  double drift_penalty = 0.0;
  /// Processes whose probe metric is within this margin of the best are
  /// considered tied; ties are broken by the val-period silhouette of the
  /// process's node features under the query labels. The probe is a ridge
  /// fit on a few hundred subsampled val rows, so ~0.1 of metric is inside
  /// its noise band — and the silhouette catches failure modes the probe
  /// overrates (e.g. a positional embedding fit on too few train edges
  /// probes well on near-train val rows but has collapsed cluster
  /// structure: the old P-over-R mispick on gdelt-s at small scale).
  double tie_epsilon = 0.1;
  /// Row cap for the O(n^2) tiebreak silhouette.
  size_t silhouette_max_rows = 512;
};

struct FeatureSelectionResult {
  AugmentationProcess selected = AugmentationProcess::kStructural;
  double seconds = 0.0;
  /// Validation score per process, indexed by AugmentationProcess value.
  double val_score[3] = {0.0, 0.0, 0.0};
  /// Val-period node-feature silhouette per process; computed only when
  /// the probe metrics tied (0 otherwise).
  double silhouette[3] = {0.0, 0.0, 0.0};
  /// Train->late-val feature drift per process (mean |column mean| of the
  /// train-standardized late-val probe rows; 0 = stationary).
  double drift[3] = {0.0, 0.0, 0.0};
  /// True when the silhouette tiebreak decided the pick.
  bool tie_broken = false;
};

/// Replays the stream through `augmenter` (dynamic state is Reset() first
/// and left at the validation boundary afterwards) and returns the probe
/// winner. Falls back to kStructural when there is nothing to validate on.
FeatureSelectionResult SelectFeatureProcess(
    const Dataset& ds, const ChronoSplit& split, FeatureAugmenter* augmenter,
    const FeatureSelectionOptions& opts);

}  // namespace splash

#endif  // SPLASH_CORE_FEATURE_SELECTION_H_
