// Copyright 2026 The SPLASH Reproduction Authors.
//
// The streaming predictor interface every model in the repo implements:
// SPLASH itself, the TGNN baseline stand-ins, and SLADE. The protocol is a
// strict replay loop driven by eval/trainer.cc:
//
//   Prepare(ds, split)            — one-time fitting on the train period
//   for each epoch / evaluation pass:
//     ResetState()                — clear streaming state, keep weights
//     interleaved by time:
//       PredictBatch / TrainBatch — answer queries with state *before* later
//                                   edges
//       ObserveEdge(e, i)         — advance streaming state by one edge
//
// ObserveEdge must be O(1) amortized and allocation-free at steady state;
// that contract is what bench_micro_substrate measures.

#ifndef SPLASH_CORE_PREDICTOR_H_
#define SPLASH_CORE_PREDICTOR_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "core/types.h"
#include "datasets/dataset.h"
#include "graph/edge_stream.h"
#include "tensor/matrix.h"

namespace splash {

/// Queries per ParallelFor chunk when a predictor assembles its SLIM batch
/// on the runtime/ ThreadPool (each row costs O((k+1) * dv) feature
/// writes, so a few dozen rows amortize the dispatch). Shared by
/// SplashPredictor and the baseline stand-ins so their assembly chunking
/// never diverges.
inline constexpr size_t kBatchAssembleGrain = 32;

class TemporalPredictor {
 public:
  virtual ~TemporalPredictor() = default;

  /// Human-readable model name ("SPLASH", "TGAT+RF", ...).
  virtual std::string name() const = 0;

  /// One-time preparation on the training period (feature fitting, feature
  /// selection, sizing). The dataset must outlive the predictor.
  virtual Status Prepare(const Dataset& ds, const ChronoSplit& split) = 0;

  /// Clears streaming state (neighbor rings, degree counters, propagated
  /// features) back to the post-Prepare snapshot. Learned weights survive.
  virtual void ResetState() = 0;

  /// Advances streaming state by one edge. `edge_index` is the position in
  /// the stream (monotone across one replay).
  virtual void ObserveEdge(const TemporalEdge& e, size_t edge_index) = 0;

  /// Bulk state advance: equivalent to ObserveEdge on each edge of
  /// [begin, end) in stream order. Predictors with shard-partitioned state
  /// override this to fan out on the runtime/ ThreadPool; the default is
  /// the serial loop.
  virtual void ObserveBulk(const EdgeStream& stream, size_t begin,
                           size_t end) {
    for (size_t i = begin; i < end; ++i) ObserveEdge(stream[i], i);
  }

  // --- split-phase batch API (the pipelined executor's contract) ---------
  //
  // StageBatch assembles model inputs from *current* streaming state;
  // TrainStaged / PredictStaged then run pure compute on the staged buffer
  // and the weights, reading NO streaming state — which is what lets the
  // executor overlap them with ObserveBulk of later edges. A predictor
  // that cannot honor that split keeps the default (unsupported) and the
  // executor falls back to the serial fused calls.

  /// Whether StageBatch / TrainStaged / PredictStaged are implemented and
  /// honor the no-streaming-state-reads contract after staging.
  virtual bool SupportsStagedBatches() const { return false; }

  /// Assembles `queries` (features, neighbor gathers, labels) into the
  /// predictor's staged buffer. One batch staged at a time.
  virtual void StageBatch(const std::vector<PropertyQuery>& queries) {
    (void)queries;
  }

  /// TrainBatch on the staged buffer; returns the batch loss.
  virtual double TrainStaged() { return 0.0; }

  /// PredictBatch on the staged buffer; returns the score matrix.
  virtual Matrix PredictStaged() { return Matrix(0, 0); }

  /// Scores a batch of queries against current streaming state. Returns a
  /// (batch x out_dim) matrix; out_dim >= 2 with class scores per column.
  virtual Matrix PredictBatch(const std::vector<PropertyQuery>& queries) = 0;

  /// One gradient step on a batch of labeled queries. Returns the batch
  /// loss. Training-free models return 0 and ignore the call.
  virtual double TrainBatch(const std::vector<PropertyQuery>& queries) {
    (void)queries;
    return 0.0;
  }

  /// Train/eval mode toggle (dropout etc.).
  virtual void SetTraining(bool training) = 0;

  /// Number of learnable parameters (for Fig. 10's size axis).
  virtual size_t ParamCount() const = 0;
};

}  // namespace splash

#endif  // SPLASH_CORE_PREDICTOR_H_
