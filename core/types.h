// Copyright 2026 The SPLASH Reproduction Authors.
//
// Plain-old-data types shared by every layer: node ids, temporal edges,
// property queries, task kinds, chronological splits, and the feature
// augmentation process enum from the paper (random / positional /
// structural, Sec. IV-B).

#ifndef SPLASH_CORE_TYPES_H_
#define SPLASH_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace splash {

/// Node identifier. 32-bit keeps the SoA edge stream and the neighbor-memory
/// slab at half the footprint of size_t ids; 4B nodes is beyond every target
/// workload.
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Geometric capacity growth shared by every node-indexed container (ring
/// slabs, counters, feature tables): power-of-two-ish doubling from a small
/// floor keeps per-edge growth amortized O(1).
inline size_t GrowCapacity(size_t current, size_t needed) {
  size_t target = current < 16 ? 16 : current;
  while (target < needed) target *= 2;
  return target;
}

/// One event of the edge stream. Kept trivially copyable; the stream itself
/// stores these as three parallel arrays (see graph/edge_stream.h).
struct TemporalEdge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double time = 0.0;

  TemporalEdge() = default;
  TemporalEdge(NodeId s, NodeId d, double t) : src(s), dst(d), time(t) {}
};

/// Node property prediction task families from the paper (Sec. II).
enum class TaskType {
  kAnomalyDetection,    // binary, metric: AUC
  kNodeClassification,  // multi-class, metric: F1-micro
  kNodeAffinity,        // ranking over classes, metric: NDCG@10
};

inline std::string TaskName(TaskType t) {
  switch (t) {
    case TaskType::kAnomalyDetection: return "anomaly";
    case TaskType::kNodeClassification: return "classification";
    case TaskType::kNodeAffinity: return "affinity";
  }
  return "?";
}

/// One labeled query: "what is the property of `node` at `time`?"
struct PropertyQuery {
  NodeId node = kInvalidNode;
  double time = 0.0;
  int class_label = 0;  // anomaly: 0 normal / 1 abnormal; else class id
};

/// Chronological split boundaries (inclusive upper ends).
/// train: time <= train_end_time
/// val:   train_end_time < time <= val_end_time
/// test:  time > val_end_time
struct ChronoSplit {
  double train_end_time = 0.0;
  double val_end_time = 0.0;
};

/// The three feature augmentation processes of SPLASH (paper Sec. IV-B).
enum class AugmentationProcess {
  kRandom,      // R: per-node random features, propagated to unseen nodes
  kPositional,  // P: community-revealing embedding, propagated to unseen
  kStructural,  // S: temporal-degree encoding, computable for any node
};

inline std::string ProcessName(AugmentationProcess p) {
  switch (p) {
    case AugmentationProcess::kRandom: return "R";
    case AugmentationProcess::kPositional: return "P";
    case AugmentationProcess::kStructural: return "S";
  }
  return "?";
}

}  // namespace splash

#endif  // SPLASH_CORE_TYPES_H_
