// Copyright 2026 The SPLASH Reproduction Authors.

#include "core/feature_selection.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "eval/metrics.h"
#include "eval/timing.h"
#include "graph/neighbor_memory.h"
#include "tensor/matrix.h"

namespace splash {

namespace {

constexpr AugmentationProcess kProcesses[3] = {
    AugmentationProcess::kRandom, AugmentationProcess::kPositional,
    AugmentationProcess::kStructural};

}  // namespace

FeatureSelectionResult SelectFeatureProcess(
    const Dataset& ds, const ChronoSplit& split, FeatureAugmenter* augmenter,
    const FeatureSelectionOptions& opts) {
  WallTimer timer;
  FeatureSelectionResult result;

  // Count probe rows per split to pre-size matrices and pick strides.
  size_t n_train = 0, n_val = 0;
  for (const PropertyQuery& q : ds.queries) {
    if (q.time <= split.train_end_time) {
      ++n_train;
    } else if (q.time <= split.val_end_time) {
      ++n_val;
    }
  }
  if (n_train == 0 || n_val == 0) {
    result.seconds = timer.Seconds();
    return result;  // structural fallback: computable for any node
  }
  const size_t train_stride =
      std::max<size_t>(1, n_train / opts.max_rows_per_split);
  const size_t val_stride =
      std::max<size_t>(1, n_val / opts.max_rows_per_split);

  const size_t dv = augmenter->feature_dim();
  const size_t probe_dim = 2 * dv;  // [node feature || mean neighbor feature]
  const size_t classes = std::max<size_t>(2, ds.num_classes);
  const size_t k = std::max<size_t>(1, opts.k_recent);

  Matrix ztr[3], zval[3];
  for (int p = 0; p < 3; ++p) {
    ztr[p] = Matrix(n_train / train_stride + 1, probe_dim);
    zval[p] = Matrix(n_val / val_stride + 1, probe_dim);
  }
  std::vector<int> ytr, yval;

  augmenter->Reset();
  NeighborMemory memory(k, ds.stream.num_nodes());
  std::vector<NodeId> nbr_ids(k);
  std::vector<double> nbr_times(k);
  std::vector<float> feat(dv);

  size_t rows_tr = 0, rows_val = 0;
  size_t seen_tr = 0, seen_val = 0;
  auto emit_row = [&](const PropertyQuery& q, bool is_train) {
    const size_t row = is_train ? rows_tr : rows_val;
    const size_t count =
        memory.GatherRecent(q.node, nbr_ids.data(), nbr_times.data());
    for (int p = 0; p < 3; ++p) {
      float* out = (is_train ? ztr[p] : zval[p]).Row(row);
      augmenter->WriteFeature(kProcesses[p], q.node, out);
      float* mean = out + dv;
      std::memset(mean, 0, dv * sizeof(float));
      if (count > 0) {
        for (size_t j = 0; j < count; ++j) {
          augmenter->WriteFeature(kProcesses[p], nbr_ids[j], feat.data());
          Axpy(1.0f, feat.data(), mean, dv);
        }
        const float inv = 1.0f / static_cast<float>(count);
        for (size_t t = 0; t < dv; ++t) mean[t] *= inv;
      }
    }
    if (is_train) {
      ytr.push_back(q.class_label);
      ++rows_tr;
    } else {
      yval.push_back(q.class_label);
      ++rows_val;
    }
  };

  // One replay over train+val: answer queries with state-before, then
  // observe the edge (the same protocol the trainer uses).
  size_t qi = 0;
  const size_t n_edges = ds.stream.size();
  for (size_t i = 0; i <= n_edges; ++i) {
    const double horizon =
        i < n_edges ? ds.stream[i].time : split.val_end_time;
    while (qi < ds.queries.size() && ds.queries[qi].time <= horizon) {
      const PropertyQuery& q = ds.queries[qi++];
      if (q.time <= split.train_end_time) {
        if (seen_tr++ % train_stride == 0) emit_row(q, /*is_train=*/true);
      } else if (q.time <= split.val_end_time) {
        if (seen_val++ % val_stride == 0) emit_row(q, /*is_train=*/false);
      }
    }
    if (i == n_edges || ds.stream[i].time > split.val_end_time) break;
    augmenter->ObserveEdge(ds.stream[i]);
    memory.Observe(ds.stream[i], i);
  }

  if (rows_tr == 0 || rows_val == 0) {
    result.seconds = timer.Seconds();
    return result;
  }

  // One-hot targets shared by the three probes.
  Matrix targets(rows_tr, classes);
  for (size_t i = 0; i < rows_tr; ++i) {
    const size_t label = std::min<size_t>(ytr[i], classes - 1);
    targets(i, label) = 1.0f;
  }

  double best = -1.0;
  for (int p = 0; p < 3; ++p) {
    ztr[p].Resize(rows_tr, probe_dim);
    zval[p].Resize(rows_val, probe_dim);
    Matrix w;
    if (!SolveRidge(ztr[p], targets, opts.ridge_lambda, &w)) continue;
    Matrix scores(rows_val, classes);
    MatMul(zval[p], w, &scores);
    const double metric = TaskMetric(ds.task, scores, yval);
    result.val_score[p] = metric;
    if (metric > best) {
      best = metric;
      result.selected = kProcesses[p];
    }
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace splash
