// Copyright 2026 The SPLASH Reproduction Authors.

#include "core/feature_selection.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "eval/metrics.h"
#include "eval/timing.h"
#include "graph/neighbor_memory.h"
#include "tensor/matrix.h"

namespace splash {

namespace {

constexpr AugmentationProcess kProcesses[3] = {
    AugmentationProcess::kRandom, AugmentationProcess::kPositional,
    AugmentationProcess::kStructural};

/// Standardizes both matrices column-wise with means/stds computed on
/// `train` only. The three processes emit features at wildly different
/// scales (degree encodings are bounded, propagated random rows are not),
/// and a shared ridge lambda penalizes the large-scale process hardest —
/// the root cause of probe mispicks like P over R on gdelt-s. After
/// standardization the probes compete on structure, not scale.
void StandardizeColumns(Matrix* train, Matrix* val) {
  const size_t n = train->rows(), d = train->cols();
  if (n == 0) return;
  for (size_t j = 0; j < d; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) mean += (*train)(i, j);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double c = (*train)(i, j) - mean;
      var += c * c;
    }
    var /= static_cast<double>(n);
    const float m = static_cast<float>(mean);
    const float inv = static_cast<float>(1.0 / std::sqrt(var + 1e-8));
    for (size_t i = 0; i < n; ++i) {
      (*train)(i, j) = ((*train)(i, j) - m) * inv;
    }
    for (size_t i = 0; i < val->rows(); ++i) {
      (*val)(i, j) = ((*val)(i, j) - m) * inv;
    }
  }
}

/// TaskMetric restricted to the given probe rows.
double ScoreRows(TaskType task, const Matrix& scores,
                 const std::vector<int>& yval,
                 const std::vector<size_t>& rows) {
  if (rows.empty()) return 0.0;
  Matrix sub(rows.size(), scores.cols());
  std::vector<int> labels(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::memcpy(sub.Row(i), scores.Row(rows[i]),
                scores.cols() * sizeof(float));
    labels[i] = yval[rows[i]];
  }
  return TaskMetric(task, sub, labels);
}

/// Silhouette of the val-period *node* features (first `dv` columns of the
/// probe rows) under the query labels, subsampled to `max_rows`.
double ValSilhouette(const Matrix& zval, const std::vector<int>& yval,
                     size_t dv, size_t max_rows) {
  const size_t n = zval.rows();
  if (n < 2) return 0.0;
  const size_t stride = std::max<size_t>(1, n / std::max<size_t>(1, max_rows));
  const size_t rows = (n + stride - 1) / stride;
  Matrix sub(rows, dv);
  std::vector<int> labels(rows);
  for (size_t r = 0; r < rows; ++r) {
    std::memcpy(sub.Row(r), zval.Row(r * stride), dv * sizeof(float));
    labels[r] = std::max(0, yval[r * stride]);
  }
  return SilhouetteScore(sub, labels);
}

}  // namespace

FeatureSelectionResult SelectFeatureProcess(
    const Dataset& ds, const ChronoSplit& split, FeatureAugmenter* augmenter,
    const FeatureSelectionOptions& opts) {
  WallTimer timer;
  FeatureSelectionResult result;

  // Count probe rows per split to pre-size matrices and pick strides.
  size_t n_train = 0, n_val = 0;
  for (const PropertyQuery& q : ds.queries) {
    if (q.time <= split.train_end_time) {
      ++n_train;
    } else if (q.time <= split.val_end_time) {
      ++n_val;
    }
  }
  if (n_train == 0 || n_val == 0) {
    result.seconds = timer.Seconds();
    return result;  // structural fallback: computable for any node
  }
  const size_t train_stride =
      std::max<size_t>(1, n_train / opts.max_rows_per_split);
  const size_t val_stride =
      std::max<size_t>(1, n_val / opts.max_rows_per_split);

  const size_t dv = augmenter->feature_dim();
  const size_t probe_dim = 2 * dv;  // [node feature || mean neighbor feature]
  const size_t classes = std::max<size_t>(2, ds.num_classes);
  const size_t k = std::max<size_t>(1, opts.k_recent);

  Matrix ztr[3], zval[3];
  for (int p = 0; p < 3; ++p) {
    ztr[p] = Matrix(n_train / train_stride + 1, probe_dim);
    zval[p] = Matrix(n_val / val_stride + 1, probe_dim);
  }
  std::vector<int> ytr, yval;
  std::vector<uint8_t> val_unseen;  // per val row: node had no train edge

  augmenter->Reset();
  NeighborMemory memory(k, ds.stream.num_nodes());
  std::vector<NodeId> nbr_ids(k);
  std::vector<double> nbr_times(k);
  std::vector<float> feat(dv);

  size_t rows_tr = 0, rows_val = 0;
  size_t seen_tr = 0, seen_val = 0;
  auto emit_row = [&](const PropertyQuery& q, bool is_train) {
    const size_t row = is_train ? rows_tr : rows_val;
    const size_t count =
        memory.GatherRecent(q.node, nbr_ids.data(), nbr_times.data());
    for (int p = 0; p < 3; ++p) {
      float* out = (is_train ? ztr[p] : zval[p]).Row(row);
      augmenter->WriteFeature(kProcesses[p], q.node, out);
      float* mean = out + dv;
      std::memset(mean, 0, dv * sizeof(float));
      if (count > 0) {
        for (size_t j = 0; j < count; ++j) {
          augmenter->WriteFeature(kProcesses[p], nbr_ids[j], feat.data());
          Axpy(1.0f, feat.data(), mean, dv);
        }
        const float inv = 1.0f / static_cast<float>(count);
        for (size_t t = 0; t < dv; ++t) mean[t] *= inv;
      }
    }
    if (is_train) {
      ytr.push_back(q.class_label);
      ++rows_tr;
    } else {
      yval.push_back(q.class_label);
      val_unseen.push_back(!augmenter->seen(q.node));
      ++rows_val;
    }
  };

  // One replay over train+val: answer queries with state-before, then
  // observe the edge (the same protocol the trainer uses).
  size_t qi = 0;
  const size_t n_edges = ds.stream.size();
  for (size_t i = 0; i <= n_edges; ++i) {
    const double horizon =
        i < n_edges ? ds.stream[i].time : split.val_end_time;
    while (qi < ds.queries.size() && ds.queries[qi].time <= horizon) {
      const PropertyQuery& q = ds.queries[qi++];
      if (q.time <= split.train_end_time) {
        if (seen_tr++ % train_stride == 0) emit_row(q, /*is_train=*/true);
      } else if (q.time <= split.val_end_time) {
        if (seen_val++ % val_stride == 0) emit_row(q, /*is_train=*/false);
      }
    }
    if (i == n_edges || ds.stream[i].time > split.val_end_time) break;
    augmenter->ObserveEdge(ds.stream[i]);
    memory.Observe(ds.stream[i], i);
  }

  if (rows_tr == 0 || rows_val == 0) {
    result.seconds = timer.Seconds();
    return result;
  }

  // One-hot targets shared by the three probes.
  Matrix targets(rows_tr, classes);
  for (size_t i = 0; i < rows_tr; ++i) {
    const size_t label = std::min<size_t>(ytr[i], classes - 1);
    targets(i, label) = 1.0f;
  }

  // Scoring windows: the late-val slice (shift grows with time) plus the
  // unseen-node rows (where the processes actually differ, Fig. 9).
  const double late_frac =
      opts.late_val_frac <= 0.0
          ? 1.0
          : std::min(1.0, std::max(0.0, opts.late_val_frac));
  size_t lo = rows_val -
              static_cast<size_t>(late_frac * static_cast<double>(rows_val));
  if (lo >= rows_val) lo = 0;
  std::vector<size_t> late_rows, unseen_rows;
  for (size_t i = lo; i < rows_val; ++i) late_rows.push_back(i);
  for (size_t i = 0; i < rows_val; ++i) {
    if (val_unseen[i]) unseen_rows.push_back(i);
  }
  // Too few unseen rows make that metric pure noise.
  const bool use_unseen = opts.unseen_weight > 0.0 && unseen_rows.size() >= 16;

  double best = -1.0;
  bool probe_ok[3] = {false, false, false};
  for (int p = 0; p < 3; ++p) {
    ztr[p].Resize(rows_tr, probe_dim);
    zval[p].Resize(rows_val, probe_dim);
    StandardizeColumns(&ztr[p], &zval[p]);
    Matrix w;
    if (!SolveRidge(ztr[p], targets, opts.ridge_lambda, &w)) continue;
    Matrix scores(rows_val, classes);
    MatMul(zval[p], w, &scores);
    double metric = ScoreRows(ds.task, scores, yval, late_rows);
    if (use_unseen) {
      metric = (metric + opts.unseen_weight *
                             ScoreRows(ds.task, scores, yval, unseen_rows)) /
               (1.0 + opts.unseen_weight);
    }
    // Train->late-val drift: columns are train-standardized, so any
    // nonzero late-val column mean is distributional movement.
    {
      double drift = 0.0;
      for (size_t j = 0; j < probe_dim; ++j) {
        double mean = 0.0;
        for (size_t i : late_rows) mean += zval[p](i, j);
        drift += std::fabs(mean / static_cast<double>(late_rows.size()));
      }
      result.drift[p] = drift / static_cast<double>(probe_dim);
      metric -= opts.drift_penalty * result.drift[p];
    }
    probe_ok[p] = true;
    result.val_score[p] = metric;
    if (metric > best) {
      best = metric;
      result.selected = kProcesses[p];
    }
  }

  // Near-ties between probe metrics are inside the ridge fit's noise; let
  // the val-period cluster structure of the node features decide instead.
  int num_tied = 0;
  for (int p = 0; p < 3; ++p) {
    num_tied += probe_ok[p] && best - result.val_score[p] <= opts.tie_epsilon;
  }
  if (num_tied > 1) {
    double best_sil = -2.0;
    for (int p = 0; p < 3; ++p) {
      if (!probe_ok[p] || best - result.val_score[p] > opts.tie_epsilon) {
        continue;
      }
      result.silhouette[p] =
          ValSilhouette(zval[p], yval, dv, opts.silhouette_max_rows);
      if (result.silhouette[p] > best_sil) {
        best_sil = result.silhouette[p];
        result.selected = kProcesses[p];
      }
    }
    result.tie_broken = true;
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace splash
