// Copyright 2026 The SPLASH Reproduction Authors.
//
// SplashPredictor: the user-facing facade tying the pipeline together —
// feature augmentation (core/feature_augmentation.h), automatic process
// selection (core/feature_selection.h), k-recent neighbor memory
// (graph/neighbor_memory.h), and the SLIM model (core/slim.h).
//
// The mode controls which features feed SLIM; kAuto is full SPLASH.

#ifndef SPLASH_CORE_SPLASH_H_
#define SPLASH_CORE_SPLASH_H_

#include <memory>
#include <string>
#include <vector>

#include "core/feature_augmentation.h"
#include "core/feature_selection.h"
#include "core/predictor.h"
#include "core/serialize.h"
#include "core/slim.h"
#include "graph/neighbor_memory.h"
#include "tensor/rng.h"

namespace splash {

enum class SplashMode {
  kAuto,             // full SPLASH: linear-probe selection among R/P/S
  kZeroFeatures,     // SLIM+ZF ablation: all-zero node features
  kPlainRandom,      // SLIM+RF ablation: hash random features, no Eq.(4)-(5)
  kForceRandom,      // SPLASH pinned to the R process
  kForcePositional,  // SPLASH pinned to the P process
  kForceStructural,  // SPLASH pinned to the S process
  kJoint,            // R, P and S concatenated
};

std::string SplashModeName(SplashMode mode);

struct SplashOptions {
  SplashMode mode = SplashMode::kAuto;
  FeatureAugmenterOptions augment;
  SlimOptions slim;
  FeatureSelectionOptions select;
  uint64_t seed = 777;
};

/// Per-reader scratch for const snapshot queries (serve/): the assembled
/// batch tensors, the SLIM forward scratch, and the k-sized neighbor
/// gather arrays. One per reader thread; grow-only, so steady-state
/// queries are allocation-free.
struct SplashQueryScratch {
  SlimBatchInput batch;
  SlimForwardScratch fwd;
  std::vector<NodeId> nbr_ids;
  std::vector<double> nbr_times;
};

class SplashPredictor : public TemporalPredictor {
 public:
  explicit SplashPredictor(const SplashOptions& opts);

  std::string name() const override { return SplashModeName(opts_.mode); }
  Status Prepare(const Dataset& ds, const ChronoSplit& split) override;
  void ResetState() override;
  void ObserveEdge(const TemporalEdge& e, size_t edge_index) override;
  /// Fans the range out over the ThreadPool: augmenter replay by
  /// destination shard (FeatureAugmenter::ObserveBulk), then the sharded
  /// ring ingest (NeighborMemory::ObserveBulk).
  void ObserveBulk(const EdgeStream& stream, size_t begin,
                   size_t end) override;
  Matrix PredictBatch(const std::vector<PropertyQuery>& queries) override;
  double TrainBatch(const std::vector<PropertyQuery>& queries) override;
  /// Staged batches (core/predictor.h): AssembleBatch reads streaming
  /// state once in StageBatch; TrainStaged / PredictStaged touch only the
  /// staged tensors and SLIM weights, so the executor may overlap them
  /// with ObserveBulk of later edges.
  bool SupportsStagedBatches() const override { return true; }
  void StageBatch(const std::vector<PropertyQuery>& queries) override;
  double TrainStaged() override;
  Matrix PredictStaged() override;
  void SetTraining(bool training) override;
  size_t ParamCount() const override;

  /// The augmentation process kAuto picked in Prepare() (meaningful for
  /// forced modes too: it mirrors the forced process).
  AugmentationProcess selected_process() const { return selected_; }

  /// Const snapshot query (the serving layer's read path): assembles the
  /// batch into caller scratch and runs the dropout-free const SLIM
  /// forward. Touches no predictor state, so any number of reader threads
  /// may call it concurrently — each with its own scratch — while no
  /// writer mutates the predictor. Bit-identical to PredictBatch in eval
  /// mode on the same streaming state. Returns a reference into `scratch`
  /// (valid until its next use): steady-state queries allocate nothing
  /// (allocation_steady_state_test gates this under the SIMD backend too).
  const Matrix& PredictBatchConst(const std::vector<PropertyQuery>& queries,
                                  SplashQueryScratch* scratch) const;

  /// Pre-grows `scratch` (batch tensors + SLIM forward scratch) for query
  /// batches up to `max_batch` rows by running one throwaway const forward,
  /// so the first real batch at that width allocates nothing. The serving
  /// layer warms its coalesced-group scratch with this at Start().
  void WarmQueryScratch(size_t max_batch, SplashQueryScratch* scratch) const;

  // Const views for the serving layer's drift/quality counters.
  const FeatureAugmenter& augmenter() const { return augmenter_; }
  const NeighborMemory& memory() const { return memory_; }
  size_t input_dim() const { return input_dim_; }

  /// Read-replica precision (core/slim.h): bf16 halves the packed weight
  /// bytes the const query path streams; fp32 (default) stays the
  /// determinism reference. Sticky — applied to the SLIM model now (if it
  /// exists) and re-applied whenever Prepare()/DeserializeState rebuilds
  /// it.
  void SetReplicaPrecisionBf16(bool bf16);
  bool replica_precision_bf16() const { return bf16_replica_; }

  /// Re-packs SLIM's read-path GEMM operands from the current weights.
  /// The serving layer calls this when a snapshot is published so a read
  /// replica's first query never packs (publish-time work, not read-time).
  void PrepareForPublish();

  /// Resident bytes of the packed weight operands the read path streams.
  size_t PackedWeightBytes() const;

  /// Checkpoint hooks (serve/checkpoint): the complete post-Prepare state —
  /// RNG stream, selected process, augmenter (fitted + dynamic), neighbor
  /// rings, and SLIM (params + Adam moments + step counters). A
  /// deserialized predictor needs neither Prepare() nor a warmup dataset:
  /// it resumes bit-identically to the serialized one. DeserializeState
  /// validates a config fingerprint (seed / mode / feature_dim and the
  /// serialized SLIM architecture) and fails without partial mutation
  /// visible to queries only if the very first header check fails; callers
  /// treat any error as "replica unusable" and abandon recovery.
  void SerializeState(ByteWriter* w) const;
  Status DeserializeState(ByteReader* r);

 private:
  /// Writes the mode's SLIM input feature of `node` (input_dim_ floats).
  void WriteNodeFeature(NodeId node, float* out) const;
  /// Assembles query rows [r0, r1) into `out` (pre-sized). `nbr_ids` /
  /// `nbr_times` are k-sized gather scratch owned by the caller. Reads
  /// streaming state only — shared by the pooled AssembleBatch chunks and
  /// the const snapshot path.
  void AssembleRows(const std::vector<PropertyQuery>& queries, size_t r0,
                    size_t r1, SlimBatchInput* out, NodeId* nbr_ids,
                    double* nbr_times) const;
  void AssembleBatch(const std::vector<PropertyQuery>& queries);

  SplashOptions opts_;
  Rng rng_;
  FeatureAugmenter augmenter_;
  NeighborMemory memory_;
  std::unique_ptr<SlimModel> slim_;
  AugmentationProcess selected_ = AugmentationProcess::kStructural;
  size_t input_dim_ = 0;
  bool bf16_replica_ = false;  // sticky read-replica precision choice

  // Assembly scratch (grow-only, reused across batches). Queries are
  // assembled in parallel on the runtime/ ThreadPool — feature writes and
  // ring gathers are read-only on model state and land in disjoint batch
  // rows — so the k-sized gather scratch is per worker.
  SlimBatchInput batch_;
  std::vector<int> labels_;
  size_t staged_rows_ = 0;  // rows of the staged batch (0 = none staged)
  std::vector<std::vector<NodeId>> worker_nbr_ids_;
  std::vector<std::vector<double>> worker_nbr_times_;
};

}  // namespace splash

#endif  // SPLASH_CORE_SPLASH_H_
