// Copyright 2026 The SPLASH Reproduction Authors.

#include "core/feature_augmentation.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "runtime/thread_pool.h"

namespace splash {

namespace {

// Salts separating the hash-feature streams of the two propagated matrices.
constexpr uint64_t kRandomSalt = 0x52414e44ULL;      // "RAND"
constexpr uint64_t kPositionalSalt = 0x504f5349ULL;  // "POSI"

}  // namespace

FeatureAugmenter::FeatureAugmenter(const FeatureAugmenterOptions& opts)
    : opts_(opts) {
  scratch_a_.resize(opts_.feature_dim);
  scratch_b_.resize(opts_.feature_dim);
}

void FeatureAugmenter::EnsureNodeCapacity(size_t n) {
  if (n <= seen_.size()) return;
  const size_t target = GrowCapacity(seen_.size(), n);
  seen_.resize(target, 0);
  prop_count_.resize(target, 0);
  // Matrix::Resize does not preserve contents, so grow by copy. Growth is
  // geometric; steady-state ObserveEdge never lands here.
  auto grow = [&](Matrix* m) {
    Matrix next(target, opts_.feature_dim);
    const size_t old_rows = m->rows();
    if (old_rows > 0) {
      std::memcpy(next.data(), m->data(),
                  old_rows * opts_.feature_dim * sizeof(float));
    }
    *m = std::move(next);
  };
  grow(&positional_);
  grow(&random_seen_);
  grow(&random_prop_);
  grow(&positional_prop_);
  degrees_.EnsureNodeCapacity(target);
}

void FeatureAugmenter::FitSeen(const EdgeStream& stream, double fit_time) {
  EnsureNodeCapacity(stream.num_nodes());
  std::fill(seen_.begin(), seen_.end(), uint8_t{0});

  const size_t n_edges = stream.size();
  const NodeId* src = stream.src_data();
  const NodeId* dst = stream.dst_data();
  const double* time = stream.time_data();
  size_t fit_end = 0;
  while (fit_end < n_edges && time[fit_end] <= fit_time) ++fit_end;
  for (size_t i = 0; i < fit_end; ++i) {
    seen_[src[i]] = 1;
    seen_[dst[i]] = 1;
  }

  // Cache seen nodes' hash-Gaussian random features: one row fill at fit
  // time instead of feature_dim hash evaluations per read on the hot path.
  {
    const size_t dim = opts_.feature_dim;
    for (size_t v = 0; v < seen_.size(); ++v) {
      float* row = random_seen_.Row(v);
      if (!seen_[v]) {
        std::memset(row, 0, dim * sizeof(float));
        continue;
      }
      const uint64_t key = opts_.seed * 0x9e3779b97f4a7c15ULL + v;
      for (size_t j = 0; j < dim; ++j) {
        row[j] = HashGaussian((key << 8) ^ (kRandomSalt + j));
      }
    }
  }

  // Positional fit: hash-Gaussian init for seen nodes, then a few rounds of
  // Laplacian smoothing along train edges. Nodes that interact often end up
  // close — a cheap stand-in for node2vec that still reveals communities.
  if (opts_.enable_positional) {
    const size_t dim = opts_.feature_dim;
    const float init_scale = 1.0f / std::sqrt(static_cast<float>(dim));
    for (size_t v = 0; v < seen_.size(); ++v) {
      float* row = positional_.Row(v);
      if (!seen_[v]) {
        std::memset(row, 0, dim * sizeof(float));
        continue;
      }
      const uint64_t key = opts_.seed * 0x9e3779b97f4a7c15ULL + v;
      for (size_t j = 0; j < dim; ++j) {
        row[j] = init_scale * HashGaussian((key << 8) ^ (kPositionalSalt + j));
      }
    }
    const float step = opts_.positional_step;
    for (size_t round = 0; round < opts_.positional_rounds; ++round) {
      for (size_t i = 0; i < fit_end; ++i) {
        float* a = positional_.Row(src[i]);
        float* b = positional_.Row(dst[i]);
        for (size_t j = 0; j < dim; ++j) {
          const float av = a[j], bv = b[j];
          a[j] = av + step * (bv - av);
          b[j] = bv + step * (av - bv);
        }
      }
    }
    // Smoothing drives every connected node toward the component mean;
    // remove that common direction, then rescale rows, so what remains is
    // the community-discriminative part.
    std::vector<float> mean(dim, 0.0f);
    size_t n_seen = 0;
    for (size_t v = 0; v < seen_.size(); ++v) {
      if (!seen_[v]) continue;
      Axpy(1.0f, positional_.Row(v), mean.data(), dim);
      ++n_seen;
    }
    if (n_seen > 0) {
      const float inv_n = 1.0f / static_cast<float>(n_seen);
      for (size_t j = 0; j < dim; ++j) mean[j] *= inv_n;
    }
    for (size_t v = 0; v < seen_.size(); ++v) {
      if (!seen_[v]) continue;
      float* row = positional_.Row(v);
      float norm = 0.0f;
      for (size_t j = 0; j < dim; ++j) {
        row[j] -= mean[j];
        norm += row[j] * row[j];
      }
      norm = std::sqrt(norm);
      if (norm > 1e-12f) {
        const float inv = 1.0f / norm;
        for (size_t j = 0; j < dim; ++j) row[j] *= inv;
      }
    }
  } else {
    positional_.SetZero();
  }

  Reset();
}

void FeatureAugmenter::Reset() {
  degrees_.Clear();
  std::fill(prop_count_.begin(), prop_count_.end(), 0u);
  random_prop_.SetZero();
  positional_prop_.SetZero();
}

void FeatureAugmenter::WriteCurrent(const Matrix& m, uint64_t salt,
                                    NodeId node, float* out) const {
  const size_t dim = opts_.feature_dim;
  if (node < seen_.size() && seen_[node]) {
    const Matrix& fitted =
        salt == kPositionalSalt ? positional_ : random_seen_;
    std::memcpy(out, fitted.Row(node), dim * sizeof(float));
    return;
  }
  // Unseen: current propagated estimate (zero until first incident edge).
  if (node < m.rows()) {
    std::memcpy(out, m.Row(node), dim * sizeof(float));
  } else {
    std::memset(out, 0, dim * sizeof(float));
  }
}

void FeatureAugmenter::PropagateInto(Matrix* m, NodeId node,
                                     const float* src_feat) {
  // Eq. (4)-(5): x_v <- (c * x_v + x_u) / (c + 1) — running mean over the
  // features of observed neighbors. Touches exactly one row.
  const size_t dim = opts_.feature_dim;
  const float c = static_cast<float>(prop_count_[node]);
  const float inv = 1.0f / (c + 1.0f);
  float* row = m->Row(node);
  for (size_t j = 0; j < dim; ++j) row[j] = (c * row[j] + src_feat[j]) * inv;
}

void FeatureAugmenter::FoldInto(NodeId node, NodeId source, float* sa,
                                float* sb) {
  // Propagate into unseen `node` from `source`'s *current* feature (fitted
  // if seen, propagated estimate otherwise).
  WriteCurrent(random_prop_, kRandomSalt, source, sa);
  PropagateInto(&random_prop_, node, sa);
  if (opts_.enable_positional) {
    WriteCurrent(positional_prop_, kPositionalSalt, source, sb);
    PropagateInto(&positional_prop_, node, sb);
  }
}

void FeatureAugmenter::ObserveEdge(const TemporalEdge& e) {
  const size_t hi = static_cast<size_t>(e.src > e.dst ? e.src : e.dst) + 1;
  if (hi > seen_.size()) EnsureNodeCapacity(hi);
  degrees_.Observe(e);

  const bool src_unseen = !seen_[e.src];
  const bool dst_unseen = !seen_[e.dst];
  if (!src_unseen && !dst_unseen) return;  // steady state: counters only

  if (src_unseen) FoldInto(e.src, e.dst, scratch_a_.data(), scratch_b_.data());
  if (dst_unseen) FoldInto(e.dst, e.src, scratch_a_.data(), scratch_b_.data());
  if (src_unseen) ++prop_count_[e.src];
  if (dst_unseen) ++prop_count_[e.dst];
}

void FeatureAugmenter::ObserveBulk(const EdgeStream& stream, size_t begin,
                                   size_t end) {
  if (end <= begin) return;
  ThreadPool* pool = ThreadPool::Global();
  const size_t num_t = pool->num_threads();
  const size_t group = (kReplayShards + num_t - 1) / num_t;
  const size_t num_chunks = ThreadPool::NumChunks(0, kReplayShards, group);
  // Below the threshold the per-worker range rescan outweighs the fan-out;
  // the serial loop is also the bit-exactness reference (threads = 1).
  if (num_t == 1 || num_chunks == 1 || end - begin < kBulkReplayMinEdges) {
    for (size_t i = begin; i < end; ++i) ObserveEdge(stream[i]);
    return;
  }

  const NodeId* src = stream.src_data();
  const NodeId* dst = stream.dst_data();

  // Growth must precede the fan-out: workers write counters and rows with
  // no capacity checks.
  NodeId max_id = 0;
  for (size_t i = begin; i < end; ++i) {
    if (src[i] > max_id) max_id = src[i];
    if (dst[i] > max_id) max_id = dst[i];
  }
  EnsureNodeCapacity(static_cast<size_t>(max_id) + 1);
  degrees_.AddEdges(end - begin);

  const size_t dim = opts_.feature_dim;
  if (chunk_scratch_.size() < num_chunks) {
    chunk_scratch_.resize(num_chunks);
    chunk_deferred_.resize(num_chunks);
  }
  for (size_t c = 0; c < num_chunks; ++c) {
    if (chunk_scratch_[c].size() < 2 * dim) chunk_scratch_[c].resize(2 * dim);
    chunk_deferred_[c].clear();
  }

  // Phase 1 — shard fan-out. Every worker scans the whole range once and
  // handles only the endpoints whose shard it owns, so each degree counter,
  // prop_count slot, and propagated row has exactly one writer and its
  // update sequence is in stream order. Folds from *seen* sources read only
  // the immutable fitted rows and run inline; a fold whose source is also
  // unseen (both endpoints unseen) would read a row another worker owns, so
  // it is deferred under the key (edge offset, endpoint).
  constexpr size_t mask = kReplayShards - 1;
  pool->ParallelFor(
      0, kReplayShards, group, [&](size_t s0, size_t s1, size_t) {
        const size_t chunk = s0 / group;
        float* sa = chunk_scratch_[chunk].data();
        float* sb = sa + dim;
        std::vector<uint64_t>& deferred = chunk_deferred_[chunk];
        for (size_t i = begin; i < end; ++i) {
          const NodeId u = src[i];
          const NodeId v = dst[i];
          const bool u_unseen = !seen_[u];
          const bool v_unseen = !seen_[v];
          const size_t us = u & mask;
          if (us >= s0 && us < s1) {
            degrees_.IncrementDegree(u);
            if (u_unseen) {
              if (v_unseen) {
                deferred.push_back(static_cast<uint64_t>(i - begin) * 2);
              } else {
                FoldInto(u, v, sa, sb);
                ++prop_count_[u];
              }
            }
          }
          const size_t vs = v & mask;
          if (vs >= s0 && vs < s1) {
            degrees_.IncrementDegree(v);
            if (v_unseen) {
              if (u_unseen) {
                deferred.push_back(static_cast<uint64_t>(i - begin) * 2 + 1);
              } else {
                FoldInto(v, u, sa, sb);
                ++prop_count_[v];
              }
            }
          }
        }
      });

  // Phase 2 — fixed-order reduction of the cross-shard folds: merge every
  // chunk's keys and replay them in (edge, src-before-dst) order, exactly
  // the serial ordering of those folds. The running mean makes the final
  // row order-invariant given the contribution values, so the one deviation
  // from serial replay is that these rare unseen->unseen contributions read
  // their source at batch-end state. Deterministic at any thread count.
  merged_deferred_.clear();
  for (size_t c = 0; c < num_chunks; ++c) {
    merged_deferred_.insert(merged_deferred_.end(), chunk_deferred_[c].begin(),
                            chunk_deferred_[c].end());
  }
  std::sort(merged_deferred_.begin(), merged_deferred_.end());
  for (const uint64_t key : merged_deferred_) {
    const size_t i = begin + static_cast<size_t>(key >> 1);
    const NodeId node = (key & 1) ? dst[i] : src[i];
    const NodeId other = (key & 1) ? src[i] : dst[i];
    FoldInto(node, other, scratch_a_.data(), scratch_b_.data());
    ++prop_count_[node];
  }
}

void FeatureAugmenter::WriteFeature(AugmentationProcess process, NodeId node,
                                    float* out) const {
  switch (process) {
    case AugmentationProcess::kRandom:
      WriteCurrent(random_prop_, kRandomSalt, node, out);
      return;
    case AugmentationProcess::kPositional:
      WriteCurrent(positional_prop_, kPositionalSalt, node, out);
      return;
    case AugmentationProcess::kStructural:
      EncodeDegree(degrees_.Degree(node), out);
      return;
  }
}

void FeatureAugmenter::WritePlainRandom(NodeId node, float* out) const {
  const size_t dim = opts_.feature_dim;
  const uint64_t key = opts_.seed * 0x9e3779b97f4a7c15ULL + node;
  for (size_t j = 0; j < dim; ++j) {
    out[j] = HashGaussian((key << 8) ^ (kRandomSalt + j));
  }
}

void FeatureAugmenter::EncodeDegree(size_t degree, float* out) const {
  // Sinusoidal encoding of log(1 + degree) at geometrically spaced
  // frequencies — nearby degrees get nearby codes, scale-free overall.
  // Runs on the dispatched sincos kernel (tensor/simd.h): this is the
  // per-query/per-row hot loop of batch assembly and the serve read path.
  SincosEncode(std::log1p(static_cast<float>(degree)), 0.6f, out,
               opts_.feature_dim);
}

void FeatureAugmenter::Serialize(ByteWriter* w) const {
  w->U64(opts_.feature_dim);
  w->U64(opts_.seed);
  w->U8(opts_.enable_positional ? 1 : 0);
  w->U8Vec(seen_);
  w->U32Vec(prop_count_);
  degrees_.Serialize(w);
  WriteMatrix(w, positional_);
  WriteMatrix(w, random_seen_);
  WriteMatrix(w, random_prop_);
  WriteMatrix(w, positional_prop_);
}

bool FeatureAugmenter::Deserialize(ByteReader* r) {
  if (r->U64() != opts_.feature_dim || r->U64() != opts_.seed ||
      (r->U8() != 0) != opts_.enable_positional) {
    return false;
  }
  if (!r->U8Vec(&seen_) || !r->U32Vec(&prop_count_) ||
      !degrees_.Deserialize(r)) {
    return false;
  }
  if (!ReadMatrix(r, &positional_) || !ReadMatrix(r, &random_seen_) ||
      !ReadMatrix(r, &random_prop_) || !ReadMatrix(r, &positional_prop_)) {
    return false;
  }
  return r->ok();
}

}  // namespace splash
