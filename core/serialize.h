// Copyright 2026 The SPLASH Reproduction Authors.
//
// Byte-level serialization substrate for the durability layer (serve/wal,
// serve/checkpoint, and the Serialize/Deserialize hooks on the streaming
// state holders). Design constraints:
//
//   - Bit-exact round trips. Floats and doubles are copied as raw IEEE-754
//     bytes, never formatted, so checkpoint-restore reproduces model state
//     down to the last mantissa bit — the property the recovery oracle
//     (tests/serve_recovery_test) pins.
//   - Explicit widths, little-endian layout. Every field is written through
//     a fixed-width method; there is no struct memcpy, so padding and ABI
//     never leak into the format.
//   - Readers never trust the stream. ByteReader is bounds-checked with a
//     sticky ok() flag; a truncated or hostile buffer yields zeros and
//     ok() == false instead of out-of-bounds reads.
//
// Also hosts the software CRC32C (Castagnoli) used to frame WAL records
// and checkpoint payloads. Table-driven and portable: framing integrity
// must not depend on SSE4.2 being present, and the polynomial matches the
// hardware instruction so a future accelerated swap-in stays
// format-compatible.

#ifndef SPLASH_CORE_SERIALIZE_H_
#define SPLASH_CORE_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/matrix.h"

namespace splash {

/// CRC32C (Castagnoli, poly 0x1EDC6F41 reflected = 0x82F63B78). `seed` is
/// the running CRC for incremental use; pass 0 to start.
inline uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0) {
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

/// Append-only byte sink over a caller-visible vector. Grow-only via the
/// vector; reusable across records by clearing the buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void Clear() { buf_.clear(); }
  const std::vector<uint8_t>& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }
  /// For framing writers that reserve a header in-line and patch it after
  /// the payload is encoded (serve/wal).
  uint8_t* mutable_data() { return buf_.data(); }

  void Bytes(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v) { WriteLE(v); }
  void U64(uint64_t v) { WriteLE(v); }
  void I32(int32_t v) { WriteLE(static_cast<uint32_t>(v)); }
  void F32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteLE(bits);
  }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteLE(bits);
  }

  // Length-prefixed arrays (count as u64, then raw element bytes; numeric
  // element layout matches the scalar methods on little-endian hosts, which
  // is the only layout the format defines).
  void U8Vec(const std::vector<uint8_t>& v) {
    U64(v.size());
    Bytes(v.data(), v.size());
  }
  void U32Vec(const std::vector<uint32_t>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * sizeof(uint32_t));
  }
  void U64Vec(const std::vector<uint64_t>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * sizeof(uint64_t));
  }
  void F64Vec(const std::vector<double>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * sizeof(double));
  }

 private:
  template <typename T>
  void WriteLE(T v) {
    uint8_t b[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      b[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    Bytes(b, sizeof(T));
  }

  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader over a borrowed byte span. Any overrun sets the
/// sticky ok() flag false and every subsequent read yields zero — callers
/// check ok() once at the end (and Deserialize hooks additionally validate
/// shapes/config as they go).
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : p_(data), n_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& v)
      : p_(v.data()), n_(v.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return n_ - pos_; }
  bool AtEnd() const { return pos_ == n_; }

  bool Bytes(void* out, size_t n) {
    if (!ok_ || n > n_ - pos_) {
      ok_ = false;
      if (n > 0) std::memset(out, 0, n);
      return false;
    }
    // n == 0 skips the copy: `out` may be a null data() from an empty
    // vector, and memcpy's pointer args are declared nonnull (UBSan).
    if (n > 0) std::memcpy(out, p_ + pos_, n);
    pos_ += n;
    return true;
  }

  uint8_t U8() {
    uint8_t v = 0;
    Bytes(&v, 1);
    return v;
  }
  uint32_t U32() { return ReadLE<uint32_t>(); }
  uint64_t U64() { return ReadLE<uint64_t>(); }
  int32_t I32() { return static_cast<int32_t>(ReadLE<uint32_t>()); }
  float F32() {
    const uint32_t bits = ReadLE<uint32_t>();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double F64() {
    const uint64_t bits = ReadLE<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Length-prefixed arrays. The element count is validated against the
  // remaining bytes BEFORE resizing, so a corrupt length cannot trigger a
  // pathological allocation.
  bool U8Vec(std::vector<uint8_t>* v) { return ReadVec(v, sizeof(uint8_t)); }
  bool U32Vec(std::vector<uint32_t>* v) {
    return ReadVec(v, sizeof(uint32_t));
  }
  bool U64Vec(std::vector<uint64_t>* v) {
    return ReadVec(v, sizeof(uint64_t));
  }
  bool F64Vec(std::vector<double>* v) { return ReadVec(v, sizeof(double)); }

 private:
  template <typename T>
  T ReadLE() {
    uint8_t b[sizeof(T)] = {0};
    Bytes(b, sizeof(T));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(b[i]) << (8 * i);
    }
    return v;
  }

  template <typename V>
  bool ReadVec(V* v, size_t elem_size) {
    const uint64_t count = U64();
    if (!ok_ || count > remaining() / elem_size) {
      ok_ = false;
      v->clear();
      return false;
    }
    v->resize(static_cast<size_t>(count));
    return Bytes(v->data(), v->size() * elem_size);
  }

  const uint8_t* p_;
  size_t n_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Matrix payload: dims + the meaningful [0, cols) range of every row.
/// Stride padding (ResizePadded) is dead storage and is deliberately not
/// serialized — a restored matrix is contiguous with identical contents.
inline void WriteMatrix(ByteWriter* w, const Matrix& m) {
  w->U64(m.rows());
  w->U64(m.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    w->Bytes(m.Row(r), m.cols() * sizeof(float));
  }
}

inline bool ReadMatrix(ByteReader* r, Matrix* m) {
  const uint64_t rows = r->U64();
  const uint64_t cols = r->U64();
  if (!r->ok() ||
      (cols != 0 && rows > r->remaining() / (cols * sizeof(float)))) {
    return false;
  }
  m->Resize(static_cast<size_t>(rows), static_cast<size_t>(cols));
  for (size_t i = 0; i < rows; ++i) {
    if (!r->Bytes(m->Row(i), static_cast<size_t>(cols) * sizeof(float))) {
      return false;
    }
  }
  return true;
}

/// ReadMatrix constrained to an expected shape — parameter/moment matrices
/// whose dims are fixed by the model architecture reject a stream that
/// disagrees instead of silently reshaping.
inline bool ReadMatrixExpect(ByteReader* r, Matrix* m, size_t rows,
                             size_t cols) {
  const uint64_t got_rows = r->U64();
  const uint64_t got_cols = r->U64();
  if (!r->ok() || got_rows != rows || got_cols != cols) return false;
  m->Resize(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    if (!r->Bytes(m->Row(i), cols * sizeof(float))) return false;
  }
  return true;
}

}  // namespace splash

#endif  // SPLASH_CORE_SERIALIZE_H_
