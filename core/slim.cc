// Copyright 2026 The SPLASH Reproduction Authors.

#include "core/slim.h"

#include <cassert>
#include <cmath>
#include <cstring>

namespace splash {

namespace {

constexpr float kAdamBeta1 = 0.9f;
constexpr float kAdamBeta2 = 0.999f;
constexpr float kAdamEps = 1e-8f;

void InitParam(SlimModel* /*unused*/, Matrix* w, size_t fan_in, Rng* rng) {
  // He init for the ReLU branches.
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  rng->FillGaussian(w->data(), w->size(), stddev);
}

}  // namespace

SlimModel::SlimModel(const SlimOptions& opts, Rng* rng)
    : opts_(opts), rng_(rng) {
  const size_t dv = opts_.feature_dim, dt = opts_.time_dim,
               h = opts_.hidden_dim, o = opts_.out_dim;
  auto setup = [&](Param* p, size_t rows, size_t cols, size_t fan_in) {
    p->w = Matrix(rows, cols);
    if (fan_in > 0) InitParam(this, &p->w, fan_in, rng_);
    p->grad = Matrix(rows, cols);
    p->m = Matrix(rows, cols);
    p->v = Matrix(rows, cols);
  };
  setup(&w1_, dv + dt, h, dv + dt);
  setup(&b1_, 1, h, 0);
  setup(&w2_, dv, h, dv);
  setup(&b2_, 1, h, 0);
  setup(&w3_, 2 * h, h, 2 * h);
  setup(&b3_, 1, h, 0);
  setup(&w4_, h, o, h);
  setup(&b4_, 1, o, 0);
}

size_t SlimModel::ParamCount() const {
  return w1_.w.size() + b1_.w.size() + w2_.w.size() + b2_.w.size() +
         w3_.w.size() + b3_.w.size() + w4_.w.size() + b4_.w.size();
}

void SlimModel::EncodeTime(const std::vector<double>& deltas) {
  // phi(dt)_j: sin/cos pairs of log-compressed dt at geometrically spaced
  // frequencies (fixed, not learned — same family as the degree encoding).
  const size_t dv = opts_.feature_dim, dt_dim = opts_.time_dim;
  const size_t n = deltas.size();
  for (size_t i = 0; i < n; ++i) {
    float* row = cat1_.Row(i) + dv;
    const float x = std::log1p(
        static_cast<float>(deltas[i] < 0.0 ? 0.0 : deltas[i]));
    float freq = 1.0f;
    for (size_t j = 0; j + 1 < dt_dim; j += 2) {
      const float a = x * freq;
      row[j] = std::sin(a);
      row[j + 1] = std::cos(a);
      freq *= 0.5f;
    }
    if (dt_dim % 2 == 1) row[dt_dim - 1] = x * 0.1f;
  }
}

void SlimModel::ForwardInternal(const SlimBatchInput& input) {
  const size_t b = input.node_feats.rows();
  const size_t k = opts_.k_recent, dv = opts_.feature_dim,
               dt = opts_.time_dim, h = opts_.hidden_dim, o = opts_.out_dim;
  const size_t bk = b * k;
  assert(input.neighbor_feats.rows() == bk);
  assert(input.neighbor_feats.cols() == dv);
  assert(input.time_deltas.size() == bk);
  assert(input.mask.rows() == b && input.mask.cols() == k);
  assert(input.edge_weights.size() == bk);

  // --- neighbor branch -----------------------------------------------------
  cat1_.Resize(bk, dv + dt);
  for (size_t i = 0; i < bk; ++i) {
    std::memcpy(cat1_.Row(i), input.neighbor_feats.Row(i),
                dv * sizeof(float));
  }
  EncodeTime(input.time_deltas);

  msg_pre_.Resize(bk, h);
  MatMul(cat1_, w1_.w, &msg_pre_);
  AddRowVector(&msg_pre_, b1_.w.data());
  ReluInPlace(&msg_pre_);

  agg_.Resize(b, h);
  agg_.SetZero();
  inv_weight_.resize(b);
  for (size_t bi = 0; bi < b; ++bi) {
    float wsum = 0.0f;
    float* arow = agg_.Row(bi);
    const float* mrow = input.mask.Row(bi);
    for (size_t j = 0; j < k; ++j) {
      if (mrow[j] == 0.0f) continue;
      const float w = input.edge_weights[bi * k + j];
      wsum += w;
      Axpy(w, msg_pre_.Row(bi * k + j), arow, h);
    }
    const float inv = wsum > 1e-12f ? 1.0f / wsum : 0.0f;
    inv_weight_[bi] = inv;
    for (size_t j = 0; j < h; ++j) arow[j] *= inv;
  }

  // --- self branch ---------------------------------------------------------
  self_pre_.Resize(b, h);
  MatMul(input.node_feats, w2_.w, &self_pre_);
  AddRowVector(&self_pre_, b2_.w.data());
  ReluInPlace(&self_pre_);

  // --- head ----------------------------------------------------------------
  cat2_.Resize(b, 2 * h);
  for (size_t bi = 0; bi < b; ++bi) {
    std::memcpy(cat2_.Row(bi), agg_.Row(bi), h * sizeof(float));
    std::memcpy(cat2_.Row(bi) + h, self_pre_.Row(bi), h * sizeof(float));
  }
  h_pre_.Resize(b, h);
  MatMul(cat2_, w3_.w, &h_pre_);
  AddRowVector(&h_pre_, b3_.w.data());
  ReluInPlace(&h_pre_);

  if (training_ && opts_.dropout > 0.0f) {
    drop_mask_.resize(b * h);
    const float keep = 1.0f - opts_.dropout;
    const float scale = 1.0f / keep;
    float* p = h_pre_.data();
    for (size_t i = 0; i < b * h; ++i) {
      const bool kept = rng_->Uniform() < keep;
      drop_mask_[i] = kept;
      p[i] = kept ? p[i] * scale : 0.0f;
    }
  }

  out_.Resize(b, o);
  MatMul(h_pre_, w4_.w, &out_);
  AddRowVector(&out_, b4_.w.data());
}

Matrix SlimModel::Forward(const SlimBatchInput& input) {
  ForwardInternal(input);
  return out_;
}

double SlimModel::TrainStep(const SlimBatchInput& input,
                            const std::vector<int>& labels) {
  ForwardInternal(input);
  const size_t b = input.node_feats.rows();
  const size_t k = opts_.k_recent, h = opts_.hidden_dim, o = opts_.out_dim;
  assert(labels.size() == b);
  if (b == 0) return 0.0;

  // Softmax cross-entropy; d_out = (softmax - onehot) / B.
  d_out_.Resize(b, o);
  double loss = 0.0;
  const float inv_b = 1.0f / static_cast<float>(b);
  for (size_t bi = 0; bi < b; ++bi) {
    const float* row = out_.Row(bi);
    float mx = row[0];
    for (size_t j = 1; j < o; ++j) mx = row[j] > mx ? row[j] : mx;
    float sum = 0.0f;
    float* drow = d_out_.Row(bi);
    for (size_t j = 0; j < o; ++j) {
      drow[j] = std::exp(row[j] - mx);
      sum += drow[j];
    }
    const float inv_sum = 1.0f / sum;
    const int label = labels[bi];
    loss -= std::log(
        static_cast<double>(drow[label] * inv_sum) + 1e-12);
    for (size_t j = 0; j < o; ++j) {
      drow[j] = (drow[j] * inv_sum -
                 (static_cast<int>(j) == label ? 1.0f : 0.0f)) *
                inv_b;
    }
  }

  // Head.
  MatMulTransA(h_pre_, d_out_, &w4_.grad);
  ColumnSums(d_out_, b4_.grad.data());
  d_h_.Resize(b, h);
  MatMulTransB(d_out_, w4_.w, &d_h_);
  if (training_ && opts_.dropout > 0.0f) {
    const float scale = 1.0f / (1.0f - opts_.dropout);
    float* p = d_h_.data();
    for (size_t i = 0; i < b * h; ++i) {
      p[i] = drop_mask_[i] ? p[i] * scale : 0.0f;
    }
  }
  {
    const float* act = h_pre_.data();
    float* p = d_h_.data();
    for (size_t i = 0; i < b * h; ++i) {
      if (act[i] <= 0.0f) p[i] = 0.0f;
    }
  }
  MatMulTransA(cat2_, d_h_, &w3_.grad);
  ColumnSums(d_h_, b3_.grad.data());
  d_cat2_.Resize(b, 2 * h);
  MatMulTransB(d_h_, w3_.w, &d_cat2_);

  // Self branch: d_self = d_cat2[:, h:] masked by ReLU.
  d_self_.Resize(b, h);
  for (size_t bi = 0; bi < b; ++bi) {
    const float* src = d_cat2_.Row(bi) + h;
    const float* act = self_pre_.Row(bi);
    float* dst = d_self_.Row(bi);
    for (size_t j = 0; j < h; ++j) dst[j] = act[j] > 0.0f ? src[j] : 0.0f;
  }
  MatMulTransA(input.node_feats, d_self_, &w2_.grad);
  ColumnSums(d_self_, b2_.grad.data());

  // Neighbor branch: distribute d_agg over messages with their mean
  // weights, mask by ReLU.
  d_msg_.Resize(b * k, h);
  for (size_t bi = 0; bi < b; ++bi) {
    const float* dagg = d_cat2_.Row(bi);  // first h columns
    const float* mrow = input.mask.Row(bi);
    const float inv = inv_weight_[bi];
    for (size_t j = 0; j < k; ++j) {
      float* drow = d_msg_.Row(bi * k + j);
      if (mrow[j] == 0.0f || inv == 0.0f) {
        std::memset(drow, 0, h * sizeof(float));
        continue;
      }
      const float w = input.edge_weights[bi * k + j] * inv;
      const float* act = msg_pre_.Row(bi * k + j);
      for (size_t jj = 0; jj < h; ++jj) {
        drow[jj] = act[jj] > 0.0f ? w * dagg[jj] : 0.0f;
      }
    }
  }
  MatMulTransA(cat1_, d_msg_, &w1_.grad);
  ColumnSums(d_msg_, b1_.grad.data());

  ++adam_t_;
  AdamStep(&w1_);
  AdamStep(&b1_);
  AdamStep(&w2_);
  AdamStep(&b2_);
  AdamStep(&w3_);
  AdamStep(&b3_);
  AdamStep(&w4_);
  AdamStep(&b4_);
  return loss / static_cast<double>(b);
}

void SlimModel::AdamStep(Param* p) {
  const size_t n = p->w.size();
  float* w = p->w.data();
  const float* g = p->grad.data();
  float* m = p->m.data();
  float* v = p->v.data();
  const float t = static_cast<float>(adam_t_);
  const float bias1 = 1.0f - std::pow(kAdamBeta1, t);
  const float bias2 = 1.0f - std::pow(kAdamBeta2, t);
  const float step = opts_.lr * std::sqrt(bias2) / bias1;
  for (size_t i = 0; i < n; ++i) {
    m[i] = kAdamBeta1 * m[i] + (1.0f - kAdamBeta1) * g[i];
    v[i] = kAdamBeta2 * v[i] + (1.0f - kAdamBeta2) * g[i] * g[i];
    w[i] -= step * m[i] / (std::sqrt(v[i]) + kAdamEps);
  }
}

}  // namespace splash
