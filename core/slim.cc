// Copyright 2026 The SPLASH Reproduction Authors.

#include "core/slim.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "runtime/thread_pool.h"
#include "tensor/simd.h"

namespace splash {

namespace {

constexpr float kAdamBeta1 = 0.9f;
constexpr float kAdamBeta2 = 0.999f;
constexpr float kAdamEps = 1e-8f;

// Batch rows per parallel chunk. Fixed (not thread-count derived) so chunk
// boundaries — and with them the per-chunk dropout streams — are the same
// at 2, 4, or 64 threads.
constexpr size_t kBatchGrain = 32;

void InitParam(SlimModel* /*unused*/, Matrix* w, size_t fan_in, Rng* rng) {
  // He init for the ReLU branches.
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  rng->FillGaussian(w->data(), w->size(), stddev);
}

}  // namespace

void SlimForwardScratch::Resize(size_t b, size_t k_recent, size_t feature_dim,
                                size_t time_dim, size_t hidden_dim,
                                size_t out_dim, bool dropout) {
  const size_t bk = b * k_recent;
  // Activations use the padded layout (64B-aligned rows) so the SIMD
  // backends run whole-vector steady loops; `out` stays contiguous because
  // external consumers (eval/trainer score gather) flat-copy it.
  cat1.ResizePadded(bk, feature_dim + time_dim);
  msg_pre.ResizePadded(bk, hidden_dim);
  agg.ResizePadded(b, hidden_dim);
  self_pre.ResizePadded(b, hidden_dim);
  cat2.ResizePadded(b, 2 * hidden_dim);
  h_pre.ResizePadded(b, hidden_dim);
  out.Resize(b, out_dim);
  inv_weight.resize(b);
  if (dropout) drop_mask.resize(b * hidden_dim);
}

SlimModel::SlimModel(const SlimOptions& opts, Rng* rng)
    : opts_(opts), rng_(rng) {
  const size_t dv = opts_.feature_dim, dt = opts_.time_dim,
               h = opts_.hidden_dim, o = opts_.out_dim;
  auto setup = [&](Param* p, size_t rows, size_t cols, size_t fan_in) {
    p->w = Matrix(rows, cols);
    if (fan_in > 0) InitParam(this, &p->w, fan_in, rng_);
    p->grad = Matrix(rows, cols);
    p->m = Matrix(rows, cols);
    p->v = Matrix(rows, cols);
  };
  setup(&w1_, dv + dt, h, dv + dt);
  setup(&b1_, 1, h, 0);
  setup(&w2_, dv, h, dv);
  setup(&b2_, 1, h, 0);
  setup(&w3_, 2 * h, h, 2 * h);
  setup(&b3_, 1, h, 0);
  setup(&w4_, h, o, h);
  setup(&b4_, 1, o, 0);
  PackWeights();
}

void SlimModel::PackWeights() {
  const Matrix* ws[4] = {&w1_.w, &w2_.w, &w3_.w, &w4_.w};
  for (size_t i = 0; i < 4; ++i) pw_[i].PackFrom(*ws[i]);
  if (bf16_replica_) {
    for (size_t i = 0; i < 4; ++i) pw16_[i].PackFrom(*ws[i]);
  }
}

void SlimModel::SetReplicaPrecisionBf16(bool bf16) {
  bf16_replica_ = bf16;
  if (bf16) {
    const Matrix* ws[4] = {&w1_.w, &w2_.w, &w3_.w, &w4_.w};
    for (size_t i = 0; i < 4; ++i) pw16_[i].PackFrom(*ws[i]);
  }
}

size_t SlimModel::PackedWeightBytes() const {
  size_t total = 0;
  for (size_t i = 0; i < 4; ++i) {
    total += bf16_replica_ ? pw16_[i].bytes() : pw_[i].bytes();
  }
  return total;
}

size_t SlimModel::ParamCount() const {
  return w1_.w.size() + b1_.w.size() + w2_.w.size() + b2_.w.size() +
         w3_.w.size() + b3_.w.size() + w4_.w.size() + b4_.w.size();
}

void SlimModel::Serialize(ByteWriter* w) const {
  w->U64(adam_t_);
  w->U64(train_calls_);
  const Param* ps[kNumParams] = {&w1_, &b1_, &w2_, &b2_, &w3_, &b3_,
                                 &w4_, &b4_};
  for (const Param* p : ps) {
    WriteMatrix(w, p->w);
    WriteMatrix(w, p->m);
    WriteMatrix(w, p->v);
  }
}

bool SlimModel::Deserialize(ByteReader* r) {
  adam_t_ = static_cast<size_t>(r->U64());
  train_calls_ = r->U64();
  Param* ps[kNumParams] = {&w1_, &b1_, &w2_, &b2_, &w3_, &b3_, &w4_, &b4_};
  for (Param* p : ps) {
    const size_t rows = p->w.rows(), cols = p->w.cols();
    if (!ReadMatrixExpect(r, &p->w, rows, cols) ||
        !ReadMatrixExpect(r, &p->m, rows, cols) ||
        !ReadMatrixExpect(r, &p->v, rows, cols)) {
      return false;
    }
  }
  if (!r->ok()) return false;
  PackWeights();
  return true;
}

SlimModel::GradRefs SlimModel::MainGradRefs() {
  return GradRefs{{&w1_.grad, &b1_.grad, &w2_.grad, &b2_.grad, &w3_.grad,
                   &b3_.grad, &w4_.grad, &b4_.grad}};
}

void SlimModel::EnsureWorkerScratch(size_t num_workers) {
  if (worker_grads_.size() < num_workers) worker_grads_.resize(num_workers);
  const Matrix* shapes[kNumParams] = {&w1_.w, &b1_.w, &w2_.w, &b2_.w,
                                      &w3_.w, &b3_.w, &w4_.w, &b4_.w};
  for (GradScratch& ws : worker_grads_) {
    for (size_t p = 0; p < kNumParams; ++p) {
      ws.g[p].Resize(shapes[p]->rows(), shapes[p]->cols());
    }
  }
}

void SlimModel::EncodeTime(const std::vector<double>& deltas, size_t i0,
                           size_t i1, SlimForwardScratch* s) const {
  // phi(dt)_j: sin/cos pairs of log-compressed dt at geometrically spaced
  // frequencies (fixed, not learned — same family as the degree encoding).
  const size_t dv = opts_.feature_dim, dt_dim = opts_.time_dim;
  for (size_t i = i0; i < i1; ++i) {
    float* row = s->cat1.Row(i) + dv;
    const float x = std::log1p(
        static_cast<float>(deltas[i] < 0.0 ? 0.0 : deltas[i]));
    // Dispatched sincos kernel (tensor/simd.h): libm on the scalar
    // reference backend, 8-lane polynomial sincos on avx2.
    SincosEncode(x, 0.5f, row, dt_dim);
  }
}

void SlimModel::ResizeScratch(size_t b, bool for_training) {
  const size_t k = opts_.k_recent, h = opts_.hidden_dim, o = opts_.out_dim;
  const size_t bk = b * k;
  fwd_.Resize(b, k, opts_.feature_dim, opts_.time_dim, h, o,
              training_ && opts_.dropout > 0.0f);
  if (for_training) {
    d_out_.ResizePadded(b, o);
    d_h_.ResizePadded(b, h);
    d_cat2_.ResizePadded(b, 2 * h);
    d_self_.ResizePadded(b, h);
    d_msg_.ResizePadded(bk, h);
  }
}

void SlimModel::DenseLayer(const Matrix& in, const Matrix& w,
                           const float* bias, size_t pi, Matrix* out,
                           size_t r0, size_t r1, bool relu,
                           bool const_read) const {
  // Packed and unpacked fused kernels are bit-identical per backend, so
  // the pack knob never changes results — only which B layout streams.
  // The bf16 operand is reserved for the const read path: training and
  // Forward() always see full-precision weights.
  if (GemmPackEnabled()) {
    if (const_read && bf16_replica_) {
      MatMulPacked16BiasActRange(in, pw16_[pi], out, r0, r1, bias, relu);
    } else {
      MatMulPackedBiasActRange(in, pw_[pi], out, r0, r1, bias, relu);
    }
    return;
  }
  MatMulBiasActRange(in, w, out, r0, r1, bias, relu);
}

void SlimModel::ForwardRange(const SlimBatchInput& input, size_t r0,
                             size_t r1, Rng* drop_rng,
                             SlimForwardScratch* s, bool const_read) const {
  const size_t k = opts_.k_recent, dv = opts_.feature_dim,
               h = opts_.hidden_dim;
  const size_t n0 = r0 * k, n1 = r1 * k;  // neighbor-row range

  // --- neighbor branch -----------------------------------------------------
  for (size_t i = n0; i < n1; ++i) {
    std::memcpy(s->cat1.Row(i), input.neighbor_feats.Row(i),
                dv * sizeof(float));
  }
  EncodeTime(input.time_deltas, n0, n1, s);

  // Bias add + ReLU ride the GEMM tile store (fused epilogue): one pass
  // over each activation matrix instead of three. The scalar backend
  // computes the identical arithmetic to the historical separate passes.
  DenseLayer(s->cat1, w1_.w, b1_.w.data(), 0, &s->msg_pre, n0, n1,
             /*relu=*/true, const_read);

  for (size_t bi = r0; bi < r1; ++bi) {
    float wsum = 0.0f;
    float* arow = s->agg.Row(bi);
    std::memset(arow, 0, h * sizeof(float));
    const float* mrow = input.mask.Row(bi);
    for (size_t j = 0; j < k; ++j) {
      if (mrow[j] == 0.0f) continue;
      const float w = input.edge_weights[bi * k + j];
      wsum += w;
      Axpy(w, s->msg_pre.Row(bi * k + j), arow, h);
    }
    const float inv = wsum > 1e-12f ? 1.0f / wsum : 0.0f;
    s->inv_weight[bi] = inv;
    for (size_t j = 0; j < h; ++j) arow[j] *= inv;
  }

  // --- self branch ---------------------------------------------------------
  DenseLayer(input.node_feats, w2_.w, b2_.w.data(), 1, &s->self_pre, r0, r1,
             /*relu=*/true, const_read);

  // --- head ----------------------------------------------------------------
  for (size_t bi = r0; bi < r1; ++bi) {
    std::memcpy(s->cat2.Row(bi), s->agg.Row(bi), h * sizeof(float));
    std::memcpy(s->cat2.Row(bi) + h, s->self_pre.Row(bi), h * sizeof(float));
  }
  DenseLayer(s->cat2, w3_.w, b3_.w.data(), 2, &s->h_pre, r0, r1,
             /*relu=*/true, const_read);

  if (drop_rng != nullptr && training_ && opts_.dropout > 0.0f) {
    const float keep = 1.0f - opts_.dropout;
    const float scale = 1.0f / keep;
    for (size_t bi = r0; bi < r1; ++bi) {
      float* row = s->h_pre.Row(bi);
      uint8_t* mask = s->drop_mask.data() + bi * h;
      for (size_t j = 0; j < h; ++j) {
        const bool kept = drop_rng->Uniform() < keep;
        mask[j] = kept;
        row[j] = kept ? row[j] * scale : 0.0f;
      }
    }
  }

  DenseLayer(s->h_pre, w4_.w, b4_.w.data(), 3, &s->out, r0, r1,
             /*relu=*/false, const_read);
}

void SlimModel::ForwardAll(const SlimBatchInput& input, bool for_training) {
  const size_t b = input.node_feats.rows();
  const size_t k = opts_.k_recent, dv = opts_.feature_dim;
  assert(input.neighbor_feats.rows() == b * k);
  assert(input.neighbor_feats.cols() == dv);
  assert(input.time_deltas.size() == b * k);
  assert(input.mask.rows() == b && input.mask.cols() == k);
  assert(input.edge_weights.size() == b * k);
  (void)k;
  (void)dv;
  ResizeScratch(b, for_training);

  ThreadPool* pool = ThreadPool::Global();
  const bool wants_dropout = training_ && opts_.dropout > 0.0f;
  // Standalone training-mode forwards (not part of TrainStep, which
  // parallelizes forward+backward per chunk itself) keep the serial
  // model-Rng dropout path for reproducibility.
  if (pool->num_threads() == 1 || b < 2 * kBatchGrain || wants_dropout) {
    ForwardRange(input, 0, b, wants_dropout ? rng_ : nullptr, &fwd_);
    return;
  }
  pool->ParallelFor(0, b, kBatchGrain,
                    [&](size_t r0, size_t r1, size_t) {
                      ForwardRange(input, r0, r1, nullptr, &fwd_);
                    });
}

Matrix SlimModel::Forward(const SlimBatchInput& input) {
  ForwardAll(input, /*for_training=*/false);
  return fwd_.out;
}

const Matrix& SlimModel::PredictConst(const SlimBatchInput& input,
                                      SlimForwardScratch* scratch) const {
  const size_t b = input.node_feats.rows();
  scratch->Resize(b, opts_.k_recent, opts_.feature_dim, opts_.time_dim,
                  opts_.hidden_dim, opts_.out_dim, /*dropout=*/false);
  // Serial, dropout-free: identical arithmetic to the eval-mode ForwardAll
  // (the parallel path computes the same per-row values), so snapshot
  // reads are bit-identical to fused Forward on the same state — unless
  // the bf16 replica is on, which is tolerance-equivalent by design.
  ForwardRange(input, 0, b, nullptr, scratch, /*const_read=*/true);
  return scratch->out;
}

void SlimModel::BackwardRange(const SlimBatchInput& input,
                              const std::vector<int>& labels, size_t r0,
                              size_t r1, const GradRefs& grads,
                              bool accumulate, double* loss_out) {
  const size_t b = input.node_feats.rows();
  const size_t k = opts_.k_recent, h = opts_.hidden_dim, o = opts_.out_dim;
  const size_t n0 = r0 * k, n1 = r1 * k;

  // Softmax cross-entropy; d_out = (softmax - onehot) / B.
  double loss = 0.0;
  const float inv_b = 1.0f / static_cast<float>(b);
  for (size_t bi = r0; bi < r1; ++bi) {
    const float* row = fwd_.out.Row(bi);
    float mx = row[0];
    for (size_t j = 1; j < o; ++j) mx = row[j] > mx ? row[j] : mx;
    float sum = 0.0f;
    float* drow = d_out_.Row(bi);
    for (size_t j = 0; j < o; ++j) {
      drow[j] = std::exp(row[j] - mx);
      sum += drow[j];
    }
    const float inv_sum = 1.0f / sum;
    const int label = labels[bi];
    loss -= std::log(
        static_cast<double>(drow[label] * inv_sum) + 1e-12);
    for (size_t j = 0; j < o; ++j) {
      drow[j] = (drow[j] * inv_sum -
                 (static_cast<int>(j) == label ? 1.0f : 0.0f)) *
                inv_b;
    }
  }
  *loss_out += loss;

  // Head. MatMulTransARange never zeroes (range contract, tensor/matrix.h):
  // the serial full-range path pre-zeroes the main grads here, the parallel
  // path accumulates into worker scratch TrainStep already zeroed.
  if (!accumulate) grads.g[6]->SetZero();
  MatMulTransARange(fwd_.h_pre, d_out_, grads.g[6], r0, r1);
  ColumnSumsRange(d_out_, grads.g[7]->data(), r0, r1, accumulate);
  MatMulTransBRange(d_out_, w4_.w, &d_h_, r0, r1);
  if (training_ && opts_.dropout > 0.0f) {
    const float scale = 1.0f / (1.0f - opts_.dropout);
    for (size_t bi = r0; bi < r1; ++bi) {
      float* p = d_h_.Row(bi);
      const uint8_t* mask = fwd_.drop_mask.data() + bi * h;
      for (size_t j = 0; j < h; ++j) {
        p[j] = mask[j] ? p[j] * scale : 0.0f;
      }
    }
  }
  for (size_t bi = r0; bi < r1; ++bi) {
    const float* act = fwd_.h_pre.Row(bi);
    float* p = d_h_.Row(bi);
    for (size_t j = 0; j < h; ++j) {
      if (act[j] <= 0.0f) p[j] = 0.0f;
    }
  }
  if (!accumulate) grads.g[4]->SetZero();
  MatMulTransARange(fwd_.cat2, d_h_, grads.g[4], r0, r1);
  ColumnSumsRange(d_h_, grads.g[5]->data(), r0, r1, accumulate);
  MatMulTransBRange(d_h_, w3_.w, &d_cat2_, r0, r1);

  // Self branch: d_self = d_cat2[:, h:] masked by ReLU.
  for (size_t bi = r0; bi < r1; ++bi) {
    const float* src = d_cat2_.Row(bi) + h;
    const float* act = fwd_.self_pre.Row(bi);
    float* dst = d_self_.Row(bi);
    for (size_t j = 0; j < h; ++j) dst[j] = act[j] > 0.0f ? src[j] : 0.0f;
  }
  if (!accumulate) grads.g[2]->SetZero();
  MatMulTransARange(input.node_feats, d_self_, grads.g[2], r0, r1);
  ColumnSumsRange(d_self_, grads.g[3]->data(), r0, r1, accumulate);

  // Neighbor branch: distribute d_agg over messages with their mean
  // weights, mask by ReLU.
  for (size_t bi = r0; bi < r1; ++bi) {
    const float* dagg = d_cat2_.Row(bi);  // first h columns
    const float* mrow = input.mask.Row(bi);
    const float inv = fwd_.inv_weight[bi];
    for (size_t j = 0; j < k; ++j) {
      float* drow = d_msg_.Row(bi * k + j);
      if (mrow[j] == 0.0f || inv == 0.0f) {
        std::memset(drow, 0, h * sizeof(float));
        continue;
      }
      const float w = input.edge_weights[bi * k + j] * inv;
      const float* act = fwd_.msg_pre.Row(bi * k + j);
      for (size_t jj = 0; jj < h; ++jj) {
        drow[jj] = act[jj] > 0.0f ? w * dagg[jj] : 0.0f;
      }
    }
  }
  if (!accumulate) grads.g[0]->SetZero();
  MatMulTransARange(fwd_.cat1, d_msg_, grads.g[0], n0, n1);
  ColumnSumsRange(d_msg_, grads.g[1]->data(), n0, n1, accumulate);
}

double SlimModel::TrainStep(const SlimBatchInput& input,
                            const std::vector<int>& labels) {
  const size_t b = input.node_feats.rows();
  assert(labels.size() == b);
  if (b == 0) return 0.0;
  ResizeScratch(b, /*for_training=*/true);
  ++train_calls_;

  ThreadPool* pool = ThreadPool::Global();
  const size_t num_chunks = ThreadPool::NumChunks(0, b, kBatchGrain);
  const bool wants_dropout = training_ && opts_.dropout > 0.0f;
  double loss = 0.0;

  if (pool->num_threads() == 1 || num_chunks < 2) {
    // Serial path: bit-identical to the pre-parallel implementation
    // (dropout drawn sequentially from the model Rng, full-range kernels).
    ForwardRange(input, 0, b, wants_dropout ? rng_ : nullptr, &fwd_);
    BackwardRange(input, labels, 0, b, MainGradRefs(), /*accumulate=*/false,
                  &loss);
  } else {
    const size_t num_workers = pool->num_threads();
    EnsureWorkerScratch(num_workers);
    for (GradScratch& ws : worker_grads_) {
      for (Matrix& g : ws.g) g.SetZero();
    }
    chunk_loss_.assign(num_chunks, 0.0);

    pool->ParallelFor(0, b, kBatchGrain,
                      [&](size_t r0, size_t r1, size_t worker) {
                        const size_t chunk = r0 / kBatchGrain;
                        Rng drop_rng(WorkerRngSeed(opts_.dropout_seed,
                                                   train_calls_, chunk));
                        ForwardRange(input, r0, r1,
                                     wants_dropout ? &drop_rng : nullptr,
                                     &fwd_);
                        GradScratch& ws = worker_grads_[worker];
                        GradRefs refs{{&ws.g[0], &ws.g[1], &ws.g[2],
                                       &ws.g[3], &ws.g[4], &ws.g[5],
                                       &ws.g[6], &ws.g[7]}};
                        BackwardRange(input, labels, r0, r1, refs,
                                      /*accumulate=*/true,
                                      &chunk_loss_[chunk]);
                      });

    // Fixed-order reductions: chunk order for the loss, worker order for
    // the gradients — deterministic for a given thread count.
    for (size_t c = 0; c < num_chunks; ++c) loss += chunk_loss_[c];
    GradRefs main = MainGradRefs();
    for (size_t p = 0; p < kNumParams; ++p) {
      Matrix* dst = main.g[p];
      const size_t n = dst->size();
      std::memcpy(dst->data(), worker_grads_[0].g[p].data(),
                  n * sizeof(float));
      for (size_t w = 1; w < num_workers; ++w) {
        Axpy(1.0f, worker_grads_[w].g[p].data(), dst->data(), n);
      }
    }
  }

  ++adam_t_;
  AdamStep(&w1_);
  AdamStep(&b1_);
  AdamStep(&w2_);
  AdamStep(&b2_);
  AdamStep(&w3_);
  AdamStep(&b3_);
  AdamStep(&w4_);
  AdamStep(&b4_);
  // Re-pack the read-path operands from the stepped weights (grow-only, so
  // allocation-free after the first step at a given shape).
  PackWeights();
  return loss / static_cast<double>(b);
}

void SlimModel::AdamStep(Param* p) {
  // Params are contiguous (never padded), so the fused kernel runs over the
  // flat block; the scalar backend is the historical loop verbatim.
  assert(p->w.IsContiguous());
  const float t = static_cast<float>(adam_t_);
  const float bias1 = 1.0f - std::pow(kAdamBeta1, t);
  const float bias2 = 1.0f - std::pow(kAdamBeta2, t);
  const float step = opts_.lr * std::sqrt(bias2) / bias1;
  AdamUpdate(p->w.data(), p->grad.data(), p->m.data(), p->v.data(),
             p->w.size(), step, kAdamBeta1, kAdamBeta2, kAdamEps);
}

}  // namespace splash
