// Copyright 2026 The SPLASH Reproduction Authors.
//
// Minimal Status / StatusOr used across the library. No exceptions on the
// hot path: streaming calls return plain values; fallible construction and
// parsing return Status / StatusOr.

#ifndef SPLASH_CORE_STATUS_H_
#define SPLASH_CORE_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace splash {

class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }
  std::string ToString() const { return ok_ ? "OK" : message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Holds either a value or an error Status. `value()` asserts on error in
/// debug builds; callers are expected to check `ok()` first.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)), has_value_(true) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(has_value_);
    return value_;
  }
  T& value() & {
    assert(has_value_);
    return value_;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

}  // namespace splash

#endif  // SPLASH_CORE_STATUS_H_
