// Copyright 2026 The SPLASH Reproduction Authors.
//
// Streaming train / evaluate loops shared by every bench. The protocol
// (paper Sec. V-A) is a strict chronological replay: a query at time t is
// answered with model state from edges strictly before the first edge at
// time >= t; then the stream advances. Queries are mini-batched in arrival
// order for throughput.

#ifndef SPLASH_EVAL_TRAINER_H_
#define SPLASH_EVAL_TRAINER_H_

#include <cstddef>

#include "core/predictor.h"
#include "core/types.h"
#include "datasets/dataset.h"
#include "graph/edge_stream.h"

namespace splash {

/// Builds the standard chronological split: the last `test_frac` of edges
/// (by position) is the test period, the `val_frac` before it validation.
/// Each boundary is placed at the first *index* whose time reaches the
/// positional cut time and snapped to the previous edge's timestamp, so a
/// run of tied timestamps never straddles a boundary — without the snap, a
/// boundary-time query would be scored with its own-time edges already in
/// model state (they replay before the period ends).
ChronoSplit MakeChronoSplit(const EdgeStream& stream, double val_frac,
                            double test_frac);

struct TrainerOptions {
  size_t epochs = 8;
  size_t batch_size = 200;
  bool early_stopping = true;
  size_t patience = 3;  // epochs without val improvement before stopping
  /// Worker threads for the runtime/ ThreadPool. 0 keeps the current
  /// pool (SPLASH_THREADS env or hardware concurrency); any other value
  /// resizes the process-global pool on the next Fit/Evaluate and stays
  /// in effect afterwards (the pool is global, not per-trainer). 1
  /// reproduces the serial numbers bit-for-bit.
  size_t num_threads = 0;
  /// Stages in flight for the pipelined executor (eval/stream_executor.h):
  /// 0 runs the historical serial loop (per-edge ObserveEdge + fused batch
  /// calls — the determinism reference, bit-identical to the pre-executor
  /// trainer); >= 1 double-buffers, overlapping ObserveBulk of batch k+1
  /// with the staged compute of batch k. At SPLASH_THREADS=1 depth 1 is
  /// bit-identical to depth 0 (every bulk path degrades to the serial
  /// loop); at higher thread counts results are deterministic per
  /// (threads, depth) pair.
  size_t pipeline_depth = 1;
};

struct FitResult {
  double train_seconds = 0.0;
  double best_val_metric = 0.0;
  size_t epochs_run = 0;
};

struct EvalResult {
  double metric = 0.0;
  double predict_seconds = 0.0;  // time inside PredictBatch only
  size_t num_queries = 0;
};

class StreamTrainer {
 public:
  explicit StreamTrainer(const TrainerOptions& opts) : opts_(opts) {}

  /// Trains on the train period, validating per epoch on the val period.
  /// Replays only up to the validation boundary.
  FitResult Fit(TemporalPredictor* model, const Dataset& ds,
                const ChronoSplit& split);

  /// Replays the full stream and scores the test-period queries with the
  /// task metric.
  EvalResult Evaluate(TemporalPredictor* model, const Dataset& ds,
                      const ChronoSplit& split);

 private:
  TrainerOptions opts_;
};

}  // namespace splash

#endif  // SPLASH_EVAL_TRAINER_H_
