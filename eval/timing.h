// Copyright 2026 The SPLASH Reproduction Authors.
//
// Wall-clock timing for benches and trainers, plus the latency histogram
// the serving layer (serve/) uses for per-endpoint p50/p99/p999.

#ifndef SPLASH_EVAL_TIMING_H_
#define SPLASH_EVAL_TIMING_H_

#include <array>
#include <chrono>
#include <cstdint>

namespace splash {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Nanoseconds elapsed since construction or the last Reset().
  uint64_t Nanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Quantile digest of one endpoint's latency distribution (nanoseconds).
struct LatencySummary {
  uint64_t count = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;

  /// Folds `other` into this digest. count/mean/min/max merge exactly
  /// (count-weighted mean); each quantile takes the max of the two parts,
  /// which upper-bounds the true union quantile — for any q, at least a
  /// fraction q of the combined samples lie at or below the larger part's
  /// q-quantile. Exact union quantiles need the histograms: the serving
  /// layer merges LatencyHistogram buckets and summarizes once
  /// (ShardedSplashService::Stats), using this only where histograms are
  /// gone (already-summarized stats).
  void MergeFrom(const LatencySummary& other) {
    if (other.count == 0) return;
    if (count == 0) {
      *this = other;
      return;
    }
    const double total =
        static_cast<double>(count) + static_cast<double>(other.count);
    mean_ns = (mean_ns * static_cast<double>(count) +
               other.mean_ns * static_cast<double>(other.count)) /
              total;
    p50_ns = p50_ns > other.p50_ns ? p50_ns : other.p50_ns;
    p99_ns = p99_ns > other.p99_ns ? p99_ns : other.p99_ns;
    p999_ns = p999_ns > other.p999_ns ? p999_ns : other.p999_ns;
    min_ns = min_ns < other.min_ns ? min_ns : other.min_ns;
    max_ns = max_ns > other.max_ns ? max_ns : other.max_ns;
    count += other.count;
  }
};

/// Fixed-size log-linear latency histogram (HDR-style): values below 2^4 ns
/// land in exact unit buckets; above that, each power-of-two octave is cut
/// into 2^4 linear sub-buckets, so any recorded value is off by at most
/// 1/16 (~6.3%) of itself. The bucket array is a member std::array —
/// Record() never allocates, which is what lets per-thread histograms sit
/// on the serving hot path (timing_histogram_test gates this). Per-thread
/// instances are combined with Merge(); quantiles come from a bucket walk
/// and return the bucket midpoint, clamped to the observed [min, max].
///
/// Thread contract: Record/Merge/quantiles are NOT synchronized. The
/// serving layer keeps one histogram per client/endpoint and serializes
/// reads against writes externally (a per-client mutex).
class LatencyHistogram {
 public:
  LatencyHistogram() { Clear(); }

  void Clear() {
    counts_.fill(0);
    count_ = 0;
    total_ns_ = 0;
    min_ns_ = ~uint64_t{0};
    max_ns_ = 0;
  }

  /// Records one latency sample. Allocation-free.
  void RecordNs(uint64_t ns) {
    ++counts_[BucketOf(ns)];
    ++count_;
    total_ns_ += ns;
    if (ns < min_ns_) min_ns_ = ns;
    if (ns > max_ns_) max_ns_ = ns;
  }

  void RecordSeconds(double seconds) {
    RecordNs(seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9));
  }

  /// Adds `other`'s samples to this histogram (bucket-wise, exact).
  void Merge(const LatencyHistogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    total_ns_ += other.total_ns_;
    if (other.min_ns_ < min_ns_) min_ns_ = other.min_ns_;
    if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
  }

  uint64_t count() const { return count_; }
  uint64_t total_ns() const { return total_ns_; }
  uint64_t min_ns() const { return count_ == 0 ? 0 : min_ns_; }
  uint64_t max_ns() const { return max_ns_; }
  double mean_ns() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_ns_) /
                             static_cast<double>(count_);
  }

  /// Value (ns) below which a fraction `q` in [0, 1] of the samples fall:
  /// the midpoint of the bucket holding the ceil(q * count)-th smallest
  /// sample (so at q=0.99 over 100 samples the 99th sample answers, not
  /// the 100th), clamped to the observed extremes (Quantile(0) == min and
  /// Quantile(1) == max exactly). 0 when empty.
  double QuantileNs(double q) const {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return static_cast<double>(min_ns_);
    if (q >= 1.0) return static_cast<double>(max_ns_);
    // 0-based index of the ceil(q*count)-th sample.
    const double target = q * static_cast<double>(count_);
    uint64_t rank = static_cast<uint64_t>(target);
    if (static_cast<double>(rank) != target) ++rank;  // ceil
    rank = rank > 0 ? rank - 1 : 0;
    if (rank >= count_) rank = count_ - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += counts_[i];
      if (seen > rank) {
        const uint64_t lo = BucketLowerBound(i);
        const uint64_t width = BucketWidth(i);
        // Midpoint of the bucket's value range [lo, lo + width - 1]; a
        // unit bucket reports its exact value.
        double v =
            static_cast<double>(lo) + 0.5 * static_cast<double>(width - 1);
        if (v < static_cast<double>(min_ns_)) {
          v = static_cast<double>(min_ns_);
        }
        if (v > static_cast<double>(max_ns_)) {
          v = static_cast<double>(max_ns_);
        }
        return v;
      }
    }
    return static_cast<double>(max_ns_);
  }

  LatencySummary Summarize() const {
    LatencySummary s;
    s.count = count_;
    s.mean_ns = mean_ns();
    s.p50_ns = QuantileNs(0.50);
    s.p99_ns = QuantileNs(0.99);
    s.p999_ns = QuantileNs(0.999);
    s.min_ns = min_ns();
    s.max_ns = max_ns_;
    return s;
  }

 private:
  static constexpr size_t kSubBits = 4;  // 16 sub-buckets per octave
  // 64 octaves covers the full uint64 ns range (the last octaves are
  // unreachable in practice; ~2^42 ns is already over an hour).
  static constexpr size_t kNumBuckets = size_t{64} << kSubBits;

  static size_t BucketOf(uint64_t v) {
    if (v < (uint64_t{1} << kSubBits)) return static_cast<size_t>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int shift = msb - static_cast<int>(kSubBits);
    const size_t sub = static_cast<size_t>(
        (v >> shift) & ((uint64_t{1} << kSubBits) - 1));
    return ((static_cast<size_t>(shift) + 1) << kSubBits) + sub;
  }

  static uint64_t BucketLowerBound(size_t idx) {
    if (idx < (size_t{1} << kSubBits)) return idx;
    const size_t shift = (idx >> kSubBits) - 1;
    const uint64_t sub = idx & ((size_t{1} << kSubBits) - 1);
    return ((uint64_t{1} << kSubBits) + sub) << shift;
  }

  static uint64_t BucketWidth(size_t idx) {
    if (idx < (size_t{1} << kSubBits)) return 1;
    return uint64_t{1} << ((idx >> kSubBits) - 1);
  }

  std::array<uint64_t, kNumBuckets> counts_;
  uint64_t count_ = 0;
  uint64_t total_ns_ = 0;
  uint64_t min_ns_ = ~uint64_t{0};
  uint64_t max_ns_ = 0;
};

}  // namespace splash

#endif  // SPLASH_EVAL_TIMING_H_
