// Copyright 2026 The SPLASH Reproduction Authors.
//
// Wall-clock timing for benches and trainers.

#ifndef SPLASH_EVAL_TIMING_H_
#define SPLASH_EVAL_TIMING_H_

#include <chrono>

namespace splash {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace splash

#endif  // SPLASH_EVAL_TIMING_H_
