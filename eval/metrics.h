// Copyright 2026 The SPLASH Reproduction Authors.
//
// Task metrics (paper Sec. V-A): AUC for anomaly detection, F1-micro for
// node classification, NDCG@10 for node affinity — plus the silhouette
// coefficient used by the Fig. 14 representation study.

#ifndef SPLASH_EVAL_METRICS_H_
#define SPLASH_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "core/types.h"
#include "tensor/matrix.h"

namespace splash {

/// Area under the ROC curve of `scores` against binary `labels` (1 =
/// positive). Ties share rank. Returns 0.5 when one class is absent.
double AucScore(const std::vector<double>& scores,
                const std::vector<int>& labels);

/// Micro-averaged F1 of predicted vs gold class ids. For single-label
/// multi-class this equals accuracy; kept under its paper name.
double F1Micro(const std::vector<int>& predicted,
               const std::vector<int>& gold);

/// Mean NDCG@k where row i of `scores` ranks the classes and `labels[i]`
/// is the single relevant class.
double NdcgAtK(const Matrix& scores, const std::vector<int>& labels,
               size_t k);

/// Dispatches to the task's metric. `scores` is (num_queries x num_classes);
/// for anomaly detection the score of class 1 minus class 0 is used.
double TaskMetric(TaskType task, const Matrix& scores,
                  const std::vector<int>& labels);

/// Mean silhouette coefficient of the rows of `points` under `labels`.
/// O(n^2 d); intended for the small node sets of the qualitative studies.
double SilhouetteScore(const Matrix& points, const std::vector<int>& labels);

}  // namespace splash

#endif  // SPLASH_EVAL_METRICS_H_
