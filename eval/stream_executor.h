// Copyright 2026 The SPLASH Reproduction Authors.
//
// The pipelined streaming executor: turns the trainer's chronological
// replay loop into an explicit schedule of ops and runs it either serially
// (the determinism reference) or double-buffered on a PipelineThread.
//
// Schedule. One epoch of the replay protocol is a sequence of ReplayOps,
// each "observe edges [edge_begin, edge_end), then flush queries
// [query_begin, query_end)". BuildFitSchedule / BuildEvalSchedule derive
// the op list from (dataset, split, batch_size) with exactly the flush
// points of the historical interleaved loop: a full batch flushes right
// before the first edge whose time reaches its last query's time; partial
// batches flush after the replay tail (train before val, matching the old
// post-loop flush order). The schedule depends only on immutable data, so
// Fit builds it once and replays it every epoch.
//
// Pipelining (pipeline_depth >= 1, staged-batch predictors only):
//
//   wait(observe op j) ; StageBatch(op j)        <- state hand-off barrier
//   submit(observe op j+1)  ||  Train/PredictStaged(op j)
//
// StageBatch reads streaming state at op j's horizon; the staged compute
// reads only the staged tensors and the model weights (the split-phase
// contract in core/predictor.h), so it is data-race-free against
// ObserveBulk of op j+1 running on the pipeline thread. Both stages may
// fan out on the global ThreadPool (external submissions serialize).
// Run() returns only after the in-flight observe finished — the
// epoch-boundary barrier.
//
// Determinism: pipeline_depth = 0 runs per-edge ObserveEdge + fused
// TrainBatch/PredictBatch — bit-identical to the pre-executor trainer at
// any thread count. Depth >= 1 issues the same computation in the same
// data-dependency order; at SPLASH_THREADS=1 every bulk path falls back to
// the serial loops, so depth 1 is bit-identical to depth 0 there.

#ifndef SPLASH_EVAL_STREAM_EXECUTOR_H_
#define SPLASH_EVAL_STREAM_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/predictor.h"
#include "core/types.h"
#include "datasets/dataset.h"
#include "graph/edge_stream.h"
#include "runtime/pipeline.h"
#include "tensor/matrix.h"

namespace splash {

/// One step of a replay schedule: observe edges [edge_begin, edge_end) of
/// the stream in order, then flush queries [query_begin, query_end).
struct ReplayOp {
  enum class Flush : uint8_t {
    kNone,     // observe only (replay tail)
    kTrain,    // TrainBatch on the query range
    kPredict,  // PredictBatch; scores go to the Run sink
  };
  size_t edge_begin = 0;
  size_t edge_end = 0;
  size_t query_begin = 0;
  size_t query_end = 0;
  Flush flush = Flush::kNone;
};

/// Schedule of one Fit epoch: train-period queries flush as kTrain,
/// val-period queries as kPredict, edges replay up to the validation
/// boundary. Flush points match the historical interleaved loop exactly
/// (see file header). `ops` is cleared first.
void BuildFitSchedule(const Dataset& ds, const ChronoSplit& split,
                      size_t batch_size, std::vector<ReplayOp>* ops);

/// Schedule of one Evaluate pass: the full stream replays, test-period
/// queries (time > val_end_time) flush as kPredict.
void BuildEvalSchedule(const Dataset& ds, const ChronoSplit& split,
                       size_t batch_size, std::vector<ReplayOp>* ops);

struct StreamExecutorOptions {
  /// 0 = serial reference path (per-edge ObserveEdge, fused batch calls —
  /// bit-identical to the pre-executor trainer). >= 1 = double-buffered:
  /// ObserveBulk of op j+1 overlaps the staged compute of op j (one op in
  /// flight; deeper pipelining would let ingest run past state the compute
  /// stage still reads, so depth is effectively clamped to 1).
  size_t pipeline_depth = 1;
};

class StreamExecutor {
 public:
  explicit StreamExecutor(const StreamExecutorOptions& opts) : opts_(opts) {}

  /// Called after each kPredict flush with the op and its score matrix.
  using PredictSink = std::function<void(const ReplayOp&, const Matrix&)>;

  /// Executes `ops` over (model, stream, queries). `training` mirrors the
  /// trainer's historical mode dance: when true, each kPredict flush is
  /// computed with SetTraining(false) and training mode is restored after.
  /// Falls back to the serial path when the model does not support staged
  /// batches or pipeline_depth == 0.
  void Run(TemporalPredictor* model, const EdgeStream& stream,
           const std::vector<PropertyQuery>& queries,
           const std::vector<ReplayOp>& ops, bool training,
           const PredictSink& on_predict);

  /// Seconds spent staging + scoring kPredict flushes during the last
  /// Run — the "time inside PredictBatch" the serial trainer reports.
  double predict_seconds() const { return predict_seconds_; }

 private:
  void RunSerial(TemporalPredictor* model, const EdgeStream& stream,
                 const std::vector<PropertyQuery>& queries,
                 const std::vector<ReplayOp>& ops, bool training,
                 const PredictSink& on_predict);

  StreamExecutorOptions opts_;
  std::unique_ptr<PipelineThread> pipe_;  // created on first pipelined Run
  std::vector<PropertyQuery> batch_;      // grow-only flush scratch
  double predict_seconds_ = 0.0;
};

}  // namespace splash

#endif  // SPLASH_EVAL_STREAM_EXECUTOR_H_
