// Copyright 2026 The SPLASH Reproduction Authors.

#include "eval/stream_executor.h"

#include <algorithm>

#include "eval/timing.h"

namespace splash {

namespace {

/// First query index with time > `bound` (queries are sorted by time).
size_t QueryUpperBound(const std::vector<PropertyQuery>& qs, double bound) {
  return static_cast<size_t>(
      std::upper_bound(qs.begin(), qs.end(), bound,
                       [](double b, const PropertyQuery& q) {
                         return b < q.time;
                       }) -
      qs.begin());
}

/// Emits the flush ops of query range [q_begin, q_end): full batches flush
/// right before the first edge (< replay_end) whose time reaches their last
/// query's time — the point where the interleaved loop's batch filled — and
/// the partial remainder is returned for the caller to place after the
/// replay tail. `edge_cursor` advances past each flush point.
void EmitFullBatches(const double* t, size_t replay_end, size_t q_begin,
                     size_t q_end, size_t batch_size,
                     const std::vector<PropertyQuery>& qs,
                     ReplayOp::Flush flush, size_t* edge_cursor,
                     std::vector<ReplayOp>* ops, size_t* partial_begin) {
  size_t qb = q_begin;
  for (; qb + batch_size <= q_end; qb += batch_size) {
    const size_t qe = qb + batch_size;
    const size_t flush_at = static_cast<size_t>(
        std::lower_bound(t + *edge_cursor, t + replay_end,
                         qs[qe - 1].time) -
        t);
    ops->push_back({*edge_cursor, flush_at, qb, qe, flush});
    *edge_cursor = flush_at;
  }
  *partial_begin = qb;
}

}  // namespace

void BuildFitSchedule(const Dataset& ds, const ChronoSplit& split,
                      size_t batch_size, std::vector<ReplayOp>* ops) {
  ops->clear();
  // The historical loop flushed after every query at batch_size 0.
  if (batch_size == 0) batch_size = 1;
  const double* t = ds.stream.time_data();
  const size_t n_edges = ds.stream.size();
  // The epoch replays every edge with time <= val_end (the loop stops at
  // the first later edge).
  const size_t replay_end = static_cast<size_t>(
      std::upper_bound(t, t + n_edges, split.val_end_time) - t);
  const size_t q_train_end = QueryUpperBound(ds.queries, split.train_end_time);
  const size_t q_val_end = QueryUpperBound(ds.queries, split.val_end_time);

  size_t edge_cursor = 0;
  size_t train_partial = 0, val_partial = q_train_end;
  // Queries are sorted by time, so every full train batch fills (and
  // flushes) before the first full val batch does.
  EmitFullBatches(t, replay_end, 0, q_train_end, batch_size, ds.queries,
                  ReplayOp::Flush::kTrain, &edge_cursor, ops, &train_partial);
  EmitFullBatches(t, replay_end, q_train_end, q_val_end, batch_size,
                  ds.queries, ReplayOp::Flush::kPredict, &edge_cursor, ops,
                  &val_partial);
  // Replay tail, then the post-loop partial flushes in their historical
  // order: train first, then val.
  if (edge_cursor < replay_end) {
    ops->push_back({edge_cursor, replay_end, 0, 0, ReplayOp::Flush::kNone});
  }
  if (train_partial < q_train_end) {
    ops->push_back({replay_end, replay_end, train_partial, q_train_end,
                    ReplayOp::Flush::kTrain});
  }
  if (val_partial < q_val_end) {
    ops->push_back({replay_end, replay_end, val_partial, q_val_end,
                    ReplayOp::Flush::kPredict});
  }
}

void BuildEvalSchedule(const Dataset& ds, const ChronoSplit& split,
                       size_t batch_size, std::vector<ReplayOp>* ops) {
  ops->clear();
  if (batch_size == 0) batch_size = 1;
  const double* t = ds.stream.time_data();
  const size_t n_edges = ds.stream.size();
  const size_t q_val_end = QueryUpperBound(ds.queries, split.val_end_time);
  const size_t q_end = ds.queries.size();

  size_t edge_cursor = 0;
  size_t partial = q_val_end;
  EmitFullBatches(t, n_edges, q_val_end, q_end, batch_size, ds.queries,
                  ReplayOp::Flush::kPredict, &edge_cursor, ops, &partial);
  if (edge_cursor < n_edges) {
    ops->push_back({edge_cursor, n_edges, 0, 0, ReplayOp::Flush::kNone});
  }
  if (partial < q_end) {
    ops->push_back(
        {n_edges, n_edges, partial, q_end, ReplayOp::Flush::kPredict});
  }
}

void StreamExecutor::RunSerial(TemporalPredictor* model,
                               const EdgeStream& stream,
                               const std::vector<PropertyQuery>& queries,
                               const std::vector<ReplayOp>& ops,
                               bool training,
                               const PredictSink& on_predict) {
  for (const ReplayOp& op : ops) {
    for (size_t i = op.edge_begin; i < op.edge_end; ++i) {
      model->ObserveEdge(stream[i], i);
    }
    if (op.flush == ReplayOp::Flush::kNone) continue;
    batch_.assign(queries.begin() + op.query_begin,
                  queries.begin() + op.query_end);
    if (op.flush == ReplayOp::Flush::kTrain) {
      model->TrainBatch(batch_);
    } else {
      if (training) model->SetTraining(false);
      WallTimer timer;
      const Matrix out = model->PredictBatch(batch_);
      predict_seconds_ += timer.Seconds();
      if (training) model->SetTraining(true);
      on_predict(op, out);
    }
  }
}

void StreamExecutor::Run(TemporalPredictor* model, const EdgeStream& stream,
                         const std::vector<PropertyQuery>& queries,
                         const std::vector<ReplayOp>& ops, bool training,
                         const PredictSink& on_predict) {
  predict_seconds_ = 0.0;
  if (opts_.pipeline_depth == 0 || !model->SupportsStagedBatches()) {
    RunSerial(model, stream, queries, ops, training, on_predict);
    return;
  }
  if (!pipe_) pipe_ = std::make_unique<PipelineThread>();

  // The one in-flight ingest job; reused across ops (Submit only ever
  // follows the Wait that retired the previous job).
  struct ObserveJob {
    TemporalPredictor* model;
    const EdgeStream* stream;
    size_t begin, end;
    static void Invoke(void* ctx) {
      auto* job = static_cast<ObserveJob*>(ctx);
      job->model->ObserveBulk(*job->stream, job->begin, job->end);
    }
  };
  ObserveJob job{model, &stream, 0, 0};

  for (size_t j = 0; j < ops.size(); ++j) {
    const ReplayOp& op = ops[j];
    if (j == 0) {
      // Prologue: nothing to overlap with yet.
      model->ObserveBulk(stream, op.edge_begin, op.edge_end);
    } else {
      // Hand-off barrier: op j's edges (submitted at j-1) are now state.
      pipe_->Wait();
    }

    const bool has_flush = op.flush != ReplayOp::Flush::kNone;
    const bool is_predict = op.flush == ReplayOp::Flush::kPredict;
    if (has_flush) {
      // Stage from current state BEFORE later edges start ingesting.
      WallTimer stage_timer;
      batch_.assign(queries.begin() + op.query_begin,
                    queries.begin() + op.query_end);
      model->StageBatch(batch_);
      if (is_predict) predict_seconds_ += stage_timer.Seconds();
    }
    if (j + 1 < ops.size()) {
      job.begin = ops[j + 1].edge_begin;
      job.end = ops[j + 1].edge_end;
      pipe_->Submit(&ObserveJob::Invoke, &job);
    }
    if (has_flush) {
      // Staged compute overlaps the ingest of op j+1.
      if (op.flush == ReplayOp::Flush::kTrain) {
        model->TrainStaged();
      } else {
        if (training) model->SetTraining(false);
        WallTimer timer;
        const Matrix out = model->PredictStaged();
        predict_seconds_ += timer.Seconds();
        if (training) model->SetTraining(true);
        on_predict(op, out);
      }
    }
  }
  // Epoch-boundary barrier: no ingest outlives the schedule.
  pipe_->Wait();
}

}  // namespace splash
