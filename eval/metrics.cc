// Copyright 2026 The SPLASH Reproduction Authors.

#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace splash {

double AucScore(const std::vector<double>& scores,
                const std::vector<int>& labels) {
  const size_t n = scores.size();
  size_t pos = 0;
  for (int l : labels) pos += l != 0;
  const size_t neg = n - pos;
  if (pos == 0 || neg == 0) return 0.5;

  // Rank-sum (Mann-Whitney) AUC with midranks for ties.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t t = i; t <= j; ++t) {
      if (labels[order[t]] != 0) rank_sum_pos += midrank;
    }
    i = j + 1;
  }
  const double p = static_cast<double>(pos), q = static_cast<double>(neg);
  return (rank_sum_pos - p * (p + 1.0) / 2.0) / (p * q);
}

double F1Micro(const std::vector<int>& predicted,
               const std::vector<int>& gold) {
  if (predicted.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    correct += predicted[i] == gold[i];
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

double NdcgAtK(const Matrix& scores, const std::vector<int>& labels,
               size_t k) {
  const size_t n = scores.rows(), c = scores.cols();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const float* row = scores.Row(i);
    // Labels outside the score columns (dataset num_classes understating
    // the query labels) count as not-retrievable rather than reading OOB.
    if (labels[i] < 0 || static_cast<size_t>(labels[i]) >= c) continue;
    const float target = row[labels[i]];
    // Rank of the relevant class = 1 + number of classes scoring above it
    // (ties broken against us, conservative).
    size_t rank = 1;
    for (size_t j = 0; j < c; ++j) {
      if (static_cast<int>(j) != labels[i] && row[j] >= target) ++rank;
    }
    if (rank <= k) {
      total += 1.0 / std::log2(static_cast<double>(rank) + 1.0);
    }
  }
  // Ideal DCG is 1 (single relevant item at rank 1).
  return total / static_cast<double>(n);
}

double TaskMetric(TaskType task, const Matrix& scores,
                  const std::vector<int>& labels) {
  const size_t n = scores.rows();
  switch (task) {
    case TaskType::kAnomalyDetection: {
      std::vector<double> s(n);
      for (size_t i = 0; i < n; ++i) {
        s[i] = scores.cols() >= 2
                   ? static_cast<double>(scores(i, 1)) - scores(i, 0)
                   : scores(i, 0);
      }
      return AucScore(s, labels);
    }
    case TaskType::kNodeClassification: {
      std::vector<int> pred(n);
      for (size_t i = 0; i < n; ++i) {
        const float* row = scores.Row(i);
        size_t best = 0;
        for (size_t j = 1; j < scores.cols(); ++j) {
          if (row[j] > row[best]) best = j;
        }
        pred[i] = static_cast<int>(best);
      }
      return F1Micro(pred, labels);
    }
    case TaskType::kNodeAffinity:
      return NdcgAtK(scores, labels, 10);
  }
  return 0.0;
}

double SilhouetteScore(const Matrix& points, const std::vector<int>& labels) {
  const size_t n = points.rows(), d = points.cols();
  if (n < 2) return 0.0;
  int max_label = 0;
  for (int l : labels) max_label = std::max(max_label, l);
  const size_t c = static_cast<size_t>(max_label) + 1;
  std::vector<size_t> cluster_size(c, 0);
  for (int l : labels) ++cluster_size[l];

  double total = 0.0;
  size_t counted = 0;
  std::vector<double> dist_sum(c);
  for (size_t i = 0; i < n; ++i) {
    if (cluster_size[labels[i]] < 2) continue;  // silhouette undefined
    std::fill(dist_sum.begin(), dist_sum.end(), 0.0);
    const float* pi = points.Row(i);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const float* pj = points.Row(j);
      double acc = 0.0;
      for (size_t t = 0; t < d; ++t) {
        const double diff = static_cast<double>(pi[t]) - pj[t];
        acc += diff * diff;
      }
      dist_sum[labels[j]] += std::sqrt(acc);
    }
    const double a = dist_sum[labels[i]] /
                     static_cast<double>(cluster_size[labels[i]] - 1);
    double b = 1e300;
    for (size_t l = 0; l < c; ++l) {
      if (static_cast<int>(l) == labels[i] || cluster_size[l] == 0) continue;
      b = std::min(b, dist_sum[l] / static_cast<double>(cluster_size[l]));
    }
    if (b >= 1e300) continue;  // single cluster overall
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace splash
