// Copyright 2026 The SPLASH Reproduction Authors.

#include "eval/trainer.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "eval/metrics.h"
#include "eval/stream_executor.h"
#include "eval/timing.h"
#include "runtime/thread_pool.h"

namespace splash {

namespace {

/// Boundary time for "the first `frac` of the edges": the later period
/// starts at the first index whose time reaches the cut edge's time, and
/// the boundary snaps to the timestamp just before it. For distinct
/// timestamps this reproduces the historical quantile boundary exactly;
/// when a tied run straddles the positional cut, the whole run moves into
/// the later period instead of being bisected (a bisected run would score
/// boundary-time queries with their own-time edges already in state).
double BoundaryAtFraction(const EdgeStream& stream, double frac) {
  const size_t n = stream.size();
  if (n == 0) return 0.0;
  const double clamped = std::min(1.0, std::max(0.0, frac));
  // The historical boundary was t[floor(frac*(n-1))] inclusive; the later
  // period therefore starts one past it. Deriving the cut from that index
  // keeps distinct-timestamp boundaries bit-identical to the old quantile
  // for every n, not just when frac*n is integral.
  const size_t cut = static_cast<size_t>(
                         clamped * static_cast<double>(n - 1)) + 1;
  if (cut >= n) return stream.max_time();
  const double* t = stream.time_data();
  const size_t first = static_cast<size_t>(
      std::lower_bound(t, t + n, t[cut]) - t);
  if (first == 0) return stream.min_time() - 1.0;
  return t[first - 1];
}

/// Applies the trainer's thread knob: resizes the global pool only when a
/// count was requested and differs from the ambient one.
void ApplyThreadKnob(size_t num_threads) {
  if (num_threads > 0 && ThreadPool::GlobalThreads() != num_threads) {
    ThreadPool::SetGlobalThreads(num_threads);
  }
}

/// Predict sink appending each flush's scores (grow-only Resize + copy)
/// and labels; `*rows` tracks the fill point. Shared by Fit (val window)
/// and Evaluate (test window).
StreamExecutor::PredictSink MakeScoreSink(const Dataset& ds, Matrix* scores,
                                          std::vector<int>* labels,
                                          size_t* rows) {
  return [&ds, scores, labels, rows](const ReplayOp& op, const Matrix& out) {
    const size_t n = op.query_end - op.query_begin;
    scores->Resize(*rows + n, out.cols());
    std::memcpy(scores->Row(*rows), out.data(), out.size() * sizeof(float));
    *rows += n;
    for (size_t q = op.query_begin; q < op.query_end; ++q) {
      labels->push_back(ds.queries[q].class_label);
    }
  };
}

}  // namespace

ChronoSplit MakeChronoSplit(const EdgeStream& stream, double val_frac,
                            double test_frac) {
  ChronoSplit split;
  split.train_end_time =
      BoundaryAtFraction(stream, 1.0 - val_frac - test_frac);
  split.val_end_time = BoundaryAtFraction(stream, 1.0 - test_frac);
  return split;
}

FitResult StreamTrainer::Fit(TemporalPredictor* model, const Dataset& ds,
                             const ChronoSplit& split) {
  ApplyThreadKnob(opts_.num_threads);
  WallTimer timer;
  FitResult result;

  // The schedule depends only on (stream, queries, split, batch size):
  // build it once, replay it every epoch.
  std::vector<ReplayOp> ops;
  BuildFitSchedule(ds, split, opts_.batch_size, &ops);
  StreamExecutor executor({opts_.pipeline_depth});

  size_t epochs_since_best = 0;
  for (size_t epoch = 0; epoch < opts_.epochs; ++epoch) {
    model->SetTraining(true);
    model->ResetState();

    Matrix val_scores;
    std::vector<int> val_labels;
    size_t val_rows = 0;
    executor.Run(model, ds.stream, ds.queries, ops, /*training=*/true,
                 MakeScoreSink(ds, &val_scores, &val_labels, &val_rows));
    ++result.epochs_run;

    const double val_metric =
        val_rows > 0 ? TaskMetric(ds.task, val_scores, val_labels) : 0.0;
    if (epoch == 0 || val_metric > result.best_val_metric) {
      result.best_val_metric = val_metric;
      epochs_since_best = 0;
    } else if (++epochs_since_best >= opts_.patience &&
               opts_.early_stopping) {
      break;
    }
  }
  model->SetTraining(false);
  result.train_seconds = timer.Seconds();
  return result;
}

EvalResult StreamTrainer::Evaluate(TemporalPredictor* model,
                                   const Dataset& ds,
                                   const ChronoSplit& split) {
  ApplyThreadKnob(opts_.num_threads);
  EvalResult result;
  model->SetTraining(false);
  model->ResetState();

  std::vector<ReplayOp> ops;
  BuildEvalSchedule(ds, split, opts_.batch_size, &ops);
  StreamExecutor executor({opts_.pipeline_depth});

  Matrix scores;
  std::vector<int> labels;
  size_t rows = 0;
  executor.Run(model, ds.stream, ds.queries, ops, /*training=*/false,
               MakeScoreSink(ds, &scores, &labels, &rows));
  result.predict_seconds = executor.predict_seconds();

  result.num_queries = rows;
  result.metric = rows > 0 ? TaskMetric(ds.task, scores, labels) : 0.0;
  return result;
}

}  // namespace splash
