// Copyright 2026 The SPLASH Reproduction Authors.

#include "eval/trainer.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "eval/metrics.h"
#include "eval/timing.h"
#include "runtime/thread_pool.h"

namespace splash {

namespace {

/// Boundary time for "the first `frac` of the edges": the later period
/// starts at the first index whose time reaches the cut edge's time, and
/// the boundary snaps to the timestamp just before it. For distinct
/// timestamps this reproduces the historical quantile boundary exactly;
/// when a tied run straddles the positional cut, the whole run moves into
/// the later period instead of being bisected (a bisected run would score
/// boundary-time queries with their own-time edges already in state).
double BoundaryAtFraction(const EdgeStream& stream, double frac) {
  const size_t n = stream.size();
  if (n == 0) return 0.0;
  const double clamped = std::min(1.0, std::max(0.0, frac));
  // The historical boundary was t[floor(frac*(n-1))] inclusive; the later
  // period therefore starts one past it. Deriving the cut from that index
  // keeps distinct-timestamp boundaries bit-identical to the old quantile
  // for every n, not just when frac*n is integral.
  const size_t cut = static_cast<size_t>(
                         clamped * static_cast<double>(n - 1)) + 1;
  if (cut >= n) return stream.max_time();
  const double* t = stream.time_data();
  const size_t first = static_cast<size_t>(
      std::lower_bound(t, t + n, t[cut]) - t);
  if (first == 0) return stream.min_time() - 1.0;
  return t[first - 1];
}

/// Applies the trainer's thread knob: resizes the global pool only when a
/// count was requested and differs from the ambient one.
void ApplyThreadKnob(size_t num_threads) {
  if (num_threads > 0 && ThreadPool::GlobalThreads() != num_threads) {
    ThreadPool::SetGlobalThreads(num_threads);
  }
}

}  // namespace

ChronoSplit MakeChronoSplit(const EdgeStream& stream, double val_frac,
                            double test_frac) {
  ChronoSplit split;
  split.train_end_time =
      BoundaryAtFraction(stream, 1.0 - val_frac - test_frac);
  split.val_end_time = BoundaryAtFraction(stream, 1.0 - test_frac);
  return split;
}

FitResult StreamTrainer::Fit(TemporalPredictor* model, const Dataset& ds,
                             const ChronoSplit& split) {
  ApplyThreadKnob(opts_.num_threads);
  WallTimer timer;
  FitResult result;
  const size_t n_edges = ds.stream.size();

  std::vector<PropertyQuery> train_batch, val_batch;
  train_batch.reserve(opts_.batch_size);
  val_batch.reserve(opts_.batch_size);

  size_t epochs_since_best = 0;
  for (size_t epoch = 0; epoch < opts_.epochs; ++epoch) {
    model->SetTraining(true);
    model->ResetState();
    train_batch.clear();
    val_batch.clear();

    Matrix val_scores;
    std::vector<int> val_labels;
    size_t val_rows = 0;
    auto flush_train = [&] {
      if (train_batch.empty()) return;
      model->TrainBatch(train_batch);
      train_batch.clear();
    };
    auto flush_val = [&] {
      if (val_batch.empty()) return;
      model->SetTraining(false);
      const Matrix out = model->PredictBatch(val_batch);
      model->SetTraining(true);
      val_scores.Resize(val_rows + val_batch.size(), out.cols());
      std::memcpy(val_scores.Row(val_rows), out.data(),
                  out.size() * sizeof(float));
      val_rows += val_batch.size();
      for (const PropertyQuery& q : val_batch) {
        val_labels.push_back(q.class_label);
      }
      val_batch.clear();
    };

    size_t qi = 0;
    for (size_t i = 0; i <= n_edges; ++i) {
      const double horizon =
          i < n_edges ? ds.stream[i].time : split.val_end_time;
      while (qi < ds.queries.size() && ds.queries[qi].time <= horizon) {
        const PropertyQuery& q = ds.queries[qi++];
        if (q.time <= split.train_end_time) {
          train_batch.push_back(q);
          if (train_batch.size() >= opts_.batch_size) flush_train();
        } else if (q.time <= split.val_end_time) {
          val_batch.push_back(q);
          if (val_batch.size() >= opts_.batch_size) flush_val();
        }
      }
      if (i == n_edges || ds.stream[i].time > split.val_end_time) break;
      model->ObserveEdge(ds.stream[i], i);
    }
    flush_train();
    flush_val();
    ++result.epochs_run;

    const double val_metric =
        val_rows > 0 ? TaskMetric(ds.task, val_scores, val_labels) : 0.0;
    if (epoch == 0 || val_metric > result.best_val_metric) {
      result.best_val_metric = val_metric;
      epochs_since_best = 0;
    } else if (++epochs_since_best >= opts_.patience &&
               opts_.early_stopping) {
      break;
    }
  }
  model->SetTraining(false);
  result.train_seconds = timer.Seconds();
  return result;
}

EvalResult StreamTrainer::Evaluate(TemporalPredictor* model,
                                   const Dataset& ds,
                                   const ChronoSplit& split) {
  ApplyThreadKnob(opts_.num_threads);
  EvalResult result;
  model->SetTraining(false);
  model->ResetState();

  const size_t n_edges = ds.stream.size();
  std::vector<PropertyQuery> batch;
  batch.reserve(opts_.batch_size);
  Matrix scores;
  std::vector<int> labels;
  size_t rows = 0;

  auto flush = [&] {
    if (batch.empty()) return;
    WallTimer predict_timer;
    const Matrix out = model->PredictBatch(batch);
    result.predict_seconds += predict_timer.Seconds();
    scores.Resize(rows + batch.size(), out.cols());
    std::memcpy(scores.Row(rows), out.data(), out.size() * sizeof(float));
    rows += batch.size();
    for (const PropertyQuery& q : batch) labels.push_back(q.class_label);
    batch.clear();
  };

  size_t qi = 0;
  for (size_t i = 0; i <= n_edges; ++i) {
    const double horizon =
        i < n_edges ? ds.stream[i].time : ds.stream.max_time() + 1.0;
    while (qi < ds.queries.size() && ds.queries[qi].time <= horizon) {
      const PropertyQuery& q = ds.queries[qi++];
      if (q.time > split.val_end_time) {
        batch.push_back(q);
        if (batch.size() >= opts_.batch_size) flush();
      }
    }
    if (i == n_edges) break;
    model->ObserveEdge(ds.stream[i], i);
  }
  flush();

  result.num_queries = rows;
  result.metric = rows > 0 ? TaskMetric(ds.task, scores, labels) : 0.0;
  return result;
}

}  // namespace splash
