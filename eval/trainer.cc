// Copyright 2026 The SPLASH Reproduction Authors.

#include "eval/trainer.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "eval/metrics.h"
#include "eval/timing.h"

namespace splash {

ChronoSplit MakeChronoSplit(const EdgeStream& stream, double val_frac,
                            double test_frac) {
  ChronoSplit split;
  split.train_end_time = stream.TimeQuantile(1.0 - val_frac - test_frac);
  split.val_end_time = stream.TimeQuantile(1.0 - test_frac);
  return split;
}

FitResult StreamTrainer::Fit(TemporalPredictor* model, const Dataset& ds,
                             const ChronoSplit& split) {
  WallTimer timer;
  FitResult result;
  const size_t n_edges = ds.stream.size();

  std::vector<PropertyQuery> train_batch, val_batch;
  train_batch.reserve(opts_.batch_size);
  val_batch.reserve(opts_.batch_size);

  size_t epochs_since_best = 0;
  for (size_t epoch = 0; epoch < opts_.epochs; ++epoch) {
    model->SetTraining(true);
    model->ResetState();
    train_batch.clear();
    val_batch.clear();

    Matrix val_scores;
    std::vector<int> val_labels;
    size_t val_rows = 0;
    auto flush_train = [&] {
      if (train_batch.empty()) return;
      model->TrainBatch(train_batch);
      train_batch.clear();
    };
    auto flush_val = [&] {
      if (val_batch.empty()) return;
      model->SetTraining(false);
      const Matrix out = model->PredictBatch(val_batch);
      model->SetTraining(true);
      val_scores.Resize(val_rows + val_batch.size(), out.cols());
      std::memcpy(val_scores.Row(val_rows), out.data(),
                  out.size() * sizeof(float));
      val_rows += val_batch.size();
      for (const PropertyQuery& q : val_batch) {
        val_labels.push_back(q.class_label);
      }
      val_batch.clear();
    };

    size_t qi = 0;
    for (size_t i = 0; i <= n_edges; ++i) {
      const double horizon =
          i < n_edges ? ds.stream[i].time : split.val_end_time;
      while (qi < ds.queries.size() && ds.queries[qi].time <= horizon) {
        const PropertyQuery& q = ds.queries[qi++];
        if (q.time <= split.train_end_time) {
          train_batch.push_back(q);
          if (train_batch.size() >= opts_.batch_size) flush_train();
        } else if (q.time <= split.val_end_time) {
          val_batch.push_back(q);
          if (val_batch.size() >= opts_.batch_size) flush_val();
        }
      }
      if (i == n_edges || ds.stream[i].time > split.val_end_time) break;
      model->ObserveEdge(ds.stream[i], i);
    }
    flush_train();
    flush_val();
    ++result.epochs_run;

    const double val_metric =
        val_rows > 0 ? TaskMetric(ds.task, val_scores, val_labels) : 0.0;
    if (epoch == 0 || val_metric > result.best_val_metric) {
      result.best_val_metric = val_metric;
      epochs_since_best = 0;
    } else if (++epochs_since_best >= opts_.patience &&
               opts_.early_stopping) {
      break;
    }
  }
  model->SetTraining(false);
  result.train_seconds = timer.Seconds();
  return result;
}

EvalResult StreamTrainer::Evaluate(TemporalPredictor* model,
                                   const Dataset& ds,
                                   const ChronoSplit& split) {
  EvalResult result;
  model->SetTraining(false);
  model->ResetState();

  const size_t n_edges = ds.stream.size();
  std::vector<PropertyQuery> batch;
  batch.reserve(opts_.batch_size);
  Matrix scores;
  std::vector<int> labels;
  size_t rows = 0;

  auto flush = [&] {
    if (batch.empty()) return;
    WallTimer predict_timer;
    const Matrix out = model->PredictBatch(batch);
    result.predict_seconds += predict_timer.Seconds();
    scores.Resize(rows + batch.size(), out.cols());
    std::memcpy(scores.Row(rows), out.data(), out.size() * sizeof(float));
    rows += batch.size();
    for (const PropertyQuery& q : batch) labels.push_back(q.class_label);
    batch.clear();
  };

  size_t qi = 0;
  for (size_t i = 0; i <= n_edges; ++i) {
    const double horizon =
        i < n_edges ? ds.stream[i].time : ds.stream.max_time() + 1.0;
    while (qi < ds.queries.size() && ds.queries[qi].time <= horizon) {
      const PropertyQuery& q = ds.queries[qi++];
      if (q.time > split.val_end_time) {
        batch.push_back(q);
        if (batch.size() >= opts_.batch_size) flush();
      }
    }
    if (i == n_edges) break;
    model->ObserveEdge(ds.stream[i], i);
  }
  flush();

  result.num_queries = rows;
  result.metric = rows > 0 ? TaskMetric(ds.task, scores, labels) : 0.0;
  return result;
}

}  // namespace splash
