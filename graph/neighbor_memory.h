// Copyright 2026 The SPLASH Reproduction Authors.
//
// Fixed-capacity k-recent neighbor memory: one contiguous slab holding k
// (neighbor id, time) slots per node, addressed as node * k + slot, with a
// per-node ring head. Observe() is two ring writes — no pointers chased, no
// heap allocation on the steady-state path. This is the structure behind the
// paper's O(1)-per-edge update claim (Fig. 11); bench_micro_substrate gates
// its flatness.

#ifndef SPLASH_GRAPH_NEIGHBOR_MEMORY_H_
#define SPLASH_GRAPH_NEIGHBOR_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace splash {

class NeighborMemory {
 public:
  /// `k` is the per-node ring capacity; `num_nodes_hint` pre-sizes the slab
  /// so the first edges do not pay growth cost.
  explicit NeighborMemory(size_t k, size_t num_nodes_hint = 0)
      : k_(k == 0 ? 1 : k) {
    EnsureNodeCapacity(num_nodes_hint);
  }

  size_t k() const { return k_; }
  size_t num_nodes() const { return counts_.size(); }

  /// Grows the slab to cover node ids in [0, n). Geometric growth keeps the
  /// amortized per-edge cost O(1) even when ids arrive unannounced.
  void EnsureNodeCapacity(size_t n) {
    if (n <= counts_.size()) return;
    const size_t target = GrowCapacity(counts_.size(), n);
    ids_.resize(target * k_, kInvalidNode);
    times_.resize(target * k_, 0.0);
    heads_.resize(target, 0);
    counts_.resize(target, 0);
  }

  /// Records the edge in both endpoints' rings: dst becomes the most recent
  /// neighbor of src and vice versa. `edge_index` is accepted for interface
  /// stability with event-indexed memories; the ring stores (id, time) only.
  void Observe(const TemporalEdge& e, size_t edge_index) {
    (void)edge_index;
    const size_t hi = static_cast<size_t>(e.src > e.dst ? e.src : e.dst) + 1;
    if (hi > counts_.size()) EnsureNodeCapacity(hi);
    Push(e.src, e.dst, e.time);
    Push(e.dst, e.src, e.time);
  }

  /// Number of valid entries in `node`'s ring (<= k).
  size_t CountOf(NodeId node) const {
    return node < counts_.size() ? counts_[node] : 0;
  }

  /// Copies `node`'s neighbors newest-first into ids[0..count) and
  /// times[0..count); returns count (<= k). Callers pass k-sized scratch.
  size_t GatherRecent(NodeId node, NodeId* ids, double* times) const {
    if (node >= counts_.size()) return 0;
    const size_t count = counts_[node];
    const size_t base = static_cast<size_t>(node) * k_;
    size_t slot = heads_[node];  // next write position == oldest entry
    for (size_t i = 0; i < count; ++i) {
      // Walk backwards from the newest entry (head - 1).
      slot = slot == 0 ? k_ - 1 : slot - 1;
      ids[i] = ids_[base + slot];
      times[i] = times_[base + slot];
    }
    return count;
  }

  /// Forgets everything but keeps the slab allocated.
  void Clear() {
    std::fill(heads_.begin(), heads_.end(), 0);
    std::fill(counts_.begin(), counts_.end(), 0);
  }

 private:
  void Push(NodeId node, NodeId neighbor, double time) {
    const size_t base = static_cast<size_t>(node) * k_;
    uint32_t& head = heads_[node];
    ids_[base + head] = neighbor;
    times_[base + head] = time;
    head = head + 1 == k_ ? 0 : head + 1;
    if (counts_[node] < k_) ++counts_[node];
  }

  size_t k_;
  std::vector<NodeId> ids_;     // num_nodes * k slab
  std::vector<double> times_;   // num_nodes * k slab
  std::vector<uint32_t> heads_;  // per-node ring head (next write slot)
  std::vector<uint32_t> counts_;  // per-node valid entries (<= k)
};

}  // namespace splash

#endif  // SPLASH_GRAPH_NEIGHBOR_MEMORY_H_
