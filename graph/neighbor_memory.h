// Copyright 2026 The SPLASH Reproduction Authors.
//
// Fixed-capacity k-recent neighbor memory, shard-partitioned by node id.
// Node v lives in shard `v & (S-1)` (S a power of two) at local index
// `v >> log2(S)`; each shard owns an independent contiguous ring slab of k
// (neighbor id, time) slots per local node plus its own growth lock, so
//   - Observe() is still two ring writes — no pointers chased, no heap
//     allocation on the steady-state path (the structure behind the
//     paper's O(1)-per-edge claim, Fig. 11; bench_micro_substrate gates
//     its flatness);
//   - growing one shard never moves another shard's slab, and concurrent
//     writers partitioned by shard (ObserveBulk) never touch the same
//     cache lines;
//   - ObserveBulk() ingests an edge range on the global ThreadPool with
//     one worker per shard group. Every shard scans the range and keeps
//     the endpoints it owns, so per-node ring contents are in stream
//     order regardless of thread count — bit-identical to serial replay.
//
// Thread contract: plain Observe/GatherRecent are safe from one thread at
// a time (the chronological replay protocol is inherently serial);
// concurrent mutation is safe only when writers are partitioned by shard,
// which ObserveBulk arranges. GatherRecent is safe concurrently with other
// reads (batch assembly fans out over queries).

#ifndef SPLASH_GRAPH_NEIGHBOR_MEMORY_H_
#define SPLASH_GRAPH_NEIGHBOR_MEMORY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/serialize.h"
#include "core/types.h"
#include "graph/edge_stream.h"
#include "runtime/thread_pool.h"

namespace splash {

class NeighborMemory {
 public:
  /// `k` is the per-node ring capacity; `num_nodes_hint` pre-sizes the
  /// shard slabs so the first edges do not pay growth cost. `num_shards`
  /// is rounded up to a power of two; 0 picks the default (8).
  explicit NeighborMemory(size_t k, size_t num_nodes_hint = 0,
                          size_t num_shards = 0)
      : k_(k == 0 ? 1 : k) {
    size_t s = 1;
    const size_t want = num_shards == 0 ? kDefaultShards : num_shards;
    while (s < want) s *= 2;
    shard_mask_ = s - 1;
    shard_shift_ = 0;
    for (size_t v = s; v > 1; v >>= 1) ++shard_shift_;
    shards_.resize(s);
    for (Shard& sh : shards_) {
      sh.grow_mutex = std::make_unique<std::mutex>();
    }
    EnsureNodeCapacity(num_nodes_hint);
  }

  size_t k() const { return k_; }
  size_t num_shards() const { return shards_.size(); }

  /// Upper bound on the node-id range currently covered without growth
  /// (max over shards; shards grow independently).
  size_t num_nodes() const {
    size_t hi = 0;
    for (const Shard& sh : shards_) {
      const size_t covered = sh.counts.size() << shard_shift_;
      if (covered > hi) hi = covered;
    }
    return hi;
  }

  /// Grows every shard to cover node ids in [0, n). Geometric growth keeps
  /// the amortized per-edge cost O(1) even when ids arrive unannounced.
  void EnsureNodeCapacity(size_t n) {
    if (n == 0) return;
    const size_t local = LocalCapacityFor(n);
    for (Shard& sh : shards_) EnsureShardCapacity(&sh, local);
  }

  /// Records the edge in both endpoints' rings: dst becomes the most recent
  /// neighbor of src and vice versa. `edge_index` is accepted for interface
  /// stability with event-indexed memories; the ring stores (id, time) only.
  void Observe(const TemporalEdge& e, size_t edge_index) {
    (void)edge_index;
    Push(e.src, e.dst, e.time);
    Push(e.dst, e.src, e.time);
  }

  /// Ingests edges [begin, end) of `stream` on the global ThreadPool, one
  /// worker per contiguous shard group (see file header): each worker
  /// scans the range once and keeps the endpoints whose shard falls in
  /// its group, so the total scan cost is one pass per worker, not per
  /// shard. Equivalent to calling Observe on each edge in order.
  void ObserveBulk(const EdgeStream& stream, size_t begin, size_t end) {
    if (end <= begin) return;
    ThreadPool* pool = ThreadPool::Global();
    const size_t num_s = shards_.size();
    const size_t num_t = pool->num_threads();
    // Below ~2k edges the per-worker rescan beats its parallel payoff.
    if (num_t == 1 || num_s == 1 || end - begin < 2048) {
      for (size_t i = begin; i < end; ++i) Observe(stream[i], i);
      return;
    }
    const NodeId* src = stream.src_data();
    const NodeId* dst = stream.dst_data();
    const double* time = stream.time_data();
    const size_t group = (num_s + num_t - 1) / num_t;  // shards per chunk
    pool->ParallelFor(0, num_s, group, [&](size_t s0, size_t s1, size_t) {
      for (size_t i = begin; i < end; ++i) {
        const size_t ss = src[i] & shard_mask_;
        if (ss >= s0 && ss < s1) Push(src[i], dst[i], time[i]);
        const size_t ds = dst[i] & shard_mask_;
        if (ds >= s0 && ds < s1) Push(dst[i], src[i], time[i]);
      }
    });
  }

  /// Number of valid entries in `node`'s ring (<= k).
  size_t CountOf(NodeId node) const {
    const Shard& sh = shards_[node & shard_mask_];
    const size_t local = static_cast<size_t>(node) >> shard_shift_;
    return local < sh.counts.size() ? sh.counts[local] : 0;
  }

  /// Copies `node`'s neighbors newest-first into ids[0..count) and
  /// times[0..count); returns count (<= k). Callers pass k-sized scratch.
  size_t GatherRecent(NodeId node, NodeId* ids, double* times) const {
    const Shard& sh = shards_[node & shard_mask_];
    const size_t local = static_cast<size_t>(node) >> shard_shift_;
    if (local >= sh.counts.size()) return 0;
    const size_t count = sh.counts[local];
    const size_t base = local * k_;
    size_t slot = sh.heads[local];  // next write position == oldest entry
    for (size_t i = 0; i < count; ++i) {
      // Walk backwards from the newest entry (head - 1).
      slot = slot == 0 ? k_ - 1 : slot - 1;
      ids[i] = sh.ids[base + slot];
      times[i] = sh.times[base + slot];
    }
    return count;
  }

  /// Forgets everything but keeps the slabs allocated.
  void Clear() {
    for (Shard& sh : shards_) {
      std::fill(sh.heads.begin(), sh.heads.end(), 0u);
      std::fill(sh.counts.begin(), sh.counts.end(), 0u);
    }
  }

  /// Checkpoint hooks: the full ring slabs (ids + times), per-node cursors
  /// (heads) and fill counts of every shard, exactly as laid out in
  /// memory. Deserialize requires the same k and shard geometry the memory
  /// was constructed with — ring layout is derived from both, so a
  /// mismatch means the checkpoint belongs to a different configuration.
  void Serialize(ByteWriter* w) const {
    w->U64(k_);
    w->U64(shards_.size());
    for (const Shard& sh : shards_) {
      w->U32Vec(sh.ids);
      w->F64Vec(sh.times);
      w->U32Vec(sh.heads);
      w->U32Vec(sh.counts);
    }
  }

  bool Deserialize(ByteReader* r) {
    if (r->U64() != k_ || r->U64() != shards_.size()) return false;
    for (Shard& sh : shards_) {
      if (!r->U32Vec(&sh.ids) || !r->F64Vec(&sh.times) ||
          !r->U32Vec(&sh.heads) || !r->U32Vec(&sh.counts)) {
        return false;
      }
      if (sh.ids.size() != sh.counts.size() * k_ ||
          sh.times.size() != sh.ids.size() ||
          sh.heads.size() != sh.counts.size()) {
        return false;
      }
    }
    return r->ok();
  }

 private:
  static constexpr size_t kDefaultShards = 8;

  /// One shard: the ring slabs of every node it owns plus the lock that
  /// serializes this shard's (rare) growth against external capacity calls.
  struct Shard {
    std::vector<NodeId> ids;       // local_nodes * k slab
    std::vector<double> times;     // local_nodes * k slab
    std::vector<uint32_t> heads;   // per-node ring head (next write slot)
    std::vector<uint32_t> counts;  // per-node valid entries (<= k)
    std::unique_ptr<std::mutex> grow_mutex;
  };

  /// Local slots a shard needs so that global ids in [0, n) are covered.
  size_t LocalCapacityFor(size_t n) const {
    return (n + shards_.size() - 1) >> shard_shift_;
  }

  void EnsureShardCapacity(Shard* sh, size_t local_n) {
    if (local_n <= sh->counts.size()) return;
    std::lock_guard<std::mutex> lk(*sh->grow_mutex);
    if (local_n <= sh->counts.size()) return;  // raced with another grower
    const size_t target = GrowCapacity(sh->counts.size(), local_n);
    sh->ids.resize(target * k_, kInvalidNode);
    sh->times.resize(target * k_, 0.0);
    sh->heads.resize(target, 0);
    sh->counts.resize(target, 0);
  }

  void Push(NodeId node, NodeId neighbor, double time) {
    Shard& sh = shards_[node & shard_mask_];
    const size_t local = static_cast<size_t>(node) >> shard_shift_;
    if (local >= sh.counts.size()) EnsureShardCapacity(&sh, local + 1);
    const size_t base = local * k_;
    uint32_t& head = sh.heads[local];
    sh.ids[base + head] = neighbor;
    sh.times[base + head] = time;
    head = head + 1 == k_ ? 0 : head + 1;
    if (sh.counts[local] < k_) ++sh.counts[local];
  }

  size_t k_;
  size_t shard_mask_ = 0;
  size_t shard_shift_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace splash

#endif  // SPLASH_GRAPH_NEIGHBOR_MEMORY_H_
