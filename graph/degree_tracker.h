// Copyright 2026 The SPLASH Reproduction Authors.
//
// O(1)-per-edge temporal degree tracking: a flat counter array indexed by
// node id. Feeds the structural augmentation process (degree encoding,
// paper Sec. IV-B3). Header-only; the hot path is two increments.

#ifndef SPLASH_GRAPH_DEGREE_TRACKER_H_
#define SPLASH_GRAPH_DEGREE_TRACKER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/serialize.h"
#include "core/types.h"

namespace splash {

class DegreeTracker {
 public:
  explicit DegreeTracker(size_t num_nodes_hint = 0) {
    EnsureNodeCapacity(num_nodes_hint);
  }

  void EnsureNodeCapacity(size_t n) {
    if (n <= degree_.size()) return;
    degree_.resize(GrowCapacity(degree_.size(), n), 0);
  }

  void Observe(const TemporalEdge& e) {
    const size_t hi = static_cast<size_t>(e.src > e.dst ? e.src : e.dst) + 1;
    if (hi > degree_.size()) EnsureNodeCapacity(hi);
    ++degree_[e.src];
    ++degree_[e.dst];
    ++num_edges_;
  }

  /// Single-counter bump for shard-partitioned bulk ingest: callers
  /// guarantee capacity up front (EnsureNodeCapacity) and that every node's
  /// counter is written by exactly one worker, then account the edge count
  /// once with AddEdges. No growth, no edge counting here.
  void IncrementDegree(NodeId node) { ++degree_[node]; }

  /// Adds `n` edges' worth to the edge counter (the bulk-ingest companion
  /// of IncrementDegree).
  void AddEdges(size_t n) { num_edges_ += n; }

  uint32_t Degree(NodeId node) const {
    return node < degree_.size() ? degree_[node] : 0;
  }

  size_t num_edges() const { return num_edges_; }

  void Clear() {
    std::fill(degree_.begin(), degree_.end(), 0u);
    num_edges_ = 0;
  }

  /// Checkpoint hooks: full counter state, including the array capacity
  /// (growth is geometric, so restoring the exact size keeps subsequent
  /// growth decisions — and thus allocation behavior — on the same path).
  void Serialize(ByteWriter* w) const {
    w->U64(num_edges_);
    w->U32Vec(degree_);
  }

  bool Deserialize(ByteReader* r) {
    num_edges_ = static_cast<size_t>(r->U64());
    return r->U32Vec(&degree_) && r->ok();
  }

 private:
  std::vector<uint32_t> degree_;
  size_t num_edges_ = 0;
};

}  // namespace splash

#endif  // SPLASH_GRAPH_DEGREE_TRACKER_H_
