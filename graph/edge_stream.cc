// Copyright 2026 The SPLASH Reproduction Authors.

#include "graph/edge_stream.h"

#include <algorithm>
#include <cmath>

namespace splash {

Status EdgeStream::Append(const TemporalEdge& e) {
  if (e.src == kInvalidNode || e.dst == kInvalidNode) {
    return Status::Error("EdgeStream::Append: invalid endpoint");
  }
  if (!std::isfinite(e.time)) {
    return Status::Error("EdgeStream::Append: non-finite timestamp");
  }
  if (!time_.empty() && e.time < time_.back()) {
    return Status::Error("EdgeStream::Append: timestamps must be "
                         "non-decreasing (stream order)");
  }
  src_.push_back(e.src);
  dst_.push_back(e.dst);
  time_.push_back(e.time);
  const size_t hi = static_cast<size_t>(std::max(e.src, e.dst)) + 1;
  if (hi > num_nodes_) num_nodes_ = hi;
  return Status::Ok();
}

void EdgeStream::Reserve(size_t n) {
  src_.reserve(n);
  dst_.reserve(n);
  time_.reserve(n);
}

double EdgeStream::TimeQuantile(double frac) const {
  if (time_.empty()) return 0.0;
  frac = std::min(1.0, std::max(0.0, frac));
  const size_t idx = static_cast<size_t>(
      frac * static_cast<double>(time_.size() - 1));
  return time_[idx];
}

}  // namespace splash
