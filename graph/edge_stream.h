// Copyright 2026 The SPLASH Reproduction Authors.
//
// Structure-of-arrays edge stream: three parallel arrays (src, dst, time)
// instead of an array of structs. Sequential replay — the single hottest
// loop in the system — then touches 16 bytes per edge instead of 24 (padded)
// and each array prefetches independently. Appending is amortized O(1).

#ifndef SPLASH_GRAPH_EDGE_STREAM_H_
#define SPLASH_GRAPH_EDGE_STREAM_H_

#include <cstddef>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace splash {

class EdgeStream {
 public:
  EdgeStream() = default;

  /// Appends one edge. Edges must arrive in non-decreasing time order
  /// (it is a *stream*); violations are rejected so downstream quantile /
  /// split math can assume sorted times. Amortized O(1): the three arrays
  /// grow geometrically and in lockstep.
  Status Append(const TemporalEdge& e);

  /// Pre-grows the arrays to hold `n` edges without reallocation.
  void Reserve(size_t n);

  /// Declares that node ids in [0, n) may appear. Tracks the node-space
  /// size; consumers (neighbor memory, feature tables) size off num_nodes().
  void EnsureNodeCapacity(size_t n) {
    if (n > num_nodes_) num_nodes_ = n;
  }

  size_t size() const { return time_.size(); }
  bool empty() const { return time_.empty(); }

  /// Number of distinct node ids the stream may address (max id + 1).
  size_t num_nodes() const { return num_nodes_; }

  /// Gathered view of edge i. The SoA arrays are the source of truth; this
  /// materializes a TemporalEdge in registers.
  TemporalEdge operator[](size_t i) const {
    return TemporalEdge(src_[i], dst_[i], time_[i]);
  }

  // Raw column access for kernels that want to stream one attribute.
  const NodeId* src_data() const { return src_.data(); }
  const NodeId* dst_data() const { return dst_.data(); }
  const double* time_data() const { return time_.data(); }

  double min_time() const { return time_.empty() ? 0.0 : time_.front(); }
  double max_time() const { return time_.empty() ? 0.0 : time_.back(); }

  /// Time below which `frac` of the edges fall. frac is clamped to [0, 1].
  /// O(1) because the stream is chronological.
  double TimeQuantile(double frac) const;

 private:
  std::vector<NodeId> src_;
  std::vector<NodeId> dst_;
  std::vector<double> time_;
  size_t num_nodes_ = 0;
};

}  // namespace splash

#endif  // SPLASH_GRAPH_EDGE_STREAM_H_
