// Copyright 2026 The SPLASH Reproduction Authors.

#include "runtime/pipeline.h"

namespace splash {

PipelineThread::PipelineThread() : worker_([this] { Loop(); }) {}

PipelineThread::~PipelineThread() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  worker_.join();
}

void PipelineThread::Submit(Fn fn, void* ctx) {
  {
    std::unique_lock<std::mutex> lk(mutex_);
    // Contract: the slot is idle (one job in flight). If a caller races
    // ahead anyway, serialize instead of dropping the job.
    done_.wait(lk, [this] { return !busy_ && fn_ == nullptr; });
    fn_ = fn;
    ctx_ = ctx;
  }
  wake_.notify_one();
}

void PipelineThread::Wait() {
  std::unique_lock<std::mutex> lk(mutex_);
  done_.wait(lk, [this] { return !busy_ && fn_ == nullptr; });
}

void PipelineThread::Loop() {
  for (;;) {
    Fn fn;
    void* ctx;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      wake_.wait(lk, [this] { return shutdown_ || fn_ != nullptr; });
      // Drain a queued job even when shutting down: dropping it would strand
      // its side effects and hang any thread blocked in Wait().
      if (fn_ == nullptr) return;  // only reachable via shutdown
      fn = fn_;
      ctx = ctx_;
      fn_ = nullptr;
      ctx_ = nullptr;
      busy_ = true;
    }
    fn(ctx);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      busy_ = false;
    }
    done_.notify_all();
  }
}

}  // namespace splash
