// Copyright 2026 The SPLASH Reproduction Authors.

#include "runtime/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace splash {

namespace {

// Worker index of the current thread while it executes pool chunks; -1 on
// external threads. Nested ParallelFor calls consult this to run inline.
thread_local int tls_worker_index = -1;

size_t DefaultThreads() {
  if (const char* env = std::getenv("SPLASH_THREADS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

std::atomic<ThreadPool*> g_pool{nullptr};
std::mutex g_pool_mutex;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (size_t w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Launch(size_t begin, size_t end, size_t grain, Thunk thunk,
                        void* ctx) {
  const size_t g = grain == 0 ? 1 : grain;
  const size_t num_chunks = NumChunks(begin, end, g);
  if (num_chunks == 0) return;

  // Inline paths: single-thread pools, single-chunk jobs, and nested calls
  // (a worker fanning out again would deadlock-or-oversubscribe; running
  // inline keeps chunk->Rng-stream mapping intact because chunk indices are
  // unchanged).
  if (num_threads_ == 1 || num_chunks == 1 || tls_worker_index >= 0) {
    const size_t w =
        tls_worker_index >= 0 ? static_cast<size_t>(tls_worker_index) : 0;
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t c0 = begin + c * g;
      const size_t c1 = std::min(c0 + g, end);
      thunk(ctx, c0, c1, w);
    }
    return;
  }

  // One job at a time across external submitters; held until the job's
  // chunks all finished so two clients' chunk sets never interleave.
  std::lock_guard<std::mutex> client(client_mutex_);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    job_thunk_ = thunk;
    job_ctx_ = ctx;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = g;
    job_num_chunks_ = num_chunks;
    pending_workers_.store(num_threads_, std::memory_order_relaxed);
    ++job_epoch_;
  }
  wake_.notify_all();
  RunChunksAs(0);

  std::unique_lock<std::mutex> lk(mutex_);
  done_.wait(lk, [this] {
    return pending_workers_.load(std::memory_order_acquire) == 0;
  });
  job_thunk_ = nullptr;
  job_ctx_ = nullptr;
}

void ThreadPool::RunChunksAs(size_t worker_index) {
  tls_worker_index = static_cast<int>(worker_index);
  // Static round-robin: worker w owns chunks w, w+T, w+2T, ... and runs
  // them in index order — no stealing, so per-worker partial reductions
  // accumulate in a fixed order.
  for (size_t c = worker_index; c < job_num_chunks_; c += num_threads_) {
    const size_t c0 = job_begin_ + c * job_grain_;
    const size_t c1 = c0 + job_grain_;
    job_thunk_(job_ctx_, c0, c1 < job_end_ ? c1 : job_end_, worker_index);
  }
  tls_worker_index = -1;
  if (pending_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(mutex_);
    done_.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mutex_);
      wake_.wait(lk, [this, seen_epoch] {
        return shutdown_ || job_epoch_ != seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
    }
    RunChunksAs(worker_index);
  }
}

ThreadPool* ThreadPool::Global() {
  ThreadPool* p = g_pool.load(std::memory_order_acquire);
  if (p) return p;
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  p = g_pool.load(std::memory_order_relaxed);
  if (!p) {
    p = new ThreadPool(DefaultThreads());
    g_pool.store(p, std::memory_order_release);
  }
  return p;
}

void ThreadPool::SetGlobalThreads(size_t n) {
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  ThreadPool* old = g_pool.exchange(nullptr, std::memory_order_acq_rel);
  delete old;  // joins the old helpers; no job may be in flight (contract)
  g_pool.store(new ThreadPool(n == 0 ? DefaultThreads() : n),
               std::memory_order_release);
}

}  // namespace splash
