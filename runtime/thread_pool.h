// Copyright 2026 The SPLASH Reproduction Authors.
//
// The parallel runtime substrate every layer above builds on: a fixed-size,
// work-stealing-free thread pool with one blocking ParallelFor primitive.
// Design rules (see DESIGN.md §1/§4):
//   - chunks are assigned to workers STATICALLY (worker w runs chunks
//     w, w+T, w+2T, ... in index order), so for a fixed thread count every
//     reduction that folds per-worker partials in worker order is
//     deterministic — no stealing, no completion-order dependence;
//   - chunk boundaries depend only on (range, grain), never on the thread
//     count, so per-chunk seeded Rng streams (WorkerRngSeed) produce the
//     same draws at 2, 4, or 64 threads;
//   - ParallelFor performs zero heap allocations: the body is passed as a
//     context pointer + function pointer, and the steady-state path is a
//     condition-variable wake of already-running workers. The counting-
//     allocator test gates this;
//   - a ParallelFor issued from inside a worker runs inline on that worker
//     (no nested fan-out, no oversubscription);
//   - num_threads == 1 short-circuits to a plain inline loop, which is how
//     SPLASH_THREADS=1 reproduces the serial numbers bit-for-bit.

#ifndef SPLASH_RUNTIME_THREAD_POOL_H_
#define SPLASH_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "tensor/rng.h"

namespace splash {

class ThreadPool {
 public:
  /// `num_threads` counts the calling thread: a pool of size 4 spawns 3
  /// helper threads and the caller works too. 0 is clamped to 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs fn(chunk_begin, chunk_end, worker_index) over [begin, end) split
  /// into chunks of `grain` indices (the last chunk may be short). Blocks
  /// until every chunk finished. worker_index < num_threads() identifies
  /// the executing worker — use it to index per-worker scratch. Safe to
  /// call recursively (inner calls run inline on the calling worker) and
  /// from multiple external threads: external submissions serialize on a
  /// client mutex, so the pipelined executor's ingest thread and the main
  /// compute thread can both fan out (their jobs time-share the pool; each
  /// job still runs with the full deterministic chunk assignment).
  template <typename Fn>
  void ParallelFor(size_t begin, size_t end, size_t grain, Fn&& fn) {
    Launch(begin, end, grain, &InvokeThunk<Fn>, &fn);
  }

  /// Chunk count ParallelFor will use for this range — what a caller sizing
  /// per-chunk scratch (losses, seeds) needs.
  static size_t NumChunks(size_t begin, size_t end, size_t grain) {
    if (end <= begin) return 0;
    const size_t g = grain == 0 ? 1 : grain;
    return (end - begin + g - 1) / g;
  }

  /// Process-wide pool, sized by SPLASH_THREADS (default: the hardware
  /// concurrency; 1 on failure). Created on first use.
  static ThreadPool* Global();

  /// Thread count of Global() without forcing its creation side effects
  /// beyond creation itself.
  static size_t GlobalThreads() { return Global()->num_threads(); }

  /// Replaces the global pool (tests, thread-sweep benches, the trainer
  /// knob). Must not be called while a ParallelFor on the old pool is in
  /// flight. n == 0 re-reads SPLASH_THREADS / hardware_concurrency.
  static void SetGlobalThreads(size_t n);

 private:
  using Thunk = void (*)(void* ctx, size_t chunk_begin, size_t chunk_end,
                         size_t worker_index);

  template <typename Fn>
  static void InvokeThunk(void* ctx, size_t chunk_begin, size_t chunk_end,
                          size_t worker_index) {
    (*static_cast<Fn*>(ctx))(chunk_begin, chunk_end, worker_index);
  }

  void Launch(size_t begin, size_t end, size_t grain, Thunk thunk, void* ctx);
  void RunChunksAs(size_t worker_index);
  void WorkerLoop(size_t worker_index);

  const size_t num_threads_;
  std::vector<std::thread> workers_;  // num_threads_ - 1 helpers

  // Serializes whole jobs submitted by distinct external threads; nested
  // (inline) calls never take it, so there is no self-deadlock.
  std::mutex client_mutex_;

  // Current job, published under mutex_ before waking the helpers.
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  uint64_t job_epoch_ = 0;  // bumped per ParallelFor; helpers wait on it
  bool shutdown_ = false;
  Thunk job_thunk_ = nullptr;
  void* job_ctx_ = nullptr;
  size_t job_begin_ = 0;
  size_t job_end_ = 0;
  size_t job_grain_ = 1;
  size_t job_num_chunks_ = 0;
  std::atomic<size_t> pending_workers_{0};
};

/// Deterministic seed for the Rng stream of `chunk_index` within the
/// logical operation `op_tag` (e.g. a train-step counter). Independent of
/// the thread count and of which worker runs the chunk.
inline uint64_t WorkerRngSeed(uint64_t base_seed, uint64_t op_tag,
                              uint64_t chunk_index) {
  return SplitMix64(base_seed ^ SplitMix64(op_tag * 0x9e3779b97f4a7c15ULL +
                                           chunk_index));
}

}  // namespace splash

#endif  // SPLASH_RUNTIME_THREAD_POOL_H_
