// Copyright 2026 The SPLASH Reproduction Authors.
//
// PipelineThread: the one-slot background stage of the pipelined streaming
// executor (eval/stream_executor.h). It owns a single persistent thread and
// at most ONE job in flight — exactly what double-buffering needs: while
// the caller computes on batch k, the pipeline thread ingests the edges of
// batch k+1; Wait() is the hand-off barrier before the caller touches the
// streaming state again.
//
// Design rules (matching runtime/thread_pool.h):
//   - Submit() takes a function pointer + context pointer, never a
//     std::function, so the steady-state submit path performs zero heap
//     allocations (allocation_steady_state_test gates this);
//   - Submit() requires the slot to be idle (call Wait() first); one slot
//     is a feature, not a limitation — depth > 1 would let ingest run past
//     state the compute stage still reads;
//   - a job may itself issue ThreadPool::ParallelFor: external submissions
//     to the pool serialize on its client mutex, so the ingest stage and
//     the compute stage can both fan out without racing the pool.

#ifndef SPLASH_RUNTIME_PIPELINE_H_
#define SPLASH_RUNTIME_PIPELINE_H_

#include <condition_variable>
#include <mutex>
#include <thread>

namespace splash {

class PipelineThread {
 public:
  using Fn = void (*)(void* ctx);

  PipelineThread();
  ~PipelineThread();

  PipelineThread(const PipelineThread&) = delete;
  PipelineThread& operator=(const PipelineThread&) = delete;

  /// Hands `fn(ctx)` to the background thread. The slot must be idle
  /// (construction, or after a Wait()); `ctx` must stay alive until the
  /// matching Wait() returns.
  void Submit(Fn fn, void* ctx);

  /// Blocks until the in-flight job (if any) finished. Returns immediately
  /// when idle. This is the pipeline barrier: after Wait() the caller owns
  /// all state the job touched.
  void Wait();

 private:
  void Loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Fn fn_ = nullptr;   // non-null while a job is queued or running
  void* ctx_ = nullptr;
  bool busy_ = false;
  bool shutdown_ = false;
  std::thread worker_;
};

}  // namespace splash

#endif  // SPLASH_RUNTIME_PIPELINE_H_
