// Copyright 2026 The SPLASH Reproduction Authors.
//
// serve_crash_child: the process scripts/crash_harness.sh kills.
//
// Two modes over one deterministic corpus (the synthetic dataset below,
// fixed seeds — both modes regenerate it, so no files are exchanged
// besides the data_dir):
//
//   --mode=run     RecoverOrStart on --data-dir, then resume feeding the
//                  live corpus from the recovered watermark (the ingest
//                  log is a corpus prefix: kBlock loses nothing, so the
//                  recovered edge count IS the resume index). Exits 0
//                  when the corpus is exhausted; the harness kill -9s it
//                  anywhere before that. --pace-us throttles ingest so a
//                  wall-clock kill lands mid-stream, not after the end.
//
//   --mode=verify  The bit-exact recovery oracle, standalone: replay the
//                  full WAL history (gc is off in run mode) through a
//                  fresh predictor, RecoverOrStart, and require the
//                  recovered predictor blob, ingest log, and a probe
//                  query to match byte-for-byte. Exits 0 on match, 1 on
//                  any divergence (printed to stderr).
//
// Crash points can additionally be armed via SPLASH_CRASH_POINT
// (ArmCrashPointsFromEnv) — the harness's kill -9 needs none of that, but
// it lets the same binary reproduce a specific torn-write deterministically.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/serialize.h"
#include "core/splash.h"
#include "datasets/synthetic.h"
#include "eval/trainer.h"
#include "runtime/thread_pool.h"
#include "serve/fault_injection.h"
#include "serve/service.h"
#include "serve/wal.h"

namespace splash {
namespace {

Dataset MakeCorpus(uint64_t seed) {
  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 120;
  cfg.num_edges = 2400;
  cfg.num_communities = 3;
  cfg.intra_prob = 0.9;
  cfg.query_rate = 0.25;
  cfg.late_arrival_frac = 0.2;
  cfg.seed = seed;
  return GenerateSynthetic(cfg);
}

SplashOptions CrashModelOptions() {
  SplashOptions opts;
  opts.mode = SplashMode::kForceStructural;
  opts.augment.feature_dim = 12;
  opts.slim.hidden_dim = 24;
  opts.slim.time_dim = 8;
  opts.slim.k_recent = 5;
  opts.slim.dropout = 0.0f;
  opts.seed = 7;
  return opts;
}

TrainerOptions CrashFit() {
  TrainerOptions fit;
  fit.epochs = 2;
  fit.batch_size = 64;
  fit.early_stopping = false;
  fit.num_threads = 1;
  fit.pipeline_depth = 0;
  return fit;
}

SplashServiceOptions CrashServiceOptions(const std::string& data_dir) {
  SplashServiceOptions opts;
  opts.microbatch_max_items = 24;
  opts.microbatch_max_delay_s = 0.0;
  opts.queue_capacity = 256;
  opts.backpressure = BackpressurePolicy::kBlock;
  opts.data_dir = data_dir;
  opts.wal_fsync = WalFsyncPolicy::kBatch;  // kill -9: page cache survives
  opts.wal_group_records = 8;
  opts.checkpoint_interval_batches = 16;
  opts.checkpoint_on_stop = true;
  opts.gc_wal_on_checkpoint = false;  // verify replays the full history
  return opts;
}

std::vector<TemporalEdge> LiveEdges(const Dataset& ds,
                                    const ChronoSplit& split) {
  std::vector<TemporalEdge> live;
  for (size_t i = 0; i < ds.stream.size(); ++i) {
    if (ds.stream[i].time > split.val_end_time) live.push_back(ds.stream[i]);
  }
  return live;
}

/// Same contiguity rule recovery applies, run from batch 0.
std::vector<WalRecord> CollectFullHistory(const std::string& dir) {
  std::vector<WalRecord> out;
  uint64_t next_batch = 0;
  uint64_t next_seq = 0;
  for (const WalSegmentInfo& seg : ListWalSegments(dir)) {
    WalScan scan;
    if (!ScanWalFile(seg.path, &scan).ok() || !scan.header_ok) continue;
    for (WalRecord& rec : scan.records) {
      if (rec.batch_index < next_batch) continue;
      if (rec.batch_index != next_batch || rec.seq_begin != next_seq) {
        return out;
      }
      next_seq = rec.seq_end;
      ++next_batch;
      out.push_back(std::move(rec));
    }
  }
  return out;
}

int RunMode(const std::string& data_dir, uint64_t seed, size_t max_edges,
            int pace_us) {
  const Dataset ds = MakeCorpus(seed);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);

  SplashService svc(CrashModelOptions(), CrashServiceOptions(data_dir));
  TrainerOptions fit = CrashFit();
  const Status st = svc.RecoverOrStart(ds, split, &fit);
  if (!st.ok()) {
    std::fprintf(stderr, "RecoverOrStart: %s\n", st.message().c_str());
    return 2;
  }
  const size_t start = static_cast<size_t>(svc.recovered_seq());
  const size_t end =
      max_edges == 0 ? live.size() : std::min(live.size(), start + max_edges);
  std::fprintf(stderr, "run: recovered_seq=%zu feeding [%zu, %zu)\n", start,
               start, end);
  for (size_t i = start; i < end; ++i) {
    svc.IngestEdge(live[i]);
    if (i % 7 == 3) {
      PropertyQuery q;
      q.node = live[i].dst;
      q.time = live[i].time;
      q.class_label = static_cast<int>(i % 3);
      svc.SubmitTrain(q);
    }
    if (pace_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(pace_us));
    }
  }
  svc.Stop();
  std::fprintf(stderr, "run: corpus exhausted at %zu, clean stop\n", end);
  return 0;
}

int VerifyMode(const std::string& data_dir, uint64_t seed) {
  const Dataset ds = MakeCorpus(seed);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);

  // Reference first: RecoverOrStart checkpoints and rotates the WAL.
  const std::vector<WalRecord> history = CollectFullHistory(data_dir);
  auto ref = std::make_unique<SplashPredictor>(CrashModelOptions());
  if (!ref->Prepare(ds, split).ok()) {
    std::fprintf(stderr, "verify: reference Prepare failed\n");
    return 1;
  }
  {
    TrainerOptions fit = CrashFit();
    StreamTrainer trainer(fit);
    trainer.Fit(ref.get(), ds, split);
    ref->SetTraining(false);
    ref->ResetState();
  }
  EdgeStream ref_log;
  ref_log.EnsureNodeCapacity(ds.stream.num_nodes());
  for (const WalRecord& rec : history) {
    const size_t begin = ref_log.size();
    for (const TemporalEdge& e : rec.edges) {
      if (!ref_log.Append(e).ok()) {
        std::fprintf(stderr, "verify: bad WAL edge\n");
        return 1;
      }
    }
    ref->ObserveBulk(ref_log, begin, ref_log.size());
    if (!rec.train.empty()) {
      ref->SetTraining(true);
      ref->StageBatch(rec.train);
      ref->TrainStaged();
      ref->SetTraining(false);
    }
  }

  SplashService svc(CrashModelOptions(), CrashServiceOptions(data_dir));
  TrainerOptions fit = CrashFit();
  const Status st = svc.RecoverOrStart(ds, split, &fit);
  if (!st.ok()) {
    std::fprintf(stderr, "verify: RecoverOrStart: %s\n", st.message().c_str());
    return 1;
  }
  int failures = 0;
  if (svc.degraded()) {
    std::fprintf(stderr, "verify: service recovered degraded\n");
    ++failures;
  }
  if (svc.recovered_seq() != ref_log.size()) {
    std::fprintf(stderr,
                 "verify: recovered_seq %" PRIu64 " != WAL history %zu\n",
                 svc.recovered_seq(), ref_log.size());
    ++failures;
  }
  const EdgeStream& log = svc.ingest_log();
  if (log.size() != ref_log.size()) {
    std::fprintf(stderr, "verify: log size %zu != %zu\n", log.size(),
                 ref_log.size());
    ++failures;
  } else {
    for (size_t i = 0; i < log.size(); ++i) {
      if (log[i].src != ref_log[i].src || log[i].dst != ref_log[i].dst ||
          log[i].time != ref_log[i].time) {
        std::fprintf(stderr, "verify: log diverges at edge %zu\n", i);
        ++failures;
        break;
      }
    }
  }
  {
    ByteWriter got;
    svc.SerializePredictorState(&got);
    ByteWriter want;
    ref->SerializeState(&want);
    if (got.size() != want.size() ||
        std::memcmp(got.buffer().data(), want.buffer().data(), got.size()) !=
            0) {
      std::fprintf(stderr,
                   "verify: predictor state bytes diverge (%zu vs %zu)\n",
                   got.size(), want.size());
      ++failures;
    }
  }
  {
    ServeClient client(&svc);
    const std::vector<PropertyQuery> probe(ds.queries.end() - 32,
                                           ds.queries.end());
    const ServeResponse resp = client.Predict(probe);
    SplashQueryScratch scratch;
    const Matrix& want = ref->PredictBatchConst(probe, &scratch);
    bool same = resp.scores.rows() == want.rows() &&
                resp.scores.cols() == want.cols();
    for (size_t i = 0; same && i < want.size(); ++i) {
      same = resp.scores.data()[i] == want.data()[i];
    }
    if (!same) {
      std::fprintf(stderr, "verify: probe predictions diverge\n");
      ++failures;
    }
  }
  svc.Stop();
  if (failures == 0) {
    std::fprintf(stderr,
                 "verify: OK — %zu WAL batches, %zu edges, bit-exact\n",
                 history.size(), ref_log.size());
  }
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::string data_dir;
  std::string mode = "run";
  uint64_t seed = 33;
  size_t max_edges = 0;
  int pace_us = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return arg.compare(0, n, flag) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--data-dir=")) {
      data_dir = v;
    } else if (const char* v = value("--mode=")) {
      mode = v;
    } else if (const char* v = value("--seed=")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--edges=")) {
      max_edges = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--pace-us=")) {
      pace_us = std::atoi(v);
    } else {
      std::fprintf(stderr,
                   "usage: %s --data-dir=DIR [--mode=run|verify] [--seed=N] "
                   "[--edges=N] [--pace-us=N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (data_dir.empty()) {
    std::fprintf(stderr, "--data-dir is required\n");
    return 2;
  }
  ThreadPool::SetGlobalThreads(1);  // deterministic regardless of host cores
  ArmCrashPointsFromEnv();
  if (mode == "run") return RunMode(data_dir, seed, max_edges, pace_us);
  if (mode == "verify") return VerifyMode(data_dir, seed);
  std::fprintf(stderr, "unknown --mode=%s\n", mode.c_str());
  return 2;
}

}  // namespace
}  // namespace splash

int main(int argc, char** argv) { return splash::Main(argc, argv); }
