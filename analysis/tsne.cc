// Copyright 2026 The SPLASH Reproduction Authors.

#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace splash {

namespace {

/// Binary-searches the Gaussian bandwidth of row `i` so the conditional
/// distribution hits the target perplexity, writing p_{j|i} into `row`.
void FitConditional(const std::vector<double>& sqdist, size_t n, size_t i,
                    double perplexity, double* row) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_lo = 0.0, beta_hi = 1e300;
  for (int iter = 0; iter < 50; ++iter) {
    double sum = 0.0, weighted = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        row[j] = 0.0;
        continue;
      }
      const double p = std::exp(-beta * sqdist[j]);
      row[j] = p;
      sum += p;
      weighted += beta * sqdist[j] * p;
    }
    if (sum <= 0.0) {
      beta = 0.5 * (beta_lo + (beta_hi >= 1e300 ? beta * 2.0 : beta_hi));
      continue;
    }
    const double entropy = std::log(sum) + weighted / sum;
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0.0) {  // too flat -> sharpen
      beta_lo = beta;
      beta = beta_hi >= 1e300 ? beta * 2.0 : 0.5 * (beta + beta_hi);
    } else {
      beta_hi = beta;
      beta = 0.5 * (beta + beta_lo);
    }
  }
  double sum = 0.0;
  for (size_t j = 0; j < n; ++j) sum += row[j];
  if (sum > 0.0) {
    const double inv = 1.0 / sum;
    for (size_t j = 0; j < n; ++j) row[j] *= inv;
  }
}

/// Top-2 PCA projection of the rows of `x` into *y (n x 2), computed by
/// power iteration with deflation in double precision. The embedding is
/// scaled so the first component has stddev 1e-4 — the same tiny
/// magnitude as the random fallback, and load-bearing: the auto learning
/// rate in RunTsne assumes this init scale (a larger init reintroduces
/// the first-iteration overshoot the Jacobi rewrite fixed). Returns false
/// when the data is degenerate (the caller falls back to random init).
bool PcaInit(const Matrix& x, Matrix* y, Rng* rng) {
  const size_t n = x.rows(), d = x.cols();
  if (n < 2 || d == 0) return false;

  std::vector<double> mean(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const float* row = x.Row(i);
    for (size_t t = 0; t < d; ++t) mean[t] += row[t];
  }
  for (double& m : mean) m /= static_cast<double>(n);

  std::vector<double> cov(d * d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const float* row = x.Row(i);
    for (size_t a = 0; a < d; ++a) {
      const double xa = row[a] - mean[a];
      for (size_t b = a; b < d; ++b) {
        cov[a * d + b] += xa * (row[b] - mean[b]);
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < a; ++b) cov[a * d + b] = cov[b * d + a];
  }

  std::vector<double> comp(2 * d, 0.0);
  std::vector<double> next(d, 0.0);
  for (int c = 0; c < 2; ++c) {
    double* v = comp.data() + c * d;
    for (size_t t = 0; t < d; ++t) {
      float g;
      rng->FillGaussian(&g, 1, 1.0f);
      v[t] = g;
    }
    for (int iter = 0; iter < 100; ++iter) {
      // Deflate: remove the projection onto the previous component.
      if (c == 1) {
        const double* v0 = comp.data();
        double dot = 0.0;
        for (size_t t = 0; t < d; ++t) dot += v[t] * v0[t];
        for (size_t t = 0; t < d; ++t) v[t] -= dot * v0[t];
      }
      for (size_t a = 0; a < d; ++a) {
        double acc = 0.0;
        const double* row = cov.data() + a * d;
        for (size_t b = 0; b < d; ++b) acc += row[b] * v[b];
        next[a] = acc;
      }
      double norm = 0.0;
      for (size_t t = 0; t < d; ++t) norm += next[t] * next[t];
      norm = std::sqrt(norm);
      if (norm < 1e-30) return false;  // degenerate direction
      for (size_t t = 0; t < d; ++t) v[t] = next[t] / norm;
    }
  }

  double var0 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const float* row = x.Row(i);
    for (int c = 0; c < 2; ++c) {
      const double* v = comp.data() + c * d;
      double proj = 0.0;
      for (size_t t = 0; t < d; ++t) proj += (row[t] - mean[t]) * v[t];
      (*y)(i, c) = static_cast<float>(proj);
      if (c == 0) var0 += proj * proj;
    }
  }
  const double std0 = std::sqrt(var0 / static_cast<double>(n));
  if (std0 < 1e-30) return false;
  const float scale = static_cast<float>(1e-4 / std0);
  for (size_t i = 0; i < n; ++i) {
    (*y)(i, 0) *= scale;
    (*y)(i, 1) *= scale;
  }
  return true;
}

}  // namespace

Matrix RunTsne(const Matrix& x, const TsneOptions& opts, Rng* rng) {
  const size_t n = x.rows(), d = x.cols();
  Matrix y(n, 2);
  if (n == 0) return y;
  if (n == 1) return y;

  // Symmetrized affinities P.
  const double perplexity =
      std::min(opts.perplexity, static_cast<double>(n - 1) / 3.0);
  std::vector<double> p(n * n, 0.0);
  {
    std::vector<double> sqdist(n);
    std::vector<double> row(n);
    for (size_t i = 0; i < n; ++i) {
      const float* xi = x.Row(i);
      for (size_t j = 0; j < n; ++j) {
        const float* xj = x.Row(j);
        double acc = 0.0;
        for (size_t t = 0; t < d; ++t) {
          const double diff = static_cast<double>(xi[t]) - xj[t];
          acc += diff * diff;
        }
        sqdist[j] = acc;
      }
      FitConditional(sqdist, n, i, std::max(2.0, perplexity), row.data());
      for (size_t j = 0; j < n; ++j) p[i * n + j] = row[j];
    }
    // Symmetrize and normalize.
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const double v = 0.5 * (p[i * n + j] + p[j * n + i]);
        p[i * n + j] = v;
        p[j * n + i] = v;
        total += 2.0 * v;
      }
    }
    const double inv = total > 0.0 ? 1.0 / total : 0.0;
    for (double& v : p) v = std::max(v * inv, 1e-12);
  }

  if (!opts.pca_init || !PcaInit(x, &y, rng)) {
    rng->FillGaussian(y.data(), y.size(), 1e-4f);
  }
  // Auto learning rate (the sklearn heuristic): scales with n so the first
  // exaggerated steps stay stable from the tiny init. A fixed rate far
  // above it made the first iteration overshoot by orders of magnitude,
  // after which the embedding froze in a scrambled layout — the historical
  // "2-D silhouette trails raw" failure.
  const double learning_rate =
      opts.learning_rate > 0.0
          ? opts.learning_rate
          : std::max(static_cast<double>(n) /
                         (4.0 * std::max(1.0, opts.exaggeration)),
                     50.0);
  Matrix gains = Matrix::Ones(n, 2);
  Matrix velocity(n, 2);
  std::vector<double> qnum(n * n);
  std::vector<double> grad(n * 2);

  for (size_t iter = 0; iter < opts.iterations; ++iter) {
    const double exaggeration =
        iter < opts.exaggeration_iters ? opts.exaggeration : 1.0;
    const double momentum = iter < 250 ? 0.5 : 0.8;

    // Student-t numerators and their sum.
    double qsum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      qnum[i * n + i] = 0.0;
      for (size_t j = i + 1; j < n; ++j) {
        const double dx = static_cast<double>(y(i, 0)) - y(j, 0);
        const double dy = static_cast<double>(y(i, 1)) - y(j, 1);
        const double v = 1.0 / (1.0 + dx * dx + dy * dy);
        qnum[i * n + j] = v;
        qnum[j * n + i] = v;
        qsum += 2.0 * v;
      }
    }
    const double inv_qsum = qsum > 0.0 ? 1.0 / qsum : 0.0;

    // Gradients from a frozen snapshot of y, applied afterwards (Jacobi).
    // Updating points in place while later gradients read them couples the
    // per-point steps and destabilizes the exaggeration phase.
    for (size_t i = 0; i < n; ++i) {
      double grad0 = 0.0, grad1 = 0.0;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double num = qnum[i * n + j];
        const double q = std::max(num * inv_qsum, 1e-12);
        const double mult = (exaggeration * p[i * n + j] - q) * num;
        grad0 += mult * (static_cast<double>(y(i, 0)) - y(j, 0));
        grad1 += mult * (static_cast<double>(y(i, 1)) - y(j, 1));
      }
      grad[i * 2] = 4.0 * grad0;
      grad[i * 2 + 1] = 4.0 * grad1;
    }
    for (size_t i = 0; i < n; ++i) {
      for (int c = 0; c < 2; ++c) {
        const double g = grad[i * 2 + c];
        const bool same_sign = (g > 0.0) == (velocity(i, c) > 0.0f);
        gains(i, c) = std::max(
            0.01f, same_sign ? gains(i, c) * 0.8f : gains(i, c) + 0.2f);
        velocity(i, c) = static_cast<float>(
            momentum * velocity(i, c) - learning_rate * gains(i, c) * g);
        y(i, c) += velocity(i, c);
      }
    }

    // Re-center.
    double mean0 = 0.0, mean1 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      mean0 += y(i, 0);
      mean1 += y(i, 1);
    }
    mean0 /= static_cast<double>(n);
    mean1 /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      y(i, 0) -= static_cast<float>(mean0);
      y(i, 1) -= static_cast<float>(mean1);
    }
  }
  return y;
}

TsneSweepResult RunTsnePerplexitySweep(
    const Matrix& x, const TsneOptions& base,
    const std::vector<double>& perplexities, uint64_t seed,
    const TsneScoreFn& score) {
  TsneSweepResult best;
  bool first = true;
  for (const double p : perplexities) {
    TsneOptions opts = base;
    opts.perplexity = p;
    Rng rng(seed);  // identical init per candidate: only perplexity varies
    Matrix emb = RunTsne(x, opts, &rng);
    const double s = score(emb);
    if (first || s > best.score) {
      best.embedding = std::move(emb);
      best.perplexity = p;
      best.score = s;
      first = false;
    }
  }
  return best;
}

}  // namespace splash
