// Copyright 2026 The SPLASH Reproduction Authors.

#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace splash {

namespace {

/// Binary-searches the Gaussian bandwidth of row `i` so the conditional
/// distribution hits the target perplexity, writing p_{j|i} into `row`.
void FitConditional(const std::vector<double>& sqdist, size_t n, size_t i,
                    double perplexity, double* row) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0, beta_lo = 0.0, beta_hi = 1e300;
  for (int iter = 0; iter < 50; ++iter) {
    double sum = 0.0, weighted = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        row[j] = 0.0;
        continue;
      }
      const double p = std::exp(-beta * sqdist[j]);
      row[j] = p;
      sum += p;
      weighted += beta * sqdist[j] * p;
    }
    if (sum <= 0.0) {
      beta = 0.5 * (beta_lo + (beta_hi >= 1e300 ? beta * 2.0 : beta_hi));
      continue;
    }
    const double entropy = std::log(sum) + weighted / sum;
    const double diff = entropy - target_entropy;
    if (std::fabs(diff) < 1e-5) break;
    if (diff > 0.0) {  // too flat -> sharpen
      beta_lo = beta;
      beta = beta_hi >= 1e300 ? beta * 2.0 : 0.5 * (beta + beta_hi);
    } else {
      beta_hi = beta;
      beta = 0.5 * (beta + beta_lo);
    }
  }
  double sum = 0.0;
  for (size_t j = 0; j < n; ++j) sum += row[j];
  if (sum > 0.0) {
    const double inv = 1.0 / sum;
    for (size_t j = 0; j < n; ++j) row[j] *= inv;
  }
}

}  // namespace

Matrix RunTsne(const Matrix& x, const TsneOptions& opts, Rng* rng) {
  const size_t n = x.rows(), d = x.cols();
  Matrix y(n, 2);
  if (n == 0) return y;
  if (n == 1) return y;

  // Symmetrized affinities P.
  const double perplexity =
      std::min(opts.perplexity, static_cast<double>(n - 1) / 3.0);
  std::vector<double> p(n * n, 0.0);
  {
    std::vector<double> sqdist(n);
    std::vector<double> row(n);
    for (size_t i = 0; i < n; ++i) {
      const float* xi = x.Row(i);
      for (size_t j = 0; j < n; ++j) {
        const float* xj = x.Row(j);
        double acc = 0.0;
        for (size_t t = 0; t < d; ++t) {
          const double diff = static_cast<double>(xi[t]) - xj[t];
          acc += diff * diff;
        }
        sqdist[j] = acc;
      }
      FitConditional(sqdist, n, i, std::max(2.0, perplexity), row.data());
      for (size_t j = 0; j < n; ++j) p[i * n + j] = row[j];
    }
    // Symmetrize and normalize.
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const double v = 0.5 * (p[i * n + j] + p[j * n + i]);
        p[i * n + j] = v;
        p[j * n + i] = v;
        total += 2.0 * v;
      }
    }
    const double inv = total > 0.0 ? 1.0 / total : 0.0;
    for (double& v : p) v = std::max(v * inv, 1e-12);
  }

  rng->FillGaussian(y.data(), y.size(), 1e-2f);
  Matrix gains = Matrix::Ones(n, 2);
  Matrix velocity(n, 2);
  std::vector<double> qnum(n * n);

  for (size_t iter = 0; iter < opts.iterations; ++iter) {
    const double exaggeration =
        iter < opts.exaggeration_iters ? opts.exaggeration : 1.0;
    const double momentum = iter < 250 ? 0.5 : 0.8;

    // Student-t numerators and their sum.
    double qsum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      qnum[i * n + i] = 0.0;
      for (size_t j = i + 1; j < n; ++j) {
        const double dx = static_cast<double>(y(i, 0)) - y(j, 0);
        const double dy = static_cast<double>(y(i, 1)) - y(j, 1);
        const double v = 1.0 / (1.0 + dx * dx + dy * dy);
        qnum[i * n + j] = v;
        qnum[j * n + i] = v;
        qsum += 2.0 * v;
      }
    }
    const double inv_qsum = qsum > 0.0 ? 1.0 / qsum : 0.0;

    for (size_t i = 0; i < n; ++i) {
      double grad0 = 0.0, grad1 = 0.0;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double num = qnum[i * n + j];
        const double q = std::max(num * inv_qsum, 1e-12);
        const double mult = (exaggeration * p[i * n + j] - q) * num;
        grad0 += mult * (static_cast<double>(y(i, 0)) - y(j, 0));
        grad1 += mult * (static_cast<double>(y(i, 1)) - y(j, 1));
      }
      for (int c = 0; c < 2; ++c) {
        const double grad = 4.0 * (c == 0 ? grad0 : grad1);
        const bool same_sign =
            (grad > 0.0) == (velocity(i, c) > 0.0f);
        gains(i, c) = std::max(
            0.01f, same_sign ? gains(i, c) * 0.8f : gains(i, c) + 0.2f);
        velocity(i, c) = static_cast<float>(
            momentum * velocity(i, c) -
            opts.learning_rate * gains(i, c) * grad);
        y(i, c) += velocity(i, c);
      }
    }

    // Re-center.
    double mean0 = 0.0, mean1 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      mean0 += y(i, 0);
      mean1 += y(i, 1);
    }
    mean0 /= static_cast<double>(n);
    mean1 /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      y(i, 0) -= static_cast<float>(mean0);
      y(i, 1) -= static_cast<float>(mean1);
    }
  }
  return y;
}

}  // namespace splash
