// Copyright 2026 The SPLASH Reproduction Authors.

#include "analysis/drift.h"

#include <algorithm>
#include <cmath>

#include "tensor/matrix.h"

namespace splash {

DriftReport AnalyzeDrift(const Dataset& ds, size_t windows, size_t embed_dim,
                         Rng* rng) {
  DriftReport report;
  const size_t n_edges = ds.stream.size();
  if (n_edges == 0 || windows == 0) return report;
  const double t0 = ds.stream.min_time();
  const double t1 = ds.stream.max_time();
  const double span = std::max(1e-12, t1 - t0);
  auto window_of = [&](double t) {
    const size_t w =
        static_cast<size_t>((t - t0) / span * static_cast<double>(windows));
    return std::min(w, windows - 1);
  };

  const size_t n_nodes = ds.stream.num_nodes();
  const NodeId* src = ds.stream.src_data();
  const NodeId* dst = ds.stream.dst_data();
  const double* time = ds.stream.time_data();

  // (b) structural: per-window incident endpoints / distinct nodes touched.
  {
    std::vector<size_t> window_endpoints(windows, 0);
    std::vector<size_t> window_nodes(windows, 0);
    std::vector<uint32_t> last_touch(n_nodes, static_cast<uint32_t>(-1));
    for (size_t i = 0; i < n_edges; ++i) {
      const size_t w = window_of(time[i]);
      window_endpoints[w] += 2;
      for (const NodeId v : {src[i], dst[i]}) {
        if (last_touch[v] != w) {
          last_touch[v] = static_cast<uint32_t>(w);
          ++window_nodes[w];
        }
      }
    }
    report.avg_degree.resize(windows, 0.0);
    for (size_t w = 0; w < windows; ++w) {
      if (window_nodes[w] > 0) {
        report.avg_degree[w] = static_cast<double>(window_endpoints[w]) /
                               static_cast<double>(window_nodes[w]);
      }
    }
  }

  // (c) property: abnormal-query rate per window.
  {
    std::vector<size_t> total(windows, 0), abnormal(windows, 0);
    for (const PropertyQuery& q : ds.queries) {
      const size_t w = window_of(q.time);
      ++total[w];
      abnormal[w] += q.class_label != 0;
    }
    report.label_rate.resize(windows, 0.0);
    for (size_t w = 0; w < windows; ++w) {
      if (total[w] > 0) {
        report.label_rate[w] = static_cast<double>(abnormal[w]) /
                               static_cast<double>(total[w]);
      }
    }
  }

  // (a) positional: embed nodes by smoothing along edges (node2vec
  // stand-in), group by first-appearance window, measure consecutive group
  // mean distances.
  {
    std::vector<uint32_t> group(n_nodes, static_cast<uint32_t>(-1));
    for (size_t i = 0; i < n_edges; ++i) {
      const size_t w = window_of(time[i]);
      for (const NodeId v : {src[i], dst[i]}) {
        if (group[v] == static_cast<uint32_t>(-1)) {
          group[v] = static_cast<uint32_t>(w);
        }
      }
    }
    Matrix emb = Matrix::Gaussian(n_nodes, embed_dim, rng,
                                  1.0f / std::sqrt(static_cast<float>(
                                             std::max<size_t>(1, embed_dim))));
    constexpr float kStep = 0.3f;
    for (int round = 0; round < 3; ++round) {
      for (size_t i = 0; i < n_edges; ++i) {
        float* a = emb.Row(src[i]);
        float* b = emb.Row(dst[i]);
        for (size_t j = 0; j < embed_dim; ++j) {
          const float av = a[j], bv = b[j];
          a[j] = av + kStep * (bv - av);
          b[j] = bv + kStep * (av - bv);
        }
      }
    }
    Matrix means(windows, embed_dim);
    std::vector<size_t> counts(windows, 0);
    for (size_t v = 0; v < n_nodes; ++v) {
      if (group[v] == static_cast<uint32_t>(-1)) continue;
      Axpy(1.0f, emb.Row(v), means.Row(group[v]), embed_dim);
      ++counts[group[v]];
    }
    for (size_t w = 0; w < windows; ++w) {
      if (counts[w] == 0) continue;
      float* row = means.Row(w);
      const float inv = 1.0f / static_cast<float>(counts[w]);
      for (size_t j = 0; j < embed_dim; ++j) row[j] *= inv;
    }
    report.positional_shift.resize(windows > 1 ? windows - 1 : 0, 0.0);
    for (size_t w = 0; w + 1 < windows; ++w) {
      double acc = 0.0;
      for (size_t j = 0; j < embed_dim; ++j) {
        const double d =
            static_cast<double>(means(w + 1, j)) - means(w, j);
        acc += d * d;
      }
      report.positional_shift[w] = std::sqrt(acc);
    }
  }
  return report;
}

}  // namespace splash
