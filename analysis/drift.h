// Copyright 2026 The SPLASH Reproduction Authors.
//
// Fig. 3 diagnostics: quantifies the three distribution shifts of an edge
// stream over equal time windows.

#ifndef SPLASH_ANALYSIS_DRIFT_H_
#define SPLASH_ANALYSIS_DRIFT_H_

#include <cstddef>
#include <vector>

#include "datasets/dataset.h"
#include "tensor/rng.h"

namespace splash {

struct DriftReport {
  /// (b) structural: mean temporal degree (window edges incident per node
  /// touched in that window), one entry per window.
  std::vector<double> avg_degree;
  /// (c) property: fraction of abnormal (label != 0) queries per window.
  std::vector<double> label_rate;
  /// (a) positional: distance between mean embeddings of consecutive
  /// appearance groups (nodes grouped by first-appearance window);
  /// windows - 1 entries.
  std::vector<double> positional_shift;
};

/// `embed_dim` sizes the throwaway smoothing embedding used for (a).
DriftReport AnalyzeDrift(const Dataset& ds, size_t windows, size_t embed_dim,
                         Rng* rng);

}  // namespace splash

#endif  // SPLASH_ANALYSIS_DRIFT_H_
