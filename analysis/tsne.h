// Copyright 2026 The SPLASH Reproduction Authors.
//
// Exact (O(n^2)) t-SNE for the Fig. 14 qualitative study. Intended for a
// few hundred to a few thousand points. Defaults to PCA initialization
// (top-2 principal components, scaled small), which preserves the global
// cluster layout random init scrambles — the fix for the 2-D silhouettes
// trailing the raw-representation silhouettes (tsne_test pins the gap).

#ifndef SPLASH_ANALYSIS_TSNE_H_
#define SPLASH_ANALYSIS_TSNE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace splash {

struct TsneOptions {
  size_t iterations = 500;
  double perplexity = 30.0;
  /// <= 0 picks the auto rate max(n / (4 * exaggeration), 50) — stable
  /// from the small init at any point count; explicit values are honored.
  double learning_rate = 0.0;
  size_t exaggeration_iters = 100;  // early exaggeration phase length
  double exaggeration = 4.0;
  /// Initialize from the top-2 principal components (deterministic power
  /// iteration) instead of a random Gaussian. Falls back to random when
  /// the data is degenerate (zero variance).
  bool pca_init = true;
};

/// Embeds the rows of `x` into 2-D. Returns an (n x 2) matrix.
Matrix RunTsne(const Matrix& x, const TsneOptions& opts, Rng* rng);

/// Scores a candidate 2-D embedding; higher is better. The Fig. 14 bench
/// plugs in the silhouette against node classes.
using TsneScoreFn = std::function<double(const Matrix& embedding)>;

struct TsneSweepResult {
  Matrix embedding;
  double perplexity = 0.0;
  double score = 0.0;
};

/// The perplexity sweep hook: runs t-SNE once per candidate perplexity
/// (identical seed and init each time, so runs differ only in perplexity)
/// and returns the embedding maximizing `score`. `perplexities` must be
/// non-empty.
TsneSweepResult RunTsnePerplexitySweep(
    const Matrix& x, const TsneOptions& base,
    const std::vector<double>& perplexities, uint64_t seed,
    const TsneScoreFn& score);

}  // namespace splash

#endif  // SPLASH_ANALYSIS_TSNE_H_
