// Copyright 2026 The SPLASH Reproduction Authors.
//
// Exact (O(n^2)) t-SNE for the Fig. 14 qualitative study. Intended for a
// few hundred to a few thousand points.

#ifndef SPLASH_ANALYSIS_TSNE_H_
#define SPLASH_ANALYSIS_TSNE_H_

#include <cstddef>

#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace splash {

struct TsneOptions {
  size_t iterations = 500;
  double perplexity = 30.0;
  double learning_rate = 100.0;
  size_t exaggeration_iters = 100;  // early exaggeration phase length
  double exaggeration = 4.0;
};

/// Embeds the rows of `x` into 2-D. Returns an (n x 2) matrix.
Matrix RunTsne(const Matrix& x, const TsneOptions& opts, Rng* rng);

}  // namespace splash

#endif  // SPLASH_ANALYSIS_TSNE_H_
