#!/usr/bin/env bash
# kill -9 crash/recovery loop over the durable serving layer (DESIGN.md §7).
#
# Each cycle starts build/serve_crash_child feeding a deterministic edge
# corpus into a durable SplashService (WAL + periodic checkpoints), SIGKILLs
# it at a random point mid-stream, then re-runs it in --mode=verify: recover
# from the surviving data_dir, replay the full WAL history through a fresh
# predictor, and require the recovered state to be BIT-IDENTICAL (predictor
# blob, ingest log, probe predictions). Successive run cycles resume from
# the recovered watermark, so one data_dir accumulates crashes at many
# depths; when the corpus is exhausted (clean exit 0) the dir is reset and
# the stream starts over.
#
# Usage: scripts/crash_harness.sh [cycles] [build-dir]
#   cycles     kill-9 cycles to run (default 20)
#   build-dir  where serve_crash_child lives (default build)
# Env: SEED=n reseeds the kill-timing RNG (default 1).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cycles="${1:-20}"
build_dir="${2:-${repo_root}/build}"
child="${build_dir}/serve_crash_child"

if [[ ! -x "${child}" ]]; then
  echo "crash_harness: ${child} not built" >&2
  exit 2
fi

data_dir="$(mktemp -d /tmp/splash_crash_harness_XXXXXX)"
trap 'rm -rf "${data_dir}"' EXIT

RANDOM=${SEED:-1}
kills=0
clean_exits=0

for ((cycle = 1; cycle <= cycles; cycle++)); do
  # Pace ingest so the whole corpus takes ~1.5s of wall clock and the kill
  # (50-400ms in) lands mid-stream at an arbitrary WAL/checkpoint boundary.
  "${child}" --data-dir="${data_dir}" --mode=run --pace-us=2000 \
    2>/dev/null &
  pid=$!
  delay_ms=$((50 + RANDOM % 350))
  sleep "$(awk "BEGIN { print ${delay_ms} / 1000 }")"

  if kill -9 "${pid}" 2>/dev/null; then
    kills=$((kills + 1))
    wait "${pid}" 2>/dev/null && true
    status=$?
    if [[ "${status}" -ne 137 ]]; then
      echo "crash_harness: cycle ${cycle}: expected SIGKILL status 137," \
        "got ${status}" >&2
      exit 1
    fi
  else
    # The child finished the corpus before the kill landed.
    wait "${pid}" 2>/dev/null && true
    status=$?
    if [[ "${status}" -ne 0 ]]; then
      echo "crash_harness: cycle ${cycle}: clean run failed (${status})" >&2
      exit 1
    fi
    clean_exits=$((clean_exits + 1))
  fi

  if ! "${child}" --data-dir="${data_dir}" --mode=verify; then
    echo "crash_harness: cycle ${cycle}: RECOVERY DIVERGED (kill after" \
      "${delay_ms}ms) — data_dir preserved at ${data_dir}" >&2
    trap - EXIT
    exit 1
  fi

  # Corpus exhausted: reset and let the next cycle crash the early stream.
  if [[ "${status}" -eq 0 ]]; then
    rm -rf "${data_dir}"
    mkdir -p "${data_dir}"
  fi
done

echo "crash_harness: ${cycles} cycles OK (${kills} kill -9," \
  "${clean_exits} clean exits), recovery bit-exact every time"
