#!/usr/bin/env python3
"""CI gate: compare bench_micro_substrate cpu_time against the committed
baseline (BENCH_micro.json) and fail on regressions beyond a threshold.

cpu_time (not real_time) is the comparison axis because the CI container is
single-core: wall time cannot show parallel-layer regressions there, while
main-thread CPU time per op is stable and host-concurrency-independent for
the pinned rows (DESIGN.md section 4).

Usage:
  check_bench_regression.py --baseline BENCH_micro.json --current cur.json
      [--max-regress 0.15] [--rows ROW ...]
  check_bench_regression.py --self-test --baseline BENCH_micro.json

Rows are matched by run_name, so both raw runs and aggregates-only runs
("<name>_mean") resolve; when a run has aggregates, the mean is used. A
pinned row missing from either file fails the gate — a silently vanished
row is a vanished gate.

Comparisons are like-for-like per kernel backend: when both files carry a
`kernel_backend` context entry (bench_micro_substrate stamps it), a
mismatch fails immediately — scalar baselines must never be diffed against
avx2 runs or vice versa (CI pins SPLASH_KERNEL=scalar for the gate; the
avx2/avx512 trajectories live in the baseline's avx2_*/avx512_* context
keys instead). The same refusal applies per row: bench_serve_load stamps
`kernel_backend`, `wal_mode`, `model`, and `shards` on every row, and a
pinned row whose stamped config differs between baseline and current fails
the gate before any cpu_time is compared — a WAL-on run must never be
diffed against a WAL-off baseline just because the row name matches.

--overhead-row/--overhead-ref add a within-file ratio gate on the current
run: the overhead row must stay within --max-overhead (default 10%) of the
reference row. CI uses it to pin the sharded router's S=1 tax:
BM_ServeSmokeMixedRouted/1 vs BM_ServeSmokeMixed, same run, same host —
no calibration needed because both rows share it. When the overhead row
carries an `overhead_vs_direct` stamp (bench_serve_load writes the median
of its 7 per-pair routed/direct ratios, each pair run back-to-back), that
is the gated ratio — paired ratios cancel within-run host drift that the
ratio of two independently-sorted medians would absorb into one side.
Without the stamp (older snapshots) the gate falls back to the plain
cpu_time ratio of the two rows.

`cache_topology` (stamped by bench_micro_substrate since the packed-GEMM
layer landed) is a context config key: the BM_MatMulPacked* rows size
their k-blocks from the detected L2, so when baseline and current report
unlike cache hierarchies those rows are refused — skipped with a visible
line rather than compared as if the hardware were the same. All other
rows still gate normally.

--speedup-row/--speedup-ref add a within-file FLOOR gate on the current
run: the ref row's cpu_time divided by the speedup row's must be at least
--min-speedup. It is meant for backend-pinned runs (a local avx512 bench
dir, where BM_MatMulPacked/32/2048/1024 holds >= 1.5x over its unpacked
sibling): on the scalar-pinned CI run the packed layout is a modest
layout win, not 1.5x, so CI pins the SIMD packed wins through the
committed side-run stamps instead (next paragraph).

--context-speedup KEY[=FLOOR] (repeatable) gates a scripts/bench.sh
side-run context stamp in the COMMITTED BASELINE — e.g.
"avx512_speedup BM_SlimForwardFused/wide_b1=1.0" (the batch-1 wide fused
forward whose pre-packing strided-B walk starved the avx512 backend) and
"avx512_packed_speedup BM_MatMulPacked/32/2048/1024=1.5" (packed over
unpacked within the avx512 side-run, B larger than L2). The stamps are
written when the snapshot is recorded, so the gate stops a regressed
snapshot from being committed and re-verifies every committed one on
every push — the CI runner itself needs no avx512. FLOOR defaults to
--min-context-speedup. A baseline whose recording host could not run the
backend never carries the key, so an absent key skips visibly instead of
failing.

--self-test exercises the comparator against fabricated data derived from
the baseline: an identical copy must pass, and a copy with one pinned row
hand-slowed by 30% must fail (likewise a hand-lowered --context-speedup
stamp). CI runs it before the real comparison so the gate can never rot
into always-green.
"""

import argparse
import copy
import json
import sys

# One row per hot-path family: the O(1)-per-edge ring write (the
# cache-resident 1k-node arg — the larger args measure the host's DRAM
# latency more than the code), the SLIM train step, the full chronological
# replay, and the augmenter bulk replay. The FeatureReplayBulk row matters
# because with pipeline_depth >= 1 the replay bench runs ingest on the
# PipelineThread, outside BM_ChronoReplayThreads' main-thread cpu_time —
# the dedicated row times ObserveBulk on the measuring thread, so ingest
# regressions cannot hide behind the pipeline. The last two rows pin the
# kernel layer itself (DESIGN.md §6): the neighbor-message GEMM shape and
# the fused const-forward path the serving layer reads through.
DEFAULT_ROWS = [
    "BM_NeighborMemoryObserve/1000",
    "BM_SlimTrainStepThreads/1",
    "BM_ChronoReplayThreads/1",
    "BM_FeatureReplayBulkThreads/1",
    "BM_MatMul/256/48/64",
    "BM_MatMulPacked/2560/48/64",
    "BM_SlimForwardFused/256",
    "BM_SlimForwardFused/wide_b1",
]

# The serving-layer gate (--preset serve): BENCH_serve.json's pinned
# closed-loop mixed-traffic smoke rows vs a fresh `bench_serve_load --smoke`
# run, calibrated by that binary's own ALU row. cpu_time here is *process*
# CPU per operation (ingest + query + apply thread + pool workers), so a
# regression anywhere in the serve path shows up even on a 1-core runner.
# The Routed/1 row drives the identical workload through a 1-shard
# ShardedSplashService — it gates the router layer itself, and the
# --overhead-row check additionally pins its distance from the direct row.
SERVE_ROWS = ["BM_ServeSmokeMixed", "BM_ServeSmokeMixedRouted/1"]
SERVE_CALIBRATE = "BM_ServeCalibrate"

PRESETS = {
    "micro": (DEFAULT_ROWS, "BM_DegreeEncode"),
    "serve": (SERVE_ROWS, SERVE_CALIBRATE),
}

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Per-row configuration stamps (bench_serve_load writes all four on every
# row). A pinned row is only comparable when every stamp both sides carry
# agrees; a missing stamp (older baselines, other binaries) is not checked.
_ROW_CONFIG_KEYS = ("kernel_backend", "wal_mode", "model", "shards")


def load_row_configs(doc):
    """Maps run_name -> {config key: value} for stamped rows."""
    configs = {}
    for row in doc.get("benchmarks", []):
        run_name = row.get("run_name", row.get("name", ""))
        cfg = {k: str(row[k]) for k in _ROW_CONFIG_KEYS if k in row}
        if cfg and run_name not in configs:
            configs[run_name] = cfg
    return configs


def load_cpu_times(doc):
    """Maps run_name -> cpu_time in ns, preferring mean aggregates."""
    times = {}
    for row in doc.get("benchmarks", []):
        run_name = row.get("run_name", row.get("name", ""))
        if row.get("run_type") == "aggregate" and row.get(
                "aggregate_name") != "mean":
            continue
        if run_name in times and row.get("run_type") != "aggregate":
            continue  # keep the aggregate once seen
        scale = _UNIT_NS.get(row.get("time_unit", "ns"))
        if scale is None or "cpu_time" not in row:
            continue
        times[run_name] = row["cpu_time"] * scale
    return times


def compare(baseline, current, rows, max_regress, calibrate=None):
    """Returns (ok, report_lines).

    With `calibrate`, both sides are normalized by that row's cpu_time
    before comparing — an ALU-bound row (BM_DegreeEncode in CI) cancels the
    host's single-core speed, so a baseline recorded on one CPU model stays
    comparable on another and the threshold measures the *relative* cost of
    the pinned op, not the CPU lottery of heterogeneous runners.
    """
    base_backend = str(baseline.get("context", {}).get("kernel_backend", ""))
    cur_backend = str(current.get("context", {}).get("kernel_backend", ""))
    if base_backend and cur_backend and base_backend != cur_backend:
        return False, [
            "kernel backend mismatch: baseline=%s current=%s — comparisons "
            "are like-for-like only (pin SPLASH_KERNEL): FAIL" %
            (base_backend, cur_backend)
        ]
    # The packed-GEMM rows are k-blocked against the detected L2: unlike
    # cache hierarchies make their times incomparable by construction, so
    # those rows are refused (skipped, visibly) rather than diffed.
    base_cache = str(baseline.get("context", {}).get("cache_topology", ""))
    cur_cache = str(current.get("context", {}).get("cache_topology", ""))
    unlike_cache = bool(base_cache and cur_cache and base_cache != cur_cache)
    base = load_cpu_times(baseline)
    cur = load_cpu_times(current)
    base_cfg = load_row_configs(baseline)
    cur_cfg = load_row_configs(current)
    ok = True
    lines = []
    scale = 1.0
    if calibrate is not None:
        if calibrate not in base or calibrate not in cur:
            return False, ["calibration row %s missing from %s: FAIL" %
                           (calibrate,
                            "baseline" if calibrate not in base
                            else "current run")]
        scale = base[calibrate] / cur[calibrate]
        lines.append("host-speed calibration via %s: current cpu_times "
                     "scaled by %.3f" % (calibrate, scale))
    lines.append("%-36s %12s %12s %8s  %s" %
                 ("row", "base cpu", "cur cpu", "ratio", "verdict"))
    for row in rows:
        if unlike_cache and row.startswith("BM_MatMulPacked"):
            lines.append("%-36s skipped: unlike cache topology (baseline=%s "
                         "current=%s)" % (row, base_cache, cur_cache))
            continue
        if row not in base or row not in cur:
            where = "baseline" if row not in base else "current run"
            lines.append("%-36s missing from %s: FAIL (the gate row "
                         "vanished)" % (row, where))
            ok = False
            continue
        mismatched = [
            "%s baseline=%s current=%s" %
            (key, base_cfg.get(row, {})[key], cur_cfg.get(row, {})[key])
            for key in _ROW_CONFIG_KEYS
            if key in base_cfg.get(row, {}) and key in cur_cfg.get(row, {})
            and base_cfg[row][key] != cur_cfg[row][key]
        ]
        if mismatched:
            lines.append("%-36s config mismatch (%s): FAIL (unlike-config "
                         "comparison refused)" % (row, "; ".join(mismatched)))
            ok = False
            continue
        scaled = cur[row] * scale
        ratio = scaled / base[row] if base[row] > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + max_regress:
            verdict = "REGRESSION (> +%d%%)" % round(max_regress * 100)
            ok = False
        lines.append("%-36s %10.1fns %10.1fns %8.3f  %s" %
                     (row, base[row], scaled, ratio, verdict))
    return ok, lines


def load_paired_ratio(doc, row):
    """The bench-stamped paired-median overhead ratio, or None."""
    for r in doc.get("benchmarks", []):
        if r.get("run_name", r.get("name", "")) == row:
            ratio = r.get("overhead_vs_direct")
            if isinstance(ratio, (int, float)) and ratio > 0:
                return float(ratio)
    return None


def check_overhead(doc, row, ref, max_overhead):
    """Within-file ratio gate: row must stay within (1 + max_overhead) of
    ref. Prefers the row's stamped `overhead_vs_direct` (median of per-pair
    back-to-back ratios — drift-immune); falls back to the plain cpu_time
    ratio for snapshots that predate the stamp. Both rows come from the
    same run on the same host, so no calibration is involved."""
    times = load_cpu_times(doc)
    if row not in times or ref not in times:
        missing = row if row not in times else ref
        return False, ["overhead gate: row %s missing: FAIL" % missing]
    if times[ref] <= 0:
        return False, ["overhead gate: reference row %s has cpu_time <= 0: "
                       "FAIL" % ref]
    paired = load_paired_ratio(doc, row)
    ratio = paired if paired is not None else times[row] / times[ref]
    how = ("paired-median stamp" if paired is not None
           else "%.1fns / %.1fns" % (times[row], times[ref]))
    ok = ratio <= 1.0 + max_overhead
    lines = ["overhead gate: %s vs %s = %.3f (%s, limit %.3f): %s" %
             (row, ref, ratio, how, 1.0 + max_overhead,
              "ok" if ok else "FAIL")]
    return ok, lines


def check_speedup(doc, row, ref, min_speedup):
    """Within-file floor gate: `ref`'s cpu_time / `row`'s cpu_time must be
    at least min_speedup. Both rows come from the same run on the same
    host (no calibration) — pins the packed-GEMM win over its unpacked
    sibling on backend-pinned runs (SIMD-pinned bench dirs; the scalar CI
    run gates the SIMD wins via --context-speedup instead)."""
    times = load_cpu_times(doc)
    if row not in times or ref not in times:
        missing = row if row not in times else ref
        return False, ["speedup gate: row %s missing: FAIL" % missing]
    if times[row] <= 0:
        return False, ["speedup gate: row %s has cpu_time <= 0: FAIL" % row]
    ratio = times[ref] / times[row]
    ok = ratio >= min_speedup
    lines = ["speedup gate: %s over %s = %.2fx (%.1fns / %.1fns, floor "
             "%.2fx): %s" % (row, ref, ratio, times[ref], times[row],
                             min_speedup, "ok" if ok else "FAIL")]
    return ok, lines


def parse_context_speedups(specs, default_floor):
    """Parses repeated --context-speedup values: "KEY" or "KEY=FLOOR"."""
    gates = []
    for spec in specs or []:
        key, sep, floor = spec.rpartition("=")
        if sep and key:
            gates.append((key, float(floor)))
        else:
            gates.append((spec, default_floor))
    return gates


def check_context_speedup(doc, key, min_ratio):
    """Floor gate on a scripts/bench.sh side-run context stamp (e.g.
    "avx512_speedup BM_SlimForwardFused/wide_b1") in the committed
    baseline. An absent key means the recording host's dispatcher could
    not run that backend — skip, visibly, so snapshots from hosts without
    the hardware don't fail."""
    ctx = doc.get("context", {})
    if key not in ctx:
        return True, ["context speedup gate: '%s' absent (backend side-run "
                      "not recorded on the snapshot host): skipped" % key]
    try:
        ratio = float(ctx[key])
    except (TypeError, ValueError):
        return False, ["context speedup gate: '%s' is not a number (%r): "
                       "FAIL" % (key, ctx[key])]
    ok = ratio >= min_ratio
    lines = ["context speedup gate: %s = %.2fx (floor %.2fx): %s" %
             (key, ratio, min_ratio, "ok" if ok else "FAIL")]
    return ok, lines


def self_test(baseline, rows, max_regress, calibrate,
              overhead_row=None, overhead_ref=None, max_overhead=0.10,
              speedup_row=None, speedup_ref=None, min_speedup=1.5,
              context_speedups=None):
    """The comparator must pass an identical copy and fail a hand-slowed one."""
    same = copy.deepcopy(baseline)
    ok_same, lines = compare(baseline, same, rows, max_regress, calibrate)
    if not ok_same:
        print("\n".join(lines), file=sys.stderr)
        print("self-test FAILED: identical run did not pass", file=sys.stderr)
        return False

    slowed = copy.deepcopy(baseline)
    target = rows[0]
    hit = False
    for row in slowed.get("benchmarks", []):
        if row.get("run_name", row.get("name", "")) == target:
            row["cpu_time"] = row["cpu_time"] * (1.0 + 2 * max_regress)
            hit = True
    if not hit:
        print("self-test FAILED: pinned row %s absent from baseline" % target,
              file=sys.stderr)
        return False
    ok_slowed, _ = compare(baseline, slowed, rows, max_regress, calibrate)
    if ok_slowed:
        print("self-test FAILED: +%d%% hand-slowed row passed the gate" %
              round(200 * max_regress), file=sys.stderr)
        return False

    # When the baseline stamps per-row config, flipping one stamp must be
    # refused even with identical cpu_times.
    if target in load_row_configs(baseline):
        flipped = copy.deepcopy(baseline)
        for row in flipped.get("benchmarks", []):
            if row.get("run_name", row.get("name", "")) == target:
                for key in _ROW_CONFIG_KEYS:
                    if key in row:
                        row[key] = str(row[key]) + "-flipped"
        ok_flipped, _ = compare(baseline, flipped, rows, max_regress,
                                calibrate)
        if ok_flipped:
            print("self-test FAILED: unlike-config row passed the gate",
                  file=sys.stderr)
            return False
        extra = ", unlike-config row rejected"
    else:
        extra = ""

    # The overhead comparator must pass the recorded ratio and fail a
    # hand-inflated one (the baseline is only committed when the ratio
    # gate holds, so the recorded rows must satisfy it).
    if overhead_row is not None and overhead_ref is not None:
        ok_over, lines = check_overhead(baseline, overhead_row, overhead_ref,
                                        max_overhead)
        if not ok_over:
            print("\n".join(lines), file=sys.stderr)
            print("self-test FAILED: committed baseline violates the "
                  "overhead gate", file=sys.stderr)
            return False
        inflated = copy.deepcopy(baseline)
        for row in inflated.get("benchmarks", []):
            if row.get("run_name", row.get("name", "")) == overhead_row:
                row["cpu_time"] = row["cpu_time"] * (1.0 + 3 * max_overhead)
                if "overhead_vs_direct" in row:
                    row["overhead_vs_direct"] = (
                        row["overhead_vs_direct"] * (1.0 + 3 * max_overhead))
        ok_inflated, _ = check_overhead(inflated, overhead_row, overhead_ref,
                                        max_overhead)
        if ok_inflated:
            print("self-test FAILED: hand-inflated overhead row passed",
                  file=sys.stderr)
            return False
        extra += ", inflated overhead row rejected"

    # The speedup comparator must pass the recorded ratio (the baseline is
    # only committed when the packed win holds) and fail a hand-slowed
    # packed row that erases it.
    if speedup_row is not None and speedup_ref is not None:
        ok_speed, lines = check_speedup(baseline, speedup_row, speedup_ref,
                                        min_speedup)
        if not ok_speed:
            print("\n".join(lines), file=sys.stderr)
            print("self-test FAILED: committed baseline violates the "
                  "speedup gate", file=sys.stderr)
            return False
        slowed_packed = copy.deepcopy(baseline)
        for row in slowed_packed.get("benchmarks", []):
            if row.get("run_name", row.get("name", "")) == speedup_row:
                row["cpu_time"] = row["cpu_time"] * (2.0 * min_speedup)
        ok_slowed_packed, _ = check_speedup(slowed_packed, speedup_row,
                                            speedup_ref, min_speedup)
        if ok_slowed_packed:
            print("self-test FAILED: hand-slowed speedup row passed",
                  file=sys.stderr)
            return False
        extra += ", erased speedup rejected"

    # Every committed side-run stamp must satisfy its floor, and a
    # hand-lowered stamp must fail — so a regressed snapshot cannot be
    # committed and the stamp gate cannot rot into always-green. (Absent
    # stamps skip: the snapshot host may lack the backend.)
    for key, floor in context_speedups or []:
        ok_ctx, lines = check_context_speedup(baseline, key, floor)
        if not ok_ctx:
            print("\n".join(lines), file=sys.stderr)
            print("self-test FAILED: committed baseline violates the "
                  "context speedup gate", file=sys.stderr)
            return False
        if key in baseline.get("context", {}):
            lowered = copy.deepcopy(baseline)
            lowered["context"][key] = "%.2f" % (floor / 2.0)
            ok_lowered, _ = check_context_speedup(lowered, key, floor)
            if ok_lowered:
                print("self-test FAILED: hand-lowered context stamp '%s' "
                      "passed" % key, file=sys.stderr)
                return False
            extra += ", lowered '%s' stamp rejected" % key

    # Unlike cache topologies must skip the packed rows instead of diffing
    # them (and instead of failing the whole gate).
    if str(baseline.get("context", {}).get("cache_topology", "")):
        recached = copy.deepcopy(baseline)
        recached["context"]["cache_topology"] = "self-test-other-cache"
        for row in recached.get("benchmarks", []):
            name = row.get("run_name", row.get("name", ""))
            if name.startswith("BM_MatMulPacked") and "cpu_time" in row:
                row["cpu_time"] = row["cpu_time"] * 100.0  # must be ignored
        ok_recached, lines = compare(baseline, recached, rows, max_regress,
                                     calibrate)
        if not ok_recached:
            print("\n".join(lines), file=sys.stderr)
            print("self-test FAILED: unlike-cache run did not skip the "
                  "packed rows", file=sys.stderr)
            return False
        extra += ", unlike-cache packed rows skipped"

    print("self-test passed: identical run ok, hand-slowed row rejected%s"
          % extra)
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current")
    ap.add_argument("--max-regress", type=float, default=0.15)
    ap.add_argument("--preset", choices=sorted(PRESETS),
                    help="row/calibration bundle: 'micro' for "
                         "BENCH_micro.json, 'serve' for BENCH_serve.json; "
                         "explicit --rows/--calibrate override it")
    ap.add_argument("--rows", nargs="+", default=None)
    ap.add_argument("--calibrate", default=None, metavar="ROW",
                    help="normalize both sides by this row's cpu_time to "
                         "cancel host single-core speed (CI uses "
                         "BM_DegreeEncode / BM_ServeCalibrate)")
    ap.add_argument("--overhead-row", default=None, metavar="ROW",
                    help="within-file gate: this row's cpu_time must stay "
                         "within --max-overhead of --overhead-ref (CI pins "
                         "BM_ServeSmokeMixedRouted/1 vs BM_ServeSmokeMixed)")
    ap.add_argument("--overhead-ref", default=None, metavar="ROW")
    ap.add_argument("--max-overhead", type=float, default=0.10)
    ap.add_argument("--speedup-row", default=None, metavar="ROW",
                    help="within-file floor gate: --speedup-ref's cpu_time "
                         "over this row's must be >= --min-speedup (CI pins "
                         "BM_MatMulPacked/32/2048/1024 vs "
                         "BM_MatMul/32/2048/1024)")
    ap.add_argument("--speedup-ref", default=None, metavar="ROW")
    ap.add_argument("--min-speedup", type=float, default=1.5)
    ap.add_argument("--context-speedup", action="append", default=None,
                    metavar="KEY[=FLOOR]",
                    help="repeatable floor gate on a bench.sh side-run "
                         "context stamp in the BASELINE, e.g. "
                         "'avx512_speedup BM_SlimForwardFused/wide_b1=1.0'; "
                         "FLOOR defaults to --min-context-speedup; an "
                         "absent key skips (snapshot host lacks the "
                         "backend)")
    ap.add_argument("--min-context-speedup", type=float, default=1.0)
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if (args.overhead_row is None) != (args.overhead_ref is None):
        ap.error("--overhead-row and --overhead-ref go together")
    if (args.speedup_row is None) != (args.speedup_ref is None):
        ap.error("--speedup-row and --speedup-ref go together")
    preset_rows, preset_cal = PRESETS[args.preset or "micro"]
    if args.rows is None:
        args.rows = preset_rows
    if args.calibrate is None and args.preset is not None:
        args.calibrate = preset_cal

    context_gates = parse_context_speedups(args.context_speedup,
                                           args.min_context_speedup)

    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.self_test:
        sys.exit(0 if self_test(baseline, args.rows, args.max_regress,
                                args.calibrate, args.overhead_row,
                                args.overhead_ref, args.max_overhead,
                                args.speedup_row, args.speedup_ref,
                                args.min_speedup, context_gates) else 1)

    if not args.current:
        ap.error("--current is required unless --self-test")
    with open(args.current) as f:
        current = json.load(f)

    ok, lines = compare(baseline, current, args.rows, args.max_regress,
                        args.calibrate)
    if args.overhead_row is not None:
        over_ok, over_lines = check_overhead(current, args.overhead_row,
                                             args.overhead_ref,
                                             args.max_overhead)
        ok = ok and over_ok
        lines.extend(over_lines)
    if args.speedup_row is not None:
        speed_ok, speed_lines = check_speedup(current, args.speedup_row,
                                              args.speedup_ref,
                                              args.min_speedup)
        ok = ok and speed_ok
        lines.extend(speed_lines)
    for key, floor in context_gates:
        ctx_ok, ctx_lines = check_context_speedup(baseline, key, floor)
        ok = ok and ctx_ok
        lines.extend(ctx_lines)
    print("\n".join(lines))
    if not ok:
        print("\nbench regression gate FAILED (threshold +%d%% cpu_time)" %
              round(args.max_regress * 100), file=sys.stderr)
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
