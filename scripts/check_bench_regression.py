#!/usr/bin/env python3
"""CI gate: compare bench_micro_substrate cpu_time against the committed
baseline (BENCH_micro.json) and fail on regressions beyond a threshold.

cpu_time (not real_time) is the comparison axis because the CI container is
single-core: wall time cannot show parallel-layer regressions there, while
main-thread CPU time per op is stable and host-concurrency-independent for
the pinned rows (DESIGN.md section 4).

Usage:
  check_bench_regression.py --baseline BENCH_micro.json --current cur.json
      [--max-regress 0.15] [--rows ROW ...]
  check_bench_regression.py --self-test --baseline BENCH_micro.json

Rows are matched by run_name, so both raw runs and aggregates-only runs
("<name>_mean") resolve; when a run has aggregates, the mean is used. A
pinned row missing from either file fails the gate — a silently vanished
row is a vanished gate.

Comparisons are like-for-like per kernel backend: when both files carry a
`kernel_backend` context entry (bench_micro_substrate stamps it), a
mismatch fails immediately — scalar baselines must never be diffed against
avx2 runs or vice versa (CI pins SPLASH_KERNEL=scalar for the gate; the
avx2/avx512 trajectories live in the baseline's avx2_*/avx512_* context
keys instead). The same refusal applies per row: bench_serve_load stamps
`kernel_backend`, `wal_mode`, `model`, and `shards` on every row, and a
pinned row whose stamped config differs between baseline and current fails
the gate before any cpu_time is compared — a WAL-on run must never be
diffed against a WAL-off baseline just because the row name matches.

--overhead-row/--overhead-ref add a within-file ratio gate on the current
run: the overhead row must stay within --max-overhead (default 10%) of the
reference row. CI uses it to pin the sharded router's S=1 tax:
BM_ServeSmokeMixedRouted/1 vs BM_ServeSmokeMixed, same run, same host —
no calibration needed because both rows share it. When the overhead row
carries an `overhead_vs_direct` stamp (bench_serve_load writes the median
of its 7 per-pair routed/direct ratios, each pair run back-to-back), that
is the gated ratio — paired ratios cancel within-run host drift that the
ratio of two independently-sorted medians would absorb into one side.
Without the stamp (older snapshots) the gate falls back to the plain
cpu_time ratio of the two rows.

--self-test exercises the comparator against fabricated data derived from
the baseline: an identical copy must pass, and a copy with one pinned row
hand-slowed by 30% must fail. CI runs it before the real comparison so the
gate can never rot into always-green.
"""

import argparse
import copy
import json
import sys

# One row per hot-path family: the O(1)-per-edge ring write (the
# cache-resident 1k-node arg — the larger args measure the host's DRAM
# latency more than the code), the SLIM train step, the full chronological
# replay, and the augmenter bulk replay. The FeatureReplayBulk row matters
# because with pipeline_depth >= 1 the replay bench runs ingest on the
# PipelineThread, outside BM_ChronoReplayThreads' main-thread cpu_time —
# the dedicated row times ObserveBulk on the measuring thread, so ingest
# regressions cannot hide behind the pipeline. The last two rows pin the
# kernel layer itself (DESIGN.md §6): the neighbor-message GEMM shape and
# the fused const-forward path the serving layer reads through.
DEFAULT_ROWS = [
    "BM_NeighborMemoryObserve/1000",
    "BM_SlimTrainStepThreads/1",
    "BM_ChronoReplayThreads/1",
    "BM_FeatureReplayBulkThreads/1",
    "BM_MatMul/256/48/64",
    "BM_SlimForwardFused/256",
]

# The serving-layer gate (--preset serve): BENCH_serve.json's pinned
# closed-loop mixed-traffic smoke rows vs a fresh `bench_serve_load --smoke`
# run, calibrated by that binary's own ALU row. cpu_time here is *process*
# CPU per operation (ingest + query + apply thread + pool workers), so a
# regression anywhere in the serve path shows up even on a 1-core runner.
# The Routed/1 row drives the identical workload through a 1-shard
# ShardedSplashService — it gates the router layer itself, and the
# --overhead-row check additionally pins its distance from the direct row.
SERVE_ROWS = ["BM_ServeSmokeMixed", "BM_ServeSmokeMixedRouted/1"]
SERVE_CALIBRATE = "BM_ServeCalibrate"

PRESETS = {
    "micro": (DEFAULT_ROWS, "BM_DegreeEncode"),
    "serve": (SERVE_ROWS, SERVE_CALIBRATE),
}

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Per-row configuration stamps (bench_serve_load writes all four on every
# row). A pinned row is only comparable when every stamp both sides carry
# agrees; a missing stamp (older baselines, other binaries) is not checked.
_ROW_CONFIG_KEYS = ("kernel_backend", "wal_mode", "model", "shards")


def load_row_configs(doc):
    """Maps run_name -> {config key: value} for stamped rows."""
    configs = {}
    for row in doc.get("benchmarks", []):
        run_name = row.get("run_name", row.get("name", ""))
        cfg = {k: str(row[k]) for k in _ROW_CONFIG_KEYS if k in row}
        if cfg and run_name not in configs:
            configs[run_name] = cfg
    return configs


def load_cpu_times(doc):
    """Maps run_name -> cpu_time in ns, preferring mean aggregates."""
    times = {}
    for row in doc.get("benchmarks", []):
        run_name = row.get("run_name", row.get("name", ""))
        if row.get("run_type") == "aggregate" and row.get(
                "aggregate_name") != "mean":
            continue
        if run_name in times and row.get("run_type") != "aggregate":
            continue  # keep the aggregate once seen
        scale = _UNIT_NS.get(row.get("time_unit", "ns"))
        if scale is None or "cpu_time" not in row:
            continue
        times[run_name] = row["cpu_time"] * scale
    return times


def compare(baseline, current, rows, max_regress, calibrate=None):
    """Returns (ok, report_lines).

    With `calibrate`, both sides are normalized by that row's cpu_time
    before comparing — an ALU-bound row (BM_DegreeEncode in CI) cancels the
    host's single-core speed, so a baseline recorded on one CPU model stays
    comparable on another and the threshold measures the *relative* cost of
    the pinned op, not the CPU lottery of heterogeneous runners.
    """
    base_backend = str(baseline.get("context", {}).get("kernel_backend", ""))
    cur_backend = str(current.get("context", {}).get("kernel_backend", ""))
    if base_backend and cur_backend and base_backend != cur_backend:
        return False, [
            "kernel backend mismatch: baseline=%s current=%s — comparisons "
            "are like-for-like only (pin SPLASH_KERNEL): FAIL" %
            (base_backend, cur_backend)
        ]
    base = load_cpu_times(baseline)
    cur = load_cpu_times(current)
    base_cfg = load_row_configs(baseline)
    cur_cfg = load_row_configs(current)
    ok = True
    lines = []
    scale = 1.0
    if calibrate is not None:
        if calibrate not in base or calibrate not in cur:
            return False, ["calibration row %s missing from %s: FAIL" %
                           (calibrate,
                            "baseline" if calibrate not in base
                            else "current run")]
        scale = base[calibrate] / cur[calibrate]
        lines.append("host-speed calibration via %s: current cpu_times "
                     "scaled by %.3f" % (calibrate, scale))
    lines.append("%-36s %12s %12s %8s  %s" %
                 ("row", "base cpu", "cur cpu", "ratio", "verdict"))
    for row in rows:
        if row not in base or row not in cur:
            where = "baseline" if row not in base else "current run"
            lines.append("%-36s missing from %s: FAIL (the gate row "
                         "vanished)" % (row, where))
            ok = False
            continue
        mismatched = [
            "%s baseline=%s current=%s" %
            (key, base_cfg.get(row, {})[key], cur_cfg.get(row, {})[key])
            for key in _ROW_CONFIG_KEYS
            if key in base_cfg.get(row, {}) and key in cur_cfg.get(row, {})
            and base_cfg[row][key] != cur_cfg[row][key]
        ]
        if mismatched:
            lines.append("%-36s config mismatch (%s): FAIL (unlike-config "
                         "comparison refused)" % (row, "; ".join(mismatched)))
            ok = False
            continue
        scaled = cur[row] * scale
        ratio = scaled / base[row] if base[row] > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + max_regress:
            verdict = "REGRESSION (> +%d%%)" % round(max_regress * 100)
            ok = False
        lines.append("%-36s %10.1fns %10.1fns %8.3f  %s" %
                     (row, base[row], scaled, ratio, verdict))
    return ok, lines


def load_paired_ratio(doc, row):
    """The bench-stamped paired-median overhead ratio, or None."""
    for r in doc.get("benchmarks", []):
        if r.get("run_name", r.get("name", "")) == row:
            ratio = r.get("overhead_vs_direct")
            if isinstance(ratio, (int, float)) and ratio > 0:
                return float(ratio)
    return None


def check_overhead(doc, row, ref, max_overhead):
    """Within-file ratio gate: row must stay within (1 + max_overhead) of
    ref. Prefers the row's stamped `overhead_vs_direct` (median of per-pair
    back-to-back ratios — drift-immune); falls back to the plain cpu_time
    ratio for snapshots that predate the stamp. Both rows come from the
    same run on the same host, so no calibration is involved."""
    times = load_cpu_times(doc)
    if row not in times or ref not in times:
        missing = row if row not in times else ref
        return False, ["overhead gate: row %s missing: FAIL" % missing]
    if times[ref] <= 0:
        return False, ["overhead gate: reference row %s has cpu_time <= 0: "
                       "FAIL" % ref]
    paired = load_paired_ratio(doc, row)
    ratio = paired if paired is not None else times[row] / times[ref]
    how = ("paired-median stamp" if paired is not None
           else "%.1fns / %.1fns" % (times[row], times[ref]))
    ok = ratio <= 1.0 + max_overhead
    lines = ["overhead gate: %s vs %s = %.3f (%s, limit %.3f): %s" %
             (row, ref, ratio, how, 1.0 + max_overhead,
              "ok" if ok else "FAIL")]
    return ok, lines


def self_test(baseline, rows, max_regress, calibrate,
              overhead_row=None, overhead_ref=None, max_overhead=0.10):
    """The comparator must pass an identical copy and fail a hand-slowed one."""
    same = copy.deepcopy(baseline)
    ok_same, lines = compare(baseline, same, rows, max_regress, calibrate)
    if not ok_same:
        print("\n".join(lines), file=sys.stderr)
        print("self-test FAILED: identical run did not pass", file=sys.stderr)
        return False

    slowed = copy.deepcopy(baseline)
    target = rows[0]
    hit = False
    for row in slowed.get("benchmarks", []):
        if row.get("run_name", row.get("name", "")) == target:
            row["cpu_time"] = row["cpu_time"] * (1.0 + 2 * max_regress)
            hit = True
    if not hit:
        print("self-test FAILED: pinned row %s absent from baseline" % target,
              file=sys.stderr)
        return False
    ok_slowed, _ = compare(baseline, slowed, rows, max_regress, calibrate)
    if ok_slowed:
        print("self-test FAILED: +%d%% hand-slowed row passed the gate" %
              round(200 * max_regress), file=sys.stderr)
        return False

    # When the baseline stamps per-row config, flipping one stamp must be
    # refused even with identical cpu_times.
    if target in load_row_configs(baseline):
        flipped = copy.deepcopy(baseline)
        for row in flipped.get("benchmarks", []):
            if row.get("run_name", row.get("name", "")) == target:
                for key in _ROW_CONFIG_KEYS:
                    if key in row:
                        row[key] = str(row[key]) + "-flipped"
        ok_flipped, _ = compare(baseline, flipped, rows, max_regress,
                                calibrate)
        if ok_flipped:
            print("self-test FAILED: unlike-config row passed the gate",
                  file=sys.stderr)
            return False
        extra = ", unlike-config row rejected"
    else:
        extra = ""

    # The overhead comparator must pass the recorded ratio and fail a
    # hand-inflated one (the baseline is only committed when the ratio
    # gate holds, so the recorded rows must satisfy it).
    if overhead_row is not None and overhead_ref is not None:
        ok_over, lines = check_overhead(baseline, overhead_row, overhead_ref,
                                        max_overhead)
        if not ok_over:
            print("\n".join(lines), file=sys.stderr)
            print("self-test FAILED: committed baseline violates the "
                  "overhead gate", file=sys.stderr)
            return False
        inflated = copy.deepcopy(baseline)
        for row in inflated.get("benchmarks", []):
            if row.get("run_name", row.get("name", "")) == overhead_row:
                row["cpu_time"] = row["cpu_time"] * (1.0 + 3 * max_overhead)
                if "overhead_vs_direct" in row:
                    row["overhead_vs_direct"] = (
                        row["overhead_vs_direct"] * (1.0 + 3 * max_overhead))
        ok_inflated, _ = check_overhead(inflated, overhead_row, overhead_ref,
                                        max_overhead)
        if ok_inflated:
            print("self-test FAILED: hand-inflated overhead row passed",
                  file=sys.stderr)
            return False
        extra += ", inflated overhead row rejected"

    print("self-test passed: identical run ok, hand-slowed row rejected%s"
          % extra)
    return True


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current")
    ap.add_argument("--max-regress", type=float, default=0.15)
    ap.add_argument("--preset", choices=sorted(PRESETS),
                    help="row/calibration bundle: 'micro' for "
                         "BENCH_micro.json, 'serve' for BENCH_serve.json; "
                         "explicit --rows/--calibrate override it")
    ap.add_argument("--rows", nargs="+", default=None)
    ap.add_argument("--calibrate", default=None, metavar="ROW",
                    help="normalize both sides by this row's cpu_time to "
                         "cancel host single-core speed (CI uses "
                         "BM_DegreeEncode / BM_ServeCalibrate)")
    ap.add_argument("--overhead-row", default=None, metavar="ROW",
                    help="within-file gate: this row's cpu_time must stay "
                         "within --max-overhead of --overhead-ref (CI pins "
                         "BM_ServeSmokeMixedRouted/1 vs BM_ServeSmokeMixed)")
    ap.add_argument("--overhead-ref", default=None, metavar="ROW")
    ap.add_argument("--max-overhead", type=float, default=0.10)
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if (args.overhead_row is None) != (args.overhead_ref is None):
        ap.error("--overhead-row and --overhead-ref go together")
    preset_rows, preset_cal = PRESETS[args.preset or "micro"]
    if args.rows is None:
        args.rows = preset_rows
    if args.calibrate is None and args.preset is not None:
        args.calibrate = preset_cal

    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.self_test:
        sys.exit(0 if self_test(baseline, args.rows, args.max_regress,
                                args.calibrate, args.overhead_row,
                                args.overhead_ref, args.max_overhead) else 1)

    if not args.current:
        ap.error("--current is required unless --self-test")
    with open(args.current) as f:
        current = json.load(f)

    ok, lines = compare(baseline, current, args.rows, args.max_regress,
                        args.calibrate)
    if args.overhead_row is not None:
        over_ok, over_lines = check_overhead(current, args.overhead_row,
                                             args.overhead_ref,
                                             args.max_overhead)
        ok = ok and over_ok
        lines.extend(over_lines)
    print("\n".join(lines))
    if not ok:
        print("\nbench regression gate FAILED (threshold +%d%% cpu_time)" %
              round(args.max_regress * 100), file=sys.stderr)
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
