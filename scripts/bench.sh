#!/usr/bin/env bash
# Builds Release and snapshots the substrate microbenchmarks to
# BENCH_micro.json at the repo root. Future perf PRs diff against this file
# to prove hot-path regressions/improvements (see DESIGN.md §4).
#
# Usage: scripts/bench.sh [build-dir]   (default: build-bench)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target bench_micro_substrate

"${build_dir}/bench_micro_substrate" \
  --benchmark_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  > "${repo_root}/BENCH_micro.json"

echo "wrote ${repo_root}/BENCH_micro.json"
