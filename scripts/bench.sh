#!/usr/bin/env bash
# Builds Release and snapshots the substrate microbenchmarks to
# BENCH_micro.json at the repo root. Future perf PRs diff against this file
# to prove hot-path regressions/improvements (see DESIGN.md §4).
#
# The *Threads benchmarks size the runtime/ pool themselves per Arg, so a
# single run records the threads=1 vs threads=N row pairs
# (BM_SlimTrainStepThreads/{1,2,4}, BM_ChronoReplayThreads/{1,4},
# BM_FeatureReplayBulkThreads/{1,4},
# BM_NeighborMemoryObserveBulkThreads/{1,4}) that gate the parallel layer.
# CI re-runs the pinned rows on every push and diffs cpu_time against the
# committed snapshot via scripts/check_bench_regression.py.
#
# Kernel backends (DESIGN.md §6): the committed snapshot is pinned to
# SPLASH_KERNEL=scalar so the regression history stays comparable across
# hosts and PRs (the scalar backend is the reference codegen). When the
# host supports the AVX2/FMA or AVX-512 backend, filtered side-runs record
# their cpu_times for the pinned kernel rows and embed them (plus the
# speedup ratios) side-by-side in the JSON context — the perf trajectory of
# the SIMD layer without forking the baseline. The binary itself stamps
# kernel_backend + cpu_features + cache_topology into the context: the
# packed-GEMM rows (BM_MatMulPacked*) size their k-blocks from the
# detected L2, so a snapshot is only comparable against one recorded on a
# like cache hierarchy (check_bench_regression.py treats cache_topology as
# a config key and refuses unlike comparisons).
#
# Usage: scripts/bench.sh [build-dir]   (default: build-bench)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"

# SPLASH_NATIVE=OFF so the committed snapshot and the CI regression job
# (which must build portably for heterogeneous runners) compare the same
# codegen; local -march=native explorations can pass a different build dir.
cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
  -DSPLASH_NATIVE=OFF
cmake --build "${build_dir}" -j "$(nproc)" --target bench_micro_substrate

# Non-sweep rows are pinned to one thread so the committed baseline is
# host-concurrency-independent; the *Threads sweeps size the pool
# themselves per Arg and ignore this. The host core count and the pinned
# SPLASH_THREADS are recorded in the JSON context (google-benchmark's
# num_cpus reports what the process sees, which on capped CI runners is
# not the comparison-relevant physical count) so rows stay comparable
# across hosts. The git SHA + dirty flag make every committed snapshot
# traceable to the exact tree it was recorded from.
git_sha="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)"
git_dirty=0
if ! git -C "${repo_root}" diff --quiet HEAD 2>/dev/null; then
  git_dirty=1
fi
splash_threads="${SPLASH_THREADS:-1}"
splash_kernel="${SPLASH_KERNEL:-scalar}"
SPLASH_THREADS="${splash_threads}" SPLASH_KERNEL="${splash_kernel}" \
  "${build_dir}/bench_micro_substrate" \
  --benchmark_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_context=host_cores="$(nproc)" \
  --benchmark_context=splash_threads="${splash_threads}" \
  --benchmark_context=git_sha="${git_sha}" \
  --benchmark_context=git_dirty="${git_dirty}" \
  > "${repo_root}/BENCH_micro.json"

# Side-by-side SIMD captures: when the snapshot above is the scalar
# baseline and the host can run a SIMD backend, rerun the pinned kernel
# rows under it and fold their cpu_times + speedups into the context under
# avx2_*/avx512_* keys. The binary stamps the backend the dispatcher
# actually resolved, so a host without the ISA (silent fallback) skips the
# fold instead of poisoning the artifact.
for side_kernel in avx2 avx512; do
  side_json="${build_dir}/bench_${side_kernel}_side.json"
  if [ "${splash_kernel}" = scalar ]; then
    SPLASH_THREADS="${splash_threads}" SPLASH_KERNEL="${side_kernel}" \
      "${build_dir}/bench_micro_substrate" \
      --benchmark_filter='BM_MatMul/|BM_MatMulPacked/|BM_MatMulPacked16/|BM_MatMulTransA/|BM_MatMulTransB/|BM_SlimForwardFused/|BM_SlimTrainStepThreads/1' \
      --benchmark_format=json \
      --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=true \
      > "${side_json}" 2>/dev/null || true
    python3 - "${repo_root}/BENCH_micro.json" "${side_json}" "${side_kernel}" <<'EOF'
import json, sys
base_path, side_path, kernel = sys.argv[1], sys.argv[2], sys.argv[3]
try:
    with open(side_path) as f:
        side = json.load(f)
except (OSError, ValueError):
    sys.exit(0)
if side.get("context", {}).get("kernel_backend") != kernel:
    sys.exit(0)  # dispatcher fell back: host cannot run this backend
with open(base_path) as f:
    base = json.load(f)
def means(doc):
    out = {}
    for row in doc.get("benchmarks", []):
        if row.get("aggregate_name") == "mean":
            out[row.get("run_name", "")] = row.get("cpu_time", 0.0)
    return out
b, a = means(base), means(side)
ctx = base.setdefault("context", {})
for name, t in sorted(a.items()):
    ctx["%s_cpu_ns %s" % (kernel, name)] = "%.1f" % t
    if name in b and t > 0:
        ctx["%s_speedup %s" % (kernel, name)] = "%.2f" % (b[name] / t)
# Derived packed-vs-unpacked ratio within this backend's side-run (same
# run, same host): the B-exceeds-L2 shape is the packed tier's headline
# win, and CI gates the committed stamp at >= 1.5x for avx512
# (check_bench_regression.py --context-speedup).
for shape in ("32/2048/1024",):
    unpacked = a.get("BM_MatMul/%s" % shape)
    packed = a.get("BM_MatMulPacked/%s" % shape)
    if unpacked and packed and packed > 0:
        ctx["%s_packed_speedup BM_MatMulPacked/%s" % (kernel, shape)] = (
            "%.2f" % (unpacked / packed))
with open(base_path, "w") as f:
    json.dump(base, f, indent=1)
    f.write("\n")
EOF
  fi
done

# Sanity: the thread-sweep row pairs and the pinned kernel rows must be
# present, or a gate has silently vanished from the snapshot.
for row in "BM_SlimTrainStepThreads/1" "BM_SlimTrainStepThreads/4" \
           "BM_ChronoReplayThreads/1" "BM_ChronoReplayThreads/4" \
           "BM_FeatureReplayBulkThreads/1" "BM_FeatureReplayBulkThreads/4" \
           "BM_MatMul/256/48/64" "BM_MatMul/2560/48/64" \
           "BM_MatMul/32/2048/1024" \
           "BM_MatMulPacked/2560/48/64" "BM_MatMulPacked/1/1024/64" \
           "BM_MatMulPacked/32/2048/1024" "BM_MatMulPacked16/32/2048/1024" \
           "BM_MatMulTransA/256/128/64" "BM_MatMulTransB/256/64/128" \
           "BM_SlimForwardFused/256" "BM_SlimForwardFused/wide_b1"; do
  if ! grep -q "\"${row}" "${repo_root}/BENCH_micro.json"; then
    echo "ERROR: ${row} missing from BENCH_micro.json" >&2
    exit 1
  fi
done

echo "wrote ${repo_root}/BENCH_micro.json (kernel_backend=${splash_kernel}," \
     "incl. threads=1 vs N pairs and the avx2/avx512 side-run context when" \
     "available)"
