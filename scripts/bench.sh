#!/usr/bin/env bash
# Builds Release and snapshots the substrate microbenchmarks to
# BENCH_micro.json at the repo root. Future perf PRs diff against this file
# to prove hot-path regressions/improvements (see DESIGN.md §4).
#
# The *Threads benchmarks size the runtime/ pool themselves per Arg, so a
# single run records the threads=1 vs threads=N row pairs
# (BM_SlimTrainStepThreads/{1,2,4}, BM_ChronoReplayThreads/{1,4},
# BM_FeatureReplayBulkThreads/{1,4},
# BM_NeighborMemoryObserveBulkThreads/{1,4}) that gate the parallel layer.
# CI re-runs the pinned rows on every push and diffs cpu_time against the
# committed snapshot via scripts/check_bench_regression.py.
#
# Usage: scripts/bench.sh [build-dir]   (default: build-bench)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"

# SPLASH_NATIVE=OFF so the committed snapshot and the CI regression job
# (which must build portably for heterogeneous runners) compare the same
# codegen; local -march=native explorations can pass a different build dir.
cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
  -DSPLASH_NATIVE=OFF
cmake --build "${build_dir}" -j "$(nproc)" --target bench_micro_substrate

# Non-sweep rows are pinned to one thread so the committed baseline is
# host-concurrency-independent; the *Threads sweeps size the pool
# themselves per Arg and ignore this. The host core count and the pinned
# SPLASH_THREADS are recorded in the JSON context (google-benchmark's
# num_cpus reports what the process sees, which on capped CI runners is
# not the comparison-relevant physical count) so rows stay comparable
# across hosts. The git SHA + dirty flag make every committed snapshot
# traceable to the exact tree it was recorded from.
git_sha="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)"
git_dirty=0
if ! git -C "${repo_root}" diff --quiet HEAD 2>/dev/null; then
  git_dirty=1
fi
splash_threads="${SPLASH_THREADS:-1}"
SPLASH_THREADS="${splash_threads}" "${build_dir}/bench_micro_substrate" \
  --benchmark_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_context=host_cores="$(nproc)" \
  --benchmark_context=splash_threads="${splash_threads}" \
  --benchmark_context=git_sha="${git_sha}" \
  --benchmark_context=git_dirty="${git_dirty}" \
  > "${repo_root}/BENCH_micro.json"

# Sanity: the thread-sweep row pairs must be present, or the scaling gate
# has silently vanished from the snapshot.
for row in "BM_SlimTrainStepThreads/1" "BM_SlimTrainStepThreads/4" \
           "BM_ChronoReplayThreads/1" "BM_ChronoReplayThreads/4" \
           "BM_FeatureReplayBulkThreads/1" "BM_FeatureReplayBulkThreads/4"; do
  if ! grep -q "\"${row}" "${repo_root}/BENCH_micro.json"; then
    echo "ERROR: ${row} missing from BENCH_micro.json" >&2
    exit 1
  fi
done

echo "wrote ${repo_root}/BENCH_micro.json (incl. threads=1 vs N row pairs)"
