#!/usr/bin/env bash
# Builds Release and snapshots the serving-layer load sweep to
# BENCH_serve.json at the repo root: closed-loop ingest:query mixes
# (90/50/10), an open-loop paced-latency row, and the pinned CI smoke row
# (BM_ServeSmokeMixed) plus the ALU calibration row (BM_ServeCalibrate)
# that scripts/check_bench_regression.py uses to cancel host speed.
#
# CI re-runs only the smoke row (bench_serve_load --smoke) on every push
# and diffs its cpu_time against this snapshot (see DESIGN.md §5).
#
# Usage: scripts/serve_load.sh [build-dir]   (default: build-bench)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"

# SPLASH_NATIVE=OFF for the same reason as bench.sh: the committed
# snapshot and the CI job must compare identical codegen.
cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
  -DSPLASH_NATIVE=OFF
cmake --build "${build_dir}" -j "$(nproc)" --target bench_serve_load

# Traceability context: the exact commit (and whether the tree was dirty)
# this snapshot was recorded from.
git_sha="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)"
git_dirty=0
if ! git -C "${repo_root}" diff --quiet HEAD 2>/dev/null; then
  git_dirty=1
fi

splash_threads="${SPLASH_THREADS:-1}"
SPLASH_THREADS="${splash_threads}" "${build_dir}/bench_serve_load" \
  --json "${repo_root}/BENCH_serve.json" \
  --context host_cores="$(nproc)" \
  --context splash_threads="${splash_threads}" \
  --context git_sha="${git_sha}" \
  --context git_dirty="${git_dirty}"

# Sanity: the gate rows must be present, or the serve regression gate has
# silently vanished from the snapshot.
for row in "BM_ServeSmokeMixed" "BM_ServeCalibrate"; do
  if ! grep -q "\"${row}\"" "${repo_root}/BENCH_serve.json"; then
    echo "ERROR: ${row} missing from BENCH_serve.json" >&2
    exit 1
  fi
done

echo "wrote ${repo_root}/BENCH_serve.json (incl. the pinned smoke gate row)"
