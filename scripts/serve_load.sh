#!/usr/bin/env bash
# Builds Release and snapshots the serving-layer load sweep to
# BENCH_serve.json at the repo root: closed-loop ingest:query mixes
# (90/50/10), an open-loop paced-latency row, the sharded-router rows
# (BM_ServeSmokeMixedRouted/1 gate + BM_ServeShards/{1,2,4} sweep), and the
# pinned CI smoke row (BM_ServeSmokeMixed) plus the ALU calibration row
# (BM_ServeCalibrate) that scripts/check_bench_regression.py uses to
# cancel host speed.
#
# CI re-runs only the smoke row (bench_serve_load --smoke) on every push
# and diffs its cpu_time against this snapshot (see DESIGN.md §5).
#
# Usage: scripts/serve_load.sh [build-dir]   (default: build-bench)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"

# SPLASH_NATIVE=OFF for the same reason as bench.sh: the committed
# snapshot and the CI job must compare identical codegen.
cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
  -DSPLASH_NATIVE=OFF
cmake --build "${build_dir}" -j "$(nproc)" --target bench_serve_load

# Traceability context: the exact commit (and whether the tree was dirty)
# this snapshot was recorded from.
git_sha="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)"
git_dirty=0
if ! git -C "${repo_root}" diff --quiet HEAD 2>/dev/null; then
  git_dirty=1
fi

# Pinned to the scalar kernel backend for the same like-for-like reason as
# bench.sh: CI re-runs the smoke row with SPLASH_KERNEL=scalar.
splash_threads="${SPLASH_THREADS:-1}"
splash_kernel="${SPLASH_KERNEL:-scalar}"
SPLASH_THREADS="${splash_threads}" SPLASH_KERNEL="${splash_kernel}" \
  "${build_dir}/bench_serve_load" \
  --wal batch \
  --json "${repo_root}/BENCH_serve.json" \
  --context host_cores="$(nproc)" \
  --context splash_threads="${splash_threads}" \
  --context kernel_backend="${splash_kernel}" \
  --context git_sha="${git_sha}" \
  --context git_dirty="${git_dirty}"

# Side-by-side SIMD captures (mirrors scripts/bench.sh): when the snapshot
# above is the scalar baseline, rerun the pinned smoke row under each SIMD
# backend and fold its cpu_time + speedup into the context — the committed
# artifact for the SIMD layer's effect on the serve path. The per-row
# kernel_backend stamp (what the dispatcher actually resolved) guards the
# fold: a host without the ISA silently falls back, and folding that run
# as "avx512" would poison the artifact.
for side_kernel in avx2 avx512; do
  side_json="${build_dir}/serve_${side_kernel}_side.json"
  if [ "${splash_kernel}" = scalar ]; then
    SPLASH_THREADS="${splash_threads}" SPLASH_KERNEL="${side_kernel}" \
      "${build_dir}/bench_serve_load" --smoke \
      --json "${side_json}" \
      --context kernel_backend="${side_kernel}" 2>/dev/null || true
    python3 - "${repo_root}/BENCH_serve.json" "${side_json}" "${side_kernel}" <<'EOF'
import json, sys
base_path, side_path, kernel = sys.argv[1], sys.argv[2], sys.argv[3]
try:
    with open(side_path) as f:
        side = json.load(f)
except (OSError, ValueError):
    sys.exit(0)
def row(doc, name):
    for r in doc.get("benchmarks", []):
        if r.get("name") == name:
            return r
    return {}
smoke = row(side, "BM_ServeSmokeMixed")
t = smoke.get("cpu_time", 0.0)
# Dispatch guard: the binary stamps the backend that actually ran.
if t <= 0 or smoke.get("kernel_backend", kernel) != kernel:
    sys.exit(0)
with open(base_path) as f:
    base = json.load(f)
b = row(base, "BM_ServeSmokeMixed").get("cpu_time", 0.0)
ctx = base.setdefault("context", {})
ctx["%s_cpu_ns BM_ServeSmokeMixed" % kernel] = "%.1f" % t
if b > 0:
    ctx["%s_speedup BM_ServeSmokeMixed" % kernel] = "%.2f" % (b / t)
# Read-path coalescing speedup on this backend: the wide-model 16-reader
# coalesced row vs its per-query twin (DESIGN.md §5b).
per = row(side, "BM_PredictPerQuery/16").get("cpu_time", 0.0)
coal = row(side, "BM_PredictCoalesced/16").get("cpu_time", 0.0)
if per > 0 and coal > 0:
    ctx["%s_coalesce_speedup16" % kernel] = "%.2f" % (per / coal)
with open(base_path, "w") as f:
    json.dump(base, f, indent=1)
    f.write("\n")
EOF
  fi
done

# Sanity: the gate rows must be present, or the serve regression gate has
# silently vanished from the snapshot.
for row in "BM_ServeSmokeMixed" "BM_ServeSmokeMixedRouted/1" \
           "BM_ServeCalibrate"; do
  if ! grep -q "\"${row}\"" "${repo_root}/BENCH_serve.json"; then
    echo "ERROR: ${row} missing from BENCH_serve.json" >&2
    exit 1
  fi
done

# The routed S=1 row must sit within the router-overhead bound the CI gate
# enforces, or the snapshot would be born failing its own gate.
python3 "${repo_root}/scripts/check_bench_regression.py" \
  --baseline "${repo_root}/BENCH_serve.json" --self-test --preset serve \
  --overhead-row "BM_ServeSmokeMixedRouted/1" \
  --overhead-ref "BM_ServeSmokeMixed" --max-overhead 0.10

echo "wrote ${repo_root}/BENCH_serve.json (incl. the pinned smoke gate row)"
