// Copyright 2026 The SPLASH Reproduction Authors.
//
// The AVX2/FMA kernel backend (DESIGN.md §6). This translation unit is the
// ONLY one compiled with -mavx2 -mfma (set per-source in CMakeLists.txt);
// nothing here runs unless the runtime dispatcher checked cpuid first, so
// the rest of the binary stays portable baseline codegen.
//
// Register tiling:
//   - MatMul / fused epilogue: 6x16 output tiles (12 ymm accumulators, the
//     two b-panel vectors and one broadcast fill out the 15 usable regs),
//     8-wide and masked column tails, 1-row kernels for the row remainder.
//   - MatMulTransB: 4-wide horizontal-add dot tiles — four 8-lane
//     accumulators reduced with the hadd/extract transpose.
//   - MatMulTransA: broadcast-FMA rank-1 updates, vectorized over the
//     output row with masked tails, keeping the ascending reduction-row
//     order so serial and output-partitioned calls stay bit-identical.
//
// Masked tails (_mm256_maskload/maskstore) mean no kernel ever reads or
// writes past a row's [0, cols) payload — bias vectors and unpadded
// operands are safe, and ASan stays quiet. Padded rows (ResizePadded)
// still help: every row start is 64-byte aligned and the steady 16-wide
// loop covers whole rows without entering the tail code.
//
// Accumulation within one output element is 8-lane partial sums, so this
// backend is tolerance-equivalent to scalar (simd_kernels_test), never
// bit-equal — determinism oracles pin SPLASH_KERNEL=scalar.

#include "tensor/matrix.h"
#include "tensor/packed.h"
#include "tensor/simd.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cassert>
#include <cmath>
#include <cstring>

namespace splash {

namespace {

/// Load mask covering the first `rem` (1..7) lanes of a ymm.
inline __m256i TailMask(size_t rem) {
  alignas(32) static const int32_t kMaskSrc[16] = {-1, -1, -1, -1, -1, -1,
                                                   -1, -1, 0,  0,  0,  0,
                                                   0,  0,  0,  0};
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskSrc + 8 - rem));
}

inline float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

// ---------------------------------------------------------------------------
// MatMul (c = a * b) with optional accumulate / fused bias+ReLU epilogue.
// ---------------------------------------------------------------------------

/// Finishes one 8-lane vector of output: optional += c, + bias, ReLU.
inline __m256 Epilogue8(__m256 acc, const float* crow, const float* bias,
                        size_t j, bool accumulate, bool relu) {
  if (accumulate) acc = _mm256_add_ps(acc, _mm256_loadu_ps(crow + j));
  if (bias != nullptr) acc = _mm256_add_ps(acc, _mm256_loadu_ps(bias + j));
  if (relu) acc = _mm256_max_ps(acc, _mm256_setzero_ps());
  return acc;
}

/// 6-row x 16-col micro-kernel over the full reduction, then epilogue.
template <int R>
inline void MicroKernel16(const float* const* arows, const Matrix& b,
                          float* const* crows, size_t j, size_t k,
                          const float* bias, bool accumulate, bool relu) {
  __m256 acc[R][2];
  for (int r = 0; r < R; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const float* brow = b.Row(kk) + j;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    for (int r = 0; r < R; ++r) {
      const __m256 av = _mm256_broadcast_ss(arows[r] + kk);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < R; ++r) {
    _mm256_storeu_ps(
        crows[r] + j,
        Epilogue8(acc[r][0], crows[r], bias, j, accumulate, relu));
    _mm256_storeu_ps(
        crows[r] + j + 8,
        Epilogue8(acc[r][1], crows[r], bias, j + 8, accumulate, relu));
  }
}

/// 8-wide column panel for R rows.
template <int R>
inline void MicroKernel8(const float* const* arows, const Matrix& b,
                         float* const* crows, size_t j, size_t k,
                         const float* bias, bool accumulate, bool relu) {
  __m256 acc[R];
  for (int r = 0; r < R; ++r) acc[r] = _mm256_setzero_ps();
  for (size_t kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(b.Row(kk) + j);
    for (int r = 0; r < R; ++r) {
      acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(arows[r] + kk), b0,
                               acc[r]);
    }
  }
  for (int r = 0; r < R; ++r) {
    _mm256_storeu_ps(crows[r] + j,
                     Epilogue8(acc[r], crows[r], bias, j, accumulate, relu));
  }
}

/// Masked (<8 wide) column tail for R rows.
template <int R>
inline void MicroKernelTail(const float* const* arows, const Matrix& b,
                            float* const* crows, size_t j, size_t rem,
                            size_t k, const float* bias, bool accumulate,
                            bool relu) {
  const __m256i mask = TailMask(rem);
  __m256 acc[R];
  for (int r = 0; r < R; ++r) acc[r] = _mm256_setzero_ps();
  for (size_t kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_maskload_ps(b.Row(kk) + j, mask);
    for (int r = 0; r < R; ++r) {
      acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(arows[r] + kk), b0,
                               acc[r]);
    }
  }
  const __m256 bias_v = bias != nullptr ? _mm256_maskload_ps(bias + j, mask)
                                        : _mm256_setzero_ps();
  for (int r = 0; r < R; ++r) {
    __m256 v = acc[r];
    if (accumulate) {
      v = _mm256_add_ps(v, _mm256_maskload_ps(crows[r] + j, mask));
    }
    v = _mm256_add_ps(v, bias_v);
    if (relu) v = _mm256_max_ps(v, _mm256_setzero_ps());
    _mm256_maskstore_ps(crows[r] + j, mask, v);
  }
}

template <int R>
inline void MatMulRowBlock(const float* const* arows, const Matrix& b,
                           float* const* crows, size_t n, size_t k,
                           const float* bias, bool accumulate, bool relu) {
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    MicroKernel16<R>(arows, b, crows, j, k, bias, accumulate, relu);
  }
  if (j + 8 <= n) {
    MicroKernel8<R>(arows, b, crows, j, k, bias, accumulate, relu);
    j += 8;
  }
  if (j < n) {
    MicroKernelTail<R>(arows, b, crows, j, n - j, k, bias, accumulate, relu);
  }
}

void Avx2MatMulEpilogueRange(const Matrix& a, const Matrix& b, Matrix* c,
                             size_t r0, size_t r1, bool accumulate,
                             const float* bias, bool relu) {
  const size_t k = a.cols(), n = b.cols();
  assert(b.rows() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(r0 <= r1 && r1 <= a.rows());
  const float* arows[6];
  float* crows[6];
  size_t i = r0;
  for (; i + 6 <= r1; i += 6) {
    for (int r = 0; r < 6; ++r) {
      arows[r] = a.Row(i + r);
      crows[r] = c->Row(i + r);
    }
    MatMulRowBlock<6>(arows, b, crows, n, k, bias, accumulate, relu);
  }
  // Row tail as ONE multi-row pass: each pass re-streams all of b, so
  // per-row tail handling costs ~rem full B streams when b exceeds cache.
  // Per-row FMA order matches the 6-row block, so results are identical.
  if (i < r1) {
    const size_t rem = r1 - i;
    for (size_t r = 0; r < rem; ++r) {
      arows[r] = a.Row(i + r);
      crows[r] = c->Row(i + r);
    }
    switch (rem) {
      case 1: MatMulRowBlock<1>(arows, b, crows, n, k, bias, accumulate, relu); break;
      case 2: MatMulRowBlock<2>(arows, b, crows, n, k, bias, accumulate, relu); break;
      case 3: MatMulRowBlock<3>(arows, b, crows, n, k, bias, accumulate, relu); break;
      case 4: MatMulRowBlock<4>(arows, b, crows, n, k, bias, accumulate, relu); break;
      default: MatMulRowBlock<5>(arows, b, crows, n, k, bias, accumulate, relu); break;
    }
  }
}

void Avx2MatMulRange(const Matrix& a, const Matrix& b, Matrix* c, size_t r0,
                     size_t r1, bool accumulate) {
  Avx2MatMulEpilogueRange(a, b, c, r0, r1, accumulate, nullptr, false);
}

void Avx2MatMulBiasActRange(const Matrix& a, const Matrix& b, Matrix* c,
                            size_t r0, size_t r1, const float* bias,
                            bool relu) {
  Avx2MatMulEpilogueRange(a, b, c, r0, r1, /*accumulate=*/false, bias, relu);
}

// ---------------------------------------------------------------------------
// Packed-B GEMM (tensor/packed.h): one 16-col panel is two ymm halves per
// row, so the 6-row block keeps the same 12-accumulator budget as
// MicroKernel16 — only the B addressing changes, from row-pitch strides to
// one contiguous cache line per reduction step.
//
// Per-element accumulation stays one ascending-k 8-lane FMA chain, so
// packed results are bit-identical to the unpacked kernels on this
// backend. Multi-k-block runs park fp32 partials in C (exact), which is
// only legal for accumulate=false; accumulate=true keeps the chain in
// registers across blocks (the FullK variants).
// ---------------------------------------------------------------------------

struct PackedLoadF32 {
  static __m256 Load(const float* p) { return _mm256_load_ps(p); }
};

struct PackedLoadBf16 {
  static __m256 Load(const uint16_t* p) {
    const __m128i raw = _mm_load_si128(reinterpret_cast<const __m128i*>(p));
    // Widening is exact: bf16 is the upper half of the fp32 bit pattern.
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(raw), 16));
  }
};

/// One full 16-col panel x R rows over one k-block; `first` starts the
/// chains at zero, otherwise they resume from the partials parked in C;
/// `last` applies the epilogue, otherwise raw partials are stored back.
template <int R, typename Loader, typename Packed>
inline void PackedPanelFull(const float* const* arows, const Packed& b,
                            size_t pb, size_t jp, float* const* crows,
                            bool first, bool last, bool accumulate,
                            const float* bias, bool relu) {
  const auto* p0 = b.Panel(pb, jp);
  const size_t j = jp * 16;
  const size_t k0 = b.BlockBegin(pb), kb = b.BlockRows(pb);
  __m256 acc[R][2];
  if (first) {
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    }
  } else {
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm256_loadu_ps(crows[r] + j);
      acc[r][1] = _mm256_loadu_ps(crows[r] + j + 8);
    }
  }
  for (size_t kk = 0; kk < kb; ++kk) {
    const __m256 b0 = Loader::Load(p0 + kk * 16);
    const __m256 b1 = Loader::Load(p0 + kk * 16 + 8);
    for (int r = 0; r < R; ++r) {
      const __m256 av = _mm256_broadcast_ss(arows[r] + k0 + kk);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  if (last) {
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_ps(
          crows[r] + j,
          Epilogue8(acc[r][0], crows[r], bias, j, accumulate, relu));
      _mm256_storeu_ps(
          crows[r] + j + 8,
          Epilogue8(acc[r][1], crows[r], bias, j + 8, accumulate, relu));
    }
  } else {
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_ps(crows[r] + j, acc[r][0]);
      _mm256_storeu_ps(crows[r] + j + 8, acc[r][1]);
    }
  }
}

/// Finishes one masked ymm of a ragged panel, mirroring MicroKernelTail
/// exactly (unconditional add of a maybe-zero bias vector).
inline void PackedTailStore(__m256 acc, float* crow, size_t j, __m256i mask,
                            const float* bias, bool accumulate, bool relu) {
  __m256 v = acc;
  if (accumulate) {
    v = _mm256_add_ps(v, _mm256_maskload_ps(crow + j, mask));
  }
  const __m256 bias_v = bias != nullptr ? _mm256_maskload_ps(bias + j, mask)
                                        : _mm256_setzero_ps();
  v = _mm256_add_ps(v, bias_v);
  if (relu) v = _mm256_max_ps(v, _mm256_setzero_ps());
  _mm256_maskstore_ps(crow + j, mask, v);
}

/// The ragged last panel (1..15 live cols). B loads stay full-width (the
/// panel is zero-padded, fma(a, 0, acc) == acc); C access is masked. A
/// live first half (rem >= 8) finishes through Epilogue8 like the
/// unpacked 8-wide kernel; masked halves mirror MicroKernelTail.
template <int R, typename Loader, typename Packed>
inline void PackedPanelRagged(const float* const* arows, const Packed& b,
                              size_t pb, size_t jp, size_t rem,
                              float* const* crows, bool first, bool last,
                              bool accumulate, const float* bias,
                              bool relu) {
  const auto* p0 = b.Panel(pb, jp);
  const size_t j = jp * 16;
  const size_t k0 = b.BlockBegin(pb), kb = b.BlockRows(pb);
  const bool full0 = rem >= 8;
  const size_t rem1 = rem > 8 ? rem - 8 : 0;
  const __m256i mask0 = full0 ? _mm256_set1_epi32(-1) : TailMask(rem);
  const __m256i mask1 =
      rem1 > 0 ? TailMask(rem1) : _mm256_setzero_si256();
  __m256 acc[R][2];
  if (first) {
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    }
  } else {
    for (int r = 0; r < R; ++r) {
      acc[r][0] = full0 ? _mm256_loadu_ps(crows[r] + j)
                        : _mm256_maskload_ps(crows[r] + j, mask0);
      acc[r][1] = rem1 > 0 ? _mm256_maskload_ps(crows[r] + j + 8, mask1)
                           : _mm256_setzero_ps();
    }
  }
  for (size_t kk = 0; kk < kb; ++kk) {
    const __m256 b0 = Loader::Load(p0 + kk * 16);
    const __m256 b1 = Loader::Load(p0 + kk * 16 + 8);
    for (int r = 0; r < R; ++r) {
      const __m256 av = _mm256_broadcast_ss(arows[r] + k0 + kk);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  if (last) {
    for (int r = 0; r < R; ++r) {
      if (full0) {
        _mm256_storeu_ps(
            crows[r] + j,
            Epilogue8(acc[r][0], crows[r], bias, j, accumulate, relu));
      } else {
        PackedTailStore(acc[r][0], crows[r], j, mask0, bias, accumulate,
                        relu);
      }
      if (rem1 > 0) {
        PackedTailStore(acc[r][1], crows[r], j + 8, mask1, bias, accumulate,
                        relu);
      }
    }
  } else {
    for (int r = 0; r < R; ++r) {
      if (full0) {
        _mm256_storeu_ps(crows[r] + j, acc[r][0]);
      } else {
        _mm256_maskstore_ps(crows[r] + j, mask0, acc[r][0]);
      }
      if (rem1 > 0) {
        _mm256_maskstore_ps(crows[r] + j + 8, mask1, acc[r][1]);
      }
    }
  }
}

/// All panels of one k-block for an R-row block of A.
template <int R, typename Loader, typename Packed>
inline void PackedRowBlock(const float* const* arows, const Packed& b,
                           float* const* crows, size_t pb, bool first,
                           bool last, bool accumulate, const float* bias,
                           bool relu) {
  const size_t n = b.n();
  const size_t full = n / 16;
  for (size_t jp = 0; jp < full; ++jp) {
    PackedPanelFull<R, Loader>(arows, b, pb, jp, crows, first, last,
                               accumulate, bias, relu);
  }
  if (full * 16 < n) {
    PackedPanelRagged<R, Loader>(arows, b, pb, full, n - full * 16, crows,
                                 first, last, accumulate, bias, relu);
  }
}

/// Register-resident full-reduction row block: the k-block loop runs
/// inside the accumulator lifetime, so C is never used as partial storage.
/// Used when accumulate=true (the original C must survive until the
/// epilogue) and for the k==0 edge (epilogue only).
template <int R, typename Loader, typename Packed>
inline void PackedRowBlockFullK(const float* const* arows, const Packed& b,
                                float* const* crows, bool accumulate,
                                const float* bias, bool relu) {
  const size_t n = b.n();
  const size_t nb = b.num_blocks();
  const size_t full = n / 16;
  for (size_t jp = 0; jp < full; ++jp) {
    const size_t j = jp * 16;
    __m256 acc[R][2];
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    }
    for (size_t pb = 0; pb < nb; ++pb) {
      const auto* p0 = b.Panel(pb, jp);
      const size_t k0 = b.BlockBegin(pb), kb = b.BlockRows(pb);
      for (size_t kk = 0; kk < kb; ++kk) {
        const __m256 b0 = Loader::Load(p0 + kk * 16);
        const __m256 b1 = Loader::Load(p0 + kk * 16 + 8);
        for (int r = 0; r < R; ++r) {
          const __m256 av = _mm256_broadcast_ss(arows[r] + k0 + kk);
          acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
          acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
      }
    }
    for (int r = 0; r < R; ++r) {
      _mm256_storeu_ps(
          crows[r] + j,
          Epilogue8(acc[r][0], crows[r], bias, j, accumulate, relu));
      _mm256_storeu_ps(
          crows[r] + j + 8,
          Epilogue8(acc[r][1], crows[r], bias, j + 8, accumulate, relu));
    }
  }
  if (full * 16 < n) {
    const size_t j = full * 16;
    const size_t rem = n - j;
    const bool full0 = rem >= 8;
    const size_t rem1 = rem > 8 ? rem - 8 : 0;
    const __m256i mask0 = full0 ? _mm256_set1_epi32(-1) : TailMask(rem);
    const __m256i mask1 =
        rem1 > 0 ? TailMask(rem1) : _mm256_setzero_si256();
    __m256 acc[R][2];
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    }
    for (size_t pb = 0; pb < nb; ++pb) {
      const auto* p0 = b.Panel(pb, full);
      const size_t k0 = b.BlockBegin(pb), kb = b.BlockRows(pb);
      for (size_t kk = 0; kk < kb; ++kk) {
        const __m256 b0 = Loader::Load(p0 + kk * 16);
        const __m256 b1 = Loader::Load(p0 + kk * 16 + 8);
        for (int r = 0; r < R; ++r) {
          const __m256 av = _mm256_broadcast_ss(arows[r] + k0 + kk);
          acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
          acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
        }
      }
    }
    for (int r = 0; r < R; ++r) {
      if (full0) {
        _mm256_storeu_ps(
            crows[r] + j,
            Epilogue8(acc[r][0], crows[r], bias, j, accumulate, relu));
      } else {
        PackedTailStore(acc[r][0], crows[r], j, mask0, bias, accumulate,
                        relu);
      }
      if (rem1 > 0) {
        PackedTailStore(acc[r][1], crows[r], j + 8, mask1, bias, accumulate,
                        relu);
      }
    }
  }
}

template <typename Loader, typename Packed>
void Avx2PackedEpilogueRange(const Matrix& a, const Packed& b, Matrix* c,
                             size_t r0, size_t r1, bool accumulate,
                             const float* bias, bool relu) {
  const size_t k = a.cols(), n = b.n();
  assert(b.k() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(r0 <= r1 && r1 <= a.rows());
  (void)k;
  if (n == 0 || r0 == r1) return;
  const size_t nb = b.num_blocks();
  const float* arows[6];
  float* crows[6];

  if (accumulate || nb == 0) {
    // Register-resident chains (see PackedRowBlockFullK).
    size_t i = r0;
    for (; i + 6 <= r1; i += 6) {
      for (int r = 0; r < 6; ++r) {
        arows[r] = a.Row(i + r);
        crows[r] = c->Row(i + r);
      }
      PackedRowBlockFullK<6, Loader>(arows, b, crows, accumulate, bias,
                                     relu);
    }
    if (i < r1) {
      const size_t rem = r1 - i;
      for (size_t r = 0; r < rem; ++r) {
        arows[r] = a.Row(i + r);
        crows[r] = c->Row(i + r);
      }
      switch (rem) {
        case 1: PackedRowBlockFullK<1, Loader>(arows, b, crows, accumulate, bias, relu); break;
        case 2: PackedRowBlockFullK<2, Loader>(arows, b, crows, accumulate, bias, relu); break;
        case 3: PackedRowBlockFullK<3, Loader>(arows, b, crows, accumulate, bias, relu); break;
        case 4: PackedRowBlockFullK<4, Loader>(arows, b, crows, accumulate, bias, relu); break;
        default: PackedRowBlockFullK<5, Loader>(arows, b, crows, accumulate, bias, relu); break;
      }
    }
    return;
  }

  // k-blocks outermost: one L2-sized block of packed B stays resident
  // while every row block of A streams against it; C carries the fp32
  // partials between blocks (exact store/reload — accumulate is false
  // here, so C has no prior value to preserve).
  for (size_t pb = 0; pb < nb; ++pb) {
    const bool first = pb == 0, last = pb + 1 == nb;
    size_t i = r0;
    for (; i + 6 <= r1; i += 6) {
      for (int r = 0; r < 6; ++r) {
        arows[r] = a.Row(i + r);
        crows[r] = c->Row(i + r);
      }
      PackedRowBlock<6, Loader>(arows, b, crows, pb, first, last,
                                /*accumulate=*/false, bias, relu);
    }
    if (i < r1) {
      const size_t rem = r1 - i;
      for (size_t r = 0; r < rem; ++r) {
        arows[r] = a.Row(i + r);
        crows[r] = c->Row(i + r);
      }
      switch (rem) {
        case 1: PackedRowBlock<1, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
        case 2: PackedRowBlock<2, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
        case 3: PackedRowBlock<3, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
        case 4: PackedRowBlock<4, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
        default: PackedRowBlock<5, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
      }
    }
  }
}

void Avx2MatMulPackedRange(const Matrix& a, const PackedMatrix& b, Matrix* c,
                           size_t r0, size_t r1, bool accumulate) {
  Avx2PackedEpilogueRange<PackedLoadF32>(a, b, c, r0, r1, accumulate,
                                         nullptr, false);
}

void Avx2MatMulPackedBiasActRange(const Matrix& a, const PackedMatrix& b,
                                  Matrix* c, size_t r0, size_t r1,
                                  const float* bias, bool relu) {
  Avx2PackedEpilogueRange<PackedLoadF32>(a, b, c, r0, r1,
                                         /*accumulate=*/false, bias, relu);
}

void Avx2MatMulPacked16BiasActRange(const Matrix& a, const PackedMatrix16& b,
                                    Matrix* c, size_t r0, size_t r1,
                                    const float* bias, bool relu) {
  Avx2PackedEpilogueRange<PackedLoadBf16>(a, b, c, r0, r1,
                                          /*accumulate=*/false, bias, relu);
}

// ---------------------------------------------------------------------------
// MatMulTransB (c = a * b^T): 4-wide horizontal-add dot tiles.
// ---------------------------------------------------------------------------

/// dot(x, y) over k via one 8-lane FMA accumulator + masked tail.
inline __m256 DotAccum(const float* x, const float* y, size_t k) {
  __m256 acc = _mm256_setzero_ps();
  size_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk), _mm256_loadu_ps(y + kk),
                          acc);
  }
  if (kk < k) {
    const __m256i mask = TailMask(k - kk);
    acc = _mm256_fmadd_ps(_mm256_maskload_ps(x + kk, mask),
                          _mm256_maskload_ps(y + kk, mask), acc);
  }
  return acc;
}

void Avx2MatMulTransBRange(const Matrix& a, const Matrix& b, Matrix* c,
                           size_t r0, size_t r1, bool accumulate) {
  const size_t k = a.cols(), n = b.rows();
  assert(b.cols() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(r0 <= r1 && r1 <= a.rows());
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a.Row(i);
    float* crow = c->Row(i);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      // Four dot products at once; the hadd/extract transpose folds the
      // four 8-lane accumulators into one 4-float result vector.
      const __m256 d0 = DotAccum(arow, b.Row(j), k);
      const __m256 d1 = DotAccum(arow, b.Row(j + 1), k);
      const __m256 d2 = DotAccum(arow, b.Row(j + 2), k);
      const __m256 d3 = DotAccum(arow, b.Row(j + 3), k);
      const __m256 h01 = _mm256_hadd_ps(d0, d1);
      const __m256 h23 = _mm256_hadd_ps(d2, d3);
      const __m256 h = _mm256_hadd_ps(h01, h23);
      __m128 sum = _mm_add_ps(_mm256_castps256_ps128(h),
                              _mm256_extractf128_ps(h, 1));
      if (accumulate) sum = _mm_add_ps(sum, _mm_loadu_ps(crow + j));
      _mm_storeu_ps(crow + j, sum);
    }
    for (; j < n; ++j) {
      const float acc = HSum(DotAccum(arow, b.Row(j), k));
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

// ---------------------------------------------------------------------------
// MatMulTransA (c = a^T * b): broadcast-FMA rank-1 updates.
// ---------------------------------------------------------------------------

/// crow[0, n) += av * brow[0, n), vectorized with a masked tail.
inline void RankOneUpdate(float av, const float* brow, float* crow,
                          size_t n) {
  const __m256 av8 = _mm256_set1_ps(av);
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm256_storeu_ps(crow + j,
                     _mm256_fmadd_ps(av8, _mm256_loadu_ps(brow + j),
                                     _mm256_loadu_ps(crow + j)));
  }
  if (j < n) {
    const __m256i mask = TailMask(n - j);
    _mm256_maskstore_ps(crow + j, mask,
                        _mm256_fmadd_ps(av8,
                                        _mm256_maskload_ps(brow + j, mask),
                                        _mm256_maskload_ps(crow + j, mask)));
  }
}

void Avx2MatMulTransARange(const Matrix& a, const Matrix& b, Matrix* c,
                           size_t r_begin, size_t r_end) {
  const size_t m = a.cols(), n = b.cols();
  assert(b.rows() == a.rows());
  assert(c->rows() == m && c->cols() == n);
  assert(r_begin <= r_end && r_end <= a.rows());
  for (size_t rr = r_begin; rr < r_end; ++rr) {
    const float* arow = a.Row(rr);
    const float* brow = b.Row(rr);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;  // masked neighbor gradients are common
      RankOneUpdate(av, brow, c->Row(i), n);
    }
  }
}

void Avx2MatMulTransAOutputRange(const Matrix& a, const Matrix& b, Matrix* c,
                                 size_t i_begin, size_t i_end,
                                 bool accumulate) {
  const size_t r = a.rows(), n = b.cols();
  if (!accumulate) {
    for (size_t i = i_begin; i < i_end; ++i) {
      std::memset(c->Row(i), 0, n * sizeof(float));
    }
  }
  // rr stays the outer ascending loop so per-element accumulation order
  // matches Avx2MatMulTransARange exactly (bit-identical parallel runs).
  for (size_t rr = 0; rr < r; ++rr) {
    const float* arow = a.Row(rr);
    const float* brow = b.Row(rr);
    for (size_t i = i_begin; i < i_end; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      RankOneUpdate(av, brow, c->Row(i), n);
    }
  }
}

// ---------------------------------------------------------------------------
// Row/vector kernels.
// ---------------------------------------------------------------------------

void Avx2AddRowVector(Matrix* m, const float* bias) {
  const size_t rows = m->rows(), cols = m->cols();
  for (size_t i = 0; i < rows; ++i) {
    float* row = m->Row(i);
    size_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      _mm256_storeu_ps(row + j, _mm256_add_ps(_mm256_loadu_ps(row + j),
                                              _mm256_loadu_ps(bias + j)));
    }
    if (j < cols) {
      const __m256i mask = TailMask(cols - j);
      _mm256_maskstore_ps(row + j, mask,
                          _mm256_add_ps(_mm256_maskload_ps(row + j, mask),
                                        _mm256_maskload_ps(bias + j, mask)));
    }
  }
}

void Avx2ReluInPlace(Matrix* m) {
  const __m256 zero = _mm256_setzero_ps();
  const size_t rows = m->rows(), cols = m->cols();
  for (size_t i = 0; i < rows; ++i) {
    float* row = m->Row(i);
    size_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      _mm256_storeu_ps(row + j, _mm256_max_ps(_mm256_loadu_ps(row + j),
                                              zero));
    }
    for (; j < cols; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
  }
}

void Avx2Axpy(float alpha, const float* x, float* y, size_t n) {
  const __m256 a8 = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(a8, _mm256_loadu_ps(x + i),
                                            _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void Avx2ColumnSumsRange(const Matrix& m, float* out, size_t row_begin,
                         size_t row_end, bool accumulate) {
  const size_t cols = m.cols();
  if (!accumulate) std::memset(out, 0, cols * sizeof(float));
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* row = m.Row(i);
    size_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      _mm256_storeu_ps(out + j, _mm256_add_ps(_mm256_loadu_ps(out + j),
                                              _mm256_loadu_ps(row + j)));
    }
    for (; j < cols; ++j) out[j] += row[j];
  }
}

void Avx2AdamUpdate(float* w, const float* g, float* m, float* v, size_t n,
                    float step, float beta1, float beta2, float eps) {
  const __m256 b1 = _mm256_set1_ps(beta1);
  const __m256 omb1 = _mm256_set1_ps(1.0f - beta1);
  const __m256 b2 = _mm256_set1_ps(beta2);
  const __m256 omb2 = _mm256_set1_ps(1.0f - beta2);
  const __m256 step8 = _mm256_set1_ps(step);
  const __m256 eps8 = _mm256_set1_ps(eps);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 g8 = _mm256_loadu_ps(g + i);
    const __m256 m8 =
        _mm256_fmadd_ps(b1, _mm256_loadu_ps(m + i), _mm256_mul_ps(omb1, g8));
    const __m256 v8 = _mm256_fmadd_ps(b2, _mm256_loadu_ps(v + i),
                                      _mm256_mul_ps(omb2,
                                                    _mm256_mul_ps(g8, g8)));
    _mm256_storeu_ps(m + i, m8);
    _mm256_storeu_ps(v + i, v8);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(v8), eps8);
    const __m256 upd = _mm256_div_ps(_mm256_mul_ps(step8, m8), denom);
    _mm256_storeu_ps(w + i, _mm256_sub_ps(_mm256_loadu_ps(w + i), upd));
  }
  for (; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
    v[i] = beta2 * v[i] + (1.0f - beta2) * g[i] * g[i];
    w[i] -= step * m[i] / (std::sqrt(v[i]) + eps);
  }
}

// ---------------------------------------------------------------------------
// 8-lane sincos: round-to-nearest quadrant reduction (two-term Cody-Waite,
// exact to float rounding for the |x| <~ 100 range the log-compressed
// degree/time encoders produce) + the cephes minimax polynomials on
// [-pi/4, pi/4] (~1e-7 absolute error). Quadrant fix-up:
//   n = round(x * 2/pi) mod 4;  r = x - n * pi/2
//   n=0: (sin r,  cos r)   n=1: (cos r, -sin r)
//   n=2: (-sin r, -cos r)  n=3: (-cos r,  sin r)
// i.e. swap when n is odd, negate sin when n in {2,3}, negate cos when
// n in {1,2}.
// ---------------------------------------------------------------------------
inline void Sincos8(__m256 x, __m256* s_out, __m256* c_out) {
  const __m256 kTwoOverPi = _mm256_set1_ps(0.63661977236758134f);
  const __m256 kPio2Hi = _mm256_set1_ps(1.57079601287841796875f);
  const __m256 kPio2Lo = _mm256_set1_ps(3.1391647326017846e-7f);
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);

  const __m256 xsign = _mm256_and_ps(x, sign_mask);
  const __m256 ax = _mm256_andnot_ps(sign_mask, x);

  const __m256 q = _mm256_round_ps(
      _mm256_mul_ps(ax, kTwoOverPi),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256i qi = _mm256_cvtps_epi32(q);
  __m256 r = _mm256_fnmadd_ps(q, kPio2Hi, ax);
  r = _mm256_fnmadd_ps(q, kPio2Lo, r);

  const __m256 z = _mm256_mul_ps(r, r);
  // sin(r) = r + r*z*((S0*z + S1)*z + S2)
  __m256 sp = _mm256_set1_ps(-1.9515295891e-4f);
  sp = _mm256_fmadd_ps(sp, z, _mm256_set1_ps(8.3321608736e-3f));
  sp = _mm256_fmadd_ps(sp, z, _mm256_set1_ps(-1.6666654611e-1f));
  sp = _mm256_fmadd_ps(_mm256_mul_ps(sp, z), r, r);
  // cos(r) = 1 - z/2 + z*z*((C0*z + C1)*z + C2)
  __m256 cp = _mm256_set1_ps(2.443315711809948e-5f);
  cp = _mm256_fmadd_ps(cp, z, _mm256_set1_ps(-1.388731625493765e-3f));
  cp = _mm256_fmadd_ps(cp, z, _mm256_set1_ps(4.166664568298827e-2f));
  cp = _mm256_mul_ps(cp, _mm256_mul_ps(z, z));
  cp = _mm256_fnmadd_ps(z, _mm256_set1_ps(0.5f), _mm256_add_ps(cp,
                        _mm256_set1_ps(1.0f)));

  const __m256i one = _mm256_set1_epi32(1);
  const __m256i two = _mm256_set1_epi32(2);
  const __m256 swap = _mm256_castsi256_ps(_mm256_cmpeq_epi32(
      _mm256_and_si256(qi, one), one));
  const __m256 sin_r = _mm256_blendv_ps(sp, cp, swap);
  const __m256 cos_r = _mm256_blendv_ps(cp, sp, swap);
  // Negate masks from quadrant bits: sign bit = (flag != 0) << 31.
  const __m256 sin_neg = _mm256_and_ps(
      _mm256_castsi256_ps(_mm256_cmpeq_epi32(_mm256_and_si256(qi, two), two)),
      sign_mask);
  const __m256 cos_neg = _mm256_and_ps(
      _mm256_castsi256_ps(_mm256_cmpeq_epi32(
          _mm256_and_si256(_mm256_add_epi32(qi, one), two), two)),
      sign_mask);
  // sin is odd in the input sign; cos is even.
  *s_out = _mm256_xor_ps(_mm256_xor_ps(sin_r, sin_neg), xsign);
  *c_out = _mm256_xor_ps(cos_r, cos_neg);
}

void Avx2SincosEncode(float x, float freq_decay, float* out, size_t dim) {
  const size_t pairs = dim / 2;
  // The frequency ladder replicates the scalar chained multiply exactly
  // (same float rounding per rung); only sin/cos themselves differ, by the
  // polynomial's ~1e-7.
  alignas(32) float angles[8];
  float freq = 1.0f;
  size_t p = 0;
  while (p < pairs) {
    const size_t chunk = pairs - p < 8 ? pairs - p : 8;
    for (size_t lane = 0; lane < chunk; ++lane) {
      angles[lane] = x * freq;
      freq *= freq_decay;
    }
    for (size_t lane = chunk; lane < 8; ++lane) angles[lane] = 0.0f;
    __m256 s, c;
    Sincos8(_mm256_load_ps(angles), &s, &c);
    // Interleave [s0..s7] x [c0..c7] into (s,c) pairs.
    const __m256 lo = _mm256_unpacklo_ps(s, c);
    const __m256 hi = _mm256_unpackhi_ps(s, c);
    const __m256 v0 = _mm256_permute2f128_ps(lo, hi, 0x20);
    const __m256 v1 = _mm256_permute2f128_ps(lo, hi, 0x31);
    const size_t n_out = 2 * chunk;
    if (n_out >= 8) {
      _mm256_storeu_ps(out + 2 * p, v0);
      if (n_out > 8) {
        _mm256_maskstore_ps(out + 2 * p + 8, TailMask(n_out - 8), v1);
      }
    } else {
      _mm256_maskstore_ps(out + 2 * p, TailMask(n_out), v0);
    }
    p += chunk;
  }
  if (dim % 2 == 1) out[dim - 1] = x * 0.1f;
}

const KernelTable kAvx2Table = {
    "avx2",
    Avx2MatMulRange,
    Avx2MatMulBiasActRange,
    Avx2MatMulTransBRange,
    Avx2MatMulTransARange,
    Avx2MatMulTransAOutputRange,
    Avx2AddRowVector,
    Avx2ReluInPlace,
    Avx2Axpy,
    Avx2ColumnSumsRange,
    Avx2AdamUpdate,
    Avx2SincosEncode,
    Avx2MatMulPackedRange,
    Avx2MatMulPackedBiasActRange,
    Avx2MatMulPacked16BiasActRange,
};

}  // namespace

const KernelTable* GetAvx2Kernels() { return &kAvx2Table; }

}  // namespace splash

#else  // !(__AVX2__ && __FMA__)

// Compiled without AVX2 support (non-x86 target or a toolchain without
// -mavx2): the dispatcher sees nullptr and resolves to scalar.
namespace splash {
const KernelTable* GetAvx2Kernels() { return nullptr; }
}  // namespace splash

#endif
