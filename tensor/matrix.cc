// Copyright 2026 The SPLASH Reproduction Authors.
//
// Blocked dense kernels. The register-blocking constants were chosen for
// the common shapes in this repo: tall-skinny activations (batch x ~32-128)
// against small square-ish weight panels. Everything stays in L1/L2 for
// those shapes; the blocking mostly buys locality at the larger batch*k
// gather matrices.

#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "runtime/thread_pool.h"

namespace splash {

namespace {

// Panel sizes: kBlockK * kBlockJ floats of `b` (64KiB at 128x128) stay hot
// while a stripe of `a` streams through.
constexpr size_t kBlockK = 128;
constexpr size_t kBlockJ = 128;

// Parallel dispatch gate: GEMMs below this many flops (2*m*k*n) run serial
// — the ParallelFor wake/join costs a few microseconds, so tiny kernels
// (bias outer products, per-query ops) must not pay it.
constexpr size_t kParallelMinFlops = size_t{1} << 18;

// Floor on rows per chunk so a chunk amortizes its dispatch.
constexpr size_t kMinRowChunk = 8;

/// Partitions `rows` across the pool when `flops` clears the gate; returns
/// true if the parallel path ran. fn(row_begin, row_end) must write
/// disjoint output rows.
template <typename Fn>
bool ParallelRows(size_t rows, size_t flops, const Fn& fn) {
  ThreadPool* pool = ThreadPool::Global();
  const size_t t = pool->num_threads();
  if (t <= 1 || flops < kParallelMinFlops || rows < 2 * kMinRowChunk) {
    return false;
  }
  const size_t grain =
      std::max(kMinRowChunk, (rows + 4 * t - 1) / (4 * t));
  pool->ParallelFor(0, rows, grain,
                    [&fn](size_t r0, size_t r1, size_t) { fn(r0, r1); });
  return true;
}

}  // namespace

void MatMulRange(const Matrix& a, const Matrix& b, Matrix* c,
                 size_t row_begin, size_t row_end, bool accumulate) {
  const size_t k = a.cols(), n = b.cols();
  assert(b.rows() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(row_begin <= row_end && row_end <= a.rows());
  if (!accumulate && row_end > row_begin) {
    std::memset(c->Row(row_begin), 0,
                (row_end - row_begin) * n * sizeof(float));
  }
  for (size_t j0 = 0; j0 < n; j0 += kBlockJ) {
    const size_t j1 = std::min(n, j0 + kBlockJ);
    for (size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const size_t k1 = std::min(k, k0 + kBlockK);
      for (size_t i = row_begin; i < row_end; ++i) {
        const float* arow = a.Row(i);
        float* crow = c->Row(i);
        for (size_t kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;  // masked/sparse rows are common
          const float* brow = b.Row(kk);
          // Unit-stride FMA over the output row: auto-vectorizes.
          for (size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (!ParallelRows(m, 2 * m * k * n, [&](size_t r0, size_t r1) {
        MatMulRange(a, b, c, r0, r1, accumulate);
      })) {
    MatMulRange(a, b, c, 0, m, accumulate);
  }
}

void MatMulTransBRange(const Matrix& a, const Matrix& b, Matrix* c,
                       size_t row_begin, size_t row_end, bool accumulate) {
  const size_t k = a.cols(), n = b.rows();
  assert(b.cols() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(row_begin <= row_end && row_end <= a.rows());
  // Dot-product form: both operands are read with unit stride.
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* arow = a.Row(i);
    float* crow = c->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        acc0 += arow[kk] * brow[kk];
        acc1 += arow[kk + 1] * brow[kk + 1];
        acc2 += arow[kk + 2] * brow[kk + 2];
        acc3 += arow[kk + 3] * brow[kk + 3];
      }
      float acc = (acc0 + acc1) + (acc2 + acc3);
      for (; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* c,
                  bool accumulate) {
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (!ParallelRows(m, 2 * m * k * n, [&](size_t r0, size_t r1) {
        MatMulTransBRange(a, b, c, r0, r1, accumulate);
      })) {
    MatMulTransBRange(a, b, c, 0, m, accumulate);
  }
}

namespace {

/// MatMulTransA restricted to *output* rows [i_begin, i_end) over the full
/// reduction: the parallel-dispatch partition (disjoint writes). Each
/// output element still accumulates over rr in ascending order, so the
/// result is bit-identical to the serial kernel.
void MatMulTransAOutputRange(const Matrix& a, const Matrix& b, Matrix* c,
                             size_t i_begin, size_t i_end, bool accumulate) {
  const size_t r = a.rows(), n = b.cols();
  if (!accumulate && i_end > i_begin) {
    std::memset(c->Row(i_begin), 0, (i_end - i_begin) * n * sizeof(float));
  }
  for (size_t rr = 0; rr < r; ++rr) {
    const float* arow = a.Row(rr);
    const float* brow = b.Row(rr);
    for (size_t i = i_begin; i < i_end; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c->Row(i);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void MatMulTransARange(const Matrix& a, const Matrix& b, Matrix* c,
                       size_t r_begin, size_t r_end, bool accumulate) {
  const size_t m = a.cols(), n = b.cols();
  assert(b.rows() == a.rows());
  assert(c->rows() == m && c->cols() == n);
  assert(r_begin <= r_end && r_end <= a.rows());
  if (!accumulate) std::memset(c->data(), 0, m * n * sizeof(float));
  // Rank-1 update per input row: c[i, :] += a(rr, i) * b(rr, :). The inner
  // loop is again a unit-stride FMA over an output row.
  for (size_t rr = r_begin; rr < r_end; ++rr) {
    const float* arow = a.Row(rr);
    const float* brow = b.Row(rr);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c->Row(i);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTransA(const Matrix& a, const Matrix& b, Matrix* c,
                  bool accumulate) {
  const size_t r = a.rows(), m = a.cols(), n = b.cols();
  assert(b.rows() == r);
  assert(c->rows() == m && c->cols() == n);
  if (!ParallelRows(m, 2 * r * m * n, [&](size_t i0, size_t i1) {
        MatMulTransAOutputRange(a, b, c, i0, i1, accumulate);
      })) {
    MatMulTransARange(a, b, c, 0, r, accumulate);
  }
}

void AddRowVector(Matrix* m, const float* bias) {
  const size_t rows = m->rows(), cols = m->cols();
  for (size_t i = 0; i < rows; ++i) {
    float* row = m->Row(i);
    for (size_t j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

void ReluInPlace(Matrix* m) {
  float* p = m->data();
  const size_t n = m->size();
  for (size_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ColumnSums(const Matrix& m, float* out) {
  ColumnSumsRange(m, out, 0, m.rows(), /*accumulate=*/false);
}

void ColumnSumsRange(const Matrix& m, float* out, size_t row_begin,
                     size_t row_end, bool accumulate) {
  const size_t cols = m.cols();
  if (!accumulate) std::memset(out, 0, cols * sizeof(float));
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* row = m.Row(i);
    for (size_t j = 0; j < cols; ++j) out[j] += row[j];
  }
}

bool SolveRidge(const Matrix& x, const Matrix& y, float lambda, Matrix* w) {
  const size_t d = x.cols(), c = y.cols();
  assert(x.rows() == y.rows());
  Matrix gram(d, d);
  MatMulTransA(x, x, &gram);
  Matrix rhs(d, c);
  MatMulTransA(x, y, &rhs);
  for (size_t i = 0; i < d; ++i) gram(i, i) += lambda;

  // In-place Cholesky gram = L L^T; retry with a boosted diagonal once if a
  // pivot collapses (degenerate probe features).
  for (int attempt = 0; attempt < 2; ++attempt) {
    Matrix l = gram;
    bool ok = true;
    for (size_t i = 0; i < d && ok; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        float sum = l(i, j);
        for (size_t kk = 0; kk < j; ++kk) sum -= l(i, kk) * l(j, kk);
        if (i == j) {
          if (sum <= 1e-10f) {
            ok = false;
            break;
          }
          l(i, i) = std::sqrt(sum);
        } else {
          l(i, j) = sum / l(j, j);
        }
      }
    }
    if (!ok) {
      for (size_t i = 0; i < d; ++i) gram(i, i) += 1e-2f + lambda;
      continue;
    }
    // Forward/back substitution per output column.
    w->Resize(d, c);
    std::vector<float> zcol(d);
    for (size_t col = 0; col < c; ++col) {
      for (size_t i = 0; i < d; ++i) {
        float sum = rhs(i, col);
        for (size_t kk = 0; kk < i; ++kk) sum -= l(i, kk) * zcol[kk];
        zcol[i] = sum / l(i, i);
      }
      for (size_t ii = d; ii-- > 0;) {
        float sum = zcol[ii];
        for (size_t kk = ii + 1; kk < d; ++kk) sum -= l(kk, ii) * (*w)(kk, col);
        (*w)(ii, col) = sum / l(ii, ii);
      }
    }
    return true;
  }
  return false;
}

}  // namespace splash
