// Copyright 2026 The SPLASH Reproduction Authors.
//
// Parallel entry points for the dense kernels: partition output rows on
// the global ThreadPool when the flop count clears the gate, then hand
// each range to the runtime-selected backend (tensor/simd.h). The serial
// kernel bodies themselves live in tensor/kernels_{scalar,avx2}.cc;
// per-element accumulation order never depends on the partition, so for a
// fixed backend parallel results are bit-identical to serial ones.

#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "runtime/thread_pool.h"
#include "tensor/packed.h"
#include "tensor/simd.h"

namespace splash {

namespace {

// Parallel dispatch gate: GEMMs below this many flops (2*m*k*n) run serial
// — the ParallelFor wake/join costs a few microseconds, so tiny kernels
// (bias outer products, per-query ops) must not pay it.
constexpr size_t kParallelMinFlops = size_t{1} << 18;

// Floor on rows per chunk so a chunk amortizes its dispatch.
constexpr size_t kMinRowChunk = 8;

/// Partitions `rows` across the pool when `flops` clears the gate; returns
/// true if the parallel path ran. fn(row_begin, row_end) must write
/// disjoint output rows.
template <typename Fn>
bool ParallelRows(size_t rows, size_t flops, const Fn& fn) {
  ThreadPool* pool = ThreadPool::Global();
  const size_t t = pool->num_threads();
  if (t <= 1 || flops < kParallelMinFlops || rows < 2 * kMinRowChunk) {
    return false;
  }
  const size_t grain =
      std::max(kMinRowChunk, (rows + 4 * t - 1) / (4 * t));
  pool->ParallelFor(0, rows, grain,
                    [&fn](size_t r0, size_t r1, size_t) { fn(r0, r1); });
  return true;
}

}  // namespace

void MatMulRange(const Matrix& a, const Matrix& b, Matrix* c,
                 size_t row_begin, size_t row_end, bool accumulate) {
  Kernels().matmul_range(a, b, c, row_begin, row_end, accumulate);
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  const KernelTable& kt = Kernels();
  if (!ParallelRows(m, 2 * m * k * n, [&](size_t r0, size_t r1) {
        kt.matmul_range(a, b, c, r0, r1, accumulate);
      })) {
    kt.matmul_range(a, b, c, 0, m, accumulate);
  }
}

void MatMulBiasActRange(const Matrix& a, const Matrix& b, Matrix* c,
                        size_t row_begin, size_t row_end, const float* bias,
                        bool relu) {
  Kernels().matmul_bias_act_range(a, b, c, row_begin, row_end, bias, relu);
}

void MatMulPackedRange(const Matrix& a, const PackedMatrix& b, Matrix* c,
                       size_t row_begin, size_t row_end, bool accumulate) {
  Kernels().matmul_packed_range(a, b, c, row_begin, row_end, accumulate);
}

void MatMulPacked(const Matrix& a, const PackedMatrix& b, Matrix* c,
                  bool accumulate) {
  const size_t m = a.rows(), k = a.cols(), n = b.n();
  const KernelTable& kt = Kernels();
  if (!ParallelRows(m, 2 * m * k * n, [&](size_t r0, size_t r1) {
        kt.matmul_packed_range(a, b, c, r0, r1, accumulate);
      })) {
    kt.matmul_packed_range(a, b, c, 0, m, accumulate);
  }
}

void MatMulPackedBiasActRange(const Matrix& a, const PackedMatrix& b,
                              Matrix* c, size_t row_begin, size_t row_end,
                              const float* bias, bool relu) {
  Kernels().matmul_packed_bias_act_range(a, b, c, row_begin, row_end, bias,
                                         relu);
}

void MatMulPacked16BiasActRange(const Matrix& a, const PackedMatrix16& b,
                                Matrix* c, size_t row_begin, size_t row_end,
                                const float* bias, bool relu) {
  Kernels().matmul_packed16_bias_act_range(a, b, c, row_begin, row_end, bias,
                                           relu);
}

void MatMulTransBRange(const Matrix& a, const Matrix& b, Matrix* c,
                       size_t row_begin, size_t row_end, bool accumulate) {
  Kernels().matmul_transb_range(a, b, c, row_begin, row_end, accumulate);
}

void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* c,
                  bool accumulate) {
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  const KernelTable& kt = Kernels();
  if (!ParallelRows(m, 2 * m * k * n, [&](size_t r0, size_t r1) {
        kt.matmul_transb_range(a, b, c, r0, r1, accumulate);
      })) {
    kt.matmul_transb_range(a, b, c, 0, m, accumulate);
  }
}

void MatMulTransARange(const Matrix& a, const Matrix& b, Matrix* c,
                       size_t r_begin, size_t r_end) {
  Kernels().matmul_transa_range(a, b, c, r_begin, r_end);
}

void MatMulTransA(const Matrix& a, const Matrix& b, Matrix* c,
                  bool accumulate) {
  const size_t r = a.rows(), m = a.cols(), n = b.cols();
  assert(b.rows() == r);
  assert(c->rows() == m && c->cols() == n);
  const KernelTable& kt = Kernels();
  if (!ParallelRows(m, 2 * r * m * n, [&](size_t i0, size_t i1) {
        kt.matmul_transa_output_range(a, b, c, i0, i1, accumulate);
      })) {
    if (!accumulate) {
      for (size_t i = 0; i < m; ++i) {
        std::memset(c->Row(i), 0, n * sizeof(float));
      }
    }
    kt.matmul_transa_range(a, b, c, 0, r);
  }
}

void AddRowVector(Matrix* m, const float* bias) {
  Kernels().add_row_vector(m, bias);
}

void ReluInPlace(Matrix* m) { Kernels().relu_inplace(m); }

void Axpy(float alpha, const float* x, float* y, size_t n) {
  Kernels().axpy(alpha, x, y, n);
}

void ColumnSums(const Matrix& m, float* out) {
  ColumnSumsRange(m, out, 0, m.rows(), /*accumulate=*/false);
}

void ColumnSumsRange(const Matrix& m, float* out, size_t row_begin,
                     size_t row_end, bool accumulate) {
  Kernels().column_sums_range(m, out, row_begin, row_end, accumulate);
}

void AdamUpdate(float* w, const float* g, float* m, float* v, size_t n,
                float step, float beta1, float beta2, float eps) {
  Kernels().adam_update(w, g, m, v, n, step, beta1, beta2, eps);
}

void SincosEncode(float x, float freq_decay, float* out, size_t dim) {
  Kernels().sincos_encode(x, freq_decay, out, dim);
}

bool SolveRidge(const Matrix& x, const Matrix& y, float lambda, Matrix* w) {
  const size_t d = x.cols(), c = y.cols();
  assert(x.rows() == y.rows());
  Matrix gram(d, d);
  MatMulTransA(x, x, &gram);
  Matrix rhs(d, c);
  MatMulTransA(x, y, &rhs);
  for (size_t i = 0; i < d; ++i) gram(i, i) += lambda;

  // In-place Cholesky gram = L L^T; retry with a boosted diagonal once if a
  // pivot collapses (degenerate probe features).
  for (int attempt = 0; attempt < 2; ++attempt) {
    Matrix l = gram;
    bool ok = true;
    for (size_t i = 0; i < d && ok; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        float sum = l(i, j);
        for (size_t kk = 0; kk < j; ++kk) sum -= l(i, kk) * l(j, kk);
        if (i == j) {
          if (sum <= 1e-10f) {
            ok = false;
            break;
          }
          l(i, i) = std::sqrt(sum);
        } else {
          l(i, j) = sum / l(j, j);
        }
      }
    }
    if (!ok) {
      for (size_t i = 0; i < d; ++i) gram(i, i) += 1e-2f + lambda;
      continue;
    }
    // Forward/back substitution per output column.
    w->Resize(d, c);
    std::vector<float> zcol(d);
    for (size_t col = 0; col < c; ++col) {
      for (size_t i = 0; i < d; ++i) {
        float sum = rhs(i, col);
        for (size_t kk = 0; kk < i; ++kk) sum -= l(i, kk) * zcol[kk];
        zcol[i] = sum / l(i, i);
      }
      for (size_t ii = d; ii-- > 0;) {
        float sum = zcol[ii];
        for (size_t kk = ii + 1; kk < d; ++kk) sum -= l(kk, ii) * (*w)(kk, col);
        (*w)(ii, col) = sum / l(ii, ii);
      }
    }
    return true;
  }
  return false;
}

}  // namespace splash
