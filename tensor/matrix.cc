// Copyright 2026 The SPLASH Reproduction Authors.
//
// Blocked dense kernels. The register-blocking constants were chosen for
// the common shapes in this repo: tall-skinny activations (batch x ~32-128)
// against small square-ish weight panels. Everything stays in L1/L2 for
// those shapes; the blocking mostly buys locality at the larger batch*k
// gather matrices.

#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace splash {

namespace {

// Panel sizes: kBlockK * kBlockJ floats of `b` (64KiB at 128x128) stay hot
// while a stripe of `a` streams through.
constexpr size_t kBlockK = 128;
constexpr size_t kBlockJ = 128;

}  // namespace

void MatMul(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  assert(b.rows() == k);
  assert(c->rows() == m && c->cols() == n);
  if (!accumulate) std::memset(c->data(), 0, m * n * sizeof(float));
  for (size_t j0 = 0; j0 < n; j0 += kBlockJ) {
    const size_t j1 = std::min(n, j0 + kBlockJ);
    for (size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const size_t k1 = std::min(k, k0 + kBlockK);
      for (size_t i = 0; i < m; ++i) {
        const float* arow = a.Row(i);
        float* crow = c->Row(i);
        for (size_t kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;  // masked/sparse rows are common
          const float* brow = b.Row(kk);
          // Unit-stride FMA over the output row: auto-vectorizes.
          for (size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* c,
                  bool accumulate) {
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  assert(b.cols() == k);
  assert(c->rows() == m && c->cols() == n);
  // Dot-product form: both operands are read with unit stride.
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* crow = c->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        acc0 += arow[kk] * brow[kk];
        acc1 += arow[kk + 1] * brow[kk + 1];
        acc2 += arow[kk + 2] * brow[kk + 2];
        acc3 += arow[kk + 3] * brow[kk + 3];
      }
      float acc = (acc0 + acc1) + (acc2 + acc3);
      for (; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

void MatMulTransA(const Matrix& a, const Matrix& b, Matrix* c,
                  bool accumulate) {
  const size_t r = a.rows(), m = a.cols(), n = b.cols();
  assert(b.rows() == r);
  assert(c->rows() == m && c->cols() == n);
  if (!accumulate) std::memset(c->data(), 0, m * n * sizeof(float));
  // Rank-1 update per input row: c[i, :] += a(rr, i) * b(rr, :). The inner
  // loop is again a unit-stride FMA over an output row.
  for (size_t rr = 0; rr < r; ++rr) {
    const float* arow = a.Row(rr);
    const float* brow = b.Row(rr);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c->Row(i);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void AddRowVector(Matrix* m, const float* bias) {
  const size_t rows = m->rows(), cols = m->cols();
  for (size_t i = 0; i < rows; ++i) {
    float* row = m->Row(i);
    for (size_t j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

void ReluInPlace(Matrix* m) {
  float* p = m->data();
  const size_t n = m->size();
  for (size_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ColumnSums(const Matrix& m, float* out) {
  const size_t rows = m.rows(), cols = m.cols();
  std::memset(out, 0, cols * sizeof(float));
  for (size_t i = 0; i < rows; ++i) {
    const float* row = m.Row(i);
    for (size_t j = 0; j < cols; ++j) out[j] += row[j];
  }
}

bool SolveRidge(const Matrix& x, const Matrix& y, float lambda, Matrix* w) {
  const size_t d = x.cols(), c = y.cols();
  assert(x.rows() == y.rows());
  Matrix gram(d, d);
  MatMulTransA(x, x, &gram);
  Matrix rhs(d, c);
  MatMulTransA(x, y, &rhs);
  for (size_t i = 0; i < d; ++i) gram(i, i) += lambda;

  // In-place Cholesky gram = L L^T; retry with a boosted diagonal once if a
  // pivot collapses (degenerate probe features).
  for (int attempt = 0; attempt < 2; ++attempt) {
    Matrix l = gram;
    bool ok = true;
    for (size_t i = 0; i < d && ok; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        float sum = l(i, j);
        for (size_t kk = 0; kk < j; ++kk) sum -= l(i, kk) * l(j, kk);
        if (i == j) {
          if (sum <= 1e-10f) {
            ok = false;
            break;
          }
          l(i, i) = std::sqrt(sum);
        } else {
          l(i, j) = sum / l(j, j);
        }
      }
    }
    if (!ok) {
      for (size_t i = 0; i < d; ++i) gram(i, i) += 1e-2f + lambda;
      continue;
    }
    // Forward/back substitution per output column.
    w->Resize(d, c);
    std::vector<float> zcol(d);
    for (size_t col = 0; col < c; ++col) {
      for (size_t i = 0; i < d; ++i) {
        float sum = rhs(i, col);
        for (size_t kk = 0; kk < i; ++kk) sum -= l(i, kk) * zcol[kk];
        zcol[i] = sum / l(i, i);
      }
      for (size_t ii = d; ii-- > 0;) {
        float sum = zcol[ii];
        for (size_t kk = ii + 1; kk < d; ++kk) sum -= l(kk, ii) * (*w)(kk, col);
        (*w)(ii, col) = sum / l(ii, ii);
      }
    }
    return true;
  }
  return false;
}

}  // namespace splash
