// Copyright 2026 The SPLASH Reproduction Authors.
//
// Cache-aware packed-B GEMM storage (DESIGN.md §6). The unpacked kernels
// stride B by its full row pitch (4KB on a 1024-wide serving layer), which
// leaves the batch-1 fused forward TLB/prefetch-bound once B outgrows L2.
// PackedMatrix re-tiles B once into contiguous (k-block x n-panel) panels:
//
//   panel     = 16 output columns (one cache line / one ZMM / two YMM);
//               the last panel is zero-padded to 16 lanes
//   k-block   = a run of reduction rows sized from the detected L2
//               (PackedKBlockRows) so one block of B stays cache-resident
//               while every row of A streams against it
//   layout    = for each k-block: for each panel: block_rows x 16 floats,
//               contiguous — the GEMM inner loop advances B by exactly one
//               cache line per reduction step, no row-pitch strides
//
// Pack-once / reuse-many: the SLIM weight matrices pack at construction,
// checkpoint-load, and after each Adam step (core/slim.cc); the serve read
// replica packs at snapshot publish, so the const query path never packs.
//
// Per-element FMA order is untouched by packing: every packed kernel
// accumulates one output element over ascending reduction index exactly
// like its unpacked sibling (zero-padded lanes contribute fma(a, 0, acc)
// == acc), so packed results are BIT-IDENTICAL to unpacked results within
// one backend, and the scalar backend remains the determinism reference.
//
// PackedMatrix16 is the bf16 storage variant for the serve read replica
// (SPLASH_REPLICA_PRECISION=bf16): identical geometry, each element stored
// as the round-to-nearest-even upper half of its fp32 bits. Kernels widen
// to fp32 on load and accumulate in fp32 throughout — only the storage
// (and with it the weight-streaming bandwidth) is halved. bf16 is
// tolerance-equivalent, never bit-equal: fp32 stays the default and the
// determinism reference, and task-metric parity is gated end-to-end
// (packed_gemm_test AUC parity), not just per-kernel ulp checks.

#ifndef SPLASH_TENSOR_PACKED_H_
#define SPLASH_TENSOR_PACKED_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "tensor/matrix.h"

namespace splash {

/// fp32 -> bf16 with round-to-nearest-even on the dropped 16 mantissa bits.
/// NaN payloads are truncated with a forced quiet bit instead of letting
/// the rounding carry overflow the exponent.
inline uint16_t Bf16FromFloat(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  if ((bits & 0x7FFFFFFFu) > 0x7F800000u) {
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  bits += 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>(bits >> 16);
}

/// bf16 -> fp32 is exact: the stored half IS the upper half of the bits.
inline float Bf16ToFloat(uint16_t h) {
  const uint32_t bits = static_cast<uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

/// Reduction rows per k-block for a k x n packed operand: the largest
/// multiple of 16 whose packed block (rows x panels x 16 floats) fits half
/// the detected L2, floored at 32 rows and capped at k. Declared here,
/// computed in tensor/packed.cc from the cache topology (tensor/simd.h).
size_t PackedKBlockRows(size_t k, size_t n);

/// Row-major bf16 matrix: the storage type of the bf16 read replica and
/// the round-trip unit of packed_gemm_test. Grow-only like Matrix.
class Matrix16 {
 public:
  Matrix16() = default;

  /// Resizes to m's shape and converts every element (round-to-nearest-even).
  void FromFloat(const Matrix& m) {
    rows_ = m.rows();
    cols_ = m.cols();
    if (data_.size() < rows_ * cols_) data_.Resize(rows_ * cols_);
    uint16_t* dst = data_.data();
    for (size_t r = 0; r < rows_; ++r) {
      const float* src = m.Row(r);
      for (size_t c = 0; c < cols_; ++c) *dst++ = Bf16FromFloat(src[c]);
    }
  }

  /// Widens back to fp32 (exact); `out` is resized to this shape.
  void ToFloat(Matrix* out) const {
    out->Resize(rows_, cols_);
    const uint16_t* src = data_.data();
    for (size_t r = 0; r < rows_; ++r) {
      float* dst = out->Row(r);
      for (size_t c = 0; c < cols_; ++c) dst[c] = Bf16ToFloat(*src++);
    }
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  uint16_t operator()(size_t r, size_t c) const {
    return data_.data()[r * cols_ + c];
  }
  float Value(size_t r, size_t c) const { return Bf16ToFloat((*this)(r, c)); }
  /// Payload bytes actually resident for this shape.
  size_t bytes() const { return rows_ * cols_ * sizeof(uint16_t); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  AlignedBufferT<uint16_t> data_;
};

/// B re-tiled into contiguous (k-block x 16-col panel) panels, fp32.
/// Grow-only: repacking the same (or a smaller) shape never allocates, so
/// the per-Adam-step repack is allocation-free at steady state.
class PackedMatrix {
 public:
  /// Panel width in output columns: one cache line of floats.
  static constexpr size_t kPanelCols = 16;

  PackedMatrix() = default;

  /// Re-tiles `b` (k x n, stride-aware). Zero-pads the last panel's dead
  /// lanes so kernels can run full-width loads against it.
  void PackFrom(const Matrix& b);

  size_t k() const { return k_; }
  size_t n() const { return n_; }
  size_t panels() const { return (n_ + kPanelCols - 1) / kPanelCols; }
  /// Reduction rows per block (PackedKBlockRows at pack time).
  size_t block_rows() const { return kb_; }
  size_t num_blocks() const {
    return k_ == 0 ? 0 : (k_ + kb_ - 1) / kb_;
  }
  /// First reduction row of block `pb`.
  size_t BlockBegin(size_t pb) const { return pb * kb_; }
  /// Rows in block `pb` (only the last block may be short).
  size_t BlockRows(size_t pb) const {
    const size_t begin = pb * kb_;
    return k_ - begin < kb_ ? k_ - begin : kb_;
  }
  /// Panel `jp` of block `pb`: BlockRows(pb) x 16 contiguous floats,
  /// 64-byte aligned; row kk of the block sits at offset kk * 16.
  const float* Panel(size_t pb, size_t jp) const {
    return data_.data() + pb * kb_ * panels() * kPanelCols +
           jp * BlockRows(pb) * kPanelCols;
  }
  bool empty() const { return k_ == 0 || n_ == 0; }
  /// Resident payload bytes for this shape (includes panel zero-padding).
  size_t bytes() const { return k_ * panels() * kPanelCols * sizeof(float); }

 private:
  size_t k_ = 0;
  size_t n_ = 0;
  size_t kb_ = 0;
  AlignedBufferT<float> data_;
};

/// The bf16 storage variant: identical geometry to PackedMatrix, elements
/// converted with round-to-nearest-even at pack time. Kernels widen each
/// panel load to fp32 and accumulate in fp32.
class PackedMatrix16 {
 public:
  static constexpr size_t kPanelCols = 16;

  PackedMatrix16() = default;

  void PackFrom(const Matrix& b);

  size_t k() const { return k_; }
  size_t n() const { return n_; }
  size_t panels() const { return (n_ + kPanelCols - 1) / kPanelCols; }
  size_t block_rows() const { return kb_; }
  size_t num_blocks() const {
    return k_ == 0 ? 0 : (k_ + kb_ - 1) / kb_;
  }
  size_t BlockBegin(size_t pb) const { return pb * kb_; }
  size_t BlockRows(size_t pb) const {
    const size_t begin = pb * kb_;
    return k_ - begin < kb_ ? k_ - begin : kb_;
  }
  /// Panel `jp` of block `pb`: BlockRows(pb) x 16 contiguous bf16 lanes,
  /// 32-byte aligned (block and panel strides are multiples of 16 lanes).
  const uint16_t* Panel(size_t pb, size_t jp) const {
    return data_.data() + pb * kb_ * panels() * kPanelCols +
           jp * BlockRows(pb) * kPanelCols;
  }
  bool empty() const { return k_ == 0 || n_ == 0; }
  size_t bytes() const {
    return k_ * panels() * kPanelCols * sizeof(uint16_t);
  }

 private:
  size_t k_ = 0;
  size_t n_ = 0;
  size_t kb_ = 0;
  AlignedBufferT<uint16_t> data_;
};

// ---------------------------------------------------------------------------
// Packed dispatch entry points (implemented in tensor/matrix.cc over the
// runtime-selected backend, tensor/simd.h). Same contracts as the unpacked
// kernels in tensor/matrix.h: outputs pre-sized, nothing allocates, results
// bit-identical to the unpacked sibling on the same backend.
// ---------------------------------------------------------------------------

/// c rows [r0, r1) = a * B (+ c if accumulate). a: M x k, c: M x n.
void MatMulPackedRange(const Matrix& a, const PackedMatrix& b, Matrix* c,
                       size_t row_begin, size_t row_end,
                       bool accumulate = false);

/// Row-parallel wrapper over MatMulPackedRange (same gate as MatMul).
void MatMulPacked(const Matrix& a, const PackedMatrix& b, Matrix* c,
                  bool accumulate = false);

/// Fused epilogue against packed B: c rows [r0, r1) = act(a * B + bias).
void MatMulPackedBiasActRange(const Matrix& a, const PackedMatrix& b,
                              Matrix* c, size_t row_begin, size_t row_end,
                              const float* bias, bool relu);

/// Fused epilogue against bf16 packed B (widening loads, fp32 accumulate).
void MatMulPacked16BiasActRange(const Matrix& a, const PackedMatrix16& b,
                                Matrix* c, size_t row_begin, size_t row_end,
                                const float* bias, bool relu);

}  // namespace splash

#endif  // SPLASH_TENSOR_PACKED_H_
