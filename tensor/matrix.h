// Copyright 2026 The SPLASH Reproduction Authors.
//
// Flat row-major float matrix plus the blocked dense kernels every model in
// the repo runs on. Design rules (see DESIGN.md §2):
//   - one contiguous allocation, row-major, no strides;
//   - Resize() only ever grows the backing store, so scratch matrices that
//     are reused across batches stop allocating after warm-up;
//   - kernels are written so the inner loop is a unit-stride FMA over the
//     output row (i-k-j order), which GCC/Clang auto-vectorize at -O3.

#ifndef SPLASH_TENSOR_MATRIX_H_
#define SPLASH_TENSOR_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "tensor/rng.h"

namespace splash {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {
    data_.resize(rows * cols, 0.0f);
  }

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  static Matrix Ones(size_t rows, size_t cols) {
    Matrix m(rows, cols);
    m.Fill(1.0f);
    return m;
  }

  static Matrix Gaussian(size_t rows, size_t cols, Rng* rng,
                         float stddev = 1.0f) {
    Matrix m(rows, cols);
    rng->FillGaussian(m.data(), rows * cols, stddev);
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* Row(size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

  float& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Reshapes to rows x cols. The backing vector only grows (amortized) and
  /// growth preserves existing contents, so with an unchanged column count
  /// previously written rows stay intact — the trainers' score accumulators
  /// rely on that. New cells are NOT zeroed; hot-path callers overwrite
  /// every cell or call SetZero().
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    if (data_.size() < rows * cols) data_.resize(rows * cols);
  }

  void SetZero() { Fill(0.0f); }

  void Fill(float v) {
    float* p = data_.data();
    const size_t n = rows_ * cols_;
    for (size_t i = 0; i < n; ++i) p[i] = v;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

// ---------------------------------------------------------------------------
// Dense kernels (tensor/matrix.cc). All of them require the output to be
// pre-sized by the caller; none of them allocate.
//
// The top-level kernels run on the global ThreadPool when the flop count
// clears a threshold (small GEMMs stay serial) by partitioning output rows;
// per-element accumulation order is unchanged, so parallel results are
// bit-identical to serial ones. The *Range variants are the serial
// building blocks, exposed so batch-parallel callers (core/slim.cc) can
// drive row slices from their own chunking without nested fan-out.
// ---------------------------------------------------------------------------

/// c = a * b (+ c if accumulate). a: MxK, b: KxN, c: MxN.
void MatMul(const Matrix& a, const Matrix& b, Matrix* c,
            bool accumulate = false);

/// MatMul restricted to output rows [row_begin, row_end): only those rows
/// of `c` are written (and zeroed first unless accumulate).
void MatMulRange(const Matrix& a, const Matrix& b, Matrix* c,
                 size_t row_begin, size_t row_end, bool accumulate = false);

/// c = a * b^T (+ c if accumulate). a: MxK, b: NxK, c: MxN.
void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* c,
                  bool accumulate = false);

/// MatMulTransB restricted to output rows [row_begin, row_end).
void MatMulTransBRange(const Matrix& a, const Matrix& b, Matrix* c,
                       size_t row_begin, size_t row_end,
                       bool accumulate = false);

/// c = a^T * b (+ c if accumulate). a: RxM, b: RxN, c: MxN.
void MatMulTransA(const Matrix& a, const Matrix& b, Matrix* c,
                  bool accumulate = false);

/// MatMulTransA restricted to *reduction* rows [r_begin, r_end) of a/b; the
/// whole of `c` is written (zeroed first unless accumulate). This is the
/// per-batch-chunk gradient kernel: each worker folds its chunk's rows into
/// a private accumulator.
void MatMulTransARange(const Matrix& a, const Matrix& b, Matrix* c,
                       size_t r_begin, size_t r_end, bool accumulate = false);

/// m[r, :] += bias for every row r. bias has m->cols() entries.
void AddRowVector(Matrix* m, const float* bias);

/// In-place ReLU.
void ReluInPlace(Matrix* m);

/// y[i] += alpha * x[i] for i in [0, n).
void Axpy(float alpha, const float* x, float* y, size_t n);

/// out[j] = sum_r m(r, j): column sums, out has m.cols() entries.
void ColumnSums(const Matrix& m, float* out);

/// Column sums over rows [row_begin, row_end) only; adds into `out` when
/// accumulate, overwrites otherwise.
void ColumnSumsRange(const Matrix& m, float* out, size_t row_begin,
                     size_t row_end, bool accumulate = false);

/// Solves (x^T x + lambda I) w = x^T y for w (ridge regression) via
/// Cholesky. x: NxD, y: NxC, w resized to DxC. Returns false if the normal
/// matrix is not positive definite even after boosting the diagonal.
bool SolveRidge(const Matrix& x, const Matrix& y, float lambda, Matrix* w);

}  // namespace splash

#endif  // SPLASH_TENSOR_MATRIX_H_
