// Copyright 2026 The SPLASH Reproduction Authors.
//
// Flat row-major float matrix plus the dense kernel entry points every model
// in the repo runs on. Design rules (see DESIGN.md §2/§6):
//   - one contiguous 64-byte-aligned allocation, row-major; an optional
//     padded leading dimension (stride() >= cols()) keeps every row start
//     64-byte aligned so SIMD backends get aligned loads and whole-vector
//     steady loops (ResizePadded opts in; plain Resize stays contiguous);
//   - Resize()/ResizePadded() only ever grow the backing store, so scratch
//     matrices reused across batches stop allocating after warm-up;
//   - the kernels below are thin dispatchers into the runtime-selected
//     backend (tensor/simd.h): the scalar backend is the bit-exact
//     determinism reference, the AVX2/FMA backend is tolerance-equivalent.
//
// Every accessor is stride-aware: Row(r) is data() + r * stride(), and
// nothing outside this header may assume stride() == cols() unless it
// checked IsContiguous() (the flat data()/size() iteration idiom).

#ifndef SPLASH_TENSOR_MATRIX_H_
#define SPLASH_TENSOR_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "tensor/rng.h"

namespace splash {

/// Grow-only trivially-copyable element buffer whose payload is 64-byte
/// aligned. Allocation goes through plain ::operator new[] (over-allocated,
/// pointer aligned by hand) so the counting-allocator gate in
/// allocation_steady_state_test still sees every allocation —
/// std::aligned_alloc or aligned operator new would bypass the shims the
/// gate overrides. T is float for matrices and uint16_t for the bf16
/// read-replica storage (tensor/packed.h).
template <typename T>
class AlignedBufferT {
 public:
  static constexpr size_t kAlignment = 64;

  AlignedBufferT() = default;
  ~AlignedBufferT() { delete[] raw_; }

  AlignedBufferT(const AlignedBufferT& other) { CopyFrom(other); }
  AlignedBufferT& operator=(const AlignedBufferT& other) {
    if (this != &other) {
      if (cap_ < other.size_) {
        delete[] raw_;
        raw_ = nullptr;
        data_ = nullptr;
        cap_ = 0;
        size_ = 0;
        CopyFrom(other);
      } else {
        size_ = other.size_;
        if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(T));
      }
    }
    return *this;
  }
  AlignedBufferT(AlignedBufferT&& other) noexcept
      : raw_(other.raw_), data_(other.data_), size_(other.size_),
        cap_(other.cap_) {
    other.raw_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
  }
  AlignedBufferT& operator=(AlignedBufferT&& other) noexcept {
    if (this != &other) {
      delete[] raw_;
      raw_ = other.raw_;
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.raw_ = nullptr;
      other.data_ = nullptr;
      other.size_ = 0;
      other.cap_ = 0;
    }
    return *this;
  }

  /// Grows to at least `n` elements (geometric, grow-only), preserving the
  /// existing contents and zeroing the newly exposed cells — the same
  /// contract std::vector<float>::resize gave the score accumulators.
  void Resize(size_t n) {
    if (n > cap_) {
      size_t new_cap = cap_ < 16 ? 16 : cap_;
      while (new_cap < n) new_cap *= 2;
      char* raw = new char[new_cap * sizeof(T) + kAlignment];
      const uintptr_t base = reinterpret_cast<uintptr_t>(raw);
      T* aligned = reinterpret_cast<T*>(
          (base + kAlignment - 1) / kAlignment * kAlignment);
      if (size_ > 0) std::memcpy(aligned, data_, size_ * sizeof(T));
      delete[] raw_;
      raw_ = raw;
      data_ = aligned;
      cap_ = new_cap;
    }
    if (n > size_) {
      std::memset(data_ + size_, 0, (n - size_) * sizeof(T));
    }
    size_ = n;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  void CopyFrom(const AlignedBufferT& other) {
    Resize(other.size_);
    if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(T));
  }

  char* raw_ = nullptr;  // owning over-allocated block
  T* data_ = nullptr;    // 64B-aligned payload inside raw_
  size_t size_ = 0;
  size_t cap_ = 0;
};

using AlignedBuffer = AlignedBufferT<float>;

class Matrix {
 public:
  /// Padded rows round the leading dimension up to this many floats
  /// (16 floats = 64 bytes = one cache line / one ZMM / two YMM).
  static constexpr size_t kPadFloats = 16;

  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), stride_(cols) {
    data_.Resize(rows * cols);
  }

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  static Matrix Ones(size_t rows, size_t cols) {
    Matrix m(rows, cols);
    m.Fill(1.0f);
    return m;
  }

  static Matrix Gaussian(size_t rows, size_t cols, Rng* rng,
                         float stddev = 1.0f) {
    Matrix m(rows, cols);
    rng->FillGaussian(m.data(), rows * cols, stddev);
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }

  /// Leading dimension in floats: Row(r) == data() + r * stride(). Equal to
  /// cols() for contiguous matrices; >= cols() after ResizePadded.
  size_t stride() const { return stride_; }
  bool IsContiguous() const { return stride_ == cols_ || rows_ <= 1; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* Row(size_t r) {
    assert(r < rows_);
    return data_.data() + r * stride_;
  }
  const float* Row(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * stride_;
  }

  float& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_.data()[r * stride_ + c];
  }
  float operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_.data()[r * stride_ + c];
  }

  /// Reshapes to rows x cols with a contiguous layout (stride == cols).
  /// The backing buffer only grows (amortized) and growth preserves
  /// existing contents, so with an unchanged column count previously
  /// written rows stay intact — the trainers' score accumulators rely on
  /// that. New cells are zeroed on first growth; hot-path callers overwrite
  /// every cell or call SetZero().
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    stride_ = cols;
    if (data_.size() < rows * cols) data_.Resize(rows * cols);
  }

  /// Reshapes to rows x cols with the leading dimension rounded up to a
  /// multiple of kPadFloats, so every row start is 64-byte aligned. The
  /// padding lanes ([cols, stride) of each row) are dead storage: kernels
  /// never read them and may leave garbage there — nothing outside a row's
  /// [0, cols) range is meaningful. Same grow-only guarantee as Resize.
  void ResizePadded(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    stride_ = (cols + kPadFloats - 1) / kPadFloats * kPadFloats;
    if (data_.size() < rows * stride_) data_.Resize(rows * stride_);
  }

  void SetZero() { Fill(0.0f); }

  void Fill(float v) {
    // Fills the full padded extent: cheaper than per-row loops and keeps
    // SetZero usable as "whole allocation is zero" for memset-style init.
    float* p = data_.data();
    const size_t n = rows_ * stride_;
    for (size_t i = 0; i < n; ++i) p[i] = v;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  AlignedBuffer data_;
};

// ---------------------------------------------------------------------------
// Dense kernels. All of them require the output to be pre-sized by the
// caller; none of them allocate. Every kernel is stride-aware (operands may
// be padded) and dispatches to the runtime-selected backend (tensor/simd.h;
// SPLASH_KERNEL={scalar,avx2,auto}).
//
// The top-level kernels run on the global ThreadPool when the flop count
// clears a threshold (small GEMMs stay serial) by partitioning output rows;
// per-element accumulation order is unchanged, so parallel results are
// bit-identical to serial ones *within a backend*. The *Range variants are
// the serial building blocks, exposed so batch-parallel callers
// (core/slim.cc) can drive row slices from their own chunking without
// nested fan-out.
// ---------------------------------------------------------------------------

/// c = a * b (+ c if accumulate). a: MxK, b: KxN, c: MxN.
void MatMul(const Matrix& a, const Matrix& b, Matrix* c,
            bool accumulate = false);

/// MatMul restricted to output rows [row_begin, row_end): only those rows
/// of `c` are written (and zeroed first unless accumulate).
void MatMulRange(const Matrix& a, const Matrix& b, Matrix* c,
                 size_t row_begin, size_t row_end, bool accumulate = false);

/// Fused GEMM epilogue: c rows [row_begin, row_end) = act(a * b + bias),
/// where bias (b.cols() entries, may be null) is added into the tile store
/// and act is ReLU when `relu` — one pass instead of GEMM + AddRowVector +
/// ReluInPlace. The scalar backend computes the identical arithmetic to
/// that three-pass sequence, so it stays the bit-exact reference.
void MatMulBiasActRange(const Matrix& a, const Matrix& b, Matrix* c,
                        size_t row_begin, size_t row_end, const float* bias,
                        bool relu);

/// c = a * b^T (+ c if accumulate). a: MxK, b: NxK, c: MxN.
void MatMulTransB(const Matrix& a, const Matrix& b, Matrix* c,
                  bool accumulate = false);

/// MatMulTransB restricted to output rows [row_begin, row_end).
void MatMulTransBRange(const Matrix& a, const Matrix& b, Matrix* c,
                       size_t row_begin, size_t row_end,
                       bool accumulate = false);

/// c = a^T * b (+ c if accumulate). a: RxM, b: RxN, c: MxN.
void MatMulTransA(const Matrix& a, const Matrix& b, Matrix* c,
                  bool accumulate = false);

/// MatMulTransA restricted to *reduction* rows [r_begin, r_end) of a/b:
/// c += a[r_begin:r_end)^T * b[r_begin:r_end). ALWAYS accumulates and
/// never zeroes any part of `c` — a range call that zeroed the whole
/// output would be correct only for full-range callers, so the contract
/// is: callers pre-zero (or reuse) `c` themselves. This is the
/// per-batch-chunk gradient kernel: each worker folds its chunk's rows
/// into a private pre-zeroed accumulator.
void MatMulTransARange(const Matrix& a, const Matrix& b, Matrix* c,
                       size_t r_begin, size_t r_end);

/// m[r, :] += bias for every row r. bias has m->cols() entries.
void AddRowVector(Matrix* m, const float* bias);

/// In-place ReLU.
void ReluInPlace(Matrix* m);

/// y[i] += alpha * x[i] for i in [0, n).
void Axpy(float alpha, const float* x, float* y, size_t n);

/// out[j] = sum_r m(r, j): column sums, out has m.cols() entries.
void ColumnSums(const Matrix& m, float* out);

/// Column sums over rows [row_begin, row_end) only; adds into `out` when
/// accumulate, overwrites otherwise.
void ColumnSumsRange(const Matrix& m, float* out, size_t row_begin,
                     size_t row_end, bool accumulate = false);

/// Sinusoidal pair encoding of `x` at geometrically spaced frequencies
/// (see KernelTable::sincos_encode in tensor/simd.h): the degree and
/// time-delta feature encoders run on this.
void SincosEncode(float x, float freq_decay, float* out, size_t dim);

/// One fused Adam update over a flat parameter block:
///   m = beta1*m + (1-beta1)*g;  v = beta2*v + (1-beta2)*g^2;
///   w -= step * m / (sqrt(v) + eps)
/// `step` is the bias-corrected learning rate the caller precomputed.
void AdamUpdate(float* w, const float* g, float* m, float* v, size_t n,
                float step, float beta1, float beta2, float eps);

/// Solves (x^T x + lambda I) w = x^T y for w (ridge regression) via
/// Cholesky. x: NxD, y: NxC, w resized to DxC. Returns false if the normal
/// matrix is not positive definite even after boosting the diagonal.
bool SolveRidge(const Matrix& x, const Matrix& y, float lambda, Matrix* w);

}  // namespace splash

#endif  // SPLASH_TENSOR_MATRIX_H_
