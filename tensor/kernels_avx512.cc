// Copyright 2026 The SPLASH Reproduction Authors.
//
// The AVX-512 kernel backend (DESIGN.md §6). This translation unit is the
// ONLY one compiled with -mavx512f -mavx512vl -mavx512dq (set per-source in
// CMakeLists.txt); nothing here runs unless the runtime dispatcher checked
// cpuid first, so the rest of the binary stays portable baseline codegen.
//
// Register tiling:
//   - MatMul / fused epilogue: 8x32 output tiles (16 zmm accumulators plus
//     the two b-panel vectors and one broadcast fit comfortably in the 32
//     architectural zmm registers), 16-wide and mask-register column tails,
//     1-row kernels for the row remainder.
//   - MatMulTransB: one 16-lane FMA accumulator per dot product, reduced
//     with _mm512_reduce_add_ps.
//   - MatMulTransA: broadcast-FMA rank-1 updates, vectorized over the
//     output row with mask-register tails, keeping the ascending
//     reduction-row order so serial and output-partitioned calls stay
//     bit-identical.
//
// Tail policy: every ragged edge uses __mmask16 predication
// (_mm512_maskz_loadu_ps / _mm512_mask_storeu_ps) instead of a scalar
// remainder loop — no kernel ever reads or writes past a row's [0, cols)
// payload, so bias vectors and unpadded operands are safe and ASan stays
// quiet. Padded rows (ResizePadded) still help: every row start is 64-byte
// aligned and the steady 32-wide loop covers whole rows without entering
// the tail code.
//
// Accumulation within one output element is 16-lane partial sums, so this
// backend is its own bitwise universe — tolerance-equivalent to scalar
// (simd_kernels_test) and distinct from avx2's 8-lane sums. Determinism
// oracles pin SPLASH_KERNEL=scalar.

#include "tensor/matrix.h"
#include "tensor/packed.h"
#include "tensor/simd.h"

#if defined(__AVX512F__) && defined(__AVX512VL__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <cassert>
#include <cmath>
#include <cstring>

namespace splash {

namespace {

/// Predication mask covering the first `rem` (1..15) lanes of a zmm.
inline __mmask16 TailMask16(size_t rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

// ---------------------------------------------------------------------------
// MatMul (c = a * b) with optional accumulate / fused bias+ReLU epilogue.
// ---------------------------------------------------------------------------

/// Finishes one 16-lane vector of output: optional += c, + bias, ReLU.
inline __m512 Epilogue16(__m512 acc, const float* crow, const float* bias,
                         size_t j, bool accumulate, bool relu) {
  if (accumulate) acc = _mm512_add_ps(acc, _mm512_loadu_ps(crow + j));
  if (bias != nullptr) acc = _mm512_add_ps(acc, _mm512_loadu_ps(bias + j));
  if (relu) acc = _mm512_max_ps(acc, _mm512_setzero_ps());
  return acc;
}

/// 8-row x 32-col micro-kernel over the full reduction, then epilogue.
template <int R>
inline void MicroKernel32(const float* const* arows, const Matrix& b,
                          float* const* crows, size_t j, size_t k,
                          const float* bias, bool accumulate, bool relu) {
  __m512 acc[R][2];
  for (int r = 0; r < R; ++r) {
    acc[r][0] = _mm512_setzero_ps();
    acc[r][1] = _mm512_setzero_ps();
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const float* brow = b.Row(kk) + j;
    const __m512 b0 = _mm512_loadu_ps(brow);
    const __m512 b1 = _mm512_loadu_ps(brow + 16);
    for (int r = 0; r < R; ++r) {
      const __m512 av = _mm512_set1_ps(arows[r][kk]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < R; ++r) {
    _mm512_storeu_ps(
        crows[r] + j,
        Epilogue16(acc[r][0], crows[r], bias, j, accumulate, relu));
    _mm512_storeu_ps(
        crows[r] + j + 16,
        Epilogue16(acc[r][1], crows[r], bias, j + 16, accumulate, relu));
  }
}

/// 16-wide column panel for R rows.
template <int R>
inline void MicroKernel16(const float* const* arows, const Matrix& b,
                          float* const* crows, size_t j, size_t k,
                          const float* bias, bool accumulate, bool relu) {
  __m512 acc[R];
  for (int r = 0; r < R; ++r) acc[r] = _mm512_setzero_ps();
  for (size_t kk = 0; kk < k; ++kk) {
    const __m512 b0 = _mm512_loadu_ps(b.Row(kk) + j);
    for (int r = 0; r < R; ++r) {
      acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(arows[r][kk]), b0, acc[r]);
    }
  }
  for (int r = 0; r < R; ++r) {
    _mm512_storeu_ps(crows[r] + j,
                     Epilogue16(acc[r], crows[r], bias, j, accumulate, relu));
  }
}

/// Masked (<16 wide) column tail for R rows.
template <int R>
inline void MicroKernelTail(const float* const* arows, const Matrix& b,
                            float* const* crows, size_t j, size_t rem,
                            size_t k, const float* bias, bool accumulate,
                            bool relu) {
  const __mmask16 mask = TailMask16(rem);
  __m512 acc[R];
  for (int r = 0; r < R; ++r) acc[r] = _mm512_setzero_ps();
  for (size_t kk = 0; kk < k; ++kk) {
    const __m512 b0 = _mm512_maskz_loadu_ps(mask, b.Row(kk) + j);
    for (int r = 0; r < R; ++r) {
      acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(arows[r][kk]), b0, acc[r]);
    }
  }
  const __m512 bias_v = bias != nullptr
                            ? _mm512_maskz_loadu_ps(mask, bias + j)
                            : _mm512_setzero_ps();
  for (int r = 0; r < R; ++r) {
    __m512 v = acc[r];
    if (accumulate) {
      v = _mm512_add_ps(v, _mm512_maskz_loadu_ps(mask, crows[r] + j));
    }
    v = _mm512_add_ps(v, bias_v);
    if (relu) v = _mm512_max_ps(v, _mm512_setzero_ps());
    _mm512_mask_storeu_ps(crows[r] + j, mask, v);
  }
}

template <int R>
inline void MatMulRowBlock(const float* const* arows, const Matrix& b,
                           float* const* crows, size_t n, size_t k,
                           const float* bias, bool accumulate, bool relu) {
  size_t j = 0;
  for (; j + 32 <= n; j += 32) {
    MicroKernel32<R>(arows, b, crows, j, k, bias, accumulate, relu);
  }
  if (j + 16 <= n) {
    MicroKernel16<R>(arows, b, crows, j, k, bias, accumulate, relu);
    j += 16;
  }
  if (j < n) {
    MicroKernelTail<R>(arows, b, crows, j, n - j, k, bias, accumulate, relu);
  }
}

void Avx512MatMulEpilogueRange(const Matrix& a, const Matrix& b, Matrix* c,
                               size_t r0, size_t r1, bool accumulate,
                               const float* bias, bool relu) {
  const size_t k = a.cols(), n = b.cols();
  assert(b.rows() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(r0 <= r1 && r1 <= a.rows());
  const float* arows[8];
  float* crows[8];
  size_t i = r0;
  for (; i + 8 <= r1; i += 8) {
    for (int r = 0; r < 8; ++r) {
      arows[r] = a.Row(i + r);
      crows[r] = c->Row(i + r);
    }
    MatMulRowBlock<8>(arows, b, crows, n, k, bias, accumulate, relu);
  }
  // Row tail: ONE multi-row pass, not row-by-row. When b exceeds cache
  // (e.g. wide serving layers) each pass re-streams all of b from memory,
  // so a 7-row tail done per-row would cost ~7 full-tile B streams; a
  // single R-row block shares the stream. Per-row FMA order matches the
  // 8-row block exactly, so results are bit-identical either way.
  if (i < r1) {
    const size_t rem = r1 - i;
    for (size_t r = 0; r < rem; ++r) {
      arows[r] = a.Row(i + r);
      crows[r] = c->Row(i + r);
    }
    switch (rem) {
      case 1: MatMulRowBlock<1>(arows, b, crows, n, k, bias, accumulate, relu); break;
      case 2: MatMulRowBlock<2>(arows, b, crows, n, k, bias, accumulate, relu); break;
      case 3: MatMulRowBlock<3>(arows, b, crows, n, k, bias, accumulate, relu); break;
      case 4: MatMulRowBlock<4>(arows, b, crows, n, k, bias, accumulate, relu); break;
      case 5: MatMulRowBlock<5>(arows, b, crows, n, k, bias, accumulate, relu); break;
      case 6: MatMulRowBlock<6>(arows, b, crows, n, k, bias, accumulate, relu); break;
      default: MatMulRowBlock<7>(arows, b, crows, n, k, bias, accumulate, relu); break;
    }
  }
}

void Avx512MatMulRange(const Matrix& a, const Matrix& b, Matrix* c, size_t r0,
                       size_t r1, bool accumulate) {
  Avx512MatMulEpilogueRange(a, b, c, r0, r1, accumulate, nullptr, false);
}

void Avx512MatMulBiasActRange(const Matrix& a, const Matrix& b, Matrix* c,
                              size_t r0, size_t r1, const float* bias,
                              bool relu) {
  Avx512MatMulEpilogueRange(a, b, c, r0, r1, /*accumulate=*/false, bias,
                            relu);
}

// ---------------------------------------------------------------------------
// Packed-B GEMM (tensor/packed.h). Every B panel is a contiguous run of
// 16-float cache lines, so the steady loop advances B by exactly one line
// per reduction step — no row-pitch strides, which is what makes the wide
// batch-1 serving forward prefetch-friendly again.
//
// Bit-identity with the unpacked kernels above: each output element is one
// ascending-k FMA chain into a single accumulator lane, then the identical
// epilogue. Multi-k-block runs park the fp32 partial in C between blocks —
// an exact store/reload — so the chain's value sequence is unchanged.
// C-as-partial-storage is only legal when the output is overwritten
// (accumulate=false); accumulate=true keeps the whole chain in registers
// (block loop inside the kernel) because the unpacked epilogue adds the
// original C LAST.
//
// The bf16 kernels share this code via the Loader parameter: each packed
// lane widens to fp32 on load (exact: bf16 is the upper half of the fp32
// bits) and everything downstream is the same fp32 arithmetic.
// ---------------------------------------------------------------------------

struct PackedLoadF32 {
  static __m512 Load(const float* p) { return _mm512_load_ps(p); }
};

struct PackedLoadBf16 {
  static __m512 Load(const uint16_t* p) {
    const __m256i raw =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
    // Widening is exact: bf16 is the upper half of the fp32 bit pattern.
    return _mm512_castsi512_ps(
        _mm512_slli_epi32(_mm512_cvtepu16_epi32(raw), 16));
  }
};

/// Two full panels (32 cols) x R rows over one k-block. `first` starts the
/// chains at zero, otherwise they resume from the partials parked in C;
/// `last` applies the epilogue, otherwise raw partials are stored back.
template <int R, typename Loader, typename Packed>
inline void PackedPanelPair(const float* const* arows, const Packed& b,
                            size_t pb, size_t jp, float* const* crows,
                            bool first, bool last, bool accumulate,
                            const float* bias, bool relu) {
  const auto* p0 = b.Panel(pb, jp);
  const auto* p1 = b.Panel(pb, jp + 1);
  const size_t j = jp * 16;
  const size_t k0 = b.BlockBegin(pb), kb = b.BlockRows(pb);
  __m512 acc[R][2];
  if (first) {
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm512_setzero_ps();
      acc[r][1] = _mm512_setzero_ps();
    }
  } else {
    for (int r = 0; r < R; ++r) {
      acc[r][0] = _mm512_loadu_ps(crows[r] + j);
      acc[r][1] = _mm512_loadu_ps(crows[r] + j + 16);
    }
  }
  for (size_t kk = 0; kk < kb; ++kk) {
    const __m512 b0 = Loader::Load(p0 + kk * 16);
    const __m512 b1 = Loader::Load(p1 + kk * 16);
    for (int r = 0; r < R; ++r) {
      const __m512 av = _mm512_set1_ps(arows[r][k0 + kk]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  if (last) {
    for (int r = 0; r < R; ++r) {
      _mm512_storeu_ps(
          crows[r] + j,
          Epilogue16(acc[r][0], crows[r], bias, j, accumulate, relu));
      _mm512_storeu_ps(
          crows[r] + j + 16,
          Epilogue16(acc[r][1], crows[r], bias, j + 16, accumulate, relu));
    }
  } else {
    for (int r = 0; r < R; ++r) {
      _mm512_storeu_ps(crows[r] + j, acc[r][0]);
      _mm512_storeu_ps(crows[r] + j + 16, acc[r][1]);
    }
  }
}

/// One full panel (16 cols) x R rows over one k-block.
template <int R, typename Loader, typename Packed>
inline void PackedPanelOne(const float* const* arows, const Packed& b,
                           size_t pb, size_t jp, float* const* crows,
                           bool first, bool last, bool accumulate,
                           const float* bias, bool relu) {
  const auto* p0 = b.Panel(pb, jp);
  const size_t j = jp * 16;
  const size_t k0 = b.BlockBegin(pb), kb = b.BlockRows(pb);
  __m512 acc[R];
  if (first) {
    for (int r = 0; r < R; ++r) acc[r] = _mm512_setzero_ps();
  } else {
    for (int r = 0; r < R; ++r) acc[r] = _mm512_loadu_ps(crows[r] + j);
  }
  for (size_t kk = 0; kk < kb; ++kk) {
    const __m512 b0 = Loader::Load(p0 + kk * 16);
    for (int r = 0; r < R; ++r) {
      acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(arows[r][k0 + kk]), b0,
                               acc[r]);
    }
  }
  if (last) {
    for (int r = 0; r < R; ++r) {
      _mm512_storeu_ps(
          crows[r] + j,
          Epilogue16(acc[r], crows[r], bias, j, accumulate, relu));
    }
  } else {
    for (int r = 0; r < R; ++r) _mm512_storeu_ps(crows[r] + j, acc[r]);
  }
}

/// The ragged last panel (<16 live cols): B loads stay full-width (the
/// panel is zero-padded, fma(a, 0, acc) == acc), C access is masked. The
/// last-block epilogue mirrors MicroKernelTail exactly (unconditional add
/// of a maybe-zero bias vector) so packed and unpacked tails stay
/// bit-identical.
template <int R, typename Loader, typename Packed>
inline void PackedPanelRagged(const float* const* arows, const Packed& b,
                              size_t pb, size_t jp, size_t rem,
                              float* const* crows, bool first, bool last,
                              bool accumulate, const float* bias,
                              bool relu) {
  const auto* p0 = b.Panel(pb, jp);
  const size_t j = jp * 16;
  const size_t k0 = b.BlockBegin(pb), kb = b.BlockRows(pb);
  const __mmask16 mask = TailMask16(rem);
  __m512 acc[R];
  if (first) {
    for (int r = 0; r < R; ++r) acc[r] = _mm512_setzero_ps();
  } else {
    for (int r = 0; r < R; ++r) {
      acc[r] = _mm512_maskz_loadu_ps(mask, crows[r] + j);
    }
  }
  for (size_t kk = 0; kk < kb; ++kk) {
    const __m512 b0 = Loader::Load(p0 + kk * 16);
    for (int r = 0; r < R; ++r) {
      acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(arows[r][k0 + kk]), b0,
                               acc[r]);
    }
  }
  if (last) {
    const __m512 bias_v = bias != nullptr
                              ? _mm512_maskz_loadu_ps(mask, bias + j)
                              : _mm512_setzero_ps();
    for (int r = 0; r < R; ++r) {
      __m512 v = acc[r];
      if (accumulate) {
        v = _mm512_add_ps(v, _mm512_maskz_loadu_ps(mask, crows[r] + j));
      }
      v = _mm512_add_ps(v, bias_v);
      if (relu) v = _mm512_max_ps(v, _mm512_setzero_ps());
      _mm512_mask_storeu_ps(crows[r] + j, mask, v);
    }
  } else {
    for (int r = 0; r < R; ++r) {
      _mm512_mask_storeu_ps(crows[r] + j, mask, acc[r]);
    }
  }
}

/// All panels of one k-block for an R-row block of A.
template <int R, typename Loader, typename Packed>
inline void PackedRowBlock(const float* const* arows, const Packed& b,
                           float* const* crows, size_t pb, bool first,
                           bool last, bool accumulate, const float* bias,
                           bool relu) {
  const size_t n = b.n();
  const size_t full = n / 16;
  size_t jp = 0;
  for (; jp + 2 <= full; jp += 2) {
    PackedPanelPair<R, Loader>(arows, b, pb, jp, crows, first, last,
                               accumulate, bias, relu);
  }
  if (jp < full) {
    PackedPanelOne<R, Loader>(arows, b, pb, jp, crows, first, last,
                              accumulate, bias, relu);
    ++jp;
  }
  if (jp * 16 < n) {
    PackedPanelRagged<R, Loader>(arows, b, pb, jp, n - jp * 16, crows,
                                 first, last, accumulate, bias, relu);
  }
}

/// Register-resident full-reduction row block: the block loop runs inside
/// the accumulator lifetime, so C is never used as partial storage. Used
/// when accumulate=true (the original C must survive until the epilogue)
/// and for the k==0 edge (epilogue only).
template <int R, typename Loader, typename Packed>
inline void PackedRowBlockFullK(const float* const* arows, const Packed& b,
                                float* const* crows, bool accumulate,
                                const float* bias, bool relu) {
  const size_t n = b.n();
  const size_t nb = b.num_blocks();
  const size_t full = n / 16;
  for (size_t jp = 0; jp < full; ++jp) {
    const size_t j = jp * 16;
    __m512 acc[R];
    for (int r = 0; r < R; ++r) acc[r] = _mm512_setzero_ps();
    for (size_t pb = 0; pb < nb; ++pb) {
      const auto* p0 = b.Panel(pb, jp);
      const size_t k0 = b.BlockBegin(pb), kb = b.BlockRows(pb);
      for (size_t kk = 0; kk < kb; ++kk) {
        const __m512 b0 = Loader::Load(p0 + kk * 16);
        for (int r = 0; r < R; ++r) {
          acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(arows[r][k0 + kk]), b0,
                                   acc[r]);
        }
      }
    }
    for (int r = 0; r < R; ++r) {
      _mm512_storeu_ps(
          crows[r] + j,
          Epilogue16(acc[r], crows[r], bias, j, accumulate, relu));
    }
  }
  if (full * 16 < n) {
    const size_t j = full * 16;
    const __mmask16 mask = TailMask16(n - j);
    __m512 acc[R];
    for (int r = 0; r < R; ++r) acc[r] = _mm512_setzero_ps();
    for (size_t pb = 0; pb < nb; ++pb) {
      const auto* p0 = b.Panel(pb, full);
      const size_t k0 = b.BlockBegin(pb), kb = b.BlockRows(pb);
      for (size_t kk = 0; kk < kb; ++kk) {
        const __m512 b0 = Loader::Load(p0 + kk * 16);
        for (int r = 0; r < R; ++r) {
          acc[r] = _mm512_fmadd_ps(_mm512_set1_ps(arows[r][k0 + kk]), b0,
                                   acc[r]);
        }
      }
    }
    const __m512 bias_v = bias != nullptr
                              ? _mm512_maskz_loadu_ps(mask, bias + j)
                              : _mm512_setzero_ps();
    for (int r = 0; r < R; ++r) {
      __m512 v = acc[r];
      if (accumulate) {
        v = _mm512_add_ps(v, _mm512_maskz_loadu_ps(mask, crows[r] + j));
      }
      v = _mm512_add_ps(v, bias_v);
      if (relu) v = _mm512_max_ps(v, _mm512_setzero_ps());
      _mm512_mask_storeu_ps(crows[r] + j, mask, v);
    }
  }
}

template <typename Loader, typename Packed>
void Avx512PackedEpilogueRange(const Matrix& a, const Packed& b, Matrix* c,
                               size_t r0, size_t r1, bool accumulate,
                               const float* bias, bool relu) {
  const size_t k = a.cols(), n = b.n();
  assert(b.k() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(r0 <= r1 && r1 <= a.rows());
  (void)k;
  if (n == 0 || r0 == r1) return;
  const size_t nb = b.num_blocks();
  const float* arows[8];
  float* crows[8];

  if (accumulate || nb == 0) {
    // Register-resident chains (see PackedRowBlockFullK).
    size_t i = r0;
    for (; i + 8 <= r1; i += 8) {
      for (int r = 0; r < 8; ++r) {
        arows[r] = a.Row(i + r);
        crows[r] = c->Row(i + r);
      }
      PackedRowBlockFullK<8, Loader>(arows, b, crows, accumulate, bias,
                                     relu);
    }
    if (i < r1) {
      const size_t rem = r1 - i;
      for (size_t r = 0; r < rem; ++r) {
        arows[r] = a.Row(i + r);
        crows[r] = c->Row(i + r);
      }
      switch (rem) {
        case 1: PackedRowBlockFullK<1, Loader>(arows, b, crows, accumulate, bias, relu); break;
        case 2: PackedRowBlockFullK<2, Loader>(arows, b, crows, accumulate, bias, relu); break;
        case 3: PackedRowBlockFullK<3, Loader>(arows, b, crows, accumulate, bias, relu); break;
        case 4: PackedRowBlockFullK<4, Loader>(arows, b, crows, accumulate, bias, relu); break;
        case 5: PackedRowBlockFullK<5, Loader>(arows, b, crows, accumulate, bias, relu); break;
        case 6: PackedRowBlockFullK<6, Loader>(arows, b, crows, accumulate, bias, relu); break;
        default: PackedRowBlockFullK<7, Loader>(arows, b, crows, accumulate, bias, relu); break;
      }
    }
    return;
  }

  // k-blocks outermost: one L2-sized block of packed B stays resident
  // while every row block of A streams against it; C carries the fp32
  // partials between blocks (exact store/reload — accumulate is false
  // here, so C has no prior value to preserve).
  for (size_t pb = 0; pb < nb; ++pb) {
    const bool first = pb == 0, last = pb + 1 == nb;
    size_t i = r0;
    for (; i + 8 <= r1; i += 8) {
      for (int r = 0; r < 8; ++r) {
        arows[r] = a.Row(i + r);
        crows[r] = c->Row(i + r);
      }
      PackedRowBlock<8, Loader>(arows, b, crows, pb, first, last,
                                /*accumulate=*/false, bias, relu);
    }
    if (i < r1) {
      const size_t rem = r1 - i;
      for (size_t r = 0; r < rem; ++r) {
        arows[r] = a.Row(i + r);
        crows[r] = c->Row(i + r);
      }
      switch (rem) {
        case 1: PackedRowBlock<1, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
        case 2: PackedRowBlock<2, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
        case 3: PackedRowBlock<3, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
        case 4: PackedRowBlock<4, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
        case 5: PackedRowBlock<5, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
        case 6: PackedRowBlock<6, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
        default: PackedRowBlock<7, Loader>(arows, b, crows, pb, first, last, false, bias, relu); break;
      }
    }
  }
}

void Avx512MatMulPackedRange(const Matrix& a, const PackedMatrix& b,
                             Matrix* c, size_t r0, size_t r1,
                             bool accumulate) {
  Avx512PackedEpilogueRange<PackedLoadF32>(a, b, c, r0, r1, accumulate,
                                           nullptr, false);
}

void Avx512MatMulPackedBiasActRange(const Matrix& a, const PackedMatrix& b,
                                    Matrix* c, size_t r0, size_t r1,
                                    const float* bias, bool relu) {
  Avx512PackedEpilogueRange<PackedLoadF32>(a, b, c, r0, r1,
                                           /*accumulate=*/false, bias, relu);
}

void Avx512MatMulPacked16BiasActRange(const Matrix& a,
                                      const PackedMatrix16& b, Matrix* c,
                                      size_t r0, size_t r1,
                                      const float* bias, bool relu) {
  Avx512PackedEpilogueRange<PackedLoadBf16>(a, b, c, r0, r1,
                                            /*accumulate=*/false, bias,
                                            relu);
}

// ---------------------------------------------------------------------------
// MatMulTransB (c = a * b^T): 16-lane dot products, lane-reduced per output.
// ---------------------------------------------------------------------------

/// dot(x, y) over k via one 16-lane FMA accumulator + masked tail.
inline __m512 DotAccum(const float* x, const float* y, size_t k) {
  __m512 acc = _mm512_setzero_ps();
  size_t kk = 0;
  for (; kk + 16 <= k; kk += 16) {
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(x + kk), _mm512_loadu_ps(y + kk),
                          acc);
  }
  if (kk < k) {
    const __mmask16 mask = TailMask16(k - kk);
    acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, x + kk),
                          _mm512_maskz_loadu_ps(mask, y + kk), acc);
  }
  return acc;
}

void Avx512MatMulTransBRange(const Matrix& a, const Matrix& b, Matrix* c,
                             size_t r0, size_t r1, bool accumulate) {
  const size_t k = a.cols(), n = b.rows();
  assert(b.cols() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(r0 <= r1 && r1 <= a.rows());
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a.Row(i);
    float* crow = c->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float acc = _mm512_reduce_add_ps(DotAccum(arow, b.Row(j), k));
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

// ---------------------------------------------------------------------------
// MatMulTransA (c = a^T * b): broadcast-FMA rank-1 updates.
// ---------------------------------------------------------------------------

/// crow[0, n) += av * brow[0, n), vectorized with a masked tail.
inline void RankOneUpdate(float av, const float* brow, float* crow,
                          size_t n) {
  const __m512 av16 = _mm512_set1_ps(av);
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    _mm512_storeu_ps(crow + j,
                     _mm512_fmadd_ps(av16, _mm512_loadu_ps(brow + j),
                                     _mm512_loadu_ps(crow + j)));
  }
  if (j < n) {
    const __mmask16 mask = TailMask16(n - j);
    _mm512_mask_storeu_ps(
        crow + j, mask,
        _mm512_fmadd_ps(av16, _mm512_maskz_loadu_ps(mask, brow + j),
                        _mm512_maskz_loadu_ps(mask, crow + j)));
  }
}

void Avx512MatMulTransARange(const Matrix& a, const Matrix& b, Matrix* c,
                             size_t r_begin, size_t r_end) {
  const size_t m = a.cols(), n = b.cols();
  assert(b.rows() == a.rows());
  assert(c->rows() == m && c->cols() == n);
  assert(r_begin <= r_end && r_end <= a.rows());
  for (size_t rr = r_begin; rr < r_end; ++rr) {
    const float* arow = a.Row(rr);
    const float* brow = b.Row(rr);
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;  // masked neighbor gradients are common
      RankOneUpdate(av, brow, c->Row(i), n);
    }
  }
}

void Avx512MatMulTransAOutputRange(const Matrix& a, const Matrix& b,
                                   Matrix* c, size_t i_begin, size_t i_end,
                                   bool accumulate) {
  const size_t r = a.rows(), n = b.cols();
  if (!accumulate) {
    for (size_t i = i_begin; i < i_end; ++i) {
      std::memset(c->Row(i), 0, n * sizeof(float));
    }
  }
  // rr stays the outer ascending loop so per-element accumulation order
  // matches Avx512MatMulTransARange exactly (bit-identical parallel runs).
  for (size_t rr = 0; rr < r; ++rr) {
    const float* arow = a.Row(rr);
    const float* brow = b.Row(rr);
    for (size_t i = i_begin; i < i_end; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      RankOneUpdate(av, brow, c->Row(i), n);
    }
  }
}

// ---------------------------------------------------------------------------
// Row/vector kernels.
// ---------------------------------------------------------------------------

void Avx512AddRowVector(Matrix* m, const float* bias) {
  const size_t rows = m->rows(), cols = m->cols();
  for (size_t i = 0; i < rows; ++i) {
    float* row = m->Row(i);
    size_t j = 0;
    for (; j + 16 <= cols; j += 16) {
      _mm512_storeu_ps(row + j, _mm512_add_ps(_mm512_loadu_ps(row + j),
                                              _mm512_loadu_ps(bias + j)));
    }
    if (j < cols) {
      const __mmask16 mask = TailMask16(cols - j);
      _mm512_mask_storeu_ps(
          row + j, mask,
          _mm512_add_ps(_mm512_maskz_loadu_ps(mask, row + j),
                        _mm512_maskz_loadu_ps(mask, bias + j)));
    }
  }
}

void Avx512ReluInPlace(Matrix* m) {
  const __m512 zero = _mm512_setzero_ps();
  const size_t rows = m->rows(), cols = m->cols();
  for (size_t i = 0; i < rows; ++i) {
    float* row = m->Row(i);
    size_t j = 0;
    for (; j + 16 <= cols; j += 16) {
      _mm512_storeu_ps(row + j, _mm512_max_ps(_mm512_loadu_ps(row + j),
                                              zero));
    }
    if (j < cols) {
      const __mmask16 mask = TailMask16(cols - j);
      _mm512_mask_storeu_ps(
          row + j, mask,
          _mm512_max_ps(_mm512_maskz_loadu_ps(mask, row + j), zero));
    }
  }
}

void Avx512Axpy(float alpha, const float* x, float* y, size_t n) {
  const __m512 a16 = _mm512_set1_ps(alpha);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(a16, _mm512_loadu_ps(x + i),
                                            _mm512_loadu_ps(y + i)));
  }
  if (i < n) {
    const __mmask16 mask = TailMask16(n - i);
    _mm512_mask_storeu_ps(
        y + i, mask,
        _mm512_fmadd_ps(a16, _mm512_maskz_loadu_ps(mask, x + i),
                        _mm512_maskz_loadu_ps(mask, y + i)));
  }
}

void Avx512ColumnSumsRange(const Matrix& m, float* out, size_t row_begin,
                           size_t row_end, bool accumulate) {
  const size_t cols = m.cols();
  if (!accumulate) std::memset(out, 0, cols * sizeof(float));
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* row = m.Row(i);
    size_t j = 0;
    for (; j + 16 <= cols; j += 16) {
      _mm512_storeu_ps(out + j, _mm512_add_ps(_mm512_loadu_ps(out + j),
                                              _mm512_loadu_ps(row + j)));
    }
    if (j < cols) {
      const __mmask16 mask = TailMask16(cols - j);
      _mm512_mask_storeu_ps(
          out + j, mask,
          _mm512_add_ps(_mm512_maskz_loadu_ps(mask, out + j),
                        _mm512_maskz_loadu_ps(mask, row + j)));
    }
  }
}

void Avx512AdamUpdate(float* w, const float* g, float* m, float* v, size_t n,
                      float step, float beta1, float beta2, float eps) {
  const __m512 b1 = _mm512_set1_ps(beta1);
  const __m512 omb1 = _mm512_set1_ps(1.0f - beta1);
  const __m512 b2 = _mm512_set1_ps(beta2);
  const __m512 omb2 = _mm512_set1_ps(1.0f - beta2);
  const __m512 step16 = _mm512_set1_ps(step);
  const __m512 eps16 = _mm512_set1_ps(eps);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 g16 = _mm512_loadu_ps(g + i);
    const __m512 m16 =
        _mm512_fmadd_ps(b1, _mm512_loadu_ps(m + i), _mm512_mul_ps(omb1, g16));
    const __m512 v16 = _mm512_fmadd_ps(
        b2, _mm512_loadu_ps(v + i),
        _mm512_mul_ps(omb2, _mm512_mul_ps(g16, g16)));
    _mm512_storeu_ps(m + i, m16);
    _mm512_storeu_ps(v + i, v16);
    const __m512 denom = _mm512_add_ps(_mm512_sqrt_ps(v16), eps16);
    const __m512 upd = _mm512_div_ps(_mm512_mul_ps(step16, m16), denom);
    _mm512_storeu_ps(w + i, _mm512_sub_ps(_mm512_loadu_ps(w + i), upd));
  }
  if (i < n) {
    // Masked tail: dead lanes compute 0/(sqrt(0)+eps) = 0 — no traps — and
    // the mask keeps their stores from landing.
    const __mmask16 mask = TailMask16(n - i);
    const __m512 g16 = _mm512_maskz_loadu_ps(mask, g + i);
    const __m512 m16 = _mm512_fmadd_ps(b1, _mm512_maskz_loadu_ps(mask, m + i),
                                       _mm512_mul_ps(omb1, g16));
    const __m512 v16 = _mm512_fmadd_ps(
        b2, _mm512_maskz_loadu_ps(mask, v + i),
        _mm512_mul_ps(omb2, _mm512_mul_ps(g16, g16)));
    _mm512_mask_storeu_ps(m + i, mask, m16);
    _mm512_mask_storeu_ps(v + i, mask, v16);
    const __m512 denom = _mm512_add_ps(_mm512_sqrt_ps(v16), eps16);
    const __m512 upd = _mm512_div_ps(_mm512_mul_ps(step16, m16), denom);
    _mm512_mask_storeu_ps(
        w + i, mask,
        _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, w + i), upd));
  }
}

// ---------------------------------------------------------------------------
// 16-lane sincos: identical algorithm to the AVX2 backend (two-term
// Cody-Waite quadrant reduction + cephes minimax polynomials, ~1e-7
// absolute error), widened to zmm with mask-register quadrant fix-ups:
//   n = round(x * 2/pi) mod 4;  r = x - n * pi/2
//   swap sin/cos when n is odd, negate sin when n in {2,3}, negate cos
//   when n in {1,2}.
// ---------------------------------------------------------------------------
inline void Sincos16(__m512 x, __m512* s_out, __m512* c_out) {
  const __m512 kTwoOverPi = _mm512_set1_ps(0.63661977236758134f);
  const __m512 kPio2Hi = _mm512_set1_ps(1.57079601287841796875f);
  const __m512 kPio2Lo = _mm512_set1_ps(3.1391647326017846e-7f);
  const __m512 sign_mask = _mm512_set1_ps(-0.0f);

  const __m512 xsign = _mm512_and_ps(x, sign_mask);
  const __m512 ax = _mm512_andnot_ps(sign_mask, x);

  const __m512 q = _mm512_roundscale_ps(
      _mm512_mul_ps(ax, kTwoOverPi),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m512i qi = _mm512_cvtps_epi32(q);
  __m512 r = _mm512_fnmadd_ps(q, kPio2Hi, ax);
  r = _mm512_fnmadd_ps(q, kPio2Lo, r);

  const __m512 z = _mm512_mul_ps(r, r);
  // sin(r) = r + r*z*((S0*z + S1)*z + S2)
  __m512 sp = _mm512_set1_ps(-1.9515295891e-4f);
  sp = _mm512_fmadd_ps(sp, z, _mm512_set1_ps(8.3321608736e-3f));
  sp = _mm512_fmadd_ps(sp, z, _mm512_set1_ps(-1.6666654611e-1f));
  sp = _mm512_fmadd_ps(_mm512_mul_ps(sp, z), r, r);
  // cos(r) = 1 - z/2 + z*z*((C0*z + C1)*z + C2)
  __m512 cp = _mm512_set1_ps(2.443315711809948e-5f);
  cp = _mm512_fmadd_ps(cp, z, _mm512_set1_ps(-1.388731625493765e-3f));
  cp = _mm512_fmadd_ps(cp, z, _mm512_set1_ps(4.166664568298827e-2f));
  cp = _mm512_mul_ps(cp, _mm512_mul_ps(z, z));
  cp = _mm512_fnmadd_ps(z, _mm512_set1_ps(0.5f),
                        _mm512_add_ps(cp, _mm512_set1_ps(1.0f)));

  const __m512i one = _mm512_set1_epi32(1);
  const __m512i two = _mm512_set1_epi32(2);
  const __mmask16 swap =
      _mm512_cmpeq_epi32_mask(_mm512_and_epi32(qi, one), one);
  const __m512 sin_r = _mm512_mask_blend_ps(swap, sp, cp);
  const __m512 cos_r = _mm512_mask_blend_ps(swap, cp, sp);
  const __mmask16 sin_neg =
      _mm512_cmpeq_epi32_mask(_mm512_and_epi32(qi, two), two);
  const __mmask16 cos_neg = _mm512_cmpeq_epi32_mask(
      _mm512_and_epi32(_mm512_add_epi32(qi, one), two), two);
  // sin is odd in the input sign; cos is even.
  __m512 sv = _mm512_mask_xor_ps(sin_r, sin_neg, sin_r, sign_mask);
  sv = _mm512_xor_ps(sv, xsign);
  *s_out = sv;
  *c_out = _mm512_mask_xor_ps(cos_r, cos_neg, cos_r, sign_mask);
}

void Avx512SincosEncode(float x, float freq_decay, float* out, size_t dim) {
  const size_t pairs = dim / 2;
  // The frequency ladder replicates the scalar chained multiply exactly
  // (same float rounding per rung); only sin/cos themselves differ, by the
  // polynomial's ~1e-7.
  alignas(64) float angles[16];
  // Lane interleave [s0..s15] x [c0..c15] -> (s,c) pairs via two-source
  // permutes: indices 0..15 select from s, 16..31 from c.
  const __m512i idx_lo = _mm512_set_epi32(23, 7, 22, 6, 21, 5, 20, 4, 19, 3,
                                          18, 2, 17, 1, 16, 0);
  const __m512i idx_hi = _mm512_set_epi32(31, 15, 30, 14, 29, 13, 28, 12, 27,
                                          11, 26, 10, 25, 9, 24, 8);
  float freq = 1.0f;
  size_t p = 0;
  while (p < pairs) {
    const size_t chunk = pairs - p < 16 ? pairs - p : 16;
    for (size_t lane = 0; lane < chunk; ++lane) {
      angles[lane] = x * freq;
      freq *= freq_decay;
    }
    for (size_t lane = chunk; lane < 16; ++lane) angles[lane] = 0.0f;
    __m512 s, c;
    Sincos16(_mm512_load_ps(angles), &s, &c);
    const __m512 v0 = _mm512_permutex2var_ps(s, idx_lo, c);
    const __m512 v1 = _mm512_permutex2var_ps(s, idx_hi, c);
    const size_t n_out = 2 * chunk;
    if (n_out >= 16) {
      _mm512_storeu_ps(out + 2 * p, v0);
      if (n_out > 16) {
        _mm512_mask_storeu_ps(out + 2 * p + 16, TailMask16(n_out - 16), v1);
      }
    } else {
      _mm512_mask_storeu_ps(out + 2 * p, TailMask16(n_out), v0);
    }
    p += chunk;
  }
  if (dim % 2 == 1) out[dim - 1] = x * 0.1f;
}

const KernelTable kAvx512Table = {
    "avx512",
    Avx512MatMulRange,
    Avx512MatMulBiasActRange,
    Avx512MatMulTransBRange,
    Avx512MatMulTransARange,
    Avx512MatMulTransAOutputRange,
    Avx512AddRowVector,
    Avx512ReluInPlace,
    Avx512Axpy,
    Avx512ColumnSumsRange,
    Avx512AdamUpdate,
    Avx512SincosEncode,
    Avx512MatMulPackedRange,
    Avx512MatMulPackedBiasActRange,
    Avx512MatMulPacked16BiasActRange,
};

}  // namespace

const KernelTable* GetAvx512Kernels() { return &kAvx512Table; }

}  // namespace splash

#else  // !(__AVX512F__ && __AVX512VL__ && __AVX512DQ__)

// Compiled without AVX-512 support (non-x86 target or a toolchain without
// -mavx512f): the dispatcher sees nullptr and resolves past this backend.
namespace splash {
const KernelTable* GetAvx512Kernels() { return nullptr; }
}  // namespace splash

#endif
