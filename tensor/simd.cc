// Copyright 2026 The SPLASH Reproduction Authors.
//
// Backend resolution for the kernel table (DESIGN.md §6): one atomic
// pointer, resolved from SPLASH_KERNEL + cpuid on first use. The resolution
// logic itself is a pure function so tests can pin every (env, cpu) cell.

#include "tensor/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace splash {

namespace {

std::atomic<const KernelTable*> g_kernels{nullptr};

const KernelTable* TableByName(const char* name) {
  if (std::strcmp(name, "avx512") == 0) return GetAvx512Kernels();
  if (std::strcmp(name, "avx2") == 0) return GetAvx2Kernels();
  return GetScalarKernels();
}

const KernelTable* ResolveFromEnvironment() {
  return TableByName(ResolveKernelChoice(std::getenv("SPLASH_KERNEL"),
                                         CpuSupportsAvx2Fma(),
                                         GetAvx2Kernels() != nullptr,
                                         CpuSupportsAvx512(),
                                         GetAvx512Kernels() != nullptr));
}

}  // namespace

bool CpuSupportsAvx2Fma() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuSupportsAvx512() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

std::string CpuFeatureString() {
  std::string s;
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) s += "avx2";
  if (__builtin_cpu_supports("fma")) s += s.empty() ? "fma" : "+fma";
  if (__builtin_cpu_supports("avx512f")) s += "+avx512f";
  if (__builtin_cpu_supports("avx512vl")) s += "+avx512vl";
  if (__builtin_cpu_supports("avx512dq")) s += "+avx512dq";
#endif
  if (s.empty()) s = "baseline";
  return s;
}

const char* ResolveKernelChoice(const char* env, bool cpu_has_avx2,
                                bool avx2_compiled, bool cpu_has_avx512,
                                bool avx512_compiled) {
  const bool avx2_ok = cpu_has_avx2 && avx2_compiled;
  const bool avx512_ok = cpu_has_avx512 && avx512_compiled;
  const char* best = avx512_ok ? "avx512" : avx2_ok ? "avx2" : "scalar";
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return best;
  }
  if (std::strcmp(env, "scalar") == 0) return "scalar";
  if (std::strcmp(env, "avx2") == 0) {
    if (avx2_ok) return "avx2";
    std::fprintf(stderr,
                 "splash: SPLASH_KERNEL=avx2 but %s; falling back to the "
                 "scalar backend\n",
                 avx2_compiled ? "this CPU lacks AVX2/FMA"
                               : "the AVX2 backend was not compiled in");
    return "scalar";
  }
  if (std::strcmp(env, "avx512") == 0) {
    if (avx512_ok) return "avx512";
    const char* fallback = avx2_ok ? "avx2" : "scalar";
    std::fprintf(
        stderr,
        "splash: SPLASH_KERNEL=avx512 but %s; falling back to the %s "
        "backend\n",
        avx512_compiled ? "this CPU lacks AVX-512 F/VL/DQ"
                        : "the AVX-512 backend was not compiled in",
        fallback);
    return fallback;
  }
  std::fprintf(stderr,
               "splash: unknown SPLASH_KERNEL value '%s' (want scalar, "
               "avx2, avx512, or auto); using auto\n",
               env);
  return best;
}

const KernelTable& Kernels() {
  const KernelTable* t = g_kernels.load(std::memory_order_acquire);
  if (t == nullptr) {
    // Benign race: concurrent first callers resolve to the same table.
    t = ResolveFromEnvironment();
    g_kernels.store(t, std::memory_order_release);
  }
  return *t;
}

const char* KernelBackendName() { return Kernels().name; }

bool SetKernelBackendForTesting(const char* name) {
  const KernelTable* t;
  if (name == nullptr || std::strcmp(name, "auto") == 0) {
    t = ResolveFromEnvironment();
  } else if (std::strcmp(name, "scalar") == 0) {
    t = GetScalarKernels();
  } else if (std::strcmp(name, "avx2") == 0) {
    t = GetAvx2Kernels();
    if (t == nullptr || !CpuSupportsAvx2Fma()) return false;
  } else if (std::strcmp(name, "avx512") == 0) {
    t = GetAvx512Kernels();
    if (t == nullptr || !CpuSupportsAvx512()) return false;
  } else {
    return false;
  }
  g_kernels.store(t, std::memory_order_release);
  return true;
}

}  // namespace splash
