// Copyright 2026 The SPLASH Reproduction Authors.
//
// Backend resolution for the kernel table (DESIGN.md §6): one atomic
// pointer, resolved from SPLASH_KERNEL + cpuid on first use. The resolution
// logic itself is a pure function so tests can pin every (env, cpu) cell.

#include "tensor/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace splash {

namespace {

std::atomic<const KernelTable*> g_kernels{nullptr};

// Packed-GEMM kernel-selection knob: -1 unresolved, else 0/1. Resolved
// once from SPLASH_GEMM_PACK on first use (same benign-race pattern as
// the kernel table).
std::atomic<int> g_gemm_pack{-1};

const KernelTable* TableByName(const char* name) {
  if (std::strcmp(name, "avx512") == 0) return GetAvx512Kernels();
  if (std::strcmp(name, "avx2") == 0) return GetAvx2Kernels();
  return GetScalarKernels();
}

const KernelTable* ResolveFromEnvironment() {
  return TableByName(ResolveKernelChoice(std::getenv("SPLASH_KERNEL"),
                                         CpuSupportsAvx2Fma(),
                                         GetAvx2Kernels() != nullptr,
                                         CpuSupportsAvx512(),
                                         GetAvx512Kernels() != nullptr));
}

}  // namespace

bool CpuSupportsAvx2Fma() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuSupportsAvx512() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512vl") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

std::string CpuFeatureString() {
  std::string s;
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) s += "avx2";
  if (__builtin_cpu_supports("fma")) s += s.empty() ? "fma" : "+fma";
  if (__builtin_cpu_supports("avx512f")) s += "+avx512f";
  if (__builtin_cpu_supports("avx512vl")) s += "+avx512vl";
  if (__builtin_cpu_supports("avx512dq")) s += "+avx512dq";
#endif
  if (s.empty()) s = "baseline";
  return s;
}

const char* ResolveKernelChoice(const char* env, bool cpu_has_avx2,
                                bool avx2_compiled, bool cpu_has_avx512,
                                bool avx512_compiled) {
  const bool avx2_ok = cpu_has_avx2 && avx2_compiled;
  const bool avx512_ok = cpu_has_avx512 && avx512_compiled;
  const char* best = avx512_ok ? "avx512" : avx2_ok ? "avx2" : "scalar";
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return best;
  }
  if (std::strcmp(env, "scalar") == 0) return "scalar";
  if (std::strcmp(env, "avx2") == 0) {
    if (avx2_ok) return "avx2";
    std::fprintf(stderr,
                 "splash: SPLASH_KERNEL=avx2 but %s; falling back to the "
                 "scalar backend\n",
                 avx2_compiled ? "this CPU lacks AVX2/FMA"
                               : "the AVX2 backend was not compiled in");
    return "scalar";
  }
  if (std::strcmp(env, "avx512") == 0) {
    if (avx512_ok) return "avx512";
    const char* fallback = avx2_ok ? "avx2" : "scalar";
    std::fprintf(
        stderr,
        "splash: SPLASH_KERNEL=avx512 but %s; falling back to the %s "
        "backend\n",
        avx512_compiled ? "this CPU lacks AVX-512 F/VL/DQ"
                        : "the AVX-512 backend was not compiled in",
        fallback);
    return fallback;
  }
  std::fprintf(stderr,
               "splash: unknown SPLASH_KERNEL value '%s' (want scalar, "
               "avx2, avx512, or auto); using auto\n",
               env);
  return best;
}

const KernelTable& Kernels() {
  const KernelTable* t = g_kernels.load(std::memory_order_acquire);
  if (t == nullptr) {
    // Benign race: concurrent first callers resolve to the same table.
    t = ResolveFromEnvironment();
    g_kernels.store(t, std::memory_order_release);
  }
  return *t;
}

const char* KernelBackendName() { return Kernels().name; }

bool SetKernelBackendForTesting(const char* name) {
  const KernelTable* t;
  if (name == nullptr || std::strcmp(name, "auto") == 0) {
    t = ResolveFromEnvironment();
  } else if (std::strcmp(name, "scalar") == 0) {
    t = GetScalarKernels();
  } else if (std::strcmp(name, "avx2") == 0) {
    t = GetAvx2Kernels();
    if (t == nullptr || !CpuSupportsAvx2Fma()) return false;
  } else if (std::strcmp(name, "avx512") == 0) {
    t = GetAvx512Kernels();
    if (t == nullptr || !CpuSupportsAvx512()) return false;
  } else {
    return false;
  }
  g_kernels.store(t, std::memory_order_release);
  return true;
}

bool GemmPackEnabled() {
  int v = g_gemm_pack.load(std::memory_order_acquire);
  if (v < 0) {
    const char* env = std::getenv("SPLASH_GEMM_PACK");
    v = 1;
    if (env != nullptr && *env != '\0') {
      if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
        v = 0;
      } else if (std::strcmp(env, "on") != 0 &&
                 std::strcmp(env, "1") != 0) {
        std::fprintf(stderr,
                     "splash: unknown SPLASH_GEMM_PACK value '%s' (want on "
                     "or off); using on\n",
                     env);
      }
    }
    g_gemm_pack.store(v, std::memory_order_release);
  }
  return v != 0;
}

void SetGemmPackForTesting(bool enabled) {
  g_gemm_pack.store(enabled ? 1 : 0, std::memory_order_release);
}

namespace {

/// Reads one sysfs cache attribute ("level", "type", "size") for
/// cpu0/cache/index<idx>. Returns false on any I/O failure.
bool ReadCacheAttr(int idx, const char* attr, char* buf, size_t buf_len) {
  char path[128];
  std::snprintf(path, sizeof(path),
                "/sys/devices/system/cpu/cpu0/cache/index%d/%s", idx, attr);
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  const bool ok = std::fgets(buf, static_cast<int>(buf_len), f) != nullptr;
  std::fclose(f);
  if (!ok) return false;
  // Trim the trailing newline.
  const size_t len = std::strlen(buf);
  if (len > 0 && buf[len - 1] == '\n') buf[len - 1] = '\0';
  return true;
}

/// Parses sysfs cache sizes: "48K", "2048K", "1M", plain bytes.
size_t ParseCacheSize(const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return 0;
  if (*end == 'K' || *end == 'k') return static_cast<size_t>(v) << 10;
  if (*end == 'M' || *end == 'm') return static_cast<size_t>(v) << 20;
  if (*end == 'G' || *end == 'g') return static_cast<size_t>(v) << 30;
  return static_cast<size_t>(v);
}

CacheTopology ProbeCacheTopology() {
  // Conservative fallback: small-L2 sizing only costs extra k-blocks,
  // never correctness (packed results are bit-identical at any block
  // size on a given backend).
  CacheTopology t{32u << 10, 1u << 20, 0, false};
  size_t l1d = 0, l2 = 0, l3 = 0;
  char level[32], type[32], size[32];
  for (int idx = 0; idx < 8; ++idx) {
    if (!ReadCacheAttr(idx, "level", level, sizeof(level)) ||
        !ReadCacheAttr(idx, "type", type, sizeof(type)) ||
        !ReadCacheAttr(idx, "size", size, sizeof(size))) {
      break;  // indices are contiguous; the first miss ends the scan
    }
    const size_t bytes = ParseCacheSize(size);
    if (bytes == 0) continue;
    if (std::strcmp(level, "1") == 0 && std::strcmp(type, "Data") == 0) {
      l1d = bytes;
    } else if (std::strcmp(level, "2") == 0 &&
               std::strcmp(type, "Instruction") != 0) {
      l2 = bytes;
    } else if (std::strcmp(level, "3") == 0 &&
               std::strcmp(type, "Instruction") != 0) {
      l3 = bytes;
    }
  }
  if (l1d > 0 && l2 > 0) {
    t.l1d_bytes = l1d;
    t.l2_bytes = l2;
    t.l3_bytes = l3;
    t.detected = true;
  }
  return t;
}

}  // namespace

const CacheTopology& DetectCacheTopology() {
  static const CacheTopology topology = ProbeCacheTopology();
  return topology;
}

std::string CacheTopologyString() {
  const CacheTopology& t = DetectCacheTopology();
  std::string s = "l1d=" + std::to_string(t.l1d_bytes) +
                  ",l2=" + std::to_string(t.l2_bytes) +
                  ",l3=" + std::to_string(t.l3_bytes);
  if (!t.detected) s += ",fallback";
  return s;
}

}  // namespace splash
