// Copyright 2026 The SPLASH Reproduction Authors.
//
// Deterministic, allocation-free random number generation: splitmix64 for
// seeding/stateless hashing and xoshiro256++ for the main stream. Both are
// a handful of ALU ops per draw — cheap enough for per-edge use.

#ifndef SPLASH_TENSOR_RNG_H_
#define SPLASH_TENSOR_RNG_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace splash {

/// One splitmix64 step. Also usable as a stateless 64-bit mixer, which the
/// feature augmenter relies on for reproducible per-node random features.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256++ seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(x += 0x9e3779b97f4a7c15ULL);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    // Multiply-shift (Lemire). Bias is < 2^-64 * n, irrelevant here.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal float via Box-Muller (one value cached).
  float Gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = Uniform(), u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double a = 6.283185307179586 * u2;
    cached_ = static_cast<float>(r * std::sin(a));
    has_cached_ = true;
    return static_cast<float>(r * std::cos(a));
  }

  /// Fills `p[0..n)` with N(0, stddev^2) draws.
  void FillGaussian(float* p, size_t n, float stddev) {
    for (size_t i = 0; i < n; ++i) p[i] = stddev * Gaussian();
  }

  /// Complete generator state — the xoshiro words plus the Box-Muller
  /// cache — for checkpoint/restore. A restored Rng continues the exact
  /// draw sequence of the saved one (the recovery oracle depends on the
  /// dropout stream resuming bit-identically).
  struct State {
    uint64_t s[4];
    float cached;
    bool has_cached;
  };

  State SaveState() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.cached = cached_;
    st.has_cached = has_cached_;
    return st;
  }

  void LoadState(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    cached_ = st.cached;
    has_cached_ = st.has_cached;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  float cached_ = 0.0f;
  bool has_cached_ = false;
};

/// Stateless standard-normal value derived from a 64-bit key. Used for
/// reproducible per-(node, dim) random features without storing a matrix.
inline float HashGaussian(uint64_t key) {
  // Sum of two uniforms per Irwin-Hall would be crude; use one Box-Muller
  // branch from two independent mixes of the key.
  const uint64_t a = SplitMix64(key);
  const uint64_t b = SplitMix64(key ^ 0xd1b54a32d192ed03ULL);
  double u1 = static_cast<double>(a >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;
  if (u1 < 1e-300) u1 = 1e-300;
  return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) *
                            std::cos(6.283185307179586 * u2));
}

}  // namespace splash

#endif  // SPLASH_TENSOR_RNG_H_
