// Copyright 2026 The SPLASH Reproduction Authors.
//
// Backend-independent pack routines for the cache-aware GEMM tier
// (tensor/packed.h): plain sequential-write re-tiling, no intrinsics —
// only the GEMM kernels themselves are backend code. Packing cost is
// O(k * n) copies, paid once per publish/Adam-step against many reuses.

#include "tensor/packed.h"

#include <cstring>

#include "tensor/simd.h"

namespace splash {

size_t PackedKBlockRows(size_t k, size_t n) {
  if (k == 0) return 0;
  const size_t panels = (n + PackedMatrix::kPanelCols - 1) /
                        PackedMatrix::kPanelCols;
  const size_t bytes_per_row = panels * PackedMatrix::kPanelCols *
                               sizeof(float);
  // Half of L2 for the resident B block: the other half stays available
  // for the streaming A rows and the C partials.
  const size_t budget = DetectCacheTopology().l2_bytes / 2;
  size_t kb = bytes_per_row > 0 ? budget / bytes_per_row : k;
  kb = kb / 16 * 16;         // whole 16-row groups
  if (kb < 32) kb = 32;      // floor: never shred tiny reductions
  if (kb > k) kb = k;
  return kb;
}

namespace {

/// Shared re-tiling loop: Dst is float (identity) or uint16_t (bf16
/// conversion via `convert`).
template <typename Dst, typename Convert>
void PackPanels(const Matrix& b, size_t kb, Dst* out, Convert convert) {
  const size_t k = b.rows(), n = b.cols();
  const size_t panels = (n + PackedMatrix::kPanelCols - 1) /
                        PackedMatrix::kPanelCols;
  Dst* dst = out;
  for (size_t k0 = 0; k0 < k; k0 += kb) {
    const size_t rows = k - k0 < kb ? k - k0 : kb;
    for (size_t jp = 0; jp < panels; ++jp) {
      const size_t j0 = jp * PackedMatrix::kPanelCols;
      const size_t w = n - j0 < PackedMatrix::kPanelCols
                           ? n - j0
                           : PackedMatrix::kPanelCols;
      for (size_t kk = 0; kk < rows; ++kk) {
        const float* src = b.Row(k0 + kk) + j0;
        for (size_t j = 0; j < w; ++j) dst[j] = convert(src[j]);
        for (size_t j = w; j < PackedMatrix::kPanelCols; ++j) {
          dst[j] = Dst(0);
        }
        dst += PackedMatrix::kPanelCols;
      }
    }
  }
}

}  // namespace

void PackedMatrix::PackFrom(const Matrix& b) {
  k_ = b.rows();
  n_ = b.cols();
  if (empty()) return;
  kb_ = PackedKBlockRows(k_, n_);
  const size_t total = k_ * panels() * kPanelCols;
  if (data_.size() < total) data_.Resize(total);
  PackPanels(b, kb_, data_.data(), [](float v) { return v; });
}

void PackedMatrix16::PackFrom(const Matrix& b) {
  k_ = b.rows();
  n_ = b.cols();
  if (empty()) return;
  kb_ = PackedKBlockRows(k_, n_);
  const size_t total = k_ * panels() * kPanelCols;
  if (data_.size() < total) data_.Resize(total);
  PackPanels(b, kb_, data_.data(),
             [](float v) { return Bf16FromFloat(v); });
}

}  // namespace splash
