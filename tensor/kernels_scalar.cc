// Copyright 2026 The SPLASH Reproduction Authors.
//
// The scalar kernel backend: the pre-dispatch tensor/matrix.cc loops,
// verbatim, kept as the bit-exact determinism reference (DESIGN.md §6).
// Blocked for locality; the inner loops are unit-stride FMAs the compiler
// auto-vectorizes at whatever ISA the BUILD targets — which is exactly why
// this backend's numbers depend on build flags and the explicit AVX2
// backend exists. Do not "optimize" these loops: every determinism oracle
// (parallel_determinism_test, serve watermark replay, depth1==depth0) is
// anchored to their accumulation order.
//
// All kernels are stride-aware via Matrix::Row(); the only flat-memory
// fast paths check IsContiguous() first and fall back to per-row loops.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "tensor/matrix.h"
#include "tensor/packed.h"
#include "tensor/simd.h"

namespace splash {

namespace {

// Panel sizes: kBlockK * kBlockJ floats of `b` (64KiB at 128x128) stay hot
// while a stripe of `a` streams through.
constexpr size_t kBlockK = 128;
constexpr size_t kBlockJ = 128;

void ScalarMatMulRange(const Matrix& a, const Matrix& b, Matrix* c,
                       size_t row_begin, size_t row_end, bool accumulate) {
  const size_t k = a.cols(), n = b.cols();
  assert(b.rows() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(row_begin <= row_end && row_end <= a.rows());
  if (!accumulate) {
    for (size_t i = row_begin; i < row_end; ++i) {
      std::memset(c->Row(i), 0, n * sizeof(float));
    }
  }
  for (size_t j0 = 0; j0 < n; j0 += kBlockJ) {
    const size_t j1 = std::min(n, j0 + kBlockJ);
    for (size_t k0 = 0; k0 < k; k0 += kBlockK) {
      const size_t k1 = std::min(k, k0 + kBlockK);
      for (size_t i = row_begin; i < row_end; ++i) {
        const float* arow = a.Row(i);
        float* crow = c->Row(i);
        for (size_t kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;  // masked/sparse rows are common
          const float* brow = b.Row(kk);
          // Unit-stride FMA over the output row: auto-vectorizes.
          for (size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void ScalarMatMulBiasActRange(const Matrix& a, const Matrix& b, Matrix* c,
                              size_t row_begin, size_t row_end,
                              const float* bias, bool relu) {
  // GEMM then an epilogue pass — the identical arithmetic the pre-fusion
  // callers ran (MatMul, then row[j] + bias[j], then ReLU), so scalar
  // results are bit-equal to the historical three-pass sequence. Only the
  // SIMD backends fuse the epilogue into the tile store.
  ScalarMatMulRange(a, b, c, row_begin, row_end, /*accumulate=*/false);
  const size_t n = b.cols();
  for (size_t i = row_begin; i < row_end; ++i) {
    float* row = c->Row(i);
    if (bias != nullptr) {
      if (relu) {
        for (size_t j = 0; j < n; ++j) {
          const float v = row[j] + bias[j];
          row[j] = v > 0.0f ? v : 0.0f;
        }
      } else {
        for (size_t j = 0; j < n; ++j) row[j] += bias[j];
      }
    } else if (relu) {
      for (size_t j = 0; j < n; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
    }
  }
}

void ScalarMatMulPackedRange(const Matrix& a, const PackedMatrix& b,
                             Matrix* c, size_t row_begin, size_t row_end,
                             bool accumulate) {
  const size_t k = a.cols(), n = b.n();
  assert(b.k() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(row_begin <= row_end && row_end <= a.rows());
  (void)k;
  if (!accumulate) {
    for (size_t i = row_begin; i < row_end; ++i) {
      std::memset(c->Row(i), 0, n * sizeof(float));
    }
  }
  // k-blocks ascend outermost and kk ascends within each block, so every
  // output element accumulates over the reduction in the same ascending
  // order as ScalarMatMulRange (whose j0/k0 blocking is also order-
  // preserving per element) — bit-identical, including the av == 0 skip.
  const size_t panels = b.panels();
  const size_t nb = b.num_blocks();
  for (size_t pb = 0; pb < nb; ++pb) {
    const size_t k0 = b.BlockBegin(pb);
    const size_t rows = b.BlockRows(pb);
    for (size_t jp = 0; jp < panels; ++jp) {
      const float* panel = b.Panel(pb, jp);
      const size_t j0 = jp * PackedMatrix::kPanelCols;
      const size_t w = n - j0 < PackedMatrix::kPanelCols
                           ? n - j0
                           : PackedMatrix::kPanelCols;
      for (size_t i = row_begin; i < row_end; ++i) {
        const float* arow = a.Row(i) + k0;
        float* crow = c->Row(i) + j0;
        for (size_t kk = 0; kk < rows; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;  // masked/sparse rows are common
          const float* brow = panel + kk * PackedMatrix::kPanelCols;
          for (size_t j = 0; j < w; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void ScalarMatMulPackedBiasActRange(const Matrix& a, const PackedMatrix& b,
                                    Matrix* c, size_t row_begin,
                                    size_t row_end, const float* bias,
                                    bool relu) {
  // GEMM then a separate epilogue pass, mirroring ScalarMatMulBiasActRange
  // so packed scalar results stay bit-equal to unpacked scalar ones.
  ScalarMatMulPackedRange(a, b, c, row_begin, row_end, /*accumulate=*/false);
  const size_t n = b.n();
  for (size_t i = row_begin; i < row_end; ++i) {
    float* row = c->Row(i);
    if (bias != nullptr) {
      if (relu) {
        for (size_t j = 0; j < n; ++j) {
          const float v = row[j] + bias[j];
          row[j] = v > 0.0f ? v : 0.0f;
        }
      } else {
        for (size_t j = 0; j < n; ++j) row[j] += bias[j];
      }
    } else if (relu) {
      for (size_t j = 0; j < n; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
    }
  }
}

void ScalarMatMulPacked16BiasActRange(const Matrix& a,
                                      const PackedMatrix16& b, Matrix* c,
                                      size_t row_begin, size_t row_end,
                                      const float* bias, bool relu) {
  const size_t k = a.cols(), n = b.n();
  assert(b.k() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(row_begin <= row_end && row_end <= a.rows());
  (void)k;
  for (size_t i = row_begin; i < row_end; ++i) {
    std::memset(c->Row(i), 0, n * sizeof(float));
  }
  // Same loop structure as the fp32 packed kernel; each bf16 lane widens
  // exactly (bits << 16) and all accumulation stays fp32.
  const size_t panels = b.panels();
  const size_t nb = b.num_blocks();
  for (size_t pb = 0; pb < nb; ++pb) {
    const size_t k0 = b.BlockBegin(pb);
    const size_t rows = b.BlockRows(pb);
    for (size_t jp = 0; jp < panels; ++jp) {
      const uint16_t* panel = b.Panel(pb, jp);
      const size_t j0 = jp * PackedMatrix16::kPanelCols;
      const size_t w = n - j0 < PackedMatrix16::kPanelCols
                           ? n - j0
                           : PackedMatrix16::kPanelCols;
      for (size_t i = row_begin; i < row_end; ++i) {
        const float* arow = a.Row(i) + k0;
        float* crow = c->Row(i) + j0;
        for (size_t kk = 0; kk < rows; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const uint16_t* brow = panel + kk * PackedMatrix16::kPanelCols;
          for (size_t j = 0; j < w; ++j) {
            crow[j] += av * Bf16ToFloat(brow[j]);
          }
        }
      }
    }
  }
  for (size_t i = row_begin; i < row_end; ++i) {
    float* row = c->Row(i);
    if (bias != nullptr) {
      if (relu) {
        for (size_t j = 0; j < n; ++j) {
          const float v = row[j] + bias[j];
          row[j] = v > 0.0f ? v : 0.0f;
        }
      } else {
        for (size_t j = 0; j < n; ++j) row[j] += bias[j];
      }
    } else if (relu) {
      for (size_t j = 0; j < n; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
    }
  }
}

void ScalarMatMulTransBRange(const Matrix& a, const Matrix& b, Matrix* c,
                             size_t row_begin, size_t row_end,
                             bool accumulate) {
  const size_t k = a.cols(), n = b.rows();
  assert(b.cols() == k);
  assert(c->rows() == a.rows() && c->cols() == n);
  assert(row_begin <= row_end && row_end <= a.rows());
  // Dot-product form: both operands are read with unit stride.
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* arow = a.Row(i);
    float* crow = c->Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b.Row(j);
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      size_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        acc0 += arow[kk] * brow[kk];
        acc1 += arow[kk + 1] * brow[kk + 1];
        acc2 += arow[kk + 2] * brow[kk + 2];
        acc3 += arow[kk + 3] * brow[kk + 3];
      }
      float acc = (acc0 + acc1) + (acc2 + acc3);
      for (; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  }
}

void ScalarMatMulTransARange(const Matrix& a, const Matrix& b, Matrix* c,
                             size_t r_begin, size_t r_end) {
  const size_t m = a.cols(), n = b.cols();
  assert(b.rows() == a.rows());
  assert(c->rows() == m && c->cols() == n);
  assert(r_begin <= r_end && r_end <= a.rows());
  (void)m;
  // Rank-1 update per input row: c[i, :] += a(rr, i) * b(rr, :). The inner
  // loop is again a unit-stride FMA over an output row. Never zeroes c —
  // see the contract on MatMulTransARange in tensor/matrix.h.
  for (size_t rr = r_begin; rr < r_end; ++rr) {
    const float* arow = a.Row(rr);
    const float* brow = b.Row(rr);
    for (size_t i = 0; i < a.cols(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c->Row(i);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// MatMulTransA restricted to *output* rows [i_begin, i_end) over the full
/// reduction: the parallel-dispatch partition (disjoint writes). Each
/// output element still accumulates over rr in ascending order, so the
/// result is bit-identical to the serial kernel.
void ScalarMatMulTransAOutputRange(const Matrix& a, const Matrix& b,
                                   Matrix* c, size_t i_begin, size_t i_end,
                                   bool accumulate) {
  const size_t r = a.rows(), n = b.cols();
  if (!accumulate) {
    for (size_t i = i_begin; i < i_end; ++i) {
      std::memset(c->Row(i), 0, n * sizeof(float));
    }
  }
  for (size_t rr = 0; rr < r; ++rr) {
    const float* arow = a.Row(rr);
    const float* brow = b.Row(rr);
    for (size_t i = i_begin; i < i_end; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c->Row(i);
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void ScalarAddRowVector(Matrix* m, const float* bias) {
  const size_t rows = m->rows(), cols = m->cols();
  for (size_t i = 0; i < rows; ++i) {
    float* row = m->Row(i);
    for (size_t j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

void ScalarReluInPlace(Matrix* m) {
  if (m->IsContiguous()) {
    float* p = m->data();
    const size_t n = m->size();
    for (size_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
    return;
  }
  const size_t rows = m->rows(), cols = m->cols();
  for (size_t i = 0; i < rows; ++i) {
    float* row = m->Row(i);
    for (size_t j = 0; j < cols; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
  }
}

void ScalarAxpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarColumnSumsRange(const Matrix& m, float* out, size_t row_begin,
                           size_t row_end, bool accumulate) {
  const size_t cols = m.cols();
  if (!accumulate) std::memset(out, 0, cols * sizeof(float));
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* row = m.Row(i);
    for (size_t j = 0; j < cols; ++j) out[j] += row[j];
  }
}

void ScalarAdamUpdate(float* w, const float* g, float* m, float* v,
                      size_t n, float step, float beta1, float beta2,
                      float eps) {
  for (size_t i = 0; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
    v[i] = beta2 * v[i] + (1.0f - beta2) * g[i] * g[i];
    w[i] -= step * m[i] / (std::sqrt(v[i]) + eps);
  }
}

void ScalarSincosEncode(float x, float freq_decay, float* out, size_t dim) {
  // The historical degree/time encoder loop verbatim: libm sin/cos, the
  // chained-multiply frequency ladder, and the 0.1x odd tail.
  float freq = 1.0f;
  for (size_t j = 0; j + 1 < dim; j += 2) {
    const float a = x * freq;
    out[j] = std::sin(a);
    out[j + 1] = std::cos(a);
    freq *= freq_decay;
  }
  if (dim % 2 == 1) out[dim - 1] = x * 0.1f;
}

const KernelTable kScalarTable = {
    "scalar",
    ScalarMatMulRange,
    ScalarMatMulBiasActRange,
    ScalarMatMulTransBRange,
    ScalarMatMulTransARange,
    ScalarMatMulTransAOutputRange,
    ScalarAddRowVector,
    ScalarReluInPlace,
    ScalarAxpy,
    ScalarColumnSumsRange,
    ScalarAdamUpdate,
    ScalarSincosEncode,
    ScalarMatMulPackedRange,
    ScalarMatMulPackedBiasActRange,
    ScalarMatMulPacked16BiasActRange,
};

}  // namespace

const KernelTable* GetScalarKernels() { return &kScalarTable; }

}  // namespace splash
