// Copyright 2026 The SPLASH Reproduction Authors.
//
// Runtime-dispatched SIMD kernel backend (DESIGN.md §6). Every dense hot
// path in the repo (core/slim.cc forward/backward/Adam, SolveRidge gram
// products, the serve/ query path) flows through one kernel table resolved
// ONCE per process:
//
//   1. SPLASH_KERNEL=scalar  -> the scalar reference backend (the former
//                               tensor/matrix.cc loops, verbatim): the
//                               bit-exact determinism anchor.
//   2. SPLASH_KERNEL=avx2    -> AVX2/FMA micro-kernels (register-tiled
//                               GEMMs, masked tails); falls back with a
//                               stderr warning if cpuid says no.
//   3. SPLASH_KERNEL=avx512  -> AVX-512 micro-kernels (8x32 GEMM tiles,
//                               __mmask16 predicated tails); falls back to
//                               the best remaining backend with a stderr
//                               warning if cpuid says no.
//   4. SPLASH_KERNEL=auto    -> (default) the widest backend the CPU
//                               supports and the build compiled in:
//                               avx512 > avx2 > scalar.
//
// Backends are tolerance-equivalent, not bit-equal: SIMD kernels reorder
// the per-element accumulation (8- or 16-lane partial sums), so each SIMD
// backend is its own bitwise universe and determinism tests / committed
// oracles always pin SPLASH_KERNEL=scalar. Within ONE backend, results are
// bit-identical across thread counts — the parallel wrappers in
// tensor/matrix.cc partition output rows without changing any per-element
// accumulation order.
//
// All kernels are stride-aware (operands may carry a padded leading
// dimension, Matrix::ResizePadded) and never read or write a row outside
// its [0, cols) payload — padding lanes are dead storage.

#ifndef SPLASH_TENSOR_SIMD_H_
#define SPLASH_TENSOR_SIMD_H_

#include <cstddef>
#include <string>

namespace splash {

class Matrix;
class PackedMatrix;
class PackedMatrix16;

/// The per-backend serial kernel set. The parallel entry points in
/// tensor/matrix.h partition work and call these on row ranges.
struct KernelTable {
  const char* name;  // "scalar" | "avx2" | "avx512"

  /// c rows [r0, r1) = a * b (+ c if accumulate). a MxK, b KxN, c MxN.
  void (*matmul_range)(const Matrix& a, const Matrix& b, Matrix* c,
                       size_t r0, size_t r1, bool accumulate);
  /// Fused epilogue: c rows [r0, r1) = act(a * b + bias); bias nullable
  /// (b.cols() entries), act = ReLU when relu.
  void (*matmul_bias_act_range)(const Matrix& a, const Matrix& b, Matrix* c,
                                size_t r0, size_t r1, const float* bias,
                                bool relu);
  /// c rows [r0, r1) = a * b^T (+ c if accumulate). a MxK, b NxK, c MxN.
  void (*matmul_transb_range)(const Matrix& a, const Matrix& b, Matrix* c,
                              size_t r0, size_t r1, bool accumulate);
  /// c += a[r0:r1)^T * b[r0:r1) — reduction-row range, never zeroes c
  /// (callers pre-zero; see MatMulTransARange in tensor/matrix.h).
  void (*matmul_transa_range)(const Matrix& a, const Matrix& b, Matrix* c,
                              size_t r0, size_t r1);
  /// Output-row partition of a^T b over the FULL reduction: c rows
  /// [i0, i1) (+ c if accumulate); used by the parallel wrapper so worker
  /// writes stay disjoint. Accumulates over reduction rows in ascending
  /// order — bit-identical to matmul_transa_range on the same backend.
  void (*matmul_transa_output_range)(const Matrix& a, const Matrix& b,
                                     Matrix* c, size_t i0, size_t i1,
                                     bool accumulate);
  void (*add_row_vector)(Matrix* m, const float* bias);
  void (*relu_inplace)(Matrix* m);
  void (*axpy)(float alpha, const float* x, float* y, size_t n);
  void (*column_sums_range)(const Matrix& m, float* out, size_t r0,
                            size_t r1, bool accumulate);
  /// Fused Adam over a flat block; `step` is the bias-corrected lr.
  void (*adam_update)(float* w, const float* g, float* m, float* v,
                      size_t n, float step, float beta1, float beta2,
                      float eps);
  /// Sinusoidal pair encoding of a scalar at geometrically spaced
  /// frequencies — the degree/time feature encoders, the per-query hot
  /// loop of the serve read path:
  ///   f_0 = 1, f_{p+1} = f_p * freq_decay
  ///   out[2p] = sin(x * f_p), out[2p+1] = cos(x * f_p)  for 2p+1 < dim
  ///   out[dim-1] = 0.1 * x                              when dim is odd
  /// Scalar uses libm (the bit-exact reference); avx2/avx512 use an 8/16-
  /// lane Cody-Waite + minimax polynomial sincos (~1e-7 absolute error).
  void (*sincos_encode)(float x, float freq_decay, float* out, size_t dim);
  /// Packed-B GEMM (tensor/packed.h): c rows [r0, r1) = a * B (+ c if
  /// accumulate). Streams B one contiguous 16-float panel line per
  /// reduction step; per-element FMA order matches matmul_range on the
  /// same backend exactly, so packed results are bit-identical to
  /// unpacked ones within one backend.
  void (*matmul_packed_range)(const Matrix& a, const PackedMatrix& b,
                              Matrix* c, size_t r0, size_t r1,
                              bool accumulate);
  /// Fused epilogue against packed B: c rows [r0, r1) = act(a * B + bias);
  /// bias nullable (b.n() entries), act = ReLU when relu. Bit-identical to
  /// matmul_bias_act_range on the same backend.
  void (*matmul_packed_bias_act_range)(const Matrix& a,
                                       const PackedMatrix& b, Matrix* c,
                                       size_t r0, size_t r1,
                                       const float* bias, bool relu);
  /// Fused epilogue against bf16 packed B: widening loads, fp32
  /// accumulation. Tolerance-equivalent to the fp32 kernels (half the
  /// stored mantissa), never bit-equal — fp32 stays the determinism
  /// reference (SPLASH_REPLICA_PRECISION default).
  void (*matmul_packed16_bias_act_range)(const Matrix& a,
                                         const PackedMatrix16& b, Matrix* c,
                                         size_t r0, size_t r1,
                                         const float* bias, bool relu);
};

/// The active kernel table, resolved once (env knob + cpuid) on first use.
const KernelTable& Kernels();

/// Name of the active backend ("scalar", "avx2", or "avx512").
const char* KernelBackendName();

/// True when this CPU can run the AVX2/FMA backend.
bool CpuSupportsAvx2Fma();

/// True when this CPU can run the AVX-512 backend (needs F + VL + DQ).
bool CpuSupportsAvx512();

/// Human-readable cpuid feature summary ("avx2+fma" / "baseline"), recorded
/// in bench JSON context so snapshots are attributable to the host ISA.
std::string CpuFeatureString();

/// Pure resolution logic, exposed for tests: maps the SPLASH_KERNEL value
/// (null = unset) and the cpuid/compile facts to a backend name. An
/// explicitly requested backend that is unavailable falls back to the best
/// remaining one (avx512 -> avx2 -> scalar) with a stderr warning.
const char* ResolveKernelChoice(const char* env, bool cpu_has_avx2,
                                bool avx2_compiled, bool cpu_has_avx512,
                                bool avx512_compiled);

/// Forces a backend for tests/benches ("scalar", "avx2", "avx512", or
/// "auto" to re-resolve from the environment). Returns false (and leaves
/// the active table unchanged) if the requested backend is unavailable.
/// Not thread-safe against concurrent kernel calls — call it only from
/// test set-up, before spawning workers.
bool SetKernelBackendForTesting(const char* name);

/// Backend tables (internal): scalar always exists; avx2/avx512 are null
/// when their TU was compiled without ISA support (non-x86 target).
const KernelTable* GetScalarKernels();
const KernelTable* GetAvx2Kernels();
const KernelTable* GetAvx512Kernels();

/// Data-cache sizes of this host, in bytes. Read from sysfs
/// (/sys/devices/system/cpu/cpu0/cache) on Linux; `detected` is false when
/// that fails and the conservative fallback (32K/1M/no L3) is in effect.
/// The packed-GEMM k-block size (tensor/packed.h) derives from l2_bytes,
/// and scripts/bench.sh stamps the summary string into bench JSON context
/// so snapshots from unlike cache hierarchies are never silently compared.
struct CacheTopology {
  size_t l1d_bytes;
  size_t l2_bytes;
  size_t l3_bytes;  // 0 when absent
  bool detected;
};

/// The host cache topology, probed once per process.
const CacheTopology& DetectCacheTopology();

/// Canonical context string, e.g. "l1d=49152,l2=2097152,l3=110100480"
/// ("detect-failed" fallback values render the same way with a trailing
/// ",fallback" marker).
std::string CacheTopologyString();

/// Whether the packed-B GEMM tier is active. Resolved once from
/// SPLASH_GEMM_PACK={on,off} (default on); packing still happens either
/// way (grow-only, cheap), this knob only gates kernel selection so the
/// CI matrix can exercise both paths on identical state.
bool GemmPackEnabled();

/// Overrides the pack knob for tests/benches. Not thread-safe against
/// concurrent kernel calls — call from test set-up only.
void SetGemmPackForTesting(bool enabled);

}  // namespace splash

#endif  // SPLASH_TENSOR_SIMD_H_
