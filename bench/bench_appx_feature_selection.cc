// Reproduces the Online Appendix I study: efficiency and accuracy of
// SPLASH's linear-probe feature selection versus the naive strategy of
// training a full SLIM model per candidate process and validating each.
// Both strategies should agree on the selected process; the linear probes
// should be far cheaper.

#include "bench/bench_common.h"
#include "core/feature_selection.h"
#include "eval/timing.h"

using namespace splash;
using namespace splash::bench;

namespace {

/// Naive selection: train SLIM once per process, pick the best val metric.
std::pair<AugmentationProcess, double> FullTgnnSelection(
    const Dataset& ds, const ChronoSplit& split, const BenchDims& dims,
    size_t epochs) {
  WallTimer timer;
  const SplashMode modes[3] = {SplashMode::kForceRandom,
                               SplashMode::kForcePositional,
                               SplashMode::kForceStructural};
  const AugmentationProcess procs[3] = {AugmentationProcess::kRandom,
                                        AugmentationProcess::kPositional,
                                        AugmentationProcess::kStructural};
  double best_val = -1.0;
  AugmentationProcess best = AugmentationProcess::kRandom;
  for (int p = 0; p < 3; ++p) {
    auto model = MakeSplash(modes[p], dims);
    if (!model->Prepare(ds, split).ok()) continue;
    TrainerOptions topts;
    topts.epochs = epochs;
    topts.batch_size = 100;
    StreamTrainer trainer(topts);
    const FitResult fit = trainer.Fit(model.get(), ds, split);
    if (fit.best_val_metric > best_val) {
      best_val = fit.best_val_metric;
      best = procs[p];
    }
  }
  return {best, timer.Seconds()};
}

}  // namespace

int main() {
  const double scale = BenchScale();
  const size_t epochs = BenchEpochs();
  std::printf("=== Appendix I: feature-selection efficiency "
              "(scale=%.2f) ===\n\n", scale);
  std::printf("%-14s %14s %12s %16s %12s %10s\n", "dataset", "linear-pick",
              "linear(s)", "full-TGNN-pick", "full(s)", "speedup");
  PrintRule(84);

  BenchDims dims;
  for (const std::string& name : {std::string("email-eu-s"),
                                  std::string("reddit-s")}) {
    const Dataset ds = MakeDataset(name, scale).value();
    const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);

    // SPLASH's linear-probe selection.
    FeatureAugmenterOptions aopts;
    aopts.feature_dim = dims.feature_dim;
    FeatureAugmenter augmenter(aopts);
    augmenter.FitSeen(ds.stream, split.train_end_time);
    FeatureSelectionOptions sopts;
    sopts.k_recent = dims.k_recent;
    const FeatureSelectionResult linear =
        SelectFeatureProcess(ds, split, &augmenter, sopts);

    const auto [full_pick, full_seconds] =
        FullTgnnSelection(ds, split, dims, epochs);

    std::printf("%-14s %14s %12.2f %16s %12.2f %9.1fx\n", name.c_str(),
                ProcessName(linear.selected).c_str(), linear.seconds,
                ProcessName(full_pick).c_str(), full_seconds,
                linear.seconds > 0 ? full_seconds / linear.seconds : 0.0);
    std::fflush(stdout);
  }
  std::printf("\nExpected shape (paper App. I): both strategies pick the "
              "same process; linear probes are\nmuch faster (and the gap "
              "grows with model size / epochs).\n");
  return 0;
}
