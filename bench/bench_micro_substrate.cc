// Microbenchmarks (google-benchmark) for the streaming substrates: per-edge
// costs of the neighbor memory, degree tracking, feature propagation, and a
// SLIM forward pass — the constants behind the Fig. 11 linearity claim —
// plus the thread sweeps gating the runtime/ layer: SLIM TrainStep, the
// full chronological replay, and sharded bulk ingest, each recorded at
// threads=1 vs threads=N so BENCH_micro.json carries the speedup pair
// (see DESIGN.md §4; on a single-core container the pair documents the
// oversubscription overhead instead of a speedup).

#include <benchmark/benchmark.h>

#include "core/feature_augmentation.h"
#include "core/slim.h"
#include "core/splash.h"
#include "datasets/scalability.h"
#include "eval/trainer.h"
#include "graph/degree_tracker.h"
#include "graph/neighbor_memory.h"
#include "runtime/thread_pool.h"
#include "tensor/matrix.h"
#include "tensor/packed.h"
#include "tensor/rng.h"
#include "tensor/simd.h"

namespace splash {
namespace {

// Swept over node count: the O(1)-per-edge claim (Fig. 11) means these
// times must stay flat (within cache noise) as n grows.
void BM_NeighborMemoryObserve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  NeighborMemory memory(10, n);
  Rng rng(1);
  double t = 0.0;
  size_t i = 0;
  for (auto _ : state) {
    TemporalEdge e(static_cast<NodeId>(rng.UniformInt(n)),
                   static_cast<NodeId>(rng.UniformInt(n)), t += 1.0);
    memory.Observe(e, i++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeighborMemoryObserve)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

void BM_DegreeTrackerObserve(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DegreeTracker tracker(n);
  Rng rng(2);
  double t = 0.0;
  for (auto _ : state) {
    tracker.Observe(TemporalEdge(static_cast<NodeId>(rng.UniformInt(n)),
                                 static_cast<NodeId>(rng.UniformInt(n)),
                                 t += 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DegreeTrackerObserve)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

void BM_FeaturePropagationObserve(benchmark::State& state) {
  const size_t dv = state.range(0);
  EdgeStream stream;
  // Half the nodes are unseen (propagation targets).
  const size_t n = 2000;
  double t = 0.0;
  for (size_t i = 0; i < 2000; ++i) {
    stream
        .Append(TemporalEdge(static_cast<NodeId>(i % (n / 2)),
                             static_cast<NodeId>((i * 7) % (n / 2)), t += 1.0))
        .ok();
  }
  stream.EnsureNodeCapacity(n);
  FeatureAugmenterOptions opts;
  opts.feature_dim = dv;
  opts.enable_positional = false;
  FeatureAugmenter augmenter(opts);
  augmenter.FitSeen(stream, t);

  Rng rng(3);
  for (auto _ : state) {
    // Edge touching an unseen node: triggers Eq. (4)-(5) propagation.
    TemporalEdge e(static_cast<NodeId>(n / 2 + rng.UniformInt(n / 2)),
                   static_cast<NodeId>(rng.UniformInt(n / 2)), t += 1.0);
    augmenter.ObserveEdge(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeaturePropagationObserve)->Arg(16)->Arg(32)->Arg(64);

void BM_DegreeEncode(benchmark::State& state) {
  FeatureAugmenterOptions opts;
  opts.feature_dim = 32;
  FeatureAugmenter augmenter(opts);
  EdgeStream stream;
  stream.Append(TemporalEdge(0, 1, 1.0)).ok();
  augmenter.FitSeen(stream, 1.0);
  std::vector<float> out(32);
  size_t degree = 0;
  for (auto _ : state) {
    augmenter.EncodeDegree(++degree, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DegreeEncode);

// --- kernel-backend rows (Args = m, k, n) ----------------------------------
// Pinned GEMM shapes from the SLIM hot paths, recorded per resolved kernel
// backend (the JSON context carries kernel_backend + cpu_features;
// scripts/bench.sh snapshots scalar and, when available, embeds the avx2
// side-run so the speedup is visible side-by-side in BENCH_micro.json).

void BM_MatMul(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const size_t n = static_cast<size_t>(state.range(2));
  Rng rng(21);
  const Matrix a = Matrix::Gaussian(m, k, &rng);
  const Matrix b = Matrix::Gaussian(k, n, &rng);
  Matrix c(m, n);
  for (auto _ : state) {
    MatMulRange(a, b, &c, 0, m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
// The neighbor-message GEMM (B*K x Dv+Dt @ W1) and the head GEMM shapes,
// plus a B-exceeds-L2 shape (2048x1024 fp32 B = 8 MB) where the unpacked
// row-major B walk thrashes: the packed sibling row below must beat this
// one by >= 1.5x (check_bench_regression.py gates the pair).
BENCHMARK(BM_MatMul)
    ->Args({256, 48, 64})
    ->Args({2560, 48, 64})
    ->Args({32, 2048, 1024});

// Packed-B / k-blocked GEMM (DESIGN.md §6): B re-tiled once into
// (k-block x 16-col-panel) panels sized to L2, then reused every call —
// the serve read-path shape (pack at publish, stream at query). The
// {1, 1024, 64} row is the batch-1 wide-hidden serve case that motivated
// packing: the unpacked kernels stride B by the row pitch, so at small
// batch the walk is TLB/prefetch-bound (on -march=native builds it
// measurably lost to the autovectorized scalar loop — the ROADMAP item
// this layer closes); packed panels make every 64-byte line fully
// consumed.
void BM_MatMulPacked(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const size_t n = static_cast<size_t>(state.range(2));
  Rng rng(25);
  const Matrix a = Matrix::Gaussian(m, k, &rng);
  const Matrix b = Matrix::Gaussian(k, n, &rng);
  PackedMatrix pb;
  pb.PackFrom(b);  // pack once, reuse many — the serving amortization
  Matrix c(m, n);
  for (auto _ : state) {
    MatMulPackedRange(a, pb, &c, 0, m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_MatMulPacked)
    ->Args({2560, 48, 64})
    ->Args({1, 1024, 64})
    ->Args({32, 2048, 1024});

// bf16 packed sibling of the B>L2 row: half the panel bytes streamed
// (widening loads, fp32 accumulation) — the read-replica storage variant.
void BM_MatMulPacked16(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const size_t n = static_cast<size_t>(state.range(2));
  Rng rng(26);
  const Matrix a = Matrix::Gaussian(m, k, &rng);
  const Matrix b = Matrix::Gaussian(k, n, &rng);
  PackedMatrix16 pb;
  pb.PackFrom(b);
  Matrix c(m, n);
  for (auto _ : state) {
    MatMulPacked16BiasActRange(a, pb, &c, 0, m, nullptr, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_MatMulPacked16)->Args({32, 2048, 1024});

void BM_MatMulTransA(benchmark::State& state) {
  const size_t r = static_cast<size_t>(state.range(0));
  const size_t m = static_cast<size_t>(state.range(1));
  const size_t n = static_cast<size_t>(state.range(2));
  Rng rng(22);
  const Matrix a = Matrix::Gaussian(r, m, &rng);
  const Matrix b = Matrix::Gaussian(r, n, &rng);
  Matrix c(m, n);
  for (auto _ : state) {
    c.SetZero();  // range calls never zero (the gradient-kernel contract)
    MatMulTransARange(a, b, &c, 0, r);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * r * m * n);
}
// The w3 gradient shape: cat2^T (256x128) x d_h (256x64).
BENCHMARK(BM_MatMulTransA)->Args({256, 128, 64});

void BM_MatMulTransB(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  const size_t n = static_cast<size_t>(state.range(2));
  Rng rng(23);
  const Matrix a = Matrix::Gaussian(m, k, &rng);
  const Matrix b = Matrix::Gaussian(n, k, &rng);
  Matrix c(m, n);
  for (auto _ : state) {
    MatMulTransBRange(a, b, &c, 0, m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
// The d_cat2 backward shape: d_h (256x64) x w3^T (128x64).
BENCHMARK(BM_MatMulTransB)->Args({256, 64, 128});

// The fused forward path the serving layer reads through: PredictConst
// (GEMM + bias + ReLU in one tile pass) on caller scratch.
void BM_SlimForwardFused(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  SlimOptions opts;
  opts.feature_dim = 32;
  opts.time_dim = 16;
  opts.hidden_dim = 64;
  opts.out_dim = 2;
  opts.k_recent = 10;
  opts.dropout = 0.0f;
  Rng rng(24);
  SlimModel slim(opts, &rng);
  slim.SetTraining(false);

  SlimBatchInput input;
  input.node_feats = Matrix::Gaussian(batch, 32, &rng);
  input.neighbor_feats = Matrix::Gaussian(batch * 10, 32, &rng);
  input.time_deltas.assign(batch * 10, 1.0);
  input.mask = Matrix::Ones(batch, 10);
  input.edge_weights.assign(batch * 10, 1.0f);

  SlimForwardScratch scratch;
  for (auto _ : state) {
    const Matrix& out = slim.PredictConst(input, &scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SlimForwardFused)->Arg(256);

// Batch-1, wide hidden (fd=64, h=1024): the serve-p50 shape that exposed
// the cache-unfriendly unpacked kernel — at m=1 the strided B walk
// touches every W row per output, and pre-packing the avx512 backend ran
// far below its large-batch speedup here (below scalar on native
// builds). With packed dispatch (default) this row is gated at >= 1.0x
// the scalar backend via the avx512_speedup side-run stamp
// (check_bench_regression.py --context-speedup).
void BM_SlimForwardFusedWideB1(benchmark::State& state) {
  SlimOptions opts;
  opts.feature_dim = 64;
  opts.time_dim = 16;
  opts.hidden_dim = 1024;
  opts.out_dim = 2;
  opts.k_recent = 10;
  opts.dropout = 0.0f;
  Rng rng(27);
  SlimModel slim(opts, &rng);
  slim.SetTraining(false);

  SlimBatchInput input;
  input.node_feats = Matrix::Gaussian(1, 64, &rng);
  input.neighbor_feats = Matrix::Gaussian(10, 64, &rng);
  input.time_deltas.assign(10, 1.0);
  input.mask = Matrix::Ones(1, 10);
  input.edge_weights.assign(10, 1.0f);

  SlimForwardScratch scratch;
  for (auto _ : state) {
    const Matrix& out = slim.PredictConst(input, &scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlimForwardFusedWideB1)->Name("BM_SlimForwardFused/wide_b1");

void BM_SlimForward(benchmark::State& state) {
  const size_t batch = state.range(0);
  SlimOptions opts;
  opts.feature_dim = 32;
  opts.time_dim = 16;
  opts.hidden_dim = 64;
  opts.out_dim = 2;
  opts.k_recent = 10;
  opts.dropout = 0.0f;
  Rng rng(4);
  SlimModel slim(opts, &rng);
  slim.SetTraining(false);

  SlimBatchInput input;
  input.node_feats = Matrix::Gaussian(batch, 32, &rng);
  input.neighbor_feats = Matrix::Gaussian(batch * 10, 32, &rng);
  input.time_deltas.assign(batch * 10, 1.0);
  input.mask = Matrix::Ones(batch, 10);
  input.edge_weights.assign(batch * 10, 1.0f);

  for (auto _ : state) {
    Matrix out = slim.Forward(input);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SlimForward)->Arg(1)->Arg(32)->Arg(256);

// --- runtime/ thread sweeps (Arg = thread count) ---------------------------

void BM_SlimTrainStepThreads(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  const size_t batch = 256;
  SlimOptions opts;
  opts.feature_dim = 32;
  opts.time_dim = 16;
  opts.hidden_dim = 64;
  opts.out_dim = 2;
  opts.k_recent = 10;
  opts.dropout = 0.1f;
  Rng rng(4);
  SlimModel slim(opts, &rng);
  slim.SetTraining(true);

  SlimBatchInput input;
  input.node_feats = Matrix::Gaussian(batch, 32, &rng);
  input.neighbor_feats = Matrix::Gaussian(batch * 10, 32, &rng);
  input.time_deltas.assign(batch * 10, 1.0);
  input.mask = Matrix::Ones(batch, 10);
  input.edge_weights.assign(batch * 10, 1.0f);
  std::vector<int> labels(batch);
  for (size_t i = 0; i < batch; ++i) labels[i] = static_cast<int>(i % 2);

  for (auto _ : state) {
    benchmark::DoNotOptimize(slim.TrainStep(input, labels));
  }
  state.SetItemsProcessed(state.iterations() * batch);
  ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_SlimTrainStepThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_ChronoReplayThreads(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  ScalabilityOptions sopts;
  sopts.num_edges = 20000;
  sopts.num_nodes = 1000;
  const Dataset ds = GenerateScalabilityStream(sopts);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);

  for (auto _ : state) {
    SplashOptions opts;
    opts.mode = SplashMode::kForceStructural;  // streaming-only features
    opts.augment.feature_dim = 16;
    opts.slim.hidden_dim = 32;
    opts.slim.time_dim = 8;
    SplashPredictor model(opts);
    benchmark::DoNotOptimize(model.Prepare(ds, split).ok());
    TrainerOptions topts;
    topts.epochs = 1;
    topts.early_stopping = false;
    StreamTrainer trainer(topts);
    trainer.Fit(&model, ds, split);
    benchmark::DoNotOptimize(trainer.Evaluate(&model, ds, split).metric);
  }
  state.SetItemsProcessed(state.iterations() * ds.stream.size());
  ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_ChronoReplayThreads)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_FeatureReplayBulkThreads(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  // Propagation-heavy replay: 20% of nodes are seen, the rest arrive
  // during the stream, so most edges trigger Eq. (4)-(5) folds — the
  // serial fraction this fan-out removes from the edge loop.
  const size_t n_seen = 2000, n_unseen = 8000;
  EdgeStream stream;
  Rng rng(6);
  double t = 0.0;
  for (size_t i = 0; i < 4000; ++i) {
    stream
        .Append(TemporalEdge(static_cast<NodeId>(rng.UniformInt(n_seen)),
                             static_cast<NodeId>(rng.UniformInt(n_seen)),
                             t += 1.0))
        .ok();
  }
  const double fit_time = t;
  for (size_t i = 0; i < 100000; ++i) {
    // Mostly unseen->seen (the paper's Eq. (4)-(5) scenario: a new node
    // joins the fitted graph, folds run inline in the fan-out) with 5%
    // unseen->unseen pairs so the deferred fixed-order reduction is
    // exercised without dominating the timing.
    const NodeId u = static_cast<NodeId>(
        rng.Uniform() < 0.5 ? n_seen + rng.UniformInt(n_unseen)
                            : rng.UniformInt(n_seen));
    const NodeId v = static_cast<NodeId>(
        rng.Uniform() < 0.1 ? n_seen + rng.UniformInt(n_unseen)
                            : rng.UniformInt(n_seen));
    stream.Append(TemporalEdge(u, v, t += 1.0)).ok();
  }
  FeatureAugmenterOptions opts;
  opts.feature_dim = 32;
  FeatureAugmenter augmenter(opts);
  augmenter.FitSeen(stream, fit_time);

  for (auto _ : state) {
    augmenter.Reset();  // O(nodes) memset, charged equally to every arg
    augmenter.ObserveBulk(stream, 0, stream.size());
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
  ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_FeatureReplayBulkThreads)->Arg(1)->Arg(4);

void BM_NeighborMemoryObserveBulkThreads(benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<size_t>(state.range(0)));
  const size_t n = 100000;
  EdgeStream stream;
  Rng rng(5);
  double t = 0.0;
  for (size_t i = 0; i < 100000; ++i) {
    stream
        .Append(TemporalEdge(static_cast<NodeId>(rng.UniformInt(n)),
                             static_cast<NodeId>(rng.UniformInt(n)),
                             t += 1.0))
        .ok();
  }
  NeighborMemory memory(10, n);
  for (auto _ : state) {
    memory.ObserveBulk(stream, 0, stream.size());
  }
  state.SetItemsProcessed(state.iterations() * stream.size());
  ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_NeighborMemoryObserveBulkThreads)->Arg(1)->Arg(4);

}  // namespace
}  // namespace splash

// Custom main: records the resolved kernel backend and the host's cpuid
// feature summary in the JSON context, so every committed snapshot is
// attributable to (backend, ISA) and check_bench_regression.py can refuse
// to compare unlike backends.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("kernel_backend", splash::KernelBackendName());
  benchmark::AddCustomContext("cpu_features", splash::CpuFeatureString());
  benchmark::AddCustomContext("cache_topology", splash::CacheTopologyString());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
