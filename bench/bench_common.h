// Copyright 2026 The SPLASH Reproduction Authors.
//
// Shared helpers for the table/figure reproduction benches: model zoo
// construction, train+evaluate runners, and table printing. Every bench
// binary prints the rows of one paper table or the series of one figure.
//
// Environment knobs:
//   SPLASH_BENCH_SCALE  — multiplies dataset sizes (default 0.5; the paper's
//                         datasets are 10-100x larger, see DESIGN.md §3).
//   SPLASH_BENCH_EPOCHS — training epochs per model (default 8).
//   SPLASH_THREADS      — runtime/ ThreadPool size for every parallel path
//                         (default: hardware concurrency). 1 reproduces the
//                         serial numbers bit-for-bit.

#ifndef SPLASH_BENCH_BENCH_COMMON_H_
#define SPLASH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "core/splash.h"
#include "datasets/registry.h"
#include "eval/trainer.h"
#include "runtime/thread_pool.h"

namespace splash::bench {

/// Thread count the global pool resolved from SPLASH_THREADS / the
/// hardware (benches print it so table rows are attributable).
inline size_t BenchThreads() { return ThreadPool::GlobalThreads(); }

/// Reads a double knob from the environment.
inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? std::atof(v) : fallback;
}

/// Dataset scale for bench runs. Rejects non-positive values up front:
/// MakeDataset would error and the benches dereference its result.
inline double BenchScale() {
  const double v = EnvDouble("SPLASH_BENCH_SCALE", 0.5);
  if (v <= 0.0) {
    std::fprintf(stderr, "SPLASH_BENCH_SCALE must be positive, got %g\n", v);
    std::abort();
  }
  return v;
}

/// Training epochs for bench runs. Rejects non-positive values: silently
/// truncating e.g. SPLASH_BENCH_EPOCHS=0.5 to zero epochs would make every
/// table report an untrained model.
inline size_t BenchEpochs() {
  const double v = EnvDouble("SPLASH_BENCH_EPOCHS", 8);
  if (v < 1.0) {
    std::fprintf(stderr,
                 "SPLASH_BENCH_EPOCHS must be a positive integer, got %g\n",
                 v);
    std::abort();
  }
  return static_cast<size_t>(v);
}

/// Common model dimensions used across all bench comparisons so parameter
/// counts are directly comparable.
struct BenchDims {
  size_t feature_dim = 32;
  size_t hidden_dim = 64;
  size_t time_dim = 16;
  size_t k_recent = 10;
};

/// Builds a SPLASH-family predictor.
inline std::unique_ptr<SplashPredictor> MakeSplash(SplashMode mode,
                                                   const BenchDims& dims,
                                                   uint64_t seed = 777) {
  SplashOptions opts;
  opts.mode = mode;
  opts.augment.feature_dim = dims.feature_dim;
  opts.slim.hidden_dim = dims.hidden_dim;
  opts.slim.time_dim = dims.time_dim;
  opts.slim.k_recent = dims.k_recent;
  opts.seed = seed;
  return std::make_unique<SplashPredictor>(opts);
}

/// Builds a baseline predictor by name.
inline std::unique_ptr<TemporalPredictor> MakeBaselineModel(
    const std::string& base, bool random_features, const BenchDims& dims,
    uint64_t seed = 4242) {
  BaselineOptions opts;
  opts.node_feature_dim = dims.feature_dim;
  opts.hidden_dim = dims.hidden_dim;
  opts.time_dim = dims.time_dim;
  opts.k_recent = dims.k_recent;
  opts.seed = seed;
  auto model = MakeBaseline(base, random_features, opts);
  if (!model.ok()) {
    std::fprintf(stderr, "MakeBaselineModel(\"%s\"): %s\n", base.c_str(),
                 model.status().ToString().c_str());
    std::abort();
  }
  return std::move(model).value();
}

/// Result of one (model, dataset) cell.
struct CellResult {
  double metric = 0.0;
  double train_seconds = 0.0;
  double predict_seconds = 0.0;
  size_t num_queries = 0;
  size_t param_count = 0;
};

/// Prepares, fits, and evaluates one model on one dataset.
inline CellResult RunCell(TemporalPredictor* model, const Dataset& ds,
                          size_t epochs, size_t batch_size = 200) {
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);
  CellResult cell;
  const Status st = model->Prepare(ds, split);
  if (!st.ok()) {
    std::fprintf(stderr, "  [%s/%s] prepare failed: %s\n",
                 model->name().c_str(), ds.name.c_str(),
                 st.ToString().c_str());
    return cell;
  }
  TrainerOptions topts;
  topts.epochs = epochs;
  topts.batch_size = batch_size;
  StreamTrainer trainer(topts);
  const FitResult fit = trainer.Fit(model, ds, split);
  const EvalResult eval = trainer.Evaluate(model, ds, split);
  cell.metric = eval.metric;
  cell.train_seconds = fit.train_seconds;
  cell.predict_seconds = eval.predict_seconds;
  cell.num_queries = eval.num_queries;
  cell.param_count = model->ParamCount();
  return cell;
}

/// Prints a separator line of the given width.
inline void PrintRule(size_t width) {
  for (size_t i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace splash::bench

#endif  // SPLASH_BENCH_BENCH_COMMON_H_
