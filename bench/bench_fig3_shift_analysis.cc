// Reproduces Fig. 3 (preliminary analysis): evidence of positional,
// structural, and property distribution shifts in an edge stream over time,
// computed on the Reddit stand-in: (a) distances between mean node2vec
// embeddings of nodes grouped by appearance window, (b) average temporal
// degree per window, (c) anomaly-rate per window.

#include "analysis/drift.h"
#include "bench/bench_common.h"

using namespace splash;
using namespace splash::bench;

int main() {
  const double scale = BenchScale();
  std::printf("=== Fig. 3: distribution-shift diagnostics on reddit-s "
              "(scale=%.2f) ===\n\n", scale);

  const Dataset ds = MakeDataset("reddit-s", scale).value();
  Rng rng(7);
  const size_t windows = 6;
  const DriftReport report = AnalyzeDrift(ds, windows, 16, &rng);

  std::printf("(b) structural: average temporal degree per time window\n");
  std::printf("    ");
  for (double d : report.avg_degree) std::printf(" %8.2f", d);
  std::printf("\n\n(c) property: abnormal-query rate per time window\n");
  std::printf("    ");
  for (double r : report.label_rate) std::printf(" %8.4f", r);
  std::printf(
      "\n\n(a) positional: distance between mean embeddings of consecutive "
      "appearance groups\n    ");
  for (double d : report.positional_shift) std::printf(" %8.4f", d);
  std::printf("\n\nExpected shape (paper Fig. 3): degree grows over time "
              "(structural drift), the anomaly rate\nchanges over time "
              "(property drift), and appearance groups occupy shifting "
              "embedding regions\n(positional drift).\n");
  return 0;
}
