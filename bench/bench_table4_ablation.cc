// Reproduces Table IV: ablation of SPLASH's feature pipeline — SLIM with
// zero features (ZF), plain random features (RF), each forced augmentation
// process (R / P / S), all features jointly, and full SPLASH with automatic
// selection. Also prints which process SPLASH selected per dataset.

#include "bench/bench_common.h"

using namespace splash;
using namespace splash::bench;

int main() {
  const double scale = BenchScale();
  const size_t epochs = BenchEpochs();
  std::printf("=== Table IV: ablation study (scale=%.2f, epochs=%zu) ===\n\n",
              scale, epochs);

  const std::vector<std::string> datasets = StandardDatasetNames();
  const std::vector<SplashMode> modes = {
      SplashMode::kZeroFeatures, SplashMode::kPlainRandom,
      SplashMode::kForceRandom,  SplashMode::kForcePositional,
      SplashMode::kForceStructural, SplashMode::kJoint, SplashMode::kAuto};
  BenchDims dims;

  std::printf("%-16s", "variant");
  for (const auto& name : datasets) std::printf(" %12s", name.c_str());
  std::printf("\n");
  PrintRule(16 + 13 * datasets.size());

  std::vector<Dataset> data;
  for (const auto& name : datasets) {
    data.push_back(MakeDataset(name, scale).value());
  }

  std::vector<std::string> selected(datasets.size(), "?");
  for (SplashMode mode : modes) {
    std::printf("%-16s", SplashModeName(mode).c_str());
    std::fflush(stdout);
    for (size_t d = 0; d < data.size(); ++d) {
      auto model = MakeSplash(mode, dims);
      const CellResult cell = RunCell(model.get(), data[d], epochs, 100);
      if (mode == SplashMode::kAuto) {
        selected[d] = ProcessName(model->selected_process());
      }
      std::printf(" %12.1f", 100.0 * cell.metric);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nselected process ");
  for (const auto& s : selected) std::printf(" %12s", s.c_str());
  std::printf("\n\nExpected shape (paper Table IV): SPLASH matches the best "
              "single process per dataset\n(S on anomaly streams, P/R on "
              "classification/affinity) and beats ZF everywhere.\n");
  return 0;
}
