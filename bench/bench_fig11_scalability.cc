// Reproduces Fig. 11: SPLASH training and inference time as the stream
// grows. The paper sweeps 100M-1B edges on a server; here the default sweep
// is 20k-320k edges (SPLASH_SCALE_MAX sets the largest size) and the claim
// under test is the *shape*: both times grow near-linearly in the number of
// edges, i.e. per-edge cost is independent of graph size.

#include "bench/bench_common.h"
#include "datasets/scalability.h"
#include "eval/timing.h"

using namespace splash;
using namespace splash::bench;

int main() {
  const size_t max_edges = static_cast<size_t>(
      EnvDouble("SPLASH_SCALE_MAX", 320000));
  std::printf("=== Fig. 11: scalability of SPLASH (up to %zu edges) ===\n\n",
              max_edges);
  std::printf("%12s %12s %14s %14s %14s\n", "edges", "nodes", "train(s)",
              "inference(s)", "us/edge(inf)");
  PrintRule(70);

  BenchDims dims;
  dims.feature_dim = 16;  // keep memory bounded at the largest sweep points

  double prev_edges = 0.0, prev_inf = 0.0;
  std::vector<double> ratios;
  for (size_t edges = 20000; edges <= max_edges; edges *= 2) {
    ScalabilityOptions sopts;
    sopts.num_edges = edges;
    sopts.num_nodes = std::max<size_t>(1000, edges / 50);
    const Dataset ds = GenerateScalabilityStream(sopts);
    const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);

    SplashOptions opts;
    opts.mode = SplashMode::kForceStructural;  // streaming-only features:
    opts.augment.feature_dim = dims.feature_dim;  // isolates stream cost
    opts.slim.hidden_dim = 32;
    opts.slim.time_dim = 8;
    opts.slim.k_recent = dims.k_recent;
    SplashPredictor model(opts);
    model.Prepare(ds, split).ok();

    TrainerOptions topts;
    topts.epochs = 1;
    topts.batch_size = 200;
    topts.early_stopping = false;
    StreamTrainer trainer(topts);
    WallTimer train_timer;
    trainer.Fit(&model, ds, split);
    const double train_s = train_timer.Seconds();

    WallTimer inf_timer;
    const EvalResult eval = trainer.Evaluate(&model, ds, split);
    const double inf_s = inf_timer.Seconds();

    std::printf("%12zu %12zu %14.2f %14.2f %14.2f\n", edges, sopts.num_nodes,
                train_s, inf_s,
                1e6 * inf_s / static_cast<double>(ds.stream.size()));
    std::fflush(stdout);
    (void)eval;
    if (prev_edges > 0.0) {
      // Growth of inference time relative to growth of edges (1.0 = linear).
      ratios.push_back((inf_s / prev_inf) / (edges / prev_edges));
    }
    prev_edges = static_cast<double>(edges);
    prev_inf = inf_s;
  }

  if (!ratios.empty()) {
    double mean = 0.0;
    for (double r : ratios) mean += r;
    mean /= static_cast<double>(ratios.size());
    std::printf("\nmean doubling ratio (1.0 == perfectly linear): %.2f\n",
                mean);
  }
  std::printf("Expected shape (paper Fig. 11): near-linear growth — per-edge "
              "cost independent of graph size.\n");
  return 0;
}
