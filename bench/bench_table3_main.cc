// Reproduces Table III: node property prediction performance of SPLASH vs
// baseline TGNNs (with and without random features) across the seven dataset
// stand-ins. Metrics: AUC (anomaly), F1-micro (classification), NDCG@10
// (affinity), in percent. See EXPERIMENTS.md for paper-vs-measured notes.

#include "bench/bench_common.h"

using namespace splash;
using namespace splash::bench;

int main() {
  const double scale = BenchScale();
  const size_t epochs = BenchEpochs();
  std::printf(
      "=== Table III: main results (scale=%.2f, epochs=%zu, threads=%zu) "
      "===\n",
      scale, epochs, BenchThreads());
  std::printf("metric: AUC / F1-micro / NDCG@10 (in %%)\n\n");

  const std::vector<std::string> datasets = StandardDatasetNames();
  const std::vector<std::string> bases = {"jodie",      "dysat",
                                          "tgat",       "tgn",
                                          "graphmixer", "dygformer"};
  BenchDims dims;

  // Header.
  std::printf("%-16s", "method");
  for (const auto& name : datasets) std::printf(" %12s", name.c_str());
  std::printf("\n");
  PrintRule(16 + 13 * datasets.size());

  std::vector<Dataset> data;
  for (const auto& name : datasets) {
    data.push_back(MakeDataset(name, scale).value());
  }

  auto run_row = [&](const std::string& label,
                     auto&& make_model, bool anomaly_only) {
    std::printf("%-16s", label.c_str());
    std::fflush(stdout);
    for (const Dataset& ds : data) {
      if (anomaly_only && ds.task != TaskType::kAnomalyDetection) {
        std::printf(" %12s", "N/A");
        continue;
      }
      auto model = make_model();
      const CellResult cell = RunCell(model.get(), ds, epochs, 100);
      std::printf(" %12.1f", 100.0 * cell.metric);
      std::fflush(stdout);
    }
    std::printf("\n");
  };

  for (const auto& base : bases) {
    auto plain = [&]() { return MakeBaselineModel(base, false, dims); };
    run_row(MakeBaselineModel(base, false, dims)->name(), plain, false);
  }
  run_row("SLADE", [&]() { return MakeBaselineModel("slade", false, dims); },
          /*anomaly_only=*/true);
  for (const auto& base : bases) {
    auto rf = [&]() { return MakeBaselineModel(base, true, dims); };
    run_row(MakeBaselineModel(base, true, dims)->name(), rf, false);
  }
  run_row("SPLASH", [&]() { return MakeSplash(SplashMode::kAuto, dims); },
          false);

  std::printf("\nExpected shape (paper Table III): baselines without node "
              "features fail on classification/affinity;\n+RF recovers much "
              "of it; SPLASH is best or near-best in every column.\n");
  return 0;
}
