// Reproduces Fig. 9: performance as the unseen (test) ratio T grows. Train
// on the first (90-T)% of properties, validate on the next 10%, test on the
// last T% — larger T means a stronger distribution shift between training
// and test. Run on the Email-EU stand-in (the paper's largest Fig. 9 gap).

#include "bench/bench_common.h"

using namespace splash;
using namespace splash::bench;

namespace {

double RunAtRatio(TemporalPredictor* model, const Dataset& ds, double t_frac,
                  size_t epochs) {
  const double train_frac = 0.9 - t_frac;
  ChronoSplit split;
  split.train_end_time = ds.stream.TimeQuantile(train_frac);
  split.val_end_time = ds.stream.TimeQuantile(train_frac + 0.1);
  if (!model->Prepare(ds, split).ok()) return 0.0;
  TrainerOptions topts;
  topts.epochs = epochs;
  topts.batch_size = 100;
  StreamTrainer trainer(topts);
  trainer.Fit(model, ds, split);
  return trainer.Evaluate(model, ds, split).metric;
}

}  // namespace

int main() {
  const double scale = BenchScale();
  const size_t epochs = BenchEpochs();
  std::printf(
      "=== Fig. 9: F1 (%%) vs unseen ratio T on email-eu-s "
      "(scale=%.2f, epochs=%zu) ===\n\n",
      scale, epochs);

  const Dataset ds = MakeDataset("email-eu-s", scale).value();
  const std::vector<double> ratios = {0.2, 0.4, 0.6, 0.8};
  BenchDims dims;

  struct Row {
    std::string label;
    std::function<std::unique_ptr<TemporalPredictor>()> make;
  };
  const std::vector<Row> rows = {
      {"SPLASH", [&]() { return MakeSplash(SplashMode::kAuto, dims); }},
      {"JODIE+RF", [&]() { return MakeBaselineModel("jodie", true, dims); }},
      {"TGAT+RF", [&]() { return MakeBaselineModel("tgat", true, dims); }},
      {"DyGFormer+RF",
       [&]() { return MakeBaselineModel("dygformer", true, dims); }},
      {"GraphMixer+RF",
       [&]() { return MakeBaselineModel("graphmixer", true, dims); }},
      {"TGAT (no feat)",
       [&]() { return MakeBaselineModel("tgat", false, dims); }},
  };

  std::printf("%-16s", "method \\ T");
  for (double t : ratios) std::printf(" %9.0f%%", 100.0 * t);
  std::printf("\n");
  PrintRule(16 + 11 * ratios.size());
  for (const Row& row : rows) {
    std::printf("%-16s", row.label.c_str());
    std::fflush(stdout);
    for (double t : ratios) {
      auto model = row.make();
      std::printf(" %10.1f", 100.0 * RunAtRatio(model.get(), ds, t, epochs));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape (paper Fig. 9): SPLASH best at every T; the "
              "gap to the second-best\nwidens as T grows (stronger shift).\n");
  return 0;
}
