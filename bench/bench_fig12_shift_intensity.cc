// Reproduces Fig. 12: robustness under artificial distribution shifts of
// increasing intensity (Synthetic-50/70/90). Higher intensity = more of the
// test period consists of nodes unseen during training plus more community
// migration at the boundary.

#include "bench/bench_common.h"
#include "datasets/shift_intensity.h"

using namespace splash;
using namespace splash::bench;

int main() {
  const double scale = BenchScale();
  const size_t epochs = BenchEpochs();
  const size_t edges = static_cast<size_t>(20000 * scale) + 4000;
  std::printf(
      "=== Fig. 12: F1 (%%) under shift intensities 50/70/90 "
      "(%zu edges, epochs=%zu) ===\n\n",
      edges, epochs);

  BenchDims dims;
  struct Row {
    std::string label;
    std::function<std::unique_ptr<TemporalPredictor>()> make;
  };
  const std::vector<Row> rows = {
      {"SPLASH", [&]() { return MakeSplash(SplashMode::kAuto, dims); }},
      {"SLIM+ZF", [&]() { return MakeSplash(SplashMode::kZeroFeatures, dims); }},
      {"JODIE+RF", [&]() { return MakeBaselineModel("jodie", true, dims); }},
      {"TGAT+RF", [&]() { return MakeBaselineModel("tgat", true, dims); }},
      {"DyGFormer+RF",
       [&]() { return MakeBaselineModel("dygformer", true, dims); }},
      {"GraphMixer+RF",
       [&]() { return MakeBaselineModel("graphmixer", true, dims); }},
      // DTDG-family representative (see DESIGN.md §3 on DIDA/SLID).
      {"DySAT+RF", [&]() { return MakeBaselineModel("dysat", true, dims); }},
      {"TGN (no feat)",
       [&]() { return MakeBaselineModel("tgn", false, dims); }},
  };

  const std::vector<int> intensities = {50, 70, 90};
  std::printf("%-16s", "method");
  for (int i : intensities) std::printf("  Synth-%2d", i);
  std::printf("\n");
  PrintRule(16 + 10 * intensities.size());

  for (const Row& row : rows) {
    std::printf("%-16s", row.label.c_str());
    std::fflush(stdout);
    for (int intensity : intensities) {
      const Dataset ds = GenerateShiftIntensity(intensity, edges);
      auto model = row.make();
      const CellResult cell = RunCell(model.get(), ds, epochs, 100);
      std::printf("  %8.1f", 100.0 * cell.metric);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape (paper Fig. 12): all featureless/complex "
              "TGNNs degrade sharply with intensity;\nSPLASH stays on top at "
              "every intensity and the gap widens at 90.\n");
  return 0;
}
