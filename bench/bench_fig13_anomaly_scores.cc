// Reproduces Fig. 13 (qualitative): anomaly scores over time for one user
// who transitions from normal to abnormal during the test period, as scored
// by SPLASH and three baselines. The paper shows only SPLASH tracking the
// transition; here we print the score series around the transition plus a
// per-model "transition contrast" (mean abnormal score - mean normal score,
// in each model's own score scale).

#include <algorithm>
#include <map>

#include "bench/bench_common.h"

using namespace splash;
using namespace splash::bench;

namespace {

/// Scores every test query of `target`, returning (time, score, label).
struct ScorePoint {
  double time;
  double score;
  int label;
};

std::vector<ScorePoint> ScoreUser(TemporalPredictor* model, const Dataset& ds,
                                  const ChronoSplit& split, NodeId target) {
  model->SetTraining(false);
  model->ResetState();
  std::vector<ScorePoint> points;
  size_t qi = 0;
  for (size_t i = 0; i < ds.stream.size(); ++i) {
    while (qi < ds.queries.size() &&
           ds.queries[qi].time <= ds.stream[i].time) {
      const PropertyQuery& q = ds.queries[qi];
      if (q.node == target && q.time > split.val_end_time) {
        const Matrix out = model->PredictBatch({q});
        const double score = out.cols() >= 2
                                 ? double(out(0, 1)) - out(0, 0)
                                 : out(0, 0);
        points.push_back({q.time, score, q.class_label});
      }
      ++qi;
    }
    model->ObserveEdge(ds.stream[i], i);
  }
  return points;
}

}  // namespace

int main() {
  const double scale = BenchScale();
  const size_t epochs = BenchEpochs();
  std::printf(
      "=== Fig. 13: anomaly scores over time for a state-flipping user "
      "(reddit-s, scale=%.2f) ===\n\n",
      scale);

  const Dataset ds = MakeDataset("reddit-s", scale).value();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);

  // Find a test-period user with both states and a clear flip.
  std::map<NodeId, std::pair<size_t, size_t>> counts;  // normal, abnormal
  for (const auto& q : ds.queries) {
    if (q.time <= split.val_end_time) continue;
    auto& c = counts[q.node];
    (q.class_label ? c.second : c.first)++;
  }
  NodeId target = kInvalidNode;
  size_t best = 0;
  for (const auto& [node, c] : counts) {
    const size_t usable = std::min(c.first, c.second);
    if (usable > best) {
      best = usable;
      target = node;
    }
  }
  if (target == kInvalidNode) {
    std::printf("no state-flipping user found; increase SPLASH_BENCH_SCALE\n");
    return 0;
  }
  std::printf("target user: %u (%zu normal / %zu abnormal test queries)\n\n",
              target, counts[target].first, counts[target].second);

  BenchDims dims;
  struct Row {
    std::string label;
    std::unique_ptr<TemporalPredictor> model;
  };
  std::vector<Row> rows;
  rows.push_back({"SPLASH", MakeSplash(SplashMode::kAuto, dims)});
  rows.push_back({"DyGFormer+RF", MakeBaselineModel("dygformer", true, dims)});
  rows.push_back({"TGAT", MakeBaselineModel("tgat", false, dims)});
  rows.push_back({"SLADE", MakeBaselineModel("slade", false, dims)});

  for (Row& row : rows) {
    RunCell(row.model.get(), ds, epochs, 100);  // train (no-op for SLADE)
    const auto points = ScoreUser(row.model.get(), ds, split, target);

    // Normalize scores to [0,1] within the series for comparability.
    double lo = 1e300, hi = -1e300;
    for (const auto& p : points) {
      lo = std::min(lo, p.score);
      hi = std::max(hi, p.score);
    }
    const double span = hi > lo ? hi - lo : 1.0;
    double normal_mean = 0.0, abnormal_mean = 0.0;
    size_t n_norm = 0, n_abn = 0;
    std::printf("%-14s:", row.label.c_str());
    const size_t stride = std::max<size_t>(1, points.size() / 24);
    for (size_t i = 0; i < points.size(); ++i) {
      const double s = (points[i].score - lo) / span;
      if (points[i].label) {
        abnormal_mean += s;
        ++n_abn;
      } else {
        normal_mean += s;
        ++n_norm;
      }
      if (i % stride == 0) {
        std::printf(" %c%.2f", points[i].label ? '*' : ' ', s);
      }
    }
    normal_mean /= std::max<size_t>(1, n_norm);
    abnormal_mean /= std::max<size_t>(1, n_abn);
    std::printf("\n%14s  transition contrast (abnormal - normal) = %+.3f\n",
                "", abnormal_mean - normal_mean);
    std::fflush(stdout);
  }
  std::printf("\n('*' marks queries whose ground-truth state is abnormal; "
              "scores min-max normalized per model.)\n");
  std::printf("Expected shape (paper Fig. 13): SPLASH shows the largest "
              "positive contrast — its score rises\nexactly when the user "
              "turns abnormal; weak baselines stay flat.\n");
  return 0;
}
