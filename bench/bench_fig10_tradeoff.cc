// Reproduces Fig. 10: the trade-off between inference time and AUC (left)
// and between model size and AUC (right) on the Reddit stand-in. Prints one
// row per method with per-query inference latency, parameter count, and AUC,
// plus the headline ratios the paper reports (speedup / size / AUC gain).

#include "bench/bench_common.h"

using namespace splash;
using namespace splash::bench;

int main() {
  const double scale = BenchScale();
  const size_t epochs = BenchEpochs();
  std::printf(
      "=== Fig. 10: inference-time & size vs AUC on reddit-s "
      "(scale=%.2f, epochs=%zu, threads=%zu) ===\n\n",
      scale, epochs, BenchThreads());

  const Dataset ds = MakeDataset("reddit-s", scale).value();
  BenchDims dims;

  struct Row {
    std::string label;
    std::function<std::unique_ptr<TemporalPredictor>()> make;
  };
  const std::vector<Row> rows = {
      {"JODIE", [&]() { return MakeBaselineModel("jodie", false, dims); }},
      {"JODIE+RF", [&]() { return MakeBaselineModel("jodie", true, dims); }},
      {"DySAT+RF", [&]() { return MakeBaselineModel("dysat", true, dims); }},
      {"TGAT+RF", [&]() { return MakeBaselineModel("tgat", true, dims); }},
      {"TGN+RF", [&]() { return MakeBaselineModel("tgn", true, dims); }},
      {"GraphMixer+RF",
       [&]() { return MakeBaselineModel("graphmixer", true, dims); }},
      {"DyGFormer+RF",
       [&]() { return MakeBaselineModel("dygformer", true, dims); }},
      {"SPLASH", [&]() { return MakeSplash(SplashMode::kAuto, dims); }},
  };

  std::printf("%-16s %12s %12s %8s\n", "method", "us/query", "params",
              "AUC(%)");
  PrintRule(52);

  double splash_us = 0.0, best_other_us = 0.0, splash_auc = 0.0;
  size_t splash_params = 0, best_other_params = 0;
  double best_other_auc = -1.0;
  for (const Row& row : rows) {
    auto model = row.make();
    const CellResult cell = RunCell(model.get(), ds, epochs, 100);
    const double us_per_query =
        cell.num_queries
            ? 1e6 * cell.predict_seconds / static_cast<double>(cell.num_queries)
            : 0.0;
    std::printf("%-16s %12.1f %12zu %8.1f\n", row.label.c_str(), us_per_query,
                cell.param_count, 100.0 * cell.metric);
    std::fflush(stdout);
    if (row.label == "SPLASH") {
      splash_us = us_per_query;
      splash_params = cell.param_count;
      splash_auc = cell.metric;
    } else if (cell.metric > best_other_auc) {
      best_other_auc = cell.metric;
      best_other_us = us_per_query;
      best_other_params = cell.param_count;
    }
  }

  if (splash_us > 0.0 && best_other_auc > 0.0) {
    std::printf(
        "\nSPLASH vs best-performing baseline: %.2fx faster inference, "
        "%.2fx params, %+.1f AUC points.\n",
        best_other_us / splash_us,
        static_cast<double>(splash_params) /
            static_cast<double>(best_other_params),
        100.0 * (splash_auc - best_other_auc));
  }
  std::printf("Expected shape (paper Fig. 10): SPLASH sits on the Pareto "
              "front — fastest/lightest at the best AUC\n(paper: 27.5x faster,"
              " 5.97x fewer params than FreeDyG+RF).\n");
  return 0;
}
