// Copyright 2026 The SPLASH Reproduction Authors.
//
// Load generator for the serving subsystem (serve/): drives a live
// SplashService with mixed ingest:query traffic and reports throughput +
// latency quantiles per scenario. Two driver shapes:
//
//   closed loop — T driver threads issue back-to-back operations (each op
//     is an IngestEdge with probability `ingest_frac`, else a
//     PredictNode); measures peak sustainable throughput.
//   open loop — one paced driver submits operations on a fixed-rate
//     schedule (sleep-until), measuring latency at an offered load the
//     service does not control — the shape that exposes queueing delay.
//
// Output is a google-benchmark-compatible JSON (BENCH_serve.json via
// scripts/serve_load.sh) so scripts/check_bench_regression.py can gate the
// pinned smoke row (BM_ServeSmokeMixed) against the committed baseline,
// normalized by the ALU calibration row (BM_ServeCalibrate) to cancel host
// speed. cpu_time is *process* CPU per operation — it includes the apply
// thread and pool workers, so ingest-path regressions cannot hide behind
// concurrency.
//
// Usage: bench_serve_load [--smoke] [--ops N] [--threads T]
//                         [--wal none|batch|always] [--json PATH]
//                         [--context key=value]...
//
// The durability row (BM_ServeSmokeMixedWal/<policy>) reruns the pinned
// smoke workload against a durable service (WAL + checkpoints in a
// throwaway dir) so the snapshot records what the write-ahead layer costs;
// --wal picks its fsync policy.

#include <ctime>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/splash.h"
#include "datasets/synthetic.h"
#include "eval/timing.h"
#include "eval/trainer.h"
#include "runtime/thread_pool.h"
#include "serve/router.h"
#include "serve/service.h"
#include "tensor/rng.h"
#include "tensor/simd.h"

namespace splash {
namespace {

uint64_t ProcessCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

/// `wide` picks the serving-realistic model for the coalescing sweeps: the
/// hidden-layer GEMM dominates per-query cost, and its row count is the
/// batch size — a lone query pays the full 8-row register-tile cost of the
/// SIMD micro-kernels, so coalesced batches are where the wide backends
/// reach their GEMM-shaped sweet spot (DESIGN.md §5b). The tiny default
/// stays pinned for the CI gate row.
SplashOptions LoadModelOptions(bool wide) {
  SplashOptions opts;
  opts.mode = SplashMode::kForceStructural;  // no selection pass
  opts.augment.feature_dim = wide ? 64 : 16;
  opts.slim.hidden_dim = wide ? 1024 : 32;
  opts.slim.time_dim = wide ? 16 : 8;
  opts.slim.k_recent = wide ? 10 : 5;
  opts.slim.dropout = 0.0f;
  opts.seed = 9;
  return opts;
}

struct RowResult {
  std::string name;
  uint64_t iterations = 0;
  double real_ns_per_op = 0.0;
  double cpu_ns_per_op = 0.0;
  double ops_per_sec = 0.0;
  // Per-row run config, stamped from what actually ran (the dispatched
  // kernel table, not the requested one): check_bench_regression.py
  // refuses unlike-config comparisons on serve rows.
  std::string kernel_backend;
  std::string wal_mode = "off";
  std::string model = "none";
  std::string shards = "direct";  // "direct" = bare service, else "<S>"
  /// Stamped only on the routed gate row: the median of the per-pair
  /// routed/direct cpu ratios (each pair ran back-to-back), which is what
  /// check_bench_regression.py's --overhead-row gate reads. 0 = absent.
  double overhead_vs_direct = 0.0;
  ServeStats stats;
  bool has_stats = false;
};

struct LoadConfig {
  std::string name;
  double ingest_frac = 0.5;
  size_t driver_threads = 1;
  size_t ops = 20000;
  double open_loop_rate = 0.0;  // > 0: paced arrivals per second
  uint64_t seed = 1234;
  /// Read-path query coalescing (DESIGN.md §5b). Off pins the per-query
  /// path — the BM_PredictPerQuery baseline of the coalescing speedup.
  bool coalesce = true;
  /// Serving-realistic model dims (see LoadModelOptions).
  bool wide_model = false;
  /// Gather-window override; < 0 keeps the service default. The
  /// inflight-aware early break makes a generous window safe: it is only
  /// ever spent while in-flight callers are still en route to the ring.
  double linger_s = -1.0;
  /// "" = no durability; "none"/"batch"/"always" = durable service (WAL +
  /// checkpoints in a throwaway dir) with that fsync policy — the
  /// durability-overhead row of BENCH_serve.json.
  std::string wal;
  /// Drive through ShardedSplashService instead of a bare SplashService.
  /// shards=1 measures the pure routing overhead (the gated
  /// BM_ServeSmokeMixedRouted/1 row vs BM_ServeSmokeMixed); higher counts
  /// are the BM_ServeShards scaling sweep.
  bool routed = false;
  uint32_t shards = 1;
};

/// One scenario against a fresh service. `warmup` provides the offline
/// fit; `live` is the edge pool the drivers ingest (in order, shared
/// cursor). Queries target the warmup node space at the live horizon.
RowResult RunScenario(const LoadConfig& cfg, const Dataset& warmup,
                      const ChronoSplit& split,
                      const std::vector<TemporalEdge>& live) {
  SplashServiceOptions sopts;
  sopts.microbatch_max_items = 256;
  sopts.microbatch_max_delay_s = 0.001;
  sopts.queue_capacity = 8192;
  sopts.backpressure = BackpressurePolicy::kBlock;
  sopts.train_on_ingest_labels = false;
  sopts.coalesce_max_batch = cfg.coalesce ? 32 : 1;
  if (cfg.linger_s >= 0.0) sopts.coalesce_max_linger_s = cfg.linger_s;
  std::string wal_dir;
  if (!cfg.wal.empty()) {
    char tmpl[] = "/tmp/splash_bench_wal_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed for --wal run\n");
      std::exit(1);
    }
    wal_dir = tmpl;
    sopts.data_dir = wal_dir;
    sopts.wal_fsync = cfg.wal == "always"  ? WalFsyncPolicy::kAlways
                      : cfg.wal == "none" ? WalFsyncPolicy::kNone
                                          : WalFsyncPolicy::kBatch;
    sopts.wal_group_records = 8;
    sopts.checkpoint_interval_batches = 256;
  }
  // Both driver shapes talk through the QueryBackend interface — the
  // routed rows exercise the identical client/scratch/response path the
  // direct rows do, so their delta is pure router cost.
  std::unique_ptr<SplashService> single;
  std::unique_ptr<ShardedSplashService> routed;
  QueryBackend* backend = nullptr;
  TrainerOptions fit;
  fit.epochs = 1;
  fit.batch_size = 256;
  fit.early_stopping = false;
  std::fflush(stdout);
  {
    Status st;
    if (cfg.routed) {
      ShardedServiceOptions ropts;
      ropts.num_shards = cfg.shards;
      ropts.shard = sopts;  // data_dir becomes the per-shard parent
      routed = std::make_unique<ShardedSplashService>(
          LoadModelOptions(cfg.wide_model), ropts);
      st = wal_dir.empty() ? routed->Start(warmup, split, &fit)
                           : routed->RecoverOrStart(warmup, split, &fit);
      backend = routed.get();
    } else {
      single = std::make_unique<SplashService>(
          LoadModelOptions(cfg.wide_model), sopts);
      st = wal_dir.empty() ? single->Start(warmup, split, &fit)
                           : single->RecoverOrStart(warmup, split, &fit);
      backend = single.get();
    }
    if (!st.ok()) {
      std::fprintf(stderr, "Start failed: %s\n", st.message().c_str());
      std::exit(1);
    }
  }

  std::atomic<size_t> edge_cursor{0};
  std::atomic<size_t> op_cursor{0};
  const NodeId node_span = static_cast<NodeId>(warmup.stream.num_nodes());
  const double query_time = live.empty() ? 0.0 : live.back().time + 1.0;

  // Drivers claim ops from a shared pool rather than fixed per-thread
  // quotas: all threads stay active until the pool drains, so a multi-
  // reader row measures the steady concurrent regime instead of ending
  // with one straggler thread serially draining its private quota.
  auto driver = [&](size_t tid) {
    ServeClient client(backend);
    ServeResponse resp;  // reused: the into-API keeps steady state alloc-free
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + tid);
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
      const size_t i = op_cursor.fetch_add(1);
      if (i >= cfg.ops) break;
      if (cfg.open_loop_rate > 0.0) {
        // Paced arrivals: absolute schedule so service latency cannot
        // slow the offered load (open-loop discipline).
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / cfg.open_loop_rate));
        std::this_thread::sleep_until(due);
      }
      const bool do_ingest = rng.Uniform() < cfg.ingest_frac;
      if (do_ingest) {
        const size_t idx = edge_cursor.fetch_add(1);
        if (idx < live.size()) {
          backend->IngestEdge(live[idx]);
          continue;
        }
        // Pool exhausted: fall through to a query so the op count holds.
      }
      const NodeId node = static_cast<NodeId>(rng.UniformInt(node_span));
      client.PredictNode(node, query_time, &resp);
    }
  };

  const uint64_t cpu0 = ProcessCpuNs();
  WallTimer wall;
  std::vector<std::thread> threads;
  for (size_t t = 1; t < cfg.driver_threads; ++t) {
    threads.emplace_back(driver, t);
  }
  driver(0);
  for (std::thread& t : threads) t.join();
  backend->Flush();
  const double wall_s = wall.Seconds();
  const uint64_t cpu_ns = ProcessCpuNs() - cpu0;
  backend->Stop();
  if (!wal_dir.empty() && wal_dir.rfind("/tmp/", 0) == 0) {
    const std::string cmd = "rm -rf '" + wal_dir + "'";
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }

  RowResult row;
  row.name = cfg.name;
  row.kernel_backend = KernelBackendName();
  row.wal_mode = cfg.wal.empty() ? "off" : cfg.wal;
  row.model = cfg.wide_model ? "fd64h1024t16k10" : "fd16h32t8k5";
  row.shards = cfg.routed ? std::to_string(cfg.shards) : "direct";
  row.iterations = cfg.ops;
  row.real_ns_per_op = wall_s * 1e9 / static_cast<double>(row.iterations);
  row.cpu_ns_per_op =
      static_cast<double>(cpu_ns) / static_cast<double>(row.iterations);
  row.ops_per_sec = static_cast<double>(row.iterations) / wall_s;
  row.stats = backend->Stats();
  row.has_stats = true;
  std::printf(
      "%-28s %9" PRIu64 " ops  %8.0f ops/s  cpu %7.0f ns/op  "
      "p50/p99/p999 %.0f/%.0f/%.0f us  wm %" PRIu64 " drops %" PRIu64 "\n",
      cfg.name.c_str(), row.iterations, row.ops_per_sec, row.cpu_ns_per_op,
      row.stats.predict.p50_ns * 1e-3, row.stats.predict.p99_ns * 1e-3,
      row.stats.predict.p999_ns * 1e-3, row.stats.counters.published_seq,
      row.stats.counters.ingest_dropped);
  std::fflush(stdout);
  return row;
}

/// ALU calibration row: a fixed SplitMix64 chain whose ns/op cancels the
/// host's single-core speed in the regression gate (same role as
/// BM_DegreeEncode in the micro bench).
RowResult RunCalibration() {
  constexpr uint64_t kIters = uint64_t{1} << 24;
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  const uint64_t cpu0 = ProcessCpuNs();
  WallTimer wall;
  for (uint64_t i = 0; i < kIters; ++i) acc = SplitMix64(acc ^ i);
  const double wall_s = wall.Seconds();
  const uint64_t cpu_ns = ProcessCpuNs() - cpu0;
  if (acc == 42) std::printf("!\n");  // keep the chain alive
  RowResult row;
  row.name = "BM_ServeCalibrate";
  row.kernel_backend = KernelBackendName();
  row.iterations = kIters;
  row.real_ns_per_op = wall_s * 1e9 / static_cast<double>(kIters);
  row.cpu_ns_per_op = static_cast<double>(cpu_ns) / static_cast<double>(kIters);
  row.ops_per_sec = static_cast<double>(kIters) / wall_s;
  return row;
}

void WriteJson(const std::string& path,
               const std::vector<std::pair<std::string, std::string>>& context,
               const std::vector<RowResult>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"context\": {\n");
  std::fprintf(f, "    \"executable\": \"bench_serve_load\"");
  for (const auto& [k, v] : context) {
    std::fprintf(f, ",\n    \"%s\": \"%s\"", k.c_str(), v.c_str());
  }
  std::fprintf(f, "\n  },\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowResult& r = rows[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"run_name\": \"%s\",\n"
                 "      \"run_type\": \"iteration\",\n"
                 "      \"iterations\": %" PRIu64 ",\n"
                 "      \"real_time\": %.4f,\n"
                 "      \"cpu_time\": %.4f,\n"
                 "      \"time_unit\": \"ns\",\n"
                 "      \"ops_per_sec\": %.2f,\n"
                 "      \"kernel_backend\": \"%s\",\n"
                 "      \"wal_mode\": \"%s\",\n"
                 "      \"model\": \"%s\",\n"
                 "      \"shards\": \"%s\"",
                 r.name.c_str(), r.name.c_str(), r.iterations,
                 r.real_ns_per_op, r.cpu_ns_per_op, r.ops_per_sec,
                 r.kernel_backend.c_str(), r.wal_mode.c_str(),
                 r.model.c_str(), r.shards.c_str());
    if (r.overhead_vs_direct > 0.0) {
      std::fprintf(f, ",\n      \"overhead_vs_direct\": %.4f",
                   r.overhead_vs_direct);
    }
    if (r.has_stats) {
      std::fprintf(
          f,
          ",\n      \"predict_p50_ns\": %.1f,\n"
          "      \"predict_p99_ns\": %.1f,\n"
          "      \"predict_p999_ns\": %.1f,\n"
          "      \"ingest_p99_ns\": %.1f,\n"
          "      \"apply_p99_ns\": %.1f,\n"
          "      \"queries\": %" PRIu64 ",\n"
          "      \"ingest_accepted\": %" PRIu64 ",\n"
          "      \"ingest_dropped\": %" PRIu64 ",\n"
          "      \"watermark\": %" PRIu64 ",\n"
          "      \"unseen_node_queries\": %" PRIu64 ",\n"
          "      \"batches_applied\": %" PRIu64 ",\n"
          "      \"wal_records\": %" PRIu64 ",\n"
          "      \"wal_fsyncs\": %" PRIu64 ",\n"
          "      \"checkpoints_written\": %" PRIu64 ",\n"
          "      \"coalesced_groups\": %" PRIu64 ",\n"
          "      \"coalesced_callers\": %" PRIu64 ",\n"
          "      \"direct_calls\": %" PRIu64,
          r.stats.predict.p50_ns, r.stats.predict.p99_ns,
          r.stats.predict.p999_ns, r.stats.ingest.p99_ns,
          r.stats.apply.p99_ns, r.stats.counters.queries,
          r.stats.counters.ingest_accepted, r.stats.counters.ingest_dropped,
          r.stats.counters.published_seq,
          r.stats.counters.unseen_node_queries,
          r.stats.counters.batches_applied, r.stats.counters.wal_records,
          r.stats.counters.wal_fsyncs, r.stats.counters.checkpoints_written,
          r.stats.counters.coalesced_groups, r.stats.counters.coalesced_callers,
          r.stats.counters.direct_calls);
    }
    std::fprintf(f, "\n    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Main(int argc, char** argv) {
  bool smoke = false;
  size_t ops = 0;
  size_t threads = 0;
  std::string wal_mode = "batch";
  std::string json_path = "BENCH_serve.json";
  std::vector<std::pair<std::string, std::string>> context;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--ops") {
      ops = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--wal") {
      wal_mode = next();
      if (wal_mode != "none" && wal_mode != "batch" && wal_mode != "always") {
        std::fprintf(stderr, "--wal wants none|batch|always, got %s\n",
                     wal_mode.c_str());
        std::exit(2);
      }
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--context") {
      const std::string kv = next();
      const size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--context wants key=value, got %s\n",
                     kv.c_str());
        std::exit(2);
      }
      context.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (ops == 0) ops = 60000;

  // The serving corpus: a synthetic stream split into an offline warmup
  // prefix (Prepare + Fit) and a live suffix the drivers ingest.
  auto make_corpus = [](size_t n_ops, Dataset* ds, ChronoSplit* split,
                        std::vector<TemporalEdge>* live) {
    SyntheticConfig cfg;
    cfg.task = TaskType::kNodeClassification;
    cfg.num_nodes = 2000;
    cfg.num_edges = n_ops + 20000;
    cfg.num_communities = 4;
    cfg.query_rate = 0.1;
    cfg.late_arrival_frac = 0.2;
    cfg.seed = 4242;
    *ds = GenerateSynthetic(cfg);
    *split = MakeChronoSplit(ds->stream, 0.1, 0.6);
    live->clear();
    for (size_t i = 0; i < ds->stream.size(); ++i) {
      if (ds->stream[i].time > split->val_end_time) {
        live->push_back(ds->stream[i]);
      }
    }
  };

  std::vector<RowResult> rows;
  rows.push_back(RunCalibration());
  {
    // The pinned CI gate row: fixed corpus, fixed op count, fixed seed,
    // one driver thread, 50:50 mix — identical work in baseline (sweep)
    // and CI (--smoke) runs regardless of --ops.
    constexpr size_t kSmokeOps = 20000;
    Dataset ds;
    ChronoSplit split;
    std::vector<TemporalEdge> live;
    make_corpus(kSmokeOps, &ds, &split, &live);
    std::printf("smoke corpus: %zu warmup-period edges, %zu live edges, "
                "%zu ops, SPLASH_THREADS=%zu\n\n",
                ds.stream.size() - live.size(), live.size(), kSmokeOps,
                ThreadPool::GlobalThreads());
    LoadConfig c;
    c.name = "BM_ServeSmokeMixed";
    c.ingest_frac = 0.5;
    c.driver_threads = 1;
    c.ops = kSmokeOps;
    c.seed = 77;

    // Routed gate row config: the identical pinned workload through a
    // 1-shard ShardedSplashService. Gated two ways: against its own
    // baseline like BM_ServeSmokeMixed, and within-run against the direct
    // row (the --max-overhead check in check_bench_regression.py) — the
    // router's single-owner fast path must stay within a few percent of
    // direct.
    LoadConfig cr = c;
    cr.name = "BM_ServeSmokeMixedRouted/1";
    cr.routed = true;
    cr.shards = 1;

    // Median of 7 repetitions (fresh service each): single mixed-traffic
    // runs swing ~±20% cpu/op from scheduler noise on shared runners,
    // which would drown the regression gate's threshold. The direct and
    // routed reps are INTERLEAVED pairwise, alternating order within each
    // pair: the two rows feed a within-file ratio gate, and running one
    // block after the other lets monotone host drift (turbo decay, a
    // busier co-tenant) land entirely on whichever row ran second —
    // observed swinging the routed/direct ratio 0.92..1.23 across
    // otherwise-identical runs. The gated ratio is therefore NOT the
    // ratio of the two independently-sorted medians (which still mixes
    // reps from different noise regimes); it is the median of the seven
    // per-pair ratios, stamped on the routed row as overhead_vs_direct —
    // each ratio compares two runs that executed back-to-back, so a
    // transient slowdown inflates numerator and denominator together and
    // cancels.
    constexpr int kGateReps = 7;
    RowResult reps[kGateReps];
    RowResult rreps[kGateReps];
    double pair_ratio[kGateReps];
    for (int i = 0; i < kGateReps; ++i) {
      if (i % 2 == 0) {
        reps[i] = RunScenario(c, ds, split, live);
        rreps[i] = RunScenario(cr, ds, split, live);
      } else {
        rreps[i] = RunScenario(cr, ds, split, live);
        reps[i] = RunScenario(c, ds, split, live);
      }
      pair_ratio[i] = reps[i].cpu_ns_per_op > 0.0
                          ? rreps[i].cpu_ns_per_op / reps[i].cpu_ns_per_op
                          : 0.0;
    }
    const auto by_cpu = [](const RowResult& a, const RowResult& b) {
      return a.cpu_ns_per_op < b.cpu_ns_per_op;
    };
    std::sort(std::begin(reps), std::end(reps), by_cpu);
    rows.push_back(reps[kGateReps / 2]);
    std::sort(std::begin(pair_ratio), std::end(pair_ratio));
    std::sort(std::begin(rreps), std::end(rreps), by_cpu);
    rreps[kGateReps / 2].overhead_vs_direct = pair_ratio[kGateReps / 2];
    rows.push_back(rreps[kGateReps / 2]);
    std::printf("routed/direct paired-median overhead: %.3f "
                "(pair range %.3f..%.3f)\n",
                pair_ratio[kGateReps / 2], pair_ratio[0],
                pair_ratio[kGateReps - 1]);

    // Shard-count scaling sweep (not gated): the pinned mixed workload
    // across S ∈ {1, 2, 4} shards. On a single-core host this documents
    // the partitioning overhead (S apply threads time-slicing one core);
    // on multi-core hosts it shows ingest scaling across shards.
    for (const uint32_t s : {1u, 2u, 4u}) {
      LoadConfig cs = c;
      cs.name = "BM_ServeShards/" + std::to_string(s);
      cs.routed = true;
      cs.shards = s;
      cs.seed = 77 + 1000 * s;
      rows.push_back(RunScenario(cs, ds, split, live));
    }

    // Durability-overhead row: the identical pinned workload with the WAL +
    // checkpoint layer on (--wal picks the fsync policy; default batch).
    // Not a gated row — it exists so BENCH_serve.json documents what
    // durability costs relative to BM_ServeSmokeMixed on the same host.
    LoadConfig cw = c;
    cw.name = "BM_ServeSmokeMixedWal/" + wal_mode;
    cw.wal = wal_mode;
    RowResult wreps[3];
    for (RowResult& r : wreps) r = RunScenario(cw, ds, split, live);
    std::sort(std::begin(wreps), std::end(wreps),
              [](const RowResult& a, const RowResult& b) {
                return a.cpu_ns_per_op < b.cpu_ns_per_op;
              });
    rows.push_back(wreps[1]);

    // Read-path coalescing sweeps (DESIGN.md §5b). Not gated rows — they
    // document what the coalescer buys on this host: the same pinned 50:50
    // mix at rising driver counts, then a pure-query reader sweep whose
    // 16-reader point is compared against the per-query (coalescing off)
    // baseline below.
    for (const size_t t : {1, 8, 32}) {
      LoadConfig cc = c;
      cc.name = "BM_ServeSmokeMixed/coalesce:" + std::to_string(t);
      cc.driver_threads = t;
      cc.seed = 77 + t;
      rows.push_back(RunScenario(cc, ds, split, live));
    }
    // Pure-query reader sweeps on the serving-realistic wide model, where
    // per-query compute is deep enough for batch-GEMM amortization to beat
    // the wake-up tax. The 16-reader point pairs with the per-query
    // (coalescing off) baseline below: that ratio is the coalescing
    // speedup this host delivers. Fewer ops than the gate row: each wide
    // query costs ~100x a tiny one, and these rows are speedup probes,
    // not the regression gate.
    constexpr size_t kWideOps = 6000;
    double coalesced16_cpu = 0.0;
    for (const size_t t : {1, 4, 16, 64}) {
      LoadConfig cq;
      cq.name = "BM_PredictCoalesced/" + std::to_string(t);
      cq.ingest_frac = 0.0;
      cq.driver_threads = t;
      cq.ops = kWideOps;
      cq.seed = 900 + t;
      cq.wide_model = true;
      cq.linger_s = 200e-6;  // covers the post-group wake/resubmit phase
      rows.push_back(RunScenario(cq, ds, split, live));
      if (t == 16) coalesced16_cpu = rows.back().cpu_ns_per_op;
    }
    {
      LoadConfig cq;
      cq.name = "BM_PredictPerQuery/16";
      cq.ingest_frac = 0.0;
      cq.driver_threads = 16;
      cq.ops = kWideOps;
      cq.seed = 916;
      cq.coalesce = false;
      cq.wide_model = true;
      rows.push_back(RunScenario(cq, ds, split, live));
      if (coalesced16_cpu > 0.0) {
        std::printf("\ncoalesce speedup @16 readers (cpu/op): %.2fx\n",
                    rows.back().cpu_ns_per_op / coalesced16_cpu);
      }
    }
  }
  if (!smoke) {
    Dataset ds;
    ChronoSplit split;
    std::vector<TemporalEdge> live;
    make_corpus(ops, &ds, &split, &live);
    std::printf("\nsweep corpus: %zu warmup-period edges, %zu live edges, "
                "%zu ops/scenario\n\n",
                ds.stream.size() - live.size(), live.size(), ops);
    const size_t t = threads == 0 ? 2 : threads;
    for (const int pct : {90, 50, 10}) {
      LoadConfig c;
      c.name = "BM_ServeClosed/ingest" + std::to_string(pct);
      c.ingest_frac = pct / 100.0;
      c.driver_threads = t;
      c.ops = ops;
      c.seed = 1000 + static_cast<uint64_t>(pct);
      rows.push_back(RunScenario(c, ds, split, live));
    }
    {
      LoadConfig c;
      c.name = "BM_ServeOpen/rate4000_ingest50";
      c.ingest_frac = 0.5;
      c.driver_threads = 1;
      c.ops = ops / 4;
      c.open_loop_rate = 4000.0;
      c.seed = 55;
      rows.push_back(RunScenario(c, ds, split, live));
    }
  }

  WriteJson(json_path, context, rows);
  return 0;
}

}  // namespace
}  // namespace splash

int main(int argc, char** argv) { return splash::Main(argc, argv); }
