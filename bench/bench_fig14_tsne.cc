// Reproduces Fig. 14 (qualitative): node representations on the Email-EU
// stand-in from SPLASH, TGAT+RF, and TGN+RF, embedded to 2-D with exact
// t-SNE and scored with the silhouette coefficient against the node classes.
// 2-D coordinates are written to CSV for external plotting.

#include <cstdio>
#include <map>

#include "analysis/tsne.h"
#include "bench/bench_common.h"
#include "eval/metrics.h"

using namespace splash;
using namespace splash::bench;

int main() {
  const double scale = BenchScale();
  const size_t epochs = BenchEpochs();
  std::printf(
      "=== Fig. 14: t-SNE + silhouette of node representations "
      "(email-eu-s, scale=%.2f) ===\n\n",
      scale);

  const Dataset ds = MakeDataset("email-eu-s", scale).value();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);

  // Nodes to embed: those queried in the test period, with their last label.
  std::map<NodeId, int> last_label;
  for (const auto& q : ds.queries) {
    if (q.time > split.val_end_time) last_label[q.node] = q.class_label;
  }
  std::vector<NodeId> nodes;
  std::vector<int> labels;
  for (const auto& [node, label] : last_label) {
    nodes.push_back(node);
    labels.push_back(label);
  }
  std::printf("embedding %zu nodes with %zu classes\n\n", nodes.size(),
              ds.num_classes);

  BenchDims dims;
  struct Row {
    std::string label;
    std::unique_ptr<TemporalPredictor> model;
  };
  std::vector<Row> rows;
  rows.push_back({"SPLASH", MakeSplash(SplashMode::kAuto, dims)});
  rows.push_back({"TGAT+RF", MakeBaselineModel("tgat", true, dims)});
  rows.push_back({"TGN+RF", MakeBaselineModel("tgn", true, dims)});

  std::printf("%-12s %14s %14s\n", "method", "silhouette", "tsne-silhouette");
  PrintRule(44);
  for (Row& row : rows) {
    RunCell(row.model.get(), ds, epochs, 100);

    // Replay the full stream, then read representations at the end time.
    row.model->SetTraining(false);
    row.model->ResetState();
    for (size_t i = 0; i < ds.stream.size(); ++i) {
      row.model->ObserveEdge(ds.stream[i], i);
    }
    std::vector<PropertyQuery> queries(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      queries[i].node = nodes[i];
      queries[i].time = ds.stream.max_time();
    }
    const Matrix repr = row.model->PredictBatch(queries);
    const double sil_raw = SilhouetteScore(repr, labels);

    // PCA-initialized t-SNE with the perplexity sweep hook: each candidate
    // shares the same init, the silhouette against the node classes picks
    // the winner (analysis/tsne.h).
    TsneOptions topts;
    topts.iterations = 800;
    const TsneSweepResult best = RunTsnePerplexitySweep(
        repr, topts, {5.0, 15.0, 30.0, 50.0}, 99,
        [&](const Matrix& emb) { return SilhouetteScore(emb, labels); });
    const Matrix& embedded = best.embedding;
    const double sil_tsne = best.score;
    std::printf("%-12s %14.4f %14.4f  (perplexity %.0f)\n",
                row.label.c_str(), sil_raw, sil_tsne, best.perplexity);
    std::fflush(stdout);

    // CSV for plotting: x,y,label.
    const std::string path = "fig14_" + row.label + ".csv";
    if (FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "x,y,label\n");
      for (size_t i = 0; i < nodes.size(); ++i) {
        std::fprintf(f, "%.4f,%.4f,%d\n", embedded(i, 0), embedded(i, 1),
                     labels[i]);
      }
      std::fclose(f);
    }
  }
  std::printf("\n(2-D coordinates written to fig14_<method>.csv)\n");
  std::printf("Expected shape (paper Fig. 14): SPLASH's representations "
              "separate classes best\n(paper silhouettes: SPLASH 0.31, "
              "TGAT+RF 0.10, TGN+RF -0.01).\n");
  return 0;
}
