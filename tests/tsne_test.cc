// Copyright 2026 The SPLASH Reproduction Authors.
//
// Pins the Fig. 14 fidelity fix (ROADMAP item): with PCA initialization
// and the perplexity sweep, the 2-D t-SNE silhouette on the synthetic
// drift dataset must land within a tolerance of the raw-representation
// silhouette — random init used to scramble the global cluster layout and
// leave the 2-D score trailing far behind.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "analysis/tsne.h"
#include "core/feature_augmentation.h"
#include "datasets/synthetic.h"
#include "eval/metrics.h"

namespace splash {
namespace {

/// Community-revealing features on the synthetic drift dataset: the
/// positional process fitted on the full stream, one row per labeled node.
void MakeDriftFeatures(Matrix* features, std::vector<int>* labels) {
  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 140;
  cfg.num_edges = 6000;
  cfg.num_communities = 3;
  cfg.intra_prob = 0.92;
  cfg.query_rate = 0.3;
  cfg.late_arrival_frac = 0.2;  // the drift knob: late-arriving nodes
  cfg.seed = 97;
  const Dataset ds = GenerateSynthetic(cfg);

  FeatureAugmenterOptions opts;
  opts.feature_dim = 16;
  opts.seed = 7;
  FeatureAugmenter aug(opts);
  aug.FitSeen(ds.stream, ds.stream.max_time());

  std::map<NodeId, int> last_label;
  for (const PropertyQuery& q : ds.queries) last_label[q.node] = q.class_label;

  features->Resize(last_label.size(), opts.feature_dim);
  labels->clear();
  size_t row = 0;
  for (const auto& [node, label] : last_label) {
    aug.WriteFeature(AugmentationProcess::kPositional, node,
                     features->Row(row));
    labels->push_back(label);
    ++row;
  }
}

TEST(TsneTest, PcaInitSweepSilhouetteWithinToleranceOfRaw) {
  Matrix features;
  std::vector<int> labels;
  MakeDriftFeatures(&features, &labels);
  ASSERT_GT(features.rows(), 60u);

  const double sil_raw = SilhouetteScore(features, labels);
  ASSERT_GT(sil_raw, 0.0) << "positional features lost the communities";

  TsneOptions opts;
  opts.iterations = 350;
  const TsneSweepResult best = RunTsnePerplexitySweep(
      features, opts, {5.0, 15.0, 30.0}, 42,
      [&](const Matrix& emb) { return SilhouetteScore(emb, labels); });

  EXPECT_GE(best.score, sil_raw - 0.15)
      << "2-D silhouette " << best.score << " trails raw " << sil_raw
      << " beyond tolerance (perplexity " << best.perplexity << ")";
}

TEST(TsneTest, SweepIsDeterministicForAFixedSeed) {
  Matrix features;
  std::vector<int> labels;
  MakeDriftFeatures(&features, &labels);

  TsneOptions opts;
  opts.iterations = 60;
  const auto scorer = [&](const Matrix& emb) {
    return SilhouetteScore(emb, labels);
  };
  const TsneSweepResult a =
      RunTsnePerplexitySweep(features, opts, {10.0, 25.0}, 7, scorer);
  const TsneSweepResult b =
      RunTsnePerplexitySweep(features, opts, {10.0, 25.0}, 7, scorer);
  EXPECT_EQ(a.perplexity, b.perplexity);
  EXPECT_EQ(a.score, b.score);
  ASSERT_EQ(a.embedding.size(), b.embedding.size());
  for (size_t i = 0; i < a.embedding.size(); ++i) {
    ASSERT_EQ(a.embedding.data()[i], b.embedding.data()[i]);
  }
}

TEST(TsneTest, PcaInitFallsBackGracefullyOnDegenerateData) {
  Matrix constant(8, 4);  // zero variance: power iteration must bail
  constant.Fill(3.0f);
  TsneOptions opts;
  opts.iterations = 20;
  Rng rng(3);
  const Matrix emb = RunTsne(constant, opts, &rng);
  ASSERT_EQ(emb.rows(), 8u);
  for (size_t i = 0; i < emb.size(); ++i) {
    ASSERT_TRUE(std::isfinite(emb.data()[i]));
  }
}

}  // namespace
}  // namespace splash
