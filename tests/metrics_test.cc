// Copyright 2026 The SPLASH Reproduction Authors.

#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace splash {
namespace {

TEST(MetricsTest, AucKnownValues) {
  // Perfect separation.
  EXPECT_DOUBLE_EQ(AucScore({0.1, 0.2, 0.8, 0.9}, {0, 0, 1, 1}), 1.0);
  // Perfectly wrong.
  EXPECT_DOUBLE_EQ(AucScore({0.9, 0.8, 0.2, 0.1}, {0, 0, 1, 1}), 0.0);
  // One discordant pair out of four: AUC = 3/4.
  EXPECT_DOUBLE_EQ(AucScore({0.1, 0.7, 0.4, 0.9}, {0, 0, 1, 1}), 0.75);
  // Degenerate labels.
  EXPECT_DOUBLE_EQ(AucScore({0.1, 0.2}, {0, 0}), 0.5);
  // All-tied scores.
  EXPECT_DOUBLE_EQ(AucScore({0.5, 0.5, 0.5, 0.5}, {0, 1, 0, 1}), 0.5);
}

TEST(MetricsTest, F1Micro) {
  EXPECT_DOUBLE_EQ(F1Micro({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(F1Micro({1, 2, 3, 0}, {1, 2, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(F1Micro({}, {}), 0.0);
}

TEST(MetricsTest, NdcgAtK) {
  // Relevant class ranked 1st -> 1.0; ranked 2nd -> 1/log2(3).
  Matrix scores(2, 3);
  scores(0, 0) = 0.9f;
  scores(0, 1) = 0.1f;
  scores(0, 2) = 0.0f;
  scores(1, 0) = 0.5f;
  scores(1, 1) = 0.9f;
  scores(1, 2) = 0.1f;
  const double got = NdcgAtK(scores, {0, 0}, 10);
  EXPECT_NEAR(got, 0.5 * (1.0 + 1.0 / std::log2(3.0)), 1e-9);
  // Outside the cutoff contributes zero.
  Matrix s2(1, 3);
  s2(0, 0) = 0.0f;
  s2(0, 1) = 0.5f;
  s2(0, 2) = 0.9f;
  EXPECT_DOUBLE_EQ(NdcgAtK(s2, {0}, 2), 0.0);
}

TEST(MetricsTest, TaskMetricDispatch) {
  Matrix scores(2, 2);
  scores(0, 0) = 1.0f;  // normal: score -1
  scores(0, 1) = 0.0f;
  scores(1, 0) = 0.0f;  // abnormal: score +1
  scores(1, 1) = 1.0f;
  EXPECT_DOUBLE_EQ(
      TaskMetric(TaskType::kAnomalyDetection, scores, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(
      TaskMetric(TaskType::kNodeClassification, scores, {0, 1}), 1.0);
}

TEST(MetricsTest, SilhouetteSeparatedClusters) {
  Matrix points(4, 2);
  points(0, 0) = 0.0f;
  points(1, 0) = 0.1f;
  points(2, 0) = 10.0f;
  points(3, 0) = 10.1f;
  const double s = SilhouetteScore(points, {0, 0, 1, 1});
  EXPECT_GT(s, 0.9);
  // Interleaved clusters score poorly.
  Matrix mixed(4, 1);
  mixed(0, 0) = 0.0f;
  mixed(1, 0) = 1.0f;
  mixed(2, 0) = 0.1f;
  mixed(3, 0) = 1.1f;
  EXPECT_LT(SilhouetteScore(mixed, {0, 0, 1, 1}), 0.1);
}

}  // namespace
}  // namespace splash
