// Copyright 2026 The SPLASH Reproduction Authors.
//
// Concurrency stress of the serving subsystem — the test CI runs under
// ThreadSanitizer. One producer ingests edges (plus training feedback)
// while several reader threads hammer the query path and the main thread
// polls Stats(). The assertions target torn state:
//   - every response's (watermark_seq, watermark_time) pair must name a
//     real log prefix — a reader overlapping a half-applied batch would
//     report a seq/time pair the final log contradicts;
//   - after Stop(), the published snapshot must be bit-identical to
//     re-applying the recorded micro-batch sequence to a fresh replica at
//     the same thread count — a lost or doubled batch cannot hide;
//   - TSan itself checks the pin/publish protocol's happens-before edges.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/splash.h"
#include "datasets/synthetic.h"
#include "eval/trainer.h"
#include "runtime/thread_pool.h"
#include "serve/service.h"

namespace splash {
namespace {

class ServeStressTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }
};

SplashOptions StressModelOptions() {
  SplashOptions opts;
  opts.mode = SplashMode::kForceStructural;
  opts.augment.feature_dim = 12;
  opts.slim.hidden_dim = 24;
  opts.slim.time_dim = 8;
  opts.slim.k_recent = 5;
  opts.slim.dropout = 0.0f;
  opts.seed = 11;
  return opts;
}

TEST_F(ServeStressTest, ConcurrentIngestAndQueriesNeverObserveTornState) {
  // Multiple pool workers so ObserveBulk/StageBatch fan out while readers
  // run — the data-race surface TSan needs to see exercised.
  ThreadPool::SetGlobalThreads(2);

  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 200;
  cfg.num_edges = 5000;
  cfg.num_communities = 3;
  cfg.query_rate = 0.2;
  cfg.seed = 31;
  const Dataset ds = GenerateSynthetic(cfg);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  std::vector<TemporalEdge> live;
  for (size_t i = 0; i < ds.stream.size(); ++i) {
    if (ds.stream[i].time > split.val_end_time) live.push_back(ds.stream[i]);
  }
  ASSERT_GT(live.size(), 1000u);

  SplashServiceOptions sopts;
  sopts.microbatch_max_items = 64;
  sopts.microbatch_max_delay_s = 0.0002;
  sopts.queue_capacity = 1024;
  sopts.backpressure = BackpressurePolicy::kBlock;
  sopts.train_on_ingest_labels = true;
  sopts.record_apply_log = true;
  SplashService service(StressModelOptions(), sopts);
  TrainerOptions fit;
  fit.epochs = 1;
  fit.batch_size = 128;
  fit.early_stopping = false;
  fit.num_threads = 2;
  fit.pipeline_depth = 1;
  ASSERT_TRUE(service.Start(ds, split, &fit).ok());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> fed{0};

  std::thread producer([&] {
    for (size_t i = 0; i < live.size(); ++i) {
      // Advance the bound BEFORE the enqueue: the apply thread can publish
      // the edge the instant Push returns, so the invariant readers check
      // is watermark <= edges *offered*, not edges already acknowledged.
      fed.store(i + 1, std::memory_order_release);
      EXPECT_TRUE(service.IngestEdge(live[i]));  // kBlock: lossless
      if (i % 16 == 15) {
        PropertyQuery q;
        q.node = live[i].dst;
        q.time = live[i].time;
        q.class_label = static_cast<int>(i % 3);
        service.SubmitTrain(q);
      }
    }
    done.store(true, std::memory_order_release);
  });

  struct Seen {
    uint64_t seq;
    double time;
  };
  std::vector<std::vector<Seen>> seen(3);
  std::vector<std::thread> readers;
  for (size_t r = 0; r < seen.size(); ++r) {
    readers.emplace_back([&, r] {
      ServeClient client(&service);
      uint64_t last_seq = 0;
      size_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        const TemporalEdge& e = live[(r * 97 + i * 13) % live.size()];
        const ServeResponse resp =
            (i % 2 == 0) ? client.PredictNode(e.src, e.time)
                         : client.ScoreEdge(e.src, e.dst, e.time);
        // A snapshot can never be ahead of the producer, nor regress.
        EXPECT_LE(resp.watermark_seq, fed.load(std::memory_order_acquire));
        EXPECT_GE(resp.watermark_seq, last_seq);
        last_seq = resp.watermark_seq;
        seen[r].push_back({resp.watermark_seq, resp.watermark_time});
        ++i;
      }
    });
  }

  // Main thread: poll the stats endpoint concurrently (merges the client
  // histograms while they record).
  while (!done.load(std::memory_order_acquire)) {
    const ServeStats st = service.Stats();
    EXPECT_LE(st.counters.published_seq, fed.load());
    std::this_thread::yield();
  }
  producer.join();
  for (std::thread& t : readers) t.join();
  service.Flush();
  service.Stop();

  // Post-hoc torn-state audit: every observed (seq, time) names a real log
  // prefix of the final ingest log.
  const EdgeStream& log = service.ingest_log();
  ASSERT_EQ(log.size(), live.size());
  for (const auto& lane : seen) {
    for (const Seen& s : lane) {
      ASSERT_LE(s.seq, log.size());
      const double want = s.seq == 0 ? 0.0 : log.time_data()[s.seq - 1];
      ASSERT_EQ(s.time, want)
          << "response watermark (seq=" << s.seq
          << ") does not match the log — torn snapshot";
    }
  }

  // Final-state oracle at the same thread count: re-apply the recorded
  // micro-batch sequence to a fresh, identically-fitted replica.
  auto ref = std::make_unique<SplashPredictor>(StressModelOptions());
  ASSERT_TRUE(ref->Prepare(ds, split).ok());
  {
    StreamTrainer trainer(fit);
    trainer.Fit(ref.get(), ds, split);
  }
  ref->SetTraining(false);
  ref->ResetState();
  const auto& bounds = service.applied_batch_bounds();
  const auto& trains = service.applied_train_batches();
  size_t cursor = 0, train_i = 0;
  for (const uint64_t bound : bounds) {
    if (bound > cursor) {
      ref->ObserveBulk(log, cursor, bound);
      cursor = bound;
    }
    while (train_i < trains.size() && trains[train_i].first == bound) {
      ref->SetTraining(true);
      ref->StageBatch(trains[train_i].second);
      ref->TrainStaged();
      ref->SetTraining(false);
      ++train_i;
    }
  }
  ASSERT_EQ(cursor, log.size());

  std::vector<PropertyQuery> probe(ds.queries.end() - 32, ds.queries.end());
  // Read the reference through the service's own path: the const forward
  // at the env-resolved replica precision (SPLASH_REPLICA_PRECISION), so
  // the oracle holds under the CI precision matrix exactly as at fp32.
  const char* prec = std::getenv("SPLASH_REPLICA_PRECISION");
  ref->SetReplicaPrecisionBf16(prec != nullptr &&
                               std::string(prec) == "bf16");
  SplashQueryScratch ref_scratch;
  const Matrix want = ref->PredictBatchConst(probe, &ref_scratch);
  ServeClient client(&service);
  const ServeResponse resp = client.Predict(probe);
  ASSERT_EQ(resp.watermark_seq, log.size());
  ASSERT_EQ(want.rows(), resp.scores.rows());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want.data()[i], resp.scores.data()[i])
        << "final snapshot diverged from the recorded apply sequence at "
        << i;
  }

  const ServeStats st = service.Stats();
  EXPECT_EQ(st.counters.ingest_dropped, 0u);  // kBlock is lossless
  EXPECT_EQ(st.counters.ingest_accepted, live.size());
  EXPECT_GT(st.counters.queries, 0u);
  EXPECT_GT(st.predict.count, 0u);
}

TEST_F(ServeStressTest, StopMidBurstDrainsAcceptedAndNeverDeadlocks) {
  // Producers saturate a tiny kBlock queue while the main thread calls
  // Stop() mid-burst. The lifecycle contract: Stop never deadlocks against
  // blocked producers, everything accepted before the stop is applied, and
  // the final snapshot is valid (published == log size, queryable).
  ThreadPool::SetGlobalThreads(2);

  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 150;
  cfg.num_edges = 4000;
  cfg.num_communities = 3;
  cfg.query_rate = 0.2;
  cfg.seed = 47;
  const Dataset ds = GenerateSynthetic(cfg);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  std::vector<TemporalEdge> live;
  for (size_t i = 0; i < ds.stream.size(); ++i) {
    if (ds.stream[i].time > split.val_end_time) live.push_back(ds.stream[i]);
  }
  ASSERT_GT(live.size(), 1000u);

  SplashServiceOptions sopts;
  sopts.microbatch_max_items = 16;
  sopts.microbatch_max_delay_s = 0.0002;
  sopts.queue_capacity = 8;  // small: producers block constantly
  sopts.backpressure = BackpressurePolicy::kBlock;
  sopts.train_on_ingest_labels = true;
  SplashService service(StressModelOptions(), sopts);
  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());

  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      // A blocked push returning false (queue stopped) ends the burst —
      // that is the expected way out once Stop() lands.
      for (size_t i = p; i < live.size(); i += 3) {
        if (!service.IngestEdge(live[i])) return;
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let the burst get going, then stop in the thick of it.
  while (accepted.load(std::memory_order_relaxed) < 200) {
    std::this_thread::yield();
  }
  service.Stop();
  for (std::thread& t : producers) t.join();

  // Accepted-before-stop items may or may not have made the final drain —
  // but the published state must be a consistent prefix and queries must
  // still answer from the surviving snapshot.
  const ServeStats st = service.Stats();
  EXPECT_EQ(st.counters.published_seq, service.ingest_log().size());
  EXPECT_LE(service.ingest_log().size(),
            accepted.load(std::memory_order_relaxed));
  ServeClient client(&service);
  const ServeResponse resp = client.PredictNode(live[0].src, live[0].time);
  EXPECT_EQ(resp.watermark_seq, st.counters.published_seq);

  // Double-Stop on an already-stopped service is a no-op, not a hang.
  service.Stop();
  EXPECT_EQ(service.Stats().counters.published_seq,
            st.counters.published_seq);
}

TEST_F(ServeStressTest, StopBeforeStartIsIgnoredAndStartStillWorks) {
  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 100;
  cfg.num_edges = 1500;
  cfg.num_communities = 3;
  cfg.query_rate = 0.2;
  cfg.seed = 53;
  const Dataset ds = GenerateSynthetic(cfg);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);

  SplashServiceOptions sopts;
  sopts.microbatch_max_items = 16;
  sopts.microbatch_max_delay_s = 0.0;
  SplashService service(StressModelOptions(), sopts);

  // Never-started: Stop must neither crash nor poison the queue.
  service.Stop();
  service.Stop();
  EXPECT_FALSE(service.running());

  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());
  EXPECT_TRUE(service.running());
  const double t = ds.stream.max_time();
  EXPECT_TRUE(service.IngestEdge(TemporalEdge(1, 2, t)));
  service.Flush();
  EXPECT_EQ(service.published_seq(), 1u);
  service.Stop();
  EXPECT_FALSE(service.running());
  service.Stop();  // idempotent after a real run too
  EXPECT_EQ(service.published_seq(), 1u);
}

}  // namespace
}  // namespace splash
