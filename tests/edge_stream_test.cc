// Copyright 2026 The SPLASH Reproduction Authors.
//
// EdgeStream SoA semantics, Append validation, TimeQuantile, and the
// MakeChronoSplit boundary math the benches depend on.

#include "graph/edge_stream.h"

#include <gtest/gtest.h>

#include "eval/trainer.h"

namespace splash {
namespace {

TEST(EdgeStreamTest, AppendTracksNodesAndColumns) {
  EdgeStream stream;
  ASSERT_TRUE(stream.Append(TemporalEdge(3, 7, 1.0)).ok());
  ASSERT_TRUE(stream.Append(TemporalEdge(2, 9, 2.5)).ok());
  EXPECT_EQ(stream.size(), 2u);
  EXPECT_EQ(stream.num_nodes(), 10u);  // max id + 1
  EXPECT_EQ(stream[1].src, 2u);
  EXPECT_EQ(stream[1].dst, 9u);
  EXPECT_DOUBLE_EQ(stream[1].time, 2.5);
  // SoA columns are the same data.
  EXPECT_EQ(stream.src_data()[0], 3u);
  EXPECT_EQ(stream.dst_data()[1], 9u);
  EXPECT_DOUBLE_EQ(stream.time_data()[0], 1.0);
}

TEST(EdgeStreamTest, RejectsOutOfOrderAndInvalid) {
  EdgeStream stream;
  ASSERT_TRUE(stream.Append(TemporalEdge(0, 1, 5.0)).ok());
  EXPECT_FALSE(stream.Append(TemporalEdge(0, 1, 4.0)).ok());  // back in time
  EXPECT_TRUE(stream.Append(TemporalEdge(0, 1, 5.0)).ok());   // ties fine
  EXPECT_FALSE(stream.Append(TemporalEdge(kInvalidNode, 1, 6.0)).ok());
  EXPECT_EQ(stream.size(), 2u);
}

TEST(EdgeStreamTest, EnsureNodeCapacityOnlyGrows) {
  EdgeStream stream;
  stream.EnsureNodeCapacity(100);
  EXPECT_EQ(stream.num_nodes(), 100u);
  stream.EnsureNodeCapacity(50);
  EXPECT_EQ(stream.num_nodes(), 100u);
  ASSERT_TRUE(stream.Append(TemporalEdge(200, 1, 1.0)).ok());
  EXPECT_EQ(stream.num_nodes(), 201u);
}

TEST(EdgeStreamTest, TimeQuantileBoundaries) {
  EdgeStream stream;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        stream.Append(TemporalEdge(0, 1, static_cast<double>(i))).ok());
  }
  EXPECT_DOUBLE_EQ(stream.TimeQuantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(stream.TimeQuantile(1.0), 9.0);
  EXPECT_DOUBLE_EQ(stream.TimeQuantile(0.5), 4.0);  // floor((10-1)*0.5)
  EXPECT_DOUBLE_EQ(stream.TimeQuantile(-3.0), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(stream.TimeQuantile(7.0), 9.0);   // clamped
}

TEST(EdgeStreamTest, MakeChronoSplitBoundaryMath) {
  EdgeStream stream;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        stream.Append(TemporalEdge(0, 1, static_cast<double>(i))).ok());
  }
  const ChronoSplit split = MakeChronoSplit(stream, 0.1, 0.1);
  // 80/10/10 by position: train ends at the 0.8 quantile.
  EXPECT_DOUBLE_EQ(split.train_end_time, 79.0);
  EXPECT_DOUBLE_EQ(split.val_end_time, 89.0);
  // Period membership is (train_end, val_end] / (val_end, ...].
  size_t train = 0, val = 0, test = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    const double t = stream[i].time;
    if (t <= split.train_end_time) {
      ++train;
    } else if (t <= split.val_end_time) {
      ++val;
    } else {
      ++test;
    }
  }
  EXPECT_EQ(train, 80u);
  EXPECT_EQ(val, 10u);
  EXPECT_EQ(test, 10u);
}

TEST(EdgeStreamTest, EmptyStreamDefaults) {
  EdgeStream stream;
  EXPECT_TRUE(stream.empty());
  EXPECT_DOUBLE_EQ(stream.TimeQuantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(stream.min_time(), 0.0);
  EXPECT_DOUBLE_EQ(stream.max_time(), 0.0);
}

}  // namespace
}  // namespace splash
