// Copyright 2026 The SPLASH Reproduction Authors.
//
// Contracts of the read-path query coalescer (DESIGN.md §5b):
//   - PROTOCOL: the flat-combining QueryCoalescer bypasses when
//     uncontended, groups contended callers FIFO up to max_batch, answers
//     every slot exactly once, and falls back to the direct path when the
//     ring is full — pinned with deterministic unit tests that drive the
//     leader through a controlled execute callback;
//   - ORACLE: a coalesced answer is bit-identical to the per-query path on
//     the same snapshot, for every caller in the group, including groups
//     mixing different batch shapes (the scatter offsets);
//   - every response's watermark is a real published snapshot (a recorded
//     applied-batch boundary), even under concurrent ingest;
//   - an expired deadline is answered late-but-flagged, never lost;
//   - the single-caller bypass stays allocation-free at steady state
//     (counting-allocator gate over the into-variant API);
//   - a TSan-able stress mix of producers and mixed-endpoint readers stays
//     self-consistent (every Predict call is exactly one direct or
//     coalesced completion).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "core/splash.h"
#include "datasets/synthetic.h"
#include "eval/trainer.h"
#include "runtime/thread_pool.h"
#include "serve/coalescer.h"
#include "serve/service.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<size_t> g_alloc_count{0};

void* CountedAlloc(size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace splash {
namespace {

/// Allocations observed while running `fn`.
template <typename Fn>
size_t CountAllocations(const Fn& fn) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_seq_cst);
  fn();
  g_counting.store(false, std::memory_order_seq_cst);
  return g_alloc_count.load(std::memory_order_relaxed);
}

class ServeCoalesceTest : public ::testing::Test {
 protected:
  void SetUp() override { ThreadPool::SetGlobalThreads(1); }
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }
};

Dataset MakeWarmup(size_t num_edges = 2000) {
  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 150;
  cfg.num_edges = num_edges;
  cfg.num_communities = 3;
  cfg.intra_prob = 0.9;
  cfg.query_rate = 0.25;
  cfg.late_arrival_frac = 0.2;
  cfg.seed = 21;
  return GenerateSynthetic(cfg);
}

SplashOptions SmallModelOptions() {
  SplashOptions opts;
  opts.mode = SplashMode::kForceStructural;  // no selection pass: fast
  opts.augment.feature_dim = 12;
  opts.slim.hidden_dim = 24;
  opts.slim.time_dim = 8;
  opts.slim.k_recent = 5;
  opts.slim.dropout = 0.0f;
  opts.seed = 5;
  return opts;
}

TrainerOptions SmallFit() {
  TrainerOptions fit;
  fit.epochs = 1;
  fit.batch_size = 64;
  fit.early_stopping = false;
  fit.num_threads = 1;
  fit.pipeline_depth = 0;
  return fit;
}

std::vector<TemporalEdge> LiveEdges(const Dataset& ds,
                                    const ChronoSplit& split) {
  std::vector<TemporalEdge> live;
  for (size_t i = 0; i < ds.stream.size(); ++i) {
    if (ds.stream[i].time > split.val_end_time) live.push_back(ds.stream[i]);
  }
  return live;
}

bool BitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (a(i, j) != b(i, j)) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// QueryCoalescer protocol unit tests: the execute callback is a controlled
// test double, so grouping decisions are driven deterministically instead
// of hoping the OS scheduler overlaps callers.
// ---------------------------------------------------------------------------

struct ExecRecorder {
  std::mutex mu;
  std::condition_variable cv;
  bool block_first_call = false;
  bool released = false;
  bool first_call_seen = false;
  std::vector<size_t> group_sizes;

  static void Run(void* ctx, QuerySlot* const* slots, size_t n) {
    auto* r = static_cast<ExecRecorder*>(ctx);
    {
      std::unique_lock<std::mutex> lk(r->mu);
      r->group_sizes.push_back(n);
      const bool first = !r->first_call_seen;
      r->first_call_seen = true;
      r->cv.notify_all();
      if (first && r->block_first_call) {
        // Watchdog: a bounded wait turns a test-sequencing bug into a
        // visible assertion failure instead of a hang.
        r->cv.wait_for(lk, std::chrono::seconds(5),
                       [r] { return r->released; });
      }
    }
    for (size_t i = 0; i < n; ++i) {
      slots[i]->resp->watermark_seq = 42;  // "answered by a group" marker
    }
  }

  void WaitFirstCall() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [this] { return first_call_seen; });
  }
  void Release() {
    std::lock_guard<std::mutex> lk(mu);
    released = true;
    cv.notify_all();
  }
};

TEST_F(ServeCoalesceTest, CoalescerSingleCallerBypasses) {
  ExecRecorder rec;
  CoalesceOptions opts;
  opts.max_batch = 8;
  QueryCoalescer c(opts, &ExecRecorder::Run, &rec);

  std::vector<PropertyQuery> q(1);
  ServeResponse resp;
  QuerySlot slot;
  slot.queries = &q;
  slot.resp = &resp;
  for (int i = 0; i < 3; ++i) {
    slot.done.store(false);
    EXPECT_FALSE(c.Submit(&slot)) << "lone caller must take the direct path";
    c.EndDirect();
  }
  EXPECT_EQ(c.direct_calls(), 3u);
  EXPECT_EQ(c.groups(), 0u);
  EXPECT_EQ(c.coalesced_callers(), 0u);
  EXPECT_TRUE(rec.group_sizes.empty());
}

TEST_F(ServeCoalesceTest, CoalescerMaxBatchOneDisablesEvenUnderContention) {
  ExecRecorder rec;
  CoalesceOptions opts;
  opts.max_batch = 1;  // disabled
  QueryCoalescer c(opts, &ExecRecorder::Run, &rec);

  std::vector<PropertyQuery> q(1);
  ServeResponse ra, rb;
  QuerySlot a, b;
  a.queries = &q;
  a.resp = &ra;
  b.queries = &q;
  b.resp = &rb;
  ASSERT_FALSE(c.Submit(&a));  // holds inflight: contention exists
  EXPECT_FALSE(c.Submit(&b)) << "max_batch <= 1 must never enqueue";
  c.EndDirect();
  c.EndDirect();
  EXPECT_EQ(c.direct_calls(), 2u);
  EXPECT_EQ(c.groups(), 0u);
}

TEST_F(ServeCoalesceTest, CoalescerGroupsContendedCallersIntoOneBatch) {
  constexpr size_t kCallers = 6;
  ExecRecorder rec;
  CoalesceOptions opts;
  opts.max_batch = kCallers;
  // Generous window: the leader waits for the full batch (breaks the
  // instant the ring holds max_batch), so thread-start jitter cannot split
  // the group. Actual wait is only until the last caller enqueues.
  opts.max_linger_s = 2.0;
  opts.ring_slots = 16;
  QueryCoalescer c(opts, &ExecRecorder::Run, &rec);

  // A held direct call supplies the contention that routes the threads
  // into the ring instead of the bypass.
  std::vector<PropertyQuery> q(1);
  ServeResponse hold_resp;
  QuerySlot hold;
  hold.queries = &q;
  hold.resp = &hold_resp;
  ASSERT_FALSE(c.Submit(&hold));

  std::vector<ServeResponse> resps(kCallers);
  std::vector<QuerySlot> slots(kCallers);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kCallers; ++i) {
    slots[i].queries = &q;
    slots[i].resp = &resps[i];
  }
  for (size_t i = 0; i < kCallers; ++i) {
    threads.emplace_back([&c, &slots, i] {
      EXPECT_TRUE(c.Submit(&slots[i]))
          << "contended caller must be answered by a group";
    });
  }
  for (auto& t : threads) t.join();
  c.EndDirect();

  EXPECT_EQ(c.groups(), 1u) << "full-batch linger must yield ONE group";
  EXPECT_EQ(c.coalesced_callers(), kCallers);
  EXPECT_EQ(c.direct_calls(), 1u);  // only the holder
  ASSERT_EQ(rec.group_sizes.size(), 1u);
  EXPECT_EQ(rec.group_sizes[0], kCallers);
  for (size_t i = 0; i < kCallers; ++i) {
    EXPECT_EQ(resps[i].watermark_seq, 42u) << "slot " << i << " unanswered";
  }
}

TEST_F(ServeCoalesceTest, CoalescerFullRingFallsBackToDirect) {
  ExecRecorder rec;
  rec.block_first_call = true;
  CoalesceOptions opts;
  opts.max_batch = 2;
  opts.max_linger_s = 0.0;  // leader pops immediately, then blocks in exec
  opts.ring_slots = 2;
  QueryCoalescer c(opts, &ExecRecorder::Run, &rec);

  std::vector<PropertyQuery> q(1);
  ServeResponse hold_resp;
  QuerySlot hold;
  hold.queries = &q;
  hold.resp = &hold_resp;
  ASSERT_FALSE(c.Submit(&hold));  // contention source

  // Leader thread: enqueues, pops its own slot (linger 0, ring otherwise
  // empty), and blocks inside the execute callback.
  std::vector<ServeResponse> resps(3);
  std::vector<QuerySlot> slots(3);
  for (size_t i = 0; i < 3; ++i) {
    slots[i].queries = &q;
    slots[i].resp = &resps[i];
  }
  std::thread leader([&] { EXPECT_TRUE(c.Submit(&slots[0])); });
  rec.WaitFirstCall();  // leader now blocked; ring empty again

  // Two followers fill the ring while the leader is stuck.
  std::atomic<int> entered{0};
  std::thread f1([&] {
    entered.fetch_add(1);
    EXPECT_TRUE(c.Submit(&slots[1]));
  });
  std::thread f2([&] {
    entered.fetch_add(1);
    EXPECT_TRUE(c.Submit(&slots[2]));
  });
  while (entered.load() < 2) std::this_thread::yield();
  // Between the signal and the ring push there is one fetch_add and one
  // mutex lock; this grace is orders of magnitude beyond it.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // The ring is full: the next contended caller must fall back, not block.
  ServeResponse over_resp;
  QuerySlot over;
  over.queries = &q;
  over.resp = &over_resp;
  EXPECT_FALSE(c.Submit(&over)) << "full ring must fall back to direct";
  EXPECT_EQ(c.ring_full_fallbacks(), 1u);
  c.EndDirect();  // the fallback call
  c.EndDirect();  // the holder

  rec.Release();
  leader.join();
  f1.join();
  f2.join();
  EXPECT_EQ(c.groups(), 2u);  // [leader alone] + [two followers]
  EXPECT_EQ(c.coalesced_callers(), 3u);
  EXPECT_EQ(c.direct_calls(), 2u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(resps[i].watermark_seq, 42u) << "slot " << i << " unanswered";
  }
}

// ---------------------------------------------------------------------------
// Service-level contracts.
// ---------------------------------------------------------------------------

TEST_F(ServeCoalesceTest, CoalescedBitIdenticalToPerQueryPathMixedShapes) {
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  ASSERT_GT(live.size(), 300u);

  SplashServiceOptions sopts;
  sopts.microbatch_max_items = 64;
  sopts.microbatch_max_delay_s = 0.0005;
  sopts.train_on_ingest_labels = false;
  // A long gather window maximizes grouping on an oversubscribed host.
  sopts.coalesce_max_linger_s = 0.002;
  SplashService service(SmallModelOptions(), sopts);
  TrainerOptions fit = SmallFit();
  ASSERT_TRUE(service.Start(ds, split, &fit).ok());
  for (size_t i = 0; i < 300; ++i) ASSERT_TRUE(service.IngestEdge(live[i]));
  service.Flush();

  // Per-thread probe slices of DIFFERENT sizes: a mixed group exercises
  // the scatter offsets, not just same-shape fan-out.
  constexpr size_t kThreads = 6;
  std::vector<std::vector<PropertyQuery>> slices(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    slices[t].assign(ds.queries.end() - 3 * t - (t + 1),
                     ds.queries.end() - 3 * t);
  }

  // Reference answers via the quiescent (bypassing) per-query path.
  std::vector<Matrix> want(kThreads);
  uint64_t want_wm = 0;
  {
    ServeClient ref_client(&service);
    for (size_t t = 0; t < kThreads; ++t) {
      ServeResponse r = ref_client.Predict(slices[t]);
      EXPECT_FALSE(r.degraded);
      want[t] = r.scores;
      want_wm = r.watermark_seq;
    }
    EXPECT_EQ(want_wm, 300u);
  }

  // Concurrent bursts until grouping was observed. Grouping needs one
  // caller PREEMPTED mid-query so another observes it in flight; on a
  // 1-core host that is an involuntary context switch, so each thread's
  // loop must outlast a scheduler quantum (~1ms) — with too few iters a
  // thread can finish its whole loop without ever being preempted and a
  // burst coalesces nothing.
  const uint64_t base_coalesced = service.Stats().counters.coalesced_callers;
  for (int round = 0; round < 40; ++round) {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&service, &slices, &want, t, want_wm] {
        ServeClient client(&service);
        ServeResponse resp;
        for (int iter = 0; iter < 100; ++iter) {
          client.Predict(slices[t], &resp);
          EXPECT_EQ(resp.watermark_seq, want_wm);
          EXPECT_FALSE(resp.degraded);
          EXPECT_TRUE(BitEqual(want[t], resp.scores))
              << "thread " << t << " iter " << iter
              << ": coalesced answer diverged from the per-query path";
        }
      });
    }
    for (auto& t : threads) t.join();
    if (service.Stats().counters.coalesced_callers > base_coalesced) break;
  }
  service.Stop();

  const ServeCounters cnt = service.Stats().counters;
  EXPECT_GT(cnt.coalesced_callers, base_coalesced)
      << "no call was ever coalesced across 40 contended bursts";
  EXPECT_GT(cnt.coalesced_groups, 0u);
}

TEST_F(ServeCoalesceTest, WatermarksAreRealPublishedBoundariesUnderIngest) {
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  ASSERT_GT(live.size(), 500u);

  SplashServiceOptions sopts;
  sopts.microbatch_max_items = 16;
  sopts.microbatch_max_delay_s = 0.0005;
  sopts.train_on_ingest_labels = false;
  sopts.record_apply_log = true;
  sopts.coalesce_max_linger_s = 0.0005;
  SplashService service(SmallModelOptions(), sopts);
  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());

  const size_t n = 500;
  std::thread producer([&] {
    for (size_t i = 0; i < n; ++i) ASSERT_TRUE(service.IngestEdge(live[i]));
  });

  constexpr size_t kReaders = 4;
  std::vector<std::vector<uint64_t>> seen(kReaders);
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&service, &ds, &seen, t] {
      ServeClient client(&service);
      std::vector<PropertyQuery> probe(ds.queries.end() - (t + 1),
                                       ds.queries.end());
      ServeResponse resp;
      uint64_t last = 0;
      for (int iter = 0; iter < 80; ++iter) {
        client.Predict(probe, &resp);
        ASSERT_EQ(resp.scores.rows(), probe.size());
        EXPECT_GE(resp.watermark_seq, last) << "watermark went backwards";
        last = resp.watermark_seq;
        seen[t].push_back(resp.watermark_seq);
      }
    });
  }
  producer.join();
  for (auto& t : readers) t.join();
  service.Flush();
  service.Stop();

  // Every watermark any reader ever observed — direct or coalesced — must
  // be a snapshot the apply thread really published: the warmup state (0)
  // or a recorded applied-batch boundary.
  std::set<uint64_t> published = {0};
  for (const uint64_t b : service.applied_batch_bounds()) published.insert(b);
  for (size_t t = 0; t < kReaders; ++t) {
    for (const uint64_t wm : seen[t]) {
      EXPECT_TRUE(published.count(wm))
          << "reader " << t << " saw fabricated watermark " << wm;
    }
  }
  EXPECT_EQ(service.published_seq(), n);
}

TEST_F(ServeCoalesceTest, ExpiredDeadlineAnsweredLateButFlaggedNeverLost) {
  const Dataset ds = MakeWarmup(1200);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  SplashServiceOptions sopts;
  sopts.coalesce_max_linger_s = 0.002;
  SplashService service(SmallModelOptions(), sopts);
  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());
  const double t_end = ds.stream.max_time();

  // Reference bits from the quiescent direct path (no deadline).
  Matrix want;
  {
    ServeClient ref_client(&service);
    want = ref_client.PredictNode(7, t_end).scores;
  }

  // Contended callers with an impossible deadline: a caller that lingered
  // in a group past its deadline must still get the full (flagged) answer.
  constexpr size_t kThreads = 6;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &want, t_end] {
      ServeClient client(&service);
      ServeResponse resp;
      for (int iter = 0; iter < 20; ++iter) {
        client.PredictNode(7, t_end, &resp, /*timeout_s=*/1e-12);
        EXPECT_TRUE(resp.deadline_exceeded);
        EXPECT_TRUE(BitEqual(want, resp.scores)) << "late answer corrupted";
      }
    });
  }
  for (auto& t : threads) t.join();
  service.Stop();
}

TEST_F(ServeCoalesceTest, SingleCallerBypassIsAllocationFree) {
  const Dataset ds = MakeWarmup(1500);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  ASSERT_GT(live.size(), 100u);
  SplashServiceOptions sopts;
  SplashService service(SmallModelOptions(), sopts);
  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());
  for (size_t i = 0; i < 100; ++i) ASSERT_TRUE(service.IngestEdge(live[i]));
  service.Flush();

  ServeClient client(&service);
  std::vector<PropertyQuery> probe(ds.queries.end() - 16, ds.queries.end());
  ServeResponse resp;       // reused: its score matrix is grow-only
  ServeResponse node_resp;  // ditto, for the 1-2 row endpoints
  const double t_end = ds.stream.max_time();

  // Warm-up grows the client scratch, the response matrices, and the
  // endpoint query scratch to their steady-state sizes.
  client.Predict(probe, &resp);
  client.PredictNode(live[0].src, t_end, &node_resp);
  client.ScoreEdge(live[0].src, live[0].dst, t_end, &node_resp);
  client.Predict(probe, &resp, /*timeout_s=*/30.0);

  const size_t allocs = CountAllocations([&] {
    for (int i = 0; i < 200; ++i) {
      client.Predict(probe, &resp);
      client.PredictNode(live[i % 100].src, t_end, &node_resp);
      client.ScoreEdge(live[i % 100].src, live[i % 100].dst, t_end,
                       &node_resp, /*timeout_s=*/30.0);
    }
  });
  EXPECT_EQ(allocs, 0u)
      << "single-caller read path must stay allocation-free at steady state";
  EXPECT_EQ(resp.watermark_seq, 100u);
  service.Stop();
}

TEST_F(ServeCoalesceTest, StressMixStaysSelfConsistent) {
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  ASSERT_GE(live.size(), 600u);

  SplashServiceOptions sopts;
  sopts.microbatch_max_items = 32;
  sopts.microbatch_max_delay_s = 0.0005;
  sopts.coalesce_max_linger_s = 0.0005;
  SplashService service(SmallModelOptions(), sopts);
  TrainerOptions fit = SmallFit();
  ASSERT_TRUE(service.Start(ds, split, &fit).ok());
  const double t_end = ds.stream.max_time();

  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      ServeClient client(&service);
      for (size_t i = p * 300; i < p * 300 + 300; ++i) {
        if (client.IngestEdgeWithRetry(live[i])) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
        if (p == 0 && i % 25 == 24) {
          PropertyQuery q;
          q.node = live[i].dst;
          q.time = live[i].time;
          q.class_label = static_cast<int>(i / 25 % 3);
          (void)service.SubmitTrain(q);
        }
      }
    });
  }

  std::atomic<uint64_t> predict_calls{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      ServeClient client(&service);
      std::vector<PropertyQuery> probe(ds.queries.end() - 5, ds.queries.end());
      ServeResponse resp;
      uint64_t last = 0;
      for (int iter = 0; iter < 120; ++iter) {
        switch ((iter + static_cast<int>(t)) % 3) {
          case 0:
            client.Predict(probe, &resp);
            ASSERT_EQ(resp.scores.rows(), probe.size());
            break;
          case 1:
            client.PredictNode(live[iter].src, t_end, &resp,
                               /*timeout_s=*/(iter % 5 == 0) ? 1e-12 : 0.0);
            ASSERT_EQ(resp.scores.rows(), 1u);
            if (resp.scores.cols() >= 2) {
              // The service computes the margin in double precision.
              ASSERT_EQ(resp.score, static_cast<double>(resp.scores(0, 1)) -
                                        resp.scores(0, 0));
            }
            break;
          default:
            client.ScoreEdge(live[iter].src, live[iter].dst, t_end, &resp);
            ASSERT_EQ(resp.scores.rows(), 2u);
            break;
        }
        predict_calls.fetch_add(1, std::memory_order_relaxed);
        EXPECT_GE(resp.watermark_seq, last) << "watermark went backwards";
        last = resp.watermark_seq;
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : readers) t.join();
  service.Flush();
  service.Stop();

  const ServeCounters cnt = service.Stats().counters;
  EXPECT_EQ(cnt.published_seq, accepted.load());
  // Exactly-once accounting: every Predict* call completed as either a
  // direct call or a coalesced group member, never both, never neither.
  EXPECT_EQ(cnt.direct_calls + cnt.coalesced_callers, predict_calls.load());
}

TEST_F(ServeCoalesceTest, CoalesceDisabledKeepsEveryCallDirect) {
  const Dataset ds = MakeWarmup(1200);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  SplashServiceOptions sopts;
  sopts.coalesce_max_batch = 1;  // disabled
  SplashService service(SmallModelOptions(), sopts);
  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());
  const double t_end = ds.stream.max_time();

  Matrix want;
  {
    ServeClient ref_client(&service);
    want = ref_client.PredictNode(3, t_end).scores;
  }
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&service, &want, t_end] {
      ServeClient client(&service);
      ServeResponse resp;
      for (int iter = 0; iter < 30; ++iter) {
        client.PredictNode(3, t_end, &resp);
        EXPECT_TRUE(BitEqual(want, resp.scores));
      }
    });
  }
  for (auto& t : threads) t.join();
  service.Stop();

  const ServeCounters cnt = service.Stats().counters;
  EXPECT_EQ(cnt.coalesced_callers, 0u);
  EXPECT_EQ(cnt.coalesced_groups, 0u);
  EXPECT_EQ(cnt.direct_calls, 4u * 30u + 1u);
}

}  // namespace
}  // namespace splash
