// Copyright 2026 The SPLASH Reproduction Authors.
//
// MakeChronoSplit boundary semantics on tied-timestamp streams (ISSUE 2
// small fix): a run of edges sharing one timestamp must land wholly on one
// side of each boundary. If the boundary time bisected the run, a query at
// that time would be scored with its own-time edges already observed — a
// leak at the val/test boundary.

#include <gtest/gtest.h>

#include <vector>

#include "eval/trainer.h"
#include "graph/edge_stream.h"

namespace splash {
namespace {

EdgeStream StreamWithTimes(const std::vector<double>& times) {
  EdgeStream stream;
  for (size_t i = 0; i < times.size(); ++i) {
    EXPECT_TRUE(stream
                    .Append(TemporalEdge(static_cast<NodeId>(i % 5),
                                         static_cast<NodeId>((i + 1) % 5),
                                         times[i]))
                    .ok());
  }
  return stream;
}

bool BoundaryBisectsATieRun(const EdgeStream& stream, double boundary) {
  // Sorted stream: the boundary bisects a tie run iff the last edge on or
  // before it shares its timestamp with the first edge after it.
  size_t last_le = stream.size();
  for (size_t i = 0; i < stream.size(); ++i) {
    if (stream[i].time <= boundary) last_le = i;
  }
  return last_le != stream.size() && last_le + 1 < stream.size() &&
         stream[last_le].time == stream[last_le + 1].time;
}

TEST(ChronoSplitTest, TiedRunAtBoundaryLandsWhollyInLaterPeriod) {
  // 10 edges; the 80%/90% positional cuts both land inside the tie run at
  // time 2.0. The run must be pushed past the boundary, not bisected.
  const EdgeStream stream =
      StreamWithTimes({0.0, 1.0, 1.5, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 3.0});
  const ChronoSplit split = MakeChronoSplit(stream, 0.1, 0.1);
  EXPECT_FALSE(BoundaryBisectsATieRun(stream, split.train_end_time));
  EXPECT_FALSE(BoundaryBisectsATieRun(stream, split.val_end_time));
  // Train cut (index 8) lands inside the 2.0 run: the boundary snaps to
  // the last distinct time before the run, pushing the run into val.
  EXPECT_DOUBLE_EQ(split.train_end_time, 1.5);
  // Val cut (index 9) lands after the run: the run stays wholly in val.
  EXPECT_DOUBLE_EQ(split.val_end_time, 2.0);
}

TEST(ChronoSplitTest, DistinctTimesKeepChronologicalOrdering) {
  const EdgeStream stream =
      StreamWithTimes({0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0});
  const ChronoSplit split = MakeChronoSplit(stream, 0.2, 0.2);
  EXPECT_LT(split.train_end_time, split.val_end_time);
  EXPECT_LT(split.val_end_time, stream.max_time());
  size_t train_edges = 0, val_edges = 0, test_edges = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    const double t = stream[i].time;
    if (t <= split.train_end_time) {
      ++train_edges;
    } else if (t <= split.val_end_time) {
      ++val_edges;
    } else {
      ++test_edges;
    }
  }
  EXPECT_GT(train_edges, 0u);
  EXPECT_GT(val_edges, 0u);
  EXPECT_GT(test_edges, 0u);
  EXPECT_EQ(train_edges + val_edges + test_edges, stream.size());
}

TEST(ChronoSplitTest, AllTiedTimestampsDegradeGracefully) {
  // Every edge at one timestamp: nothing can precede the boundary, so the
  // whole stream becomes the later period instead of leaking into train.
  const EdgeStream stream = StreamWithTimes({5.0, 5.0, 5.0, 5.0, 5.0});
  const ChronoSplit split = MakeChronoSplit(stream, 0.2, 0.2);
  EXPECT_LT(split.train_end_time, 5.0);
  EXPECT_LT(split.val_end_time, 5.0);
}

}  // namespace
}  // namespace splash
