// Copyright 2026 The SPLASH Reproduction Authors.
//
// Contracts of the sharded serving tier (serve/router.h, ISSUE 8):
//   - ORACLE: every row of a routed response is bit-identical to a serial
//     replay of its owning shard's ingest log truncated at that shard's
//     composite-watermark entry — S shards, S independent replays — and
//     the same holds across a durable restart (per-shard RecoverOrStart);
//   - an S=1 routed service is bit-identical to the direct service (the
//     router adds a stamp, never a perturbation);
//   - composite watermarks are monotone per shard under concurrent ingest;
//   - cross-shard ScoreEdge equals the max of the endpoints' margins, each
//     computed on its owning shard's snapshot;
//   - killing one shard's data dir restarts that shard alone — its
//     sibling recovers bit-exact;
//   - ShardedSplashService::Stats() is an exact aggregate (counter sums,
//     bucket-wise histogram merges), and the redesigned admission/option
//     surfaces (IngestResult, Validate()) classify failures as promised.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/serialize.h"
#include "core/splash.h"
#include "datasets/synthetic.h"
#include "eval/trainer.h"
#include "runtime/thread_pool.h"
#include "serve/router.h"
#include "serve/service.h"

namespace splash {
namespace {

class ServeRouterTest : public ::testing::Test {
 protected:
  void SetUp() override { ThreadPool::SetGlobalThreads(1); }
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }
};

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/splash_router_test_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    if (!path_.empty() && path_.rfind("/tmp/", 0) == 0) {
      const std::string cmd = "rm -rf '" + path_ + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Dataset MakeWarmup(size_t num_edges = 3000) {
  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 150;
  cfg.num_edges = num_edges;
  cfg.num_communities = 3;
  cfg.intra_prob = 0.9;
  cfg.query_rate = 0.25;
  cfg.late_arrival_frac = 0.2;
  cfg.seed = 21;
  return GenerateSynthetic(cfg);
}

SplashOptions SmallModelOptions() {
  SplashOptions opts;
  opts.mode = SplashMode::kForceStructural;  // no selection pass: fast
  opts.augment.feature_dim = 12;
  opts.slim.hidden_dim = 24;
  opts.slim.time_dim = 8;
  opts.slim.k_recent = 5;
  opts.slim.dropout = 0.0f;
  opts.seed = 5;
  return opts;
}

TrainerOptions SmallFit() {
  TrainerOptions fit;
  fit.epochs = 2;
  fit.batch_size = 64;
  fit.early_stopping = false;
  fit.num_threads = 1;
  fit.pipeline_depth = 0;
  return fit;
}

std::vector<TemporalEdge> LiveEdges(const Dataset& ds,
                                    const ChronoSplit& split) {
  std::vector<TemporalEdge> live;
  for (size_t i = 0; i < ds.stream.size(); ++i) {
    if (ds.stream[i].time > split.val_end_time) live.push_back(ds.stream[i]);
  }
  return live;
}

std::vector<PropertyQuery> ProbeQueries(const Dataset& ds, size_t n) {
  std::vector<PropertyQuery> probe(ds.queries.end() - n, ds.queries.end());
  return probe;
}

/// Serial reference: a fresh predictor through the identical deterministic
/// prepare+fit every shard runs at Start.
std::unique_ptr<SplashPredictor> MakeReference(const Dataset& ds,
                                               const ChronoSplit& split) {
  auto ref = std::make_unique<SplashPredictor>(SmallModelOptions());
  EXPECT_TRUE(ref->Prepare(ds, split).ok());
  TrainerOptions fit = SmallFit();
  StreamTrainer trainer(fit);
  trainer.Fit(ref.get(), ds, split);
  ref->SetTraining(false);
  ref->ResetState();
  return ref;
}

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " element " << i;
  }
}

/// Reads the reference through the shards' own read path: the const
/// forward at the replica precision the service resolves from the
/// environment (SPLASH_REPLICA_PRECISION), so the per-shard bit-identity
/// oracle holds under the CI precision matrix exactly as at fp32.
Matrix ReferenceScores(SplashPredictor* ref,
                       const std::vector<PropertyQuery>& probe) {
  const char* prec = std::getenv("SPLASH_REPLICA_PRECISION");
  ref->SetReplicaPrecisionBf16(prec != nullptr &&
                               std::string(prec) == "bf16");
  SplashQueryScratch scratch;
  return ref->PredictBatchConst(probe, &scratch);
}

ShardedServiceOptions RouterOptions(uint32_t num_shards) {
  ShardedServiceOptions opts;
  opts.num_shards = num_shards;
  opts.shard.microbatch_max_items = 64;
  opts.shard.microbatch_max_delay_s = 0.0005;
  opts.shard.train_on_ingest_labels = false;
  return opts;
}

std::vector<uint8_t> ShardStateBytes(const SplashService& shard) {
  ByteWriter w;
  shard.SerializePredictorState(&w);
  return w.buffer();
}

// ---------------------------------------------------------------------------
// S=1: the router is a stamp, not a perturbation.
// ---------------------------------------------------------------------------

TEST_F(ServeRouterTest, RoutedSingleShardBitIdenticalToDirectService) {
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  const std::vector<PropertyQuery> probe = ProbeQueries(ds, 40);
  TrainerOptions fit = SmallFit();

  SplashService direct(SmallModelOptions(), RouterOptions(1).shard);
  ASSERT_TRUE(direct.Start(ds, split, &fit).ok());
  ShardedSplashService routed(SmallModelOptions(), RouterOptions(1));
  ASSERT_TRUE(routed.Start(ds, split, &fit).ok());

  const size_t n = std::min<size_t>(live.size(), 500);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(direct.IngestEdge(live[i]));
    ASSERT_TRUE(routed.IngestEdge(live[i]));
  }
  direct.Flush();
  routed.Flush();

  ServeClient direct_client(&direct);
  RoutedClient routed_client(&routed);
  const ServeResponse a = direct_client.Predict(probe);
  const ServeResponse b = routed_client.Predict(probe);
  ExpectBitEqual(a.scores, b.scores, "routed S=1 vs direct");
  EXPECT_EQ(a.watermark_seq, b.watermark_seq);
  EXPECT_EQ(a.watermark_time, b.watermark_time);
  // The single service never stamps per-shard entries; the router always
  // stamps the shards that answered.
  EXPECT_TRUE(a.shard_watermarks.empty());
  ASSERT_EQ(b.shard_watermarks.size(), 1u);
  EXPECT_EQ(b.shard_watermarks[0].shard, 0u);
  EXPECT_EQ(b.shard_watermarks[0].seq, b.watermark_seq);
  EXPECT_EQ(routed.published_seq(), n);

  direct.Stop();
  routed.Stop();
}

// ---------------------------------------------------------------------------
// THE sharding oracle: S independent serial replays of the per-shard
// ingest logs truncated at the composite watermark reproduce every row.
// ---------------------------------------------------------------------------

TEST_F(ServeRouterTest, RoutedRowsBitIdenticalToPerShardSerialReplay) {
  const uint32_t kShards = 4;
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  ASSERT_GT(live.size(), 400u);
  const std::vector<PropertyQuery> probe = ProbeQueries(ds, 40);
  TrainerOptions fit = SmallFit();

  ShardedServiceOptions opts = RouterOptions(kShards);
  opts.shard.record_apply_log = true;
  ShardedSplashService router(SmallModelOptions(), opts);
  ASSERT_TRUE(router.Start(ds, split, &fit).ok());
  ASSERT_TRUE(router.running());

  std::vector<uint64_t> expect_per_shard(kShards, 0);
  const size_t n = std::min<size_t>(live.size(), 600);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(router.IngestEdge(live[i]));
    ++expect_per_shard[router.ShardOf(live[i].dst)];
  }
  router.Flush();

  RoutedClient client(&router);
  ServeResponse resp;
  client.Predict(probe, &resp);

  // The probe must actually fan out for this test to mean anything.
  bool mixed = false;
  for (const PropertyQuery& q : probe) {
    mixed = mixed || router.ShardOf(q.node) != router.ShardOf(probe[0].node);
  }
  ASSERT_TRUE(mixed) << "probe landed on one shard; widen it";

  // Composite stamp: one entry per contacted shard, ascending by shard id,
  // each equal to that shard's full ingest count (Flush published
  // everything); the scalars summarize the entries (min seq / max time).
  ASSERT_FALSE(resp.shard_watermarks.empty());
  uint64_t min_seq = ~uint64_t{0};
  double max_time = 0.0;
  for (size_t i = 0; i < resp.shard_watermarks.size(); ++i) {
    const ShardWatermark& sw = resp.shard_watermarks[i];
    if (i > 0) {
      EXPECT_GT(sw.shard, resp.shard_watermarks[i - 1].shard);
    }
    EXPECT_EQ(sw.seq, expect_per_shard[sw.shard]);
    min_seq = std::min(min_seq, sw.seq);
    max_time = std::max(max_time, sw.time);
  }
  EXPECT_EQ(resp.watermark_seq, min_seq);
  EXPECT_EQ(resp.watermark_time, max_time);

  // The backend-level composite covers every shard and sums to the total.
  const CompositeWatermark wm = router.Watermark();
  ASSERT_EQ(wm.shards.size(), kShards);
  EXPECT_EQ(wm.total_seq, n);
  EXPECT_EQ(router.published_seq(), n);

  // S independent serial replays: shard s's reference replays shard s's
  // ingest log (the post-clamp ground truth) truncated at its watermark
  // entry, then scores the probe rows shard s owns. Bit-identity per row.
  for (const ShardWatermark& sw : resp.shard_watermarks) {
    const SplashService& shard = router.shard(sw.shard);
    const EdgeStream& log = shard.ingest_log();
    ASSERT_EQ(log.size(), sw.seq);
    auto ref = MakeReference(ds, split);
    for (size_t i = 0; i < sw.seq; ++i) ref->ObserveEdge(log[i], i);

    std::vector<PropertyQuery> sub;
    std::vector<size_t> rows;
    for (size_t i = 0; i < probe.size(); ++i) {
      if (router.ShardOf(probe[i].node) == sw.shard) {
        sub.push_back(probe[i]);
        rows.push_back(i);
      }
    }
    ASSERT_FALSE(sub.empty());
    const Matrix want = ReferenceScores(ref.get(), sub);
    ASSERT_EQ(want.rows(), rows.size());
    ASSERT_EQ(want.cols(), resp.scores.cols());
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t c = 0; c < want.cols(); ++c) {
        ASSERT_EQ(want(r, c), resp.scores(rows[r], c))
            << "shard " << sw.shard << " probe row " << rows[r];
      }
    }
  }
  router.Stop();
}

// ---------------------------------------------------------------------------
// Durable restart: per-shard RecoverOrStart reproduces every shard's
// predictor state byte-for-byte and answers queries bit-identically.
// ---------------------------------------------------------------------------

TEST_F(ServeRouterTest, DurableRestartRecoversEveryShardBitExact) {
  const uint32_t kShards = 2;
  TempDir dir;
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  const std::vector<PropertyQuery> probe = ProbeQueries(ds, 24);
  TrainerOptions fit = SmallFit();

  ShardedServiceOptions opts = RouterOptions(kShards);
  opts.shard.data_dir = dir.path() + "/svc";

  std::vector<std::vector<uint8_t>> want_state(kShards);
  std::vector<uint64_t> want_seq(kShards, 0);
  Matrix want_scores;
  size_t n = 0;
  {
    ShardedSplashService router(SmallModelOptions(), opts);
    ASSERT_TRUE(router.RecoverOrStart(ds, split, &fit).ok());
    n = std::min<size_t>(live.size(), 500);
    for (size_t i = 0; i < n; ++i) ASSERT_TRUE(router.IngestEdge(live[i]));
    router.Flush();
    RoutedClient client(&router);
    want_scores = client.Predict(probe).scores;
    router.Stop();  // checkpoint_on_stop: each shard persists its tail
    for (uint32_t s = 0; s < kShards; ++s) {
      want_state[s] = ShardStateBytes(router.shard(s));
      want_seq[s] = router.shard(s).ingest_log().size();
      ASSERT_GT(want_seq[s], 0u) << s;
    }
  }

  ShardedSplashService restarted(SmallModelOptions(), opts);
  ASSERT_TRUE(restarted.RecoverOrStart(ds, split, &fit).ok());
  EXPECT_FALSE(restarted.degraded());
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(restarted.shard(s).recovered_seq(), want_seq[s]) << s;
    EXPECT_TRUE(restarted.shard(s).recovered_from_checkpoint()) << s;
    const std::vector<uint8_t> got = ShardStateBytes(restarted.shard(s));
    ASSERT_EQ(got.size(), want_state[s].size()) << s;
    EXPECT_EQ(0, std::memcmp(got.data(), want_state[s].data(), got.size()))
        << "shard " << s << " state differs after restart";
  }
  EXPECT_EQ(restarted.published_seq(), n);

  RoutedClient client(&restarted);
  const ServeResponse resp = client.Predict(probe);
  ExpectBitEqual(want_scores, resp.scores, "routed response after restart");
  restarted.Stop();
}

// ---------------------------------------------------------------------------
// Partial failure: losing one shard's directory restarts that shard fresh
// and leaves its sibling bit-exact.
// ---------------------------------------------------------------------------

TEST_F(ServeRouterTest, KillingOneShardDataDirRestartsThatShardAlone) {
  const uint32_t kShards = 2;
  TempDir dir;
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  TrainerOptions fit = SmallFit();

  ShardedServiceOptions opts = RouterOptions(kShards);
  opts.shard.data_dir = dir.path() + "/svc";

  std::vector<uint8_t> want_state0;
  uint64_t want_seq0 = 0;
  {
    ShardedSplashService router(SmallModelOptions(), opts);
    ASSERT_TRUE(router.RecoverOrStart(ds, split, &fit).ok());
    const size_t n = std::min<size_t>(live.size(), 400);
    for (size_t i = 0; i < n; ++i) ASSERT_TRUE(router.IngestEdge(live[i]));
    router.Flush();
    router.Stop();
    want_state0 = ShardStateBytes(router.shard(0));
    want_seq0 = router.shard(0).ingest_log().size();
    ASSERT_GT(want_seq0, 0u);
    ASSERT_GT(router.shard(1).ingest_log().size(), 0u);
  }

  // Kill shard 1's entire history (checkpoints + WAL).
  const std::string cmd = "rm -rf '" + opts.shard.data_dir + "/shard-1'";
  ASSERT_EQ(0, std::system(cmd.c_str()));

  ShardedSplashService restarted(SmallModelOptions(), opts);
  ASSERT_TRUE(restarted.RecoverOrStart(ds, split, &fit).ok());
  // Shard 1: fresh start from the deterministic Prepare/Fit, watermark 0.
  EXPECT_EQ(restarted.shard(1).recovered_seq(), 0u);
  EXPECT_FALSE(restarted.shard(1).recovered_from_checkpoint());
  // Shard 0: bit-exact, untouched by its sibling's loss.
  EXPECT_EQ(restarted.shard(0).recovered_seq(), want_seq0);
  const std::vector<uint8_t> got0 = ShardStateBytes(restarted.shard(0));
  ASSERT_EQ(got0.size(), want_state0.size());
  EXPECT_EQ(0, std::memcmp(got0.data(), want_state0.data(), got0.size()));

  const CompositeWatermark wm = restarted.Watermark();
  ASSERT_EQ(wm.shards.size(), kShards);
  EXPECT_EQ(wm.shards[0].seq, want_seq0);
  EXPECT_EQ(wm.shards[1].seq, 0u);
  EXPECT_EQ(wm.min_seq, 0u);
  EXPECT_EQ(wm.total_seq, want_seq0);
  restarted.Stop();
}

// ---------------------------------------------------------------------------
// Composite watermark monotonicity per shard under concurrent ingest.
// ---------------------------------------------------------------------------

TEST_F(ServeRouterTest, CompositeWatermarkMonotonePerShardUnderIngest) {
  const uint32_t kShards = 2;
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  const std::vector<PropertyQuery> probe = ProbeQueries(ds, 16);
  TrainerOptions fit = SmallFit();

  ShardedServiceOptions opts = RouterOptions(kShards);
  opts.shard.microbatch_max_items = 16;
  ShardedSplashService router(SmallModelOptions(), opts);
  ASSERT_TRUE(router.Start(ds, split, &fit).ok());

  std::atomic<bool> done{false};
  std::thread producer([&] {
    RoutedClient ingest_client(&router);
    for (const TemporalEdge& e : live) ingest_client.IngestEdgeWithRetry(e);
    done.store(true, std::memory_order_release);
  });

  RoutedClient client(&router);
  ServeResponse resp;
  std::vector<uint64_t> last(kShards, 0);
  uint64_t last_total = 0;
  while (!done.load(std::memory_order_acquire)) {
    client.Predict(probe, &resp);
    for (const ShardWatermark& sw : resp.shard_watermarks) {
      ASSERT_LT(sw.shard, kShards);
      EXPECT_GE(sw.seq, last[sw.shard])
          << "shard " << sw.shard << " watermark went backwards";
      last[sw.shard] = sw.seq;
    }
    // The backend-level composite is monotone in total too.
    const CompositeWatermark wm = router.Watermark();
    EXPECT_GE(wm.total_seq, last_total);
    last_total = wm.total_seq;
  }
  producer.join();
  router.Flush();
  client.Predict(probe, &resp);
  for (const ShardWatermark& sw : resp.shard_watermarks) {
    EXPECT_EQ(sw.seq, router.shard(sw.shard).ingest_log().size());
  }
  router.Stop();
}

// ---------------------------------------------------------------------------
// Cross-shard ScoreEdge: max of the endpoints' margins, each computed on
// its owning shard's snapshot.
// ---------------------------------------------------------------------------

TEST_F(ServeRouterTest, CrossShardScoreEdgeMatchesEndpointMargins) {
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  TrainerOptions fit = SmallFit();

  ShardedSplashService router(SmallModelOptions(), RouterOptions(2));
  ASSERT_TRUE(router.Start(ds, split, &fit).ok());
  const size_t n = std::min<size_t>(live.size(), 300);
  for (size_t i = 0; i < n; ++i) ASSERT_TRUE(router.IngestEdge(live[i]));
  router.Flush();

  RoutedClient client(&router);
  const double t = live[n - 1].time;
  // Node 4 -> shard 0, node 7 -> shard 1: a guaranteed cross-shard edge.
  const NodeId a = 4, b = 7;
  ASSERT_NE(router.ShardOf(a), router.ShardOf(b));

  const ServeResponse edge = client.ScoreEdge(a, b, t);
  ASSERT_EQ(edge.scores.rows(), 2u);
  ASSERT_EQ(edge.shard_watermarks.size(), 2u);
  const ServeResponse ma = client.PredictNode(a, t);
  const ServeResponse mb = client.PredictNode(b, t);
  // Quiesced, so the endpoint snapshots cannot move between calls: the
  // edge rows equal the single-node rows bit-for-bit and the edge score
  // is exactly the max of the endpoint margins.
  ASSERT_EQ(ma.scores.cols(), edge.scores.cols());
  for (size_t c = 0; c < edge.scores.cols(); ++c) {
    EXPECT_EQ(edge.scores(0, c), ma.scores(0, c)) << "src row col " << c;
    EXPECT_EQ(edge.scores(1, c), mb.scores(0, c)) << "dst row col " << c;
  }
  EXPECT_EQ(edge.score, std::max(ma.score, mb.score));
  // The single-node calls route to one shard each: 1-entry stamps.
  ASSERT_EQ(ma.shard_watermarks.size(), 1u);
  EXPECT_EQ(ma.shard_watermarks[0].shard, router.ShardOf(a));
  ASSERT_EQ(mb.shard_watermarks.size(), 1u);
  EXPECT_EQ(mb.shard_watermarks[0].shard, router.ShardOf(b));
  router.Stop();
}

// ---------------------------------------------------------------------------
// Stats aggregation is exact.
// ---------------------------------------------------------------------------

TEST_F(ServeRouterTest, MergedStatsAreExactAggregates) {
  const uint32_t kShards = 4;
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  const std::vector<PropertyQuery> probe = ProbeQueries(ds, 32);
  TrainerOptions fit = SmallFit();

  ShardedSplashService router(SmallModelOptions(), RouterOptions(kShards));
  ASSERT_TRUE(router.Start(ds, split, &fit).ok());
  const size_t n = std::min<size_t>(live.size(), 500);
  for (size_t i = 0; i < n; ++i) ASSERT_TRUE(router.IngestEdge(live[i]));
  router.Flush();
  {
    RoutedClient client(&router);
    ServeResponse resp;
    for (int i = 0; i < 20; ++i) client.Predict(probe, &resp);
  }  // ~ the departed client's 20 samples fold into the retired digest
  router.Stop();

  const ServeStats merged = router.Stats();
  ServeCounters sum;
  uint64_t apply_count = 0, ingest_count = 0;
  for (uint32_t s = 0; s < kShards; ++s) {
    const ServeCounters c = router.shard(s).Counters();
    EXPECT_GT(c.ingest_accepted, 0u) << s;
    sum.MergeFrom(c);
    const ServeStats ss = router.shard(s).Stats();
    apply_count += ss.apply.count;
    ingest_count += ss.ingest.count;
  }
  EXPECT_EQ(merged.counters.ingest_accepted, n);
  EXPECT_EQ(merged.counters.ingest_accepted, sum.ingest_accepted);
  EXPECT_EQ(merged.counters.ingest_dropped, sum.ingest_dropped);
  EXPECT_EQ(merged.counters.queries, sum.queries);
  EXPECT_GT(merged.counters.queries, 0u);
  EXPECT_EQ(merged.counters.batches_applied, sum.batches_applied);
  EXPECT_EQ(merged.counters.published_seq, n);  // SUM over shards
  EXPECT_EQ(merged.counters.novel_ingest_nodes, sum.novel_ingest_nodes);
  EXPECT_EQ(merged.counters.time_regressions, sum.time_regressions);
  EXPECT_EQ(merged.counters.queue_high_watermark, sum.queue_high_watermark);
  // Histogram merges are exact: merged endpoint counts are the sums over
  // shards, and the router-attached client's predict samples all land in
  // the merged digest (one sample per Predict call).
  EXPECT_EQ(merged.apply.count, apply_count);
  EXPECT_EQ(merged.ingest.count, ingest_count);
  EXPECT_EQ(merged.predict.count, 20u);
}

TEST_F(ServeRouterTest, LatencySummaryMergeFromIsCountWeighted) {
  LatencyHistogram ha, hb;
  for (int i = 0; i < 100; ++i) ha.RecordNs(100);
  for (int i = 0; i < 300; ++i) hb.RecordNs(500);
  LatencySummary a = ha.Summarize();
  const LatencySummary b = hb.Summarize();
  a.MergeFrom(b);
  EXPECT_EQ(a.count, 400u);
  EXPECT_DOUBLE_EQ(a.mean_ns, (100.0 * 100 + 300.0 * 500) / 400.0);
  EXPECT_EQ(a.min_ns, 100u);
  EXPECT_EQ(a.max_ns, 500u);
  // Quantiles take the max of the parts: an upper bound on the union
  // quantile (exact union quantiles come from histogram merges).
  LatencyHistogram hu;
  hu.Merge(ha);
  hu.Merge(hb);
  EXPECT_GE(a.p50_ns, hu.Summarize().p50_ns);
  EXPECT_GE(a.p99_ns, hu.Summarize().p99_ns);
  // Merging an empty summary is the identity.
  LatencySummary empty;
  a.MergeFrom(empty);
  EXPECT_EQ(a.count, 400u);
  // Merging INTO an empty summary copies.
  LatencySummary into;
  into.MergeFrom(b);
  EXPECT_EQ(into.count, b.count);
  EXPECT_EQ(into.max_ns, b.max_ns);
}

// ---------------------------------------------------------------------------
// IngestResult classification + Validate() field naming (API redesign).
// ---------------------------------------------------------------------------

TEST_F(ServeRouterTest, IngestResultClassifiesRejections) {
  const Dataset ds = MakeWarmup(800);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  ASSERT_FALSE(live.empty());

  SplashServiceOptions sopts;
  sopts.queue_capacity = 4;
  sopts.backpressure = BackpressurePolicy::kDropNewest;
  sopts.microbatch_max_items = 4096;  // apply lingers: the queue stays tiny
  sopts.microbatch_max_delay_s = 0.05;
  sopts.train_on_ingest_labels = false;
  SplashService service(SmallModelOptions(), sopts);

  // Before Start: permanently rejected, not retryable.
  EXPECT_EQ(service.IngestEdge(live[0]).code(), IngestResult::kStopped);
  EXPECT_FALSE(service.IngestEdge(live[0]).retryable());

  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());

  // Boundary rejection: kInvalid, never retryable, counted as a drop.
  const IngestResult bad =
      service.IngestEdge(TemporalEdge{kInvalidNode, 3, 1.0});
  EXPECT_EQ(bad.code(), IngestResult::kInvalid);
  EXPECT_FALSE(bad.accepted());
  EXPECT_FALSE(bad.retryable());
  EXPECT_FALSE(static_cast<bool>(bad));

  // Backlog pressure: a tiny kDropNewest ring under a burst classifies
  // every non-accepted push as retryable backlog — nothing else.
  size_t accepted = 0, backlog = 0;
  for (size_t i = 0; i < 2000; ++i) {
    const IngestResult r = service.IngestEdge(live[i % live.size()]);
    if (r.accepted()) {
      ++accepted;
    } else {
      ASSERT_EQ(r.code(), IngestResult::kBacklogDropped);
      ASSERT_TRUE(r.retryable());
      ++backlog;
    }
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(backlog, 0u);
  const ServeCounters c = service.Counters();
  EXPECT_EQ(c.ingest_accepted, accepted);
  EXPECT_EQ(c.ingest_dropped, backlog + 1);  // + the kInvalid probe

  // SubmitTrain with feedback disabled: administrative rejection, not a
  // counted drop, never retryable.
  PropertyQuery q;
  q.node = live[0].dst;
  q.time = live[0].time;
  q.class_label = 1;
  const IngestResult off = service.SubmitTrain(q);
  EXPECT_EQ(off.code(), IngestResult::kInvalid);
  EXPECT_EQ(service.Counters().train_dropped, 0u);

  service.Stop();
  EXPECT_EQ(service.IngestEdge(live[0]).code(), IngestResult::kStopped);
}

TEST_F(ServeRouterTest, ValidateNamesTheOffendingField) {
  const Dataset ds = MakeWarmup(800);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);

  {
    SplashServiceOptions o;
    o.coalesce_max_batch = 64;
    o.coalesce_ring_slots = 8;
    const Status st = o.Validate();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("coalesce_ring_slots"), std::string::npos);
    // A misconfigured service refuses to start with the same error.
    SplashService svc(SmallModelOptions(), o);
    EXPECT_FALSE(svc.Start(ds, split, nullptr).ok());
    EXPECT_FALSE(svc.running());
  }
  {
    SplashServiceOptions o;
    o.microbatch_max_items = 0;
    EXPECT_NE(o.Validate().message().find("microbatch_max_items"),
              std::string::npos);
  }
  {
    SplashServiceOptions o;
    o.queue_capacity = 0;
    EXPECT_NE(o.Validate().message().find("queue_capacity"),
              std::string::npos);
  }
  {
    ShardedServiceOptions o;
    o.num_shards = 3;  // not a power of two
    const Status st = o.Validate();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("num_shards"), std::string::npos);
    ShardedSplashService router(SmallModelOptions(), o);
    EXPECT_FALSE(router.Start(ds, split, nullptr).ok());
    EXPECT_FALSE(router.running());
  }
  {
    // The router surfaces per-shard option errors too.
    ShardedServiceOptions o;
    o.num_shards = 2;
    o.shard.queue_capacity = 0;
    EXPECT_FALSE(o.Validate().ok());
    ShardedSplashService router(SmallModelOptions(), o);
    const Status st = router.Start(ds, split, nullptr);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("queue_capacity"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Train feedback routes to the owning shard.
// ---------------------------------------------------------------------------

TEST_F(ServeRouterTest, TrainFeedbackRoutesToOwningShard) {
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  TrainerOptions fit = SmallFit();

  ShardedServiceOptions opts = RouterOptions(2);
  opts.shard.train_on_ingest_labels = true;
  ShardedSplashService router(SmallModelOptions(), opts);
  ASSERT_TRUE(router.Start(ds, split, &fit).ok());

  const size_t n = std::min<size_t>(live.size(), 300);
  size_t labels = 0;
  size_t labels_to_shard1 = 0;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(router.IngestEdge(live[i]));
    if (i % 5 == 4) {
      PropertyQuery q;
      q.node = live[i].dst;
      q.time = live[i].time;
      q.class_label = static_cast<int>(i % 3);
      ASSERT_TRUE(router.SubmitTrain(q));
      ++labels;
      if (router.ShardOf(q.node) == 1) ++labels_to_shard1;
    }
  }
  router.Flush();
  router.Stop();

  const ServeCounters c0 = router.shard(0).Counters();
  const ServeCounters c1 = router.shard(1).Counters();
  EXPECT_EQ(c1.train_accepted, labels_to_shard1);
  EXPECT_EQ(c0.train_accepted + c1.train_accepted, labels);
  EXPECT_GT(c0.train_steps, 0u);
  EXPECT_GT(c1.train_steps, 0u);
  // Every ingested edge landed on its destination's shard, nothing else.
  size_t to_shard1 = 0;
  for (size_t i = 0; i < n; ++i) to_shard1 += router.ShardOf(live[i].dst);
  EXPECT_EQ(router.shard(1).ingest_log().size(), to_shard1);
  EXPECT_EQ(router.shard(0).ingest_log().size(), n - to_shard1);
}

}  // namespace
}  // namespace splash
