// Copyright 2026 The SPLASH Reproduction Authors.
//
// Blocked kernels vs naive references, including shapes that are not
// multiples of the blocking constants.

#include "tensor/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.h"

namespace splash {
namespace {

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  }
  return c;
}

void ExpectNear(const Matrix& got, const Matrix& want, float tol) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (size_t i = 0; i < got.rows(); ++i) {
    for (size_t j = 0; j < got.cols(); ++j) {
      EXPECT_NEAR(got(i, j), want(i, j), tol) << "at (" << i << "," << j
                                              << ")";
    }
  }
}

TEST(MatrixTest, MatMulMatchesNaiveAcrossShapes) {
  Rng rng(1);
  // Deliberately awkward shapes: smaller than, equal to, and straddling the
  // 128-wide blocking panels.
  const size_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 7}, {17, 128, 33}, {40, 130, 129}, {130, 64, 2}};
  for (const auto& s : shapes) {
    const Matrix a = Matrix::Gaussian(s[0], s[1], &rng);
    const Matrix b = Matrix::Gaussian(s[1], s[2], &rng);
    Matrix c(s[0], s[2]);
    MatMul(a, b, &c);
    ExpectNear(c, NaiveMatMul(a, b), 1e-3f);
  }
}

TEST(MatrixTest, MatMulAccumulates) {
  Rng rng(2);
  const Matrix a = Matrix::Gaussian(4, 6, &rng);
  const Matrix b = Matrix::Gaussian(6, 3, &rng);
  Matrix c = Matrix::Ones(4, 3);
  MatMul(a, b, &c, /*accumulate=*/true);
  const Matrix ref = NaiveMatMul(a, b);
  for (size_t i = 0; i < c.rows(); ++i) {
    for (size_t j = 0; j < c.cols(); ++j) {
      EXPECT_NEAR(c(i, j), ref(i, j) + 1.0f, 1e-4f);
    }
  }
}

TEST(MatrixTest, TransposedVariantsMatchNaive) {
  Rng rng(3);
  const Matrix a = Matrix::Gaussian(9, 13, &rng);   // MxK
  const Matrix bt = Matrix::Gaussian(11, 13, &rng);  // NxK
  Matrix c(9, 11);
  MatMulTransB(a, bt, &c);
  for (size_t i = 0; i < 9; ++i) {
    for (size_t j = 0; j < 11; ++j) {
      float acc = 0.0f;
      for (size_t k = 0; k < 13; ++k) acc += a(i, k) * bt(j, k);
      EXPECT_NEAR(c(i, j), acc, 1e-3f);
    }
  }

  const Matrix at = Matrix::Gaussian(13, 9, &rng);  // RxM
  const Matrix b = Matrix::Gaussian(13, 11, &rng);  // RxN
  Matrix c2(9, 11);
  MatMulTransA(at, b, &c2);
  for (size_t i = 0; i < 9; ++i) {
    for (size_t j = 0; j < 11; ++j) {
      float acc = 0.0f;
      for (size_t r = 0; r < 13; ++r) acc += at(r, i) * b(r, j);
      EXPECT_NEAR(c2(i, j), acc, 1e-3f);
    }
  }
}

TEST(MatrixTest, RowOpsAndRelu) {
  Matrix m(2, 3);
  m(0, 0) = -1.0f;
  m(0, 1) = 2.0f;
  m(1, 2) = -5.0f;
  const float bias[3] = {1.0f, 1.0f, 1.0f};
  AddRowVector(&m, bias);
  ReluInPlace(&m);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(m(1, 2), 0.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 1.0f);

  float sums[3];
  ColumnSums(m, sums);
  EXPECT_FLOAT_EQ(sums[0], m(0, 0) + m(1, 0));
  EXPECT_FLOAT_EQ(sums[1], m(0, 1) + m(1, 1));
}

TEST(MatrixTest, ResizeIsGrowOnlyStorage) {
  Matrix m(2, 2);
  m(1, 1) = 7.0f;
  const float* before = m.data();
  m.Resize(1, 2);  // shrink view: no reallocation
  EXPECT_EQ(m.data(), before);
  m.Resize(2, 2);  // back within capacity: data still intact
  EXPECT_EQ(m.data(), before);
  EXPECT_FLOAT_EQ(m(1, 1), 7.0f);
}

TEST(MatrixTest, SolveRidgeRecoversLinearMap) {
  Rng rng(4);
  const size_t n = 200, d = 8, c = 3;
  const Matrix x = Matrix::Gaussian(n, d, &rng);
  const Matrix w_true = Matrix::Gaussian(d, c, &rng);
  Matrix y(n, c);
  MatMul(x, w_true, &y);
  Matrix w;
  ASSERT_TRUE(SolveRidge(x, y, 1e-4f, &w));
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < c; ++j) {
      EXPECT_NEAR(w(i, j), w_true(i, j), 1e-2f);
    }
  }
}

}  // namespace
}  // namespace splash
