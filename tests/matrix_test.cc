// Copyright 2026 The SPLASH Reproduction Authors.
//
// Blocked kernels vs naive references, including shapes that are not
// multiples of the blocking constants.

#include "tensor/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "tensor/rng.h"

namespace splash {
namespace {

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  }
  return c;
}

void ExpectNear(const Matrix& got, const Matrix& want, float tol) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (size_t i = 0; i < got.rows(); ++i) {
    for (size_t j = 0; j < got.cols(); ++j) {
      EXPECT_NEAR(got(i, j), want(i, j), tol) << "at (" << i << "," << j
                                              << ")";
    }
  }
}

TEST(MatrixTest, MatMulMatchesNaiveAcrossShapes) {
  Rng rng(1);
  // Deliberately awkward shapes: smaller than, equal to, and straddling the
  // 128-wide blocking panels.
  const size_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 7}, {17, 128, 33}, {40, 130, 129}, {130, 64, 2}};
  for (const auto& s : shapes) {
    const Matrix a = Matrix::Gaussian(s[0], s[1], &rng);
    const Matrix b = Matrix::Gaussian(s[1], s[2], &rng);
    Matrix c(s[0], s[2]);
    MatMul(a, b, &c);
    ExpectNear(c, NaiveMatMul(a, b), 1e-3f);
  }
}

TEST(MatrixTest, MatMulAccumulates) {
  Rng rng(2);
  const Matrix a = Matrix::Gaussian(4, 6, &rng);
  const Matrix b = Matrix::Gaussian(6, 3, &rng);
  Matrix c = Matrix::Ones(4, 3);
  MatMul(a, b, &c, /*accumulate=*/true);
  const Matrix ref = NaiveMatMul(a, b);
  for (size_t i = 0; i < c.rows(); ++i) {
    for (size_t j = 0; j < c.cols(); ++j) {
      EXPECT_NEAR(c(i, j), ref(i, j) + 1.0f, 1e-4f);
    }
  }
}

TEST(MatrixTest, TransposedVariantsMatchNaive) {
  Rng rng(3);
  const Matrix a = Matrix::Gaussian(9, 13, &rng);   // MxK
  const Matrix bt = Matrix::Gaussian(11, 13, &rng);  // NxK
  Matrix c(9, 11);
  MatMulTransB(a, bt, &c);
  for (size_t i = 0; i < 9; ++i) {
    for (size_t j = 0; j < 11; ++j) {
      float acc = 0.0f;
      for (size_t k = 0; k < 13; ++k) acc += a(i, k) * bt(j, k);
      EXPECT_NEAR(c(i, j), acc, 1e-3f);
    }
  }

  const Matrix at = Matrix::Gaussian(13, 9, &rng);  // RxM
  const Matrix b = Matrix::Gaussian(13, 11, &rng);  // RxN
  Matrix c2(9, 11);
  MatMulTransA(at, b, &c2);
  for (size_t i = 0; i < 9; ++i) {
    for (size_t j = 0; j < 11; ++j) {
      float acc = 0.0f;
      for (size_t r = 0; r < 13; ++r) acc += at(r, i) * b(r, j);
      EXPECT_NEAR(c2(i, j), acc, 1e-3f);
    }
  }
}

TEST(MatrixTest, RowOpsAndRelu) {
  Matrix m(2, 3);
  m(0, 0) = -1.0f;
  m(0, 1) = 2.0f;
  m(1, 2) = -5.0f;
  const float bias[3] = {1.0f, 1.0f, 1.0f};
  AddRowVector(&m, bias);
  ReluInPlace(&m);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(m(1, 2), 0.0f);
  EXPECT_FLOAT_EQ(m(1, 0), 1.0f);

  float sums[3];
  ColumnSums(m, sums);
  EXPECT_FLOAT_EQ(sums[0], m(0, 0) + m(1, 0));
  EXPECT_FLOAT_EQ(sums[1], m(0, 1) + m(1, 1));
}

TEST(MatrixTest, ResizeIsGrowOnlyStorage) {
  Matrix m(2, 2);
  m(1, 1) = 7.0f;
  const float* before = m.data();
  m.Resize(1, 2);  // shrink view: no reallocation
  EXPECT_EQ(m.data(), before);
  m.Resize(2, 2);  // back within capacity: data still intact
  EXPECT_EQ(m.data(), before);
  EXPECT_FLOAT_EQ(m(1, 1), 7.0f);
}

TEST(MatrixTest, AllocationsAre64ByteAligned) {
  // Every backing store is 64B-aligned, contiguous or padded — the SIMD
  // backends' aligned-row guarantee starts here.
  for (size_t cols : {1, 2, 7, 16, 48, 130}) {
    Matrix m(5, cols);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % 64, 0u)
        << "cols=" << cols;
  }
}

TEST(MatrixTest, PaddedResizeAlignsEveryRow) {
  for (size_t cols : {1, 2, 7, 15, 16, 17, 48, 130}) {
    Matrix m;
    m.ResizePadded(9, cols);
    EXPECT_GE(m.stride(), m.cols());
    EXPECT_EQ(m.stride() % Matrix::kPadFloats, 0u) << "cols=" << cols;
    for (size_t r = 0; r < m.rows(); ++r) {
      EXPECT_EQ(reinterpret_cast<uintptr_t>(m.Row(r)) % 64, 0u)
          << "cols=" << cols << " row=" << r;
    }
    // Accessors agree on the padded layout.
    m(8, cols - 1) = 3.5f;
    EXPECT_FLOAT_EQ(m.Row(8)[cols - 1], 3.5f);
    EXPECT_EQ(m.IsContiguous(), m.stride() == m.cols() || m.rows() <= 1);
  }
}

TEST(MatrixTest, PaddedKernelsMatchContiguousThroughPublicApi) {
  // The dispatching entry points accept any operand stride mix and must
  // produce bit-identical results to the all-contiguous call.
  Rng rng(9);
  const size_t m = 23, k = 19, n = 11;
  const Matrix a = Matrix::Gaussian(m, k, &rng);
  const Matrix b = Matrix::Gaussian(k, n, &rng);
  Matrix ap, bp;
  ap.ResizePadded(m, k);
  bp.ResizePadded(k, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) ap(i, j) = a(i, j);
  }
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < n; ++j) bp(i, j) = b(i, j);
  }
  Matrix c(m, n), cp;
  cp.ResizePadded(m, n);
  MatMul(a, b, &c);
  MatMul(ap, bp, &cp);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      ASSERT_EQ(c(i, j), cp(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST(MatrixTest, TransARangeNeverZeroesOutput) {
  // Range calls accumulate into whatever the caller left in c (the fix for
  // the old full-output memset that was only correct for full-range
  // callers); the full MatMulTransA entry point still honors accumulate.
  Rng rng(10);
  const Matrix a = Matrix::Gaussian(6, 4, &rng);  // RxM
  const Matrix b = Matrix::Gaussian(6, 3, &rng);  // RxN
  Matrix whole(4, 3);
  MatMulTransA(a, b, &whole);  // accumulate=false: zeroes, then full sum

  // Same product assembled from two reduction sub-ranges over a pre-zeroed
  // output: bit-identical because per-element order is still ascending rr.
  Matrix split(4, 3);
  MatMulTransARange(a, b, &split, 0, 2);
  MatMulTransARange(a, b, &split, 2, 6);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      ASSERT_EQ(whole(i, j), split(i, j)) << "(" << i << "," << j << ")";
    }
  }

  // A sub-range call on a dirty output adds to it instead of wiping rows
  // outside (or inside) the range.
  Matrix dirty = Matrix::Ones(4, 3);
  MatMulTransARange(a, b, &dirty, 0, 0);  // empty range: no-op
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) ASSERT_EQ(dirty(i, j), 1.0f);
  }
  MatMulTransARange(a, b, &dirty, 0, 6);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      // Accumulating into 1.0 reorders the rounding, so compare to
      // tolerance rather than bitwise.
      ASSERT_NEAR(dirty(i, j), whole(i, j) + 1.0f, 1e-5f);
    }
  }
}

TEST(MatrixTest, AdamUpdateMatchesReferenceFormula) {
  const size_t n = 21;  // exercises the 8-wide body and a 5-lane tail
  std::vector<float> w(n), g(n), m(n), v(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = 0.5f - 0.01f * static_cast<float>(i);
    g[i] = 0.02f * static_cast<float>(i) - 0.1f;
    m[i] = 0.0f;
    v[i] = 0.0f;
  }
  std::vector<float> w_ref = w, m_ref = m, v_ref = v;
  const float step = 1e-3f, b1 = 0.9f, b2 = 0.999f, eps = 1e-8f;
  AdamUpdate(w.data(), g.data(), m.data(), v.data(), n, step, b1, b2, eps);
  for (size_t i = 0; i < n; ++i) {
    m_ref[i] = b1 * m_ref[i] + (1.0f - b1) * g[i];
    v_ref[i] = b2 * v_ref[i] + (1.0f - b2) * g[i] * g[i];
    w_ref[i] -= step * m_ref[i] / (std::sqrt(v_ref[i]) + eps);
    EXPECT_NEAR(w[i], w_ref[i], 1e-6f) << "w[" << i << "]";
    EXPECT_NEAR(m[i], m_ref[i], 1e-7f) << "m[" << i << "]";
    EXPECT_NEAR(v[i], v_ref[i], 1e-7f) << "v[" << i << "]";
  }
}

TEST(MatrixTest, SolveRidgeRecoversLinearMap) {
  Rng rng(4);
  const size_t n = 200, d = 8, c = 3;
  const Matrix x = Matrix::Gaussian(n, d, &rng);
  const Matrix w_true = Matrix::Gaussian(d, c, &rng);
  Matrix y(n, c);
  MatMul(x, w_true, &y);
  Matrix w;
  ASSERT_TRUE(SolveRidge(x, y, 1e-4f, &w));
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < c; ++j) {
      EXPECT_NEAR(w(i, j), w_true(i, j), 1e-2f);
    }
  }
}

}  // namespace
}  // namespace splash
