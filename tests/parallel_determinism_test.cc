// Copyright 2026 The SPLASH Reproduction Authors.
//
// Determinism contracts of the parallel runtime (ISSUE 2): the tensor
// kernels are bit-identical at any thread count, SLIM's batch-parallel
// train path tracks the serial one to float tolerance, and a full
// StreamTrainer::Fit at 1 vs 4 threads picks the same process and lands
// on the same val metric within 1e-6.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/slim.h"
#include "core/splash.h"
#include "datasets/synthetic.h"
#include "eval/trainer.h"
#include "runtime/thread_pool.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace splash {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  // Leave the process-wide pool serial for whoever runs next.
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }
};

TEST_F(ParallelDeterminismTest, MatMulKernelsBitIdenticalAcrossThreads) {
  Rng rng(11);
  const Matrix a = Matrix::Gaussian(300, 96, &rng);
  const Matrix b = Matrix::Gaussian(96, 80, &rng);
  const Matrix bt = Matrix::Gaussian(80, 96, &rng);

  ThreadPool::SetGlobalThreads(1);
  Matrix c1(300, 80), t1(300, 80), a1(96, 80);
  MatMul(a, b, &c1);
  MatMulTransB(a, bt, &t1);
  MatMulTransA(a, Matrix::Gaussian(300, 80, &rng), &a1);

  Rng rng2(11);
  const Matrix a2 = Matrix::Gaussian(300, 96, &rng2);
  const Matrix b2 = Matrix::Gaussian(96, 80, &rng2);
  const Matrix bt2 = Matrix::Gaussian(80, 96, &rng2);
  ThreadPool::SetGlobalThreads(4);
  Matrix c4(300, 80), t4(300, 80), a4(96, 80);
  MatMul(a2, b2, &c4);
  MatMulTransB(a2, bt2, &t4);
  MatMulTransA(a2, Matrix::Gaussian(300, 80, &rng2), &a4);

  for (size_t i = 0; i < c1.size(); ++i) {
    ASSERT_EQ(c1.data()[i], c4.data()[i]) << "MatMul element " << i;
    ASSERT_EQ(t1.data()[i], t4.data()[i]) << "MatMulTransB element " << i;
  }
  for (size_t i = 0; i < a1.size(); ++i) {
    ASSERT_EQ(a1.data()[i], a4.data()[i]) << "MatMulTransA element " << i;
  }
}

SlimBatchInput MakeBatch(size_t b, size_t k, size_t dv, Rng* rng) {
  SlimBatchInput input;
  input.node_feats = Matrix::Gaussian(b, dv, rng);
  input.neighbor_feats = Matrix::Gaussian(b * k, dv, rng);
  input.time_deltas.resize(b * k);
  for (size_t i = 0; i < b * k; ++i) {
    input.time_deltas[i] = rng->Uniform() * 10.0;
  }
  input.mask = Matrix::Ones(b, k);
  input.edge_weights.assign(b * k, 1.0f);
  return input;
}

TEST_F(ParallelDeterminismTest, SlimForwardBitIdenticalAcrossThreads) {
  SlimOptions opts;
  opts.feature_dim = 24;
  opts.hidden_dim = 48;
  opts.k_recent = 6;
  opts.dropout = 0.0f;
  Rng data_rng(5);
  const SlimBatchInput input = MakeBatch(200, 6, 24, &data_rng);

  Matrix outs[2];
  const size_t threads[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    ThreadPool::SetGlobalThreads(threads[run]);
    Rng rng(42);
    SlimModel model(opts, &rng);
    model.SetTraining(false);
    outs[run] = model.Forward(input);
  }
  ASSERT_EQ(outs[0].size(), outs[1].size());
  for (size_t i = 0; i < outs[0].size(); ++i) {
    ASSERT_EQ(outs[0].data()[i], outs[1].data()[i]) << "element " << i;
  }
}

TEST_F(ParallelDeterminismTest, SlimTrainStepMatchesSerialWithinTolerance) {
  SlimOptions opts;
  opts.feature_dim = 24;
  opts.hidden_dim = 48;
  opts.k_recent = 6;
  opts.dropout = 0.0f;  // isolate the gradient-reduction order difference
  Rng data_rng(6);
  const SlimBatchInput input = MakeBatch(160, 6, 24, &data_rng);
  std::vector<int> labels(160);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 2);
  }

  double losses[2][5];
  const size_t threads[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    ThreadPool::SetGlobalThreads(threads[run]);
    Rng rng(42);
    SlimModel model(opts, &rng);
    model.SetTraining(true);
    for (int step = 0; step < 5; ++step) {
      losses[run][step] = model.TrainStep(input, labels);
    }
  }
  for (int step = 0; step < 5; ++step) {
    EXPECT_NEAR(losses[0][step], losses[1][step], 1e-6)
        << "train step " << step;
  }
}

TEST_F(ParallelDeterminismTest, SlimTrainStepSameAtTwoAndFourThreads) {
  // Chunk boundaries and dropout streams depend on the batch only, and
  // per-chunk grads reduce per worker in fixed order — but worker chunk
  // ownership shifts with the thread count, so cross-thread-count equality
  // is to tolerance while repeat runs at one count are exactly equal.
  SlimOptions opts;
  opts.feature_dim = 16;
  opts.hidden_dim = 32;
  opts.k_recent = 4;
  opts.dropout = 0.2f;  // exercises the per-chunk Rng streams
  Rng data_rng(7);
  const SlimBatchInput input = MakeBatch(128, 4, 16, &data_rng);
  std::vector<int> labels(128, 1);

  double first = 0.0;
  for (int repeat = 0; repeat < 2; ++repeat) {
    ThreadPool::SetGlobalThreads(4);
    Rng rng(42);
    SlimModel model(opts, &rng);
    model.SetTraining(true);
    double loss = 0.0;
    for (int step = 0; step < 3; ++step) loss = model.TrainStep(input, labels);
    if (repeat == 0) {
      first = loss;
    } else {
      EXPECT_DOUBLE_EQ(first, loss);  // same thread count => exact repeat
    }
  }

  ThreadPool::SetGlobalThreads(2);
  Rng rng(42);
  SlimModel model(opts, &rng);
  model.SetTraining(true);
  double loss2 = 0.0;
  for (int step = 0; step < 3; ++step) loss2 = model.TrainStep(input, labels);
  EXPECT_NEAR(first, loss2, 1e-6);  // same dropout masks, reduction differs
}

TEST_F(ParallelDeterminismTest, FitSelectsSameProcessAndMetricAcrossThreads) {
  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 150;
  cfg.num_edges = 3000;
  cfg.num_communities = 3;
  cfg.intra_prob = 0.9;
  cfg.query_rate = 0.3;
  cfg.late_arrival_frac = 0.2;
  cfg.seed = 9;
  const Dataset ds = GenerateSynthetic(cfg);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);

  AugmentationProcess picks[2];
  double val_metric[2], test_metric[2];
  const size_t threads[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    SplashOptions opts;
    opts.mode = SplashMode::kAuto;
    opts.augment.feature_dim = 16;
    opts.slim.hidden_dim = 32;
    opts.slim.time_dim = 8;
    opts.slim.k_recent = 5;
    opts.slim.dropout = 0.0f;  // masks differ serial-vs-parallel otherwise
    opts.seed = 7;
    SplashPredictor model(opts);
    ASSERT_TRUE(model.Prepare(ds, split).ok());
    picks[run] = model.selected_process();

    TrainerOptions topts;
    topts.epochs = 2;
    topts.batch_size = 64;
    topts.num_threads = threads[run];
    StreamTrainer trainer(topts);
    const FitResult fit = trainer.Fit(&model, ds, split);
    val_metric[run] = fit.best_val_metric;
    test_metric[run] = trainer.Evaluate(&model, ds, split).metric;
  }
  EXPECT_EQ(picks[0], picks[1]);
  EXPECT_NEAR(val_metric[0], val_metric[1], 1e-6);
  EXPECT_NEAR(test_metric[0], test_metric[1], 1e-6);
}

}  // namespace
}  // namespace splash
