// Copyright 2026 The SPLASH Reproduction Authors.
//
// FeatureAugmenter: degree encoding, seen/unseen bookkeeping, and the
// Eq. (4)-(5) unseen-node propagation semantics.

#include "core/feature_augmentation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace splash {
namespace {

EdgeStream TrainStream() {
  // Nodes 0..3 interact during the train period [0, 10].
  EdgeStream s;
  s.Append(TemporalEdge(0, 1, 1.0)).ok();
  s.Append(TemporalEdge(1, 2, 2.0)).ok();
  s.Append(TemporalEdge(2, 3, 3.0)).ok();
  s.Append(TemporalEdge(0, 3, 4.0)).ok();
  s.EnsureNodeCapacity(8);
  return s;
}

TEST(FeatureAugmenterTest, EncodeDegreeIsDeterministicAndDiscriminative) {
  FeatureAugmenterOptions opts;
  opts.feature_dim = 16;
  FeatureAugmenter augmenter(opts);
  std::vector<float> a(16), b(16), c(16);
  augmenter.EncodeDegree(5, a.data());
  augmenter.EncodeDegree(5, b.data());
  augmenter.EncodeDegree(500, c.data());
  float same = 0.0f, diff = 0.0f;
  for (size_t j = 0; j < 16; ++j) {
    EXPECT_TRUE(std::isfinite(a[j]));
    EXPECT_LE(std::fabs(a[j]), 1.0f + 1e-6f);
    same += std::fabs(a[j] - b[j]);
    diff += std::fabs(a[j] - c[j]);
  }
  EXPECT_FLOAT_EQ(same, 0.0f);
  EXPECT_GT(diff, 0.1f);  // different degrees get different codes
}

TEST(FeatureAugmenterTest, FitSeenMarksTrainNodesOnly) {
  FeatureAugmenterOptions opts;
  opts.feature_dim = 8;
  FeatureAugmenter augmenter(opts);
  EdgeStream s = TrainStream();
  s.Append(TemporalEdge(4, 5, 20.0)).ok();  // beyond fit time
  augmenter.FitSeen(s, 10.0);
  EXPECT_TRUE(augmenter.seen(0));
  EXPECT_TRUE(augmenter.seen(3));
  EXPECT_FALSE(augmenter.seen(4));
  EXPECT_FALSE(augmenter.seen(5));
}

TEST(FeatureAugmenterTest, SeenRandomFeaturesAreStableNonzero) {
  FeatureAugmenterOptions opts;
  opts.feature_dim = 8;
  FeatureAugmenter augmenter(opts);
  const EdgeStream s = TrainStream();
  augmenter.FitSeen(s, 10.0);
  std::vector<float> f1(8), f2(8);
  augmenter.WriteFeature(AugmentationProcess::kRandom, 1, f1.data());
  augmenter.ObserveEdge(TemporalEdge(0, 1, 11.0));
  augmenter.WriteFeature(AugmentationProcess::kRandom, 1, f2.data());
  float norm = 0.0f, delta = 0.0f;
  for (size_t j = 0; j < 8; ++j) {
    norm += f1[j] * f1[j];
    delta += std::fabs(f1[j] - f2[j]);
  }
  EXPECT_GT(norm, 0.0f);        // seen nodes have real features
  EXPECT_FLOAT_EQ(delta, 0.0f);  // and observing edges never changes them
}

TEST(FeatureAugmenterTest, UnseenNodePropagationIsRunningNeighborMean) {
  FeatureAugmenterOptions opts;
  opts.feature_dim = 8;
  FeatureAugmenter augmenter(opts);
  const EdgeStream s = TrainStream();
  augmenter.FitSeen(s, 10.0);

  std::vector<float> f0(8), f1(8), unseen(8), expect(8);
  augmenter.WriteFeature(AugmentationProcess::kRandom, 0, f0.data());
  augmenter.WriteFeature(AugmentationProcess::kRandom, 1, f1.data());

  // Unseen node 6 starts at zero...
  augmenter.WriteFeature(AugmentationProcess::kRandom, 6, unseen.data());
  for (float v : unseen) EXPECT_FLOAT_EQ(v, 0.0f);

  // ...then becomes the mean of observed neighbors (Eq. (4)-(5)).
  augmenter.ObserveEdge(TemporalEdge(6, 0, 11.0));
  augmenter.WriteFeature(AugmentationProcess::kRandom, 6, unseen.data());
  for (size_t j = 0; j < 8; ++j) EXPECT_NEAR(unseen[j], f0[j], 1e-5f);

  augmenter.ObserveEdge(TemporalEdge(1, 6, 12.0));
  augmenter.WriteFeature(AugmentationProcess::kRandom, 6, unseen.data());
  for (size_t j = 0; j < 8; ++j) {
    expect[j] = 0.5f * (f0[j] + f1[j]);
    EXPECT_NEAR(unseen[j], expect[j], 1e-5f);
  }

  // Reset() forgets the propagation but keeps the seen set.
  augmenter.Reset();
  augmenter.WriteFeature(AugmentationProcess::kRandom, 6, unseen.data());
  for (float v : unseen) EXPECT_FLOAT_EQ(v, 0.0f);
  EXPECT_TRUE(augmenter.seen(0));
}

TEST(FeatureAugmenterTest, StructuralTracksLiveDegree) {
  FeatureAugmenterOptions opts;
  opts.feature_dim = 8;
  FeatureAugmenter augmenter(opts);
  const EdgeStream s = TrainStream();
  augmenter.FitSeen(s, 10.0);  // dynamic state reset: degree 0 everywhere

  std::vector<float> before(8), after(8), code0(8), code1(8);
  augmenter.EncodeDegree(0, code0.data());
  augmenter.EncodeDegree(1, code1.data());
  augmenter.WriteFeature(AugmentationProcess::kStructural, 0, before.data());
  for (size_t j = 0; j < 8; ++j) EXPECT_FLOAT_EQ(before[j], code0[j]);
  augmenter.ObserveEdge(TemporalEdge(0, 1, 11.0));
  augmenter.WriteFeature(AugmentationProcess::kStructural, 0, after.data());
  for (size_t j = 0; j < 8; ++j) EXPECT_FLOAT_EQ(after[j], code1[j]);
}

TEST(FeatureAugmenterTest, PositionalPullsInteractingNodesTogether) {
  FeatureAugmenterOptions opts;
  opts.feature_dim = 8;
  FeatureAugmenter augmenter(opts);
  // Two cliques {0,1,2} and {3,4,5} with no cross edges.
  EdgeStream s;
  double t = 0.0;
  for (int round = 0; round < 6; ++round) {
    s.Append(TemporalEdge(0, 1, t += 1.0)).ok();
    s.Append(TemporalEdge(1, 2, t += 1.0)).ok();
    s.Append(TemporalEdge(0, 2, t += 1.0)).ok();
    s.Append(TemporalEdge(3, 4, t += 1.0)).ok();
    s.Append(TemporalEdge(4, 5, t += 1.0)).ok();
    s.Append(TemporalEdge(3, 5, t += 1.0)).ok();
  }
  augmenter.FitSeen(s, t + 1.0);
  std::vector<float> f0(8), f1(8), f3(8);
  augmenter.WriteFeature(AugmentationProcess::kPositional, 0, f0.data());
  augmenter.WriteFeature(AugmentationProcess::kPositional, 1, f1.data());
  augmenter.WriteFeature(AugmentationProcess::kPositional, 3, f3.data());
  float intra = 0.0f, inter = 0.0f;
  for (size_t j = 0; j < 8; ++j) {
    intra += (f0[j] - f1[j]) * (f0[j] - f1[j]);
    inter += (f0[j] - f3[j]) * (f0[j] - f3[j]);
  }
  EXPECT_LT(intra, inter);  // same-community nodes are closer
}

}  // namespace
}  // namespace splash
