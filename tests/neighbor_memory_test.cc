// Copyright 2026 The SPLASH Reproduction Authors.
//
// NeighborMemory contract tests: k-recent semantics, eviction order,
// capacity growth, reset behavior, and shard-parallel bulk ingest.

#include "graph/neighbor_memory.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/edge_stream.h"
#include "runtime/thread_pool.h"
#include "tensor/rng.h"

namespace splash {
namespace {

TEST(NeighborMemoryTest, GathersNewestFirst) {
  NeighborMemory memory(3, 8);
  memory.Observe(TemporalEdge(0, 1, 1.0), 0);
  memory.Observe(TemporalEdge(0, 2, 2.0), 1);

  std::vector<NodeId> ids(3);
  std::vector<double> times(3);
  ASSERT_EQ(memory.GatherRecent(0, ids.data(), times.data()), 2u);
  EXPECT_EQ(ids[0], 2u);  // newest first
  EXPECT_EQ(ids[1], 1u);
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
}

TEST(NeighborMemoryTest, EvictsOldestBeyondK) {
  NeighborMemory memory(3, 8);
  for (int i = 1; i <= 5; ++i) {
    memory.Observe(TemporalEdge(0, static_cast<NodeId>(i),
                                static_cast<double>(i)),
                   static_cast<size_t>(i));
  }
  std::vector<NodeId> ids(3);
  std::vector<double> times(3);
  ASSERT_EQ(memory.GatherRecent(0, ids.data(), times.data()), 3u);
  // Neighbors 1 and 2 were evicted; 5, 4, 3 remain newest-first.
  EXPECT_EQ(ids[0], 5u);
  EXPECT_EQ(ids[1], 4u);
  EXPECT_EQ(ids[2], 3u);
  EXPECT_EQ(memory.CountOf(0), 3u);
}

TEST(NeighborMemoryTest, ObserveIsSymmetric) {
  NeighborMemory memory(2, 4);
  memory.Observe(TemporalEdge(1, 3, 7.0), 0);
  std::vector<NodeId> ids(2);
  std::vector<double> times(2);
  ASSERT_EQ(memory.GatherRecent(3, ids.data(), times.data()), 1u);
  EXPECT_EQ(ids[0], 1u);
  ASSERT_EQ(memory.GatherRecent(1, ids.data(), times.data()), 1u);
  EXPECT_EQ(ids[0], 3u);
}

TEST(NeighborMemoryTest, GrowsForUnannouncedNodeIds) {
  NeighborMemory memory(2, 4);  // slab sized for 4 nodes
  memory.Observe(TemporalEdge(100, 200, 1.0), 0);
  EXPECT_GE(memory.num_nodes(), 201u);
  std::vector<NodeId> ids(2);
  std::vector<double> times(2);
  ASSERT_EQ(memory.GatherRecent(200, ids.data(), times.data()), 1u);
  EXPECT_EQ(ids[0], 100u);
  // Earlier (small-id) state must survive growth triggered later.
  memory.Observe(TemporalEdge(0, 1, 2.0), 1);
  memory.Observe(TemporalEdge(0, 5000, 3.0), 2);
  ASSERT_EQ(memory.GatherRecent(0, ids.data(), times.data()), 2u);
  EXPECT_EQ(ids[0], 5000u);
  EXPECT_EQ(ids[1], 1u);
}

TEST(NeighborMemoryTest, ClearKeepsCapacityDropsContents) {
  NeighborMemory memory(2, 4);
  memory.Observe(TemporalEdge(0, 1, 1.0), 0);
  memory.Clear();
  EXPECT_EQ(memory.CountOf(0), 0u);
  EXPECT_EQ(memory.CountOf(1), 0u);
  std::vector<NodeId> ids(2);
  std::vector<double> times(2);
  EXPECT_EQ(memory.GatherRecent(0, ids.data(), times.data()), 0u);
}

TEST(NeighborMemoryTest, SelfLoopRecordsBothSlots) {
  NeighborMemory memory(3, 4);
  memory.Observe(TemporalEdge(2, 2, 1.0), 0);
  EXPECT_EQ(memory.CountOf(2), 2u);  // both endpoint pushes land on node 2
}

TEST(NeighborMemoryTest, ObserveBulkMatchesSerialObserveAtAnyThreadCount) {
  const size_t n = 500, k = 4, edges = 5000;
  EdgeStream stream;
  Rng rng(17);
  double t = 0.0;
  for (size_t i = 0; i < edges; ++i) {
    ASSERT_TRUE(stream
                    .Append(TemporalEdge(
                        static_cast<NodeId>(rng.UniformInt(n)),
                        static_cast<NodeId>(rng.UniformInt(n)), t += 0.5))
                    .ok());
  }

  NeighborMemory serial(k, n);
  for (size_t i = 0; i < edges; ++i) serial.Observe(stream[i], i);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    ThreadPool::SetGlobalThreads(threads);
    NeighborMemory bulk(k, n);
    bulk.ObserveBulk(stream, 0, edges);
    std::vector<NodeId> ids_a(k), ids_b(k);
    std::vector<double> times_a(k), times_b(k);
    for (NodeId v = 0; v < n; ++v) {
      const size_t ca = serial.GatherRecent(v, ids_a.data(), times_a.data());
      const size_t cb = bulk.GatherRecent(v, ids_b.data(), times_b.data());
      ASSERT_EQ(ca, cb) << "node " << v << " threads " << threads;
      for (size_t j = 0; j < ca; ++j) {
        ASSERT_EQ(ids_a[j], ids_b[j]) << "node " << v;
        ASSERT_DOUBLE_EQ(times_a[j], times_b[j]) << "node " << v;
      }
    }
  }
  ThreadPool::SetGlobalThreads(1);
}

}  // namespace
}  // namespace splash
