// Copyright 2026 The SPLASH Reproduction Authors.

#include "graph/degree_tracker.h"

#include <gtest/gtest.h>

namespace splash {
namespace {

TEST(DegreeTrackerTest, CountsBothEndpoints) {
  DegreeTracker tracker(4);
  tracker.Observe(TemporalEdge(0, 1, 1.0));
  tracker.Observe(TemporalEdge(0, 2, 2.0));
  EXPECT_EQ(tracker.Degree(0), 2u);
  EXPECT_EQ(tracker.Degree(1), 1u);
  EXPECT_EQ(tracker.Degree(2), 1u);
  EXPECT_EQ(tracker.Degree(3), 0u);
  EXPECT_EQ(tracker.num_edges(), 2u);
}

TEST(DegreeTrackerTest, SelfLoopCountsTwice) {
  DegreeTracker tracker(4);
  tracker.Observe(TemporalEdge(1, 1, 1.0));
  EXPECT_EQ(tracker.Degree(1), 2u);
}

TEST(DegreeTrackerTest, GrowsForUnannouncedIds) {
  DegreeTracker tracker(2);
  tracker.Observe(TemporalEdge(1000, 5, 1.0));
  EXPECT_EQ(tracker.Degree(1000), 1u);
  EXPECT_EQ(tracker.Degree(999), 0u);
  EXPECT_EQ(tracker.Degree(2000), 0u);  // out-of-range reads are safe
}

TEST(DegreeTrackerTest, ClearResets) {
  DegreeTracker tracker(4);
  tracker.Observe(TemporalEdge(0, 1, 1.0));
  tracker.Clear();
  EXPECT_EQ(tracker.Degree(0), 0u);
  EXPECT_EQ(tracker.num_edges(), 0u);
}

}  // namespace
}  // namespace splash
