// Copyright 2026 The SPLASH Reproduction Authors.
//
// Runtime-layer contract tests: ParallelFor coverage, static chunk->worker
// assignment, nested-call inlining, and the chunk-indexed Rng streams.

#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

namespace splash {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, 1003, 17, [&](size_t b, size_t e, size_t) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  auto chunks_of = [](size_t threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    pool.ParallelFor(0, 100, 16, [&](size_t b, size_t e, size_t) {
      std::lock_guard<std::mutex> lk(mu);
      chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(chunks_of(1), chunks_of(4));
  EXPECT_EQ(ThreadPool::NumChunks(0, 100, 16), 7u);
}

TEST(ThreadPoolTest, StaticAssignmentIsRoundRobin) {
  ThreadPool pool(3);
  std::vector<size_t> owner(9, 99);
  pool.ParallelFor(0, 9, 1, [&](size_t b, size_t, size_t w) {
    owner[b] = w;  // grain 1: chunk index == begin
  });
  for (size_t c = 0; c < 9; ++c) EXPECT_EQ(owner[c], c % 3);
}

TEST(ThreadPoolTest, NestedCallsRunInlineOnTheSameWorker) {
  ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  pool.ParallelFor(0, 8, 1, [&](size_t, size_t, size_t outer_w) {
    pool.ParallelFor(0, 4, 1, [&](size_t, size_t, size_t inner_w) {
      if (inner_w != outer_w) mismatches.fetch_add(1);
    });
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  size_t sum = 0;  // no synchronization: must be safe with 1 thread
  pool.ParallelFor(0, 50, 8, [&](size_t b, size_t e, size_t w) {
    EXPECT_EQ(w, 0u);
    for (size_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 50u * 49u / 2u);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> total{0};
    pool.ParallelFor(0, 64, 4, [&](size_t b, size_t e, size_t) {
      total.fetch_add(e - b);
    });
    ASSERT_EQ(total.load(), 64u);
  }
}

TEST(ThreadPoolTest, WorkerRngSeedIsChunkDeterministic) {
  EXPECT_EQ(WorkerRngSeed(7, 3, 2), WorkerRngSeed(7, 3, 2));
  EXPECT_NE(WorkerRngSeed(7, 3, 2), WorkerRngSeed(7, 3, 1));
  EXPECT_NE(WorkerRngSeed(7, 2, 2), WorkerRngSeed(7, 3, 2));
  EXPECT_NE(WorkerRngSeed(6, 3, 2), WorkerRngSeed(7, 3, 2));
}

TEST(ThreadPoolTest, ConcurrentExternalSubmittersSerializeCorrectly) {
  // The pipelined executor submits from two external threads at once (the
  // main compute thread and the ingest PipelineThread): jobs must
  // serialize on the client mutex, never interleave chunks, and each sum
  // every one of its own indices exactly once.
  ThreadPool pool(4);
  std::atomic<int> failures{0};
  auto hammer = [&](size_t offset) {
    for (int round = 0; round < 100; ++round) {
      std::atomic<size_t> total{0};
      pool.ParallelFor(offset, offset + 128, 8,
                       [&](size_t b, size_t e, size_t) {
                         for (size_t i = b; i < e; ++i) total.fetch_add(i);
                       });
      const size_t lo = offset, hi = offset + 128;
      const size_t want = (hi * (hi - 1) - lo * (lo - 1)) / 2;
      if (total.load() != want) failures.fetch_add(1);
    }
  };
  std::thread other([&] { hammer(1000); });
  hammer(0);
  other.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPoolTest, SetGlobalThreadsResizesPool) {
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 3u);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 1u);
}

}  // namespace
}  // namespace splash
