// Copyright 2026 The SPLASH Reproduction Authors.
//
// Contracts of the cache-aware packed-B GEMM tier (tensor/packed.h):
//   1. Packing is a pure re-tiling — every element of B is recoverable
//      from its (k-block, panel) slot and dead panel lanes are zero,
//      across ragged shapes in every dimension.
//   2. Packed kernels are BIT-identical to the unpacked kernels on the
//      same backend (scalar, avx2, avx512), including multi-k-block
//      shapes, accumulate, and the fused bias/ReLU epilogue.
//   3. The bf16 packed kernels are tolerance-equivalent to fp32 (storage
//      error <= half an 8-bit-mantissa ulp per element of B), and the
//      end-to-end SLIM read path holds AUC parity on a drifting synthetic
//      task with |dAUC| <= 1e-3.
//   4. The bf16 replica halves resident weight-operand bytes, exactly.

#include "tensor/packed.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/slim.h"
#include "eval/metrics.h"
#include "tensor/matrix.h"
#include "tensor/rng.h"
#include "tensor/simd.h"

namespace splash {
namespace {

const size_t kDims[] = {1, 3, 8, 17, 33, 128, 2560};

bool HaveAvx2() {
  return CpuSupportsAvx2Fma() && GetAvx2Kernels() != nullptr;
}

bool HaveAvx512() {
  return CpuSupportsAvx512() && GetAvx512Kernels() != nullptr;
}

std::vector<const KernelTable*> AllBackends() {
  std::vector<const KernelTable*> v = {GetScalarKernels()};
  if (HaveAvx2()) v.push_back(GetAvx2Kernels());
  if (HaveAvx512()) v.push_back(GetAvx512Kernels());
  return v;
}

TEST(PackedGemmTest, KBlockRowsProperties) {
  for (size_t k : kDims) {
    for (size_t n : kDims) {
      const size_t kb = PackedKBlockRows(k, n);
      ASSERT_LE(kb, k) << "k=" << k << " n=" << n;
      ASSERT_GE(kb, std::min(k, size_t{32})) << "k=" << k << " n=" << n;
      // Whole 16-row groups unless capped by k itself.
      ASSERT_TRUE(kb % 16 == 0 || kb == k) << "k=" << k << " n=" << n;
    }
  }
  EXPECT_EQ(PackedKBlockRows(0, 64), 0u);
}

/// Recovers element (kk, j) of the original B from the packed layout.
template <typename Packed>
auto PackedAt(const Packed& p, size_t kk, size_t j) {
  const size_t pb = kk / p.block_rows();
  const size_t jp = j / Packed::kPanelCols;
  return p.Panel(pb, jp)[(kk - p.BlockBegin(pb)) * Packed::kPanelCols +
                         j % Packed::kPanelCols];
}

TEST(PackedGemmTest, PackRoundTripRaggedShapes) {
  Rng rng(301);
  for (size_t k : kDims) {
    for (size_t n : kDims) {
      if (k * n > size_t{8} << 20) continue;  // bound test churn
      const Matrix b = Matrix::Gaussian(k, n, &rng);
      PackedMatrix p;
      p.PackFrom(b);
      ASSERT_EQ(p.k(), k);
      ASSERT_EQ(p.n(), n);
      for (size_t kk = 0; kk < k; ++kk) {
        for (size_t j = 0; j < n; ++j) {
          ASSERT_EQ(PackedAt(p, kk, j), b(kk, j))
              << "k=" << k << " n=" << n << " at (" << kk << "," << j << ")";
        }
        // Dead lanes of the last panel are zero (full-width kernel loads
        // rely on fma(a, 0, acc) == acc).
        const size_t last = p.panels() - 1;
        const size_t pb = kk / p.block_rows();
        const float* row = p.Panel(pb, last) +
                           (kk - p.BlockBegin(pb)) * PackedMatrix::kPanelCols;
        for (size_t j = n - last * PackedMatrix::kPanelCols;
             j < PackedMatrix::kPanelCols; ++j) {
          ASSERT_EQ(row[j], 0.0f) << "pad lane k=" << k << " n=" << n;
        }
      }

      PackedMatrix16 p16;
      p16.PackFrom(b);
      for (size_t kk = 0; kk < k; ++kk) {
        for (size_t j = 0; j < n; ++j) {
          ASSERT_EQ(PackedAt(p16, kk, j), Bf16FromFloat(b(kk, j)))
              << "bf16 k=" << k << " n=" << n;
        }
      }
    }
  }
}

TEST(PackedGemmTest, Bf16ConversionProperties) {
  // Exactly representable values round-trip bit-exactly.
  for (float v : {0.0f, 1.0f, -2.5f, 0.15625f, -1024.0f}) {
    EXPECT_EQ(Bf16ToFloat(Bf16FromFloat(v)), v);
  }
  // Round-to-nearest-even stays within half a bf16 ulp. The stored
  // mantissa has 7 bits, so an ulp at |v| in [2^e, 2^(e+1)) is 2^(e-7)
  // and the half-ulp bound relative to |v| >= 2^e is 2^-8 = 1/256.
  Rng rng(302);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>((rng.Uniform() - 0.5) * 200.0);
    const float w = Bf16ToFloat(Bf16FromFloat(v));
    EXPECT_NEAR(w, v, std::fabs(v) * (1.0f / 256.0f) + 1e-38f) << v;
  }
  // NaN survives conversion (quiet bit forced, no exponent overflow).
  const float nan = std::nanf("");
  EXPECT_TRUE(std::isnan(Bf16ToFloat(Bf16FromFloat(nan))));
  // bf16 -> fp32 -> bf16 is the identity (widening is exact).
  for (uint32_t h = 0; h < 0x10000u; h += 257) {
    const uint16_t b = static_cast<uint16_t>(h);
    const float f = Bf16ToFloat(b);
    if (std::isnan(f)) continue;  // NaN payloads re-quiet, values differ
    EXPECT_EQ(Bf16FromFloat(f), b);
  }
}

// Shape sweep for kernel equality: ragged in every dimension, plus
// (k=2560, n=1024) whose packed operand exceeds half of any realistic L2
// and therefore runs the multi-k-block path.
struct Shape {
  size_t m, k, n;
};
const Shape kGemmShapes[] = {
    {1, 1, 1},    {1, 1024, 64}, {3, 17, 5},    {5, 2560, 1024},
    {8, 33, 16},  {9, 19, 31},   {17, 128, 48}, {33, 48, 33},
    {2560, 48, 64},
};

TEST(PackedGemmTest, PackedBitEqualsUnpackedPerBackend) {
  for (const KernelTable* t : AllBackends()) {
    Rng rng(303);
    for (const Shape& sh : kGemmShapes) {
      const Matrix a = Matrix::Gaussian(sh.m, sh.k, &rng);
      const Matrix b = Matrix::Gaussian(sh.k, sh.n, &rng);
      PackedMatrix p;
      p.PackFrom(b);

      Matrix c_ref(sh.m, sh.n), c_pack(sh.m, sh.n);
      t->matmul_range(a, b, &c_ref, 0, sh.m, false);
      t->matmul_packed_range(a, p, &c_pack, 0, sh.m, false);
      for (size_t i = 0; i < c_ref.size(); ++i) {
        ASSERT_EQ(c_ref.data()[i], c_pack.data()[i])
            << t->name << " " << sh.m << "x" << sh.k << "x" << sh.n
            << " flat " << i;
      }

      // Accumulate path from an identical prior.
      Matrix acc_ref = Matrix::Ones(sh.m, sh.n);
      Matrix acc_pack = Matrix::Ones(sh.m, sh.n);
      t->matmul_range(a, b, &acc_ref, 0, sh.m, true);
      t->matmul_packed_range(a, p, &acc_pack, 0, sh.m, true);
      for (size_t i = 0; i < acc_ref.size(); ++i) {
        ASSERT_EQ(acc_ref.data()[i], acc_pack.data()[i])
            << t->name << " acc " << sh.m << "x" << sh.k << "x" << sh.n;
      }

      // Fused epilogue, bias present and absent, both activations.
      std::vector<float> bias(sh.n);
      for (size_t j = 0; j < sh.n; ++j) {
        bias[j] = 0.25f * static_cast<float>(rng.Uniform() - 0.5);
      }
      for (const float* bp : {static_cast<const float*>(nullptr),
                              static_cast<const float*>(bias.data())}) {
        for (bool relu : {false, true}) {
          Matrix f_ref(sh.m, sh.n), f_pack(sh.m, sh.n);
          t->matmul_bias_act_range(a, b, &f_ref, 0, sh.m, bp, relu);
          t->matmul_packed_bias_act_range(a, p, &f_pack, 0, sh.m, bp, relu);
          for (size_t i = 0; i < f_ref.size(); ++i) {
            ASSERT_EQ(f_ref.data()[i], f_pack.data()[i])
                << t->name << " fused " << sh.m << "x" << sh.k << "x"
                << sh.n << " relu=" << relu << " bias=" << (bp != nullptr);
          }
        }
      }
    }
  }
}

TEST(PackedGemmTest, PackedRangeSubsetMatchesFullRows) {
  // Row-range calls (the parallel wrapper's unit) must write exactly the
  // requested rows, identically to the full-range call.
  for (const KernelTable* t : AllBackends()) {
    Rng rng(304);
    const size_t m = 23, k = 37, n = 29;
    const Matrix a = Matrix::Gaussian(m, k, &rng);
    const Matrix b = Matrix::Gaussian(k, n, &rng);
    PackedMatrix p;
    p.PackFrom(b);
    Matrix full(m, n), part(m, n);
    t->matmul_packed_range(a, p, &full, 0, m, false);
    t->matmul_packed_range(a, p, &part, 0, 9, false);
    t->matmul_packed_range(a, p, &part, 9, m, false);
    for (size_t i = 0; i < full.size(); ++i) {
      ASSERT_EQ(full.data()[i], part.data()[i]) << t->name << " flat " << i;
    }
  }
}

TEST(PackedGemmTest, Bf16KernelWithinToleranceOfFp32PerBackend) {
  for (const KernelTable* t : AllBackends()) {
    Rng rng(305);
    for (const Shape& sh : kGemmShapes) {
      const Matrix a = Matrix::Gaussian(sh.m, sh.k, &rng);
      const Matrix b = Matrix::Gaussian(sh.k, sh.n, &rng);
      PackedMatrix16 p16;
      p16.PackFrom(b);
      std::vector<float> bias(sh.n);
      for (size_t j = 0; j < sh.n; ++j) {
        bias[j] = 0.25f * static_cast<float>(rng.Uniform() - 0.5);
      }
      Matrix c32(sh.m, sh.n), c16(sh.m, sh.n);
      t->matmul_bias_act_range(a, b, &c32, 0, sh.m, bias.data(), true);
      t->matmul_packed16_bias_act_range(a, p16, &c16, 0, sh.m, bias.data(),
                                        true);
      for (size_t i = 0; i < sh.m; ++i) {
        double mass = 0.0;
        for (size_t kk = 0; kk < sh.k; ++kk) {
          mass += std::fabs(static_cast<double>(a(i, kk)));
        }
        for (size_t j = 0; j < sh.n; ++j) {
          // Each stored B element errs by <= 2^-9 relative; the dot error
          // is bounded by the |a|-mass times the largest |b| error.
          const double tol = mass * (3.0 / 512.0) + 1e-6;
          ASSERT_NEAR(c32(i, j), c16(i, j), tol)
              << t->name << " " << sh.m << "x" << sh.k << "x" << sh.n
              << " at (" << i << "," << j << ")";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end SLIM read-path contracts.
// ---------------------------------------------------------------------------

SlimBatchInput MakeBatch(size_t b, size_t k, size_t dv, double drift,
                         Rng* rng) {
  SlimBatchInput input;
  input.node_feats = Matrix::Gaussian(b, dv, rng);
  input.neighbor_feats = Matrix::Gaussian(b * k, dv, rng);
  // Synthetic drift: a slowly moving mean shifts features across the
  // batch, as in the robustness evals.
  for (size_t i = 0; i < b; ++i) {
    const float shift =
        static_cast<float>(drift * static_cast<double>(i) / b);
    for (size_t j = 0; j < dv; ++j) input.node_feats(i, j) += shift;
  }
  input.time_deltas.resize(b * k);
  for (size_t i = 0; i < b * k; ++i) {
    input.time_deltas[i] = rng->Uniform() * 10.0;
  }
  input.mask = Matrix::Ones(b, k);
  input.edge_weights.assign(b * k, 1.0f);
  return input;
}

/// Labels correlated with the feature mean, so the trained model's scores
/// carry real AUC signal for the parity check.
std::vector<int> MakeLabels(const SlimBatchInput& input) {
  std::vector<int> labels(input.node_feats.rows());
  for (size_t i = 0; i < labels.size(); ++i) {
    float s = 0.0f;
    for (size_t j = 0; j < input.node_feats.cols(); ++j) {
      s += input.node_feats(i, j);
    }
    labels[i] = s > 0.0f ? 1 : 0;
  }
  return labels;
}

std::vector<double> AnomalyScores(const Matrix& out) {
  std::vector<double> scores(out.rows());
  for (size_t i = 0; i < out.rows(); ++i) {
    scores[i] = static_cast<double>(out(i, 1)) - out(i, 0);
  }
  return scores;
}

TEST(PackedGemmTest, SlimPredictPackedBitEqualsUnpackedPerBackend) {
  SlimOptions opts;
  opts.feature_dim = 24;
  opts.hidden_dim = 48;
  opts.k_recent = 5;
  opts.dropout = 0.0f;
  Rng data_rng(71);
  const SlimBatchInput input = MakeBatch(64, 5, 24, 1.0, &data_rng);

  std::vector<const char*> backends = {"scalar"};
  if (HaveAvx2()) backends.push_back("avx2");
  if (HaveAvx512()) backends.push_back("avx512");
  for (const char* name : backends) {
    ASSERT_TRUE(SetKernelBackendForTesting(name));
    Rng rng(42);
    SlimModel model(opts, &rng);
    SlimForwardScratch scratch;

    SetGemmPackForTesting(false);
    const Matrix unpacked = model.PredictConst(input, &scratch);
    SetGemmPackForTesting(true);
    const Matrix packed = model.PredictConst(input, &scratch);
    ASSERT_EQ(unpacked.size(), packed.size());
    for (size_t i = 0; i < unpacked.size(); ++i) {
      ASSERT_EQ(unpacked.data()[i], packed.data()[i])
          << name << " flat " << i;
    }
  }
  SetGemmPackForTesting(true);
  ASSERT_TRUE(SetKernelBackendForTesting("auto"));
}

TEST(PackedGemmTest, Bf16ReplicaAucParityOnSyntheticDrift) {
  SlimOptions opts;
  opts.feature_dim = 24;
  opts.hidden_dim = 48;
  opts.k_recent = 5;
  opts.dropout = 0.0f;
  Rng rng(43), data_rng(72);
  SlimModel model(opts, &rng);
  model.SetTraining(true);

  // Train on the drifting synthetic task until the scores are informative.
  for (int step = 0; step < 30; ++step) {
    const SlimBatchInput batch = MakeBatch(96, 5, 24, 1.5, &data_rng);
    model.TrainStep(batch, MakeLabels(batch));
  }
  model.SetTraining(false);

  const SlimBatchInput eval = MakeBatch(256, 5, 24, 1.5, &data_rng);
  const std::vector<int> labels = MakeLabels(eval);
  SlimForwardScratch scratch;

  const std::vector<double> s32 =
      AnomalyScores(model.PredictConst(eval, &scratch));
  model.SetReplicaPrecisionBf16(true);
  const std::vector<double> s16 =
      AnomalyScores(model.PredictConst(eval, &scratch));
  model.SetReplicaPrecisionBf16(false);

  const double auc32 = AucScore(s32, labels);
  const double auc16 = AucScore(s16, labels);
  // The trained model must actually separate the classes, or parity is
  // vacuous.
  ASSERT_GT(auc32, 0.8) << "synthetic task not learned; test is vacuous";
  EXPECT_NEAR(auc32, auc16, 1e-3);
}

TEST(PackedGemmTest, Bf16ReplicaHalvesResidentWeightBytes) {
  SlimOptions opts;
  opts.feature_dim = 32;
  opts.hidden_dim = 64;
  Rng rng(44);
  SlimModel model(opts, &rng);
  const size_t fp32_bytes = model.PackedWeightBytes();
  ASSERT_GT(fp32_bytes, 0u);
  model.SetReplicaPrecisionBf16(true);
  const size_t bf16_bytes = model.PackedWeightBytes();
  // Identical pack geometry at half the element width: exactly half.
  EXPECT_EQ(bf16_bytes * 2, fp32_bytes);
}

}  // namespace
}  // namespace splash
