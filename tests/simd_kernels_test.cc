// Copyright 2026 The SPLASH Reproduction Authors.
//
// Backend-equivalence suite for the runtime-dispatched kernel layer
// (DESIGN.md §6): for every kernel in the table and a shape sweep that
// includes ragged tails, each SIMD backend (avx2, avx512) must match the
// scalar reference within a 4-ulp relative tolerance (relative to the
// element's absolute dot mass, so cancellation does not inflate the bound
// into meaningless territory). Also pins the dispatch-resolution logic, the
// padded-layout bit-equality (padding must never change arithmetic), and
// the scalar-backend bit-equality of the fused epilogue vs the three-pass
// sequence it replaced.

#include "tensor/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/rng.h"

namespace splash {
namespace {

const size_t kDims[] = {1, 3, 8, 17, 33, 128};

bool HaveAvx2() {
  return CpuSupportsAvx2Fma() && GetAvx2Kernels() != nullptr;
}

bool HaveAvx512() {
  return CpuSupportsAvx512() && GetAvx512Kernels() != nullptr;
}

/// Every SIMD backend this host can run; equivalence tests sweep them all
/// against the scalar reference.
std::vector<const KernelTable*> SimdBackends() {
  std::vector<const KernelTable*> v;
  if (HaveAvx2()) v.push_back(GetAvx2Kernels());
  if (HaveAvx512()) v.push_back(GetAvx512Kernels());
  return v;
}

/// |got - want| <= 4 ulp relative to the element's absolute accumulation
/// mass: both backends round a reordering of the same |mass|-sized sum, so
/// their difference is bounded by a few ulp of that mass even when the
/// signed result cancels to near zero.
void ExpectUlpClose(float want, float got, double abs_mass,
                    const char* what, size_t i, size_t j) {
  const double eps = std::numeric_limits<float>::epsilon();
  const double tol =
      4.0 * eps * std::max(abs_mass, static_cast<double>(std::fabs(want)));
  EXPECT_NEAR(want, got, tol) << what << " at (" << i << "," << j << ")";
}

struct GemmCase {
  Matrix a, b, c_scalar, c_simd;
  Matrix abs_mass;  // per-element sum of |a||b| terms, the tolerance scale
};

/// Compares two full output matrices against the per-element mass bound.
void CompareOutputs(const GemmCase& g, const char* what) {
  ASSERT_EQ(g.c_scalar.rows(), g.c_simd.rows());
  ASSERT_EQ(g.c_scalar.cols(), g.c_simd.cols());
  for (size_t i = 0; i < g.c_scalar.rows(); ++i) {
    for (size_t j = 0; j < g.c_scalar.cols(); ++j) {
      ExpectUlpClose(g.c_scalar(i, j), g.c_simd(i, j), g.abs_mass(i, j),
                     what, i, j);
    }
  }
}

/// Fills abs_mass for c = a * b (a: MxK, b: KxN).
void FillMassAB(GemmCase* g) {
  const size_t m = g->a.rows(), k = g->a.cols(), n = g->b.cols();
  g->abs_mass = Matrix(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double mass = 0.0;
      for (size_t kk = 0; kk < k; ++kk) {
        mass += std::fabs(static_cast<double>(g->a(i, kk)) * g->b(kk, j));
      }
      g->abs_mass(i, j) = static_cast<float>(mass);
    }
  }
}

TEST(SimdKernelsTest, MatMulScalarVsSimdAcrossShapeSweep) {
  const auto backends = SimdBackends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const KernelTable* s = GetScalarKernels();
  for (const KernelTable* x : backends) {
    Rng rng(101);
    for (size_t m : kDims) {
      for (size_t k : kDims) {
        for (size_t n : kDims) {
          GemmCase g;
          g.a = Matrix::Gaussian(m, k, &rng);
          g.b = Matrix::Gaussian(k, n, &rng);
          g.c_scalar = Matrix(m, n);
          g.c_simd = Matrix(m, n);
          FillMassAB(&g);
          s->matmul_range(g.a, g.b, &g.c_scalar, 0, m, false);
          x->matmul_range(g.a, g.b, &g.c_simd, 0, m, false);
          CompareOutputs(g, x->name);

          // Accumulate path: both sides start from the same prior.
          Matrix acc_s = Matrix::Ones(m, n), acc_x = Matrix::Ones(m, n);
          s->matmul_range(g.a, g.b, &acc_s, 0, m, true);
          x->matmul_range(g.a, g.b, &acc_x, 0, m, true);
          g.c_scalar = acc_s;
          g.c_simd = acc_x;
          CompareOutputs(g, "MatMul+acc");
        }
      }
    }
  }
}

TEST(SimdKernelsTest, MatMulRaggedTailSweep1To31) {
  // Every masked-tail width both backends can hit: n (column-tail masks),
  // k (reduction-tail masks in TransB dots), and small m (row-block
  // remainders) from 1 to 31 — covers all __mmask16 and avx2 tail values.
  const auto backends = SimdBackends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const KernelTable* s = GetScalarKernels();
  for (const KernelTable* x : backends) {
    Rng rng(108);
    std::vector<float> bias;
    for (size_t n = 1; n <= 31; ++n) {
      GemmCase g;
      g.a = Matrix::Gaussian(9, 19, &rng);
      g.b = Matrix::Gaussian(19, n, &rng);
      g.c_scalar = Matrix(9, n);
      g.c_simd = Matrix(9, n);
      FillMassAB(&g);
      s->matmul_range(g.a, g.b, &g.c_scalar, 0, 9, false);
      x->matmul_range(g.a, g.b, &g.c_simd, 0, 9, false);
      CompareOutputs(g, x->name);

      bias.assign(n, 0.0f);
      for (size_t j = 0; j < n; ++j) {
        bias[j] = 0.25f * static_cast<float>(rng.Uniform() - 0.5);
        g.abs_mass(0, j) += std::fabs(bias[j]);
      }
      for (size_t i = 1; i < 9; ++i) {
        for (size_t j = 0; j < n; ++j) {
          g.abs_mass(i, j) += std::fabs(bias[j]);
        }
      }
      s->matmul_bias_act_range(g.a, g.b, &g.c_scalar, 0, 9, bias.data(),
                               true);
      x->matmul_bias_act_range(g.a, g.b, &g.c_simd, 0, 9, bias.data(), true);
      CompareOutputs(g, "fused tail");
    }
    for (size_t k = 1; k <= 31; ++k) {
      GemmCase g;
      g.a = Matrix::Gaussian(6, k, &rng);
      g.b = Matrix::Gaussian(23, k, &rng);  // NxK for TransB
      g.c_scalar = Matrix(6, 23);
      g.c_simd = Matrix(6, 23);
      g.abs_mass = Matrix(6, 23);
      for (size_t i = 0; i < 6; ++i) {
        for (size_t j = 0; j < 23; ++j) {
          double mass = 0.0;
          for (size_t kk = 0; kk < k; ++kk) {
            mass += std::fabs(static_cast<double>(g.a(i, kk)) * g.b(j, kk));
          }
          g.abs_mass(i, j) = static_cast<float>(mass);
        }
      }
      s->matmul_transb_range(g.a, g.b, &g.c_scalar, 0, 6, false);
      x->matmul_transb_range(g.a, g.b, &g.c_simd, 0, 6, false);
      CompareOutputs(g, "transb k-tail");
    }
    for (size_t m = 1; m <= 31; ++m) {
      GemmCase g;
      g.a = Matrix::Gaussian(m, 13, &rng);
      g.b = Matrix::Gaussian(13, 21, &rng);
      g.c_scalar = Matrix(m, 21);
      g.c_simd = Matrix(m, 21);
      FillMassAB(&g);
      s->matmul_range(g.a, g.b, &g.c_scalar, 0, m, false);
      x->matmul_range(g.a, g.b, &g.c_simd, 0, m, false);
      CompareOutputs(g, "row-block tail");
    }
  }
}

TEST(SimdKernelsTest, MatMulTransBScalarVsSimdAcrossShapeSweep) {
  const auto backends = SimdBackends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const KernelTable* s = GetScalarKernels();
  for (const KernelTable* x : backends) {
    Rng rng(102);
    for (size_t m : kDims) {
      for (size_t k : kDims) {
        for (size_t n : kDims) {
          GemmCase g;
          g.a = Matrix::Gaussian(m, k, &rng);
          g.b = Matrix::Gaussian(n, k, &rng);  // NxK
          g.c_scalar = Matrix(m, n);
          g.c_simd = Matrix(m, n);
          g.abs_mass = Matrix(m, n);
          for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < n; ++j) {
              double mass = 0.0;
              for (size_t kk = 0; kk < k; ++kk) {
                mass +=
                    std::fabs(static_cast<double>(g.a(i, kk)) * g.b(j, kk));
              }
              g.abs_mass(i, j) = static_cast<float>(mass);
            }
          }
          s->matmul_transb_range(g.a, g.b, &g.c_scalar, 0, m, false);
          x->matmul_transb_range(g.a, g.b, &g.c_simd, 0, m, false);
          CompareOutputs(g, "MatMulTransB");
        }
      }
    }
  }
}

TEST(SimdKernelsTest, MatMulTransAScalarVsSimdAcrossShapeSweep) {
  const auto backends = SimdBackends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const KernelTable* s = GetScalarKernels();
  for (const KernelTable* x : backends) {
    Rng rng(103);
    for (size_t r : kDims) {
      for (size_t m : kDims) {
        for (size_t n : kDims) {
          GemmCase g;
          g.a = Matrix::Gaussian(r, m, &rng);  // RxM
          g.b = Matrix::Gaussian(r, n, &rng);  // RxN
          g.c_scalar = Matrix(m, n);           // pre-zeroed (range contract)
          g.c_simd = Matrix(m, n);
          g.abs_mass = Matrix(m, n);
          for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < n; ++j) {
              double mass = 0.0;
              for (size_t rr = 0; rr < r; ++rr) {
                mass +=
                    std::fabs(static_cast<double>(g.a(rr, i)) * g.b(rr, j));
              }
              g.abs_mass(i, j) = static_cast<float>(mass);
            }
          }
          s->matmul_transa_range(g.a, g.b, &g.c_scalar, 0, r);
          x->matmul_transa_range(g.a, g.b, &g.c_simd, 0, r);
          CompareOutputs(g, "MatMulTransA");

          // Output-partition form must match the serial form bit-exactly
          // within each backend (the parallel wrapper relies on it).
          Matrix part(m, n);
          const size_t mid = m / 2;
          x->matmul_transa_output_range(g.a, g.b, &part, 0, mid, false);
          x->matmul_transa_output_range(g.a, g.b, &part, mid, m, false);
          for (size_t i = 0; i < m; ++i) {
            for (size_t j = 0; j < n; ++j) {
              ASSERT_EQ(part(i, j), g.c_simd(i, j))
                  << x->name << " output-range mismatch at (" << i << ","
                  << j << ")";
            }
          }
        }
      }
    }
  }
}

TEST(SimdKernelsTest, FusedEpilogueMatchesThreePassScalarBitExact) {
  // The scalar fused kernel must be bit-equal to GEMM + bias + ReLU run as
  // separate passes — that is what keeps pre-fusion oracles valid.
  const KernelTable* s = GetScalarKernels();
  Rng rng(104);
  for (size_t m : {3, 17, 64}) {
    for (size_t n : {1, 5, 48}) {
      const Matrix a = Matrix::Gaussian(m, 32, &rng);
      const Matrix b = Matrix::Gaussian(32, n, &rng);
      std::vector<float> bias(n);
      for (size_t j = 0; j < n; ++j) bias[j] = 0.1f * static_cast<float>(j);

      Matrix fused(m, n);
      s->matmul_bias_act_range(a, b, &fused, 0, m, bias.data(), true);

      Matrix ref(m, n);
      s->matmul_range(a, b, &ref, 0, m, false);
      s->add_row_vector(&ref, bias.data());
      s->relu_inplace(&ref);
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
          ASSERT_EQ(fused(i, j), ref(i, j)) << "(" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(SimdKernelsTest, FusedEpilogueScalarVsSimd) {
  const auto backends = SimdBackends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const KernelTable* s = GetScalarKernels();
  for (const KernelTable* x : backends) {
    Rng rng(105);
    for (size_t m : kDims) {
      for (size_t n : kDims) {
        const size_t k = 33;
        GemmCase g;
        g.a = Matrix::Gaussian(m, k, &rng);
        g.b = Matrix::Gaussian(k, n, &rng);
        std::vector<float> bias(n);
        for (size_t j = 0; j < n; ++j) {
          bias[j] = 0.25f * static_cast<float>(rng.Uniform() - 0.5);
        }
        g.abs_mass = Matrix(m, n);
        for (size_t i = 0; i < m; ++i) {
          for (size_t j = 0; j < n; ++j) {
            double mass = std::fabs(static_cast<double>(bias[j]));
            for (size_t kk = 0; kk < k; ++kk) {
              mass += std::fabs(static_cast<double>(g.a(i, kk)) * g.b(kk, j));
            }
            g.abs_mass(i, j) = static_cast<float>(mass);
          }
        }
        for (bool relu : {false, true}) {
          g.c_scalar = Matrix(m, n);
          g.c_simd = Matrix(m, n);
          s->matmul_bias_act_range(g.a, g.b, &g.c_scalar, 0, m, bias.data(),
                                   relu);
          x->matmul_bias_act_range(g.a, g.b, &g.c_simd, 0, m, bias.data(),
                                   relu);
          CompareOutputs(g, relu ? "fused+relu" : "fused");
        }
      }
    }
  }
}

TEST(SimdKernelsTest, VectorKernelsScalarVsSimd) {
  const auto backends = SimdBackends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const KernelTable* s = GetScalarKernels();
  const double eps = std::numeric_limits<float>::epsilon();
  for (const KernelTable* x : backends) {
    Rng rng(106);
    for (size_t n : kDims) {
      // axpy
      std::vector<float> xs(n), ys(n), yx(n);
      for (size_t i = 0; i < n; ++i) {
        xs[i] = static_cast<float>(rng.Uniform() - 0.5);
        ys[i] = static_cast<float>(rng.Uniform() - 0.5);
        yx[i] = ys[i];
      }
      s->axpy(0.7f, xs.data(), ys.data(), n);
      x->axpy(0.7f, xs.data(), yx.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(ys[i], yx[i], 4.0 * eps * (std::fabs(ys[i]) + 1.0))
            << x->name << " axpy[" << i << "]";
      }

      // add_row_vector + relu + column sums on an 17 x n matrix
      Matrix ms = Matrix::Gaussian(17, n, &rng);
      Matrix mx = ms;
      std::vector<float> bias(n, -0.05f);
      s->add_row_vector(&ms, bias.data());
      x->add_row_vector(&mx, bias.data());
      s->relu_inplace(&ms);
      x->relu_inplace(&mx);
      for (size_t i = 0; i < 17; ++i) {
        for (size_t j = 0; j < n; ++j) {
          ASSERT_EQ(ms(i, j), mx(i, j))
              << x->name << " rowvec/relu (" << i << "," << j << ")";
        }
      }
      std::vector<float> cs(n), cx(n);
      s->column_sums_range(ms, cs.data(), 2, 15, false);
      x->column_sums_range(mx, cx.data(), 2, 15, false);
      for (size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(cs[j], cx[j], 4.0 * eps * (std::fabs(cs[j]) + 13.0))
            << x->name << " colsum[" << j << "]";
      }

      // adam
      std::vector<float> w1(n), w2(n), gg(n), m1(n), m2(n), v1(n), v2(n);
      for (size_t i = 0; i < n; ++i) {
        w1[i] = w2[i] = static_cast<float>(rng.Uniform() - 0.5);
        gg[i] = static_cast<float>(rng.Uniform() - 0.5);
        m1[i] = m2[i] = static_cast<float>(rng.Uniform() - 0.5);
        v1[i] = v2[i] = static_cast<float>(rng.Uniform());
      }
      s->adam_update(w1.data(), gg.data(), m1.data(), v1.data(), n, 1e-3f,
                     0.9f, 0.999f, 1e-8f);
      x->adam_update(w2.data(), gg.data(), m2.data(), v2.data(), n, 1e-3f,
                     0.9f, 0.999f, 1e-8f);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(w1[i], w2[i], 8.0 * eps * (std::fabs(w1[i]) + 1e-3))
            << x->name << " adam w[" << i << "]";
        EXPECT_NEAR(v1[i], v2[i], 8.0 * eps * (std::fabs(v1[i]) + 1e-6))
            << x->name << " adam v[" << i << "]";
      }
    }
  }
}

TEST(SimdKernelsTest, SincosEncodeScalarVsSimd) {
  const auto backends = SimdBackends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend on this host";
  const KernelTable* s = GetScalarKernels();
  // x values spanning the log-compressed delta/degree range (log1p of
  // [0, 1e9] stays under ~21), decays from both call sites, dims covering
  // full vectors, masked pair tails, and odd trailing lanes — including
  // the 16-lane boundary cases of the avx512 interleave.
  const float xs[] = {0.0f, 1e-4f, 0.3f, 1.0f, 3.1415926f, 7.5f, 20.7f};
  const float decays[] = {0.5f, 0.6f, 0.9f};
  for (const KernelTable* x : backends) {
    for (float xv : xs) {
      for (float decay : decays) {
        for (size_t dim : {1, 2, 7, 8, 16, 17, 31, 32, 33, 63, 64, 65}) {
          std::vector<float> a(dim, -9.0f), b(dim, -9.0f);
          s->sincos_encode(xv, decay, a.data(), dim);
          x->sincos_encode(xv, decay, b.data(), dim);
          for (size_t j = 0; j < dim; ++j) {
            // |sin|,|cos| <= 1: the polynomial backends are within ~1e-7
            // absolute of libm on this range.
            EXPECT_NEAR(a[j], b[j], 1e-6f)
                << x->name << " x=" << xv << " decay=" << decay
                << " dim=" << dim << " j=" << j;
          }
        }
      }
    }
  }
}

TEST(SimdKernelsTest, PaddedOperandsBitEqualContiguousWithinBackend) {
  // Padding changes layout, never arithmetic: each backend must produce
  // bit-identical results for padded and contiguous operands.
  Rng rng(107);
  std::vector<const KernelTable*> tables = {GetScalarKernels()};
  for (const KernelTable* t : SimdBackends()) tables.push_back(t);
  for (const KernelTable* t : tables) {
    for (size_t n : {2, 7, 16, 33}) {
      const size_t m = 19, k = 21;
      const Matrix a = Matrix::Gaussian(m, k, &rng);
      const Matrix b = Matrix::Gaussian(k, n, &rng);
      Matrix ap, bp;
      ap.ResizePadded(m, k);
      bp.ResizePadded(k, n);
      for (size_t i = 0; i < m; ++i) {
        std::memcpy(ap.Row(i), a.Row(i), k * sizeof(float));
      }
      for (size_t i = 0; i < k; ++i) {
        std::memcpy(bp.Row(i), b.Row(i), n * sizeof(float));
      }
      ASSERT_GE(ap.stride(), ap.cols());
      Matrix c(m, n);
      Matrix cp;
      cp.ResizePadded(m, n);
      t->matmul_range(a, b, &c, 0, m, false);
      t->matmul_range(ap, bp, &cp, 0, m, false);
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
          ASSERT_EQ(c(i, j), cp(i, j))
              << t->name << " padded (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(SimdKernelsTest, ResolveKernelChoiceTable) {
  // (env, cpu_has_avx2, avx2_compiled, cpu_has_avx512, avx512_compiled)
  // -> backend, every interesting cell.
  // auto / unset: widest available backend wins.
  EXPECT_STREQ(ResolveKernelChoice(nullptr, true, true, true, true),
               "avx512");
  EXPECT_STREQ(ResolveKernelChoice(nullptr, true, true, false, true), "avx2");
  EXPECT_STREQ(ResolveKernelChoice(nullptr, true, true, true, false), "avx2");
  EXPECT_STREQ(ResolveKernelChoice(nullptr, false, true, false, true),
               "scalar");
  EXPECT_STREQ(ResolveKernelChoice(nullptr, true, false, false, false),
               "scalar");
  EXPECT_STREQ(ResolveKernelChoice("auto", true, true, true, true),
               "avx512");
  EXPECT_STREQ(ResolveKernelChoice("auto", true, true, false, false),
               "avx2");
  EXPECT_STREQ(ResolveKernelChoice("auto", false, false, false, false),
               "scalar");
  EXPECT_STREQ(ResolveKernelChoice("", true, true, true, true), "avx512");
  // Explicit scalar always wins.
  EXPECT_STREQ(ResolveKernelChoice("scalar", true, true, true, true),
               "scalar");
  // Explicit avx2 ignores avx512 availability; falls back to scalar.
  EXPECT_STREQ(ResolveKernelChoice("avx2", true, true, true, true), "avx2");
  EXPECT_STREQ(ResolveKernelChoice("avx2", false, true, true, true),
               "scalar");
  EXPECT_STREQ(ResolveKernelChoice("avx2", true, false, true, true),
               "scalar");
  // Explicit avx512 falls back to the best remaining backend.
  EXPECT_STREQ(ResolveKernelChoice("avx512", true, true, true, true),
               "avx512");
  EXPECT_STREQ(ResolveKernelChoice("avx512", true, true, false, true),
               "avx2");
  EXPECT_STREQ(ResolveKernelChoice("avx512", true, true, true, false),
               "avx2");
  EXPECT_STREQ(ResolveKernelChoice("avx512", false, false, false, true),
               "scalar");
  // Unknown values resolve like auto.
  EXPECT_STREQ(ResolveKernelChoice("bogus", true, true, true, true),
               "avx512");
  EXPECT_STREQ(ResolveKernelChoice("bogus", true, true, false, false),
               "avx2");
  EXPECT_STREQ(ResolveKernelChoice("bogus", false, true, false, true),
               "scalar");
}

TEST(SimdKernelsTest, SetKernelBackendForTestingSwitchesTable) {
  ASSERT_TRUE(SetKernelBackendForTesting("scalar"));
  EXPECT_STREQ(KernelBackendName(), "scalar");
  if (HaveAvx2()) {
    ASSERT_TRUE(SetKernelBackendForTesting("avx2"));
    EXPECT_STREQ(KernelBackendName(), "avx2");
  }
  if (HaveAvx512()) {
    ASSERT_TRUE(SetKernelBackendForTesting("avx512"));
    EXPECT_STREQ(KernelBackendName(), "avx512");
  }
  EXPECT_FALSE(SetKernelBackendForTesting("neon"));
  // Restore the env-resolved default for whatever runs next.
  ASSERT_TRUE(SetKernelBackendForTesting("auto"));
}

}  // namespace
}  // namespace splash
