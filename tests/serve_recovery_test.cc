// Copyright 2026 The SPLASH Reproduction Authors.
//
// Recovery oracle of the durable serving layer (ISSUE 6):
//
//   crash at ANY point -> RecoverOrStart -> state is BIT-IDENTICAL to an
//   uninterrupted run truncated at the recovered watermark.
//
// "State" is the full predictor blob (SLIM params + Adam moments, neighbor
// rings + cursors, augmenter caches + degree counts, RNG stream position),
// compared byte-for-byte via SerializeState. The reference is built by
// replaying the WAL history (gc_wal_on_checkpoint=false keeps it complete)
// through a fresh predictor with the recorded micro-batch boundaries — the
// same contract serve_service_test pins for the live snapshot path.
//
// Crash points are exercised for real: each parameterized case forks a
// child, arms ONE compiled-in crash point (serve/fault_injection.h), and
// drives ingest until the child dies with _exit(137) exactly as kill -9
// would (no destructors, no flushes). The parent then recovers from the
// crashed data_dir and checks the oracle. Fork safety: the global pool is
// pinned to 1 thread (spawns no workers) and no SplashService exists in
// the parent when it forks (PipelineThread starts a thread at service
// construction).

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "core/splash.h"
#include "datasets/synthetic.h"
#include "eval/trainer.h"
#include "runtime/thread_pool.h"
#include "serve/checkpoint.h"
#include "serve/fault_injection.h"
#include "serve/service.h"
#include "serve/wal.h"

namespace splash {
namespace {

/// Sentinel for "any recovered watermark is acceptable" (crash cases: the
/// crash lands at a point the test does not control exactly).
constexpr uint64_t kAnySeq = ~uint64_t{0};

class ServeRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One global thread == zero spawned workers: the process stays
    // single-threaded between services, which makes fork() safe.
    ThreadPool::SetGlobalThreads(1);
    DisarmAllCrashPoints();
  }
  void TearDown() override { DisarmAllCrashPoints(); }
};

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/splash_recovery_test_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    if (!path_.empty() && path_.rfind("/tmp/", 0) == 0) {
      const std::string cmd = "rm -rf '" + path_ + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Dataset MakeWarmup() {
  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 120;
  cfg.num_edges = 2400;
  cfg.num_communities = 3;
  cfg.intra_prob = 0.9;
  cfg.query_rate = 0.25;
  cfg.late_arrival_frac = 0.2;
  cfg.seed = 33;
  return GenerateSynthetic(cfg);
}

SplashOptions RecoveryModelOptions(float dropout = 0.0f) {
  SplashOptions opts;
  opts.mode = SplashMode::kForceStructural;  // no selection pass: fast
  opts.augment.feature_dim = 12;
  opts.slim.hidden_dim = 24;
  opts.slim.time_dim = 8;
  opts.slim.k_recent = 5;
  opts.slim.dropout = dropout;
  opts.seed = 7;
  return opts;
}

TrainerOptions SmallFit() {
  TrainerOptions fit;
  fit.epochs = 2;
  fit.batch_size = 64;
  fit.early_stopping = false;
  fit.num_threads = 1;
  fit.pipeline_depth = 0;
  return fit;
}

SplashServiceOptions DurableOptions(const std::string& data_dir) {
  SplashServiceOptions opts;
  opts.microbatch_max_items = 24;
  opts.microbatch_max_delay_s = 0.0;  // apply as soon as anything is queued
  opts.queue_capacity = 256;
  opts.backpressure = BackpressurePolicy::kBlock;  // lossless
  opts.data_dir = data_dir;
  opts.wal_fsync = WalFsyncPolicy::kAlways;  // reach the before-fsync point
  opts.wal_group_records = 4;
  opts.checkpoint_interval_batches = 4;
  opts.checkpoint_on_stop = true;
  opts.gc_wal_on_checkpoint = false;  // keep full history for the oracle
  return opts;
}

std::vector<TemporalEdge> LiveEdges(const Dataset& ds,
                                    const ChronoSplit& split) {
  std::vector<TemporalEdge> live;
  for (size_t i = 0; i < ds.stream.size(); ++i) {
    if (ds.stream[i].time > split.val_end_time) live.push_back(ds.stream[i]);
  }
  return live;
}

/// Feeds `edges[begin, end)` with a labeled train submission every 7th
/// item (the online-learning traffic shape). kBlock means nothing drops.
void FeedLive(SplashService* svc, const std::vector<TemporalEdge>& edges,
              size_t begin, size_t end) {
  for (size_t i = begin; i < end && i < edges.size(); ++i) {
    svc->IngestEdge(edges[i]);
    if (i % 7 == 3) {
      PropertyQuery q;
      q.node = edges[i].dst;
      q.time = edges[i].time;
      q.class_label = static_cast<int>(i % 3);
      svc->SubmitTrain(q);
    }
  }
}

/// The contiguous, CRC-valid WAL history from batch 0 across all retained
/// segments — the same skip/contiguity rule RecoverOrStart applies, run
/// from the very beginning instead of from a checkpoint cursor.
std::vector<WalRecord> CollectFullHistory(const std::string& dir) {
  std::vector<WalRecord> out;
  uint64_t next_batch = 0;
  uint64_t next_seq = 0;
  for (const WalSegmentInfo& seg : ListWalSegments(dir)) {
    WalScan scan;
    if (!ScanWalFile(seg.path, &scan).ok() || !scan.header_ok) continue;
    for (WalRecord& rec : scan.records) {
      if (rec.batch_index < next_batch) continue;
      if (rec.batch_index != next_batch || rec.seq_begin != next_seq) {
        return out;  // gap: stop, like recovery does
      }
      next_seq = rec.seq_end;
      ++next_batch;
      out.push_back(std::move(rec));
    }
  }
  return out;
}

/// Uninterrupted-run reference: fresh predictor through the identical
/// deterministic Prepare/Fit, then the recorded micro-batch sequence.
std::unique_ptr<SplashPredictor> MakeReference(
    const Dataset& ds, const ChronoSplit& split, const SplashOptions& model,
    const std::vector<WalRecord>& records, EdgeStream* ref_log) {
  auto ref = std::make_unique<SplashPredictor>(model);
  EXPECT_TRUE(ref->Prepare(ds, split).ok());
  TrainerOptions fit = SmallFit();
  StreamTrainer trainer(fit);
  trainer.Fit(ref.get(), ds, split);
  ref->SetTraining(false);
  ref->ResetState();

  *ref_log = EdgeStream();
  ref_log->EnsureNodeCapacity(ds.stream.num_nodes());
  for (const WalRecord& rec : records) {
    const size_t begin = ref_log->size();
    for (const TemporalEdge& e : rec.edges) {
      EXPECT_TRUE(ref_log->Append(e).ok());  // WAL stores post-clamp edges
    }
    ref->ObserveBulk(*ref_log, begin, ref_log->size());
    if (!rec.train.empty()) {
      ref->SetTraining(true);
      ref->StageBatch(rec.train);
      ref->TrainStaged();
      ref->SetTraining(false);
    }
  }
  return ref;
}

void ExpectStateBytesEqual(const SplashService& svc,
                           const SplashPredictor& ref, const char* what) {
  ByteWriter a;
  svc.SerializePredictorState(&a);
  ByteWriter b;
  ref.SerializeState(&b);
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.buffer().data(), b.buffer().data(), a.size()))
      << what;
}

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " element " << i;
  }
}

/// Recover in-process and run the full oracle against `data_dir`'s WAL
/// history: recovered predictor state bit-equals an uninterrupted replay,
/// the recovered ingest log matches edge for edge, and a probe query at
/// the recovered watermark bit-equals the reference's const query path.
void RecoverAndVerify(const std::string& data_dir, const SplashOptions& model,
                      uint64_t expect_seq) {
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);

  // Reference FIRST: RecoverOrStart writes a recovery checkpoint and
  // rotates the WAL, so read the pre-recovery history before touching it.
  const std::vector<WalRecord> history = CollectFullHistory(data_dir);
  EdgeStream ref_log;
  auto ref = MakeReference(ds, split, model, history, &ref_log);

  SplashService svc(model, DurableOptions(data_dir));
  TrainerOptions fit = SmallFit();
  const Status st = svc.RecoverOrStart(ds, split, &fit);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(svc.recovered_seq(), ref_log.size());
  if (expect_seq != kAnySeq) {
    EXPECT_EQ(svc.recovered_seq(), expect_seq);
  }
  EXPECT_FALSE(svc.degraded());

  // The recovered ingest log is the reference log, edge for edge.
  const EdgeStream& log = svc.ingest_log();
  ASSERT_EQ(log.size(), ref_log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    ASSERT_EQ(log[i].src, ref_log[i].src) << "edge " << i;
    ASSERT_EQ(log[i].dst, ref_log[i].dst) << "edge " << i;
    ASSERT_EQ(log[i].time, ref_log[i].time) << "edge " << i;
  }

  // Bit-exact predictor state: SLIM params, Adam moments, rings, degree
  // counts, RNG stream — everything SerializeState covers.
  ExpectStateBytesEqual(svc, *ref, "recovered state vs uninterrupted run");

  // PR-4 watermark oracle, post-recovery: a query answered at the
  // recovered watermark is bit-identical to the reference's const path.
  {
    ServeClient client(&svc);
    const std::vector<PropertyQuery> probe(ds.queries.end() - 32,
                                           ds.queries.end());
    const ServeResponse resp = client.Predict(probe);
    EXPECT_EQ(resp.watermark_seq, svc.recovered_seq());
    EXPECT_FALSE(resp.degraded);
    SplashQueryScratch scratch;
    const Matrix& want = ref->PredictBatchConst(probe, &scratch);
    ExpectBitEqual(want, resp.scores, "post-recovery probe");
  }
  svc.Stop();
}

// ---------------------------------------------------------------------------
// Clean-stop / no-crash recovery
// ---------------------------------------------------------------------------

TEST_F(ServeRecoveryTest, CleanStopThenRecoverIsBitExact) {
  TempDir dir;
  const SplashOptions model = RecoveryModelOptions();
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  ASSERT_GT(live.size(), 300u);

  {
    SplashService svc(model, DurableOptions(dir.path()));
    TrainerOptions fit = SmallFit();
    ASSERT_TRUE(svc.RecoverOrStart(ds, split, &fit).ok());
    EXPECT_FALSE(svc.recovered_from_checkpoint());
    EXPECT_EQ(svc.recovered_seq(), 0u);
    FeedLive(&svc, live, 0, 300);
    svc.Stop();  // drains + final checkpoint
    const ServeStats stats = svc.Stats();
    EXPECT_EQ(stats.counters.ingest_accepted, 300u);
    EXPECT_GT(stats.counters.wal_records, 0u);
    EXPECT_GT(stats.counters.checkpoints_written, 0u);
    EXPECT_EQ(stats.counters.wal_io_errors, 0u);
    EXPECT_FALSE(stats.counters.degraded);
  }
  RecoverAndVerify(dir.path(), model, 300u);
}

TEST_F(ServeRecoveryTest, RecoveryWithNoMidStreamCheckpointReplaysWholeWal) {
  TempDir dir;
  const SplashOptions model = RecoveryModelOptions();
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);

  {
    SplashServiceOptions opts = DurableOptions(dir.path());
    opts.checkpoint_interval_batches = 0;  // never mid-stream
    opts.checkpoint_on_stop = false;       // never at stop: WAL only
    SplashService svc(model, opts);
    TrainerOptions fit = SmallFit();
    ASSERT_TRUE(svc.RecoverOrStart(ds, split, &fit).ok());
    FeedLive(&svc, live, 0, 200);
    svc.Stop();
  }
  // The only checkpoint is the one recovery wrote at startup (seq 0);
  // every streamed batch lives exclusively in the WAL tail.
  RecoverAndVerify(dir.path(), model, 200u);
}

TEST_F(ServeRecoveryTest, ContinueAfterRecoveryStaysBitExact) {
  // The strongest stream-position check: run A, recover, run B, and the
  // final state must match one uninterrupted replay of A+B's recorded
  // batches. Dropout > 0 makes this fail loudly if the RNG stream or the
  // SLIM train-call counter came back wrong.
  TempDir dir;
  const SplashOptions model = RecoveryModelOptions(/*dropout=*/0.15f);
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  ASSERT_GT(live.size(), 400u);

  {
    SplashService svc(model, DurableOptions(dir.path()));
    TrainerOptions fit = SmallFit();
    ASSERT_TRUE(svc.RecoverOrStart(ds, split, &fit).ok());
    FeedLive(&svc, live, 0, 200);
    svc.Stop();
  }
  {
    SplashService svc(model, DurableOptions(dir.path()));
    TrainerOptions fit = SmallFit();
    ASSERT_TRUE(svc.RecoverOrStart(ds, split, &fit).ok());
    EXPECT_TRUE(svc.recovered_from_checkpoint());
    EXPECT_EQ(svc.recovered_seq(), 200u);
    FeedLive(&svc, live, 200, 400);
    svc.Stop();
  }
  RecoverAndVerify(dir.path(), model, 400u);
}

TEST_F(ServeRecoveryTest, WalHistoryGapRecoversDegraded) {
  TempDir dir;
  const SplashOptions model = RecoveryModelOptions();
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);

  {
    SplashService svc(model, DurableOptions(dir.path()));
    TrainerOptions fit = SmallFit();
    ASSERT_TRUE(svc.RecoverOrStart(ds, split, &fit).ok());
    FeedLive(&svc, live, 0, 250);
    svc.Stop();
  }
  // Lose every checkpoint AND a mid-history WAL segment: replay must start
  // from zero, hit the hole, and stop there. The contract: come up serving
  // at the pre-gap watermark, flagged degraded — never a hang, a crash, or
  // a silently divergent state.
  const auto segs = ListWalSegments(dir.path());
  ASSERT_GE(segs.size(), 3u) << "expected several rotated segments";
  for (uint64_t seq = 0; seq <= 250; ++seq) {
    ::unlink(CheckpointPath(dir.path(), seq).c_str());
  }
  ASSERT_EQ(::unlink(segs[1].path.c_str()), 0);

  SplashService svc(model, DurableOptions(dir.path()));
  TrainerOptions fit = SmallFit();
  ASSERT_TRUE(svc.RecoverOrStart(ds, split, &fit).ok());
  EXPECT_TRUE(svc.degraded());
  EXPECT_FALSE(svc.recovered_from_checkpoint());
  EXPECT_LT(svc.recovered_seq(), 250u);
  ServeClient client(&svc);
  const ServeResponse resp = client.PredictNode(3, ds.stream.max_time());
  EXPECT_TRUE(resp.degraded);
  EXPECT_EQ(resp.watermark_seq, svc.recovered_seq());
  const ServeStats stats = svc.Stats();
  EXPECT_TRUE(stats.counters.degraded);
  svc.Stop();
}

// ---------------------------------------------------------------------------
// Crash-point matrix: fork, arm, crash, recover, verify — for every
// compiled-in crash point.
// ---------------------------------------------------------------------------

struct CrashCase {
  CrashPoint point;
  uint32_t nth;
};

class ServeCrashPointTest : public ::testing::TestWithParam<CrashCase> {
 protected:
  void SetUp() override {
    ThreadPool::SetGlobalThreads(1);
    DisarmAllCrashPoints();
  }
  void TearDown() override { DisarmAllCrashPoints(); }
};

/// Child body: arm one point, run a durable service over the live stream.
/// Reaches the crash point and dies 137, or exits 0 (test then fails).
/// gtest-free on purpose: a forked child must not touch the parent's test
/// machinery, only _exit.
[[noreturn]] void RunCrashChild(const std::string& data_dir, CrashCase c) {
  ArmCrashPoint(c.point, c.nth);
  const SplashOptions model = RecoveryModelOptions();
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  SplashService svc(model, DurableOptions(data_dir));
  TrainerOptions fit = SmallFit();
  if (!svc.RecoverOrStart(ds, split, &fit).ok()) _exit(3);
  FeedLive(&svc, live, 0, live.size());
  svc.Stop();
  _exit(0);  // crash point never fired
}

TEST_P(ServeCrashPointTest, CrashRecoverBitExact) {
  const CrashCase c = GetParam();
  TempDir dir;

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) RunCrashChild(dir.path(), c);  // never returns

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), kCrashExitCode)
      << "crash point " << CrashPointName(c.point) << " never fired";

  // The child died mid-write somewhere on the durability path. Recovery
  // must land on a CRC-valid prefix and match the uninterrupted run.
  RecoverAndVerify(dir.path(), RecoveryModelOptions(), kAnySeq);
}

INSTANTIATE_TEST_SUITE_P(
    AllCrashPoints, ServeCrashPointTest,
    ::testing::Values(
        // The startup recovery checkpoint is hit #1 for checkpoint points;
        // nth=2 crashes the first mid-stream checkpoint instead. WAL
        // points use mid-stream hit counts directly.
        CrashCase{CrashPoint::kWalAfterAppend, 9},
        CrashCase{CrashPoint::kWalBeforeFsync, 7},
        CrashCase{CrashPoint::kWalMidFrame, 6},
        CrashCase{CrashPoint::kCheckpointMidWrite, 2},
        CrashCase{CrashPoint::kCheckpointBeforeRename, 2},
        CrashCase{CrashPoint::kCheckpointAfterRename, 2}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      std::string name = CrashPointName(info.param.point);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace splash
