// Copyright 2026 The SPLASH Reproduction Authors.
//
// End-to-end smoke: SPLASH trains on a small synthetic classification
// stream and beats chance; determinism across identically-seeded runs; the
// ring-buffer substrate and trainer replay hold up under a full pipeline.

#include <gtest/gtest.h>

#include "core/splash.h"
#include "datasets/shift_intensity.h"
#include "datasets/synthetic.h"
#include "eval/trainer.h"

namespace splash {
namespace {

SplashOptions SmallOptions(SplashMode mode) {
  SplashOptions opts;
  opts.mode = mode;
  opts.augment.feature_dim = 16;
  opts.slim.hidden_dim = 32;
  opts.slim.time_dim = 8;
  opts.slim.k_recent = 5;
  opts.seed = 7;
  return opts;
}

Dataset SmallClassification() {
  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 150;
  cfg.num_edges = 3000;
  cfg.num_communities = 3;
  cfg.intra_prob = 0.9;
  cfg.query_rate = 0.3;
  cfg.late_arrival_frac = 0.2;
  cfg.seed = 9;
  return GenerateSynthetic(cfg);
}

TEST(SplashSmokeTest, LearnsCommunitiesAboveChance) {
  const Dataset ds = SmallClassification();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);
  SplashPredictor model(SmallOptions(SplashMode::kForcePositional));
  ASSERT_TRUE(model.Prepare(ds, split).ok());

  TrainerOptions topts;
  topts.epochs = 6;
  topts.batch_size = 64;
  StreamTrainer trainer(topts);
  trainer.Fit(&model, ds, split);
  const EvalResult eval = trainer.Evaluate(&model, ds, split);
  ASSERT_GT(eval.num_queries, 20u);
  // 3 balanced-ish classes: chance is ~0.33. Positional features on a 90%
  // intra-community stream must do clearly better.
  EXPECT_GT(eval.metric, 0.45);
}

TEST(SplashSmokeTest, DeterministicAcrossRuns) {
  const Dataset ds = SmallClassification();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);
  double metrics[2];
  for (int run = 0; run < 2; ++run) {
    SplashPredictor model(SmallOptions(SplashMode::kForceStructural));
    ASSERT_TRUE(model.Prepare(ds, split).ok());
    TrainerOptions topts;
    topts.epochs = 2;
    topts.batch_size = 64;
    StreamTrainer trainer(topts);
    trainer.Fit(&model, ds, split);
    metrics[run] = trainer.Evaluate(&model, ds, split).metric;
  }
  EXPECT_DOUBLE_EQ(metrics[0], metrics[1]);
}

TEST(SplashSmokeTest, AutoModeSelectsAProcessAndRuns) {
  const Dataset ds = SmallClassification();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);
  SplashPredictor model(SmallOptions(SplashMode::kAuto));
  ASSERT_TRUE(model.Prepare(ds, split).ok());
  const AugmentationProcess p = model.selected_process();
  EXPECT_TRUE(p == AugmentationProcess::kRandom ||
              p == AugmentationProcess::kPositional ||
              p == AugmentationProcess::kStructural);
  TrainerOptions topts;
  topts.epochs = 1;
  topts.batch_size = 64;
  StreamTrainer trainer(topts);
  const FitResult fit = trainer.Fit(&model, ds, split);
  EXPECT_EQ(fit.epochs_run, 1u);
  EXPECT_GE(fit.best_val_metric, 0.0);
}

TEST(SplashSmokeTest, ShiftIntensityStreamHasUnseenTestNodes) {
  const Dataset ds = GenerateShiftIntensity(90, 6000);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);
  std::vector<uint8_t> seen(ds.stream.num_nodes(), 0);
  for (size_t i = 0; i < ds.stream.size(); ++i) {
    if (ds.stream[i].time > split.train_end_time) break;
    seen[ds.stream[i].src] = 1;
    seen[ds.stream[i].dst] = 1;
  }
  size_t unseen_queries = 0, test_queries = 0;
  for (const PropertyQuery& q : ds.queries) {
    if (q.time <= split.val_end_time) continue;
    ++test_queries;
    unseen_queries += !seen[q.node];
  }
  ASSERT_GT(test_queries, 50u);
  // Intensity 90 must produce a majority-unseen test period.
  EXPECT_GT(static_cast<double>(unseen_queries) /
                static_cast<double>(test_queries),
            0.4);
}

}  // namespace
}  // namespace splash
