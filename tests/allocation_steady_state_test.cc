// Copyright 2026 The SPLASH Reproduction Authors.
//
// Counting-allocator gate for the per-edge complexity contract (DESIGN.md
// §3): NeighborMemory::Observe and SlimModel::TrainStep must perform ZERO
// heap allocations at steady state — including with threads > 1, where the
// per-worker gradient scratch and the ParallelFor dispatch must be
// grow-only too. Global operator new/delete are replaced with counting
// shims; a scoped flag confines the assertion to the measured region.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/feature_augmentation.h"
#include "core/slim.h"
#include "core/splash.h"
#include "datasets/scalability.h"
#include "eval/trainer.h"
#include "graph/edge_stream.h"
#include "graph/neighbor_memory.h"
#include "runtime/pipeline.h"
#include "runtime/thread_pool.h"
#include "tensor/rng.h"
#include "tensor/simd.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<size_t> g_alloc_count{0};

void* CountedAlloc(size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace splash {
namespace {

/// Allocations observed while running `fn`.
template <typename Fn>
size_t CountAllocations(const Fn& fn) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_seq_cst);
  fn();
  g_counting.store(false, std::memory_order_seq_cst);
  return g_alloc_count.load(std::memory_order_relaxed);
}

TEST(AllocationSteadyStateTest, NeighborMemoryObserveIsAllocationFree) {
  ThreadPool::SetGlobalThreads(4);
  const size_t n = 4096;
  NeighborMemory memory(10, n);
  Rng rng(1);
  double t = 0.0;
  // Warm-up inside capacity (the hint pre-sized every shard).
  for (size_t i = 0; i < 1000; ++i) {
    memory.Observe(TemporalEdge(static_cast<NodeId>(rng.UniformInt(n)),
                                static_cast<NodeId>(rng.UniformInt(n)),
                                t += 1.0),
                   i);
  }
  const size_t allocs = CountAllocations([&] {
    for (size_t i = 0; i < 100000; ++i) {
      memory.Observe(TemporalEdge(static_cast<NodeId>(rng.UniformInt(n)),
                                  static_cast<NodeId>(rng.UniformInt(n)),
                                  t += 1.0),
                     i);
    }
  });
  EXPECT_EQ(allocs, 0u);
  ThreadPool::SetGlobalThreads(1);
}

TEST(AllocationSteadyStateTest, SlimTrainStepIsAllocationFreeWithThreads) {
  ThreadPool::SetGlobalThreads(4);
  SlimOptions opts;
  opts.feature_dim = 32;
  opts.hidden_dim = 64;
  opts.k_recent = 10;
  opts.dropout = 0.1f;
  Rng rng(4);
  SlimModel model(opts, &rng);
  model.SetTraining(true);

  const size_t b = 192;
  SlimBatchInput input;
  input.node_feats = Matrix::Gaussian(b, 32, &rng);
  input.neighbor_feats = Matrix::Gaussian(b * 10, 32, &rng);
  input.time_deltas.assign(b * 10, 1.0);
  input.mask = Matrix::Ones(b, 10);
  input.edge_weights.assign(b * 10, 1.0f);
  std::vector<int> labels(b);
  for (size_t i = 0; i < b; ++i) labels[i] = static_cast<int>(i % 2);

  // Warm-up: grows the activation scratch, the per-worker gradient
  // scratch, and the chunk-loss vector to this batch size.
  model.TrainStep(input, labels);
  model.TrainStep(input, labels);

  const size_t allocs = CountAllocations([&] {
    for (int step = 0; step < 10; ++step) model.TrainStep(input, labels);
  });
  EXPECT_EQ(allocs, 0u);
  ThreadPool::SetGlobalThreads(1);
}

TEST(AllocationSteadyStateTest, FeatureAugmenterObserveBulkIsAllocationFree) {
  // The bulk replay fan-out (shard partition + deferred reduction) must be
  // grow-only: after a warm-up pass sized every chunk's scratch and
  // deferred list, repeated ObserveBulk calls allocate nothing.
  ThreadPool::SetGlobalThreads(4);
  const size_t n_seen = 64, n_unseen = 1024;
  EdgeStream stream;
  double t = 0.0;
  for (size_t i = 0; i < 128; ++i) {
    stream
        .Append(TemporalEdge(static_cast<NodeId>(i % n_seen),
                             static_cast<NodeId>((i * 5) % n_seen), t += 1.0))
        .ok();
  }
  const double fit_time = t;
  Rng rng(11);
  for (size_t i = 0; i < 20000; ++i) {
    // Seen-seen, unseen-seen, and unseen-unseen edges: exercises the
    // degree-only path, the inline folds, and the deferred reduction.
    const NodeId u = static_cast<NodeId>(
        rng.Uniform() < 0.5 ? n_seen + rng.UniformInt(n_unseen)
                            : rng.UniformInt(n_seen));
    const NodeId v = static_cast<NodeId>(
        rng.Uniform() < 0.5 ? n_seen + rng.UniformInt(n_unseen)
                            : rng.UniformInt(n_seen));
    stream.Append(TemporalEdge(u, v, t += 1.0)).ok();
  }

  FeatureAugmenterOptions opts;
  opts.feature_dim = 16;
  FeatureAugmenter augmenter(opts);
  augmenter.FitSeen(stream, fit_time);
  // Warm-up: grows the node tables, chunk scratch, and deferred lists to
  // this stream's high-water mark.
  augmenter.ObserveBulk(stream, 0, stream.size());
  augmenter.Reset();

  const size_t allocs = CountAllocations(
      [&] { augmenter.ObserveBulk(stream, 0, stream.size()); });
  EXPECT_EQ(allocs, 0u);
  ThreadPool::SetGlobalThreads(1);
}

// The aligned/padded scratch introduced by the SIMD backends must stay
// grow-only under each of them too: Observe, TrainStep, and the serve read
// path (PredictBatchConst with per-client scratch) perform zero heap
// allocations at steady state regardless of the dispatched kernel table.
void RunSlimAndServeAllocationGate() {
  ThreadPool::SetGlobalThreads(4);

  ScalabilityOptions sopts;
  sopts.num_edges = 4000;
  sopts.num_nodes = 512;
  const Dataset ds = GenerateScalabilityStream(sopts);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.1, 0.1);
  SplashOptions opts;
  opts.mode = SplashMode::kForceStructural;
  opts.augment.feature_dim = 16;
  opts.slim.hidden_dim = 32;
  opts.slim.time_dim = 8;
  opts.slim.dropout = 0.1f;
  SplashPredictor model(opts);
  ASSERT_TRUE(model.Prepare(ds, split).ok());
  model.SetTraining(true);
  model.ObserveBulk(ds.stream, 0, ds.stream.size() / 2);

  std::vector<PropertyQuery> queries(64);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].node = static_cast<NodeId>(i * 7 % sopts.num_nodes);
    queries[i].time = ds.stream.time_data()[ds.stream.size() / 2 - 1] + 1.0;
    queries[i].class_label = static_cast<int>(i % 2);
  }

  // Warm-up grows every scratch: train path, const query path, ingest.
  model.TrainBatch(queries);
  SplashQueryScratch scratch;
  (void)model.PredictBatchConst(queries, &scratch);
  (void)model.PredictBatchConst(queries, &scratch);
  model.TrainBatch(queries);

  const size_t mid = ds.stream.size() / 2;
  const size_t allocs = CountAllocations([&] {
    for (int rep = 0; rep < 5; ++rep) {
      model.TrainBatch(queries);
      (void)model.PredictBatchConst(queries, &scratch);
    }
    for (size_t i = mid; i < ds.stream.size(); ++i) {
      model.ObserveEdge(ds.stream[i], i);
    }
  });
  EXPECT_EQ(allocs, 0u);
  ThreadPool::SetGlobalThreads(1);
}

TEST(AllocationSteadyStateTest, SlimAndServePathsAllocationFreeUnderAvx2) {
  if (!SetKernelBackendForTesting("avx2")) {
    GTEST_SKIP() << "no AVX2/FMA backend on this host";
  }
  RunSlimAndServeAllocationGate();
  ASSERT_TRUE(SetKernelBackendForTesting("auto"));
}

TEST(AllocationSteadyStateTest, SlimAndServePathsAllocationFreeUnderAvx512) {
  if (!SetKernelBackendForTesting("avx512")) {
    GTEST_SKIP() << "no AVX-512 backend on this host";
  }
  RunSlimAndServeAllocationGate();
  ASSERT_TRUE(SetKernelBackendForTesting("auto"));
}

TEST(AllocationSteadyStateTest, PipelineThreadSubmitWaitIsAllocationFree) {
  // The executor's double-buffer hand-off is a function-pointer + context
  // slot: a thousand submit/wait cycles must not touch the heap.
  PipelineThread pipe;
  std::atomic<size_t> ran{0};
  auto bump = [](void* ctx) {
    static_cast<std::atomic<size_t>*>(ctx)->fetch_add(
        1, std::memory_order_relaxed);
  };
  pipe.Submit(bump, &ran);
  pipe.Wait();

  const size_t allocs = CountAllocations([&] {
    for (int i = 0; i < 1000; ++i) {
      pipe.Submit(bump, &ran);
      pipe.Wait();
    }
  });
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(ran.load(), 1001u);
}

}  // namespace
}  // namespace splash
