// Copyright 2026 The SPLASH Reproduction Authors.
//
// Contracts of the LatencyHistogram (eval/timing.h), the per-endpoint
// quantile digest of the serving layer:
//   - quantiles agree with a sorted reference within the log-linear
//     bucketing's relative error bound (1/16 per sample);
//   - merging per-thread histograms is exact: bucket-wise identical to
//     recording everything into one;
//   - the record path performs zero heap allocations at steady state
//     (it sits on the serving hot path).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "eval/timing.h"
#include "tensor/rng.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<size_t> g_alloc_count{0};

void* CountedAlloc(size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace splash {
namespace {

/// Log-normal-ish latency samples spanning ns to ms, deterministic.
std::vector<uint64_t> MakeSamples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    // exp(gaussian) stretched across ~4 decades, floored at 1ns.
    float g;
    rng.FillGaussian(&g, 1, 1.5f);
    const double x = std::exp(static_cast<double>(g)) * 5e4;
    v[i] = x < 1.0 ? 1 : static_cast<uint64_t>(x);
  }
  return v;
}

/// The ceil(q*n)-th smallest sample — the histogram's documented target.
double ExactQuantile(std::vector<uint64_t> sorted, double q) {
  std::sort(sorted.begin(), sorted.end());
  const double target = q * static_cast<double>(sorted.size());
  size_t rank = static_cast<size_t>(target);
  if (static_cast<double>(rank) != target) ++rank;
  rank = rank > 0 ? rank - 1 : 0;
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return static_cast<double>(sorted[rank]);
}

TEST(LatencyHistogramTest, QuantilesMatchSortedReferenceWithinBucketError) {
  const std::vector<uint64_t> samples = MakeSamples(20000, 77);
  LatencyHistogram h;
  for (const uint64_t s : samples) h.RecordNs(s);
  ASSERT_EQ(h.count(), samples.size());

  uint64_t total = 0, mx = 0, mn = ~uint64_t{0};
  for (const uint64_t s : samples) {
    total += s;
    mx = std::max(mx, s);
    mn = std::min(mn, s);
  }
  EXPECT_EQ(h.total_ns(), total);
  EXPECT_EQ(h.max_ns(), mx);
  EXPECT_EQ(h.min_ns(), mn);

  // The bucketing guarantees <= 1/16 relative error per sample; quantile
  // midpointing adds at most half a bucket more. 8% covers both.
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double want = ExactQuantile(samples, q);
    const double got = h.QuantileNs(q);
    EXPECT_NEAR(got, want, 0.08 * want + 1.0)
        << "quantile " << q << " off: got " << got << " want " << want;
  }
  EXPECT_EQ(h.QuantileNs(0.0), static_cast<double>(mn));
  EXPECT_EQ(h.QuantileNs(1.0), static_cast<double>(mx));
}

TEST(LatencyHistogramTest, MergeOfPerThreadHistogramsIsExact) {
  const std::vector<uint64_t> samples = MakeSamples(8000, 91);
  LatencyHistogram whole;
  LatencyHistogram parts[4];
  for (size_t i = 0; i < samples.size(); ++i) {
    whole.RecordNs(samples[i]);
    parts[i % 4].RecordNs(samples[i]);
  }
  LatencyHistogram merged;
  for (const LatencyHistogram& p : parts) merged.Merge(p);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.total_ns(), whole.total_ns());
  EXPECT_EQ(merged.min_ns(), whole.min_ns());
  EXPECT_EQ(merged.max_ns(), whole.max_ns());
  // Bucket contents are identical, so every quantile is bit-equal.
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.QuantileNs(q), whole.QuantileNs(q)) << "q=" << q;
  }
  const LatencySummary a = merged.Summarize(), b = whole.Summarize();
  EXPECT_EQ(a.p50_ns, b.p50_ns);
  EXPECT_EQ(a.p99_ns, b.p99_ns);
  EXPECT_EQ(a.p999_ns, b.p999_ns);
}

TEST(LatencyHistogramTest, RecordPathIsAllocationFreeAtSteadyState) {
  LatencyHistogram h;  // fixed-size member array: no warm-up needed
  const std::vector<uint64_t> samples = MakeSamples(4096, 13);

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_seq_cst);
  for (const uint64_t s : samples) h.RecordNs(s);
  const double p99 = h.QuantileNs(0.99);
  g_counting.store(false, std::memory_order_seq_cst);

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "Record/Quantile allocated on the hot path";
  EXPECT_GT(p99, 0.0);
  EXPECT_EQ(h.count(), samples.size());
}

TEST(LatencyHistogramTest, SmallExactBucketsAndEmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.QuantileNs(0.5), 0.0);
  EXPECT_EQ(h.min_ns(), 0u);

  // Values below 16ns land in exact unit buckets: quantiles are exact.
  for (uint64_t v = 0; v < 16; ++v) h.RecordNs(v);
  EXPECT_EQ(h.QuantileNs(0.0), 0.0);
  EXPECT_EQ(h.QuantileNs(1.0), 15.0);
  // ceil(0.5*16) = 8th smallest of 0..15 = value 7, exact bucket.
  EXPECT_EQ(h.QuantileNs(0.5), 7.0);
  // One outlier among 99 small samples must NOT be reported as p99:
  // ceil(0.99*100) = 99th smallest, which is still small.
  LatencyHistogram h2;
  for (int i = 0; i < 99; ++i) h2.RecordNs(10);
  h2.RecordNs(50000000);  // 50ms straggler
  EXPECT_EQ(h2.QuantileNs(0.99), 10.0);
  EXPECT_EQ(h2.QuantileNs(1.0), 50000000.0);
}

}  // namespace
}  // namespace splash
