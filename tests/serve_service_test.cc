// Copyright 2026 The SPLASH Reproduction Authors.
//
// Correctness contracts of the serving subsystem (ISSUE 4):
//   - ORACLE: a query answered from a snapshot at watermark W is
//     bit-identical to a serial (SPLASH_THREADS=1) replay of the ingest
//     log truncated at W — the snapshot scheme loses nothing and leaks
//     nothing (no future edge, no partial batch);
//   - the same holds with online training feedback, replaying the
//     recorded (edge range, train batch) apply sequence;
//   - backpressure: kDropNewest rejects beyond the queue bound and the
//     published state reflects exactly the accepted items;
//   - watermarks are monotone, Flush publishes everything accepted, and
//     the drift counters (unseen-node queries, novel ingest ids) move.

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "core/splash.h"
#include "datasets/synthetic.h"
#include "eval/trainer.h"
#include "runtime/thread_pool.h"
#include "serve/service.h"

namespace splash {
namespace {

class ServeServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { ThreadPool::SetGlobalThreads(1); }
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }
};

Dataset MakeWarmup(size_t num_edges = 3000) {
  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 150;
  cfg.num_edges = num_edges;
  cfg.num_communities = 3;
  cfg.intra_prob = 0.9;
  cfg.query_rate = 0.25;
  cfg.late_arrival_frac = 0.2;
  cfg.seed = 21;
  return GenerateSynthetic(cfg);
}

SplashOptions SmallModelOptions() {
  SplashOptions opts;
  opts.mode = SplashMode::kForceStructural;  // no selection pass: fast
  opts.augment.feature_dim = 12;
  opts.slim.hidden_dim = 24;
  opts.slim.time_dim = 8;
  opts.slim.k_recent = 5;
  opts.slim.dropout = 0.0f;
  opts.seed = 5;
  return opts;
}

TrainerOptions SmallFit() {
  TrainerOptions fit;
  fit.epochs = 2;
  fit.batch_size = 64;
  fit.early_stopping = false;
  fit.num_threads = 1;
  fit.pipeline_depth = 0;
  return fit;
}

/// The serving traffic: edges of `ds` after the validation boundary (the
/// "live" period a deployed service would ingest).
std::vector<TemporalEdge> LiveEdges(const Dataset& ds,
                                    const ChronoSplit& split) {
  std::vector<TemporalEdge> live;
  for (size_t i = 0; i < ds.stream.size(); ++i) {
    if (ds.stream[i].time > split.val_end_time) live.push_back(ds.stream[i]);
  }
  return live;
}

std::vector<PropertyQuery> ProbeQueries(const Dataset& ds, size_t n) {
  std::vector<PropertyQuery> probe(ds.queries.end() - n, ds.queries.end());
  return probe;
}

/// Serial reference: a fresh predictor through the identical deterministic
/// prepare+fit, then per-edge replay of `edges[0..w)`.
std::unique_ptr<SplashPredictor> MakeReference(const Dataset& ds,
                                               const ChronoSplit& split) {
  auto ref = std::make_unique<SplashPredictor>(SmallModelOptions());
  EXPECT_TRUE(ref->Prepare(ds, split).ok());
  TrainerOptions fit = SmallFit();
  StreamTrainer trainer(fit);
  trainer.Fit(ref.get(), ds, split);
  ref->SetTraining(false);
  ref->ResetState();
  return ref;
}

/// Reads the reference through the same path the service's query tier
/// uses: the const forward at the replica precision the service resolves
/// from the environment (SPLASH_REPLICA_PRECISION). The oracle contract
/// is "service read == reference read through the same path", so it must
/// hold bit-for-bit under the CI precision matrix exactly as at fp32.
Matrix ReferenceScores(SplashPredictor* ref,
                       const std::vector<PropertyQuery>& probe) {
  const char* prec = std::getenv("SPLASH_REPLICA_PRECISION");
  ref->SetReplicaPrecisionBf16(prec != nullptr &&
                               std::string(prec) == "bf16");
  SplashQueryScratch scratch;
  return ref->PredictBatchConst(probe, &scratch);
}

void ExpectBitEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " element " << i;
  }
}

TEST_F(ServeServiceTest, SnapshotQueryBitIdenticalToSerialReplayTruncatedAtW) {
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  ASSERT_GT(live.size(), 400u);
  const std::vector<PropertyQuery> probe = ProbeQueries(ds, 40);

  SplashServiceOptions sopts;
  sopts.microbatch_max_items = 64;
  sopts.microbatch_max_delay_s = 0.0005;
  sopts.train_on_ingest_labels = false;
  SplashService service(SmallModelOptions(), sopts);
  TrainerOptions fit = SmallFit();
  ASSERT_TRUE(service.Start(ds, split, &fit).ok());
  ServeClient client(&service);

  // Ingest in uneven chunks; at each Flush the published watermark must be
  // exactly the ingest count and the answer bit-identical to a serial
  // replay truncated there.
  auto ref = MakeReference(ds, split);
  size_t ref_cursor = 0;
  size_t fed = 0;
  for (const size_t chunk : {7u, 150u, 64u, 233u}) {
    for (size_t i = 0; i < chunk && fed < live.size(); ++i, ++fed) {
      ASSERT_TRUE(service.IngestEdge(live[fed]));
    }
    service.Flush();

    ServeResponse resp = client.Predict(probe);
    ASSERT_EQ(resp.watermark_seq, fed) << "Flush did not publish everything";
    EXPECT_EQ(resp.watermark_time, fed > 0 ? live[fed - 1].time : 0.0);

    // Serial truncated replay to the same watermark (the reference clamps
    // timestamps the same way the service log does — none regress here).
    for (; ref_cursor < fed; ++ref_cursor) {
      ref->ObserveEdge(live[ref_cursor], ref_cursor);
    }
    const Matrix want = ReferenceScores(ref.get(), probe);
    ExpectBitEqual(want, resp.scores, "snapshot vs serial replay");
  }
  service.Stop();

  // The snapshot survives Stop(): same watermark, same bits.
  ServeResponse after = client.Predict(probe);
  EXPECT_EQ(after.watermark_seq, fed);
  const Matrix want = ReferenceScores(ref.get(), probe);
  ExpectBitEqual(want, after.scores, "post-Stop snapshot");
}

TEST_F(ServeServiceTest, TrainingFeedbackReplaysBitIdenticalViaApplyLog) {
  const Dataset ds = MakeWarmup();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  const std::vector<PropertyQuery> probe = ProbeQueries(ds, 30);

  SplashServiceOptions sopts;
  sopts.microbatch_max_items = 48;
  sopts.microbatch_max_delay_s = 0.0005;
  sopts.train_on_ingest_labels = true;
  sopts.record_apply_log = true;
  SplashService service(SmallModelOptions(), sopts);
  TrainerOptions fit = SmallFit();
  ASSERT_TRUE(service.Start(ds, split, &fit).ok());
  ServeClient client(&service);

  // Interleave edges with labeled feedback (every 10th edge's destination).
  const size_t n = std::min<size_t>(live.size(), 600);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(service.IngestEdge(live[i]));
    if (i % 10 == 9) {
      PropertyQuery q;
      q.node = live[i].dst;
      q.time = live[i].time;
      q.class_label = static_cast<int>(i / 10 % 3);
      ASSERT_TRUE(service.SubmitTrain(q));
    }
  }
  service.Flush();
  ServeResponse resp = client.Predict(probe);
  EXPECT_EQ(resp.watermark_seq, n);
  service.Stop();
  EXPECT_GT(service.Stats().counters.train_steps, 0u);

  // Reference: replay the recorded apply sequence — ObserveBulk per batch
  // boundary, staged train at the recorded positions — at the same thread
  // count. Bit-identical because both replicas and the reference are the
  // same deterministic state machine fed the same ops.
  auto ref = MakeReference(ds, split);
  const EdgeStream& log = service.ingest_log();
  ASSERT_EQ(log.size(), n);
  const auto& bounds = service.applied_batch_bounds();
  const auto& trains = service.applied_train_batches();
  size_t cursor = 0;
  size_t train_i = 0;
  for (const uint64_t bound : bounds) {
    if (bound > cursor) {
      ref->ObserveBulk(log, cursor, bound);
      cursor = bound;
    }
    while (train_i < trains.size() && trains[train_i].first == bound) {
      ref->SetTraining(true);
      ref->StageBatch(trains[train_i].second);
      ref->TrainStaged();
      ref->SetTraining(false);
      ++train_i;
    }
  }
  ASSERT_EQ(cursor, n);
  ASSERT_EQ(train_i, trains.size());
  const Matrix want = ReferenceScores(ref.get(), probe);
  ExpectBitEqual(want, resp.scores, "train-feedback snapshot vs replay");
}

TEST_F(ServeServiceTest, DropNewestBackpressureCountsAndStaysConsistent) {
  const Dataset ds = MakeWarmup(1200);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);
  ASSERT_GT(live.size(), 100u);

  SplashServiceOptions sopts;
  sopts.queue_capacity = 2;
  sopts.backpressure = BackpressurePolicy::kDropNewest;
  // Large coalescing window: the queue stays full while the apply thread
  // waits for the batch to fill, forcing drops deterministically.
  sopts.microbatch_max_items = 1024;
  sopts.microbatch_max_delay_s = 0.2;
  sopts.train_on_ingest_labels = false;
  SplashService service(SmallModelOptions(), sopts);
  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());

  size_t accepted = 0;
  for (size_t i = 0; i < 100; ++i) {
    if (service.IngestEdge(live[i])) ++accepted;
  }
  service.Flush();
  service.Stop();

  const ServeStats st = service.Stats();
  EXPECT_GT(st.counters.ingest_dropped, 0u) << "queue of 2 never overflowed?";
  EXPECT_EQ(st.counters.ingest_accepted, accepted);
  EXPECT_EQ(st.counters.ingest_accepted + st.counters.ingest_dropped, 100u);
  // Published state reflects exactly the accepted prefix.
  EXPECT_EQ(st.counters.published_seq, accepted);
  EXPECT_EQ(service.ingest_log().size(), accepted);
  // The burst must have filled the queue to its bound — the high
  // watermark proves the drops were backpressure, not a bug.
  EXPECT_EQ(st.counters.queue_high_watermark, 2u);
}

TEST_F(ServeServiceTest, DeadlineFlagRetryHelperAndNonDurableDefaults) {
  const Dataset ds = MakeWarmup(1200);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  SplashServiceOptions sopts;
  SplashService service(SmallModelOptions(), sopts);
  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());
  ServeClient client(&service);
  const double t = ds.stream.max_time();

  // A zero timeout means "no deadline"; an impossible one must flag the
  // overrun while still returning the (computed) answer.
  ServeResponse none = client.PredictNode(1, t);
  EXPECT_FALSE(none.deadline_exceeded);
  ServeResponse generous = client.PredictNode(1, t, /*timeout_s=*/30.0);
  EXPECT_FALSE(generous.deadline_exceeded);
  ServeResponse tight = client.ScoreEdge(1, 2, t, /*timeout_s=*/1e-12);
  EXPECT_TRUE(tight.deadline_exceeded);
  EXPECT_EQ(tight.scores.rows(), 2u) << "late answer must still be returned";

  // Non-durable service: the degraded flag can never be set.
  EXPECT_FALSE(service.degraded());
  EXPECT_FALSE(none.degraded);
  EXPECT_FALSE(service.Stats().counters.degraded);

  // Retry helper: boundary-invalid edges are rejected without retrying
  // (they can never succeed); valid edges pass through.
  EXPECT_FALSE(client.IngestEdgeWithRetry(
      TemporalEdge(1, 2, std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(client.IngestEdgeWithRetry(TemporalEdge(1, 2, t)));
  service.Flush();
  EXPECT_EQ(service.published_seq(), 1u);
  service.Stop();

  // Stopped service: attempts are bounded — this returns, it never spins.
  EXPECT_FALSE(client.IngestEdgeWithRetry(TemporalEdge(1, 2, t),
                                          /*max_attempts=*/3,
                                          /*initial_backoff_s=*/1e-4));
  const ServeStats st = service.Stats();
  EXPECT_EQ(st.counters.ingest_accepted, 1u);
}

TEST_F(ServeServiceTest, DriftCountersAndLatencyHistogramsMove) {
  const Dataset ds = MakeWarmup(1500);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);

  SplashServiceOptions sopts;
  sopts.microbatch_max_items = 32;
  sopts.microbatch_max_delay_s = 0.0005;
  SplashService service(SmallModelOptions(), sopts);
  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());
  ServeClient client(&service);

  const double t_end = ds.stream.max_time();
  // A node id far beyond the warmup id space: novel on ingest, unseen on
  // query — both drift counters must move.
  const NodeId novel = static_cast<NodeId>(ds.stream.num_nodes() + 500);
  ASSERT_TRUE(service.IngestEdge(TemporalEdge(novel, live[0].src, t_end)));
  // An out-of-order straggler: clamped, counted.
  ASSERT_TRUE(
      service.IngestEdge(TemporalEdge(live[0].src, live[0].dst, t_end - 5.0)));
  service.Flush();

  ServeResponse r1 = client.PredictNode(novel, t_end + 1.0);
  EXPECT_EQ(r1.watermark_seq, 2u);
  EXPECT_EQ(r1.watermark_time, t_end);  // straggler clamped to t_end
  (void)client.ScoreEdge(live[0].src, live[0].dst, t_end + 1.0);
  service.Stop();

  const ServeStats st = service.Stats();
  EXPECT_GE(st.counters.novel_ingest_nodes, 1u);
  EXPECT_GE(st.counters.unseen_node_queries, 1u);
  EXPECT_EQ(st.counters.time_regressions, 1u);
  EXPECT_EQ(st.counters.queries, 3u);  // 1 + 2 endpoint rows
  EXPECT_EQ(st.predict.count, 2u);     // two Predict calls
  EXPECT_GT(st.predict.p99_ns, 0.0);
  EXPECT_GE(st.ingest.count, 2u);
  EXPECT_GT(st.apply.count, 0u);
  EXPECT_GT(st.counters.batches_applied, 0u);
}

TEST_F(ServeServiceTest, InvalidEdgesRejectedAtTheBoundary) {
  const Dataset ds = MakeWarmup(1200);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  SplashServiceOptions sopts;
  SplashService service(SmallModelOptions(), sopts);
  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());

  const double t = ds.stream.max_time();
  // Sentinel endpoint and non-finite timestamps must be rejected before
  // they can reach the log or size the node tables.
  EXPECT_FALSE(service.IngestEdge(TemporalEdge()));
  EXPECT_FALSE(service.IngestEdge(TemporalEdge(1, kInvalidNode, t)));
  EXPECT_FALSE(service.IngestEdge(
      TemporalEdge(1, 2, std::numeric_limits<double>::quiet_NaN())));
  EXPECT_FALSE(service.IngestEdge(
      TemporalEdge(1, 2, std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(service.IngestEdge(TemporalEdge(1, 2, t)));
  service.Flush();
  service.Stop();

  const ServeStats st = service.Stats();
  EXPECT_EQ(st.counters.ingest_dropped, 4u);
  EXPECT_EQ(st.counters.ingest_accepted, 1u);
  EXPECT_EQ(service.ingest_log().size(), 1u);
  EXPECT_EQ(st.counters.published_seq, 1u);
}

TEST_F(ServeServiceTest, WatermarkMonotonePerClientAcrossUnflushedIngest) {
  const Dataset ds = MakeWarmup(2000);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.3);
  const std::vector<TemporalEdge> live = LiveEdges(ds, split);

  SplashServiceOptions sopts;
  sopts.microbatch_max_items = 16;
  sopts.microbatch_max_delay_s = 0.0;
  SplashService service(SmallModelOptions(), sopts);
  ASSERT_TRUE(service.Start(ds, split, nullptr).ok());
  ServeClient client(&service);

  uint64_t last = 0;
  const size_t n = std::min<size_t>(live.size(), 500);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(service.IngestEdge(live[i]));
    if (i % 25 == 0) {
      const ServeResponse r = client.PredictNode(live[i].src, live[i].time);
      EXPECT_GE(r.watermark_seq, last) << "watermark went backwards";
      EXPECT_LE(r.watermark_seq, i + 1) << "watermark saw the future";
      last = r.watermark_seq;
    }
  }
  service.Stop();
  EXPECT_EQ(service.published_seq(), n);
}

}  // namespace
}  // namespace splash
