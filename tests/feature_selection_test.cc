// Copyright 2026 The SPLASH Reproduction Authors.
//
// kAuto probe regression (ISSUE 2 satellite): with standardized probe
// features and the val-silhouette tiebreak, the selected augmentation
// process per registry dataset is pinned — a probe-feature change that
// flips a pick (e.g. the old P-over-R mispick on gdelt-s) fails here.

#include "core/feature_selection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/feature_augmentation.h"
#include "datasets/registry.h"
#include "eval/trainer.h"

namespace splash {
namespace {

FeatureSelectionResult SelectFor(const std::string& name, double scale) {
  auto ds = MakeDataset(name, scale);
  EXPECT_TRUE(ds.ok()) << name;
  const ChronoSplit split = MakeChronoSplit(ds.value().stream, 0.1, 0.1);
  FeatureAugmenterOptions aug;
  aug.feature_dim = 32;
  aug.seed = 777;  // SplashPredictor default seed
  FeatureAugmenter augmenter(aug);
  augmenter.FitSeen(ds.value().stream, split.train_end_time);
  FeatureSelectionOptions sel;
  sel.k_recent = 10;
  return SelectFeatureProcess(ds.value(), split, &augmenter, sel);
}

TEST(FeatureSelectionTest, PinnedProcessPerRegistryDataset) {
  // Pinned at the small bench scale (0.15, the regime of the historical
  // gdelt-s mispick). Update deliberately (and only) when the probe
  // definition changes.
  const struct {
    const char* name;
    AugmentationProcess expected;
  } kPins[] = {
      {"wikipedia-s", AugmentationProcess::kStructural},
      {"reddit-s", AugmentationProcess::kStructural},
      {"mooc-s", AugmentationProcess::kStructural},
      {"email-eu-s", AugmentationProcess::kPositional},
      {"gdelt-s", AugmentationProcess::kRandom},
      {"tgbn-trade-s", AugmentationProcess::kPositional},
      {"tgbn-genre-s", AugmentationProcess::kPositional},
  };
  for (const auto& pin : kPins) {
    const FeatureSelectionResult result = SelectFor(pin.name, 0.15);
    EXPECT_EQ(result.selected, pin.expected)
        << pin.name << ": selected " << ProcessName(result.selected)
        << " (R=" << result.val_score[0] << " P=" << result.val_score[1]
        << " S=" << result.val_score[2]
        << ", tie_broken=" << result.tie_broken << ")";
  }
}

TEST(FeatureSelectionTest, GdeltSmallScaleMispickIsFixed) {
  // The ROADMAP fidelity bug: at small scale the raw probe metric rated P
  // above R on gdelt-s although the trained model collapses with P there
  // (too few train edges to fit the positional embedding). The probe
  // metrics land inside the tie band and P's collapsed val silhouette
  // hands the pick to R.
  const FeatureSelectionResult result = SelectFor("gdelt-s", 0.15);
  EXPECT_EQ(result.selected, AugmentationProcess::kRandom);
  EXPECT_TRUE(result.tie_broken);
  EXPECT_GT(result.silhouette[0], result.silhouette[1])
      << "R silhouette should beat P's collapsed embedding";
}

TEST(FeatureSelectionTest, ProbeScoresArePopulatedAndBounded) {
  const FeatureSelectionResult result = SelectFor("gdelt-s", 0.25);
  for (int p = 0; p < 3; ++p) {
    EXPECT_GE(result.val_score[p], 0.0);
    EXPECT_LE(result.val_score[p], 1.0);
  }
  EXPECT_GT(result.seconds, 0.0);
}

}  // namespace
}  // namespace splash
