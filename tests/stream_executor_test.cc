// Copyright 2026 The SPLASH Reproduction Authors.
//
// Contracts of the pipelined streaming executor (ISSUE 3):
//   - the schedule builders partition edges and queries exactly like the
//     historical interleaved loop (every edge observed once, every query
//     flushed once, flush points ordered);
//   - pipeline_depth=1 is bit-identical to depth=0 at one thread (same
//     model weights — probed through predictions — and same metrics);
//   - at four threads, depth 0 and 1 pick the same process and land on
//     close metrics even when the bulk replay fan-out engages;
//   - FeatureAugmenter::ObserveBulk is bit-identical to serial replay when
//     propagation sources are seen, and thread-count-invariant always.

#include <gtest/gtest.h>

#include <vector>

#include "baselines/standins.h"
#include "core/feature_augmentation.h"
#include "core/splash.h"
#include "datasets/synthetic.h"
#include "eval/stream_executor.h"
#include "eval/trainer.h"
#include "runtime/thread_pool.h"

namespace splash {
namespace {

class StreamExecutorTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetGlobalThreads(1); }
};

Dataset MakeDataset(size_t num_edges = 4000, double query_rate = 0.3) {
  SyntheticConfig cfg;
  cfg.task = TaskType::kNodeClassification;
  cfg.num_nodes = 200;
  cfg.num_edges = num_edges;
  cfg.num_communities = 3;
  cfg.intra_prob = 0.9;
  cfg.query_rate = query_rate;
  cfg.late_arrival_frac = 0.25;
  cfg.seed = 13;
  return GenerateSynthetic(cfg);
}

SplashOptions SmallSplashOptions() {
  SplashOptions opts;
  opts.mode = SplashMode::kAuto;
  opts.augment.feature_dim = 16;
  opts.slim.hidden_dim = 32;
  opts.slim.time_dim = 8;
  opts.slim.k_recent = 5;
  opts.slim.dropout = 0.0f;
  opts.seed = 7;
  return opts;
}

void CheckSchedule(const std::vector<ReplayOp>& ops, size_t edge_end,
                   size_t expected_queries) {
  size_t edge_cursor = 0;
  size_t queries_flushed = 0;
  size_t prev_query_end = 0;
  bool seen_train_range = false;
  for (const ReplayOp& op : ops) {
    // Edge ranges tile [0, edge_end) in order with no gaps or overlaps.
    EXPECT_EQ(op.edge_begin, edge_cursor);
    EXPECT_LE(op.edge_begin, op.edge_end);
    edge_cursor = op.edge_end;
    if (op.flush == ReplayOp::Flush::kNone) continue;
    EXPECT_LT(op.query_begin, op.query_end);
    queries_flushed += op.query_end - op.query_begin;
    // Train flushes cover an earlier contiguous region than val flushes,
    // except the partial train batch which flushes after the tail.
    if (op.query_begin < prev_query_end) seen_train_range = true;
    prev_query_end = op.query_end;
  }
  (void)seen_train_range;
  EXPECT_EQ(edge_cursor, edge_end);
  EXPECT_EQ(queries_flushed, expected_queries);
}

TEST_F(StreamExecutorTest, FitScheduleTilesEdgesAndFlushesEachQueryOnce) {
  const Dataset ds = MakeDataset();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.15);
  const double* t = ds.stream.time_data();
  size_t replay_end = 0;
  while (replay_end < ds.stream.size() &&
         t[replay_end] <= split.val_end_time) {
    ++replay_end;
  }
  size_t fit_queries = 0;
  for (const PropertyQuery& q : ds.queries) {
    if (q.time <= split.val_end_time) ++fit_queries;
  }
  ASSERT_GT(fit_queries, 0u);

  std::vector<ReplayOp> ops;
  for (const size_t batch : {32u, 200u, 100000u}) {
    BuildFitSchedule(ds, split, batch, &ops);
    CheckSchedule(ops, replay_end, fit_queries);
  }
}

TEST_F(StreamExecutorTest, EvalScheduleTilesEdgesAndFlushesTestQueriesOnce) {
  const Dataset ds = MakeDataset();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.15);
  size_t test_queries = 0;
  for (const PropertyQuery& q : ds.queries) {
    if (q.time > split.val_end_time) ++test_queries;
  }
  ASSERT_GT(test_queries, 0u);

  std::vector<ReplayOp> ops;
  for (const size_t batch : {32u, 200u, 100000u}) {
    BuildEvalSchedule(ds, split, batch, &ops);
    CheckSchedule(ops, ds.stream.size(), test_queries);
  }
}

struct RunOutcome {
  AugmentationProcess pick;
  double val_metric;
  double test_metric;
  Matrix final_scores;  // PredictBatch on the test tail after Evaluate
};

RunOutcome RunPipeline(const Dataset& ds, const ChronoSplit& split,
                       size_t num_threads, size_t pipeline_depth,
                       size_t batch_size) {
  SplashOptions opts = SmallSplashOptions();
  SplashPredictor model(opts);
  EXPECT_TRUE(model.Prepare(ds, split).ok());

  TrainerOptions topts;
  topts.epochs = 2;
  topts.batch_size = batch_size;
  topts.early_stopping = false;
  topts.num_threads = num_threads;
  topts.pipeline_depth = pipeline_depth;
  StreamTrainer trainer(topts);

  RunOutcome out;
  out.pick = model.selected_process();
  out.val_metric = trainer.Fit(&model, ds, split).best_val_metric;
  out.test_metric = trainer.Evaluate(&model, ds, split).metric;
  // Probe the learned weights: identical predictions on a fixed batch from
  // identical streaming state imply identical weights for this input set.
  std::vector<PropertyQuery> probe(ds.queries.end() - 50, ds.queries.end());
  out.final_scores = model.PredictBatch(probe);
  return out;
}

TEST_F(StreamExecutorTest, Depth1BitIdenticalToDepth0AtOneThread) {
  const Dataset ds = MakeDataset();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.15);

  const RunOutcome serial = RunPipeline(ds, split, 1, 0, 64);
  const RunOutcome piped = RunPipeline(ds, split, 1, 1, 64);

  EXPECT_EQ(serial.pick, piped.pick);
  EXPECT_EQ(serial.val_metric, piped.val_metric);    // bit-identical
  EXPECT_EQ(serial.test_metric, piped.test_metric);  // bit-identical
  ASSERT_EQ(serial.final_scores.size(), piped.final_scores.size());
  for (size_t i = 0; i < serial.final_scores.size(); ++i) {
    ASSERT_EQ(serial.final_scores.data()[i], piped.final_scores.data()[i])
        << "score element " << i;
  }
}

TEST_F(StreamExecutorTest, Depth1SameProcessAndCloseMetricsAtFourThreads) {
  // Large batches -> segments above the bulk-replay threshold, so the
  // augmenter fan-out and the double-buffered overlap both engage.
  const Dataset ds = MakeDataset(/*num_edges=*/6000, /*query_rate=*/0.3);
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.15);

  const RunOutcome serial = RunPipeline(ds, split, 4, 0, 512);
  const RunOutcome piped = RunPipeline(ds, split, 4, 1, 512);
  const RunOutcome piped2 = RunPipeline(ds, split, 4, 1, 512);

  EXPECT_EQ(serial.pick, piped.pick);
  // Bulk replay reorders only unseen->unseen contributions; metrics stay
  // close to the serial reference.
  EXPECT_NEAR(serial.val_metric, piped.val_metric, 5e-2);
  EXPECT_NEAR(serial.test_metric, piped.test_metric, 5e-2);
  // Deterministic per (threads, depth): an identical rerun is bit-equal.
  EXPECT_EQ(piped.val_metric, piped2.val_metric);
  EXPECT_EQ(piped.test_metric, piped2.test_metric);
  for (size_t i = 0; i < piped.final_scores.size(); ++i) {
    ASSERT_EQ(piped.final_scores.data()[i], piped2.final_scores.data()[i]);
  }
}

/// Fit + Evaluate one predictor at the given pipeline depth and probe its
/// final weights through predictions on a fixed tail batch.
struct BaselineOutcome {
  double val_metric;
  double test_metric;
  Matrix final_scores;
};

BaselineOutcome RunBaseline(TemporalPredictor* model, const Dataset& ds,
                            const ChronoSplit& split, size_t depth) {
  EXPECT_TRUE(model->Prepare(ds, split).ok());
  TrainerOptions topts;
  topts.epochs = 2;
  topts.batch_size = 64;
  topts.early_stopping = false;
  topts.num_threads = 1;
  topts.pipeline_depth = depth;
  StreamTrainer trainer(topts);

  BaselineOutcome out;
  out.val_metric = trainer.Fit(model, ds, split).best_val_metric;
  out.test_metric = trainer.Evaluate(model, ds, split).metric;
  std::vector<PropertyQuery> probe(ds.queries.end() - 40, ds.queries.end());
  out.final_scores = model->PredictBatch(probe);
  return out;
}

TEST_F(StreamExecutorTest, BaselineStandinsStagedDepth1BitIdenticalToDepth0) {
  // The stand-ins now implement the split-phase API (ISSUE 4 satellite):
  // at one thread the pipelined path must reproduce the serial path bit
  // for bit. TGN+RF is the hardest case (per-edge node-memory mutation in
  // ObserveEdge); SLADE covers the training-free staging.
  const Dataset ds = MakeDataset();
  const ChronoSplit split = MakeChronoSplit(ds.stream, 0.15, 0.15);

  {
    TgnnStandinOptions bopts;
    bopts.family = TgnnFamily::kTgn;
    bopts.random_features = true;
    bopts.feature_dim = 16;
    bopts.hidden_dim = 24;
    bopts.time_dim = 8;
    bopts.k_recent = 5;
    bopts.seed = 77;
    TgnnStandin serial(bopts), piped(bopts);
    ASSERT_TRUE(serial.SupportsStagedBatches());
    const BaselineOutcome a = RunBaseline(&serial, ds, split, 0);
    const BaselineOutcome b = RunBaseline(&piped, ds, split, 1);
    EXPECT_EQ(a.val_metric, b.val_metric);    // bit-identical
    EXPECT_EQ(a.test_metric, b.test_metric);  // bit-identical
    ASSERT_EQ(a.final_scores.size(), b.final_scores.size());
    for (size_t i = 0; i < a.final_scores.size(); ++i) {
      ASSERT_EQ(a.final_scores.data()[i], b.final_scores.data()[i])
          << "TGN+RF score element " << i;
    }
  }
  {
    SladeStandinOptions bopts;
    bopts.k_recent = 5;
    SladeStandin serial(bopts), piped(bopts);
    ASSERT_TRUE(serial.SupportsStagedBatches());
    const BaselineOutcome a = RunBaseline(&serial, ds, split, 0);
    const BaselineOutcome b = RunBaseline(&piped, ds, split, 1);
    EXPECT_EQ(a.test_metric, b.test_metric);
    for (size_t i = 0; i < a.final_scores.size(); ++i) {
      ASSERT_EQ(a.final_scores.data()[i], b.final_scores.data()[i])
          << "SLADE score element " << i;
    }
  }
}

TEST_F(StreamExecutorTest, BulkReplayBitIdenticalToSerialWithSeenSources) {
  // Every edge joins an unseen node to a seen node (or two seen nodes), so
  // all propagation sources are fitted rows and ObserveBulk must match the
  // per-edge serial replay bit for bit.
  const size_t n_seen = 64, n_unseen = 512;
  EdgeStream stream;
  double t = 0.0;
  for (size_t i = 0; i < 128; ++i) {
    stream
        .Append(TemporalEdge(static_cast<NodeId>(i % n_seen),
                             static_cast<NodeId>((i * 5) % n_seen), t += 1.0))
        .ok();
  }
  const double fit_time = t;
  Rng rng(3);
  for (size_t i = 0; i < 4096; ++i) {
    const NodeId unseen =
        static_cast<NodeId>(n_seen + rng.UniformInt(n_unseen));
    const NodeId seen = static_cast<NodeId>(rng.UniformInt(n_seen));
    stream.Append(i % 2 ? TemporalEdge(unseen, seen, t += 1.0)
                        : TemporalEdge(seen, unseen, t += 1.0))
        .ok();
  }

  FeatureAugmenterOptions opts;
  opts.feature_dim = 16;
  FeatureAugmenter serial(opts), bulk(opts);
  serial.FitSeen(stream, fit_time);
  bulk.FitSeen(stream, fit_time);

  ThreadPool::SetGlobalThreads(1);
  for (size_t i = 0; i < stream.size(); ++i) serial.ObserveEdge(stream[i]);
  ThreadPool::SetGlobalThreads(4);
  bulk.ObserveBulk(stream, 0, stream.size());

  std::vector<float> a(16), b(16);
  for (NodeId v = 0; v < n_seen + n_unseen; ++v) {
    ASSERT_EQ(serial.degrees().Degree(v), bulk.degrees().Degree(v));
    for (const AugmentationProcess p :
         {AugmentationProcess::kRandom, AugmentationProcess::kPositional,
          AugmentationProcess::kStructural}) {
      serial.WriteFeature(p, v, a.data());
      bulk.WriteFeature(p, v, b.data());
      for (size_t j = 0; j < 16; ++j) {
        ASSERT_EQ(a[j], b[j]) << "node " << v << " process "
                              << ProcessName(p) << " dim " << j;
      }
    }
  }
  EXPECT_EQ(serial.degrees().num_edges(), bulk.degrees().num_edges());
}

TEST_F(StreamExecutorTest, BulkReplayThreadCountInvariantWithUnseenPairs) {
  // Unseen->unseen edges defer to the fixed-order reduction, whose result
  // must not depend on the thread count.
  const size_t n_seen = 32, n_unseen = 256;
  EdgeStream stream;
  double t = 0.0;
  for (size_t i = 0; i < 64; ++i) {
    stream
        .Append(TemporalEdge(static_cast<NodeId>(i % n_seen),
                             static_cast<NodeId>((i * 3) % n_seen), t += 1.0))
        .ok();
  }
  const double fit_time = t;
  Rng rng(9);
  for (size_t i = 0; i < 4096; ++i) {
    // Mix: unseen-seen, seen-seen, and a healthy dose of unseen-unseen.
    const NodeId u = static_cast<NodeId>(
        rng.Uniform() < 0.6 ? n_seen + rng.UniformInt(n_unseen)
                            : rng.UniformInt(n_seen));
    const NodeId v = static_cast<NodeId>(
        rng.Uniform() < 0.6 ? n_seen + rng.UniformInt(n_unseen)
                            : rng.UniformInt(n_seen));
    stream.Append(TemporalEdge(u, v, t += 1.0)).ok();
  }

  FeatureAugmenterOptions opts;
  opts.feature_dim = 16;
  FeatureAugmenter two(opts), four(opts);
  two.FitSeen(stream, fit_time);
  four.FitSeen(stream, fit_time);

  ThreadPool::SetGlobalThreads(2);
  two.ObserveBulk(stream, 0, stream.size());
  ThreadPool::SetGlobalThreads(4);
  four.ObserveBulk(stream, 0, stream.size());

  std::vector<float> a(16), b(16);
  for (NodeId v = 0; v < n_seen + n_unseen; ++v) {
    ASSERT_EQ(two.degrees().Degree(v), four.degrees().Degree(v));
    for (const AugmentationProcess p :
         {AugmentationProcess::kRandom, AugmentationProcess::kPositional}) {
      two.WriteFeature(p, v, a.data());
      four.WriteFeature(p, v, b.data());
      for (size_t j = 0; j < 16; ++j) {
        ASSERT_EQ(a[j], b[j]) << "node " << v << " dim " << j;
      }
    }
  }
}

}  // namespace
}  // namespace splash
