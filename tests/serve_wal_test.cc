// Copyright 2026 The SPLASH Reproduction Authors.
//
// Framing edge cases of the durability layer (ISSUE 6, satellite S4):
//   - an empty WAL segment scans clean (header only, zero records);
//   - exactly one record round-trips field-for-field;
//   - a torn final record is detected and truncated at EVERY byte offset
//     of the frame header and at payload offsets (parameterized) — the
//     shape a kill -9 mid-write leaves behind;
//   - a CRC mismatch mid-log truncates at the corruption point and
//     reports kCorrupt (bit rot is distinguished from a torn tail);
//   - checkpoint atomicity: a crash between temp-write and rename leaves
//     the previous checkpoint loadable; a corrupt newest checkpoint falls
//     back to its predecessor; GC keeps kCheckpointsToKeep.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "serve/checkpoint.h"
#include "serve/wal.h"

namespace splash {
namespace {

/// RAII temp dir under /tmp; removed recursively on teardown.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/splash_wal_test_XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    if (!path_.empty() && path_.rfind("/tmp/", 0) == 0) {
      const std::string cmd = "rm -rf '" + path_ + "'";
      [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::vector<uint8_t> buf;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return buf;
  std::fseek(f, 0, SEEK_END);
  buf.resize(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  if (!buf.empty() && std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
    buf.clear();
  }
  std::fclose(f);
  return buf;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& buf) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), f), buf.size());
  std::fclose(f);
}

WalRecord MakeRecord(uint64_t batch, uint64_t begin, size_t n_edges,
                     size_t n_train) {
  WalRecord rec;
  rec.batch_index = batch;
  rec.seq_begin = begin;
  rec.seq_end = begin + n_edges;
  rec.wm_time = 100.0 + static_cast<double>(begin + n_edges);
  for (size_t i = 0; i < n_edges; ++i) {
    rec.edges.push_back(TemporalEdge(static_cast<NodeId>(i),
                                     static_cast<NodeId>(i + 1),
                                     rec.wm_time - 1.0 + 0.001 * i));
  }
  for (size_t i = 0; i < n_train; ++i) {
    rec.train.push_back(PropertyQuery{static_cast<NodeId>(7 + i), rec.wm_time,
                                      static_cast<int>(i % 2)});
  }
  return rec;
}

void ExpectRecordsEqual(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.batch_index, b.batch_index);
  EXPECT_EQ(a.seq_begin, b.seq_begin);
  EXPECT_EQ(a.seq_end, b.seq_end);
  EXPECT_EQ(a.wm_time, b.wm_time);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].src, b.edges[i].src);
    EXPECT_EQ(a.edges[i].dst, b.edges[i].dst);
    EXPECT_EQ(a.edges[i].time, b.edges[i].time);
  }
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].node, b.train[i].node);
    EXPECT_EQ(a.train[i].time, b.train[i].time);
    EXPECT_EQ(a.train[i].class_label, b.train[i].class_label);
  }
}

size_t FrameSizeOf(const WalRecord& rec) {
  ByteWriter w;
  EncodeWalRecord(rec, &w);
  return 8 + w.size();  // frame header + payload
}

TEST(ServeWalTest, EmptySegmentScansClean) {
  TempDir dir;
  const std::string path = WalSegmentPath(dir.path(), 0);
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path, 0, WalFsyncPolicy::kNone, 8).ok());
  }
  WalScan scan;
  ASSERT_TRUE(ScanWalFile(path, &scan).ok());
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.start_seq, 0u);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.tail, WalTailStatus::kClean);
}

TEST(ServeWalTest, ExactlyOneRecordRoundTrips) {
  TempDir dir;
  const std::string path = WalSegmentPath(dir.path(), 3);
  const WalRecord rec = MakeRecord(3, 40, 5, 2);
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path, 40, WalFsyncPolicy::kAlways, 1).ok());
    ASSERT_TRUE(w.Append(rec).ok());
    EXPECT_EQ(w.records_appended(), 1u);
    EXPECT_GE(w.fsyncs(), 1u);
  }
  WalScan scan;
  ASSERT_TRUE(ScanWalFile(path, &scan).ok());
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.start_seq, 40u);
  EXPECT_EQ(scan.tail, WalTailStatus::kClean);
  ASSERT_EQ(scan.records.size(), 1u);
  ExpectRecordsEqual(scan.records[0], rec);
}

TEST(ServeWalTest, TrainOnlyAndEmptyRecordsRoundTrip) {
  TempDir dir;
  const std::string path = WalSegmentPath(dir.path(), 0);
  const WalRecord train_only = MakeRecord(0, 10, 0, 3);
  const WalRecord empty = MakeRecord(1, 10, 0, 0);
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path, 10, WalFsyncPolicy::kBatch, 2).ok());
    ASSERT_TRUE(w.Append(train_only).ok());
    ASSERT_TRUE(w.Append(empty).ok());
  }
  WalScan scan;
  ASSERT_TRUE(ScanWalFile(path, &scan).ok());
  ASSERT_EQ(scan.records.size(), 2u);
  ExpectRecordsEqual(scan.records[0], train_only);
  ExpectRecordsEqual(scan.records[1], empty);
}

/// The kill -9 shape: the final record's frame reached the file only up to
/// byte `cut`. Every cut inside the frame header (8 bytes) and a sweep of
/// payload offsets must scan as kTorn with exactly the prior records kept.
class ServeWalTornTailTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ServeWalTornTailTest, TornFinalRecordTruncatedNeverApplied) {
  TempDir dir;
  const std::string path = WalSegmentPath(dir.path(), 0);
  const WalRecord first = MakeRecord(0, 0, 4, 1);
  const WalRecord last = MakeRecord(1, 4, 3, 0);
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path, 0, WalFsyncPolicy::kNone, 8).ok());
    ASSERT_TRUE(w.Append(first).ok());
    ASSERT_TRUE(w.Append(last).ok());
  }
  std::vector<uint8_t> buf = ReadFile(path);
  const size_t last_frame = FrameSizeOf(last);
  ASSERT_GT(buf.size(), last_frame);
  const size_t cut = GetParam();
  ASSERT_LT(cut, last_frame);
  buf.resize(buf.size() - last_frame + cut);
  WriteFile(path, buf);

  WalScan scan;
  ASSERT_TRUE(ScanWalFile(path, &scan).ok());
  EXPECT_TRUE(scan.header_ok);
  // cut == 0: no byte of the final frame reached disk — that IS the clean
  // one-record log. Any strict prefix of the frame is a torn tail.
  EXPECT_EQ(scan.tail,
            cut == 0 ? WalTailStatus::kClean : WalTailStatus::kTorn)
      << "cut=" << cut;
  ASSERT_EQ(scan.records.size(), 1u) << "cut=" << cut;
  ExpectRecordsEqual(scan.records[0], first);
  EXPECT_EQ(scan.valid_bytes, buf.size() - cut);
}

INSTANTIATE_TEST_SUITE_P(
    EveryFrameHeaderByte, ServeWalTornTailTest,
    ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u,  // header offsets
                      8u, 9u, 17u, 30u, 45u));         // payload offsets

TEST(ServeWalTest, CrcMismatchMidLogTruncatesAtCorruption) {
  TempDir dir;
  const std::string path = WalSegmentPath(dir.path(), 0);
  const WalRecord r0 = MakeRecord(0, 0, 3, 0);
  const WalRecord r1 = MakeRecord(1, 3, 3, 1);
  const WalRecord r2 = MakeRecord(2, 6, 3, 0);
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path, 0, WalFsyncPolicy::kNone, 8).ok());
    ASSERT_TRUE(w.Append(r0).ok());
    ASSERT_TRUE(w.Append(r1).ok());
    ASSERT_TRUE(w.Append(r2).ok());
  }
  std::vector<uint8_t> buf = ReadFile(path);
  // Flip one payload bit inside the middle record (past its frame header).
  const size_t r0_end = 20 + FrameSizeOf(r0);  // segment header = 20 bytes
  buf[r0_end + 8 + 5] ^= 0x10;
  WriteFile(path, buf);

  WalScan scan;
  ASSERT_TRUE(ScanWalFile(path, &scan).ok());
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.tail, WalTailStatus::kCorrupt);
  ASSERT_EQ(scan.records.size(), 1u);  // r1 AND r2 are gone: prefix only
  ExpectRecordsEqual(scan.records[0], r0);
}

TEST(ServeWalTest, LengthBombInFrameHeaderIsCorruptNotCrash) {
  TempDir dir;
  const std::string path = WalSegmentPath(dir.path(), 0);
  const WalRecord r0 = MakeRecord(0, 0, 2, 0);
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path, 0, WalFsyncPolicy::kNone, 8).ok());
    ASSERT_TRUE(w.Append(r0).ok());
  }
  std::vector<uint8_t> buf = ReadFile(path);
  buf[20 + 3] = 0xFF;  // frame length's top byte -> > kMaxRecordBytes
  WriteFile(path, buf);
  WalScan scan;
  ASSERT_TRUE(ScanWalFile(path, &scan).ok());
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.tail, WalTailStatus::kCorrupt);
}

TEST(ServeWalTest, CorruptSegmentHeaderYieldsNoRecords) {
  TempDir dir;
  const std::string path = WalSegmentPath(dir.path(), 0);
  {
    WalWriter w;
    ASSERT_TRUE(w.Open(path, 0, WalFsyncPolicy::kNone, 8).ok());
    ASSERT_TRUE(w.Append(MakeRecord(0, 0, 2, 0)).ok());
  }
  std::vector<uint8_t> buf = ReadFile(path);
  std::vector<uint8_t> orig = buf;
  buf[10] ^= 0x01;  // start_seq byte: header CRC must catch it
  WriteFile(path, buf);
  WalScan scan;
  ASSERT_TRUE(ScanWalFile(path, &scan).ok());
  EXPECT_FALSE(scan.header_ok);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.tail, WalTailStatus::kCorrupt);

  // A header shorter than its fixed size is torn, not corrupt.
  orig.resize(11);
  WriteFile(path, orig);
  ASSERT_TRUE(ScanWalFile(path, &scan).ok());
  EXPECT_FALSE(scan.header_ok);
  EXPECT_EQ(scan.tail, WalTailStatus::kTorn);
}

TEST(ServeWalTest, ListSegmentsSortsByStartIndex) {
  TempDir dir;
  for (const uint64_t idx : {30u, 0u, 12u}) {
    WalWriter w;
    ASSERT_TRUE(
        w.Open(WalSegmentPath(dir.path(), idx), idx, WalFsyncPolicy::kNone, 8)
            .ok());
  }
  const auto segs = ListWalSegments(dir.path());
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].start_index, 0u);
  EXPECT_EQ(segs[1].start_index, 12u);
  EXPECT_EQ(segs[2].start_index, 30u);
}

// ---------------------------------------------------------------------------
// Checkpoint atomicity
// ---------------------------------------------------------------------------

EdgeStream MakeLog(size_t n) {
  EdgeStream log;
  log.EnsureNodeCapacity(n + 2);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(log.Append(TemporalEdge(static_cast<NodeId>(i),
                                        static_cast<NodeId>(i + 1),
                                        static_cast<double>(i)))
                    .ok());
  }
  return log;
}

TEST(ServeCheckpointTest, RoundTripAndNewestWins) {
  TempDir dir;
  const std::vector<uint8_t> seen = {1, 0, 1};
  const std::vector<uint8_t> blob2 = {1, 2, 3, 4};
  ASSERT_TRUE(
      WriteCheckpoint(dir.path(), 5, 2, 4.0, MakeLog(5), seen, {9, 8}).ok());
  ASSERT_TRUE(
      WriteCheckpoint(dir.path(), 9, 4, 8.0, MakeLog(9), seen, blob2).ok());

  CheckpointData data;
  bool found = false;
  ASSERT_TRUE(LoadLatestCheckpoint(dir.path(), &data, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(data.seq, 9u);
  EXPECT_EQ(data.batches_applied, 4u);
  EXPECT_EQ(data.wm_time, 8.0);
  ASSERT_EQ(data.log.size(), 9u);
  EXPECT_EQ(data.log[3].src, 3u);
  EXPECT_EQ(data.node_seen, seen);
  EXPECT_EQ(data.predictor_state, blob2);
}

TEST(ServeCheckpointTest, CrashBetweenTempWriteAndRenameKeepsPrevious) {
  TempDir dir;
  const std::vector<uint8_t> seen = {1};
  ASSERT_TRUE(
      WriteCheckpoint(dir.path(), 5, 2, 4.0, MakeLog(5), seen, {9}).ok());
  // The crash shape: the NEXT checkpoint's temp file exists (even fully
  // written) but was never renamed. The loader must ignore it entirely.
  const std::string orphan = CheckpointPath(dir.path(), 9) + ".tmp";
  WriteFile(orphan, std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF});

  CheckpointData data;
  bool found = false;
  ASSERT_TRUE(LoadLatestCheckpoint(dir.path(), &data, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(data.seq, 5u);
}

TEST(ServeCheckpointTest, CorruptOrTornNewestFallsBackToPredecessor) {
  TempDir dir;
  const std::vector<uint8_t> seen = {1};
  ASSERT_TRUE(
      WriteCheckpoint(dir.path(), 5, 2, 4.0, MakeLog(5), seen, {9}).ok());
  ASSERT_TRUE(
      WriteCheckpoint(dir.path(), 9, 4, 8.0, MakeLog(9), seen, {1}).ok());

  // Bit-flip the newest: CRC rejects it, the previous one loads.
  const std::string newest = CheckpointPath(dir.path(), 9);
  std::vector<uint8_t> orig = ReadFile(newest);
  ASSERT_FALSE(orig.empty());
  std::vector<uint8_t> buf = orig;
  buf[buf.size() / 2] ^= 0x40;
  WriteFile(newest, buf);
  CheckpointData data;
  bool found = false;
  ASSERT_TRUE(LoadLatestCheckpoint(dir.path(), &data, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(data.seq, 5u);

  // Truncate the newest instead (torn): same fallback.
  buf = orig;
  buf.resize(buf.size() - 7);
  WriteFile(newest, buf);
  found = false;
  ASSERT_TRUE(LoadLatestCheckpoint(dir.path(), &data, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(data.seq, 5u);

  // Both gone: found=false with an OK status (recovery starts fresh).
  ASSERT_EQ(::unlink(newest.c_str()), 0);
  ASSERT_EQ(::unlink(CheckpointPath(dir.path(), 5).c_str()), 0);
  found = true;
  ASSERT_TRUE(LoadLatestCheckpoint(dir.path(), &data, &found).ok());
  EXPECT_FALSE(found);
}

TEST(ServeCheckpointTest, GcKeepsNewestTwo) {
  TempDir dir;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE(WriteCheckpoint(dir.path(), seq, seq, 1.0, MakeLog(seq), {1},
                                {static_cast<uint8_t>(seq)})
                    .ok());
  }
  size_t kept = 0;
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    struct stat sb;
    if (::stat(CheckpointPath(dir.path(), seq).c_str(), &sb) == 0) ++kept;
  }
  EXPECT_EQ(kept, kCheckpointsToKeep);
  CheckpointData data;
  bool found = false;
  ASSERT_TRUE(LoadLatestCheckpoint(dir.path(), &data, &found).ok());
  ASSERT_TRUE(found);
  EXPECT_EQ(data.seq, 5u);
}

}  // namespace
}  // namespace splash
