// Copyright 2026 The SPLASH Reproduction Authors.
//
// Read-path query micro-batching (DESIGN.md §5b), mirroring the ingest
// micro-batcher one layer down the stack: concurrent ServeClient callers
// enqueue into a bounded slot ring, one of them is elected leader, and the
// leader pins the snapshot ONCE for the whole group, runs the fused batch
// forward over the combined query matrix, and scatters rows + the common
// watermark back to the waiters.
//
// Flat-combining protocol:
//   - An in-flight counter gives the uncontended bypass: the first caller
//     in (previous count 0) runs the per-query path directly, so a lone
//     caller's p50 never pays ring/condvar overhead — and stays
//     allocation-free (tests/serve_coalesce_test.cc pins this).
//   - Contended callers push a stack-allocated slot into the FIFO ring.
//     The pusher that finds no active leader becomes the leader; everyone
//     else waits (short spin, then condvar) for slot.done.
//   - The leader lingers up to max_linger_s (cut short once the ring holds
//     a full batch, or once every in-flight caller is already queued), pops
//     up to max_batch slots in arrival order — FIFO, so no waiter can
//     starve — executes the group through the callback, and keeps draining
//     rounds until the ring is empty before retiring.
//   - A full ring falls back to the direct path rather than blocking.
//   - A hot flag remembers whether the last group combined >= 2 callers:
//     while hot, even a momentarily-uncontended caller enqueues (and leads)
//     instead of bypassing, so the first waiter to resubmit after a group
//     wake-up gathers the next group rather than straggling through a slow
//     per-query call. A leader that rounds up only itself clears the flag,
//     restoring the lone-caller bypass after one cheap batch-of-1 round.
//
// The callback owns snapshot pinning and result scatter; the coalescer is
// pure scheduling and knows nothing about predictors. Per-caller concerns
// (deadline flags, latency histograms) stay with the caller: it re-checks
// its own deadline and records its own latency after Submit returns.

#ifndef SPLASH_SERVE_COALESCER_H_
#define SPLASH_SERVE_COALESCER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/types.h"

namespace splash {

struct ServeResponse;

struct CoalesceOptions {
  /// Max callers combined into one leader execution. <= 1 disables
  /// coalescing entirely (every caller takes the direct path).
  size_t max_batch = 32;
  /// Leader gather window once contention is detected; keep it a few µs.
  /// 0 executes whatever is queued immediately.
  double max_linger_s = 2e-6;
  /// Slot-ring capacity; a full ring falls back to the direct path.
  size_t ring_slots = 256;
};

/// One waiting caller. Lives on the caller's stack for the duration of
/// Submit; the leader only touches it before the done store.
struct QuerySlot {
  const std::vector<PropertyQuery>* queries = nullptr;
  ServeResponse* resp = nullptr;
  std::atomic<bool> done{false};
};

class QueryCoalescer {
 public:
  /// Executes one coalesced group: pin once, batch-predict, scatter into
  /// each slot's resp. Must not throw.
  using ExecuteFn = void (*)(void* ctx, QuerySlot* const* slots, size_t n);

  QueryCoalescer(const CoalesceOptions& opts, ExecuteFn fn, void* ctx);

  /// Entry point for a caller holding a filled slot (queries/resp set,
  /// done false). Returns true when the slot was answered by a coalesced
  /// group (this caller may have been the leader). Returns false when the
  /// caller should run the per-query path itself — uncontended bypass,
  /// coalescing disabled, or ring full — and call EndDirect() when done.
  bool Submit(QuerySlot* slot);

  /// Closes a direct-path call opened by a false return from Submit.
  void EndDirect();

  uint64_t groups() const {
    return groups_.load(std::memory_order_relaxed);
  }
  uint64_t coalesced_callers() const {
    return coalesced_callers_.load(std::memory_order_relaxed);
  }
  uint64_t direct_calls() const {
    return direct_calls_.load(std::memory_order_relaxed);
  }
  uint64_t ring_full_fallbacks() const {
    return ring_full_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  void LeadRounds();

  const CoalesceOptions opts_;
  const ExecuteFn fn_;
  void* const ctx_;

  /// Callers currently inside Submit..EndDirect / Submit-coalesced. The
  /// fetch_add observing 0 is the uncontended-bypass test.
  std::atomic<uint32_t> inflight_{0};

  /// True after a group of >= 2; suppresses the prev==0 bypass so the
  /// post-group resubmission race re-forms a group instead of straggling.
  std::atomic<bool> hot_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<QuerySlot*> ring_;  // fixed capacity, mu_-guarded FIFO
  size_t head_ = 0;
  size_t size_ = 0;
  bool leader_active_ = false;
  std::vector<QuerySlot*> batch_;  // leader-only scratch (one leader max)

  std::atomic<uint64_t> groups_{0};
  std::atomic<uint64_t> coalesced_callers_{0};
  std::atomic<uint64_t> direct_calls_{0};
  std::atomic<uint64_t> ring_full_fallbacks_{0};
};

}  // namespace splash

#endif  // SPLASH_SERVE_COALESCER_H_
