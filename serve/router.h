// Copyright 2026 The SPLASH Reproduction Authors.
//
// ShardedSplashService (DESIGN.md §8): S = 2^k SplashService shards behind
// one QueryBackend. Ingest and single-node queries partition by
// `node & (S-1)` — the same scheme NeighborMemory uses one level down, so
// a node's entire streaming state (ring, degree, feature cache, SLIM
// updates from its labels) lives on exactly one shard:
//
//   IngestEdge(e) ──▶ shard[e.dst & (S-1)]       (destination-owned, like
//   SubmitTrain(q) ─▶ shard[q.node & (S-1)]       the neighbor rings)
//   PredictNode(v) ─▶ shard[v & (S-1)]            (one shard, one snapshot)
//   Predict(batch)/ScoreEdge ─▶ fan-out to owning shards, rows reassembled
//                               in caller order under a composite watermark
//
// Each shard is a full SplashService: its own apply thread, replica pair,
// ingest log, WAL/checkpoint directory (data_dir/shard-<i>/), and
// watermark. The router owns no lock on the query or ingest path — it is
// pure routing; shard-level machinery provides all synchronization.
//
// Composite watermark contract: a routed response carries one
// (shard, seq, time) entry per shard that contributed rows, plus scalar
// summaries (min seq / max time). Each shard's pair is consistent under
// that shard's snapshot pin and each shard's seq is monotone per client;
// there is NO cross-shard ordering promise — shard i at seq 100 and shard
// j at seq 40 says nothing about arrival interleaving between them. What
// IS promised (serve_router_test pins it): each row of a routed response
// is bit-identical to a serial replay of its owning shard's ingest log
// truncated at that shard's watermark entry.

#ifndef SPLASH_SERVE_ROUTER_H_
#define SPLASH_SERVE_ROUTER_H_

#include <memory>
#include <vector>

#include "core/status.h"
#include "serve/service.h"
#include "serve/shard.h"

namespace splash {

struct ShardedServiceOptions {
  /// Shard count; must be a power of two (the partition is a mask).
  uint32_t num_shards = 1;
  /// Per-shard service options, applied to every shard. A non-empty
  /// data_dir becomes the parent directory: shard i persists under
  /// `data_dir/shard-<i>/`.
  SplashServiceOptions shard;

  /// Field-named sanity check (shard count + the embedded per-shard
  /// options); ShardedSplashService::Start/RecoverOrStart run it first.
  Status Validate() const;
};

class ShardedSplashService final : public QueryBackend {
 public:
  ShardedSplashService(const SplashOptions& model_opts,
                       const ShardedServiceOptions& opts);
  ~ShardedSplashService() override;

  /// Starts every shard on the same warmup/split (each shard runs the
  /// identical deterministic Prepare/Fit, so all shards start from the
  /// same fitted weights). Stops already-started shards on failure.
  Status Start(const Dataset& warmup, const ChronoSplit& split,
               const TrainerOptions* fit = nullptr);

  /// Durable start: creates data_dir, then RecoverOrStart on every shard
  /// against its own subdirectory. Shards recover independently — one
  /// shard's lost history degrades that shard (and routed responses that
  /// touch it), not its siblings.
  Status RecoverOrStart(const Dataset& warmup, const ChronoSplit& split,
                        const TrainerOptions* fit = nullptr);

  // ---- QueryBackend (serve/shard.h) ----

  /// Routes the batch. When every row lands on one shard (always true for
  /// S=1 and PredictNode) the batch is forwarded whole — one virtual hop,
  /// no copy — and the composite stamp is that shard's watermark. Mixed
  /// batches are split into per-shard sub-batches (caller scratch), scored
  /// per shard, and reassembled in caller order.
  void ScoreQueries(const std::vector<PropertyQuery>& queries,
                    ClientScratch* scratch, ServeResponse* resp) override;

  /// Routes by destination: shard[e.dst & (S-1)]. An invalid edge is
  /// rejected by whichever shard the masked id lands on (counted there).
  IngestResult IngestEdge(const TemporalEdge& e) override;
  IngestResult SubmitTrain(const PropertyQuery& q) override;

  /// Flush/Stop every shard (in shard order; each blocks until that
  /// shard's accepted items are published).
  void Flush() override;
  void Stop() override;
  /// True while every shard runs.
  bool running() const override;
  /// Total edges published across shards.
  uint64_t published_seq() const override;
  CompositeWatermark Watermark() const override;
  /// Exact aggregate: counters via ServeCounters::MergeFrom, latency
  /// summaries from bucket-wise histogram merges across shards (plus this
  /// router's own clients) — never summary-of-summaries.
  ServeStats Stats() const override;

  // ---- Router surface ----

  /// OR over shards (any shard degraded degrades the service).
  bool degraded() const;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t ShardOf(NodeId node) const { return node & mask_; }
  /// Direct shard access (tests, per-shard probes); the shard keeps its
  /// full single-service surface.
  SplashService& shard(uint32_t i) { return *shards_[i]; }
  const SplashService& shard(uint32_t i) const { return *shards_[i]; }

 private:
  ShardedServiceOptions opts_;
  uint32_t mask_ = 0;
  std::vector<std::unique_ptr<SplashService>> shards_;
};

/// The routed reader handle is the plain ServeClient over the QueryBackend
/// interface — `RoutedClient client(&router)` and `ServeClient
/// client(&service)` are the same class, same scratch discipline, same
/// canonical Predict. The alias exists to make call sites say what they
/// route through.
using RoutedClient = ServeClient;

}  // namespace splash

#endif  // SPLASH_SERVE_ROUTER_H_
