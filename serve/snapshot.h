// Copyright 2026 The SPLASH Reproduction Authors.
//
// SnapshotGate: the reader/writer coordination of the serving layer's
// double-buffered snapshot (see serve/service.h and DESIGN.md §5).
//
// Two buffers hold two replicas of the model state. At any moment one is
// the *front* (the published read snapshot) and the other the *back* (the
// single writer's work area). Readers pin the front with a per-buffer
// refcount; the writer mutates only the back, publishes it by swapping the
// front index, and before touching the *new* back (the old front) waits
// for the readers still pinned there to drain.
//
// Progress guarantees:
//   - readers NEVER block ingest: Pin/Unpin are a handful of atomic ops
//     and the writer's publish is one atomic store — a reader holding a
//     pin delays only the writer's *next* reuse of that buffer, never the
//     enqueue path or the publish of the batch already applied;
//   - the writer's WaitReadersDrained spins (with yield) only on queries
//     that began before the previous publish — bounded by one query
//     latency, not by query arrival rate.
//
// Memory ordering: Publish() releases the writer's state mutations;
// Pin()'s acquire load of front_ observes them. A reader that raced a
// publish (pinned index i, then saw front_ != i) unpins and retries
// without having read any state, so WaitReadersDrained()'s acquire on the
// pin count is the writer's license to mutate: every reader that will ever
// read buffer i either already holds a visible pin or will re-route to the
// new front.

#ifndef SPLASH_SERVE_SNAPSHOT_H_
#define SPLASH_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace splash {

class SnapshotGate {
 public:
  SnapshotGate() : front_(0) {
    pins_[0].store(0, std::memory_order_relaxed);
    pins_[1].store(0, std::memory_order_relaxed);
  }

  SnapshotGate(const SnapshotGate&) = delete;
  SnapshotGate& operator=(const SnapshotGate&) = delete;

  /// Reader side: pins the current front buffer and returns its index.
  /// Pair with Unpin(). Lock-free; retries only when a publish races the
  /// pin (at most one extra iteration per concurrent publish).
  uint32_t Pin() const {
    for (;;) {
      const uint32_t idx = front_.load(std::memory_order_acquire);
      pins_[idx].fetch_add(1, std::memory_order_acq_rel);
      if (front_.load(std::memory_order_acquire) == idx) return idx;
      // A publish slipped between the load and the pin: this buffer may be
      // handed to the writer. Release it unread and re-route.
      pins_[idx].fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  void Unpin(uint32_t idx) const {
    pins_[idx].fetch_sub(1, std::memory_order_acq_rel);
  }

  uint32_t front() const { return front_.load(std::memory_order_acquire); }
  uint32_t back() const { return 1u - front(); }

  /// Writer side: publishes the back buffer as the new front. The caller
  /// must have finished all mutations of the back; the release store makes
  /// them visible to every subsequent Pin().
  void Publish() {
    front_.store(1u - front_.load(std::memory_order_relaxed),
                 std::memory_order_release);
  }

  /// Writer side: blocks until no reader holds a pin on `idx`. Called on
  /// the old front after Publish(), before mutating it as the new back.
  void WaitReadersDrained(uint32_t idx) const {
    while (pins_[idx].load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
  }

 private:
  std::atomic<uint32_t> front_;
  mutable std::atomic<uint32_t> pins_[2];
};

}  // namespace splash

#endif  // SPLASH_SERVE_SNAPSHOT_H_
