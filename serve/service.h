// Copyright 2026 The SPLASH Reproduction Authors.
//
// SplashService: the online serving front-end of the repo (DESIGN.md §5).
// It turns the offline replay substrate (core/ + eval/) into a concurrent
// ingest/query service:
//
//   producers ──IngestEdge/SubmitTrain──▶ bounded IngestQueue
//                                             │ micro-batch (size/time
//                                             ▼  watermark)
//                                        apply thread
//                          ObserveBulk + StageBatch/TrainStaged on the
//                          BACK replica, then Publish() ──▶ readers
//   readers  ──ServeClient::Predict*──▶ pinned FRONT replica
//                                        (const snapshot, watermarked)
//
// Snapshot isolation. The service owns TWO identically-seeded
// SplashPredictor replicas behind a SnapshotGate. The apply thread applies
// each micro-batch to the back replica, publishes it (one atomic store),
// then re-applies the same batch to the other replica on the runtime/
// PipelineThread (overlapped with waiting for the next batch), so both
// replicas replay the identical (ObserveBulk range, staged-train batch)
// sequence and are bit-identical state machines one batch apart. Readers
// pin the front replica and run the const query path
// (SplashPredictor::PredictBatchConst) with per-client scratch — no lock,
// no copy, never blocking ingest — and every response carries the
// watermark (applied-edge count + last applied timestamp) of the snapshot
// that answered it. The observe/predict boundary therefore stays explicit
// end to end: a query at watermark W reflects exactly the edges [0, W).
//
// Consistency contract (serve_service_test pins it): at SPLASH_THREADS=1 a
// response at watermark W is bit-identical to a serial replay of the
// ingest log truncated at W; at any thread count it is bit-identical to
// re-applying the recorded micro-batch sequence, and queries can never
// observe a torn state (the gate drains readers before a buffer is
// rewritten).
//
// Drift counters. The service boundary exposes live shift signals:
// fraction of queried nodes unseen at training time, novel node ids in the
// ingest stream, and timestamp regressions — the quantities the
// robustness-under-shift literature tracks, surfaced where an operator
// would watch them.

#ifndef SPLASH_SERVE_SERVICE_H_
#define SPLASH_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/splash.h"
#include "core/status.h"
#include "datasets/dataset.h"
#include "eval/timing.h"
#include "eval/trainer.h"
#include "graph/edge_stream.h"
#include "runtime/pipeline.h"
#include "serve/ingest_queue.h"
#include "serve/snapshot.h"

namespace splash {

struct SplashServiceOptions {
  /// Micro-batch size watermark: the apply thread coalesces up to this
  /// many ingest items per apply cycle.
  size_t microbatch_max_items = 256;
  /// Micro-batch time watermark: once one item is pending, how long the
  /// apply thread waits for the batch to fill before applying anyway.
  double microbatch_max_delay_s = 0.002;
  /// Ingest queue capacity (items) and what happens when it is full.
  size_t queue_capacity = 8192;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Apply SubmitTrain feedback as staged train steps at micro-batch
  /// boundaries (online continual learning). Off = feedback is dropped.
  bool train_on_ingest_labels = true;
  /// Test hook: record every applied micro-batch boundary and train batch
  /// so a test can re-apply the exact sequence (the >1-thread oracle).
  bool record_apply_log = false;
};

/// One answered query. `watermark_seq` edges (and every train batch at or
/// before that boundary) are reflected in `scores`; `watermark_time` is
/// the timestamp of the last reflected edge (0 when none).
struct ServeResponse {
  Matrix scores;               // B x out_dim class scores
  double score = 0.0;          // convenience margin (see PredictNode/ScoreEdge)
  uint64_t watermark_seq = 0;
  double watermark_time = 0.0;
};

/// Monotone counters of the service boundary (drift/quality signals).
struct ServeCounters {
  uint64_t ingest_accepted = 0;
  uint64_t ingest_dropped = 0;
  uint64_t train_accepted = 0;
  uint64_t train_dropped = 0;
  uint64_t batches_applied = 0;
  uint64_t train_steps = 0;
  uint64_t queries = 0;
  uint64_t unseen_node_queries = 0;  // queried node not in the train seen set
  uint64_t novel_ingest_nodes = 0;   // ids first observed by the service
  uint64_t time_regressions = 0;     // out-of-order timestamps clamped
  uint64_t published_seq = 0;
  double published_time = 0.0;
  size_t queue_depth = 0;
};

struct ServeStats {
  ServeCounters counters;
  LatencySummary predict;  // per-query latency, merged over clients
  LatencySummary ingest;   // producer enqueue latency (incl. block time)
  LatencySummary apply;    // per-micro-batch apply latency
};

class ServeClient;

class SplashService {
 public:
  SplashService(const SplashOptions& model_opts,
                const SplashServiceOptions& opts);
  ~SplashService();

  SplashService(const SplashService&) = delete;
  SplashService& operator=(const SplashService&) = delete;

  /// Prepares both replicas on `warmup` (feature fitting + selection and,
  /// when `fit` is non-null, a full StreamTrainer::Fit — deterministic, so
  /// the replicas end bit-identical), resets streaming state, and starts
  /// the apply thread. The ingest log starts empty: watermark 0 means "no
  /// edge beyond the fitted weights".
  Status Start(const Dataset& warmup, const ChronoSplit& split,
               const TrainerOptions* fit = nullptr);

  /// Enqueues one edge. Returns false when rejected at the boundary
  /// (invalid endpoint / non-finite timestamp — counted as
  /// ingest_dropped) or dropped (kDropNewest backlog, service not
  /// running). Out-of-order timestamps are clamped to the log's max at
  /// apply time (counted as time_regressions).
  bool IngestEdge(const TemporalEdge& e);

  /// Enqueues one labeled training query, applied as part of a staged
  /// train step at the next micro-batch boundary (after that batch's
  /// edges). Returns false when dropped.
  bool SubmitTrain(const PropertyQuery& q);

  /// Blocks until everything accepted before the call is applied AND
  /// published. No-op when not running.
  void Flush();

  /// Drains the queue, applies the tail, stops the apply thread. Queries
  /// remain valid after Stop() (the final snapshot stays published).
  void Stop();

  bool running() const { return running_; }
  ServeStats Stats() const;
  uint64_t published_seq() const;

  /// Test hooks — stable only while quiescent (after Flush() with no
  /// concurrent producers, or after Stop()).
  const EdgeStream& ingest_log() const { return log_; }
  /// Cumulative edge count at each applied micro-batch boundary
  /// (record_apply_log only).
  const std::vector<uint64_t>& applied_batch_bounds() const {
    return batch_bounds_;
  }
  /// (edge count at application, train batch) pairs (record_apply_log
  /// only).
  const std::vector<std::pair<uint64_t, std::vector<PropertyQuery>>>&
  applied_train_batches() const {
    return train_log_;
  }

 private:
  friend class ServeClient;

  void ApplyLoop();
  void ApplyBatchTo(SplashPredictor* rep, size_t edge_begin, size_t edge_end,
                    const std::vector<PropertyQuery>& train);

  SplashOptions model_opts_;
  SplashServiceOptions opts_;

  std::unique_ptr<SplashPredictor> replicas_[2];
  SnapshotGate gate_;
  // Per-buffer watermark, written by the apply thread while the buffer is
  // the (exclusive) back, published to readers by gate_.Publish().
  uint64_t wm_seq_[2] = {0, 0};
  double wm_time_[2] = {0.0, 0.0};

  IngestQueue queue_;
  EdgeStream log_;  // apply-thread-owned append; snapshot reads via bounds
  std::thread apply_thread_;
  PipelineThread pipe_;  // runs the catch-up re-apply of the old front
  std::atomic<bool> running_{false};
  // Set (release) once Start() finished initializing both replicas and
  // never cleared: the query path's acquire load is its happens-before
  // edge to the replica pointers, so a Predict racing Start() returns an
  // empty response instead of reading half-prepared state. Queries stay
  // valid after Stop() (running_ false, started_ true).
  std::atomic<bool> started_{false};

  // Flush accounting: items accepted vs applied (mu_flush_ guards applied).
  std::atomic<uint64_t> accepted_items_{0};
  mutable std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  uint64_t applied_items_ = 0;

  // Counters (relaxed; read by Stats()).
  std::atomic<uint64_t> ingest_accepted_{0}, ingest_dropped_{0};
  std::atomic<uint64_t> train_accepted_{0}, train_dropped_{0};
  std::atomic<uint64_t> batches_applied_{0}, train_steps_{0};
  std::atomic<uint64_t> queries_{0}, unseen_node_queries_{0};
  std::atomic<uint64_t> novel_ingest_nodes_{0}, time_regressions_{0};

  // Endpoint histograms. Ingest-enqueue latency is striped by producer
  // thread (hash of thread id) so concurrent producers do not serialize
  // on one mutex just to bump a bucket; the apply histogram has a single
  // writer and shares the stats lock. Per-client predict histograms are
  // merged by Stats() under clients_mu_.
  static constexpr size_t kIngestHistStripes = 8;
  struct HistStripe {
    std::mutex mu;
    LatencyHistogram hist;
  };
  mutable HistStripe ingest_hist_[kIngestHistStripes];
  void RecordIngestNs(uint64_t ns);
  mutable std::mutex hist_mu_;
  LatencyHistogram apply_hist_;
  mutable std::mutex clients_mu_;
  std::vector<ServeClient*> clients_;
  LatencyHistogram retired_predict_hist_;  // folded in on client unregister

  // Apply-thread state.
  std::vector<IngestItem> batch_scratch_;
  std::vector<PropertyQuery> train_scratch_;   // current batch (apply side)
  std::vector<PropertyQuery> catchup_train_;   // stable copy for the pipe job
  std::vector<uint8_t> node_seen_;             // novel-id tracking
  std::vector<uint64_t> batch_bounds_;         // record_apply_log
  std::vector<std::pair<uint64_t, std::vector<PropertyQuery>>> train_log_;
};

/// A reader handle: owns the per-thread query scratch and the per-client
/// predict latency histogram. One per reader thread; must not outlive the
/// service. Queries are wait-free with respect to ingest.
class ServeClient {
 public:
  explicit ServeClient(SplashService* service);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Scores a batch of property queries against the current snapshot.
  ServeResponse Predict(const std::vector<PropertyQuery>& queries);

  /// Scores one node; `score` = class-1 margin (scores(0,1) - scores(0,0)).
  ServeResponse PredictNode(NodeId node, double time);

  /// Scores an edge as max of its endpoints' class-1 margins (the
  /// service-level anomaly score; both endpoints share one snapshot).
  ServeResponse ScoreEdge(NodeId src, NodeId dst, double time);

 private:
  friend class SplashService;

  SplashService* service_;
  SplashQueryScratch scratch_;
  std::vector<PropertyQuery> query_scratch_;  // for the 1-2 row endpoints
  std::mutex hist_mu_;  // Record vs Stats() merge
  LatencyHistogram predict_hist_;
};

}  // namespace splash

#endif  // SPLASH_SERVE_SERVICE_H_
