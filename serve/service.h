// Copyright 2026 The SPLASH Reproduction Authors.
//
// SplashService: the online serving front-end of the repo (DESIGN.md §5).
// It turns the offline replay substrate (core/ + eval/) into a concurrent
// ingest/query service:
//
//   producers ──IngestEdge/SubmitTrain──▶ bounded IngestQueue
//                                             │ micro-batch (size/time
//                                             ▼  watermark)
//                                        apply thread
//                          ObserveBulk + StageBatch/TrainStaged on the
//                          BACK replica, then Publish() ──▶ readers
//   readers  ──ServeClient::Predict*──▶ pinned FRONT replica
//                                        (const snapshot, watermarked)
//
// Snapshot isolation. The service owns TWO identically-seeded
// SplashPredictor replicas behind a SnapshotGate. The apply thread applies
// each micro-batch to the back replica, publishes it (one atomic store),
// then re-applies the same batch to the other replica on the runtime/
// PipelineThread (overlapped with waiting for the next batch), so both
// replicas replay the identical (ObserveBulk range, staged-train batch)
// sequence and are bit-identical state machines one batch apart. Readers
// pin the front replica and run the const query path
// (SplashPredictor::PredictBatchConst) with per-client scratch — no lock,
// no copy, never blocking ingest — and every response carries the
// watermark (applied-edge count + last applied timestamp) of the snapshot
// that answered it. The observe/predict boundary therefore stays explicit
// end to end: a query at watermark W reflects exactly the edges [0, W).
//
// Consistency contract (serve_service_test pins it): at SPLASH_THREADS=1 a
// response at watermark W is bit-identical to a serial replay of the
// ingest log truncated at W; at any thread count it is bit-identical to
// re-applying the recorded micro-batch sequence, and queries can never
// observe a torn state (the gate drains readers before a buffer is
// rewritten).
//
// Drift counters. The service boundary exposes live shift signals:
// fraction of queried nodes unseen at training time, novel node ids in the
// ingest stream, and timestamp regressions — the quantities the
// robustness-under-shift literature tracks, surfaced where an operator
// would watch them.
//
// The service is one QueryBackend (serve/shard.h); N of them compose into
// a node-partitioned ShardedSplashService (serve/router.h) behind the same
// interface.

#ifndef SPLASH_SERVE_SERVICE_H_
#define SPLASH_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/serialize.h"
#include "core/splash.h"
#include "core/status.h"
#include "datasets/dataset.h"
#include "eval/timing.h"
#include "eval/trainer.h"
#include "graph/edge_stream.h"
#include "runtime/pipeline.h"
#include "serve/coalescer.h"
#include "serve/ingest_queue.h"
#include "serve/shard.h"
#include "serve/snapshot.h"
#include "serve/wal.h"

namespace splash {

struct SplashServiceOptions {
  /// Micro-batch size watermark: the apply thread coalesces up to this
  /// many ingest items per apply cycle.
  size_t microbatch_max_items = 256;
  /// Micro-batch time watermark: once one item is pending, how long the
  /// apply thread waits for the batch to fill before applying anyway.
  double microbatch_max_delay_s = 0.002;
  /// Ingest queue capacity (items) and what happens when it is full.
  size_t queue_capacity = 8192;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Apply SubmitTrain feedback as staged train steps at micro-batch
  /// boundaries (online continual learning). Off = feedback is dropped.
  bool train_on_ingest_labels = true;
  /// Test hook: record every applied micro-batch boundary and train batch
  /// so a test can re-apply the exact sequence (the >1-thread oracle).
  bool record_apply_log = false;

  // ---- Read-path query coalescing (DESIGN.md §5b). Mirrors the ingest
  // micro-batcher: contended Predict* callers are combined into one
  // snapshot pin + fused batch forward. A lone caller always bypasses
  // (uncontended p50 is untouched and stays allocation-free).
  /// Max callers combined per leader round; <= 1 disables coalescing.
  size_t coalesce_max_batch = 32;
  /// Leader gather window once contention is detected (a few µs).
  double coalesce_max_linger_s = 2e-6;
  /// Waiter-slot ring capacity; a full ring falls back to the direct path.
  size_t coalesce_ring_slots = 256;

  // ---- Durability (DESIGN.md §7). Empty data_dir = no durability: the
  // service behaves exactly as before this layer existed.
  /// Directory for WAL segments and checkpoints. Non-empty enables the
  /// durability layer; use RecoverOrStart() instead of Start().
  std::string data_dir;
  /// Group-commit fsync policy for WAL appends.
  WalFsyncPolicy wal_fsync = WalFsyncPolicy::kBatch;
  /// kBatch: fsync once per this many appended records.
  size_t wal_group_records = 8;
  /// Take a checkpoint every N applied micro-batches (0 = only at Stop).
  /// Checkpoints run on the apply thread at a quiesced watermark; queries
  /// keep being served from the published snapshot throughout.
  uint64_t checkpoint_interval_batches = 256;
  /// Checkpoint once more when Stop() drains (fast restart: empty WAL tail).
  bool checkpoint_on_stop = true;
  /// Delete WAL segments made redundant by a successful checkpoint. Tests
  /// and the crash harness disable this to keep the full apply history
  /// available for the bit-exact recovery oracle.
  bool gc_wal_on_checkpoint = true;

  // ---- Read-replica precision (DESIGN.md §6). The const query path
  // streams SLIM's packed weight operands; bf16 halves their resident
  // bytes at a bounded score perturbation, fp32 stays the determinism
  // reference (and the default).
  /// "fp32", "bf16", or "" = resolve from the SPLASH_REPLICA_PRECISION
  /// environment variable (unset/empty env = fp32). Applied to both
  /// replicas at Start/RecoverOrStart, including the checkpoint-restore
  /// path.
  std::string replica_precision;
  /// The effective precision string after env resolution.
  std::string ResolvedReplicaPrecision() const;

  /// Field-named sanity check, run by Start/RecoverOrStart before any
  /// thread or file is touched: a misconfigured service refuses to start
  /// with an error naming the offending field instead of deadlocking or
  /// silently disabling a layer at runtime.
  Status Validate() const;
};

class SplashService final : public QueryBackend {
 public:
  SplashService(const SplashOptions& model_opts,
                const SplashServiceOptions& opts);
  ~SplashService() override;

  /// Prepares both replicas on `warmup` (feature fitting + selection and,
  /// when `fit` is non-null, a full StreamTrainer::Fit — deterministic, so
  /// the replicas end bit-identical), resets streaming state, and starts
  /// the apply thread. The ingest log starts empty: watermark 0 means "no
  /// edge beyond the fitted weights".
  Status Start(const Dataset& warmup, const ChronoSplit& split,
               const TrainerOptions* fit = nullptr);

  /// Durable start (requires Options::data_dir). Loads the newest valid
  /// checkpoint if one exists (otherwise runs the same deterministic
  /// Prepare/Fit as Start), replays the WAL tail past it — preserving the
  /// recorded micro-batch boundaries, so train-step composition and with
  /// it every weight bit is reproduced — publishes snapshots as replay
  /// advances (responses carry degraded=true until caught up), opens a
  /// fresh WAL segment at the recovered watermark, and starts the apply
  /// thread. With an empty data_dir this is exactly Start().
  Status RecoverOrStart(const Dataset& warmup, const ChronoSplit& split,
                        const TrainerOptions* fit = nullptr);

  // ---- QueryBackend (serve/shard.h) ----

  /// The canonical read path: scores `queries` against the pinned front
  /// replica into `resp` (uncontended callers take the direct per-query
  /// path; contended callers may be combined by the QueryCoalescer — same
  /// scores bit-for-bit). Wait-free with respect to ingest. A call racing
  /// Start() returns an empty response rather than reading half-prepared
  /// state.
  void ScoreQueries(const std::vector<PropertyQuery>& queries,
                    ClientScratch* scratch, ServeResponse* resp) override;

  /// Enqueues one edge. kInvalid on boundary rejection (invalid endpoint /
  /// non-finite timestamp — counted as ingest_dropped), kBacklogDropped on
  /// a kDropNewest backlog drop, kStopped when not running. Out-of-order
  /// timestamps are clamped to the log's max at apply time (counted as
  /// time_regressions).
  IngestResult IngestEdge(const TemporalEdge& e) override;

  /// Enqueues one labeled training query, applied as part of a staged
  /// train step at the next micro-batch boundary (after that batch's
  /// edges). kInvalid when train_on_ingest_labels is off.
  IngestResult SubmitTrain(const PropertyQuery& q) override;

  /// Blocks until everything accepted before the call is applied AND
  /// published. No-op when not running.
  void Flush() override;

  /// Drains the queue, applies the tail, stops the apply thread. Queries
  /// remain valid after Stop() (the final snapshot stays published).
  /// Idempotent and safe before Start(): a never-started service ignores
  /// the call (and its queue stays usable for a later Start).
  void Stop() override;

  bool running() const override { return running_; }
  ServeStats Stats() const override;
  uint64_t published_seq() const override;
  /// One-shard composite: a single (0, seq, time) entry read consistently
  /// under one pin.
  CompositeWatermark Watermark() const override;

  // ---- Single-service surface ----

  /// Sticky degraded flag: set on durability I/O errors and on WAL replay
  /// gaps at recovery — "serving, but not everything promised durable/
  /// recoverable held". Never set while data_dir is unset.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  /// Watermark recovery restored to (checkpoint + replayed WAL tail).
  uint64_t recovered_seq() const { return recovered_seq_; }
  bool recovered_from_checkpoint() const {
    return recovered_from_checkpoint_;
  }

  /// Counters only (no histogram merge) — the router aggregates shards
  /// via ServeCounters::MergeFrom without summarizing twice.
  ServeCounters Counters() const;
  /// Folds this service's endpoint histograms into the given accumulators
  /// (exact bucket-wise merges; Stats() and the router build on this).
  void MergeEndpointHistograms(LatencyHistogram* ingest,
                               LatencyHistogram* apply) const;
  /// The published (seq, time) pair, read consistently under one pin.
  void PublishedWatermark(uint64_t* seq, double* time) const;

  /// Test hooks — stable only while quiescent (after Flush() with no
  /// concurrent producers, or after Stop()).
  const EdgeStream& ingest_log() const { return log_; }
  /// Cumulative edge count at each applied micro-batch boundary
  /// (record_apply_log only).
  const std::vector<uint64_t>& applied_batch_bounds() const {
    return batch_bounds_;
  }
  /// (edge count at application, train batch) pairs (record_apply_log
  /// only).
  const std::vector<std::pair<uint64_t, std::vector<PropertyQuery>>>&
  applied_train_batches() const {
    return train_log_;
  }
  /// Serializes the quiescent predictor state (the back replica — after
  /// Flush with no concurrent producers, or after Stop, both replicas are
  /// bit-identical). The byte-comparison handle of the recovery oracle.
  void SerializePredictorState(ByteWriter* w) const;

 private:
  /// Leader-side execution of one coalesced read group: gathers every
  /// slot's queries into one batch, pins the snapshot ONCE, runs the fused
  /// batch forward with leader-owned scratch, then scatters score rows and
  /// the common watermark/degraded flag back into each slot's response.
  /// Service counters are bumped once per group. Exactly one leader runs
  /// at a time (QueryCoalescer guarantees it), so the gather scratch needs
  /// no lock.
  void ExecuteCoalescedGroup(QuerySlot* const* slots, size_t n);
  static void ExecuteCoalescedGroupThunk(void* ctx, QuerySlot* const* slots,
                                         size_t n);

  void ApplyLoop();
  void ApplyBatchTo(SplashPredictor* rep, size_t edge_begin, size_t edge_end,
                    const std::vector<PropertyQuery>& train);
  /// Shared Start/RecoverOrStart pieces: deterministic replica prep (+fit)
  /// and warmup-derived log/seen-set initialization.
  Status PrepareReplicas(const Dataset& warmup, const ChronoSplit& split,
                         const TrainerOptions* fit);
  void InitLogFromWarmup(const Dataset& warmup);
  /// Clamp + novel-id accounting + log append for one validated edge.
  /// Returns the post-clamp edge (what the WAL records).
  TemporalEdge AppendEdgeToLog(TemporalEdge e);
  /// Quiesced-state checkpoint + WAL rotation (apply thread / recovery
  /// path only; both replicas must be identical at the published W).
  void WriteServiceCheckpoint();
  void NoteWalError();
  void MirrorWalFsyncs();

  SplashOptions model_opts_;
  SplashServiceOptions opts_;

  std::unique_ptr<SplashPredictor> replicas_[2];
  SnapshotGate gate_;
  // Per-buffer watermark, written by the apply thread while the buffer is
  // the (exclusive) back, published to readers by gate_.Publish().
  uint64_t wm_seq_[2] = {0, 0};
  double wm_time_[2] = {0.0, 0.0};

  IngestQueue queue_;
  QueryCoalescer coalescer_;
  // Leader-only scratch for coalesced groups (one leader at a time).
  std::vector<PropertyQuery> gather_queries_;
  SplashQueryScratch gather_scratch_;
  EdgeStream log_;  // apply-thread-owned append; snapshot reads via bounds
  std::thread apply_thread_;
  PipelineThread pipe_;  // runs the catch-up re-apply of the old front
  std::atomic<bool> running_{false};
  // Set (release) once Start() finished initializing both replicas and
  // never cleared: the query path's acquire load is its happens-before
  // edge to the replica pointers, so a Predict racing Start() returns an
  // empty response instead of reading half-prepared state. Queries stay
  // valid after Stop() (running_ false, started_ true).
  std::atomic<bool> started_{false};

  // Flush accounting: items accepted vs applied (mu_flush_ guards applied).
  std::atomic<uint64_t> accepted_items_{0};
  mutable std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  uint64_t applied_items_ = 0;

  // Counters (relaxed; read by Stats()).
  std::atomic<uint64_t> ingest_accepted_{0}, ingest_dropped_{0};
  std::atomic<uint64_t> train_accepted_{0}, train_dropped_{0};
  std::atomic<uint64_t> batches_applied_{0}, train_steps_{0};
  std::atomic<uint64_t> queries_{0}, unseen_node_queries_{0};
  std::atomic<uint64_t> novel_ingest_nodes_{0}, time_regressions_{0};

  // Endpoint histograms. Ingest-enqueue latency is striped by producer
  // thread (hash of thread id) so concurrent producers do not serialize
  // on one mutex just to bump a bucket; the apply histogram has a single
  // writer and shares the stats lock. Per-client predict histograms live
  // with the clients and are merged via the QueryBackend registry.
  static constexpr size_t kIngestHistStripes = 8;
  struct HistStripe {
    std::mutex mu;
    LatencyHistogram hist;
  };
  mutable HistStripe ingest_hist_[kIngestHistStripes];
  void RecordIngestNs(uint64_t ns);
  mutable std::mutex hist_mu_;
  LatencyHistogram apply_hist_;

  // Apply-thread state.
  std::vector<IngestItem> batch_scratch_;
  std::vector<PropertyQuery> train_scratch_;   // current batch (apply side)
  std::vector<PropertyQuery> catchup_train_;   // stable copy for the pipe job
  std::vector<uint8_t> node_seen_;             // novel-id tracking
  std::vector<uint64_t> batch_bounds_;         // record_apply_log
  std::vector<std::pair<uint64_t, std::vector<PropertyQuery>>> train_log_;

  // Durability state (apply-thread-owned except the atomics).
  bool durable_ = false;
  WalWriter wal_;
  WalRecord wal_rec_;                  // reused append scratch
  ByteWriter ckpt_state_scratch_;      // predictor blob for checkpoints
  uint64_t wal_batch_index_ = 0;       // next record's batch_index
  uint64_t wal_fsyncs_base_ = 0;       // per-segment fsync count mirrored
  uint64_t batches_since_checkpoint_ = 0;
  uint64_t recovered_seq_ = 0;
  bool recovered_from_checkpoint_ = false;
  std::atomic<bool> degraded_{false};
  // Replay target during recovery: snapshots below it answer degraded.
  std::atomic<uint64_t> recovery_target_seq_{0};
  std::atomic<uint64_t> wal_records_{0}, wal_fsyncs_{0}, wal_io_errors_{0};
  std::atomic<uint64_t> checkpoints_written_{0}, recovery_replayed_{0};
};

}  // namespace splash

#endif  // SPLASH_SERVE_SERVICE_H_
