// Copyright 2026 The SPLASH Reproduction Authors.
//
// The serve-tier API (DESIGN.md §8): the types shared by every query
// backend — the single SplashService (serve/service.h) and the sharded
// router in front of N of them (serve/router.h) — and the ServeClient
// reader handle that talks to either through the QueryBackend interface.
//
//   ServeClient ──QueryBackend::ScoreQueries──▶ SplashService        (S=1)
//                                          └──▶ ShardedSplashService (S=2^k)
//                                                 │ node & (S-1)
//                                                 ▼
//                                               shard i: SplashService
//
// Everything here is backend-agnostic: responses, watermarks (scalar and
// composite), ingest admission results, counters, and the per-client
// scratch/histogram plumbing. The backends own the concurrency story.

#ifndef SPLASH_SERVE_SHARD_H_
#define SPLASH_SERVE_SHARD_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/splash.h"
#include "eval/timing.h"
#include "graph/edge_stream.h"

namespace splash {

/// Admission result of IngestEdge/SubmitTrain. Distinguishes retryable
/// rejection (backlog under kDropNewest — the item was valid, the queue
/// was full *now*) from permanent rejection (invalid at the boundary, or
/// the service stopped), so retry loops and routers need not consult
/// counters to decide. Contextually converts to bool ("accepted") for
/// source compat with the old bool returns: `if (svc.IngestEdge(e))` and
/// EXPECT_TRUE keep working, but the conversion is explicit so a result
/// can never be accidentally compared against an int.
class IngestResult {
 public:
  enum Code : uint8_t {
    kAccepted = 0,        // enqueued; will be applied and published
    kInvalid = 1,         // boundary rejection (bad id / non-finite time
                          //  / labels disabled) — retrying cannot help
    kBacklogDropped = 2,  // kDropNewest backlog drop — retryable
    kStopped = 3,         // service not running — permanent for this handle
  };

  constexpr IngestResult(Code code) : code_(code) {}  // NOLINT(runtime/explicit)

  constexpr Code code() const { return code_; }
  constexpr bool accepted() const { return code_ == kAccepted; }
  /// True when the same call may succeed later (backlog pressure).
  constexpr bool retryable() const { return code_ == kBacklogDropped; }

  constexpr explicit operator bool() const { return accepted(); }
  constexpr bool operator==(IngestResult o) const { return code_ == o.code_; }
  constexpr bool operator!=(IngestResult o) const { return code_ != o.code_; }

 private:
  Code code_;
};

/// One shard's published watermark: `seq` edges of that shard's ingest log
/// (and every train batch at or before that boundary) are reflected;
/// `time` is the timestamp of the last reflected edge (0 when none).
struct ShardWatermark {
  uint32_t shard = 0;
  uint64_t seq = 0;
  double time = 0.0;
};

/// The sharded service's watermark: one (seq, time) per shard, each pair
/// read consistently under that shard's snapshot pin, plus scalar
/// summaries. Per-shard seq is monotone; there is NO cross-shard ordering
/// promise (see DESIGN.md §8 for what a composite watermark does and does
/// not mean).
struct CompositeWatermark {
  std::vector<ShardWatermark> shards;
  uint64_t min_seq = 0;    // min over shards (0 when no shards)
  uint64_t total_seq = 0;  // sum over shards: total edges published
  double max_time = 0.0;   // max over shards
};

/// One answered query batch. `watermark_seq` edges (and every train batch
/// at or before that boundary) are reflected in `scores`; `watermark_time`
/// is the timestamp of the last reflected edge (0 when none). On a routed
/// response those scalars summarize `shard_watermarks` (min seq / max time
/// over the shards that answered); on a single-service response
/// `shard_watermarks` stays empty.
struct ServeResponse {
  Matrix scores;               // B x out_dim class scores
  double score = 0.0;          // convenience margin (see PredictNode/ScoreEdge)
  uint64_t watermark_seq = 0;
  double watermark_time = 0.0;
  /// Routed responses only: the (shard, seq, time) of every shard that
  /// contributed rows, ascending by shard id. Empty on single-service
  /// responses (the scalar fields are that shard's watermark directly).
  std::vector<ShardWatermark> shard_watermarks;
  /// True while the snapshot trails what recovery knows is durable (WAL
  /// replay still catching up) or after a durability I/O error put the
  /// service into degraded (serving-but-not-logging) mode. On a routed
  /// response: OR over the shards that answered.
  bool degraded = false;
  /// Set when the caller passed a deadline to PredictNode/ScoreEdge/Predict
  /// and the call overran it (the answer is still returned — the flag lets
  /// the caller decide whether a late answer is a useful answer).
  bool deadline_exceeded = false;
};

/// Monotone counters of the service boundary (drift/quality signals).
struct ServeCounters {
  uint64_t ingest_accepted = 0;
  uint64_t ingest_dropped = 0;
  uint64_t train_accepted = 0;
  uint64_t train_dropped = 0;
  uint64_t batches_applied = 0;
  uint64_t train_steps = 0;
  uint64_t queries = 0;
  uint64_t unseen_node_queries = 0;  // queried node not in the train seen set
  // Read-path coalescing (DESIGN.md §5b).
  uint64_t coalesced_groups = 0;    // leader rounds executed
  uint64_t coalesced_callers = 0;   // Predict* calls answered via a group
  uint64_t direct_calls = 0;        // bypass / fallback per-query calls
  uint64_t novel_ingest_nodes = 0;   // ids first observed by the service
  uint64_t time_regressions = 0;     // out-of-order timestamps clamped
  uint64_t published_seq = 0;        // merged: SUM over shards
  double published_time = 0.0;       // merged: max over shards
  size_t queue_depth = 0;            // merged: sum over shards
  size_t queue_high_watermark = 0;   // merged: max over shards
  // Durability counters (all zero when data_dir is unset).
  uint64_t wal_records = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_io_errors = 0;
  uint64_t checkpoints_written = 0;
  uint64_t recovered_seq = 0;             // watermark recovery restored to
  uint64_t recovery_replayed_batches = 0; // WAL records replayed at recovery
  bool degraded = false;                  // merged: OR over shards

  /// Folds `other` into this counter set so a sharded service's Stats()
  /// is an exact aggregate: monotone counts (and seq-like totals) add;
  /// high-watermark/latest-time fields take the max; degraded ORs. The
  /// drift signals the shards export individually (unseen queries, novel
  /// ids, time regressions) survive aggregation as exact sums, never
  /// averages.
  void MergeFrom(const ServeCounters& other);
};

struct ServeStats {
  ServeCounters counters;
  LatencySummary predict;  // per-query latency, merged over clients
  LatencySummary ingest;   // producer enqueue latency (incl. block time)
  LatencySummary apply;    // per-micro-batch apply latency
};

/// One client's predict-latency histogram, registered with a backend so
/// Stats() can merge it. The mutex serializes the client's RecordNs
/// against the backend's Stats() walk.
struct ClientHistogram {
  std::mutex mu;
  LatencyHistogram hist;
};

/// Caller-owned scratch threaded through QueryBackend::ScoreQueries. All
/// members are grow-only, so a client that reuses one scratch (ServeClient
/// owns one) keeps the steady-state read path allocation-free for both
/// backends (the counting-allocator gate in serve_coalesce_test pins the
/// single-service path).
struct ClientScratch {
  SplashQueryScratch predict;  // batch tensors + SLIM forward scratch
  // Router fan-out state (untouched by a single SplashService): per-shard
  // sub-batches, per-shard responses, and the caller-order row map.
  std::vector<std::vector<PropertyQuery>> shard_queries;
  std::vector<ServeResponse> shard_responses;
  std::vector<uint32_t> row_shard;  // row i's owning shard
  std::vector<uint32_t> row_index;  // row i's index within its sub-batch
};

/// The query/ingest surface both the single SplashService and the sharded
/// router implement. ONE canonical scoring form — out-param, batch,
/// scratch-threaded — replaces the old six Predict*/ScoreEdge overloads on
/// the client (which are now thin wrappers over it). The contract every
/// backend honors:
///
///  * ScoreQueries never blocks on ingest; responses carry the watermark
///    (scalar, plus per-shard entries on routed responses) of the
///    snapshot(s) that answered, and scores at watermark W are
///    bit-identical to a serial replay of the (per-shard) ingest log
///    truncated at W.
///  * IngestEdge/SubmitTrain classify every rejection (IngestResult) so
///    callers can distinguish retryable backlog from permanent rejection.
///  * Flush() blocks until everything accepted before the call is applied
///    AND published (on every shard); Stop() drains and halts apply, after
///    which queries remain valid against the final snapshots.
class QueryBackend {
 public:
  virtual ~QueryBackend();

  QueryBackend() = default;
  QueryBackend(const QueryBackend&) = delete;
  QueryBackend& operator=(const QueryBackend&) = delete;

  /// Scores `queries` against the current snapshot(s) into `resp`.
  /// `scratch` must outlive the call and be used by one thread at a time;
  /// `resp` and `scratch` are grow-only across calls.
  virtual void ScoreQueries(const std::vector<PropertyQuery>& queries,
                            ClientScratch* scratch, ServeResponse* resp) = 0;

  /// Enqueues one edge (routed by destination on a sharded backend).
  /// Out-of-order timestamps are clamped per shard at apply time.
  virtual IngestResult IngestEdge(const TemporalEdge& e) = 0;

  /// Enqueues one labeled training query, applied as part of a staged
  /// train step at the owning shard's next micro-batch boundary.
  virtual IngestResult SubmitTrain(const PropertyQuery& q) = 0;

  virtual void Flush() = 0;
  virtual void Stop() = 0;
  virtual bool running() const = 0;
  /// Total edges published across the backend (sum over shards).
  virtual uint64_t published_seq() const = 0;
  /// Per-shard (seq, time) pairs, each consistent under its shard's pin.
  virtual CompositeWatermark Watermark() const = 0;
  virtual ServeStats Stats() const = 0;

  // Client registry: ServeClient registers its histogram so the backend's
  // Stats() can merge per-client predict latency; a departed client's
  // samples are folded into the retired digest.
  void RegisterClient(ClientHistogram* client);
  void UnregisterClient(ClientHistogram* client);

  /// Live + retired predict histograms of THIS backend's registered
  /// clients, merged (exact). Backends call it from Stats(); the router
  /// also folds in each shard's digest (clients may attach to a shard
  /// directly).
  LatencyHistogram MergedClientHistogram() const;

 private:
  mutable std::mutex clients_mu_;
  std::vector<ClientHistogram*> clients_;
  LatencyHistogram retired_predict_hist_;
};

/// A reader handle: owns the per-thread query scratch and the per-client
/// predict latency histogram. One per reader thread; must not outlive the
/// backend. Queries are wait-free with respect to ingest. Works against
/// any QueryBackend — construct with `&service` or `&router` alike.
class ServeClient {
 public:
  explicit ServeClient(QueryBackend* backend);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// The canonical call: scores a batch of property queries against the
  /// current snapshot(s) into a caller-owned response. `resp`'s score
  /// matrix is grow-only, so reusing one response across calls keeps the
  /// steady-state single-caller read path allocation-free (the
  /// counting-allocator gate in tests/serve_coalesce_test.cc pins this).
  /// `timeout_s` > 0 sets a per-call deadline: the answer is always
  /// computed (queries never block on ingest, so there is nothing to
  /// cancel), but `deadline_exceeded` is set when the call overran it.
  /// Under concurrency the call may be answered by a coalesced group
  /// (DESIGN.md §5b) — same scores bit-for-bit, one shared snapshot pin.
  void Predict(const std::vector<PropertyQuery>& queries, ServeResponse* resp,
               double timeout_s = 0.0);

  /// By-value convenience wrapper over the canonical form.
  ServeResponse Predict(const std::vector<PropertyQuery>& queries,
                        double timeout_s = 0.0);

  /// Scores one node; `score` = class-1 margin (scores(0,1) - scores(0,0)).
  /// On a sharded backend this routes to the owning shard alone.
  void PredictNode(NodeId node, double time, ServeResponse* resp,
                   double timeout_s = 0.0);
  ServeResponse PredictNode(NodeId node, double time, double timeout_s = 0.0);

  /// Scores an edge as max of its endpoints' class-1 margins (the
  /// service-level anomaly score). On a single service both endpoints
  /// share one snapshot; on a sharded backend each endpoint is scored on
  /// its owning shard's snapshot (see the composite-watermark contract).
  void ScoreEdge(NodeId src, NodeId dst, double time, ServeResponse* resp,
                 double timeout_s = 0.0);
  ServeResponse ScoreEdge(NodeId src, NodeId dst, double time,
                          double timeout_s = 0.0);

  /// Bounded retry-with-backoff around IngestEdge for kDropNewest-mode
  /// bursts: retries a RETRYABLE rejection (IngestResult::kBacklogDropped)
  /// up to `max_attempts` times, sleeping `initial_backoff_s` doubled per
  /// attempt (capped at 100ms). Permanent rejections (kInvalid, kStopped)
  /// return false immediately — they cannot succeed.
  bool IngestEdgeWithRetry(const TemporalEdge& e, int max_attempts = 4,
                           double initial_backoff_s = 0.0005);

 private:
  QueryBackend* backend_;
  ClientScratch scratch_;
  std::vector<PropertyQuery> query_scratch_;  // for the 1-2 row endpoints
  ClientHistogram hist_;
};

}  // namespace splash

#endif  // SPLASH_SERVE_SHARD_H_
