// Copyright 2026 The SPLASH Reproduction Authors.

#include "serve/router.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

namespace splash {

namespace {

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Status ShardedServiceOptions::Validate() const {
  if (!IsPowerOfTwo(num_shards)) {
    return Status::Error(
        "ShardedServiceOptions.num_shards: must be a power of two >= 1 "
        "(the node partition is `node & (num_shards - 1)`)");
  }
  return shard.Validate();
}

ShardedSplashService::ShardedSplashService(const SplashOptions& model_opts,
                                           const ShardedServiceOptions& opts)
    : opts_(opts), mask_(opts.num_shards > 0 ? opts.num_shards - 1 : 0) {
  shards_.reserve(opts_.num_shards);
  for (uint32_t i = 0; i < opts_.num_shards; ++i) {
    SplashServiceOptions so = opts_.shard;
    if (!so.data_dir.empty()) {
      so.data_dir += "/shard-" + std::to_string(i);
    }
    shards_.push_back(std::make_unique<SplashService>(model_opts, so));
  }
}

ShardedSplashService::~ShardedSplashService() { Stop(); }

Status ShardedSplashService::Start(const Dataset& warmup,
                                   const ChronoSplit& split,
                                   const TrainerOptions* fit) {
  Status vst = opts_.Validate();
  if (!vst.ok()) return vst;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    Status st = shards_[i]->Start(warmup, split, fit);
    if (!st.ok()) {
      for (uint32_t j = 0; j < i; ++j) shards_[j]->Stop();
      return Status::Error("shard " + std::to_string(i) + ": " +
                           st.message());
    }
  }
  return Status::Ok();
}

Status ShardedSplashService::RecoverOrStart(const Dataset& warmup,
                                            const ChronoSplit& split,
                                            const TrainerOptions* fit) {
  Status vst = opts_.Validate();
  if (!vst.ok()) return vst;
  if (opts_.shard.data_dir.empty()) return Start(warmup, split, fit);
  if (::mkdir(opts_.shard.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Error(
        "ShardedSplashService::RecoverOrStart: cannot create " +
        opts_.shard.data_dir + ": " + std::strerror(errno));
  }
  // Shards recover independently, in shard order: a lost or torn history
  // under shard-<i>/ restarts/degrades that shard alone.
  for (uint32_t i = 0; i < num_shards(); ++i) {
    Status st = shards_[i]->RecoverOrStart(warmup, split, fit);
    if (!st.ok()) {
      for (uint32_t j = 0; j < i; ++j) shards_[j]->Stop();
      return Status::Error("shard " + std::to_string(i) + ": " +
                           st.message());
    }
  }
  return Status::Ok();
}

IngestResult ShardedSplashService::IngestEdge(const TemporalEdge& e) {
  if (shards_.empty()) return IngestResult::kStopped;
  // Destination-owned, like the neighbor rings one level down. An invalid
  // destination masks to *some* shard, which rejects (and counts) it.
  return shards_[e.dst & mask_]->IngestEdge(e);
}

IngestResult ShardedSplashService::SubmitTrain(const PropertyQuery& q) {
  if (shards_.empty()) return IngestResult::kStopped;
  return shards_[q.node & mask_]->SubmitTrain(q);
}

void ShardedSplashService::Flush() {
  for (auto& s : shards_) s->Flush();
}

void ShardedSplashService::Stop() {
  for (auto& s : shards_) s->Stop();
}

bool ShardedSplashService::running() const {
  if (shards_.empty()) return false;
  for (const auto& s : shards_) {
    if (!s->running()) return false;
  }
  return true;
}

bool ShardedSplashService::degraded() const {
  for (const auto& s : shards_) {
    if (s->degraded()) return true;
  }
  return false;
}

uint64_t ShardedSplashService::published_seq() const {
  uint64_t total = 0;
  for (const auto& s : shards_) total += s->published_seq();
  return total;
}

CompositeWatermark ShardedSplashService::Watermark() const {
  CompositeWatermark w;
  w.shards.reserve(shards_.size());
  bool first = true;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    ShardWatermark sw;
    sw.shard = i;
    shards_[i]->PublishedWatermark(&sw.seq, &sw.time);
    w.shards.push_back(sw);
    w.min_seq = first ? sw.seq : std::min(w.min_seq, sw.seq);
    w.total_seq += sw.seq;
    w.max_time = std::max(w.max_time, sw.time);
    first = false;
  }
  return w;
}

ServeStats ShardedSplashService::Stats() const {
  ServeStats st;
  LatencyHistogram predict_m = MergedClientHistogram();
  LatencyHistogram ingest_m, apply_m;
  for (const auto& s : shards_) {
    st.counters.MergeFrom(s->Counters());
    s->MergeEndpointHistograms(&ingest_m, &apply_m);
    predict_m.Merge(s->MergedClientHistogram());
  }
  st.predict = predict_m.Summarize();
  st.ingest = ingest_m.Summarize();
  st.apply = apply_m.Summarize();
  return st;
}

void ShardedSplashService::ScoreQueries(
    const std::vector<PropertyQuery>& queries, ClientScratch* scratch,
    ServeResponse* resp) {
  if (shards_.empty()) {
    resp->scores.Resize(0, 0);
    resp->score = 0.0;
    resp->watermark_seq = 0;
    resp->watermark_time = 0.0;
    resp->shard_watermarks.clear();
    resp->degraded = false;
    resp->deadline_exceeded = false;
    return;
  }

  // Single-owner fast path (always for S=1 and PredictNode): forward the
  // batch whole — one virtual hop, zero extra copies — and stamp the
  // owning shard's watermark as a 1-entry composite. This is what keeps
  // the routed S=1 overhead within the bench gate's bound.
  uint32_t owner = ShardOf(queries.empty() ? 0 : queries[0].node);
  bool single = true;
  for (const PropertyQuery& q : queries) {
    if (ShardOf(q.node) != owner) {
      single = false;
      break;
    }
  }
  if (single) {
    shards_[owner]->ScoreQueries(queries, scratch, resp);
    resp->shard_watermarks.resize(1);
    resp->shard_watermarks[0] =
        ShardWatermark{owner, resp->watermark_seq, resp->watermark_time};
    return;
  }

  // Fan-out: group rows by owning shard (caller scratch, grow-only), score
  // each sub-batch on its shard's snapshot, reassemble rows in caller
  // order. Sequential per shard — the caller holds one scratch, and each
  // shard call is itself wait-free vs ingest.
  const uint32_t S = num_shards();
  const size_t b = queries.size();
  scratch->shard_queries.resize(S);
  scratch->shard_responses.resize(S);
  scratch->row_shard.resize(b);
  scratch->row_index.resize(b);
  for (auto& v : scratch->shard_queries) v.clear();
  for (size_t i = 0; i < b; ++i) {
    const uint32_t s = ShardOf(queries[i].node);
    scratch->row_shard[i] = s;
    scratch->row_index[i] =
        static_cast<uint32_t>(scratch->shard_queries[s].size());
    scratch->shard_queries[s].push_back(queries[i]);
  }

  resp->score = 0.0;
  resp->deadline_exceeded = false;
  resp->shard_watermarks.clear();
  uint64_t min_seq = 0;
  double max_time = 0.0;
  bool degraded = false;
  bool first = true;
  bool short_answer = false;  // a shard raced Start(): answered empty
  size_t cols = 0;
  for (uint32_t s = 0; s < S; ++s) {
    const std::vector<PropertyQuery>& sq = scratch->shard_queries[s];
    if (sq.empty()) continue;
    ServeResponse& sr = scratch->shard_responses[s];
    shards_[s]->ScoreQueries(sq, scratch, &sr);
    if (sr.scores.rows() != sq.size()) short_answer = true;
    resp->shard_watermarks.push_back(
        ShardWatermark{s, sr.watermark_seq, sr.watermark_time});
    min_seq = first ? sr.watermark_seq : std::min(min_seq, sr.watermark_seq);
    max_time = std::max(max_time, sr.watermark_time);
    degraded = degraded || sr.degraded;
    cols = sr.scores.cols();
    first = false;
  }
  if (short_answer) {
    // At least one contacted shard had not finished Start(); a partial
    // reassembly would be torn. Answer empty, like the single service does.
    resp->scores.Resize(0, 0);
    resp->watermark_seq = 0;
    resp->watermark_time = 0.0;
    resp->shard_watermarks.clear();
    resp->degraded = false;
    return;
  }
  resp->scores.Resize(b, cols);
  for (size_t i = 0; i < b; ++i) {
    const ServeResponse& sr = scratch->shard_responses[scratch->row_shard[i]];
    std::memcpy(resp->scores.Row(i), sr.scores.Row(scratch->row_index[i]),
                cols * sizeof(float));
  }
  resp->watermark_seq = min_seq;
  resp->watermark_time = max_time;
  resp->degraded = degraded;
}

}  // namespace splash
