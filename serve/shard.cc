// Copyright 2026 The SPLASH Reproduction Authors.

#include "serve/shard.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace splash {

void ServeCounters::MergeFrom(const ServeCounters& other) {
  ingest_accepted += other.ingest_accepted;
  ingest_dropped += other.ingest_dropped;
  train_accepted += other.train_accepted;
  train_dropped += other.train_dropped;
  batches_applied += other.batches_applied;
  train_steps += other.train_steps;
  queries += other.queries;
  unseen_node_queries += other.unseen_node_queries;
  coalesced_groups += other.coalesced_groups;
  coalesced_callers += other.coalesced_callers;
  direct_calls += other.direct_calls;
  novel_ingest_nodes += other.novel_ingest_nodes;
  time_regressions += other.time_regressions;
  published_seq += other.published_seq;
  published_time = std::max(published_time, other.published_time);
  queue_depth += other.queue_depth;
  queue_high_watermark =
      std::max(queue_high_watermark, other.queue_high_watermark);
  wal_records += other.wal_records;
  wal_fsyncs += other.wal_fsyncs;
  wal_io_errors += other.wal_io_errors;
  checkpoints_written += other.checkpoints_written;
  recovered_seq += other.recovered_seq;
  recovery_replayed_batches += other.recovery_replayed_batches;
  degraded = degraded || other.degraded;
}

QueryBackend::~QueryBackend() = default;

void QueryBackend::RegisterClient(ClientHistogram* client) {
  std::lock_guard<std::mutex> lk(clients_mu_);
  clients_.push_back(client);
}

void QueryBackend::UnregisterClient(ClientHistogram* client) {
  std::lock_guard<std::mutex> lk(clients_mu_);
  clients_.erase(std::remove(clients_.begin(), clients_.end(), client),
                 clients_.end());
  // A departed client's samples stay in the backend-level digest.
  std::lock_guard<std::mutex> ck(client->mu);
  retired_predict_hist_.Merge(client->hist);
}

LatencyHistogram QueryBackend::MergedClientHistogram() const {
  LatencyHistogram merged;
  std::lock_guard<std::mutex> lk(clients_mu_);
  merged.Merge(retired_predict_hist_);
  for (ClientHistogram* c : clients_) {
    std::lock_guard<std::mutex> ck(c->mu);
    merged.Merge(c->hist);
  }
  return merged;
}

// ---------------------------------------------------------------------------
// ServeClient: thin wrappers over the one canonical backend call. The
// timer/deadline/histogram epilogue lives here — outside any snapshot pin
// and identical for every backend.
// ---------------------------------------------------------------------------

ServeClient::ServeClient(QueryBackend* backend) : backend_(backend) {
  backend_->RegisterClient(&hist_);
}

ServeClient::~ServeClient() { backend_->UnregisterClient(&hist_); }

void ServeClient::Predict(const std::vector<PropertyQuery>& queries,
                          ServeResponse* resp, double timeout_s) {
  WallTimer timer;
  backend_->ScoreQueries(queries, &scratch_, resp);
  // Per-caller epilogue, outside any pin: the deadline is re-checked
  // against this caller's own wall clock (a coalesced caller that lingered
  // past its deadline is answered late-but-flagged, never dropped), and
  // the latency sample includes the full wait.
  const uint64_t ns = timer.Nanos();
  if (timeout_s > 0.0 && static_cast<double>(ns) > timeout_s * 1e9) {
    resp->deadline_exceeded = true;
  }
  {
    std::lock_guard<std::mutex> lk(hist_.mu);
    hist_.hist.RecordNs(ns);
  }
}

ServeResponse ServeClient::Predict(const std::vector<PropertyQuery>& queries,
                                   double timeout_s) {
  ServeResponse resp;
  Predict(queries, &resp, timeout_s);
  return resp;
}

void ServeClient::PredictNode(NodeId node, double time, ServeResponse* resp,
                              double timeout_s) {
  query_scratch_.resize(1);
  query_scratch_[0] = PropertyQuery{node, time, 0};
  Predict(query_scratch_, resp, timeout_s);
  if (resp->scores.rows() == 1 && resp->scores.cols() >= 2) {
    resp->score =
        static_cast<double>(resp->scores(0, 1)) - resp->scores(0, 0);
  }
}

ServeResponse ServeClient::PredictNode(NodeId node, double time,
                                       double timeout_s) {
  ServeResponse resp;
  PredictNode(node, time, &resp, timeout_s);
  return resp;
}

void ServeClient::ScoreEdge(NodeId src, NodeId dst, double time,
                            ServeResponse* resp, double timeout_s) {
  query_scratch_.resize(2);
  query_scratch_[0] = PropertyQuery{src, time, 0};
  query_scratch_[1] = PropertyQuery{dst, time, 0};
  Predict(query_scratch_, resp, timeout_s);
  if (resp->scores.rows() == 2 && resp->scores.cols() >= 2) {
    const double ms =
        static_cast<double>(resp->scores(0, 1)) - resp->scores(0, 0);
    const double md =
        static_cast<double>(resp->scores(1, 1)) - resp->scores(1, 0);
    resp->score = ms > md ? ms : md;
  }
}

ServeResponse ServeClient::ScoreEdge(NodeId src, NodeId dst, double time,
                                     double timeout_s) {
  ServeResponse resp;
  ScoreEdge(src, dst, time, &resp, timeout_s);
  return resp;
}

bool ServeClient::IngestEdgeWithRetry(const TemporalEdge& e, int max_attempts,
                                      double initial_backoff_s) {
  double backoff = initial_backoff_s > 0.0 ? initial_backoff_s : 0.0005;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const IngestResult r = backend_->IngestEdge(e);
    if (r.accepted()) return true;
    if (!r.retryable()) return false;  // kInvalid / kStopped cannot succeed
    if (attempt + 1 == max_attempts) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::min(backoff, 0.1)));
    backoff *= 2.0;
  }
  return false;
}

}  // namespace splash
