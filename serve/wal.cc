// Copyright 2026 The SPLASH Reproduction Authors.

#include "serve/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/fault_injection.h"

namespace splash {
namespace {

constexpr char kWalMagic[8] = {'S', 'P', 'L', 'W', 'A', 'L', '1', '\n'};
constexpr size_t kWalHeaderBytes = 8 + 8 + 4;  // magic + start_seq + crc
constexpr size_t kFrameHeaderBytes = 8;        // payload_len + payload_crc
// Length sanity cap: a frame claiming more than this is garbage, not a
// record (the largest real micro-batch is a few thousand 16-byte edges).
constexpr uint32_t kMaxRecordBytes = 1u << 30;

Status WriteFully(int fd, const uint8_t* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Error(std::string("wal: write failed: ") +
                           std::strerror(errno));
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

}  // namespace

void EncodeWalRecord(const WalRecord& rec, ByteWriter* w) {
  w->U64(rec.batch_index);
  w->U64(rec.seq_begin);
  w->U64(rec.seq_end);
  w->F64(rec.wm_time);
  w->U32(static_cast<uint32_t>(rec.edges.size()));
  for (const TemporalEdge& e : rec.edges) {
    w->U32(e.src);
    w->U32(e.dst);
    w->F64(e.time);
  }
  w->U32(static_cast<uint32_t>(rec.train.size()));
  for (const PropertyQuery& q : rec.train) {
    w->U32(q.node);
    w->F64(q.time);
    w->I32(q.class_label);
  }
}

bool DecodeWalRecord(ByteReader* r, WalRecord* rec) {
  rec->Clear();
  rec->batch_index = r->U64();
  rec->seq_begin = r->U64();
  rec->seq_end = r->U64();
  rec->wm_time = r->F64();
  const uint32_t n_edges = r->U32();
  if (!r->ok() || n_edges > r->remaining() / 16) return false;
  rec->edges.resize(n_edges);
  for (TemporalEdge& e : rec->edges) {
    e.src = r->U32();
    e.dst = r->U32();
    e.time = r->F64();
  }
  const uint32_t n_train = r->U32();
  if (!r->ok() || n_train > r->remaining() / 16) return false;
  rec->train.resize(n_train);
  for (PropertyQuery& q : rec->train) {
    q.node = r->U32();
    q.time = r->F64();
    q.class_label = r->I32();
  }
  // The record must describe a consistent log range.
  if (!r->ok() || rec->seq_end < rec->seq_begin ||
      rec->seq_end - rec->seq_begin != rec->edges.size()) {
    return false;
  }
  return true;
}

Status WalWriter::Open(const std::string& path, uint64_t start_seq,
                       WalFsyncPolicy policy, size_t group_records) {
  Close();
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) {
    return Status::Error("wal: cannot create " + path + ": " +
                         std::strerror(errno));
  }
  policy_ = policy;
  group_records_ = group_records < 1 ? 1 : group_records;
  unsynced_ = 0;
  appended_ = 0;
  fsyncs_ = 0;
  scratch_.Clear();
  scratch_.Bytes(kWalMagic, sizeof(kWalMagic));
  scratch_.U64(start_seq);
  scratch_.U32(Crc32c(scratch_.buffer().data() + sizeof(kWalMagic), 8));
  Status st = WriteFully(fd_, scratch_.buffer().data(), scratch_.size());
  if (!st.ok()) return st;
  if (policy_ != WalFsyncPolicy::kNone) return Sync();
  return Status::Ok();
}

Status WalWriter::Append(const WalRecord& rec) {
  if (fd_ < 0) return Status::Error("wal: append on closed writer");
  scratch_.Clear();
  // Reserve the frame header in-line, then encode the payload after it and
  // patch the header — one contiguous buffer, one write() per record.
  scratch_.U32(0);
  scratch_.U32(0);
  EncodeWalRecord(rec, &scratch_);
  const size_t payload_len = scratch_.size() - kFrameHeaderBytes;
  const uint8_t* payload = scratch_.buffer().data() + kFrameHeaderBytes;
  const uint32_t crc = Crc32c(payload, payload_len);
  uint8_t* frame = scratch_.mutable_data();
  for (int i = 0; i < 4; ++i) {
    frame[i] = static_cast<uint8_t>(payload_len >> (8 * i));
    frame[4 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }

#if defined(SPLASH_FAULT_INJECTION)
  if (CrashPointHit(CrashPoint::kWalMidFrame)) {
    // Torn write: a strict prefix of the frame reaches the file, then the
    // process dies. Recovery must truncate this record, never apply it.
    const size_t cut = scratch_.size() / 2 > 0 ? scratch_.size() / 2 : 1;
    WriteFully(fd_, frame, cut).ok();
    CrashNow();
  }
#endif

  Status st = WriteFully(fd_, frame, scratch_.size());
  if (!st.ok()) return st;
  ++appended_;
  ++unsynced_;
  SPLASH_CRASH_POINT(CrashPoint::kWalAfterAppend);

  const bool want_sync =
      policy_ == WalFsyncPolicy::kAlways ||
      (policy_ == WalFsyncPolicy::kBatch && unsynced_ >= group_records_);
  if (want_sync) {
    SPLASH_CRASH_POINT(CrashPoint::kWalBeforeFsync);
    return Sync();
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (fd_ < 0 || unsynced_ == 0) return Status::Ok();
  if (::fdatasync(fd_) != 0) {
    return Status::Error(std::string("wal: fdatasync failed: ") +
                         std::strerror(errno));
  }
  unsynced_ = 0;
  ++fsyncs_;
  return Status::Ok();
}

void WalWriter::Close() {
  if (fd_ < 0) return;
  if (policy_ != WalFsyncPolicy::kNone) Sync().ok();
  ::close(fd_);
  fd_ = -1;
}

Status ScanWalFile(const std::string& path, WalScan* out) {
  *out = WalScan();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Error("wal: cannot open " + path + ": " +
                         std::strerror(errno));
  }
  struct stat sb;
  if (::fstat(fd, &sb) != 0) {
    ::close(fd);
    return Status::Error("wal: cannot stat " + path);
  }
  std::vector<uint8_t> buf(static_cast<size_t>(sb.st_size));
  size_t got = 0;
  while (got < buf.size()) {
    const ssize_t r = ::read(fd, buf.data() + got, buf.size() - got);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    got += static_cast<size_t>(r);
  }
  ::close(fd);
  if (got != buf.size()) {
    return Status::Error("wal: short read on " + path);
  }

  if (buf.size() < kWalHeaderBytes) {
    out->tail = WalTailStatus::kTorn;  // interrupted segment creation
    return Status::Ok();
  }
  if (std::memcmp(buf.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    out->tail = WalTailStatus::kCorrupt;
    return Status::Ok();
  }
  {
    ByteReader hr(buf.data() + sizeof(kWalMagic), 12);
    const uint64_t start_seq = hr.U64();
    const uint32_t want_crc = hr.U32();
    if (Crc32c(buf.data() + sizeof(kWalMagic), 8) != want_crc) {
      out->tail = WalTailStatus::kCorrupt;
      return Status::Ok();
    }
    out->start_seq = start_seq;
  }
  out->header_ok = true;
  out->valid_bytes = kWalHeaderBytes;

  size_t off = kWalHeaderBytes;
  for (;;) {
    const size_t remaining = buf.size() - off;
    if (remaining == 0) break;  // clean end
    if (remaining < kFrameHeaderBytes) {
      out->tail = WalTailStatus::kTorn;
      break;
    }
    ByteReader fh(buf.data() + off, kFrameHeaderBytes);
    const uint32_t payload_len = fh.U32();
    const uint32_t want_crc = fh.U32();
    if (payload_len > kMaxRecordBytes) {
      out->tail = WalTailStatus::kCorrupt;
      break;
    }
    if (remaining - kFrameHeaderBytes < payload_len) {
      out->tail = WalTailStatus::kTorn;
      break;
    }
    const uint8_t* payload = buf.data() + off + kFrameHeaderBytes;
    if (Crc32c(payload, payload_len) != want_crc) {
      out->tail = WalTailStatus::kCorrupt;
      break;
    }
    ByteReader pr(payload, payload_len);
    WalRecord rec;
    if (!DecodeWalRecord(&pr, &rec) || !pr.AtEnd()) {
      out->tail = WalTailStatus::kCorrupt;
      break;
    }
    out->records.push_back(std::move(rec));
    off += kFrameHeaderBytes + payload_len;
    out->valid_bytes = off;
  }
  return Status::Ok();
}

std::string WalSegmentPath(const std::string& dir, uint64_t start_index) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%020llu.log",
                static_cast<unsigned long long>(start_index));
  return dir + "/" + name;
}

std::vector<WalSegmentInfo> ListWalSegments(const std::string& dir) {
  std::vector<WalSegmentInfo> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (struct dirent* ent = ::readdir(d)) {
    const char* name = ent->d_name;
    const size_t len = std::strlen(name);
    if (len <= 8 || std::strncmp(name, "wal-", 4) != 0 ||
        std::strcmp(name + len - 4, ".log") != 0) {
      continue;
    }
    char* end = nullptr;
    const unsigned long long seq = std::strtoull(name + 4, &end, 10);
    if (end == nullptr || std::strcmp(end, ".log") != 0) continue;
    out.push_back({dir + "/" + name, static_cast<uint64_t>(seq)});
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              return a.start_index < b.start_index;
            });
  return out;
}

}  // namespace splash
