// Copyright 2026 The SPLASH Reproduction Authors.
//
// Atomic checkpoints of the serving state (DESIGN.md §7). A checkpoint is
// the complete service state at a quiesced watermark W: the ingest log
// prefix [0, W), the novel-id seen set, and the predictor state blob
// (SplashPredictor::SerializeState — augmenter, rings, SLIM, RNG). The
// apply thread takes one after the pipeline barrier, when both replicas
// are bit-identical, by serializing the exclusively-owned back replica.
//
// Atomicity: write checkpoint-<W>.ckpt.tmp, fsync, rename() into place,
// fsync the directory. A crash at any point leaves either the previous
// checkpoint or the new one fully intact — never a half checkpoint that
// parses. The loader walks candidates newest-first and takes the first
// one whose CRC validates, so a corrupt or torn latest falls back to its
// predecessor. The newest kCheckpointsToKeep survive GC for exactly that
// fallback.
//
// File format: magic[8]="SPLCKP1\n"  u64 payload_len  u32 crc32c(payload)
// payload, where payload = u64 seq, u64 batches_applied, f64 wm_time, edge
// log (count, num_nodes, src/dst/time arrays), node_seen, predictor blob.
// `batches_applied` is the WAL batch-index cursor the checkpoint covers:
// recovery replays exactly the records with batch_index >= it.

#ifndef SPLASH_SERVE_CHECKPOINT_H_
#define SPLASH_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "graph/edge_stream.h"

namespace splash {

/// How many validated checkpoints GC retains (the live one + fallback).
constexpr size_t kCheckpointsToKeep = 2;

struct CheckpointData {
  uint64_t seq = 0;
  uint64_t batches_applied = 0;  // WAL batch-index cursor (replay from here)
  double wm_time = 0.0;
  EdgeStream log;
  std::vector<uint8_t> node_seen;
  std::vector<uint8_t> predictor_state;
};

std::string CheckpointPath(const std::string& dir, uint64_t seq);

/// Writes a checkpoint atomically (see file header) and garbage-collects
/// all but the newest kCheckpointsToKeep. Hosts the checkpoint-mid-write /
/// checkpoint-before-rename crash points.
Status WriteCheckpoint(const std::string& dir, uint64_t seq,
                       uint64_t batches_applied, double wm_time,
                       const EdgeStream& log,
                       const std::vector<uint8_t>& node_seen,
                       const std::vector<uint8_t>& predictor_state);

/// Loads the newest CRC-valid checkpoint. `*found` is false (with an OK
/// status) when no usable checkpoint exists — including when every
/// candidate is torn/corrupt, which recovery treats as "start fresh and
/// replay the WAL from zero".
Status LoadLatestCheckpoint(const std::string& dir, CheckpointData* out,
                            bool* found);

}  // namespace splash

#endif  // SPLASH_SERVE_CHECKPOINT_H_
