// Copyright 2026 The SPLASH Reproduction Authors.
//
// Bounded multi-producer / single-consumer ingest queue of the serving
// layer. Producers enqueue edges and labeled training feedback; the apply
// thread drains them in arrival order as micro-batches (size watermark =
// `max_items`, time watermark = `max_wait_s` — whichever fires first).
//
// Backpressure (see DESIGN.md §5): when the ring is full, kBlock parks the
// producer on a condvar until the apply thread frees a slot (lossless,
// latency bleeds upstream), kDropNewest rejects the item immediately
// (lossy, bounded producer latency; the service counts drops). The ring
// buffer is sized once at construction — steady-state Push/PopBatch do not
// allocate.

#ifndef SPLASH_SERVE_INGEST_QUEUE_H_
#define SPLASH_SERVE_INGEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/types.h"

namespace splash {

enum class BackpressurePolicy {
  kBlock,       // producers wait for queue space (lossless)
  kDropNewest,  // reject when full (lossy; caller sees `false`)
};

/// One ingest event: a stream edge or a labeled training query applied at
/// the next micro-batch boundary.
struct IngestItem {
  enum class Kind : uint8_t { kEdge, kTrain };
  Kind kind = Kind::kEdge;
  TemporalEdge edge;
  PropertyQuery train;
};

class IngestQueue {
 public:
  IngestQueue(size_t capacity, BackpressurePolicy policy)
      : ring_(capacity < 1 ? 1 : capacity), policy_(policy) {}

  /// Enqueues `item`. Returns false when the item was dropped (kDropNewest
  /// on a full ring, or the queue was stopped). With kBlock a full ring
  /// parks the caller until space frees; the service times the whole call
  /// from outside, so block time shows up in the ingest latency histogram.
  bool Push(const IngestItem& item) {
    std::unique_lock<std::mutex> lk(mu_);
    if (policy_ == BackpressurePolicy::kBlock && size_ == ring_.size() &&
        !stopped_) {
      not_full_.wait(lk, [&] { return size_ < ring_.size() || stopped_; });
    }
    if (stopped_ || size_ == ring_.size()) return false;
    ring_[(head_ + size_) % ring_.size()] = item;
    ++size_;
    if (size_ > high_watermark_) high_watermark_ = size_;
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Drains up to `max_items` into `*out` (cleared first). Blocks until at
  /// least one item is available or Stop() was called; once the first item
  /// is in, waits up to `max_wait_s` more for the batch to fill (the
  /// coalescing time watermark). Returns the number of items popped — 0
  /// only when stopped AND empty (the drain-complete signal).
  size_t PopBatch(std::vector<IngestItem>* out, size_t max_items,
                  double max_wait_s) {
    out->clear();
    if (max_items == 0) max_items = 1;
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return size_ > 0 || stopped_; });
    if (size_ < max_items && !stopped_ && max_wait_s > 0.0) {
      not_empty_.wait_for(
          lk, std::chrono::duration<double>(max_wait_s),
          [&] { return size_ >= max_items || stopped_; });
    }
    const size_t n = size_ < max_items ? size_ : max_items;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(ring_[head_]);
      head_ = (head_ + 1) % ring_.size();
    }
    size_ -= n;
    lk.unlock();
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Stops the queue: pending items remain poppable (drain), new pushes
  /// fail, blocked producers and the consumer wake.
  void Stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopped_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool stopped() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stopped_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return size_;
  }

  /// Maximum depth ever observed (monotone). A high-watermark at capacity
  /// means producers saturated the ring at least once — the early-warning
  /// signal before drops (kDropNewest) or producer stalls (kBlock).
  size_t high_watermark() const {
    std::lock_guard<std::mutex> lk(mu_);
    return high_watermark_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<IngestItem> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  size_t high_watermark_ = 0;
  bool stopped_ = false;
  BackpressurePolicy policy_;
};

}  // namespace splash

#endif  // SPLASH_SERVE_INGEST_QUEUE_H_
