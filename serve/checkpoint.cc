// Copyright 2026 The SPLASH Reproduction Authors.

#include "serve/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/serialize.h"
#include "serve/fault_injection.h"

namespace splash {
namespace {

constexpr char kCkptMagic[8] = {'S', 'P', 'L', 'C', 'K', 'P', '1', '\n'};
constexpr size_t kCkptHeaderBytes = 8 + 8 + 4;

Status WriteFully(int fd, const uint8_t* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Error(std::string("checkpoint: write failed: ") +
                           std::strerror(errno));
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Error("checkpoint: cannot open dir " + dir);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Error("checkpoint: dir fsync failed for " + dir);
  }
  return Status::Ok();
}

/// Checkpoint files in `dir`, sorted newest (largest seq) first.
std::vector<std::pair<uint64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (struct dirent* ent = ::readdir(d)) {
    const char* name = ent->d_name;
    const size_t len = std::strlen(name);
    if (len <= 16 || std::strncmp(name, "checkpoint-", 11) != 0 ||
        std::strcmp(name + len - 5, ".ckpt") != 0) {
      continue;
    }
    char* end = nullptr;
    const unsigned long long seq = std::strtoull(name + 11, &end, 10);
    if (end == nullptr || std::strcmp(end, ".ckpt") != 0) continue;
    out.emplace_back(static_cast<uint64_t>(seq), dir + "/" + name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

}  // namespace

std::string CheckpointPath(const std::string& dir, uint64_t seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "checkpoint-%020llu.ckpt",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

Status WriteCheckpoint(const std::string& dir, uint64_t seq,
                       uint64_t batches_applied, double wm_time,
                       const EdgeStream& log,
                       const std::vector<uint8_t>& node_seen,
                       const std::vector<uint8_t>& predictor_state) {
  ByteWriter payload;
  payload.U64(seq);
  payload.U64(batches_applied);
  payload.F64(wm_time);
  payload.U64(log.size());
  payload.U64(log.num_nodes());
  payload.Bytes(log.src_data(), log.size() * sizeof(NodeId));
  payload.Bytes(log.dst_data(), log.size() * sizeof(NodeId));
  payload.Bytes(log.time_data(), log.size() * sizeof(double));
  payload.U8Vec(node_seen);
  payload.U8Vec(predictor_state);

  ByteWriter header;
  header.Bytes(kCkptMagic, sizeof(kCkptMagic));
  header.U64(payload.size());
  header.U32(Crc32c(payload.buffer().data(), payload.size()));

  const std::string final_path = CheckpointPath(dir, seq);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Error("checkpoint: cannot create " + tmp_path + ": " +
                         std::strerror(errno));
  }
  Status st = WriteFully(fd, header.buffer().data(), header.size());
  if (st.ok()) {
    // Two writes with the crash point between them: a mid-write crash
    // leaves a temp file whose length contradicts its header — the loader
    // must reject it and fall back.
    const size_t half = payload.size() / 2;
    st = WriteFully(fd, payload.buffer().data(), half);
    SPLASH_CRASH_POINT(CrashPoint::kCheckpointMidWrite);
    if (st.ok()) {
      st = WriteFully(fd, payload.buffer().data() + half,
                      payload.size() - half);
    }
  }
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::Error("checkpoint: fsync failed for " + tmp_path);
  }
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp_path.c_str());
    return st;
  }

  SPLASH_CRASH_POINT(CrashPoint::kCheckpointBeforeRename);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const Status err = Status::Error("checkpoint: rename failed for " +
                                     final_path + ": " +
                                     std::strerror(errno));
    ::unlink(tmp_path.c_str());
    return err;
  }
  st = SyncDir(dir);
  if (!st.ok()) return st;

  // GC: keep the newest kCheckpointsToKeep (this one + fallback).
  const auto ckpts = ListCheckpoints(dir);
  for (size_t i = kCheckpointsToKeep; i < ckpts.size(); ++i) {
    ::unlink(ckpts[i].second.c_str());
  }
  return Status::Ok();
}

Status LoadLatestCheckpoint(const std::string& dir, CheckpointData* out,
                            bool* found) {
  *found = false;
  for (const auto& [seq, path] : ListCheckpoints(dir)) {
    (void)seq;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) continue;
    struct stat sb;
    if (::fstat(fd, &sb) != 0 ||
        static_cast<size_t>(sb.st_size) < kCkptHeaderBytes) {
      ::close(fd);
      continue;
    }
    std::vector<uint8_t> buf(static_cast<size_t>(sb.st_size));
    size_t got = 0;
    while (got < buf.size()) {
      const ssize_t r = ::read(fd, buf.data() + got, buf.size() - got);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) break;
      got += static_cast<size_t>(r);
    }
    ::close(fd);
    if (got != buf.size()) continue;

    if (std::memcmp(buf.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) {
      continue;
    }
    ByteReader hr(buf.data() + sizeof(kCkptMagic), 12);
    const uint64_t payload_len = hr.U64();
    const uint32_t want_crc = hr.U32();
    if (payload_len != buf.size() - kCkptHeaderBytes) continue;  // torn
    const uint8_t* payload = buf.data() + kCkptHeaderBytes;
    if (Crc32c(payload, payload_len) != want_crc) continue;  // corrupt

    ByteReader pr(payload, static_cast<size_t>(payload_len));
    CheckpointData data;
    data.seq = pr.U64();
    data.batches_applied = pr.U64();
    data.wm_time = pr.F64();
    const uint64_t n_edges = pr.U64();
    const uint64_t num_nodes = pr.U64();
    if (!pr.ok() || n_edges > pr.remaining() / 16) continue;
    std::vector<NodeId> src(static_cast<size_t>(n_edges));
    std::vector<NodeId> dst(static_cast<size_t>(n_edges));
    std::vector<double> time(static_cast<size_t>(n_edges));
    if (!pr.Bytes(src.data(), src.size() * sizeof(NodeId)) ||
        !pr.Bytes(dst.data(), dst.size() * sizeof(NodeId)) ||
        !pr.Bytes(time.data(), time.size() * sizeof(double)) ||
        !pr.U8Vec(&data.node_seen) || !pr.U8Vec(&data.predictor_state) ||
        !pr.ok()) {
      continue;
    }
    data.log.EnsureNodeCapacity(static_cast<size_t>(num_nodes));
    data.log.Reserve(static_cast<size_t>(n_edges));
    bool log_ok = true;
    for (size_t i = 0; i < src.size(); ++i) {
      // The serialized log was monotone by construction; Append re-checks.
      if (!data.log.Append(TemporalEdge(src[i], dst[i], time[i])).ok()) {
        log_ok = false;
        break;
      }
    }
    if (!log_ok) continue;
    *out = std::move(data);
    *found = true;
    return Status::Ok();
  }
  return Status::Ok();
}

}  // namespace splash
