// Copyright 2026 The SPLASH Reproduction Authors.

#include "serve/coalescer.h"

#include <algorithm>
#include <thread>

#include "eval/timing.h"

namespace splash {

QueryCoalescer::QueryCoalescer(const CoalesceOptions& opts, ExecuteFn fn,
                               void* ctx)
    : opts_(opts), fn_(fn), ctx_(ctx) {
  ring_.resize(std::max<size_t>(opts_.ring_slots, 1), nullptr);
  batch_.resize(std::max<size_t>(std::min(opts_.max_batch, ring_.size()), 1),
                nullptr);
}

bool QueryCoalescer::Submit(QuerySlot* slot) {
  const uint32_t prev = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (opts_.max_batch <= 1 ||
      (prev == 0 && !hot_.load(std::memory_order_relaxed))) {
    // Uncontended (or coalescing disabled): the caller runs the per-query
    // path itself and closes with EndDirect(). While hot_ — the last group
    // combined real contention — a momentary prev==0 is most likely the
    // first waiter resubmitting after a group wake-up, so it enqueues and
    // leads the next group instead of straggling through a direct call.
    direct_calls_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  bool lead = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (size_ >= ring_.size()) {
      ring_full_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      direct_calls_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ring_[(head_ + size_) % ring_.size()] = slot;
    ++size_;
    if (!leader_active_) {
      leader_active_ = true;
      lead = true;
    }
  }
  if (lead) {
    LeadRounds();  // drains the ring; our own slot is answered on the way
  } else {
    // Short spin keeps the common case (leader finishes within a few µs)
    // off the futex; the condvar bounds the cost on an oversubscribed
    // single-core host instead of burning cpu_time in a hot loop.
    for (int spin = 0; spin < 256; ++spin) {
      if (slot->done.load(std::memory_order_acquire)) break;
    }
    if (!slot->done.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [slot] {
        return slot->done.load(std::memory_order_acquire);
      });
    }
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

void QueryCoalescer::EndDirect() {
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
}

void QueryCoalescer::LeadRounds() {
  for (;;) {
    {
      // A drained ring retires the leader BEFORE the gather window, not
      // after: otherwise every group costs one trailing empty linger and
      // the leader returns a full window late.
      std::lock_guard<std::mutex> lk(mu_);
      if (size_ == 0) {
        leader_active_ = false;
        return;
      }
    }
    // Gather window: give concurrently arriving callers a chance to join
    // this round. Cut short the moment a full batch is queued, or once
    // arrivals dry up for a grace fraction of the window — so a generous
    // max_linger_s is only ever spent while joiners are actually en route
    // (e.g. waiters of the previous group resubmitting after wake-up),
    // never as dead time after the burst is over.
    if (opts_.max_linger_s > 0.0) {
      WallTimer timer;
      const double grace_s = opts_.max_linger_s / 8.0;
      size_t last_size = 0;
      double last_change_s = 0.0;
      for (;;) {
        bool full;
        size_t cur;
        {
          std::lock_guard<std::mutex> lk(mu_);
          cur = size_;
          full = cur >= batch_.size();
        }
        if (full) break;
        const double now_s = timer.Seconds();
        if (cur != last_size) {
          last_size = cur;
          last_change_s = now_s;
        } else if (now_s - last_change_s >= grace_s) {
          break;  // no new arrival for a grace period: the burst is over
        }
        if (now_s >= opts_.max_linger_s) break;
        // Without the yield a tight lock/unlock spin can re-acquire mu_
        // before a woken pusher ever runs (lock starvation on a saturated
        // core), turning the gather window into dead time.
        std::this_thread::yield();
      }
    }
    size_t n = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      n = std::min(size_, batch_.size());
      if (n == 0) {
        // Ring drained: retire the leader role before releasing mu_ so the
        // next contended caller can take over.
        leader_active_ = false;
        return;
      }
      for (size_t i = 0; i < n; ++i) {
        batch_[i] = ring_[(head_ + i) % ring_.size()];
      }
      head_ = (head_ + n) % ring_.size();
      size_ -= n;
      // A round that gathered real contention keeps bypass suppression on;
      // a leader that rounded up only itself proves the burst is over.
      hot_.store(n >= 2, std::memory_order_relaxed);
    }
    fn_(ctx_, batch_.data(), n);
    groups_.fetch_add(1, std::memory_order_relaxed);
    coalesced_callers_.fetch_add(n, std::memory_order_relaxed);
    {
      // done stores go under mu_ so a waiter that just evaluated its wait
      // predicate cannot miss the notify (classic lost-wakeup window).
      std::lock_guard<std::mutex> lk(mu_);
      for (size_t i = 0; i < n; ++i) {
        batch_[i]->done.store(true, std::memory_order_release);
      }
    }
    cv_.notify_all();
  }
}

}  // namespace splash
