// Copyright 2026 The SPLASH Reproduction Authors.
//
// Write-ahead log of the serving layer (DESIGN.md §7). The apply thread
// appends one record per coalesced micro-batch — the post-clamp edges, the
// train submissions applied at that boundary, and the resulting watermark —
// BEFORE the batch is applied and published. Restart replays the tail past
// the last checkpoint and reproduces the exact apply sequence, which is
// what makes recovery bit-exact (train-batch composition matters to SLIM's
// update order, so the WAL records boundaries, not just items).
//
// On-disk format (all integers little-endian):
//
//   segment   := header record*
//   header    := magic[8]="SPLWAL1\n"  u64 start_seq  u32 crc32c(start_seq)
//   record    := u32 payload_len  u32 crc32c(payload)  payload
//   payload   := u64 batch_index  u64 seq_begin  u64 seq_end  f64 wm_time
//                u32 n_edges  (u32 src  u32 dst  f64 time)*
//                u32 n_train  (u32 node  f64 time  i32 label)*
//
// `batch_index` is the monotone count of micro-batches ever applied since
// the stream started — the recovery cursor. The edge watermark alone
// cannot disambiguate train-only batches (seq_begin == seq_end) logged
// just before vs. just after a checkpoint at the same edge count; the
// batch index can, so a checkpoint records how many batches it contains
// and replay applies exactly the records with batch_index >= that.
//
// A reader stops cleanly at the first frame that does not fully parse: a
// short header/payload is a torn tail (the crash interrupted a write), a
// CRC or length-sanity failure is a corrupt tail. Either way the valid
// prefix is the log; the tail is truncated, never applied. Segments are
// named wal-<start_batch_index>.log; a new segment opens at every
// checkpoint (and at recovery), so after a durable checkpoint covering B
// batches every earlier segment only holds records < B and is
// garbage-collectible.
//
// Fsync policy is the classic group-commit trade-off:
//   kNone   — never fsync; bounded loss on machine crash, none on process
//             crash (page cache survives kill -9).
//   kBatch  — fsync every `group_records` appends and on rotate/close;
//             bounded-by-group loss on machine crash.
//   kAlways — fsync per append; zero loss, pays a sync per micro-batch.

#ifndef SPLASH_SERVE_WAL_H_
#define SPLASH_SERVE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "core/status.h"
#include "core/types.h"

namespace splash {

enum class WalFsyncPolicy {
  kNone,
  kBatch,
  kAlways,
};

/// One durable micro-batch: edges are post-clamp (monotonized timestamps,
/// exactly as appended to the ingest log), so replay needs no re-clamping
/// and [seq_begin, seq_end) names the log range the record produced.
struct WalRecord {
  uint64_t batch_index = 0;  // monotone micro-batch count (recovery cursor)
  uint64_t seq_begin = 0;
  uint64_t seq_end = 0;
  double wm_time = 0.0;
  std::vector<TemporalEdge> edges;
  std::vector<PropertyQuery> train;

  void Clear() {
    batch_index = seq_begin = seq_end = 0;
    wm_time = 0.0;
    edges.clear();
    train.clear();
  }
};

/// How a segment scan ended.
enum class WalTailStatus {
  kClean,    // last record parsed fully
  kTorn,     // trailing partial frame (interrupted write) — truncated
  kCorrupt,  // CRC/length-sanity failure — truncated
};

struct WalScan {
  bool header_ok = false;
  uint64_t start_seq = 0;
  std::vector<WalRecord> records;
  WalTailStatus tail = WalTailStatus::kClean;
  size_t valid_bytes = 0;  // header + fully-valid records
};

/// Single-writer append handle (the apply thread). Append serializes into
/// a reused scratch buffer — steady-state appends allocate nothing once
/// the largest record has been seen.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { Close(); }

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates (truncating) `path` and writes the segment header.
  Status Open(const std::string& path, uint64_t start_seq,
              WalFsyncPolicy policy, size_t group_records);

  /// Appends one framed record and applies the fsync policy. Hosts the
  /// wal-after-append / wal-before-fsync / wal-mid-frame crash points.
  Status Append(const WalRecord& rec);

  /// Forces an fdatasync of everything appended so far.
  Status Sync();

  /// Sync (best effort) + close. Idempotent.
  void Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t records_appended() const { return appended_; }
  uint64_t fsyncs() const { return fsyncs_; }

 private:
  int fd_ = -1;
  WalFsyncPolicy policy_ = WalFsyncPolicy::kBatch;
  size_t group_records_ = 8;
  size_t unsynced_ = 0;
  uint64_t appended_ = 0;
  uint64_t fsyncs_ = 0;
  ByteWriter scratch_;
};

/// Reads a whole segment, stopping cleanly at the first invalid frame (see
/// file header). Returns an error Status only when the file cannot be
/// opened/read at all; a torn or corrupt tail is a *successful* scan with
/// `tail` saying why it stopped. `header_ok == false` means the segment
/// header itself is unusable and no record was recovered.
Status ScanWalFile(const std::string& path, WalScan* out);

/// Segment path for a given start batch index: <dir>/wal-<index>.log.
std::string WalSegmentPath(const std::string& dir, uint64_t start_index);

struct WalSegmentInfo {
  std::string path;
  uint64_t start_index = 0;  // batch index parsed from the filename
};

/// Lists wal-*.log segments in `dir`, sorted by the start index parsed
/// from the filename. Unparsable names are ignored.
std::vector<WalSegmentInfo> ListWalSegments(const std::string& dir);

// Record codec, shared by writer, reader, and tests that build corrupt
// frames by hand.
void EncodeWalRecord(const WalRecord& rec, ByteWriter* w);
bool DecodeWalRecord(ByteReader* r, WalRecord* rec);

}  // namespace splash

#endif  // SPLASH_SERVE_WAL_H_
