// Copyright 2026 The SPLASH Reproduction Authors.

#include "serve/fault_injection.h"

#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace splash {
namespace {

// Per-point countdowns. 0 = disarmed; a hit decrements and fires when the
// decrement reaches zero. Relaxed is enough: arming happens before traffic
// starts (single-threaded test/harness setup), and the apply thread is the
// only hitter of any given point.
std::atomic<uint32_t> g_countdown[static_cast<int>(
    CrashPoint::kNumCrashPoints)] = {};

constexpr const char* kNames[] = {
    "wal-after-append",      "wal-before-fsync",
    "wal-mid-frame",         "checkpoint-mid-write",
    "checkpoint-before-rename", "checkpoint-after-rename",
};
static_assert(sizeof(kNames) / sizeof(kNames[0]) ==
                  static_cast<size_t>(CrashPoint::kNumCrashPoints),
              "crash point name table out of sync");

}  // namespace

const char* CrashPointName(CrashPoint p) {
  return kNames[static_cast<int>(p)];
}

bool ParseCrashPoint(const char* name, CrashPoint* out) {
  for (int i = 0; i < static_cast<int>(CrashPoint::kNumCrashPoints); ++i) {
    if (std::strcmp(name, kNames[i]) == 0) {
      *out = static_cast<CrashPoint>(i);
      return true;
    }
  }
  return false;
}

void ArmCrashPoint(CrashPoint p, uint32_t nth) {
  g_countdown[static_cast<int>(p)].store(nth, std::memory_order_relaxed);
}

void DisarmAllCrashPoints() {
  for (auto& c : g_countdown) c.store(0, std::memory_order_relaxed);
}

void ArmCrashPointsFromEnv() {
  const char* spec = std::getenv("SPLASH_CRASH_POINT");
  if (spec == nullptr || spec[0] == '\0') return;
  char buf[128];
  std::strncpy(buf, spec, sizeof(buf) - 1);
  buf[sizeof(buf) - 1] = '\0';
  uint32_t nth = 1;
  if (char* colon = std::strchr(buf, ':')) {
    *colon = '\0';
    const long v = std::strtol(colon + 1, nullptr, 10);
    nth = v > 0 ? static_cast<uint32_t>(v) : 1;
  }
  CrashPoint p;
  if (ParseCrashPoint(buf, &p)) ArmCrashPoint(p, nth);
}

bool CrashPointHit(CrashPoint p) {
  std::atomic<uint32_t>& c = g_countdown[static_cast<int>(p)];
  uint32_t v = c.load(std::memory_order_relaxed);
  if (v == 0) return false;
  c.store(v - 1, std::memory_order_relaxed);
  return v == 1;
}

void CrashNow() { _exit(kCrashExitCode); }

}  // namespace splash
