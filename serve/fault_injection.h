// Copyright 2026 The SPLASH Reproduction Authors.
//
// Crash-point fault injection for the durability layer. A crash point is a
// named location on the WAL / checkpoint I/O path where a test (or the
// kill-9 harness) can make the process die exactly as `kill -9` would:
// `_exit(kCrashExitCode)` — no destructors, no buffered flushes, no fsync.
// tests/serve_recovery_test forks a child, arms one point, drives traffic
// until it fires, then recovers in the parent and checks the bit-exact
// oracle.
//
// Cost model: the SPLASH_CRASH_POINT macro compiles to `((void)0)` unless
// the build defines SPLASH_FAULT_INJECTION — production builds carry zero
// code. The CMake option of the same name (default ON, so stock test
// builds always exercise the recovery paths) defines it tree-wide; even
// then a disarmed point is one relaxed atomic load on an I/O path that
// just paid for a write() syscall.
//
// Arming: programmatic (ArmCrashPoint, used by the fork-based tests) or
// via the environment (SPLASH_CRASH_POINT=<name>[:<nth>], used by the
// crash-harness child binary). `nth` counts hits: 1 fires on the first
// pass through the point.

#ifndef SPLASH_SERVE_FAULT_INJECTION_H_
#define SPLASH_SERVE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>

namespace splash {

enum class CrashPoint : int {
  kWalAfterAppend = 0,        // record bytes written, group-commit pending
  kWalBeforeFsync,            // sync decided but not issued
  kWalMidFrame,               // torn write: only a prefix of the frame lands
  kCheckpointMidWrite,        // temp file half-written
  kCheckpointBeforeRename,    // temp durable, rename not issued
  kCheckpointAfterRename,     // checkpoint live, WAL rotation/GC pending
  kNumCrashPoints,
};

/// Exit status a fired crash point dies with (the shell convention for
/// SIGKILL, 128 + 9) — lets harnesses distinguish an injected crash from a
/// clean exit or an assertion failure.
constexpr int kCrashExitCode = 137;

const char* CrashPointName(CrashPoint p);

/// Parses a CrashPointName back to its enum. Returns false on unknown.
bool ParseCrashPoint(const char* name, CrashPoint* out);

/// Arms `p` to fire on its `nth` hit (1 = first). 0 disarms.
void ArmCrashPoint(CrashPoint p, uint32_t nth);

void DisarmAllCrashPoints();

/// Reads SPLASH_CRASH_POINT=<name>[:<nth>] and arms accordingly. A missing
/// or malformed variable arms nothing.
void ArmCrashPointsFromEnv();

/// Decrements `p`'s countdown; true when this hit should crash. Exposed
/// (rather than folded into the macro) for the torn-write point, whose
/// caller must emit a partial frame between the check and the crash.
bool CrashPointHit(CrashPoint p);

/// Dies like kill -9 would: immediate _exit(kCrashExitCode).
[[noreturn]] void CrashNow();

}  // namespace splash

#if defined(SPLASH_FAULT_INJECTION)
#define SPLASH_CRASH_POINT(p)                        \
  do {                                               \
    if (::splash::CrashPointHit(p)) ::splash::CrashNow(); \
  } while (0)
#else
#define SPLASH_CRASH_POINT(p) ((void)0)
#endif

#endif  // SPLASH_SERVE_FAULT_INJECTION_H_
