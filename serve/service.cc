// Copyright 2026 The SPLASH Reproduction Authors.

#include "serve/service.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>

#include "serve/checkpoint.h"
#include "serve/fault_injection.h"

namespace splash {

namespace {

CoalesceOptions MakeCoalesceOptions(const SplashServiceOptions& o) {
  CoalesceOptions c;
  c.max_batch = o.coalesce_max_batch;
  c.max_linger_s = o.coalesce_max_linger_s;
  c.ring_slots = o.coalesce_ring_slots;
  return c;
}

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

std::string SplashServiceOptions::ResolvedReplicaPrecision() const {
  if (!replica_precision.empty()) return replica_precision;
  const char* env = std::getenv("SPLASH_REPLICA_PRECISION");
  return (env == nullptr || *env == '\0') ? std::string("fp32")
                                          : std::string(env);
}

Status SplashServiceOptions::Validate() const {
  if (microbatch_max_items < 1) {
    return Status::Error(
        "SplashServiceOptions.microbatch_max_items: must be >= 1");
  }
  if (!FiniteNonNegative(microbatch_max_delay_s)) {
    return Status::Error(
        "SplashServiceOptions.microbatch_max_delay_s: must be finite and "
        ">= 0");
  }
  if (queue_capacity < 1) {
    return Status::Error("SplashServiceOptions.queue_capacity: must be >= 1");
  }
  if (!FiniteNonNegative(coalesce_max_linger_s)) {
    return Status::Error(
        "SplashServiceOptions.coalesce_max_linger_s: must be finite and "
        ">= 0");
  }
  if (coalesce_max_batch > 1 && coalesce_ring_slots < coalesce_max_batch) {
    return Status::Error(
        "SplashServiceOptions.coalesce_ring_slots: must be >= "
        "coalesce_max_batch (a ring smaller than one group can never fill "
        "a group)");
  }
  const std::string prec = ResolvedReplicaPrecision();
  if (prec != "fp32" && prec != "bf16") {
    return Status::Error(
        "SplashServiceOptions.replica_precision: must be \"fp32\" or "
        "\"bf16\" (got \"" + prec + "\")");
  }
  if (!data_dir.empty() && wal_fsync == WalFsyncPolicy::kBatch &&
      wal_group_records < 1) {
    return Status::Error(
        "SplashServiceOptions.wal_group_records: must be >= 1 under "
        "WalFsyncPolicy::kBatch");
  }
  return Status::Ok();
}

SplashService::SplashService(const SplashOptions& model_opts,
                             const SplashServiceOptions& opts)
    : model_opts_(model_opts),
      opts_(opts),
      queue_(opts.queue_capacity, opts.backpressure),
      coalescer_(MakeCoalesceOptions(opts), &ExecuteCoalescedGroupThunk,
                 this) {}

SplashService::~SplashService() { Stop(); }

Status SplashService::PrepareReplicas(const Dataset& warmup,
                                      const ChronoSplit& split,
                                      const TrainerOptions* fit) {
  // Both replicas run the identical deterministic pipeline (same options,
  // same seed, same thread count), so they end bit-identical — the
  // invariant the whole snapshot scheme rests on.
  const bool bf16 = opts_.ResolvedReplicaPrecision() == "bf16";
  for (int r = 0; r < 2; ++r) {
    replicas_[r] = std::make_unique<SplashPredictor>(model_opts_);
    replicas_[r]->SetReplicaPrecisionBf16(bf16);
    Status st = replicas_[r]->Prepare(warmup, split);
    if (!st.ok()) return st;
    if (fit != nullptr) {
      StreamTrainer trainer(*fit);
      trainer.Fit(replicas_[r].get(), warmup, split);
    }
    replicas_[r]->SetTraining(false);
    replicas_[r]->ResetState();
  }
  return Status::Ok();
}

void SplashService::InitLogFromWarmup(const Dataset& warmup) {
  // Serving starts from an empty ingest log: watermark 0 == "weights only,
  // no streamed edge". Nodes touched by the warmup stream are "known";
  // everything else counts toward the novel-id drift signal.
  log_ = EdgeStream();
  log_.EnsureNodeCapacity(warmup.stream.num_nodes());
  node_seen_.assign(warmup.stream.num_nodes(), 0);
  const NodeId* wsrc = warmup.stream.src_data();
  const NodeId* wdst = warmup.stream.dst_data();
  for (size_t i = 0; i < warmup.stream.size(); ++i) {
    node_seen_[wsrc[i]] = 1;
    node_seen_[wdst[i]] = 1;
  }
}

Status SplashService::Start(const Dataset& warmup, const ChronoSplit& split,
                            const TrainerOptions* fit) {
  Status vst = opts_.Validate();
  if (!vst.ok()) return vst;
  if (!opts_.data_dir.empty()) {
    return Status::Error(
        "SplashService::Start: data_dir is set — use RecoverOrStart()");
  }
  if (running_.load()) {
    return Status::Error("SplashService::Start: already running");
  }
  if (apply_thread_.joinable()) {
    return Status::Error("SplashService::Start: service cannot restart");
  }

  Status st = PrepareReplicas(warmup, split, fit);
  if (!st.ok()) return st;
  InitLogFromWarmup(warmup);
  wm_seq_[0] = wm_seq_[1] = 0;
  wm_time_[0] = wm_time_[1] = 0.0;
  batch_bounds_.clear();
  train_log_.clear();

  // Pre-grow the coalesced-group scratch so the first full-width group
  // allocates nothing (PredictNode callers are 1 row each).
  gather_queries_.reserve(opts_.coalesce_max_batch * 2);
  replicas_[0]->WarmQueryScratch(opts_.coalesce_max_batch * 2,
                                 &gather_scratch_);

  started_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  apply_thread_ = std::thread(&SplashService::ApplyLoop, this);
  return Status::Ok();
}

Status SplashService::RecoverOrStart(const Dataset& warmup,
                                     const ChronoSplit& split,
                                     const TrainerOptions* fit) {
  if (opts_.data_dir.empty()) return Start(warmup, split, fit);
  Status vst = opts_.Validate();
  if (!vst.ok()) return vst;
  if (running_.load()) {
    return Status::Error("SplashService::RecoverOrStart: already running");
  }
  if (apply_thread_.joinable()) {
    return Status::Error("SplashService::RecoverOrStart: cannot restart");
  }
  if (::mkdir(opts_.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Error("SplashService::RecoverOrStart: cannot create " +
                         opts_.data_dir + ": " + std::strerror(errno));
  }
  durable_ = true;

  // Base state: the newest valid checkpoint, else the deterministic
  // Prepare/Fit pipeline (same as Start — recovery without a checkpoint
  // rebuilds the fitted weights bit-identically and replays from zero).
  CheckpointData ckpt;
  bool have_ckpt = false;
  Status st = LoadLatestCheckpoint(opts_.data_dir, &ckpt, &have_ckpt);
  if (!st.ok()) return st;
  if (have_ckpt) {
    const bool bf16 = opts_.ResolvedReplicaPrecision() == "bf16";
    for (int r = 0; r < 2; ++r) {
      replicas_[r] = std::make_unique<SplashPredictor>(model_opts_);
      // Sticky: DeserializeState re-applies the precision to the restored
      // SLIM model, so a bf16 service recovers as a bf16 service.
      replicas_[r]->SetReplicaPrecisionBf16(bf16);
      ByteReader rd(ckpt.predictor_state);
      st = replicas_[r]->DeserializeState(&rd);
      if (!st.ok()) return st;
    }
    log_ = std::move(ckpt.log);
    node_seen_ = std::move(ckpt.node_seen);
    wal_batch_index_ = ckpt.batches_applied;
    recovered_from_checkpoint_ = true;
  } else {
    st = PrepareReplicas(warmup, split, fit);
    if (!st.ok()) return st;
    InitLogFromWarmup(warmup);
    wal_batch_index_ = 0;
  }
  wm_seq_[0] = wm_seq_[1] = log_.size();
  wm_time_[0] = wm_time_[1] = log_.empty() ? 0.0 : log_.max_time();
  batch_bounds_.clear();
  train_log_.clear();

  // Collect the applicable WAL tail: the contiguous run of records with
  // batch_index >= the checkpoint cursor, across segments oldest-first.
  // A torn/corrupt tail inside the LAST segment is the normal crash shape
  // (truncate, done); a gap before records that should exist means history
  // was lost — recovery still proceeds, but the service is degraded.
  std::vector<WalRecord> tail;
  bool gap = false;
  uint64_t next_batch = wal_batch_index_;
  uint64_t next_seq = log_.size();
  for (const WalSegmentInfo& seg : ListWalSegments(opts_.data_dir)) {
    WalScan scan;
    st = ScanWalFile(seg.path, &scan);
    if (!st.ok()) return st;
    if (!scan.header_ok) continue;  // interrupted creation: no records
    for (WalRecord& rec : scan.records) {
      if (rec.batch_index < next_batch) continue;  // inside the checkpoint
      if (rec.batch_index != next_batch || rec.seq_begin != next_seq) {
        gap = true;
        break;
      }
      next_seq = rec.seq_end;
      ++next_batch;
      tail.push_back(std::move(rec));
    }
    if (gap) break;
  }
  recovery_target_seq_.store(next_seq, std::memory_order_relaxed);
  if (gap) degraded_.store(true, std::memory_order_relaxed);

  gather_queries_.reserve(opts_.coalesce_max_batch * 2);
  replicas_[0]->WarmQueryScratch(opts_.coalesce_max_batch * 2,
                                 &gather_scratch_);

  // Queries may run during replay; they see the advancing snapshots and
  // answer degraded=true until the watermark reaches the replay target.
  started_.store(true, std::memory_order_release);

  // Replay preserving the recorded micro-batch boundaries: train-batch
  // composition feeds SLIM's update order, so re-batching would change
  // bits. Publication follows the same gate protocol as live apply.
  for (const WalRecord& rec : tail) {
    const size_t edge_begin = log_.size();
    for (const TemporalEdge& e : rec.edges) AppendEdgeToLog(e);
    const size_t edge_end = log_.size();
    const uint32_t back = gate_.back();
    ApplyBatchTo(replicas_[back].get(), edge_begin, edge_end, rec.train);
    wm_seq_[back] = edge_end;
    wm_time_[back] = edge_end > 0 ? log_.max_time() : 0.0;
    gate_.Publish();
    const uint32_t other = gate_.back();
    gate_.WaitReadersDrained(other);
    ApplyBatchTo(replicas_[other].get(), edge_begin, edge_end, rec.train);
    wm_seq_[other] = edge_end;
    wm_time_[other] = wm_time_[1 - other];
    ++wal_batch_index_;
    if (opts_.record_apply_log) {
      batch_bounds_.push_back(edge_end);
      if (!rec.train.empty()) train_log_.emplace_back(edge_end, rec.train);
    }
  }
  recovered_seq_ = log_.size();
  recovery_replayed_.store(tail.size(), std::memory_order_relaxed);

  // Checkpoint-on-recovery: makes the replayed tail durable again before
  // the rotation below truncates/GCs anything, and gives a fresh durable
  // start an immediate base checkpoint. Also opens the new active WAL
  // segment. On failure the service comes up degraded (serving, not
  // logging) rather than refusing to serve.
  WriteServiceCheckpoint();

  running_.store(true, std::memory_order_release);
  apply_thread_ = std::thread(&SplashService::ApplyLoop, this);
  return Status::Ok();
}

void SplashService::RecordIngestNs(uint64_t ns) {
  HistStripe& stripe =
      ingest_hist_[std::hash<std::thread::id>{}(std::this_thread::get_id()) &
                   (kIngestHistStripes - 1)];
  std::lock_guard<std::mutex> lk(stripe.mu);
  stripe.hist.RecordNs(ns);
}

IngestResult SplashService::IngestEdge(const TemporalEdge& e) {
  if (!running_.load(std::memory_order_acquire)) {
    return IngestResult::kStopped;
  }
  // Boundary validation: an invalid endpoint or non-finite timestamp is
  // rejected here (counted as a drop) so the apply thread can treat every
  // queued edge as appendable — and so a sentinel id can never size the
  // node tables to the full 2^32 id space.
  if (e.src == kInvalidNode || e.dst == kInvalidNode ||
      !std::isfinite(e.time)) {
    ingest_dropped_.fetch_add(1, std::memory_order_relaxed);
    return IngestResult::kInvalid;
  }
  IngestItem item;
  item.kind = IngestItem::Kind::kEdge;
  item.edge = e;
  WallTimer timer;
  const bool ok = queue_.Push(item);
  const uint64_t ns = timer.Nanos();
  if (ok) {
    ingest_accepted_.fetch_add(1, std::memory_order_relaxed);
    accepted_items_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ingest_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  RecordIngestNs(ns);
  if (ok) return IngestResult::kAccepted;
  // Push fails either because Stop() raced us or the kDropNewest ring was
  // full; only the latter is retryable.
  return queue_.stopped() ? IngestResult::kStopped
                          : IngestResult::kBacklogDropped;
}

IngestResult SplashService::SubmitTrain(const PropertyQuery& q) {
  if (!opts_.train_on_ingest_labels) {
    // Feedback is administratively off: not counted as a drop (nothing
    // was promised), and never retryable.
    return IngestResult::kInvalid;
  }
  if (!running_.load(std::memory_order_acquire)) {
    train_dropped_.fetch_add(1, std::memory_order_relaxed);
    return IngestResult::kStopped;
  }
  IngestItem item;
  item.kind = IngestItem::Kind::kTrain;
  item.train = q;
  WallTimer timer;
  const bool ok = queue_.Push(item);
  const uint64_t ns = timer.Nanos();
  if (ok) {
    train_accepted_.fetch_add(1, std::memory_order_relaxed);
    accepted_items_.fetch_add(1, std::memory_order_relaxed);
  } else {
    train_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  RecordIngestNs(ns);
  if (ok) return IngestResult::kAccepted;
  return queue_.stopped() ? IngestResult::kStopped
                          : IngestResult::kBacklogDropped;
}

TemporalEdge SplashService::AppendEdgeToLog(TemporalEdge e) {
  if (!log_.empty() && e.time < log_.max_time()) {
    // The log is a *stream*: monotonize stragglers instead of rejecting
    // them, and surface the count as a drift signal.
    time_regressions_.fetch_add(1, std::memory_order_relaxed);
    e.time = log_.max_time();
  }
  const size_t prev_nodes = node_seen_.size();
  const size_t hi = static_cast<size_t>(std::max(e.src, e.dst)) + 1;
  if (hi > prev_nodes) node_seen_.resize(hi, 0);
  uint64_t novel = 0;
  novel += node_seen_[e.src] == 0 ? 1 : 0;
  node_seen_[e.src] = 1;
  novel += node_seen_[e.dst] == 0 ? 1 : 0;
  node_seen_[e.dst] = 1;
  if (novel > 0) {
    novel_ingest_nodes_.fetch_add(novel, std::memory_order_relaxed);
  }
  log_.Append(e).ok();  // cannot fail: endpoints valid, time monotone
  return e;
}

void SplashService::NoteWalError() {
  wal_io_errors_.fetch_add(1, std::memory_order_relaxed);
  degraded_.store(true, std::memory_order_relaxed);
  wal_.Close();
}

void SplashService::MirrorWalFsyncs() {
  const uint64_t fs = wal_.fsyncs();
  if (fs > wal_fsyncs_base_) {
    wal_fsyncs_.fetch_add(fs - wal_fsyncs_base_, std::memory_order_relaxed);
    wal_fsyncs_base_ = fs;
  }
}

void SplashService::WriteServiceCheckpoint() {
  const uint64_t seq = log_.size();
  const double wm_time = log_.empty() ? 0.0 : log_.max_time();
  ckpt_state_scratch_.Clear();
  replicas_[gate_.back()]->SerializeState(&ckpt_state_scratch_);
  Status st = WriteCheckpoint(opts_.data_dir, seq, wal_batch_index_, wm_time,
                              log_, node_seen_, ckpt_state_scratch_.buffer());
  if (!st.ok()) {
    // A failed checkpoint is a durability I/O error like any other: keep
    // serving, keep the WAL (if open) appending, flag degraded.
    wal_io_errors_.fetch_add(1, std::memory_order_relaxed);
    degraded_.store(true, std::memory_order_relaxed);
    return;
  }
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  batches_since_checkpoint_ = 0;
  SPLASH_CRASH_POINT(CrashPoint::kCheckpointAfterRename);

  // Rotate: everything before wal_batch_index_ is inside the checkpoint,
  // so the new active segment starts exactly at the cursor. Old segments
  // are GC'd unless tests keep them for the full-history oracle.
  wal_.Close();
  MirrorWalFsyncs();
  Status wst = wal_.Open(WalSegmentPath(opts_.data_dir, wal_batch_index_),
                         seq, opts_.wal_fsync, opts_.wal_group_records);
  wal_fsyncs_base_ = 0;
  if (!wst.ok()) {
    NoteWalError();
    return;
  }
  if (opts_.gc_wal_on_checkpoint) {
    for (const WalSegmentInfo& seg : ListWalSegments(opts_.data_dir)) {
      if (seg.start_index != wal_batch_index_) ::unlink(seg.path.c_str());
    }
  }
}

void SplashService::SerializePredictorState(ByteWriter* w) const {
  replicas_[gate_.back()]->SerializeState(w);
}

void SplashService::ApplyBatchTo(SplashPredictor* rep, size_t edge_begin,
                                 size_t edge_end,
                                 const std::vector<PropertyQuery>& train) {
  if (edge_end > edge_begin) rep->ObserveBulk(log_, edge_begin, edge_end);
  if (!train.empty()) {
    // The staged split-phase path (core/predictor.h): assemble from the
    // just-advanced state, then pure compute on the staged tensors.
    rep->SetTraining(true);
    rep->StageBatch(train);
    rep->TrainStaged();
    rep->SetTraining(false);
  }
  // Publish-time packing invariant: by the time this replica is pinned by
  // a reader its packed GEMM operands (fp32 and, when enabled, bf16) are
  // current — a snapshot's first query never packs (PredictBatchConst
  // cannot pack by construction; this keeps the invariant explicit even
  // for weight mutations outside TrainStep).
  rep->PrepareForPublish();
}

void SplashService::ApplyLoop() {
  // The one in-flight catch-up job: re-applies the published batch to the
  // old front once its readers drained. Reused across cycles — Submit only
  // ever follows the Wait that retired the previous job.
  struct CatchUp {
    SplashService* svc = nullptr;
    SplashPredictor* rep = nullptr;
    size_t begin = 0, end = 0;
    uint32_t idx = 0;
    static void Invoke(void* p) {
      auto* c = static_cast<CatchUp*>(p);
      c->svc->gate_.WaitReadersDrained(c->idx);
      c->svc->ApplyBatchTo(c->rep, c->begin, c->end, c->svc->catchup_train_);
    }
  };
  CatchUp ctx;

  for (;;) {
    const size_t n =
        queue_.PopBatch(&batch_scratch_, opts_.microbatch_max_items,
                        opts_.microbatch_max_delay_s);
    if (n == 0) break;  // stopped and drained
    WallTimer apply_timer;

    // Barrier: the previous catch-up retired, so the back replica is
    // current and catchup_train_ / log_ are exclusively ours again.
    pipe_.Wait();

    // Quiesced point: both replicas identical at watermark log_.size().
    if (durable_ && opts_.checkpoint_interval_batches > 0 &&
        batches_since_checkpoint_ >= opts_.checkpoint_interval_batches) {
      WriteServiceCheckpoint();
    }

    const size_t edge_begin = log_.size();
    train_scratch_.clear();
    wal_rec_.Clear();
    for (const IngestItem& item : batch_scratch_) {
      if (item.kind == IngestItem::Kind::kTrain) {
        train_scratch_.push_back(item.train);
        continue;
      }
      // Endpoints/time were validated at ingest; record the post-clamp
      // edge so WAL replay reproduces the log byte-for-byte.
      wal_rec_.edges.push_back(AppendEdgeToLog(item.edge));
    }
    const size_t edge_end = log_.size();

    // Write-ahead: the batch is durable (per the fsync policy) before any
    // replica state or watermark reflects it. An append failure flips the
    // service to degraded (serving, not logging) instead of stalling it.
    if (durable_ && wal_.is_open()) {
      wal_rec_.batch_index = wal_batch_index_;
      wal_rec_.seq_begin = edge_begin;
      wal_rec_.seq_end = edge_end;
      wal_rec_.wm_time = log_.empty() ? 0.0 : log_.max_time();
      wal_rec_.train = train_scratch_;
      const Status wst = wal_.Append(wal_rec_);
      if (wst.ok()) {
        ++wal_batch_index_;
        wal_records_.fetch_add(1, std::memory_order_relaxed);
        MirrorWalFsyncs();
      } else {
        NoteWalError();
      }
    }
    ++batches_since_checkpoint_;

    const uint32_t back = gate_.back();
    ApplyBatchTo(replicas_[back].get(), edge_begin, edge_end, train_scratch_);
    wm_seq_[back] = edge_end;
    wm_time_[back] = edge_end > 0 ? log_.max_time() : 0.0;
    gate_.Publish();

    batches_applied_.fetch_add(1, std::memory_order_relaxed);
    if (!train_scratch_.empty()) {
      train_steps_.fetch_add(1, std::memory_order_relaxed);
    }
    if (opts_.record_apply_log) {
      batch_bounds_.push_back(edge_end);
      if (!train_scratch_.empty()) {
        train_log_.emplace_back(edge_end, train_scratch_);
      }
    }

    // Catch-up: the old front (now back) replays the identical batch on
    // the pipeline thread, overlapped with waiting for the next batch.
    catchup_train_ = train_scratch_;
    ctx.svc = this;
    ctx.rep = replicas_[1 - back].get();
    ctx.begin = edge_begin;
    ctx.end = edge_end;
    ctx.idx = 1 - back;
    pipe_.Submit(&CatchUp::Invoke, &ctx);

    {
      std::lock_guard<std::mutex> lk(flush_mu_);
      applied_items_ += n;
    }
    flush_cv_.notify_all();
    {
      std::lock_guard<std::mutex> lk(hist_mu_);
      apply_hist_.RecordNs(apply_timer.Nanos());
    }
  }
  pipe_.Wait();  // no ingest outlives the service
  if (durable_) {
    if (opts_.checkpoint_on_stop && batches_since_checkpoint_ > 0) {
      WriteServiceCheckpoint();
    }
    wal_.Close();
    MirrorWalFsyncs();
  }
  flush_cv_.notify_all();
}

void SplashService::Flush() {
  if (!running_.load(std::memory_order_acquire)) return;
  const uint64_t target = accepted_items_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lk(flush_mu_);
  flush_cv_.wait(lk, [&] {
    return applied_items_ >= target ||
           !running_.load(std::memory_order_acquire);
  });
}

void SplashService::Stop() {
  const bool was = running_.exchange(false);
  if (!was) {
    // Never started, or a previous Stop() already drained and joined.
    // Crucially the queue is left untouched: Stop() before Start() must
    // not poison it for a later Start (IngestQueue::Stop is terminal).
    return;
  }
  queue_.Stop();
  flush_cv_.notify_all();
  if (apply_thread_.joinable()) apply_thread_.join();
}

uint64_t SplashService::published_seq() const {
  const uint32_t idx = gate_.Pin();
  const uint64_t seq = wm_seq_[idx];
  gate_.Unpin(idx);
  return seq;
}

void SplashService::PublishedWatermark(uint64_t* seq, double* time) const {
  const uint32_t idx = gate_.Pin();
  *seq = wm_seq_[idx];
  *time = wm_time_[idx];
  gate_.Unpin(idx);
}

CompositeWatermark SplashService::Watermark() const {
  CompositeWatermark w;
  ShardWatermark s;
  PublishedWatermark(&s.seq, &s.time);
  w.shards.push_back(s);
  w.min_seq = w.total_seq = s.seq;
  w.max_time = s.time;
  return w;
}

ServeCounters SplashService::Counters() const {
  ServeCounters c;
  c.ingest_accepted = ingest_accepted_.load(std::memory_order_relaxed);
  c.ingest_dropped = ingest_dropped_.load(std::memory_order_relaxed);
  c.train_accepted = train_accepted_.load(std::memory_order_relaxed);
  c.train_dropped = train_dropped_.load(std::memory_order_relaxed);
  c.batches_applied = batches_applied_.load(std::memory_order_relaxed);
  c.train_steps = train_steps_.load(std::memory_order_relaxed);
  c.queries = queries_.load(std::memory_order_relaxed);
  c.unseen_node_queries =
      unseen_node_queries_.load(std::memory_order_relaxed);
  c.coalesced_groups = coalescer_.groups();
  c.coalesced_callers = coalescer_.coalesced_callers();
  c.direct_calls = coalescer_.direct_calls();
  c.novel_ingest_nodes = novel_ingest_nodes_.load(std::memory_order_relaxed);
  c.time_regressions = time_regressions_.load(std::memory_order_relaxed);
  c.queue_depth = queue_.size();
  c.queue_high_watermark = queue_.high_watermark();
  c.wal_records = wal_records_.load(std::memory_order_relaxed);
  c.wal_fsyncs = wal_fsyncs_.load(std::memory_order_relaxed);
  c.wal_io_errors = wal_io_errors_.load(std::memory_order_relaxed);
  c.checkpoints_written =
      checkpoints_written_.load(std::memory_order_relaxed);
  c.recovered_seq = recovered_seq_;
  c.recovery_replayed_batches =
      recovery_replayed_.load(std::memory_order_relaxed);
  c.degraded = degraded_.load(std::memory_order_relaxed);
  PublishedWatermark(&c.published_seq, &c.published_time);
  return c;
}

void SplashService::MergeEndpointHistograms(LatencyHistogram* ingest,
                                            LatencyHistogram* apply) const {
  for (HistStripe& stripe : ingest_hist_) {
    std::lock_guard<std::mutex> lk(stripe.mu);
    ingest->Merge(stripe.hist);
  }
  std::lock_guard<std::mutex> lk(hist_mu_);
  apply->Merge(apply_hist_);
}

ServeStats SplashService::Stats() const {
  ServeStats st;
  st.counters = Counters();
  LatencyHistogram ingest_merged, apply_merged;
  MergeEndpointHistograms(&ingest_merged, &apply_merged);
  st.ingest = ingest_merged.Summarize();
  st.apply = apply_merged.Summarize();
  st.predict = MergedClientHistogram().Summarize();
  return st;
}

// ---------------------------------------------------------------------------
// Read path (DESIGN.md §5b). Every ServeClient::Predict* call funnels into
// ScoreQueries: uncontended callers take the direct per-query path (pin,
// fused forward into client scratch, copy out after unpin); contended
// callers are combined by the QueryCoalescer into one snapshot pin + one
// fused batch forward, led by one of them. Either way the snapshot
// critical section holds only replica reads — the score copy-out happens
// after Unpin, and the client's deadline/latency epilogue lives outside
// the service entirely (serve/shard.cc).
// ---------------------------------------------------------------------------

void SplashService::ExecuteCoalescedGroupThunk(void* ctx,
                                               QuerySlot* const* slots,
                                               size_t n) {
  static_cast<SplashService*>(ctx)->ExecuteCoalescedGroup(slots, n);
}

void SplashService::ExecuteCoalescedGroup(QuerySlot* const* slots, size_t n) {
  gather_queries_.clear();
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) total += slots[i]->queries->size();
  gather_queries_.reserve(total);
  for (size_t i = 0; i < n; ++i) {
    gather_queries_.insert(gather_queries_.end(), slots[i]->queries->begin(),
                           slots[i]->queries->end());
  }
  const uint32_t idx = gate_.Pin();
  const SplashPredictor* rep = replicas_[idx].get();
  const uint64_t wm_seq = wm_seq_[idx];
  const double wm_time = wm_time_[idx];
  const Matrix& out = rep->PredictBatchConst(gather_queries_, &gather_scratch_);
  uint64_t unseen = 0;
  for (const PropertyQuery& q : gather_queries_) {
    if (!rep->augmenter().seen(q.node)) ++unseen;
  }
  gate_.Unpin(idx);
  const bool degraded =
      degraded_.load(std::memory_order_relaxed) ||
      wm_seq < recovery_target_seq_.load(std::memory_order_relaxed);
  // Scatter: rows are assembled and scored strictly per-row, so each
  // caller's slice is bit-identical to what its own per-query call would
  // have produced against this snapshot (serve_coalesce_test pins this).
  size_t row = 0;
  for (size_t i = 0; i < n; ++i) {
    ServeResponse* resp = slots[i]->resp;
    const size_t b = slots[i]->queries->size();
    resp->scores.Resize(b, out.cols());
    for (size_t bi = 0; bi < b; ++bi) {
      std::memcpy(resp->scores.Row(bi), out.Row(row + bi),
                  out.cols() * sizeof(float));
    }
    row += b;
    resp->score = 0.0;
    resp->watermark_seq = wm_seq;
    resp->watermark_time = wm_time;
    resp->shard_watermarks.clear();  // single-service response
    resp->degraded = degraded;
    resp->deadline_exceeded = false;  // each caller re-checks after wakeup
  }
  // Service counters once per group, not once per caller.
  queries_.fetch_add(total, std::memory_order_relaxed);
  if (unseen > 0) {
    unseen_node_queries_.fetch_add(unseen, std::memory_order_relaxed);
  }
}

void SplashService::ScoreQueries(const std::vector<PropertyQuery>& queries,
                                 ClientScratch* scratch, ServeResponse* resp) {
  resp->score = 0.0;
  resp->deadline_exceeded = false;
  // Acquire on started_ is the happens-before edge to the replica
  // pointers: a call racing Start() sees false and returns empty rather
  // than reading half-prepared state.
  if (!started_.load(std::memory_order_acquire)) {
    resp->scores.Resize(0, 0);
    resp->watermark_seq = 0;
    resp->watermark_time = 0.0;
    resp->shard_watermarks.clear();
    resp->degraded = false;
    return;
  }
  QuerySlot slot;
  slot.queries = &queries;
  slot.resp = resp;
  if (!coalescer_.Submit(&slot)) {
    // Direct path (uncontended / coalescing off / ring full).
    const uint32_t idx = gate_.Pin();
    const SplashPredictor* rep = replicas_[idx].get();
    resp->watermark_seq = wm_seq_[idx];
    resp->watermark_time = wm_time_[idx];
    const Matrix& out = rep->PredictBatchConst(queries, &scratch->predict);
    uint64_t unseen = 0;
    for (const PropertyQuery& q : queries) {
      if (!rep->augmenter().seen(q.node)) ++unseen;
    }
    gate_.Unpin(idx);
    // The copy-out reads client-owned scratch, so it no longer needs the
    // pin — the snapshot critical section ends at the last replica read.
    resp->scores.Resize(out.rows(), out.cols());
    for (size_t i = 0; i < out.rows(); ++i) {
      std::memcpy(resp->scores.Row(i), out.Row(i),
                  out.cols() * sizeof(float));
    }
    resp->shard_watermarks.clear();  // single-service response
    // Degraded: a durability error happened, or recovery replay is still
    // ahead of the snapshot that answered (the answer is honest about its
    // watermark either way — this flags that a fresher state is known).
    resp->degraded =
        degraded_.load(std::memory_order_relaxed) ||
        resp->watermark_seq <
            recovery_target_seq_.load(std::memory_order_relaxed);
    queries_.fetch_add(queries.size(), std::memory_order_relaxed);
    if (unseen > 0) {
      unseen_node_queries_.fetch_add(unseen, std::memory_order_relaxed);
    }
    coalescer_.EndDirect();
  }
}

}  // namespace splash
