// Copyright 2026 The SPLASH Reproduction Authors.

#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace splash {

SplashService::SplashService(const SplashOptions& model_opts,
                             const SplashServiceOptions& opts)
    : model_opts_(model_opts),
      opts_(opts),
      queue_(opts.queue_capacity, opts.backpressure) {}

SplashService::~SplashService() { Stop(); }

Status SplashService::Start(const Dataset& warmup, const ChronoSplit& split,
                            const TrainerOptions* fit) {
  if (running_.load()) {
    return Status::Error("SplashService::Start: already running");
  }
  if (apply_thread_.joinable()) {
    return Status::Error("SplashService::Start: service cannot restart");
  }

  // Both replicas run the identical deterministic pipeline (same options,
  // same seed, same thread count), so they end bit-identical — the
  // invariant the whole snapshot scheme rests on.
  for (int r = 0; r < 2; ++r) {
    replicas_[r] = std::make_unique<SplashPredictor>(model_opts_);
    Status st = replicas_[r]->Prepare(warmup, split);
    if (!st.ok()) return st;
    if (fit != nullptr) {
      StreamTrainer trainer(*fit);
      trainer.Fit(replicas_[r].get(), warmup, split);
    }
    replicas_[r]->SetTraining(false);
    replicas_[r]->ResetState();
  }

  // Serving starts from an empty ingest log: watermark 0 == "weights only,
  // no streamed edge". Nodes touched by the warmup stream are "known";
  // everything else counts toward the novel-id drift signal.
  log_ = EdgeStream();
  log_.EnsureNodeCapacity(warmup.stream.num_nodes());
  node_seen_.assign(warmup.stream.num_nodes(), 0);
  const NodeId* wsrc = warmup.stream.src_data();
  const NodeId* wdst = warmup.stream.dst_data();
  for (size_t i = 0; i < warmup.stream.size(); ++i) {
    node_seen_[wsrc[i]] = 1;
    node_seen_[wdst[i]] = 1;
  }
  wm_seq_[0] = wm_seq_[1] = 0;
  wm_time_[0] = wm_time_[1] = 0.0;
  batch_bounds_.clear();
  train_log_.clear();

  started_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  apply_thread_ = std::thread(&SplashService::ApplyLoop, this);
  return Status::Ok();
}

void SplashService::RecordIngestNs(uint64_t ns) {
  HistStripe& stripe =
      ingest_hist_[std::hash<std::thread::id>{}(std::this_thread::get_id()) &
                   (kIngestHistStripes - 1)];
  std::lock_guard<std::mutex> lk(stripe.mu);
  stripe.hist.RecordNs(ns);
}

bool SplashService::IngestEdge(const TemporalEdge& e) {
  if (!running_.load(std::memory_order_acquire)) return false;
  // Boundary validation: an invalid endpoint or non-finite timestamp is
  // rejected here (counted as a drop) so the apply thread can treat every
  // queued edge as appendable — and so a sentinel id can never size the
  // node tables to the full 2^32 id space.
  if (e.src == kInvalidNode || e.dst == kInvalidNode ||
      !std::isfinite(e.time)) {
    ingest_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  IngestItem item;
  item.kind = IngestItem::Kind::kEdge;
  item.edge = e;
  WallTimer timer;
  const bool ok = queue_.Push(item);
  const uint64_t ns = timer.Nanos();
  if (ok) {
    ingest_accepted_.fetch_add(1, std::memory_order_relaxed);
    accepted_items_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ingest_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  RecordIngestNs(ns);
  return ok;
}

bool SplashService::SubmitTrain(const PropertyQuery& q) {
  if (!running_.load(std::memory_order_acquire) ||
      !opts_.train_on_ingest_labels) {
    if (opts_.train_on_ingest_labels) {
      train_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  IngestItem item;
  item.kind = IngestItem::Kind::kTrain;
  item.train = q;
  WallTimer timer;
  const bool ok = queue_.Push(item);
  const uint64_t ns = timer.Nanos();
  if (ok) {
    train_accepted_.fetch_add(1, std::memory_order_relaxed);
    accepted_items_.fetch_add(1, std::memory_order_relaxed);
  } else {
    train_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  RecordIngestNs(ns);
  return ok;
}

void SplashService::ApplyBatchTo(SplashPredictor* rep, size_t edge_begin,
                                 size_t edge_end,
                                 const std::vector<PropertyQuery>& train) {
  if (edge_end > edge_begin) rep->ObserveBulk(log_, edge_begin, edge_end);
  if (!train.empty()) {
    // The staged split-phase path (core/predictor.h): assemble from the
    // just-advanced state, then pure compute on the staged tensors.
    rep->SetTraining(true);
    rep->StageBatch(train);
    rep->TrainStaged();
    rep->SetTraining(false);
  }
}

void SplashService::ApplyLoop() {
  // The one in-flight catch-up job: re-applies the published batch to the
  // old front once its readers drained. Reused across cycles — Submit only
  // ever follows the Wait that retired the previous job.
  struct CatchUp {
    SplashService* svc = nullptr;
    SplashPredictor* rep = nullptr;
    size_t begin = 0, end = 0;
    uint32_t idx = 0;
    static void Invoke(void* p) {
      auto* c = static_cast<CatchUp*>(p);
      c->svc->gate_.WaitReadersDrained(c->idx);
      c->svc->ApplyBatchTo(c->rep, c->begin, c->end, c->svc->catchup_train_);
    }
  };
  CatchUp ctx;

  for (;;) {
    const size_t n =
        queue_.PopBatch(&batch_scratch_, opts_.microbatch_max_items,
                        opts_.microbatch_max_delay_s);
    if (n == 0) break;  // stopped and drained
    WallTimer apply_timer;

    // Barrier: the previous catch-up retired, so the back replica is
    // current and catchup_train_ / log_ are exclusively ours again.
    pipe_.Wait();

    const size_t edge_begin = log_.size();
    train_scratch_.clear();
    for (const IngestItem& item : batch_scratch_) {
      if (item.kind == IngestItem::Kind::kTrain) {
        train_scratch_.push_back(item.train);
        continue;
      }
      TemporalEdge e = item.edge;  // endpoints/time validated at ingest
      if (!log_.empty() && e.time < log_.max_time()) {
        // The log is a *stream*: monotonize stragglers instead of
        // rejecting them, and surface the count as a drift signal.
        time_regressions_.fetch_add(1, std::memory_order_relaxed);
        e.time = log_.max_time();
      }
      const size_t prev_nodes = node_seen_.size();
      const size_t hi = static_cast<size_t>(std::max(e.src, e.dst)) + 1;
      if (hi > prev_nodes) node_seen_.resize(hi, 0);
      uint64_t novel = 0;
      novel += node_seen_[e.src] == 0 ? 1 : 0;
      node_seen_[e.src] = 1;
      novel += node_seen_[e.dst] == 0 ? 1 : 0;
      node_seen_[e.dst] = 1;
      if (novel > 0) {
        novel_ingest_nodes_.fetch_add(novel, std::memory_order_relaxed);
      }
      log_.Append(e).ok();  // cannot fail: endpoints valid, time monotone
    }
    const size_t edge_end = log_.size();

    const uint32_t back = gate_.back();
    ApplyBatchTo(replicas_[back].get(), edge_begin, edge_end, train_scratch_);
    wm_seq_[back] = edge_end;
    wm_time_[back] = edge_end > 0 ? log_.max_time() : 0.0;
    gate_.Publish();

    batches_applied_.fetch_add(1, std::memory_order_relaxed);
    if (!train_scratch_.empty()) {
      train_steps_.fetch_add(1, std::memory_order_relaxed);
    }
    if (opts_.record_apply_log) {
      batch_bounds_.push_back(edge_end);
      if (!train_scratch_.empty()) {
        train_log_.emplace_back(edge_end, train_scratch_);
      }
    }

    // Catch-up: the old front (now back) replays the identical batch on
    // the pipeline thread, overlapped with waiting for the next batch.
    catchup_train_ = train_scratch_;
    ctx.svc = this;
    ctx.rep = replicas_[1 - back].get();
    ctx.begin = edge_begin;
    ctx.end = edge_end;
    ctx.idx = 1 - back;
    pipe_.Submit(&CatchUp::Invoke, &ctx);

    {
      std::lock_guard<std::mutex> lk(flush_mu_);
      applied_items_ += n;
    }
    flush_cv_.notify_all();
    {
      std::lock_guard<std::mutex> lk(hist_mu_);
      apply_hist_.RecordNs(apply_timer.Nanos());
    }
  }
  pipe_.Wait();  // no ingest outlives the service
  flush_cv_.notify_all();
}

void SplashService::Flush() {
  if (!running_.load(std::memory_order_acquire)) return;
  const uint64_t target = accepted_items_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lk(flush_mu_);
  flush_cv_.wait(lk, [&] {
    return applied_items_ >= target ||
           !running_.load(std::memory_order_acquire);
  });
}

void SplashService::Stop() {
  const bool was = running_.exchange(false);
  queue_.Stop();
  flush_cv_.notify_all();
  if (was && apply_thread_.joinable()) apply_thread_.join();
}

uint64_t SplashService::published_seq() const {
  const uint32_t idx = gate_.Pin();
  const uint64_t seq = wm_seq_[idx];
  gate_.Unpin(idx);
  return seq;
}

ServeStats SplashService::Stats() const {
  ServeStats st;
  st.counters.ingest_accepted =
      ingest_accepted_.load(std::memory_order_relaxed);
  st.counters.ingest_dropped = ingest_dropped_.load(std::memory_order_relaxed);
  st.counters.train_accepted = train_accepted_.load(std::memory_order_relaxed);
  st.counters.train_dropped = train_dropped_.load(std::memory_order_relaxed);
  st.counters.batches_applied =
      batches_applied_.load(std::memory_order_relaxed);
  st.counters.train_steps = train_steps_.load(std::memory_order_relaxed);
  st.counters.queries = queries_.load(std::memory_order_relaxed);
  st.counters.unseen_node_queries =
      unseen_node_queries_.load(std::memory_order_relaxed);
  st.counters.novel_ingest_nodes =
      novel_ingest_nodes_.load(std::memory_order_relaxed);
  st.counters.time_regressions =
      time_regressions_.load(std::memory_order_relaxed);
  st.counters.queue_depth = queue_.size();
  {
    const uint32_t idx = gate_.Pin();
    st.counters.published_seq = wm_seq_[idx];
    st.counters.published_time = wm_time_[idx];
    gate_.Unpin(idx);
  }
  {
    LatencyHistogram ingest_merged;
    for (HistStripe& stripe : ingest_hist_) {
      std::lock_guard<std::mutex> lk(stripe.mu);
      ingest_merged.Merge(stripe.hist);
    }
    st.ingest = ingest_merged.Summarize();
  }
  {
    std::lock_guard<std::mutex> lk(hist_mu_);
    st.apply = apply_hist_.Summarize();
  }
  LatencyHistogram merged;
  {
    std::lock_guard<std::mutex> lk(clients_mu_);
    merged.Merge(retired_predict_hist_);
    for (ServeClient* c : clients_) {
      std::lock_guard<std::mutex> ck(c->hist_mu_);
      merged.Merge(c->predict_hist_);
    }
  }
  st.predict = merged.Summarize();
  return st;
}

// ---------------------------------------------------------------------------
// ServeClient
// ---------------------------------------------------------------------------

ServeClient::ServeClient(SplashService* service) : service_(service) {
  std::lock_guard<std::mutex> lk(service_->clients_mu_);
  service_->clients_.push_back(this);
}

ServeClient::~ServeClient() {
  std::lock_guard<std::mutex> lk(service_->clients_mu_);
  auto& cs = service_->clients_;
  cs.erase(std::remove(cs.begin(), cs.end(), this), cs.end());
  // A departed client's samples stay in the service-level digest.
  service_->retired_predict_hist_.Merge(predict_hist_);
}

ServeResponse ServeClient::Predict(const std::vector<PropertyQuery>& queries) {
  WallTimer timer;
  ServeResponse resp;
  SplashService* s = service_;
  // Acquire on started_ is the happens-before edge to the replica
  // pointers: a Predict racing Start() sees false and returns empty
  // rather than reading half-prepared state.
  if (!s->started_.load(std::memory_order_acquire)) return resp;
  const uint32_t idx = s->gate_.Pin();
  const SplashPredictor* rep = s->replicas_[idx].get();
  resp.watermark_seq = s->wm_seq_[idx];
  resp.watermark_time = s->wm_time_[idx];
  resp.scores = rep->PredictBatchConst(queries, &scratch_);
  uint64_t unseen = 0;
  for (const PropertyQuery& q : queries) {
    if (!rep->augmenter().seen(q.node)) ++unseen;
  }
  s->gate_.Unpin(idx);
  s->queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  if (unseen > 0) {
    s->unseen_node_queries_.fetch_add(unseen, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lk(hist_mu_);
    predict_hist_.RecordNs(timer.Nanos());
  }
  return resp;
}

ServeResponse ServeClient::PredictNode(NodeId node, double time) {
  query_scratch_.resize(1);
  query_scratch_[0] = PropertyQuery{node, time, 0};
  ServeResponse resp = Predict(query_scratch_);
  if (resp.scores.rows() == 1 && resp.scores.cols() >= 2) {
    resp.score = static_cast<double>(resp.scores(0, 1)) - resp.scores(0, 0);
  }
  return resp;
}

ServeResponse ServeClient::ScoreEdge(NodeId src, NodeId dst, double time) {
  query_scratch_.resize(2);
  query_scratch_[0] = PropertyQuery{src, time, 0};
  query_scratch_[1] = PropertyQuery{dst, time, 0};
  ServeResponse resp = Predict(query_scratch_);
  if (resp.scores.rows() == 2 && resp.scores.cols() >= 2) {
    const double ms =
        static_cast<double>(resp.scores(0, 1)) - resp.scores(0, 0);
    const double md =
        static_cast<double>(resp.scores(1, 1)) - resp.scores(1, 0);
    resp.score = ms > md ? ms : md;
  }
  return resp;
}

}  // namespace splash
